//! Loading jobs (§4.1's two-file example): graph attributes and vector
//! embeddings typically come from different sources, so TigerVector loads
//! them with separate `LOAD` statements targeting the same vertices:
//!
//! ```text
//! CREATE loading job j1 FOR graph g1 {
//!   LOAD f1 TO VERTEX Post VALUES (id, author, content);
//!   LOAD f2 TO EMBEDDING ATTRIBUTE content_emb
//!     ON VERTEX Post VALUES (id, split(content_emb, ":"));
//! }
//! ```
//!
//! The reproduction's loader parses exactly that shape: CSV rows for
//! attributes, `id,v0:v1:...:vn` rows for embeddings, keyed by a caller-
//! chosen integer primary key mapped to vertex ids.

use crate::graph::Graph;
use std::collections::HashMap;
use tg_storage::{AttrType, AttrValue};
use tv_common::{Tid, TvError, TvResult, VertexId};

/// A loading job bound to one graph. Tracks the primary-key → vertex-id
/// assignment so attribute and embedding files can arrive in either order.
pub struct LoadingJob<'g> {
    graph: &'g Graph,
    /// `(vertex type, external key)` → assigned vertex id.
    key_map: HashMap<(u32, i64), VertexId>,
    /// Rows per commit batch.
    batch_size: usize,
}

impl<'g> LoadingJob<'g> {
    /// New job with the default batch size.
    #[must_use]
    pub fn new(graph: &'g Graph) -> Self {
        LoadingJob {
            graph,
            key_map: HashMap::new(),
            batch_size: 4096,
        }
    }

    /// Override the commit batch size.
    #[must_use]
    pub fn with_batch_size(mut self, batch: usize) -> Self {
        self.batch_size = batch.max(1);
        self
    }

    /// The vertex id assigned to `(type, key)`, allocating if new.
    pub fn id_for(&mut self, type_id: u32, key: i64) -> TvResult<VertexId> {
        if let Some(&id) = self.key_map.get(&(type_id, key)) {
            return Ok(id);
        }
        let id = self.graph.allocate(type_id)?;
        self.key_map.insert((type_id, key), id);
        Ok(id)
    }

    /// `LOAD ... TO VERTEX <type> VALUES (id, attrs...)`: each line is
    /// `key,field1,field2,...` matching the type's schema order. Returns
    /// loaded row count.
    pub fn load_vertices(&mut self, vertex_type: &str, lines: &[&str]) -> TvResult<usize> {
        let (type_id, schema) = {
            let catalog = self.graph.catalog();
            let vt = catalog.vertex_type(vertex_type)?;
            (vt.type_id, vt.schema.clone())
        };
        let mut loaded = 0;
        for chunk in lines.chunks(self.batch_size) {
            let mut txn = self.graph.txn();
            for line in chunk {
                let mut fields = line.split(',');
                let key: i64 = fields
                    .next()
                    .and_then(|f| f.trim().parse().ok())
                    .ok_or_else(|| TvError::InvalidArgument(format!("bad key in '{line}'")))?;
                let mut attrs = Vec::with_capacity(schema.len());
                for (col, field) in fields.enumerate() {
                    let ty = schema.type_of(col).ok_or_else(|| {
                        TvError::InvalidArgument(format!("too many fields in '{line}'"))
                    })?;
                    attrs.push(parse_value(ty, field.trim())?);
                }
                if attrs.len() != schema.len() {
                    return Err(TvError::InvalidArgument(format!(
                        "expected {} fields, got {} in '{line}'",
                        schema.len(),
                        attrs.len()
                    )));
                }
                let id = self.id_for(type_id, key)?;
                txn = txn.upsert_vertex(type_id, id, attrs);
                loaded += 1;
            }
            txn.commit()?;
        }
        Ok(loaded)
    }

    /// `LOAD ... TO EMBEDDING ATTRIBUTE <attr> ON VERTEX <type> VALUES (id,
    /// split(emb, ":"))`: each line is `key,v0:v1:...:vn`.
    pub fn load_embeddings(
        &mut self,
        vertex_type: &str,
        attr_name: &str,
        lines: &[&str],
    ) -> TvResult<usize> {
        let (type_id, attr_id, dim) = {
            let catalog = self.graph.catalog();
            let vt = catalog.vertex_type(vertex_type)?;
            let (attr_id, def) = vt.embedding(attr_name).ok_or_else(|| {
                TvError::NotFound(format!("embedding '{attr_name}' on '{vertex_type}'"))
            })?;
            (vt.type_id, attr_id, def.dimension)
        };
        let mut loaded = 0;
        for chunk in lines.chunks(self.batch_size) {
            let mut txn = self.graph.txn();
            for line in chunk {
                let (key_str, vec_str) = line.split_once(',').ok_or_else(|| {
                    TvError::InvalidArgument(format!("bad embedding line '{line}'"))
                })?;
                let key: i64 = key_str
                    .trim()
                    .parse()
                    .map_err(|_| TvError::InvalidArgument(format!("bad key in '{line}'")))?;
                let vector = split_vector(vec_str)?;
                if vector.len() != dim {
                    return Err(TvError::DimensionMismatch {
                        expected: dim,
                        got: vector.len(),
                    });
                }
                let id = self.id_for(type_id, key)?;
                txn = txn.set_vector(attr_id, id, vector);
                loaded += 1;
            }
            txn.commit()?;
        }
        Ok(loaded)
    }

    /// `LOAD ... TO EDGE <type> VALUES (from, to)`: each line is
    /// `from_key,to_key`.
    pub fn load_edges(&mut self, edge_type: &str, lines: &[&str]) -> TvResult<usize> {
        let (etype, from_type, to_type) = {
            let catalog = self.graph.catalog();
            let et = catalog.edge_type(edge_type)?;
            (et.etype_id, et.from_type, et.to_type)
        };
        let mut loaded = 0;
        for chunk in lines.chunks(self.batch_size) {
            let mut txn = self.graph.txn();
            for line in chunk {
                let (a, b) = line
                    .split_once(',')
                    .ok_or_else(|| TvError::InvalidArgument(format!("bad edge line '{line}'")))?;
                let from_key: i64 = a
                    .trim()
                    .parse()
                    .map_err(|_| TvError::InvalidArgument(format!("bad from-key in '{line}'")))?;
                let to_key: i64 = b
                    .trim()
                    .parse()
                    .map_err(|_| TvError::InvalidArgument(format!("bad to-key in '{line}'")))?;
                let from = self.id_for(from_type, from_key)?;
                let to = self.id_for(to_type, to_key)?;
                txn = txn.add_edge(etype, from_type, from, to);
                loaded += 1;
            }
            txn.commit()?;
        }
        Ok(loaded)
    }

    /// Snapshot of the key → id assignment (examples use it to address
    /// loaded vertices).
    #[must_use]
    pub fn key_map(&self) -> &HashMap<(u32, i64), VertexId> {
        &self.key_map
    }

    /// The TID after the last commit.
    #[must_use]
    pub fn tid(&self) -> Tid {
        self.graph.read_tid()
    }
}

/// Parse one attribute field.
fn parse_value(ty: AttrType, field: &str) -> TvResult<AttrValue> {
    Ok(match ty {
        AttrType::Int => AttrValue::Int(
            field
                .parse()
                .map_err(|_| TvError::InvalidArgument(format!("bad INT '{field}'")))?,
        ),
        AttrType::Double => AttrValue::Double(
            field
                .parse()
                .map_err(|_| TvError::InvalidArgument(format!("bad DOUBLE '{field}'")))?,
        ),
        AttrType::Str => AttrValue::Str(field.to_string()),
        AttrType::Bool => AttrValue::Bool(matches!(field, "true" | "TRUE" | "1")),
    })
}

/// `split(content_emb, ":")` — the paper's vector field separator.
fn split_vector(s: &str) -> TvResult<Vec<f32>> {
    s.trim()
        .split(':')
        .map(|f| {
            f.trim()
                .parse::<f32>()
                .map_err(|_| TvError::InvalidArgument(format!("bad vector component '{f}'")))
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use tv_common::ids::SegmentLayout;
    use tv_common::DistanceMetric;
    use tv_embedding::{EmbeddingTypeDef, ServiceConfig};

    fn graph() -> Graph {
        let g = Graph::with_config(
            SegmentLayout::with_capacity(8),
            ServiceConfig {
                planner: tv_common::PlannerConfig::default().with_brute_threshold(2),
                query_threads: 1,
                default_ef: 32,
                build_threads: 1,
            },
        );
        g.create_vertex_type(
            "Post",
            &[("author", AttrType::Str), ("content", AttrType::Str)],
        )
        .unwrap();
        g.add_embedding_attribute(
            "Post",
            EmbeddingTypeDef::new("content_emb", 3, "GPT4", DistanceMetric::L2),
        )
        .unwrap();
        g
    }

    #[test]
    fn two_file_load_joins_on_key() {
        let g = graph();
        let mut job = LoadingJob::new(&g);
        // f1: attributes; f2: embeddings — arriving separately, keyed by id.
        let n = job
            .load_vertices("Post", &["1,alice,hello world", "2,bob,goodbye"])
            .unwrap();
        assert_eq!(n, 2);
        let n = job
            .load_embeddings("Post", "content_emb", &["1,0.1:0.2:0.3", "2,1:2:3"])
            .unwrap();
        assert_eq!(n, 2);

        let catalog = g.catalog();
        let post = catalog.vertex_type("Post").unwrap().type_id;
        let (attr_id, _) = catalog
            .vertex_type("Post")
            .unwrap()
            .embedding("content_emb")
            .unwrap();
        drop(catalog);
        let tid = g.read_tid();
        let id1 = job.key_map()[&(post, 1)];
        assert_eq!(
            g.attr(post, id1, "author", tid).unwrap(),
            Some(AttrValue::Str("alice".into()))
        );
        assert_eq!(
            g.embedding_of(attr_id, id1, tid).unwrap(),
            Some(vec![0.1, 0.2, 0.3])
        );
    }

    #[test]
    fn embeddings_can_load_before_vertices() {
        let g = graph();
        let mut job = LoadingJob::new(&g);
        job.load_embeddings("Post", "content_emb", &["7,1:1:1"])
            .unwrap();
        job.load_vertices("Post", &["7,carol,text"]).unwrap();
        let catalog = g.catalog();
        let post = catalog.vertex_type("Post").unwrap().type_id;
        drop(catalog);
        // Same vertex: one key, one id.
        assert_eq!(job.key_map().len(), 1);
        let id = job.key_map()[&(post, 7)];
        assert!(g.is_live(post, id, g.read_tid()).unwrap());
    }

    #[test]
    fn dimension_mismatch_rejected() {
        let g = graph();
        let mut job = LoadingJob::new(&g);
        let err = job.load_embeddings("Post", "content_emb", &["1,1:2"]);
        assert!(matches!(err, Err(TvError::DimensionMismatch { .. })));
    }

    #[test]
    fn malformed_lines_rejected() {
        let g = graph();
        let mut job = LoadingJob::new(&g);
        assert!(job.load_vertices("Post", &["notakey,a,b"]).is_err());
        assert!(job.load_vertices("Post", &["1,onlyone"]).is_err());
        assert!(job
            .load_embeddings("Post", "content_emb", &["1,1:x:3"])
            .is_err());
        assert!(job
            .load_embeddings("Post", "content_emb", &["nocomma"])
            .is_err());
        assert!(job.load_vertices("Nope", &["1,a,b"]).is_err());
        assert!(job.load_embeddings("Post", "nope", &["1,1:2:3"]).is_err());
    }

    #[test]
    fn edge_loading() {
        let g = graph();
        g.create_vertex_type("Person", &[("name", AttrType::Str)])
            .unwrap();
        g.create_edge_type("hasCreator", "Post", "Person").unwrap();
        let mut job = LoadingJob::new(&g);
        job.load_vertices("Post", &["1,a,t1", "2,b,t2"]).unwrap();
        job.load_vertices("Person", &["10,alice"]).unwrap();
        let n = job.load_edges("hasCreator", &["1,10", "2,10"]).unwrap();
        assert_eq!(n, 2);
        let catalog = g.catalog();
        let post = catalog.vertex_type("Post").unwrap().type_id;
        let person = catalog.vertex_type("Person").unwrap().type_id;
        let et = catalog.edge_type("hasCreator").unwrap().etype_id;
        drop(catalog);
        let tid = g.read_tid();
        let p1 = job.key_map()[&(post, 1)];
        let alice = job.key_map()[&(person, 10)];
        assert_eq!(g.out_neighbors(post, p1, et, tid).unwrap(), vec![alice]);
    }

    #[test]
    fn batching_commits_incrementally() {
        let g = graph();
        let mut job = LoadingJob::new(&g).with_batch_size(2);
        let lines: Vec<String> = (0..5).map(|i| format!("{i},u{i},c{i}")).collect();
        let refs: Vec<&str> = lines.iter().map(String::as_str).collect();
        job.load_vertices("Post", &refs).unwrap();
        // 5 rows at batch size 2 → 3 commits.
        assert_eq!(g.read_tid(), Tid(3));
    }
}
