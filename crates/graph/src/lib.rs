//! # tg-graph
//!
//! The graph engine of the reproduction — the TigerGraph-like layer
//! TigerVector plugs into:
//!
//! * [`schema`] — the catalog: vertex/edge types, `ALTER VERTEX ... ADD
//!   EMBEDDING ATTRIBUTE`, `CREATE EMBEDDING SPACE` (§4.1);
//! * [`graph`] — the [`graph::Graph`] facade tying the segment store, the
//!   embedding service, and the transaction manager together, with atomic
//!   graph+vector transactions and the vector-search entry points;
//! * [`vertex_set`] — vertex set variables, GSQL's composition currency
//!   (§2.1/§5.5), with `UNION` / `INTERSECT` / `MINUS` and conversion to
//!   per-segment pre-filter bitmaps;
//! * [`actions`] — the MPP primitives `VertexAction` and `EdgeAction` that
//!   run user functions across segments in parallel (§2.1);
//! * [`accum`] — global and vertex-local accumulators (sum, max, set, map,
//!   and the top-k heap accumulator used by vector similarity join, §5.4);
//! * [`algo`] — graph algorithms: k-hop expansion and Louvain community
//!   detection (the paper's Q4 composition demo, §5.5);
//! * [`loader`] — loading jobs: attribute and embedding files loaded
//!   separately into the same vertices (§4.1's two-file example);
//! * [`durability`] — crash-consistent checkpoints (graph images, embedding
//!   deltas, HNSW snapshots, a CRC-verified manifest) and recovery: newest
//!   valid checkpoint + WAL-tail replay, with deterministic crash-point
//!   injection for torture testing.

pub mod accum;
pub mod actions;
pub mod algo;
pub mod durability;
pub mod graph;
pub mod loader;
pub mod rbac;
pub mod schema;
pub mod vertex_set;

pub use durability::{
    export_embedding_segment, install_embedding_segment, CheckpointInfo, CheckpointManager,
    RecoveryManager, RecoveryReport,
};
pub use graph::{Graph, TxnBuilder};
pub use rbac::{AccessControl, Role};
pub use schema::{Catalog, EdgeTypeDef, VertexTypeDef};
pub use vertex_set::VertexSet;

// Property tests need the external `proptest` crate, unavailable in the
// offline build container; enable with `--features proptests` once vendored.
#[cfg(all(test, feature = "proptests"))]
mod proptests;
