//! Crash-consistent checkpoint/recovery for the unified graph+vector store.
//!
//! A **checkpoint** atomically persists one consistent point of the whole
//! system at TID `t`:
//!
//! * per-segment **graph images** — the MVCC fold of each vertex segment at
//!   `t` ([`tg_storage::checkpoint::encode_segment_image`]);
//! * per-segment **embedding state** — the newest HNSW snapshot visible at
//!   `t` plus the encoded vector-delta tail beyond it;
//! * a **MANIFEST**, written *last*, recording the checkpoint TID, per-type
//!   allocation watermarks, and the name/CRC/length of every data file.
//!
//! Every file is a CRC-checksummed, versioned container written via
//! temp-file + rename ([`tv_common::durafile`]), so a crash at any byte
//! leaves either no file or a verifiable one. A checkpoint *exists* iff its
//! MANIFEST decodes and every listed file matches its recorded CRC — a
//! partial directory is invisible to recovery. Once the manifest is durable
//! the WAL is rotated: records at or before `t` are dropped.
//!
//! **Recovery** walks checkpoints newest-first, loads the first one that
//! fully verifies (falling back on any checksum or decode failure), installs
//! all three layers, then replays the WAL tail — only records with
//! `tid > t`, so recovery is idempotent when a crash hit after the manifest
//! rename but before the WAL truncation.
//!
//! Deterministic crash points ([`tv_common::CrashPoint`]) are compiled into
//! both pipelines; they are no-ops unless a test arms a
//! [`tv_common::CrashPlan`].

use crate::graph::Graph;
use std::fs;
use std::path::{Path, PathBuf};
use std::sync::Arc;
use tg_storage::checkpoint::{decode_segment_image, encode_segment_image};
use tg_storage::{SegmentSnapshot, Wal};
use tv_common::durafile;
use tv_common::{crash_hook, CrashPlan, CrashPoint, SegmentId, Tid, TvError, TvResult};
use tv_embedding::encode::{decode_vector_deltas, encode_vector_deltas};
use tv_hnsw::{DeltaRecord, HnswIndex};

/// Durafile kind tag: a graph segment image.
const KIND_GRAPH_SEG: u32 = 0x4753_4547; // "GSEG"
/// Durafile kind tag: an embedding segment state.
const KIND_EMB_SEG: u32 = 0x4553_4547; // "ESEG"
/// Durafile kind tag: the checkpoint manifest.
const KIND_MANIFEST: u32 = 0x4D41_4E46; // "MANF"
/// Container format version for all three kinds.
const FORMAT_VERSION: u32 = 1;
/// The WAL file name inside a data directory.
pub const WAL_FILE: &str = "wal.log";
/// The checkpoint subdirectory inside a data directory.
pub const CKPT_DIR: &str = "checkpoints";

/// Summary of one completed checkpoint.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CheckpointInfo {
    /// The consistent point that was persisted.
    pub tid: Tid,
    /// Data files written (graph + embedding segments).
    pub files: usize,
    /// WAL records surviving the post-checkpoint rotation.
    pub wal_records_kept: usize,
}

/// Summary of one recovery pass.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RecoveryReport {
    /// The checkpoint that was restored, if any verified.
    pub checkpoint: Option<Tid>,
    /// WAL records replayed beyond the checkpoint TID.
    pub replayed: usize,
    /// Newer checkpoints skipped because a file failed verification.
    pub skipped_checkpoints: usize,
}

/// Writes checkpoints into `<dir>/checkpoints/ckpt-<tid>/` and rotates the
/// WAL once each manifest is durable.
pub struct CheckpointManager {
    dir: PathBuf,
    /// Verified checkpoints to retain (older ones are pruned).
    keep: usize,
    crash_plan: Option<Arc<CrashPlan>>,
}

impl CheckpointManager {
    /// Manager rooted at a graph data directory.
    #[must_use]
    pub fn new(dir: &Path) -> Self {
        CheckpointManager {
            dir: dir.to_path_buf(),
            keep: 2,
            crash_plan: None,
        }
    }

    /// Arm deterministic crash injection (tests only).
    #[must_use]
    pub fn with_crash_plan(mut self, plan: Option<Arc<CrashPlan>>) -> Self {
        self.crash_plan = plan;
        self
    }

    /// Persist a consistent point at the graph's latest committed TID, then
    /// rotate the WAL and prune old checkpoints.
    pub fn checkpoint(&self, graph: &Graph) -> TvResult<CheckpointInfo> {
        let ckpt_tid = graph.read_tid();
        let ckpt_dir = self
            .dir
            .join(CKPT_DIR)
            .join(format!("ckpt-{:020}", ckpt_tid.0));
        fs::create_dir_all(&ckpt_dir)
            .map_err(|e| TvError::Storage(format!("create {}: {e}", ckpt_dir.display())))?;

        let mut files: Vec<(String, u32, u64)> = Vec::new();
        let mut write_file = |name: String, kind: u32, payload: Vec<u8>| -> TvResult<()> {
            // Crash point: the process dies between data-file writes. The
            // directory holds a mix of old and new files but no (new)
            // manifest, so recovery never sees the partial checkpoint.
            crash_hook(self.crash_plan.as_deref(), CrashPoint::CheckpointMidWrite)?;
            durafile::write_atomic(&ckpt_dir.join(&name), kind, FORMAT_VERSION, &payload)?;
            files.push((name, durafile::crc32(&payload), payload.len() as u64));
            Ok(())
        };

        // Graph layer: one image per (vertex type, segment), folded at the
        // checkpoint TID.
        let store = graph.store();
        let mut watermarks = Vec::new();
        for type_id in 0..store.vertex_type_count() as u32 {
            let vt = store.vertex_type(type_id)?;
            watermarks.push(vt.allocated() as u64);
            for s in 0..vt.segment_count() as u32 {
                let seg = SegmentId(s);
                let handle = vt.segment(seg).expect("segment in range");
                let image = handle.read().image_at(ckpt_tid);
                let mut payload = Vec::new();
                payload.extend_from_slice(&type_id.to_le_bytes());
                payload.extend_from_slice(&s.to_le_bytes());
                payload.extend_from_slice(&encode_segment_image(&image));
                write_file(
                    format!("graph-t{type_id}-s{s}.seg"),
                    KIND_GRAPH_SEG,
                    payload,
                )?;
            }
        }

        // Embedding layer: newest index snapshot visible at the checkpoint
        // TID plus the delta tail beyond it, per (attribute, segment).
        let embeddings = graph.embeddings();
        for attr_id in embeddings.attr_ids() {
            let attr = embeddings.attr(attr_id)?;
            for seg in attr.all_segments() {
                let (snap, tail) = seg.checkpoint_state(ckpt_tid);
                let hnsw = tv_hnsw::snapshot::to_bytes(&snap.index);
                let tagged: Vec<(u32, DeltaRecord)> =
                    tail.into_iter().map(|r| (attr_id, r)).collect();
                let deltas = if tagged.is_empty() {
                    Vec::new()
                } else {
                    encode_vector_deltas(&tagged)
                };
                let s = seg.segment_id.0;
                let mut payload = Vec::new();
                payload.extend_from_slice(&attr_id.to_le_bytes());
                payload.extend_from_slice(&s.to_le_bytes());
                payload.extend_from_slice(&snap.up_to.0.to_le_bytes());
                payload.extend_from_slice(&(hnsw.len() as u64).to_le_bytes());
                payload.extend_from_slice(&hnsw);
                payload.extend_from_slice(&deltas);
                write_file(format!("emb-a{attr_id}-s{s}.vec"), KIND_EMB_SEG, payload)?;
            }
        }

        // Manifest last: its atomic rename is the commit point of the whole
        // checkpoint.
        let n_files = files.len();
        let manifest = encode_manifest(ckpt_tid, &watermarks, &files);
        durafile::write_atomic(
            &ckpt_dir.join("MANIFEST"),
            KIND_MANIFEST,
            FORMAT_VERSION,
            &manifest,
        )?;

        // Crash point: the checkpoint is durable but the WAL still carries
        // the full history. Recovery must replay only the tail beyond the
        // checkpoint TID or it would double-apply.
        crash_hook(
            self.crash_plan.as_deref(),
            CrashPoint::CheckpointPostManifestPreTruncate,
        )?;
        // Rotate only past the *oldest retained* checkpoint, not the one
        // just written: if this checkpoint later fails verification,
        // recovery falls back to its predecessor and needs every record
        // beyond *that* TID to reach the present.
        let floor = self.prune(ckpt_tid);
        let kept = store.rotate_wal(floor)?;
        Ok(CheckpointInfo {
            tid: ckpt_tid,
            files: n_files,
            wal_records_kept: kept,
        })
    }

    /// Drop checkpoints beyond the `keep` newest *valid* ones and every
    /// dead partial directory (a crashed checkpoint leaves no manifest).
    /// Returns the oldest retained checkpoint TID — the WAL truncation
    /// floor. Removal failures are ignored: a stale directory costs disk,
    /// not correctness.
    fn prune(&self, just_written: Tid) -> Tid {
        let mut valid = Vec::new();
        for (tid, path) in list_checkpoints(&self.dir.join(CKPT_DIR)) {
            let manifest_ok = durafile::read(&path.join("MANIFEST"), KIND_MANIFEST)
                .and_then(|(_, m)| decode_manifest(&m))
                .is_ok();
            if manifest_ok {
                valid.push((tid, path));
            } else {
                let _ = fs::remove_dir_all(path);
            }
        }
        valid.sort_by_key(|v| std::cmp::Reverse(v.0));
        for (_, path) in valid.drain(self.keep.min(valid.len())..) {
            let _ = fs::remove_dir_all(path);
        }
        valid.last().map_or(just_written, |(t, _)| *t)
    }
}

/// Everything a verified checkpoint contains, fully decoded before any of it
/// is installed — so a corrupt file triggers fallback, never a half-restore.
struct LoadedCheckpoint {
    tid: Tid,
    watermarks: Vec<u64>,
    graph_segments: Vec<(u32, SegmentId, SegmentSnapshot)>,
    emb_segments: Vec<(u32, SegmentId, Tid, HnswIndex, Vec<DeltaRecord>)>,
}

/// Restores the newest verifiable checkpoint and replays the WAL tail.
pub struct RecoveryManager {
    dir: PathBuf,
}

impl RecoveryManager {
    /// Manager rooted at a graph data directory.
    #[must_use]
    pub fn new(dir: &Path) -> Self {
        RecoveryManager {
            dir: dir.to_path_buf(),
        }
    }

    /// Recover `graph` (fresh, schema already recreated in the original DDL
    /// order): install the newest valid checkpoint, then replay WAL records
    /// beyond its TID. With no usable checkpoint the full WAL is replayed.
    pub fn recover(&self, graph: &Graph) -> TvResult<RecoveryReport> {
        let mut candidates = list_checkpoints(&self.dir.join(CKPT_DIR));
        candidates.sort_by_key(|c| std::cmp::Reverse(c.0));
        let mut skipped = 0;
        let mut restored = None;
        for (tid, path) in candidates {
            match load_checkpoint(&path, tid) {
                Ok(ck) => {
                    install_checkpoint(graph, ck)?;
                    restored = Some(tid);
                    break;
                }
                Err(_) => skipped += 1,
            }
        }
        let floor = restored.unwrap_or(Tid::ZERO);

        let wal_path = self.dir.join(WAL_FILE);
        let mut replayed = 0;
        if wal_path.exists() {
            let mut records = Wal::replay(&wal_path)?;
            records.retain(|r| r.tid > floor);
            replayed = records.len();
            let extras = graph.store().replay(records)?;
            graph.apply_vector_extras(extras)?;
        }
        Ok(RecoveryReport {
            checkpoint: restored,
            replayed,
            skipped_checkpoints: skipped,
        })
    }
}

/// Read and fully verify one checkpoint directory. Any missing file, CRC
/// mismatch, or decode failure is an `Err` — the caller falls back to an
/// older checkpoint.
fn load_checkpoint(dir: &Path, expect_tid: Tid) -> TvResult<LoadedCheckpoint> {
    let (_, manifest) = durafile::read(&dir.join("MANIFEST"), KIND_MANIFEST)?;
    let (tid, watermarks, files) = decode_manifest(&manifest)?;
    if tid != expect_tid {
        return Err(TvError::Storage(format!(
            "manifest TID {tid} does not match directory {}",
            dir.display()
        )));
    }
    let mut graph_segments = Vec::new();
    let mut emb_segments = Vec::new();
    for (name, want_crc, want_len) in files {
        let kind = if name.starts_with("graph-") {
            KIND_GRAPH_SEG
        } else {
            KIND_EMB_SEG
        };
        let (_, payload) = durafile::read(&dir.join(&name), kind)?;
        if payload.len() as u64 != want_len || durafile::crc32(&payload) != want_crc {
            return Err(TvError::Storage(format!(
                "checkpoint file {name} does not match its manifest entry"
            )));
        }
        let mut buf = payload.as_slice();
        if kind == KIND_GRAPH_SEG {
            let type_id = take_u32(&mut buf)?;
            let seg = SegmentId(take_u32(&mut buf)?);
            let image = decode_segment_image(buf)?;
            graph_segments.push((type_id, seg, image));
        } else {
            let attr_id = take_u32(&mut buf)?;
            let seg = SegmentId(take_u32(&mut buf)?);
            let up_to = Tid(take_u64(&mut buf)?);
            let hnsw_len = take_u64(&mut buf)? as usize;
            if hnsw_len > buf.len() {
                return Err(TvError::Storage(format!(
                    "checkpoint file {name}: index length exceeds payload"
                )));
            }
            let index = tv_hnsw::snapshot::from_bytes(&buf[..hnsw_len])?;
            let rest = &buf[hnsw_len..];
            let deltas = if rest.is_empty() {
                Vec::new()
            } else {
                decode_vector_deltas(rest)?
                    .into_iter()
                    .map(|(_, r)| r)
                    .collect()
            };
            emb_segments.push((attr_id, seg, up_to, index, deltas));
        }
    }
    Ok(LoadedCheckpoint {
        tid,
        watermarks,
        graph_segments,
        emb_segments,
    })
}

/// Install a fully-verified checkpoint into a fresh graph.
fn install_checkpoint(graph: &Graph, ck: LoadedCheckpoint) -> TvResult<()> {
    let store = graph.store();
    for (type_id, seg, image) in ck.graph_segments {
        store.vertex_type(type_id)?.restore_segment(seg, image)?;
    }
    for (type_id, rows) in ck.watermarks.iter().enumerate() {
        store
            .vertex_type(type_id as u32)?
            .restore_allocated(*rows as usize);
    }
    let embeddings = graph.embeddings();
    for (attr_id, seg, up_to, index, deltas) in ck.emb_segments {
        embeddings.restore_segment(attr_id, seg, up_to, index, &deltas)?;
    }
    store.txn().recover_to(ck.tid);
    Ok(())
}

/// Export one embedding segment's durable state at `up_to` — the newest
/// index snapshot visible at that TID plus the vector-delta tail beyond
/// it — in the same payload layout as a checkpoint `emb-*.vec` file.
///
/// This is the unit a live segment migration ships: the destination
/// installs it with [`install_embedding_segment`], then catches up from the
/// source's delta tail while the source keeps serving.
pub fn export_embedding_segment(
    graph: &Graph,
    attr_id: u32,
    seg: SegmentId,
    up_to: Tid,
) -> TvResult<Vec<u8>> {
    let attr = graph.embeddings().attr(attr_id)?;
    let segment = attr
        .segment(seg)
        .ok_or_else(|| TvError::NotFound(format!("embedding segment {}", seg.0)))?;
    let (snap, tail) = segment.checkpoint_state(up_to);
    let hnsw = tv_hnsw::snapshot::to_bytes(&snap.index);
    let tagged: Vec<(u32, DeltaRecord)> = tail.into_iter().map(|r| (attr_id, r)).collect();
    let deltas = if tagged.is_empty() {
        Vec::new()
    } else {
        encode_vector_deltas(&tagged)
    };
    let mut payload = Vec::new();
    payload.extend_from_slice(&attr_id.to_le_bytes());
    payload.extend_from_slice(&seg.0.to_le_bytes());
    payload.extend_from_slice(&snap.up_to.0.to_le_bytes());
    payload.extend_from_slice(&(hnsw.len() as u64).to_le_bytes());
    payload.extend_from_slice(&hnsw);
    payload.extend_from_slice(&deltas);
    Ok(payload)
}

/// Install a segment exported by [`export_embedding_segment`] into `graph`,
/// verifying it targets `attr_id`. Decodes exactly like checkpoint
/// recovery, so corruption is a loud error and nothing is half-installed.
pub fn install_embedding_segment(graph: &Graph, attr_id: u32, payload: &[u8]) -> TvResult<()> {
    let mut buf = payload;
    let got_attr = take_u32(&mut buf)?;
    if got_attr != attr_id {
        return Err(TvError::InvalidArgument(format!(
            "shipped segment targets attribute {got_attr}, expected {attr_id}"
        )));
    }
    let seg = SegmentId(take_u32(&mut buf)?);
    let up_to = Tid(take_u64(&mut buf)?);
    let hnsw_len = take_u64(&mut buf)? as usize;
    if hnsw_len > buf.len() {
        return Err(TvError::Storage(
            "shipped segment: index length exceeds payload".into(),
        ));
    }
    let index = tv_hnsw::snapshot::from_bytes(&buf[..hnsw_len])?;
    let rest = &buf[hnsw_len..];
    let deltas: Vec<DeltaRecord> = if rest.is_empty() {
        Vec::new()
    } else {
        decode_vector_deltas(rest)?
            .into_iter()
            .map(|(_, r)| r)
            .collect()
    };
    graph
        .embeddings()
        .restore_segment(attr_id, seg, up_to, index, &deltas)
}

/// Enumerate `ckpt-<tid>` subdirectories (unparseable names are ignored).
fn list_checkpoints(root: &Path) -> Vec<(Tid, PathBuf)> {
    let mut out = Vec::new();
    let Ok(entries) = fs::read_dir(root) else {
        return out;
    };
    for entry in entries.flatten() {
        let name = entry.file_name();
        let Some(tid) = name
            .to_str()
            .and_then(|n| n.strip_prefix("ckpt-"))
            .and_then(|t| t.parse::<u64>().ok())
        else {
            continue;
        };
        out.push((Tid(tid), entry.path()));
    }
    out
}

fn encode_manifest(tid: Tid, watermarks: &[u64], files: &[(String, u32, u64)]) -> Vec<u8> {
    let mut out = Vec::new();
    out.extend_from_slice(&tid.0.to_le_bytes());
    out.extend_from_slice(&(watermarks.len() as u32).to_le_bytes());
    for w in watermarks {
        out.extend_from_slice(&w.to_le_bytes());
    }
    out.extend_from_slice(&(files.len() as u32).to_le_bytes());
    for (name, crc, len) in files {
        out.extend_from_slice(&(name.len() as u32).to_le_bytes());
        out.extend_from_slice(name.as_bytes());
        out.extend_from_slice(&crc.to_le_bytes());
        out.extend_from_slice(&len.to_le_bytes());
    }
    out
}

type ManifestEntry = (String, u32, u64);

fn decode_manifest(mut buf: &[u8]) -> TvResult<(Tid, Vec<u64>, Vec<ManifestEntry>)> {
    let buf = &mut buf;
    let tid = Tid(take_u64(buf)?);
    let n_types = take_u32(buf)? as usize;
    if n_types.saturating_mul(8) > buf.len() {
        return Err(TvError::Storage(
            "manifest watermark count exceeds payload".into(),
        ));
    }
    let mut watermarks = Vec::with_capacity(n_types);
    for _ in 0..n_types {
        watermarks.push(take_u64(buf)?);
    }
    let n_files = take_u32(buf)? as usize;
    // Each entry is at least 16 bytes (empty name); clamp before allocating.
    if n_files.saturating_mul(16) > buf.len() {
        return Err(TvError::Storage(
            "manifest file count exceeds payload".into(),
        ));
    }
    let mut files = Vec::with_capacity(n_files);
    for _ in 0..n_files {
        let name_len = take_u32(buf)? as usize;
        if name_len > buf.len() {
            return Err(TvError::Storage("manifest name exceeds payload".into()));
        }
        let name = String::from_utf8(buf[..name_len].to_vec())
            .map_err(|_| TvError::Storage("manifest name is not UTF-8".into()))?;
        if name.contains('/') || name.contains('\\') || name.contains("..") {
            return Err(TvError::Storage(format!(
                "manifest names a path outside its directory: {name}"
            )));
        }
        *buf = &buf[name_len..];
        let crc = take_u32(buf)?;
        let len = take_u64(buf)?;
        files.push((name, crc, len));
    }
    if !buf.is_empty() {
        return Err(TvError::Storage("trailing bytes after manifest".into()));
    }
    Ok((tid, watermarks, files))
}

fn take_u32(buf: &mut &[u8]) -> TvResult<u32> {
    if buf.len() < 4 {
        return Err(TvError::Storage("manifest truncated".into()));
    }
    let v = u32::from_le_bytes(buf[..4].try_into().expect("4 bytes"));
    *buf = &buf[4..];
    Ok(v)
}

fn take_u64(buf: &mut &[u8]) -> TvResult<u64> {
    if buf.len() < 8 {
        return Err(TvError::Storage("manifest truncated".into()));
    }
    let v = u64::from_le_bytes(buf[..8].try_into().expect("8 bytes"));
    *buf = &buf[8..];
    Ok(v)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn manifest_roundtrips() {
        let files = vec![
            ("graph-t0-s0.seg".to_string(), 0xDEAD_BEEF, 128),
            ("emb-a0-s0.vec".to_string(), 0x1234_5678, 4096),
        ];
        let bytes = encode_manifest(Tid(42), &[7, 9], &files);
        let (tid, marks, decoded) = decode_manifest(&bytes).unwrap();
        assert_eq!(tid, Tid(42));
        assert_eq!(marks, vec![7, 9]);
        assert_eq!(decoded, files);
    }

    #[test]
    fn manifest_corruption_never_panics() {
        let files = vec![("graph-t0-s0.seg".to_string(), 1, 2)];
        let bytes = encode_manifest(Tid(1), &[3], &files);
        for cut in 0..bytes.len() {
            let _ = decode_manifest(&bytes[..cut]);
        }
        for i in 0..bytes.len() {
            let mut bad = bytes.clone();
            bad[i] ^= 0xFF;
            let _ = decode_manifest(&bad);
        }
    }

    #[test]
    fn manifest_rejects_path_traversal() {
        let files = vec![("../../etc/passwd".to_string(), 1, 2)];
        let bytes = encode_manifest(Tid(1), &[], &files);
        assert!(decode_manifest(&bytes).is_err());
    }

    mod segment_export {
        use super::super::*;
        use tg_storage::{AttrType, AttrValue};
        use tv_common::ids::SegmentLayout;
        use tv_common::{DistanceMetric, SplitMix64};
        use tv_embedding::{EmbeddingTypeDef, ServiceConfig};

        const DIM: usize = 4;
        const EMB: u32 = 0;

        fn fresh_graph() -> Graph {
            let config = ServiceConfig {
                // Exact scans: results comparable bit-for-bit regardless of
                // how (or whether) the HNSW index was built.
                planner: tv_common::PlannerConfig::default().with_brute_threshold(1024),
                query_threads: 1,
                default_ef: 64,
                build_threads: 1,
            };
            let g = Graph::with_config(SegmentLayout::with_capacity(8), config);
            g.create_vertex_type("Doc", &[("title", AttrType::Str)])
                .unwrap();
            g.add_embedding_attribute(
                "Doc",
                EmbeddingTypeDef::new("emb", DIM, "model", DistanceMetric::L2),
            )
            .unwrap();
            g
        }

        fn populated_graph() -> Graph {
            let g = fresh_graph();
            let layout = SegmentLayout::with_capacity(8);
            let mut rng = SplitMix64::new(0x5E61_E897);
            for v in 0..20usize {
                let vector: Vec<f32> = (0..DIM).map(|_| rng.next_f32()).collect();
                g.txn()
                    .upsert_vertex(
                        0,
                        layout.vertex_id(v),
                        vec![AttrValue::Str(format!("d{v}"))],
                    )
                    .set_vector(EMB, layout.vertex_id(v), vector)
                    .commit()
                    .unwrap();
            }
            g
        }

        #[test]
        fn exported_segment_installs_with_identical_results() {
            let src = populated_graph();
            let up_to = src.read_tid();
            let seg = SegmentId(1);
            let payload = export_embedding_segment(&src, EMB, seg, up_to).unwrap();

            let dst = fresh_graph();
            install_embedding_segment(&dst, EMB, &payload).unwrap();

            let src_seg = src.embeddings().attr(EMB).unwrap().segment(seg).unwrap();
            let dst_seg = dst.embeddings().attr(EMB).unwrap().segment(seg).unwrap();
            let planner = tv_common::PlannerConfig::default().with_brute_threshold(1024);
            let query = vec![0.3f32; DIM];
            let (want, _) = src_seg.search(&query, 5, 64, None, up_to, &planner);
            let (got, _) = dst_seg.search(&query, 5, 64, None, up_to, &planner);
            assert!(!want.is_empty(), "segment 1 must hold vectors");
            let bits = |ns: &[tv_common::Neighbor]| -> Vec<(u64, u32)> {
                ns.iter().map(|n| (n.id.0, n.dist.to_bits())).collect()
            };
            assert_eq!(bits(&want), bits(&got));
        }

        #[test]
        fn install_rejects_attribute_mismatch_and_truncation() {
            let src = populated_graph();
            let payload =
                export_embedding_segment(&src, EMB, SegmentId(0), src.read_tid()).unwrap();

            let dst = fresh_graph();
            let err = install_embedding_segment(&dst, EMB + 1, &payload).unwrap_err();
            assert!(matches!(err, TvError::InvalidArgument(_)), "{err}");

            // Header and mid-index truncations must fail loudly, not
            // half-install. (Whole-payload integrity is the durafile
            // container's CRC; this guards the decoder itself.)
            for cut in [4usize, 12, 20, 24, 40] {
                assert!(
                    install_embedding_segment(&dst, EMB, &payload[..cut]).is_err(),
                    "cut at {cut} must be rejected"
                );
            }

            let missing = export_embedding_segment(&src, EMB, SegmentId(99), src.read_tid());
            assert!(matches!(missing, Err(TvError::NotFound(_))));
        }
    }
}
