//! The [`Graph`] facade: schema DDL, atomic graph+vector transactions, reads,
//! and the vector-search entry points the query layer builds on.

use crate::durability::{CheckpointInfo, CheckpointManager, RecoveryManager, RecoveryReport};
use crate::schema::Catalog;
use crate::vertex_set::VertexSet;
use parking_lot::RwLock;
use std::path::{Path, PathBuf};
use std::sync::Arc;
use tg_storage::txn::ReadTicket;
use tg_storage::{AttrSchema, AttrType, AttrValue, GraphDelta, GraphStore, Wal};
use tv_common::ids::SegmentLayout;
use tv_common::{CrashPlan, Tid, TvError, TvResult, VertexId};
use tv_embedding::encode::{decode_vector_deltas, encode_vector_deltas};
use tv_embedding::service::{SegmentFilters, TypedNeighbor};
use tv_embedding::{EmbeddingService, EmbeddingSpace, EmbeddingTypeDef, ServiceConfig};
use tv_hnsw::index::DeltaAction;
use tv_hnsw::{DeltaRecord, SearchStats};

/// A property graph with embedded vector attributes — the unified system the
/// paper argues for (§1): one store, one transaction domain, one query
/// surface for graph and vector data.
pub struct Graph {
    store: GraphStore,
    embeddings: Arc<EmbeddingService>,
    catalog: RwLock<Catalog>,
    default_layout: SegmentLayout,
    data_dir: Option<PathBuf>,
    crash_plan: Option<Arc<CrashPlan>>,
}

impl Graph {
    /// In-memory graph with default segment layout and service config.
    #[must_use]
    pub fn new() -> Self {
        Graph::with_config(SegmentLayout::default(), ServiceConfig::default())
    }

    /// In-memory graph with explicit layout/config (benchmarks shrink the
    /// segment capacity to get many segments at laptop scale).
    #[must_use]
    pub fn with_config(layout: SegmentLayout, config: ServiceConfig) -> Self {
        Graph {
            store: GraphStore::in_memory(),
            embeddings: Arc::new(EmbeddingService::new(config)),
            catalog: RwLock::new(Catalog::default()),
            default_layout: layout,
            data_dir: None,
            crash_plan: None,
        }
    }

    /// Durable graph writing a WAL at `path`.
    pub fn with_wal(path: &Path, layout: SegmentLayout, config: ServiceConfig) -> TvResult<Self> {
        Ok(Graph {
            store: GraphStore::with_wal(path)?,
            embeddings: Arc::new(EmbeddingService::new(config)),
            catalog: RwLock::new(Catalog::default()),
            default_layout: layout,
            data_dir: None,
            crash_plan: None,
        })
    }

    /// Durable graph rooted at a data directory: WAL at `<dir>/wal.log`,
    /// checkpoints under `<dir>/checkpoints/`. [`Graph::checkpoint`] and
    /// [`Graph::recover`] only work on graphs opened this way.
    pub fn durable(dir: &Path, layout: SegmentLayout, config: ServiceConfig) -> TvResult<Self> {
        Graph::durable_with_plan(dir, layout, config, None)
    }

    /// [`Graph::durable`] with a deterministic crash-injection plan threaded
    /// into the commit, checkpoint, and vacuum pipelines (testing only;
    /// `None` makes every crash hook a no-op).
    pub fn durable_with_plan(
        dir: &Path,
        layout: SegmentLayout,
        config: ServiceConfig,
        plan: Option<Arc<CrashPlan>>,
    ) -> TvResult<Self> {
        std::fs::create_dir_all(dir)
            .map_err(|e| TvError::Storage(format!("create {}: {e}", dir.display())))?;
        let embeddings = EmbeddingService::new(config);
        if let Some(p) = &plan {
            embeddings.set_crash_plan(Arc::clone(p));
        }
        Ok(Graph {
            store: GraphStore::with_wal_plan(&dir.join(crate::durability::WAL_FILE), plan.clone())?,
            embeddings: Arc::new(embeddings),
            catalog: RwLock::new(Catalog::default()),
            default_layout: layout,
            data_dir: Some(dir.to_path_buf()),
            crash_plan: plan,
        })
    }

    /// Persist a consistent checkpoint of graph, embedding, and index state
    /// at the latest committed TID, then rotate the WAL past it.
    pub fn checkpoint(&self) -> TvResult<CheckpointInfo> {
        let dir = self.data_dir.as_ref().ok_or_else(|| {
            TvError::InvalidArgument("checkpoint needs a graph opened with Graph::durable".into())
        })?;
        CheckpointManager::new(dir)
            .with_crash_plan(self.crash_plan.clone())
            .checkpoint(self)
    }

    /// Recover this (fresh, schema-recreated) graph from its data directory:
    /// restore the newest valid checkpoint, then replay the WAL tail.
    pub fn recover(&self) -> TvResult<RecoveryReport> {
        let dir = self.data_dir.as_ref().ok_or_else(|| {
            TvError::InvalidArgument("recover needs a graph opened with Graph::durable".into())
        })?;
        RecoveryManager::new(dir).recover(self)
    }

    /// Replay a WAL into this graph (schema must already be recreated in the
    /// same DDL order). Restores both graph state and vector deltas.
    pub fn replay_wal(&self, path: &Path) -> TvResult<usize> {
        let records = Wal::replay(path)?;
        let n = records.len();
        let extras = self.store.replay(records)?;
        self.apply_vector_extras(extras)?;
        Ok(n)
    }

    /// Re-install the vector deltas carried in replayed WAL `extra`
    /// payloads (shared by [`Graph::replay_wal`] and checkpoint recovery).
    pub(crate) fn apply_vector_extras(&self, extras: Vec<(Tid, Vec<u8>)>) -> TvResult<()> {
        for (_tid, payload) in extras {
            let vec_deltas = decode_vector_deltas(&payload)?;
            let mut by_attr: std::collections::HashMap<u32, Vec<DeltaRecord>> =
                std::collections::HashMap::new();
            for (attr, rec) in vec_deltas {
                by_attr.entry(attr).or_default().push(rec);
            }
            for (attr, recs) in by_attr {
                self.embeddings.apply_deltas(attr, &recs)?;
            }
        }
        Ok(())
    }

    // ---- DDL -------------------------------------------------------------

    /// `CREATE VERTEX <name> (...)`.
    pub fn create_vertex_type(&self, name: &str, fields: &[(&str, AttrType)]) -> TvResult<u32> {
        let schema = AttrSchema::new(fields.iter().map(|(n, t)| ((*n).to_string(), *t)))?;
        let mut catalog = self.catalog.write();
        let type_id = self
            .store
            .create_vertex_type(schema.clone(), self.default_layout);
        catalog.add_vertex_type(name, type_id, schema)?;
        Ok(type_id)
    }

    /// `CREATE DIRECTED EDGE <name> (FROM <from>, TO <to>)`.
    pub fn create_edge_type(&self, name: &str, from: &str, to: &str) -> TvResult<u32> {
        let mut catalog = self.catalog.write();
        let from_id = catalog.vertex_type(from)?.type_id;
        let to_id = catalog.vertex_type(to)?.type_id;
        catalog.add_edge_type(name, from_id, to_id)
    }

    /// `ALTER VERTEX <type> ADD EMBEDDING ATTRIBUTE <def>` (§4.1).
    pub fn add_embedding_attribute(
        &self,
        vertex_type: &str,
        def: EmbeddingTypeDef,
    ) -> TvResult<u32> {
        let mut catalog = self.catalog.write();
        let type_id = catalog.vertex_type(vertex_type)?.type_id;
        let attr_id = self
            .embeddings
            .register(type_id, def.clone(), self.default_layout)?;
        catalog.attach_embedding(type_id, attr_id, def)?;
        Ok(attr_id)
    }

    /// `CREATE EMBEDDING SPACE <space>` (§4.1).
    pub fn create_embedding_space(&self, space: EmbeddingSpace) -> TvResult<()> {
        self.catalog.write().add_space(space)
    }

    /// `ALTER VERTEX <type> ADD EMBEDDING ATTRIBUTE <name> IN EMBEDDING
    /// SPACE <space>`.
    pub fn add_embedding_in_space(
        &self,
        vertex_type: &str,
        attr_name: &str,
        space_name: &str,
    ) -> TvResult<u32> {
        let def = self.catalog.read().space(space_name)?.attribute(attr_name);
        self.add_embedding_attribute(vertex_type, def)
    }

    // ---- access ----------------------------------------------------------

    /// Shared catalog read access.
    pub fn catalog(&self) -> parking_lot::RwLockReadGuard<'_, Catalog> {
        self.catalog.read()
    }

    /// The embedding service.
    #[must_use]
    pub fn embeddings(&self) -> &Arc<EmbeddingService> {
        &self.embeddings
    }

    /// The underlying segment store.
    #[must_use]
    pub fn store(&self) -> &GraphStore {
        &self.store
    }

    /// Segment layout used for new types.
    #[must_use]
    pub fn layout(&self) -> SegmentLayout {
        self.default_layout
    }

    /// Latest committed TID (the default read snapshot).
    #[must_use]
    pub fn read_tid(&self) -> Tid {
        self.store.txn().last_committed()
    }

    /// Register a pinned read snapshot (MVCC ticket).
    #[must_use]
    pub fn begin_read(&self) -> ReadTicket {
        self.store.txn().begin_read()
    }

    /// Allocate one vertex id of `type_id`.
    pub fn allocate(&self, type_id: u32) -> TvResult<VertexId> {
        Ok(self.store.vertex_type(type_id)?.allocate_id())
    }

    /// Allocate `n` vertex ids of `type_id`.
    pub fn allocate_many(&self, type_id: u32, n: usize) -> TvResult<Vec<VertexId>> {
        Ok(self.store.vertex_type(type_id)?.allocate_ids(n))
    }

    /// Attribute by column name at `tid`.
    pub fn attr(
        &self,
        type_id: u32,
        id: VertexId,
        attr_name: &str,
        tid: Tid,
    ) -> TvResult<Option<AttrValue>> {
        let store = self.store.vertex_type(type_id)?;
        let col = store
            .schema()
            .index_of(attr_name)
            .ok_or_else(|| TvError::NotFound(format!("attribute '{attr_name}'")))?;
        Ok(store.attr(id, col, tid))
    }

    /// Outgoing neighbors under edge type `etype` at `tid` (edges live in
    /// the source vertex's type store).
    pub fn out_neighbors(
        &self,
        from_type: u32,
        id: VertexId,
        etype: u32,
        tid: Tid,
    ) -> TvResult<Vec<VertexId>> {
        Ok(self.store.vertex_type(from_type)?.edges(id, etype, tid))
    }

    /// Liveness at `tid`.
    pub fn is_live(&self, type_id: u32, id: VertexId, tid: Tid) -> TvResult<bool> {
        Ok(self.store.vertex_type(type_id)?.is_live(id, tid))
    }

    /// The stored vector of `id` under embedding attribute `attr_id`.
    pub fn embedding_of(&self, attr_id: u32, id: VertexId, tid: Tid) -> TvResult<Option<Vec<f32>>> {
        let attr = self.embeddings.attr(attr_id)?;
        Ok(attr
            .segment(id.segment())
            .and_then(|seg| seg.get_embedding(id, tid)))
    }

    // ---- transactions ----------------------------------------------------

    /// Start building a transaction.
    #[must_use]
    pub fn txn(&self) -> TxnBuilder<'_> {
        TxnBuilder {
            graph: self,
            deltas: Vec::new(),
            vec_ops: Vec::new(),
        }
    }

    // ---- vector search ---------------------------------------------------

    /// Top-k vector search over one or more embedding attributes, optionally
    /// restricted to a candidate [`VertexSet`] (the pre-filter hand-off).
    /// This is the engine behind both `ORDER BY VECTOR_DIST ... LIMIT k` and
    /// the `VectorSearch()` function.
    pub fn vector_search(
        &self,
        attr_ids: &[u32],
        query: &[f32],
        k: usize,
        ef: usize,
        filter: Option<&VertexSet>,
        tid: Tid,
    ) -> TvResult<(Vec<TypedNeighbor>, SearchStats)> {
        let filters = match filter {
            Some(set) => Some(self.segment_filters(attr_ids, set)?),
            None => None,
        };
        self.embeddings
            .top_k(attr_ids, query, k, ef, tid, filters.as_ref())
    }

    /// Deadline-aware top-k vector search: the serving layer's entry point.
    /// The deadline is checked before every segment search (inside
    /// [`EmbeddingService::top_k_many`]); statistics for the work actually
    /// performed accumulate into `stats_out` even when the call times out.
    #[allow(clippy::too_many_arguments)]
    pub fn vector_search_deadline(
        &self,
        attr_ids: &[u32],
        query: &[f32],
        k: usize,
        ef: usize,
        filter: Option<&VertexSet>,
        tid: Tid,
        deadline: tv_common::Deadline,
        stats_out: &mut SearchStats,
    ) -> TvResult<Vec<TypedNeighbor>> {
        let filters = match filter {
            Some(set) => Some(self.segment_filters(attr_ids, set)?),
            None => None,
        };
        let batch = [tv_embedding::BatchQuery {
            query: query.to_vec(),
            k,
            ef,
        }];
        let mut out = self.embeddings.top_k_many(
            attr_ids,
            &batch,
            tid,
            filters.as_ref(),
            deadline,
            stats_out,
        )?;
        Ok(out.pop().unwrap_or_default())
    }

    /// Range vector search (`WHERE VECTOR_DIST(...) < threshold`).
    pub fn vector_range_search(
        &self,
        attr_ids: &[u32],
        query: &[f32],
        threshold: f32,
        ef: usize,
        filter: Option<&VertexSet>,
        tid: Tid,
    ) -> TvResult<(Vec<TypedNeighbor>, SearchStats)> {
        let filters = match filter {
            Some(set) => Some(self.segment_filters(attr_ids, set)?),
            None => None,
        };
        self.embeddings
            .range_search(attr_ids, query, threshold, ef, tid, filters.as_ref())
    }

    /// Convert a candidate vertex set into per-(attribute, segment) bitmaps.
    pub fn segment_filters(&self, attr_ids: &[u32], set: &VertexSet) -> TvResult<SegmentFilters> {
        let mut filters = SegmentFilters::new();
        for &attr_id in attr_ids {
            let attr = self.embeddings.attr(attr_id)?;
            let capacity = self.default_layout.capacity;
            for (seg, bm) in set.to_segment_bitmaps(attr.vertex_type, capacity) {
                filters.insert((attr_id, seg), bm);
            }
        }
        Ok(filters)
    }
}

impl Default for Graph {
    fn default() -> Self {
        Graph::new()
    }
}

/// Buffered vector mutation (TID assigned at commit).
enum VecOp {
    Upsert(u32, VertexId, Vec<f32>),
    Delete(u32, VertexId),
}

/// A buffered transaction over graph and vector state; everything commits
/// under one TID or not at all.
pub struct TxnBuilder<'g> {
    graph: &'g Graph,
    deltas: Vec<(u32, GraphDelta)>,
    vec_ops: Vec<VecOp>,
}

impl TxnBuilder<'_> {
    /// Insert/replace a vertex.
    pub fn upsert_vertex(mut self, type_id: u32, id: VertexId, attrs: Vec<AttrValue>) -> Self {
        self.deltas
            .push((type_id, GraphDelta::UpsertVertex { id, attrs }));
        self
    }

    /// Overwrite one attribute by column index.
    pub fn set_attr(mut self, type_id: u32, id: VertexId, col: usize, value: AttrValue) -> Self {
        self.deltas
            .push((type_id, GraphDelta::SetAttr { id, col, value }));
        self
    }

    /// Delete a vertex; its vectors under every embedding attribute of the
    /// type are deleted in the same transaction (the consistency-by-linkage
    /// argument of §1).
    pub fn delete_vertex(mut self, type_id: u32, id: VertexId) -> Self {
        self.deltas.push((type_id, GraphDelta::DeleteVertex { id }));
        let catalog = self.graph.catalog.read();
        if let Ok(vt) = catalog.vertex_type_by_id(type_id) {
            for (attr_id, _) in &vt.embeddings {
                self.vec_ops.push(VecOp::Delete(*attr_id, id));
            }
        }
        self
    }

    /// Add a directed edge.
    pub fn add_edge(mut self, etype: u32, from_type: u32, from: VertexId, to: VertexId) -> Self {
        self.deltas
            .push((from_type, GraphDelta::AddEdge { etype, from, to }));
        self
    }

    /// Remove a directed edge.
    pub fn remove_edge(mut self, etype: u32, from_type: u32, from: VertexId, to: VertexId) -> Self {
        self.deltas
            .push((from_type, GraphDelta::RemoveEdge { etype, from, to }));
        self
    }

    /// Set a vertex's vector under an embedding attribute.
    pub fn set_vector(mut self, attr_id: u32, id: VertexId, vector: Vec<f32>) -> Self {
        self.vec_ops.push(VecOp::Upsert(attr_id, id, vector));
        self
    }

    /// Delete a vertex's vector under an embedding attribute.
    pub fn delete_vector(mut self, attr_id: u32, id: VertexId) -> Self {
        self.vec_ops.push(VecOp::Delete(attr_id, id));
        self
    }

    /// True if nothing is buffered.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.deltas.is_empty() && self.vec_ops.is_empty()
    }

    /// Commit atomically; returns the TID. Vector deltas are validated,
    /// encoded into the WAL record's `extra` payload, and installed into the
    /// embedding service inside the commit critical section, so graph and
    /// vector state become visible together.
    pub fn commit(self) -> TvResult<Tid> {
        let graph = self.graph;
        // Pre-validate vector dimensions so the hook cannot fail mid-commit.
        for op in &self.vec_ops {
            if let VecOp::Upsert(attr_id, _, v) = op {
                graph.embeddings.attr(*attr_id)?.def.check_query_vector(v)?;
            }
        }
        let vec_ops = self.vec_ops;
        let embeddings = Arc::clone(&graph.embeddings);
        let make_records = |tid: Tid| -> Vec<(u32, DeltaRecord)> {
            vec_ops
                .iter()
                .map(|op| match op {
                    VecOp::Upsert(attr, id, v) => (
                        *attr,
                        DeltaRecord {
                            action: DeltaAction::Upsert,
                            id: *id,
                            tid,
                            vector: v.clone(),
                        },
                    ),
                    VecOp::Delete(attr, id) => (*attr, DeltaRecord::delete(*id, tid)),
                })
                .collect()
        };
        graph.store.commit_hooked(
            self.deltas,
            |tid| {
                let records = make_records(tid);
                if records.is_empty() {
                    Vec::new()
                } else {
                    encode_vector_deltas(&records)
                }
            },
            move |tid| {
                let records = make_records(tid);
                let mut by_attr: std::collections::HashMap<u32, Vec<DeltaRecord>> =
                    std::collections::HashMap::new();
                for (attr, rec) in records {
                    by_attr.entry(attr).or_default().push(rec);
                }
                for (attr, recs) in by_attr {
                    embeddings.apply_deltas(attr, &recs)?;
                }
                Ok(())
            },
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tv_common::DistanceMetric;

    fn small_graph() -> Graph {
        Graph::with_config(
            SegmentLayout::with_capacity(8),
            ServiceConfig {
                planner: tv_common::PlannerConfig::default().with_brute_threshold(4),
                query_threads: 1,
                default_ef: 32,
                build_threads: 1,
            },
        )
    }

    fn setup_post_graph(g: &Graph) -> (u32, u32) {
        let post = g
            .create_vertex_type(
                "Post",
                &[("author", AttrType::Str), ("length", AttrType::Int)],
            )
            .unwrap();
        let emb = g
            .add_embedding_attribute(
                "Post",
                EmbeddingTypeDef::new("content_emb", 4, "GPT4", DistanceMetric::L2),
            )
            .unwrap();
        (post, emb)
    }

    #[test]
    fn ddl_and_catalog() {
        let g = small_graph();
        let (post, emb) = setup_post_graph(&g);
        let _ = emb;
        let person = g
            .create_vertex_type("Person", &[("name", AttrType::Str)])
            .unwrap();
        let knows = g.create_edge_type("knows", "Person", "Person").unwrap();
        let has_creator = g.create_edge_type("hasCreator", "Post", "Person").unwrap();
        assert_eq!((post, person), (0, 1));
        assert_eq!((knows, has_creator), (0, 1));
        let catalog = g.catalog();
        assert!(catalog
            .vertex_type("Post")
            .unwrap()
            .embedding("content_emb")
            .is_some());
        // Duplicate vertex type name is rejected.
        drop(catalog);
        assert!(g.create_vertex_type("Post", &[]).is_err());
    }

    #[test]
    fn atomic_graph_vector_commit() {
        let g = small_graph();
        let (post, emb) = setup_post_graph(&g);
        let id = g.allocate(post).unwrap();
        let tid = g
            .txn()
            .upsert_vertex(
                post,
                id,
                vec![AttrValue::Str("alice".into()), AttrValue::Int(1200)],
            )
            .set_vector(emb, id, vec![1.0, 2.0, 3.0, 4.0])
            .commit()
            .unwrap();
        assert_eq!(tid, Tid(1));
        assert_eq!(
            g.attr(post, id, "author", tid).unwrap(),
            Some(AttrValue::Str("alice".into()))
        );
        assert_eq!(
            g.embedding_of(emb, id, tid).unwrap(),
            Some(vec![1.0, 2.0, 3.0, 4.0])
        );
        // Invisible before the commit tid.
        assert!(g.embedding_of(emb, id, Tid(0)).unwrap().is_none());
    }

    #[test]
    fn bad_vector_dimension_aborts_whole_txn() {
        let g = small_graph();
        let (post, emb) = setup_post_graph(&g);
        let id = g.allocate(post).unwrap();
        let err = g
            .txn()
            .upsert_vertex(
                post,
                id,
                vec![AttrValue::Str("x".into()), AttrValue::Int(1)],
            )
            .set_vector(emb, id, vec![1.0]) // wrong dim
            .commit();
        assert!(err.is_err());
        // Neither side visible.
        assert_eq!(g.read_tid(), Tid(0));
        assert!(!g.is_live(post, id, Tid(1)).unwrap());
    }

    #[test]
    fn delete_vertex_drops_vectors_too() {
        let g = small_graph();
        let (post, emb) = setup_post_graph(&g);
        let id = g.allocate(post).unwrap();
        g.txn()
            .upsert_vertex(
                post,
                id,
                vec![AttrValue::Str("x".into()), AttrValue::Int(1)],
            )
            .set_vector(emb, id, vec![0.0; 4])
            .commit()
            .unwrap();
        let tid = g.txn().delete_vertex(post, id).commit().unwrap();
        assert!(!g.is_live(post, id, tid).unwrap());
        assert!(g.embedding_of(emb, id, tid).unwrap().is_none());
        // Pure vector search no longer returns it.
        let (r, _) = g
            .vector_search(&[emb], &[0.0; 4], 1, 16, None, tid)
            .unwrap();
        assert!(r.is_empty());
    }

    #[test]
    fn vector_search_with_vertex_set_filter() {
        let g = small_graph();
        let (post, emb) = setup_post_graph(&g);
        let ids = g.allocate_many(post, 20).unwrap();
        let mut txn = g.txn();
        for (i, &id) in ids.iter().enumerate() {
            txn = txn
                .upsert_vertex(
                    post,
                    id,
                    vec![AttrValue::Str(format!("a{i}")), AttrValue::Int(i as i64)],
                )
                .set_vector(emb, id, vec![i as f32; 4]);
        }
        let tid = txn.commit().unwrap();
        // Unfiltered: nearest to 0 is id 0.
        let (r, _) = g
            .vector_search(&[emb], &[0.0; 4], 1, 32, None, tid)
            .unwrap();
        assert_eq!(r[0].neighbor.id, ids[0]);
        // Filtered to {10, 15}: nearest becomes 10.
        let set = VertexSet::from_iter_typed(post, [ids[10], ids[15]]);
        let (r, _) = g
            .vector_search(&[emb], &[0.0; 4], 2, 32, Some(&set), tid)
            .unwrap();
        assert_eq!(r.len(), 2);
        assert_eq!(r[0].neighbor.id, ids[10]);
        assert_eq!(r[1].neighbor.id, ids[15]);
        // Empty filter: nothing.
        let empty = VertexSet::new();
        let (r, _) = g
            .vector_search(&[emb], &[0.0; 4], 2, 32, Some(&empty), tid)
            .unwrap();
        assert!(r.is_empty());
    }

    #[test]
    fn edges_and_neighbors() {
        let g = small_graph();
        let person = g
            .create_vertex_type("Person", &[("name", AttrType::Str)])
            .unwrap();
        let knows = g.create_edge_type("knows", "Person", "Person").unwrap();
        let ids = g.allocate_many(person, 3).unwrap();
        let mut txn = g.txn();
        for (i, &id) in ids.iter().enumerate() {
            txn = txn.upsert_vertex(person, id, vec![AttrValue::Str(format!("p{i}"))]);
        }
        let tid = txn
            .add_edge(knows, person, ids[0], ids[1])
            .add_edge(knows, person, ids[0], ids[2])
            .commit()
            .unwrap();
        let nbrs = g.out_neighbors(person, ids[0], knows, tid).unwrap();
        assert_eq!(nbrs.len(), 2);
        let tid2 = g
            .txn()
            .remove_edge(knows, person, ids[0], ids[1])
            .commit()
            .unwrap();
        assert_eq!(
            g.out_neighbors(person, ids[0], knows, tid2).unwrap(),
            vec![ids[2]]
        );
    }

    #[test]
    fn wal_recovery_restores_graph_and_vectors() {
        let dir = std::env::temp_dir().join(format!("tvgraph-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("graph.wal");
        let _ = std::fs::remove_file(&path);

        let layout = SegmentLayout::with_capacity(8);
        let cfg = ServiceConfig {
            planner: tv_common::PlannerConfig::default().with_brute_threshold(4),
            query_threads: 1,
            default_ef: 32,
            build_threads: 1,
        };
        let (post, emb, id);
        {
            let g = Graph::with_wal(&path, layout, cfg).unwrap();
            post = g
                .create_vertex_type(
                    "Post",
                    &[("author", AttrType::Str), ("length", AttrType::Int)],
                )
                .unwrap();
            emb = g
                .add_embedding_attribute(
                    "Post",
                    EmbeddingTypeDef::new("content_emb", 4, "GPT4", DistanceMetric::L2),
                )
                .unwrap();
            id = g.allocate(post).unwrap();
            g.txn()
                .upsert_vertex(
                    post,
                    id,
                    vec![AttrValue::Str("a".into()), AttrValue::Int(5)],
                )
                .set_vector(emb, id, vec![9.0, 8.0, 7.0, 6.0])
                .commit()
                .unwrap();
        }
        // Recreate schema, replay.
        let g = Graph::with_wal(&path, layout, cfg).unwrap();
        g.create_vertex_type(
            "Post",
            &[("author", AttrType::Str), ("length", AttrType::Int)],
        )
        .unwrap();
        g.add_embedding_attribute(
            "Post",
            EmbeddingTypeDef::new("content_emb", 4, "GPT4", DistanceMetric::L2),
        )
        .unwrap();
        let replayed = g.replay_wal(&path).unwrap();
        assert_eq!(replayed, 1);
        let tid = g.read_tid();
        assert!(g.is_live(post, id, tid).unwrap());
        assert_eq!(
            g.embedding_of(emb, id, tid).unwrap(),
            Some(vec![9.0, 8.0, 7.0, 6.0])
        );
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn read_tickets_pin_vector_visibility() {
        let g = small_graph();
        let (post, emb) = setup_post_graph(&g);
        let id = g.allocate(post).unwrap();
        g.txn()
            .upsert_vertex(
                post,
                id,
                vec![AttrValue::Str("x".into()), AttrValue::Int(1)],
            )
            .set_vector(emb, id, vec![1.0; 4])
            .commit()
            .unwrap();
        let ticket = g.begin_read();
        // A later update...
        g.txn().set_vector(emb, id, vec![2.0; 4]).commit().unwrap();
        // ...is invisible at the pinned tid.
        assert_eq!(
            g.embedding_of(emb, id, ticket.tid()).unwrap(),
            Some(vec![1.0; 4])
        );
        assert_eq!(
            g.embedding_of(emb, id, g.read_tid()).unwrap(),
            Some(vec![2.0; 4])
        );
    }
}
