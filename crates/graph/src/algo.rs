//! Graph algorithms used by the paper's composition examples: k-hop
//! expansion (the IC-query skeleton of §6.5) and Louvain community detection
//! (`tg_louvain`, used by query Q4 in §5.5).

use crate::graph::Graph;
use crate::vertex_set::VertexSet;
use std::collections::HashMap;
use tv_common::{Tid, TvResult, VertexId};

impl Graph {
    /// Expand `seeds` along `etype` for `hops` hops and return every vertex
    /// reached (excluding the seeds unless revisited). `from_type`/`to_type`
    /// must both equal the edge's endpoints for multi-hop traversal over a
    /// self-edge (e.g. `knows`); for heterogeneous edges use
    /// [`Graph::expand`] per hop.
    pub fn k_hop(
        &self,
        seeds: &VertexSet,
        vertex_type: u32,
        etype: u32,
        hops: usize,
        tid: Tid,
    ) -> TvResult<VertexSet> {
        let mut visited = seeds.clone();
        let mut frontier = seeds.clone();
        let mut reached = VertexSet::new();
        for _ in 0..hops {
            let next = self.expand(&frontier, vertex_type, etype, vertex_type, tid)?;
            let fresh = next.minus(&visited);
            if fresh.is_empty() {
                break;
            }
            visited = visited.union(&fresh);
            reached = reached.union(&fresh);
            frontier = fresh;
        }
        Ok(reached)
    }

    /// Louvain community detection (Blondel et al. 2008) over one vertex
    /// type and one edge type, treating edges as undirected unit-weight.
    /// This is the single-level local-moving phase iterated to a fixed
    /// point, which is what Q4 needs: a community id per vertex. Returns
    /// `(community id per vertex, community count)`; ids are dense `0..n`.
    pub fn louvain(
        &self,
        vertex_type: u32,
        etype: u32,
        tid: Tid,
    ) -> TvResult<(HashMap<VertexId, usize>, usize)> {
        // Materialize the undirected adjacency.
        let vertices = self.all_vertices(vertex_type, tid)?;
        let nodes: Vec<VertexId> = vertices.of_type(vertex_type);
        let index_of: HashMap<VertexId, usize> =
            nodes.iter().enumerate().map(|(i, &v)| (v, i)).collect();
        let mut adj: Vec<Vec<usize>> = vec![Vec::new(); nodes.len()];
        let edges = self.edge_action(vertex_type, etype, tid, |from, to| (from, to))?;
        let mut m2 = 0usize; // 2 * |E| counted as total degree
        for (from, to) in edges {
            if let (Some(&a), Some(&b)) = (index_of.get(&from), index_of.get(&to)) {
                if a != b {
                    adj[a].push(b);
                    adj[b].push(a);
                    m2 += 2;
                }
            }
        }
        if m2 == 0 {
            // No edges: every vertex is its own community.
            let map = nodes.iter().enumerate().map(|(i, &v)| (v, i)).collect();
            return Ok((map, nodes.len()));
        }

        let degree: Vec<usize> = adj.iter().map(Vec::len).collect();
        let mut community: Vec<usize> = (0..nodes.len()).collect();
        let mut community_degree: Vec<i64> = degree.iter().map(|&d| d as i64).collect();
        let m2f = m2 as f64;

        // Local moving to a fixed point (bounded rounds for safety).
        for _round in 0..32 {
            let mut moved = false;
            for v in 0..nodes.len() {
                let cur = community[v];
                // Links from v to each neighboring community.
                let mut links: HashMap<usize, usize> = HashMap::new();
                for &n in &adj[v] {
                    *links.entry(community[n]).or_insert(0) += 1;
                }
                // Remove v from its community for the gain computation.
                community_degree[cur] -= degree[v] as i64;
                let mut best = cur;
                let mut best_gain = 0.0f64;
                for (&cand, &k_in) in &links {
                    // Modularity gain of joining `cand`.
                    let gain = k_in as f64 / m2f
                        - (community_degree[cand] as f64 * degree[v] as f64)
                            / (m2f * m2f / 2.0)
                            / 2.0;
                    let base_links = links.get(&cur).copied().unwrap_or(0);
                    let base_gain = base_links as f64 / m2f
                        - (community_degree[cur] as f64 * degree[v] as f64)
                            / (m2f * m2f / 2.0)
                            / 2.0;
                    if gain > base_gain + 1e-12 && gain > best_gain {
                        best_gain = gain;
                        best = cand;
                    }
                }
                community_degree[best] += degree[v] as i64;
                if best != cur {
                    community[v] = best;
                    moved = true;
                }
            }
            if !moved {
                break;
            }
        }

        // Renumber densely.
        let mut dense: HashMap<usize, usize> = HashMap::new();
        let mut out = HashMap::with_capacity(nodes.len());
        for (i, &v) in nodes.iter().enumerate() {
            let next = dense.len();
            let c = *dense.entry(community[i]).or_insert(next);
            out.insert(v, c);
        }
        let count = dense.len();
        Ok((out, count))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tg_storage::{AttrType, AttrValue};
    use tv_common::ids::SegmentLayout;
    use tv_embedding::ServiceConfig;

    fn graph() -> (Graph, u32, u32) {
        let g = Graph::with_config(
            SegmentLayout::with_capacity(16),
            ServiceConfig {
                planner: tv_common::PlannerConfig::default().with_brute_threshold(4),
                query_threads: 1,
                default_ef: 32,
                build_threads: 1,
            },
        );
        let person = g
            .create_vertex_type("Person", &[("name", AttrType::Str)])
            .unwrap();
        let knows = g.create_edge_type("knows", "Person", "Person").unwrap();
        (g, person, knows)
    }

    fn load(g: &Graph, person: u32, n: usize) -> Vec<VertexId> {
        let ids = g.allocate_many(person, n).unwrap();
        let mut txn = g.txn();
        for (i, &id) in ids.iter().enumerate() {
            txn = txn.upsert_vertex(person, id, vec![AttrValue::Str(format!("p{i}"))]);
        }
        txn.commit().unwrap();
        ids
    }

    fn connect(g: &Graph, person: u32, knows: u32, pairs: &[(usize, usize)], ids: &[VertexId]) {
        let mut txn = g.txn();
        for &(a, b) in pairs {
            txn = txn
                .add_edge(knows, person, ids[a], ids[b])
                .add_edge(knows, person, ids[b], ids[a]);
        }
        txn.commit().unwrap();
    }

    #[test]
    fn k_hop_chain() {
        let (g, person, knows) = graph();
        let ids = load(&g, person, 5);
        // Chain 0 -> 1 -> 2 -> 3 -> 4 (directed).
        let mut txn = g.txn();
        for w in ids.windows(2) {
            txn = txn.add_edge(knows, person, w[0], w[1]);
        }
        txn.commit().unwrap();
        let tid = g.read_tid();
        let seeds = VertexSet::from_iter_typed(person, [ids[0]]);
        let h1 = g.k_hop(&seeds, person, knows, 1, tid).unwrap();
        assert_eq!(h1.of_type(person), vec![ids[1]]);
        let h3 = g.k_hop(&seeds, person, knows, 3, tid).unwrap();
        assert_eq!(h3.len(), 3);
        // Hops beyond the chain length saturate.
        let h9 = g.k_hop(&seeds, person, knows, 9, tid).unwrap();
        assert_eq!(h9.len(), 4);
        // Seeds are not included.
        assert!(!h9.contains(person, ids[0]));
    }

    #[test]
    fn louvain_separates_two_cliques() {
        let (g, person, knows) = graph();
        let ids = load(&g, person, 8);
        // Two 4-cliques joined by a single bridge edge.
        let mut pairs = Vec::new();
        for a in 0..4 {
            for b in (a + 1)..4 {
                pairs.push((a, b));
                pairs.push((a + 4, b + 4));
            }
        }
        pairs.push((0, 4)); // bridge
        connect(&g, person, knows, &pairs, &ids);
        let tid = g.read_tid();
        let (communities, count) = g.louvain(person, knows, tid).unwrap();
        assert_eq!(communities.len(), 8);
        assert!(count >= 2, "expected at least 2 communities, got {count}");
        // Each clique must be internally consistent.
        for clique in [&ids[0..4], &ids[4..8]] {
            let c0 = communities[&clique[0]];
            assert!(clique.iter().all(|v| communities[v] == c0));
        }
        // And the two cliques in different communities.
        assert_ne!(communities[&ids[0]], communities[&ids[4]]);
    }

    #[test]
    fn louvain_no_edges_singletons() {
        let (g, person, knows) = graph();
        let ids = load(&g, person, 4);
        let tid = g.read_tid();
        let (communities, count) = g.louvain(person, knows, tid).unwrap();
        assert_eq!(count, 4);
        let mut cs: Vec<usize> = ids.iter().map(|v| communities[v]).collect();
        cs.sort_unstable();
        cs.dedup();
        assert_eq!(cs.len(), 4);
    }

    #[test]
    fn louvain_ids_are_dense() {
        let (g, person, knows) = graph();
        let ids = load(&g, person, 6);
        connect(&g, person, knows, &[(0, 1), (1, 2), (3, 4), (4, 5)], &ids);
        let tid = g.read_tid();
        let (communities, count) = g.louvain(person, knows, tid).unwrap();
        let max = communities.values().copied().max().unwrap();
        assert_eq!(max + 1, count);
    }
}
