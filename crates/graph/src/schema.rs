//! The schema catalog: vertex types, edge types, embedding attributes and
//! embedding spaces.

use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use tg_storage::AttrSchema;
use tv_common::{TvError, TvResult};
use tv_embedding::{EmbeddingSpace, EmbeddingTypeDef};

/// A vertex type: name, attribute schema, and its embedding attributes.
#[derive(Debug, Clone)]
pub struct VertexTypeDef {
    /// Type name (e.g. `Post`).
    pub name: String,
    /// Catalog / store id.
    pub type_id: u32,
    /// Ordinary attribute schema.
    pub schema: AttrSchema,
    /// Embedding attributes attached to this type: `(service attr id, def)`.
    pub embeddings: Vec<(u32, EmbeddingTypeDef)>,
}

impl VertexTypeDef {
    /// Find an embedding attribute by name.
    #[must_use]
    pub fn embedding(&self, name: &str) -> Option<(u32, &EmbeddingTypeDef)> {
        self.embeddings
            .iter()
            .find(|(_, d)| d.name == name)
            .map(|(id, d)| (*id, d))
    }
}

/// A directed edge type between two vertex types.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct EdgeTypeDef {
    /// Type name (e.g. `knows`).
    pub name: String,
    /// Catalog id (also the storage `etype`).
    pub etype_id: u32,
    /// Source vertex type.
    pub from_type: u32,
    /// Target vertex type.
    pub to_type: u32,
}

/// The schema catalog.
#[derive(Debug, Default)]
pub struct Catalog {
    vertex_types: Vec<VertexTypeDef>,
    vertex_by_name: HashMap<String, u32>,
    edge_types: Vec<EdgeTypeDef>,
    edge_by_name: HashMap<String, u32>,
    spaces: HashMap<String, EmbeddingSpace>,
}

impl Catalog {
    /// Register a vertex type (store id must match registration order).
    pub fn add_vertex_type(
        &mut self,
        name: &str,
        type_id: u32,
        schema: AttrSchema,
    ) -> TvResult<()> {
        if self.vertex_by_name.contains_key(name) {
            return Err(TvError::Schema(format!("vertex type '{name}' exists")));
        }
        if type_id as usize != self.vertex_types.len() {
            return Err(TvError::Schema(format!(
                "vertex type id {type_id} out of order"
            )));
        }
        self.vertex_by_name.insert(name.to_string(), type_id);
        self.vertex_types.push(VertexTypeDef {
            name: name.to_string(),
            type_id,
            schema,
            embeddings: Vec::new(),
        });
        Ok(())
    }

    /// Register an edge type.
    pub fn add_edge_type(&mut self, name: &str, from_type: u32, to_type: u32) -> TvResult<u32> {
        if self.edge_by_name.contains_key(name) {
            return Err(TvError::Schema(format!("edge type '{name}' exists")));
        }
        if from_type as usize >= self.vertex_types.len()
            || to_type as usize >= self.vertex_types.len()
        {
            return Err(TvError::Schema(format!(
                "edge type '{name}' references unknown vertex type"
            )));
        }
        let etype_id = self.edge_types.len() as u32;
        self.edge_by_name.insert(name.to_string(), etype_id);
        self.edge_types.push(EdgeTypeDef {
            name: name.to_string(),
            etype_id,
            from_type,
            to_type,
        });
        Ok(etype_id)
    }

    /// Attach an embedding attribute to a vertex type.
    pub fn attach_embedding(
        &mut self,
        type_id: u32,
        attr_id: u32,
        def: EmbeddingTypeDef,
    ) -> TvResult<()> {
        let vt = self
            .vertex_types
            .get_mut(type_id as usize)
            .ok_or_else(|| TvError::NotFound(format!("vertex type {type_id}")))?;
        if vt.embeddings.iter().any(|(_, d)| d.name == def.name) {
            return Err(TvError::Schema(format!(
                "embedding '{}' already on '{}'",
                def.name, vt.name
            )));
        }
        vt.embeddings.push((attr_id, def));
        Ok(())
    }

    /// Register an embedding space (`CREATE EMBEDDING SPACE`).
    pub fn add_space(&mut self, space: EmbeddingSpace) -> TvResult<()> {
        if self.spaces.contains_key(&space.name) {
            return Err(TvError::Schema(format!(
                "embedding space '{}' exists",
                space.name
            )));
        }
        self.spaces.insert(space.name.clone(), space);
        Ok(())
    }

    /// Look up an embedding space.
    pub fn space(&self, name: &str) -> TvResult<&EmbeddingSpace> {
        self.spaces
            .get(name)
            .ok_or_else(|| TvError::NotFound(format!("embedding space '{name}'")))
    }

    /// Vertex type by name.
    pub fn vertex_type(&self, name: &str) -> TvResult<&VertexTypeDef> {
        self.vertex_by_name
            .get(name)
            .map(|&id| &self.vertex_types[id as usize])
            .ok_or_else(|| TvError::NotFound(format!("vertex type '{name}'")))
    }

    /// Vertex type by id.
    pub fn vertex_type_by_id(&self, id: u32) -> TvResult<&VertexTypeDef> {
        self.vertex_types
            .get(id as usize)
            .ok_or_else(|| TvError::NotFound(format!("vertex type {id}")))
    }

    /// Edge type by name.
    pub fn edge_type(&self, name: &str) -> TvResult<&EdgeTypeDef> {
        self.edge_by_name
            .get(name)
            .map(|&id| &self.edge_types[id as usize])
            .ok_or_else(|| TvError::NotFound(format!("edge type '{name}'")))
    }

    /// Edge type by id.
    pub fn edge_type_by_id(&self, id: u32) -> TvResult<&EdgeTypeDef> {
        self.edge_types
            .get(id as usize)
            .ok_or_else(|| TvError::NotFound(format!("edge type {id}")))
    }

    /// All vertex types.
    #[must_use]
    pub fn vertex_types(&self) -> &[VertexTypeDef] {
        &self.vertex_types
    }

    /// All edge types.
    #[must_use]
    pub fn edge_types(&self) -> &[EdgeTypeDef] {
        &self.edge_types
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tg_storage::AttrType;
    use tv_common::DistanceMetric;
    use tv_embedding::{IndexKind, VectorDataType};

    fn schema() -> AttrSchema {
        AttrSchema::new([("name".to_string(), AttrType::Str)]).unwrap()
    }

    #[test]
    fn vertex_and_edge_registration() {
        let mut c = Catalog::default();
        c.add_vertex_type("Person", 0, schema()).unwrap();
        c.add_vertex_type("Post", 1, schema()).unwrap();
        let knows = c.add_edge_type("knows", 0, 0).unwrap();
        let created = c.add_edge_type("hasCreator", 1, 0).unwrap();
        assert_eq!(knows, 0);
        assert_eq!(created, 1);
        assert_eq!(c.vertex_type("Post").unwrap().type_id, 1);
        assert_eq!(c.edge_type("knows").unwrap().from_type, 0);
        assert!(c.vertex_type("Nope").is_err());
        assert!(c.edge_type("nope").is_err());
    }

    #[test]
    fn duplicate_names_rejected() {
        let mut c = Catalog::default();
        c.add_vertex_type("Person", 0, schema()).unwrap();
        assert!(c.add_vertex_type("Person", 1, schema()).is_err());
        c.add_edge_type("knows", 0, 0).unwrap();
        assert!(c.add_edge_type("knows", 0, 0).is_err());
    }

    #[test]
    fn out_of_order_type_id_rejected() {
        let mut c = Catalog::default();
        assert!(c.add_vertex_type("Person", 5, schema()).is_err());
    }

    #[test]
    fn edge_to_unknown_type_rejected() {
        let mut c = Catalog::default();
        c.add_vertex_type("Person", 0, schema()).unwrap();
        assert!(c.add_edge_type("knows", 0, 7).is_err());
    }

    #[test]
    fn embedding_attachment_and_lookup() {
        let mut c = Catalog::default();
        c.add_vertex_type("Post", 0, schema()).unwrap();
        let def = EmbeddingTypeDef::new("content_emb", 128, "GPT4", DistanceMetric::Cosine);
        c.attach_embedding(0, 0, def.clone()).unwrap();
        let vt = c.vertex_type("Post").unwrap();
        let (attr_id, got) = vt.embedding("content_emb").unwrap();
        assert_eq!(attr_id, 0);
        assert_eq!(got, &def);
        assert!(vt.embedding("other").is_none());
        // Duplicate embedding name rejected.
        assert!(c.attach_embedding(0, 1, def).is_err());
    }

    #[test]
    fn spaces_register_and_mint() {
        let mut c = Catalog::default();
        let space = EmbeddingSpace {
            name: "GPT4_emb_space".into(),
            dimension: 1024,
            model: "GPT4".into(),
            index: IndexKind::Hnsw,
            datatype: VectorDataType::Float,
            metric: DistanceMetric::Cosine,
            quant: tv_common::QuantSpec::f32(),
            layout: tv_common::GraphLayout::default(),
        };
        c.add_space(space.clone()).unwrap();
        assert!(c.add_space(space).is_err());
        let got = c.space("GPT4_emb_space").unwrap();
        let attr = got.attribute("content_emb");
        assert_eq!(attr.dimension, 1024);
        assert!(c.space("missing").is_err());
    }
}
