//! Role-based access control over graph and vector data.
//!
//! One of the paper's four arguments for a unified system (§1): "it
//! supports efficient data governance by providing a single set of access
//! controls (e.g., role-based access control) for both vector data and
//! graph data". And §5.1's search path enforces it in the same bitmap that
//! masks deletions: "a filter function, based on a bitmap (marking all
//! deleted and **unauthorized** vectors as invalid)".
//!
//! The model is deliberately small: roles grant read access per vertex
//! type, optionally restricted by a row predicate (attribute-based row
//! security). Because vector attributes hang off vertices, one grant
//! governs both the attributes *and* the embeddings of a type — there is no
//! separate vector ACL to drift out of sync, which is the governance point
//! the paper makes against the two-system architecture.

use crate::graph::Graph;
use crate::vertex_set::VertexSet;
use parking_lot::RwLock;
use std::collections::{HashMap, HashSet};
use std::sync::Arc;
use tg_storage::AttrValue;
use tv_common::{Tid, TvError, TvResult};
use tv_embedding::service::TypedNeighbor;
use tv_hnsw::SearchStats;

/// Row-level predicate: vertex attribute `attr` must equal `value`.
#[derive(Debug, Clone, PartialEq)]
pub struct RowRule {
    /// Attribute name on the granted vertex type.
    pub attr: String,
    /// Required value.
    pub value: AttrValue,
}

/// A grant: read access to one vertex type, optionally row-restricted.
#[derive(Debug, Clone, PartialEq)]
pub struct Grant {
    /// Granted vertex type id.
    pub vertex_type: u32,
    /// Optional row-security rule (None = whole type).
    pub rule: Option<RowRule>,
}

/// A named role: a set of grants.
#[derive(Debug, Clone, Default)]
pub struct Role {
    grants: Vec<Grant>,
}

impl Role {
    /// Grant unrestricted read on a vertex type.
    #[must_use]
    pub fn allow_type(mut self, vertex_type: u32) -> Self {
        self.grants.push(Grant {
            vertex_type,
            rule: None,
        });
        self
    }

    /// Grant row-restricted read on a vertex type.
    #[must_use]
    pub fn allow_rows(mut self, vertex_type: u32, attr: &str, value: AttrValue) -> Self {
        self.grants.push(Grant {
            vertex_type,
            rule: Some(RowRule {
                attr: attr.to_string(),
                value,
            }),
        });
        self
    }

    fn covers_type(&self, vertex_type: u32) -> bool {
        self.grants.iter().any(|g| g.vertex_type == vertex_type)
    }
}

/// The access-control registry: roles and user→role assignments.
#[derive(Default)]
pub struct AccessControl {
    roles: RwLock<HashMap<String, Arc<Role>>>,
    users: RwLock<HashMap<String, HashSet<String>>>,
}

impl AccessControl {
    /// Empty registry.
    #[must_use]
    pub fn new() -> Self {
        AccessControl::default()
    }

    /// Define (or replace) a role.
    pub fn define_role(&self, name: &str, role: Role) {
        self.roles.write().insert(name.to_string(), Arc::new(role));
    }

    /// Assign a role to a user.
    pub fn assign(&self, user: &str, role: &str) -> TvResult<()> {
        if !self.roles.read().contains_key(role) {
            return Err(TvError::NotFound(format!("role '{role}'")));
        }
        self.users
            .write()
            .entry(user.to_string())
            .or_default()
            .insert(role.to_string());
        Ok(())
    }

    /// Revoke a role from a user.
    pub fn revoke(&self, user: &str, role: &str) {
        if let Some(set) = self.users.write().get_mut(user) {
            set.remove(role);
        }
    }

    fn roles_of(&self, user: &str) -> Vec<Arc<Role>> {
        let users = self.users.read();
        let roles = self.roles.read();
        users
            .get(user)
            .map(|names| names.iter().filter_map(|n| roles.get(n).cloned()).collect())
            .unwrap_or_default()
    }

    /// Whether `user` may read any rows of `vertex_type`.
    #[must_use]
    pub fn can_read_type(&self, user: &str, vertex_type: u32) -> bool {
        self.roles_of(user)
            .iter()
            .any(|r| r.covers_type(vertex_type))
    }

    /// Materialize the set of vertices of `vertex_type` that `user` may
    /// read at `tid` — the "authorized" side of the §5.1 validity bitmap.
    /// Returns `None` when the user has *unrestricted* access to the type
    /// (no bitmap needed — the engine reuses the liveness structure).
    pub fn authorized_vertices(
        &self,
        graph: &Graph,
        user: &str,
        vertex_type: u32,
        tid: Tid,
    ) -> TvResult<Option<VertexSet>> {
        let roles = self.roles_of(user);
        let grants: Vec<&Grant> = roles
            .iter()
            .flat_map(|r| r.grants.iter())
            .filter(|g| g.vertex_type == vertex_type)
            .collect();
        if grants.is_empty() {
            return Err(TvError::PermissionDenied(format!(
                "user '{user}' has no grant on vertex type {vertex_type}"
            )));
        }
        if grants.iter().any(|g| g.rule.is_none()) {
            return Ok(None); // unrestricted
        }
        // Union of all row-restricted grants.
        let rules: Vec<RowRule> = grants.iter().filter_map(|g| g.rule.clone()).collect();
        let set = graph.select_vertices(vertex_type, tid, |_, get| {
            rules
                .iter()
                .any(|rule| get(&rule.attr).as_ref() == Some(&rule.value))
        })?;
        Ok(Some(set))
    }

    /// The candidate-set restriction a vector search over `attr_ids` must
    /// respect for `user`: `None` when every touched type is unrestricted,
    /// otherwise the union of authorized vertices across the searched types.
    /// Rejects outright (with [`TvError::PermissionDenied`]) when any type
    /// lacks a grant.
    pub fn restriction_for_attrs(
        &self,
        graph: &Graph,
        user: &str,
        attr_ids: &[u32],
        tid: Tid,
    ) -> TvResult<Option<VertexSet>> {
        // Reject types without any grant.
        for &attr_id in attr_ids {
            let vt = graph.embeddings().attr(attr_id)?.vertex_type;
            if !self.can_read_type(user, vt) {
                return Err(TvError::PermissionDenied(format!(
                    "user '{user}' is not authorized for vertex type {vt}"
                )));
            }
        }
        // Combine row-security sets across the searched types.
        let mut restriction: Option<VertexSet> = None;
        let mut unrestricted_everywhere = true;
        for &attr_id in attr_ids {
            let vt = graph.embeddings().attr(attr_id)?.vertex_type;
            match self.authorized_vertices(graph, user, vt, tid)? {
                None => {
                    // Unrestricted on this type: its full live set is added
                    // below only if some other type is restricted.
                }
                Some(set) => {
                    unrestricted_everywhere = false;
                    restriction = Some(match restriction {
                        Some(acc) => acc.union(&set),
                        None => set,
                    });
                }
            }
        }
        if unrestricted_everywhere {
            return Ok(None);
        }
        // Mixed case: add the full live sets of unrestricted types so they
        // are not accidentally filtered out.
        let mut acc = restriction.unwrap_or_default();
        for &attr_id in attr_ids {
            let vt = graph.embeddings().attr(attr_id)?.vertex_type;
            if self.authorized_vertices(graph, user, vt, tid)?.is_none() {
                acc = acc.union(&graph.all_vertices(vt, tid)?);
            }
        }
        Ok(Some(acc))
    }
}

impl Graph {
    /// Vector search **as a user**: the single access-control surface the
    /// paper advocates — the same grants govern graph rows and their
    /// vectors, enforced through the validity-bitmap hand-off of §5.1.
    /// Unauthorized vertex types are rejected outright; row-restricted
    /// grants become pre-filter bitmaps intersected with any caller filter.
    #[allow(clippy::too_many_arguments)]
    pub fn vector_search_as(
        &self,
        acl: &AccessControl,
        user: &str,
        attr_ids: &[u32],
        query: &[f32],
        k: usize,
        ef: usize,
        filter: Option<&VertexSet>,
        tid: Tid,
    ) -> TvResult<(Vec<TypedNeighbor>, SearchStats)> {
        let authorized = acl.restriction_for_attrs(self, user, attr_ids, tid)?;

        // Intersect with the caller's filter (both are candidate sets).
        let effective = match (authorized, filter) {
            (None, None) => None,
            (None, Some(f)) => Some(f.clone()),
            (Some(a), None) => Some(a),
            (Some(a), Some(f)) => Some(a.intersect(f)),
        };
        self.vector_search(attr_ids, query, k, ef, effective.as_ref(), tid)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tg_storage::AttrType;
    use tv_common::ids::SegmentLayout;
    use tv_common::DistanceMetric;
    use tv_embedding::{EmbeddingTypeDef, ServiceConfig};

    fn secured_graph() -> (Graph, AccessControl, Vec<tv_common::VertexId>) {
        let g = Graph::with_config(
            SegmentLayout::with_capacity(8),
            ServiceConfig {
                planner: tv_common::PlannerConfig::default().with_brute_threshold(4),
                query_threads: 1,
                default_ef: 32,
                build_threads: 1,
            },
        );
        g.create_vertex_type("Doc", &[("classification", AttrType::Str)])
            .unwrap();
        g.add_embedding_attribute(
            "Doc",
            EmbeddingTypeDef::new("emb", 4, "M", DistanceMetric::L2),
        )
        .unwrap();
        let ids = g.allocate_many(0, 10).unwrap();
        let mut txn = g.txn();
        for (i, &id) in ids.iter().enumerate() {
            let class = if i % 2 == 0 { "public" } else { "secret" };
            txn = txn
                .upsert_vertex(0, id, vec![AttrValue::Str(class.into())])
                .set_vector(0, id, vec![i as f32; 4]);
        }
        txn.commit().unwrap();

        let acl = AccessControl::new();
        acl.define_role("admin", Role::default().allow_type(0));
        acl.define_role(
            "analyst",
            Role::default().allow_rows(0, "classification", AttrValue::Str("public".into())),
        );
        acl.assign("alice", "admin").unwrap();
        acl.assign("bob", "analyst").unwrap();
        (g, acl, ids)
    }

    #[test]
    fn admin_sees_everything() {
        let (g, acl, ids) = secured_graph();
        let tid = g.read_tid();
        let (r, _) = g
            .vector_search_as(&acl, "alice", &[0], &[1.0; 4], 1, 32, None, tid)
            .unwrap();
        assert_eq!(r[0].neighbor.id, ids[1]); // the secret doc nearest to 1.0
    }

    #[test]
    fn analyst_only_sees_public_rows() {
        let (g, acl, ids) = secured_graph();
        let tid = g.read_tid();
        // Nearest to 1.0 overall is secret doc 1; bob must get public doc 0
        // or 2 instead.
        let (r, _) = g
            .vector_search_as(&acl, "bob", &[0], &[1.0; 4], 3, 32, None, tid)
            .unwrap();
        assert!(!r.is_empty());
        for hit in &r {
            let i = ids.iter().position(|&x| x == hit.neighbor.id).unwrap();
            assert_eq!(i % 2, 0, "doc {i} is secret but bob saw it");
        }
    }

    #[test]
    fn stranger_is_rejected() {
        let (g, acl, _) = secured_graph();
        let tid = g.read_tid();
        let err = g
            .vector_search_as(&acl, "mallory", &[0], &[1.0; 4], 1, 32, None, tid)
            .unwrap_err();
        assert!(matches!(err, TvError::PermissionDenied(_)));
    }

    #[test]
    fn caller_filter_intersects_with_grants() {
        let (g, acl, ids) = secured_graph();
        let tid = g.read_tid();
        // Bob (public only) filtered to {0, 1}: only 0 remains visible.
        let filter = VertexSet::from_iter_typed(0, [ids[0], ids[1]]);
        let (r, _) = g
            .vector_search_as(&acl, "bob", &[0], &[1.0; 4], 5, 32, Some(&filter), tid)
            .unwrap();
        assert_eq!(r.len(), 1);
        assert_eq!(r[0].neighbor.id, ids[0]);
    }

    #[test]
    fn revoke_removes_access() {
        let (g, acl, _) = secured_graph();
        let tid = g.read_tid();
        acl.revoke("alice", "admin");
        assert!(g
            .vector_search_as(&acl, "alice", &[0], &[1.0; 4], 1, 32, None, tid)
            .is_err());
    }

    #[test]
    fn unknown_role_assignment_fails() {
        let acl = AccessControl::new();
        assert!(acl.assign("x", "ghost").is_err());
    }

    #[test]
    fn grants_cover_vectors_and_rows_together() {
        // The governance argument: one grant controls both attribute reads
        // (select_vertices) and vector search.
        let (g, acl, _) = secured_graph();
        let tid = g.read_tid();
        let set = acl.authorized_vertices(&g, "bob", 0, tid).unwrap().unwrap();
        assert_eq!(set.len(), 5); // the five public docs
        assert!(acl
            .authorized_vertices(&g, "alice", 0, tid)
            .unwrap()
            .is_none());
    }
}
