//! Property-based tests for vertex set algebra (GSQL's `UNION` /
//! `INTERSECT` / `MINUS` must behave like real set algebra) and the
//! pre-filter bitmap conversion.

use crate::vertex_set::VertexSet;
use proptest::prelude::*;
use std::collections::HashSet;
use tv_common::ids::{LocalId, SegmentId};
use tv_common::VertexId;

fn member_strategy() -> impl Strategy<Value = (u32, VertexId)> {
    (0u32..3, 0u32..4, 0u32..16)
        .prop_map(|(t, seg, l)| (t, VertexId::new(SegmentId(seg), LocalId(l))))
}

fn set_strategy() -> impl Strategy<Value = VertexSet> {
    prop::collection::vec(member_strategy(), 0..24)
        .prop_map(|members| members.into_iter().collect())
}

fn as_hashset(s: &VertexSet) -> HashSet<(u32, VertexId)> {
    s.iter().collect()
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 64, ..ProptestConfig::default() })]

    #[test]
    fn union_matches_hashset(a in set_strategy(), b in set_strategy()) {
        let got = as_hashset(&a.union(&b));
        let want: HashSet<_> = as_hashset(&a).union(&as_hashset(&b)).copied().collect();
        prop_assert_eq!(got, want);
    }

    #[test]
    fn intersect_matches_hashset(a in set_strategy(), b in set_strategy()) {
        let got = as_hashset(&a.intersect(&b));
        let want: HashSet<_> = as_hashset(&a).intersection(&as_hashset(&b)).copied().collect();
        prop_assert_eq!(got, want);
    }

    #[test]
    fn minus_matches_hashset(a in set_strategy(), b in set_strategy()) {
        let got = as_hashset(&a.minus(&b));
        let want: HashSet<_> = as_hashset(&a).difference(&as_hashset(&b)).copied().collect();
        prop_assert_eq!(got, want);
    }

    #[test]
    fn algebra_identities(a in set_strategy(), b in set_strategy()) {
        // A = (A ∩ B) ∪ (A \ B)
        let rebuilt = a.intersect(&b).union(&a.minus(&b));
        prop_assert_eq!(as_hashset(&rebuilt), as_hashset(&a));
        // (A ∪ B) \ B ⊆ A
        let diff = a.union(&b).minus(&b);
        prop_assert!(as_hashset(&diff).is_subset(&as_hashset(&a)));
        // |A ∪ B| = |A| + |B| - |A ∩ B|
        prop_assert_eq!(
            a.union(&b).len() + a.intersect(&b).len(),
            a.len() + b.len()
        );
    }

    /// Bitmap conversion: every member of the requested type is set, nothing
    /// else, capped by capacity.
    #[test]
    fn segment_bitmaps_are_exact(a in set_strategy(), type_id in 0u32..3) {
        let capacity = 16;
        let maps = a.to_segment_bitmaps(type_id, capacity);
        // Every member of the type appears.
        for (t, id) in a.iter() {
            if t == type_id {
                let bm = maps.get(&id.segment());
                prop_assert!(bm.is_some(), "missing segment {:?}", id.segment());
                prop_assert!(bm.unwrap().get(id.local().0 as usize));
            }
        }
        // Total set bits equal the member count of that type.
        let total: usize = maps.values().map(|b| b.count_ones()).sum();
        prop_assert_eq!(total, a.of_type(type_id).len());
    }
}
