//! Vertex set variables — GSQL's composition currency.
//!
//! Each query block produces a vertex set; later blocks consume it in their
//! `FROM` clause, and `VectorSearch()` both accepts one as a candidate
//! filter and returns one (§5.5). Sets are typed: members are grouped by
//! vertex type, because local ids are only unique within a type.

use std::collections::{BTreeSet, HashMap};
use tv_common::{Bitmap, SegmentId, VertexId};

/// A set of vertices, grouped by vertex type.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct VertexSet {
    members: HashMap<u32, BTreeSet<VertexId>>,
}

impl VertexSet {
    /// Empty set.
    #[must_use]
    pub fn new() -> Self {
        VertexSet::default()
    }

    /// Set with the given members of one type.
    #[must_use]
    pub fn from_iter_typed(type_id: u32, ids: impl IntoIterator<Item = VertexId>) -> Self {
        let mut s = VertexSet::new();
        for id in ids {
            s.insert(type_id, id);
        }
        s
    }

    /// Add a vertex.
    pub fn insert(&mut self, type_id: u32, id: VertexId) {
        self.members.entry(type_id).or_default().insert(id);
    }

    /// Membership test.
    #[must_use]
    pub fn contains(&self, type_id: u32, id: VertexId) -> bool {
        self.members.get(&type_id).is_some_and(|s| s.contains(&id))
    }

    /// Total member count across types.
    #[must_use]
    pub fn len(&self) -> usize {
        self.members.values().map(BTreeSet::len).sum()
    }

    /// True if no members.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Vertex types present in the set.
    #[must_use]
    pub fn types(&self) -> Vec<u32> {
        let mut t: Vec<u32> = self
            .members
            .iter()
            .filter(|(_, s)| !s.is_empty())
            .map(|(&t, _)| t)
            .collect();
        t.sort_unstable();
        t
    }

    /// Members of one type, ascending.
    #[must_use]
    pub fn of_type(&self, type_id: u32) -> Vec<VertexId> {
        self.members
            .get(&type_id)
            .map(|s| s.iter().copied().collect())
            .unwrap_or_default()
    }

    /// Iterate `(type_id, vertex)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (u32, VertexId)> + '_ {
        self.members
            .iter()
            .flat_map(|(&t, s)| s.iter().map(move |&v| (t, v)))
    }

    /// GSQL `UNION`.
    #[must_use]
    pub fn union(&self, other: &VertexSet) -> VertexSet {
        let mut out = self.clone();
        for (t, ids) in &other.members {
            out.members
                .entry(*t)
                .or_default()
                .extend(ids.iter().copied());
        }
        out
    }

    /// GSQL `INTERSECT`.
    #[must_use]
    pub fn intersect(&self, other: &VertexSet) -> VertexSet {
        let mut out = VertexSet::new();
        for (t, ids) in &self.members {
            if let Some(theirs) = other.members.get(t) {
                let common: BTreeSet<VertexId> = ids.intersection(theirs).copied().collect();
                if !common.is_empty() {
                    out.members.insert(*t, common);
                }
            }
        }
        out
    }

    /// GSQL `MINUS`.
    #[must_use]
    pub fn minus(&self, other: &VertexSet) -> VertexSet {
        let mut out = VertexSet::new();
        for (t, ids) in &self.members {
            let remaining: BTreeSet<VertexId> = match other.members.get(t) {
                Some(theirs) => ids.difference(theirs).copied().collect(),
                None => ids.clone(),
            };
            if !remaining.is_empty() {
                out.members.insert(*t, remaining);
            }
        }
        out
    }

    /// Convert the members of `type_id` into per-segment validity bitmaps —
    /// the pre-filter hand-off to the vector index (§5.2). `capacity` is the
    /// segment capacity of that type's layout.
    #[must_use]
    pub fn to_segment_bitmaps(&self, type_id: u32, capacity: usize) -> HashMap<SegmentId, Bitmap> {
        let mut out: HashMap<SegmentId, Bitmap> = HashMap::new();
        if let Some(ids) = self.members.get(&type_id) {
            for id in ids {
                let bm = out
                    .entry(id.segment())
                    .or_insert_with(|| Bitmap::new(capacity));
                let l = id.local().0 as usize;
                if l < capacity {
                    bm.set(l, true);
                }
            }
        }
        out
    }
}

impl FromIterator<(u32, VertexId)> for VertexSet {
    fn from_iter<I: IntoIterator<Item = (u32, VertexId)>>(iter: I) -> Self {
        let mut s = VertexSet::new();
        for (t, v) in iter {
            s.insert(t, v);
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tv_common::ids::{LocalId, SegmentId};

    fn vid(seg: u32, l: u32) -> VertexId {
        VertexId::new(SegmentId(seg), LocalId(l))
    }

    #[test]
    fn insert_contains_len() {
        let mut s = VertexSet::new();
        s.insert(0, vid(0, 1));
        s.insert(0, vid(0, 1)); // dedup
        s.insert(1, vid(0, 1)); // different type, same id
        assert_eq!(s.len(), 2);
        assert!(s.contains(0, vid(0, 1)));
        assert!(!s.contains(0, vid(0, 2)));
        assert_eq!(s.types(), vec![0, 1]);
    }

    #[test]
    fn set_algebra() {
        let a = VertexSet::from_iter_typed(0, [vid(0, 1), vid(0, 2), vid(0, 3)]);
        let b = VertexSet::from_iter_typed(0, [vid(0, 2), vid(0, 3), vid(0, 4)]);
        assert_eq!(a.union(&b).len(), 4);
        assert_eq!(a.intersect(&b).len(), 2);
        assert_eq!(a.minus(&b).of_type(0), vec![vid(0, 1)]);
    }

    #[test]
    fn algebra_respects_types() {
        let a = VertexSet::from_iter_typed(0, [vid(0, 1)]);
        let b = VertexSet::from_iter_typed(1, [vid(0, 1)]);
        assert!(a.intersect(&b).is_empty());
        assert_eq!(a.union(&b).len(), 2);
        assert_eq!(a.minus(&b), a);
    }

    #[test]
    fn segment_bitmaps_group_by_segment() {
        let s = VertexSet::from_iter_typed(0, [vid(0, 1), vid(0, 5), vid(2, 3)]);
        let maps = s.to_segment_bitmaps(0, 8);
        assert_eq!(maps.len(), 2);
        let s0 = &maps[&SegmentId(0)];
        assert!(s0.get(1) && s0.get(5) && !s0.get(0));
        assert_eq!(maps[&SegmentId(2)].count_ones(), 1);
        // Absent type → empty map.
        assert!(s.to_segment_bitmaps(9, 8).is_empty());
    }

    #[test]
    fn iter_and_collect() {
        let s: VertexSet = [(0u32, vid(0, 1)), (1u32, vid(0, 2))].into_iter().collect();
        let mut pairs: Vec<(u32, VertexId)> = s.iter().collect();
        pairs.sort();
        assert_eq!(pairs, vec![(0, vid(0, 1)), (1, vid(0, 2))]);
    }

    #[test]
    fn of_type_sorted() {
        let s = VertexSet::from_iter_typed(0, [vid(1, 0), vid(0, 5), vid(0, 1)]);
        assert_eq!(s.of_type(0), vec![vid(0, 1), vid(0, 5), vid(1, 0)]);
    }
}
