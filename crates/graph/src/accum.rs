//! Accumulators — GSQL's runtime aggregation variables (§2.1).
//!
//! Global accumulators (`@@`) are read and written across query blocks;
//! vertex-local accumulators (`@`) hang off vertices. The reproduction
//! provides the ones the paper's queries use: sum, max, set, map (the
//! `distanceMap` output parameter of `VectorSearch()`), and the bounded
//! top-k heap accumulator that powers vector similarity join (§5.4).

use std::collections::HashMap;
use tv_common::{Neighbor, NeighborHeap, VertexId};

/// `SumAccum<INT/DOUBLE>`.
#[derive(Debug, Clone, Default)]
pub struct SumAccum {
    value: f64,
}

impl SumAccum {
    /// Add to the accumulator (`+=` in GSQL).
    pub fn add(&mut self, v: f64) {
        self.value += v;
    }

    /// Current value.
    #[must_use]
    pub fn get(&self) -> f64 {
        self.value
    }
}

/// `MaxAccum<DOUBLE>`.
#[derive(Debug, Clone, Default)]
pub struct MaxAccum {
    value: Option<f64>,
}

impl MaxAccum {
    /// Offer a value.
    pub fn add(&mut self, v: f64) {
        self.value = Some(self.value.map_or(v, |m| m.max(v)));
    }

    /// Current max, if anything was offered.
    #[must_use]
    pub fn get(&self) -> Option<f64> {
        self.value
    }
}

/// `SetAccum<VERTEX>` — collects vertices (type-tagged).
#[derive(Debug, Clone, Default)]
pub struct SetAccum {
    items: std::collections::BTreeSet<(u32, VertexId)>,
}

impl SetAccum {
    /// Insert a vertex.
    pub fn add(&mut self, type_id: u32, id: VertexId) {
        self.items.insert((type_id, id));
    }

    /// Number of distinct members.
    #[must_use]
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// True if empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// Iterate members.
    pub fn iter(&self) -> impl Iterator<Item = (u32, VertexId)> + '_ {
        self.items.iter().copied()
    }

    /// Convert into a [`crate::VertexSet`].
    #[must_use]
    pub fn to_vertex_set(&self) -> crate::VertexSet {
        self.iter().collect()
    }
}

/// `MapAccum<VERTEX, DOUBLE>` — e.g. the top-k distance map returned by
/// `VectorSearch()` (§5.5, query Q3's `@@disMap`).
#[derive(Debug, Clone, Default)]
pub struct MapAccum {
    entries: HashMap<(u32, VertexId), f64>,
}

impl MapAccum {
    /// Insert or overwrite an entry.
    pub fn put(&mut self, type_id: u32, id: VertexId, value: f64) {
        self.entries.insert((type_id, id), value);
    }

    /// Read an entry.
    #[must_use]
    pub fn get(&self, type_id: u32, id: VertexId) -> Option<f64> {
        self.entries.get(&(type_id, id)).copied()
    }

    /// Number of entries.
    #[must_use]
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True if empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Entries sorted by ascending value (distance order).
    #[must_use]
    pub fn sorted_by_value(&self) -> Vec<((u32, VertexId), f64)> {
        let mut v: Vec<_> = self.entries.iter().map(|(&k, &d)| (k, d)).collect();
        v.sort_by(|a, b| a.1.total_cmp(&b.1).then_with(|| a.0.cmp(&b.0)));
        v
    }
}

/// `HeapAccum` over `(pair, score)` — keeps the k smallest scores. Vector
/// similarity join pushes every matched `(source, target)` pair's distance
/// through one of these during MPP computation (§5.4).
#[derive(Debug, Clone)]
pub struct PairHeapAccum {
    heap: NeighborHeap,
    /// Pair payloads keyed by a synthetic id; bounded like the heap.
    pairs: HashMap<u64, (VertexId, VertexId)>,
    next_key: u64,
}

impl PairHeapAccum {
    /// Heap retaining the `k` best pairs.
    #[must_use]
    pub fn new(k: usize) -> Self {
        PairHeapAccum {
            heap: NeighborHeap::new(k),
            pairs: HashMap::new(),
            next_key: 0,
        }
    }

    /// Offer a pair with its distance.
    pub fn add(&mut self, source: VertexId, target: VertexId, dist: f32) {
        let key = self.next_key;
        self.next_key += 1;
        if self.heap.push(Neighbor::new(VertexId(key), dist)) {
            self.pairs.insert(key, (source, target));
            // Opportunistic GC once the side table doubles the heap size.
            if self.pairs.len() > 2 * self.heap.k().max(1) {
                let live: std::collections::HashSet<u64> = self
                    .heap
                    .clone()
                    .into_sorted()
                    .iter()
                    .map(|n| n.id.0)
                    .collect();
                self.pairs.retain(|k, _| live.contains(k));
            }
        }
    }

    /// Best pairs, nearest first.
    #[must_use]
    pub fn into_sorted(self) -> Vec<(VertexId, VertexId, f32)> {
        let pairs = self.pairs;
        self.heap
            .into_sorted()
            .into_iter()
            .filter_map(|n| pairs.get(&n.id.0).map(|&(s, t)| (s, t, n.dist)))
            .collect()
    }

    /// Number of retained pairs (≤ k).
    #[must_use]
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// True if nothing retained.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tv_common::ids::{LocalId, SegmentId};

    fn vid(l: u32) -> VertexId {
        VertexId::new(SegmentId(0), LocalId(l))
    }

    #[test]
    fn sum_accum() {
        let mut a = SumAccum::default();
        a.add(1.5);
        a.add(2.5);
        assert_eq!(a.get(), 4.0);
    }

    #[test]
    fn max_accum() {
        let mut a = MaxAccum::default();
        assert_eq!(a.get(), None);
        a.add(3.0);
        a.add(-1.0);
        assert_eq!(a.get(), Some(3.0));
    }

    #[test]
    fn set_accum_dedupes_and_converts() {
        let mut a = SetAccum::default();
        a.add(0, vid(1));
        a.add(0, vid(1));
        a.add(1, vid(1));
        assert_eq!(a.len(), 2);
        let vs = a.to_vertex_set();
        assert!(vs.contains(0, vid(1)));
        assert!(vs.contains(1, vid(1)));
    }

    #[test]
    fn map_accum_sorted_by_distance() {
        let mut m = MapAccum::default();
        m.put(0, vid(1), 0.9);
        m.put(0, vid(2), 0.1);
        m.put(0, vid(3), 0.5);
        let sorted = m.sorted_by_value();
        assert_eq!(sorted[0].0 .1, vid(2));
        assert_eq!(sorted[2].0 .1, vid(1));
        assert_eq!(m.get(0, vid(3)), Some(0.5));
        assert_eq!(m.get(1, vid(3)), None);
    }

    #[test]
    fn pair_heap_keeps_k_best() {
        let mut h = PairHeapAccum::new(2);
        h.add(vid(0), vid(1), 5.0);
        h.add(vid(2), vid(3), 1.0);
        h.add(vid(4), vid(5), 3.0);
        h.add(vid(6), vid(7), 0.5);
        let best = h.into_sorted();
        assert_eq!(best.len(), 2);
        assert_eq!(best[0], (vid(6), vid(7), 0.5));
        assert_eq!(best[1], (vid(2), vid(3), 1.0));
    }

    #[test]
    fn pair_heap_gc_keeps_correctness_under_churn() {
        let mut h = PairHeapAccum::new(3);
        for i in 0..1000u32 {
            // Decreasing distances: every add displaces the worst.
            h.add(vid(i), vid(i + 1), 1000.0 - i as f32);
        }
        let best = h.into_sorted();
        assert_eq!(best.len(), 3);
        assert_eq!(best[0].0, vid(999));
        assert!(best.windows(2).all(|w| w[0].2 <= w[1].2));
    }
}
