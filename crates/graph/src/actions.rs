//! MPP parallel primitives: `VertexAction` and `EdgeAction` (§2.1).
//!
//! TigerGraph exposes two parallel primitives that run user-defined
//! functions across segments; the filtered-vector-search pipeline is
//! literally `VertexAction` (evaluate the predicate, produce bitmaps)
//! feeding `EmbeddingAction` (per-segment index search) — the query plans
//! shown in §5.2/§5.3.

use crate::graph::Graph;
use crate::vertex_set::VertexSet;
use std::collections::HashMap;
use std::sync::Arc;
use tg_storage::segment::SegmentStore;
use tg_storage::AttrValue;
use tv_common::ids::{LocalId, SegmentLayout};
use tv_common::{Bitmap, SegmentId, Tid, TvResult, VertexId};

impl Graph {
    /// **VertexAction**: run `f` over every segment of `type_id` in
    /// parallel, collecting per-segment results in segment order. `f`
    /// receives the segment store and its id.
    pub fn vertex_action<R: Send>(
        &self,
        type_id: u32,
        f: impl Fn(&SegmentStore, SegmentId) -> R + Sync,
    ) -> TvResult<Vec<R>> {
        let store = self.store().vertex_type(type_id)?;
        let segments = store.all_segments();
        let threads = self.embeddings().config().query_threads;
        if threads <= 1 || segments.len() <= 1 {
            return Ok(segments
                .iter()
                .map(|s| {
                    let guard = s.read();
                    f(&guard, guard.segment_id)
                })
                .collect());
        }
        let n = segments.len();
        let workers = threads.min(n);
        let chunk = n.div_ceil(workers);
        let mut slots: Vec<Option<R>> = (0..n).map(|_| None).collect();
        std::thread::scope(|scope| {
            let f = &f;
            let mut rest = &mut slots[..];
            let mut seg_iter = segments.into_iter();
            for _ in 0..workers {
                let batch: Vec<Arc<parking_lot::RwLock<SegmentStore>>> =
                    seg_iter.by_ref().take(chunk).collect();
                if batch.is_empty() {
                    break;
                }
                let (head, tail) = rest.split_at_mut(batch.len());
                rest = tail;
                scope.spawn(move || {
                    for (slot, seg) in head.iter_mut().zip(batch) {
                        let guard = seg.read();
                        *slot = Some(f(&guard, guard.segment_id));
                    }
                });
            }
        });
        Ok(slots.into_iter().map(|s| s.expect("slot filled")).collect())
    }

    /// Evaluate `pred` over every live vertex of `type_id` at `tid` and
    /// produce per-segment validity bitmaps — the pre-filter stage of
    /// filtered vector search (§5.2). Segments with no qualifying vertex are
    /// omitted.
    pub fn filter_bitmaps(
        &self,
        type_id: u32,
        tid: Tid,
        pred: impl Fn(VertexId, &dyn Fn(&str) -> Option<AttrValue>) -> bool + Sync,
    ) -> TvResult<HashMap<SegmentId, Bitmap>> {
        let store = self.store().vertex_type(type_id)?;
        let schema = Arc::clone(store.schema());
        let capacity = store.layout().capacity;
        let per_segment = self.vertex_action(type_id, |seg, seg_id| {
            let mut bm = Bitmap::new(capacity);
            let live = seg.live_bitmap(tid);
            let mut any = false;
            for local in live.iter_ones() {
                let id = VertexId::new(seg_id, LocalId(local as u32));
                let row = seg.row(local, tid);
                let get = |name: &str| -> Option<AttrValue> {
                    let col = schema.index_of(name)?;
                    row.as_ref().and_then(|r| r.get(col).cloned())
                };
                if pred(id, &get) {
                    bm.set(local, true);
                    any = true;
                }
            }
            (seg_id, any.then_some(bm))
        })?;
        Ok(per_segment
            .into_iter()
            .filter_map(|(seg_id, bm)| bm.map(|b| (seg_id, b)))
            .collect())
    }

    /// Materialize the vertices of `type_id` satisfying `pred` as a
    /// [`VertexSet`] — the `SELECT s FROM (s:Type) WHERE ...` block.
    pub fn select_vertices(
        &self,
        type_id: u32,
        tid: Tid,
        pred: impl Fn(VertexId, &dyn Fn(&str) -> Option<AttrValue>) -> bool + Sync,
    ) -> TvResult<VertexSet> {
        let bitmaps = self.filter_bitmaps(type_id, tid, pred)?;
        let mut set = VertexSet::new();
        for (seg, bm) in bitmaps {
            for local in bm.iter_ones() {
                set.insert(type_id, VertexId::new(seg, LocalId(local as u32)));
            }
        }
        Ok(set)
    }

    /// All live vertices of a type at `tid`.
    pub fn all_vertices(&self, type_id: u32, tid: Tid) -> TvResult<VertexSet> {
        self.select_vertices(type_id, tid, |_, _| true)
    }

    /// **EdgeAction**: run `f` over every live out-edge of `etype` whose
    /// source has type `from_type`, in segment-parallel fashion. Results are
    /// concatenated in segment order.
    pub fn edge_action<R: Send>(
        &self,
        from_type: u32,
        etype: u32,
        tid: Tid,
        f: impl Fn(VertexId, VertexId) -> R + Sync,
    ) -> TvResult<Vec<R>> {
        let per_segment = self.vertex_action(from_type, |seg, seg_id| {
            let mut out = Vec::new();
            let live = seg.live_bitmap(tid);
            for local in live.iter_ones() {
                let from = VertexId::new(seg_id, LocalId(local as u32));
                for to in seg.edges(local, etype, tid) {
                    out.push(f(from, to));
                }
            }
            out
        })?;
        Ok(per_segment.into_iter().flatten().collect())
    }

    /// Expand a frontier one hop along `etype` (source type `from_type`,
    /// targets of the edge type's target type). Returns the target set.
    pub fn expand(
        &self,
        frontier: &VertexSet,
        from_type: u32,
        etype: u32,
        to_type: u32,
        tid: Tid,
    ) -> TvResult<VertexSet> {
        let store = self.store().vertex_type(from_type)?;
        let mut out = VertexSet::new();
        for id in frontier.of_type(from_type) {
            for target in store.edges(id, etype, tid) {
                out.insert(to_type, target);
            }
        }
        Ok(out)
    }

    /// The layout of a vertex type (for bitmap capacity decisions).
    pub fn type_layout(&self, type_id: u32) -> TvResult<SegmentLayout> {
        Ok(self.store().vertex_type(type_id)?.layout())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tg_storage::AttrType;
    use tv_embedding::ServiceConfig;

    fn graph() -> (Graph, u32, u32) {
        let g = Graph::with_config(
            SegmentLayout::with_capacity(4),
            ServiceConfig {
                planner: tv_common::PlannerConfig::default().with_brute_threshold(4),
                query_threads: 2,
                default_ef: 32,
                build_threads: 1,
            },
        );
        let person = g
            .create_vertex_type("Person", &[("name", AttrType::Str), ("age", AttrType::Int)])
            .unwrap();
        let knows = g.create_edge_type("knows", "Person", "Person").unwrap();
        (g, person, knows)
    }

    fn load_people(g: &Graph, person: u32, n: usize) -> Vec<VertexId> {
        let ids = g.allocate_many(person, n).unwrap();
        let mut txn = g.txn();
        for (i, &id) in ids.iter().enumerate() {
            txn = txn.upsert_vertex(
                person,
                id,
                vec![AttrValue::Str(format!("p{i}")), AttrValue::Int(i as i64)],
            );
        }
        txn.commit().unwrap();
        ids
    }

    #[test]
    fn vertex_action_covers_all_segments() {
        let (g, person, _) = graph();
        load_people(&g, person, 10); // 3 segments at capacity 4
        let counts = g
            .vertex_action(person, |seg, _| seg.live_bitmap(g.read_tid()).count_ones())
            .unwrap();
        assert_eq!(counts, vec![4, 4, 2]);
    }

    #[test]
    fn filter_bitmaps_prefilter() {
        let (g, person, _) = graph();
        load_people(&g, person, 10);
        let tid = g.read_tid();
        let bitmaps = g
            .filter_bitmaps(person, tid, |_, get| {
                get("age").and_then(|v| v.as_int()).is_some_and(|a| a >= 8)
            })
            .unwrap();
        // Only ages 8, 9 qualify — both in segment 2.
        assert_eq!(bitmaps.len(), 1);
        assert_eq!(bitmaps[&SegmentId(2)].count_ones(), 2);
    }

    #[test]
    fn select_vertices_builds_set() {
        let (g, person, _) = graph();
        let ids = load_people(&g, person, 6);
        let tid = g.read_tid();
        let evens = g
            .select_vertices(person, tid, |_, get| {
                get("age")
                    .and_then(|v| v.as_int())
                    .is_some_and(|a| a % 2 == 0)
            })
            .unwrap();
        assert_eq!(evens.len(), 3);
        assert!(evens.contains(person, ids[0]));
        assert!(!evens.contains(person, ids[1]));
        let all = g.all_vertices(person, tid).unwrap();
        assert_eq!(all.len(), 6);
    }

    #[test]
    fn edge_action_and_expand() {
        let (g, person, knows) = graph();
        let ids = load_people(&g, person, 5);
        g.txn()
            .add_edge(knows, person, ids[0], ids[1])
            .add_edge(knows, person, ids[0], ids[2])
            .add_edge(knows, person, ids[1], ids[3])
            .commit()
            .unwrap();
        let tid = g.read_tid();
        let pairs = g
            .edge_action(person, knows, tid, |from, to| (from, to))
            .unwrap();
        assert_eq!(pairs.len(), 3);

        let frontier = VertexSet::from_iter_typed(person, [ids[0]]);
        let hop1 = g.expand(&frontier, person, knows, person, tid).unwrap();
        assert_eq!(hop1.len(), 2);
        let hop2 = g.expand(&hop1, person, knows, person, tid).unwrap();
        assert_eq!(hop2.of_type(person), vec![ids[3]]);
    }

    #[test]
    fn deleted_vertices_excluded_from_actions() {
        let (g, person, _) = graph();
        let ids = load_people(&g, person, 4);
        g.txn().delete_vertex(person, ids[1]).commit().unwrap();
        let tid = g.read_tid();
        let all = g.all_vertices(person, tid).unwrap();
        assert_eq!(all.len(), 3);
        assert!(!all.contains(person, ids[1]));
    }
}
