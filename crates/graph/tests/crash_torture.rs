//! Crash-recovery torture: run a deterministic mixed graph+vector workload,
//! "crash" (via deterministic crash-point injection) at every reachable
//! crash point, recover, resume, and require the final state to be
//! bit-identical to a no-crash oracle.
//!
//! The workload commits 30 transactions interleaved with checkpoints (after
//! TID 10 and 20) and a two-stage embedding vacuum (after TID 15), so the
//! crash points cover: mid-WAL-append, post-WAL-pre-apply, mid-checkpoint
//! file writes, post-manifest-pre-WAL-truncate, and mid-index-merge.
//!
//! Searches use a brute-force threshold above the dataset size, so top-k
//! results are exact and comparable bit-for-bit regardless of how the HNSW
//! index was (re)built.

use std::path::{Path, PathBuf};
use std::sync::Arc;
use tg_graph::Graph;
use tg_storage::{AttrType, AttrValue};
use tv_common::ids::SegmentLayout;
use tv_common::{
    CrashPlan, CrashPoint, DistanceMetric, QuantSpec, SplitMix64, StorageTier, Tid, TvError,
    TvResult,
};
use tv_embedding::{EmbeddingTypeDef, ServiceConfig};

const N_TXNS: u64 = 30;
const N_VERTICES: u32 = 24; // 3 segments of capacity 8
const DIM: usize = 4;
const DOC: u32 = 0; // vertex type id
const LINKS: u32 = 0; // edge type id
const EMB: u32 = 0; // embedding attribute id

fn layout() -> SegmentLayout {
    SegmentLayout::with_capacity(8)
}

fn config() -> ServiceConfig {
    ServiceConfig {
        // Above the dataset size: every segment search is an exact scan,
        // so results are deterministic however the index was built.
        planner: tv_common::PlannerConfig::default().with_brute_threshold(1024),
        query_threads: 1,
        default_ef: 64,
        build_threads: 1,
    }
}

fn test_dir(label: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("tv-torture-{}-{label}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn open(dir: &Path, plan: Option<Arc<CrashPlan>>) -> Graph {
    let g = Graph::durable_with_plan(dir, layout(), config(), plan).unwrap();
    g.create_vertex_type("Doc", &[("title", AttrType::Str), ("score", AttrType::Int)])
        .unwrap();
    g.create_edge_type("links", "Doc", "Doc").unwrap();
    g.add_embedding_attribute(
        "Doc",
        EmbeddingTypeDef::new("emb", DIM, "GPT4", DistanceMetric::L2),
    )
    .unwrap();
    g
}

fn vec_for(t: u64, v: u32) -> Vec<f32> {
    let mut rng = SplitMix64::new(0x70C7_0000 ^ (t << 8) ^ u64::from(v));
    (0..DIM).map(|_| rng.next_f32() * 4.0).collect()
}

/// Commit transaction `t` of the script. Fully determined by `t`.
fn apply_txn(g: &Graph, t: u64) -> TvResult<Tid> {
    let v = ((t * 7) % u64::from(N_VERTICES)) as u32;
    let id = layout().vertex_id(v as usize);
    let txn = match t % 5 {
        0 if t > 5 => g.txn().delete_vertex(DOC, id),
        4 if t > 5 => g.txn().set_vector(EMB, id, vec_for(t, v)),
        3 => {
            let w = ((t * 11 + 3) % u64::from(N_VERTICES)) as u32;
            let other = layout().vertex_id(w as usize);
            g.txn()
                .upsert_vertex(
                    DOC,
                    id,
                    vec![AttrValue::Str(format!("doc-{t}")), AttrValue::Int(t as i64)],
                )
                .set_vector(EMB, id, vec_for(t, v))
                .add_edge(LINKS, DOC, id, other)
        }
        _ => g
            .txn()
            .upsert_vertex(
                DOC,
                id,
                vec![AttrValue::Str(format!("doc-{t}")), AttrValue::Int(t as i64)],
            )
            .set_vector(EMB, id, vec_for(t, v)),
    };
    let tid = txn.commit()?;
    assert_eq!(tid, Tid(t), "script TIDs must track txn numbers");
    Ok(tid)
}

/// Maintenance keyed to the script position: checkpoints after TID 10 and
/// 20, the two-stage embedding vacuum plus graph vacuum after TID 15.
fn maintenance(g: &Graph, t: u64) -> TvResult<()> {
    match t {
        10 | 20 => {
            g.checkpoint()?;
        }
        15 => {
            let up_to = g.read_tid();
            g.store().vacuum();
            g.embeddings().delta_merge(EMB, up_to)?;
            g.embeddings().index_merge(EMB, up_to, 1)?;
        }
        _ => {}
    }
    Ok(())
}

fn run_from(g: &Graph, from: u64, to: u64) -> TvResult<()> {
    for t in from..=to {
        apply_txn(g, t)?;
        maintenance(g, t)?;
    }
    Ok(())
}

/// Full observable state, rendered to comparable strings: per-vertex
/// liveness/attributes/edges/embedding (with f32 bit patterns) plus exact
/// top-k results for deterministic probe queries.
fn fingerprint(g: &Graph) -> Vec<String> {
    let tid = g.read_tid();
    let mut out = vec![format!("read_tid={tid}")];
    for v in 0..N_VERTICES {
        let id = layout().vertex_id(v as usize);
        let live = g.is_live(DOC, id, tid).unwrap();
        let title = g.attr(DOC, id, "title", tid).unwrap();
        let score = g.attr(DOC, id, "score", tid).unwrap();
        let edges = g.out_neighbors(DOC, id, LINKS, tid).unwrap();
        let emb: Option<Vec<u32>> = g
            .embedding_of(EMB, id, tid)
            .unwrap()
            .map(|e| e.iter().map(|x| x.to_bits()).collect());
        out.push(format!(
            "v{v}: {live} {title:?} {score:?} {edges:?} {emb:?}"
        ));
    }
    for probe in 0..3u64 {
        let q = vec_for(1000 + probe, 0);
        let (r, _) = g.vector_search(&[EMB], &q, 5, 64, None, tid).unwrap();
        let hits: Vec<String> = r
            .iter()
            .map(|tn| format!("{}@{:08x}", tn.neighbor.id, tn.neighbor.dist.to_bits()))
            .collect();
        out.push(format!("probe{probe}: {hits:?}"));
    }
    out
}

/// The no-crash oracle: the script run start to finish in one process life.
fn oracle() -> Vec<String> {
    let dir = test_dir("oracle");
    let g = open(&dir, None);
    run_from(&g, 1, N_TXNS).unwrap();
    let fp = fingerprint(&g);
    drop(g);
    let _ = std::fs::remove_dir_all(&dir);
    fp
}

/// Crash at every reachable crash point and require recovery to converge to
/// the oracle state bit-for-bit.
#[test]
fn torture_every_crash_point_recovers_to_oracle() {
    let want = oracle();

    // Observation pass: count how often each crash point is reached.
    let observe = Arc::new(CrashPlan::new());
    {
        let dir = test_dir("observe");
        let g = open(&dir, Some(Arc::clone(&observe)));
        run_from(&g, 1, N_TXNS).unwrap();
        drop(g);
        let _ = std::fs::remove_dir_all(&dir);
    }

    for point in CrashPoint::DURABILITY {
        let hits = observe.hits(point);
        assert!(hits > 0, "crash point {point} never reached by the script");
        // Sample crash positions: first, second, middle, last occurrence.
        let mut nths = vec![1, 2, hits / 2, hits];
        nths.retain(|&n| n >= 1 && n <= hits);
        nths.dedup();
        for nth in nths {
            let dir = test_dir(&format!("{}-{nth}", point.to_string().replace('/', "_")));

            // Run until the armed crash point trips; the Err is the "crash".
            let plan = Arc::new(CrashPlan::new());
            plan.arm(point, nth);
            let g = open(&dir, Some(Arc::clone(&plan)));
            g.recover().unwrap();
            let err = run_from(&g, 1, N_TXNS)
                .expect_err("armed crash point must trip before the script ends");
            assert!(
                matches!(err, TvError::Injected(_)),
                "expected injected crash at {point}#{nth}, got {err}"
            );
            drop(g); // process death

            // Recover and resume from the first non-durable transaction.
            let g = open(&dir, None);
            g.recover()
                .unwrap_or_else(|e| panic!("recovery after {point}#{nth} failed: {e}"));
            let next = g.read_tid().0 + 1;
            run_from(&g, next, N_TXNS).unwrap();
            assert_eq!(
                fingerprint(&g),
                want,
                "state diverged from oracle after crash at {point}#{nth}"
            );
            drop(g);
            let _ = std::fs::remove_dir_all(&dir);
        }
    }
}

/// After a checkpoint rotates the WAL, recovery restores the checkpoint and
/// replays only the tail beyond its TID.
#[test]
fn recovery_after_rotation_replays_only_the_tail() {
    let dir = test_dir("rotation");
    {
        let g = open(&dir, None);
        run_from(&g, 1, N_TXNS).unwrap();
    }
    let g = open(&dir, None);
    let report = g.recover().unwrap();
    assert_eq!(report.checkpoint, Some(Tid(20)));
    assert_eq!(report.replayed, (N_TXNS - 20) as usize);
    assert_eq!(report.skipped_checkpoints, 0);
    assert_eq!(fingerprint(&g), oracle());
    drop(g);
    let _ = std::fs::remove_dir_all(&dir);
}

/// A corrupted newest checkpoint is skipped; recovery falls back to its
/// predecessor and replays the longer WAL tail to the same final state.
#[test]
fn corrupt_newest_checkpoint_falls_back_to_previous() {
    let dir = test_dir("fallback");
    {
        let g = open(&dir, None);
        run_from(&g, 1, N_TXNS).unwrap();
    }
    // Flip one byte in the newest checkpoint's manifest.
    let manifest = dir
        .join("checkpoints")
        .join("ckpt-00000000000000000020")
        .join("MANIFEST");
    let mut bytes = std::fs::read(&manifest).unwrap();
    let mid = bytes.len() / 2;
    bytes[mid] ^= 0xFF;
    std::fs::write(&manifest, &bytes).unwrap();

    let g = open(&dir, None);
    let report = g.recover().unwrap();
    assert_eq!(report.checkpoint, Some(Tid(10)));
    assert_eq!(report.skipped_checkpoints, 1);
    assert_eq!(report.replayed, (N_TXNS - 10) as usize);
    assert_eq!(fingerprint(&g), oracle());
    drop(g);
    let _ = std::fs::remove_dir_all(&dir);
}

/// A transaction carrying both graph deltas and vector deltas is atomically
/// present or absent after a crash — never split across the two stores.
#[test]
fn mixed_txn_atomic_across_crash() {
    for (point, expect_present) in [
        // Crash mid-WAL-append: the record never became durable — neither
        // the vertex nor its vector may surface after recovery.
        (CrashPoint::CommitMidWalAppend, false),
        // Crash after the WAL sync: the record is durable — both the vertex
        // and its vector must surface after recovery.
        (CrashPoint::CommitPostWalPreApply, true),
    ] {
        let dir = test_dir(&format!("atomic-{}", point.to_string().replace('/', "_")));
        let plan = Arc::new(CrashPlan::new());
        plan.arm(point, 1);
        let g = open(&dir, Some(Arc::clone(&plan)));
        let id = layout().vertex_id(0);
        let err = g
            .txn()
            .upsert_vertex(DOC, id, vec![AttrValue::Str("x".into()), AttrValue::Int(1)])
            .set_vector(EMB, id, vec![1.0, 2.0, 3.0, 4.0])
            .commit()
            .expect_err("armed commit crash");
        assert!(matches!(err, TvError::Injected(_)));
        drop(g);

        let g = open(&dir, None);
        g.recover().unwrap();
        let tid = g.read_tid();
        let live = g.is_live(DOC, id, tid).unwrap();
        let emb = g.embedding_of(EMB, id, tid).unwrap();
        assert_eq!(live, expect_present, "graph side after {point}");
        assert_eq!(
            emb,
            expect_present.then(|| vec![1.0, 2.0, 3.0, 4.0]),
            "vector side after {point}"
        );
        assert_eq!(
            live,
            emb.is_some(),
            "graph and vector state split by {point}"
        );
        drop(g);
        let _ = std::fs::remove_dir_all(&dir);
    }
}

fn open_quant(dir: &Path, plan: Option<Arc<CrashPlan>>) -> Graph {
    let g = Graph::durable_with_plan(dir, layout(), config(), plan).unwrap();
    g.create_vertex_type("Doc", &[("title", AttrType::Str), ("score", AttrType::Int)])
        .unwrap();
    g.create_edge_type("links", "Doc", "Doc").unwrap();
    g.add_embedding_attribute(
        "Doc",
        EmbeddingTypeDef::new("emb", DIM, "GPT4", DistanceMetric::L2).with_quant(QuantSpec::sq8()),
    )
    .unwrap();
    g
}

/// Serialized image of each segment's snapshot visible at the vacuum TID —
/// this is exactly what the checkpoint persisted for the quantized index.
fn quant_snapshot_bytes(g: &Graph) -> Vec<Vec<u8>> {
    g.embeddings()
        .attr(EMB)
        .unwrap()
        .all_segments()
        .iter()
        .map(|s| tv_hnsw::snapshot::to_bytes(&s.snapshot_for(Tid(15)).index))
        .collect()
}

/// A segment declared SQ8 trains its codec at the script's index merge, the
/// checkpoint persists codes + codebook, and recovery restores them
/// **byte-identically** — both via the checkpoint restore path and via a
/// mid-checkpoint crash that forces codec retraining during script replay.
#[test]
fn quantized_segment_checkpoint_recovery_is_byte_identical() {
    let dir = test_dir("quant");
    let (want, want_bytes) = {
        let g = open_quant(&dir, None);
        run_from(&g, 1, N_TXNS).unwrap();
        let attr = g.embeddings().attr(EMB).unwrap();
        assert!(
            attr.all_segments()
                .iter()
                .any(|s| s.storage_tier() == StorageTier::Sq8),
            "index merge at TID 15 should have trained the SQ8 codec"
        );
        (fingerprint(&g), quant_snapshot_bytes(&g))
    }; // process death

    // Recovery path 1: restore the checkpoint (TID 20) + replay the tail.
    let g = open_quant(&dir, None);
    g.recover().unwrap();
    assert_eq!(
        quant_snapshot_bytes(&g),
        want_bytes,
        "quantized snapshot bytes diverged across checkpoint recovery"
    );
    run_from(&g, g.read_tid().0 + 1, N_TXNS).unwrap();
    assert_eq!(fingerprint(&g), want);
    drop(g);
    let _ = std::fs::remove_dir_all(&dir);

    // Recovery path 2: crash *inside* the TID-20 checkpoint write. Recovery
    // falls back to the TID-10 checkpoint (pre-quantization) and the resumed
    // script retrains the codec — which must be deterministic enough to
    // reproduce the same bytes and the same search results.
    let dir = test_dir("quant-midckpt");
    let plan = Arc::new(CrashPlan::new());
    plan.arm(CrashPoint::CheckpointMidWrite, 2);
    let g = open_quant(&dir, Some(Arc::clone(&plan)));
    g.recover().unwrap();
    let err = run_from(&g, 1, N_TXNS).expect_err("armed mid-checkpoint crash must trip");
    assert!(matches!(err, TvError::Injected(_)));
    drop(g);

    let g = open_quant(&dir, None);
    g.recover().unwrap();
    run_from(&g, g.read_tid().0 + 1, N_TXNS).unwrap();
    assert_eq!(
        quant_snapshot_bytes(&g),
        want_bytes,
        "codec retraining after mid-checkpoint crash is not deterministic"
    );
    assert_eq!(fingerprint(&g), want);
    drop(g);
    let _ = std::fs::remove_dir_all(&dir);
}

/// Layout and serialized image of each segment's snapshot visible at the
/// vacuum TID. The default attribute declares the packed+prefetch layout,
/// so the index merge at TID 15 compiles the frozen CSR form and the
/// checkpoint persists it (snapshot v3 carries the layout tag).
fn compiled_snapshot_state(g: &Graph) -> Vec<(tv_common::GraphLayout, Vec<u8>)> {
    g.embeddings()
        .attr(EMB)
        .unwrap()
        .all_segments()
        .iter()
        .map(|s| {
            let index = &s.snapshot_for(Tid(15)).index;
            (index.layout(), tv_hnsw::snapshot::to_bytes(index))
        })
        .collect()
}

/// A segment with the default (packed+prefetch) layout compiles its frozen
/// CSR form at the script's index merge; the checkpoint persists the
/// compiled snapshot and recovery restores it **byte-identically** — both
/// via the checkpoint restore path (no recompile: the layout tag and BFS
/// permutation ride in the snapshot bytes) and via a mid-checkpoint crash
/// whose replay path recompiles from scratch.
#[test]
fn compiled_segment_checkpoint_recovery_is_byte_identical() {
    let dir = test_dir("layout");
    let (want, want_state) = {
        let g = open(&dir, None);
        run_from(&g, 1, N_TXNS).unwrap();
        let state = compiled_snapshot_state(&g);
        assert!(
            state.iter().any(|(l, _)| l.is_packed()),
            "index merge at TID 15 should have compiled the packed layout"
        );
        (fingerprint(&g), state)
    }; // process death

    // Recovery path 1: restore the checkpoint (TID 20) + replay the tail.
    let g = open(&dir, None);
    g.recover().unwrap();
    assert_eq!(
        compiled_snapshot_state(&g),
        want_state,
        "compiled snapshot diverged across checkpoint recovery"
    );
    run_from(&g, g.read_tid().0 + 1, N_TXNS).unwrap();
    assert_eq!(fingerprint(&g), want);
    drop(g);
    let _ = std::fs::remove_dir_all(&dir);

    // Recovery path 2: crash *inside* the TID-20 checkpoint write. Recovery
    // falls back to the TID-10 checkpoint (pre-compile), so the resumed
    // script re-runs the TID-15 index merge and recompiles — the BFS
    // reordering is deterministic, so it must reproduce the same bytes.
    let dir = test_dir("layout-midckpt");
    let plan = Arc::new(CrashPlan::new());
    plan.arm(CrashPoint::CheckpointMidWrite, 2);
    let g = open(&dir, Some(Arc::clone(&plan)));
    g.recover().unwrap();
    let err = run_from(&g, 1, N_TXNS).expect_err("armed mid-checkpoint crash must trip");
    assert!(matches!(err, TvError::Injected(_)));
    drop(g);

    let g = open(&dir, None);
    g.recover().unwrap();
    run_from(&g, g.read_tid().0 + 1, N_TXNS).unwrap();
    assert_eq!(
        compiled_snapshot_state(&g),
        want_state,
        "recompile after mid-checkpoint crash did not reproduce the compiled bytes"
    );
    assert_eq!(fingerprint(&g), want);
    drop(g);
    let _ = std::fs::remove_dir_all(&dir);
}

/// Vertex-id allocation watermarks survive checkpoint + recovery: fresh ids
/// never collide with pre-crash ids.
#[test]
fn allocation_watermark_survives_recovery() {
    let dir = test_dir("alloc");
    let pre;
    {
        let g = open(&dir, None);
        let ids = g.allocate_many(DOC, 5).unwrap();
        let mut txn = g.txn();
        for (i, &id) in ids.iter().enumerate() {
            txn = txn.upsert_vertex(
                DOC,
                id,
                vec![AttrValue::Str(format!("d{i}")), AttrValue::Int(i as i64)],
            );
        }
        txn.commit().unwrap();
        g.checkpoint().unwrap();
        pre = ids;
    }
    let g = open(&dir, None);
    g.recover().unwrap();
    let fresh = g.allocate_many(DOC, 5).unwrap();
    for id in &fresh {
        assert!(!pre.contains(id), "recycled vertex id {id} after recovery");
    }
    drop(g);
    let _ = std::fs::remove_dir_all(&dir);
}
