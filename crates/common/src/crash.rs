//! Deterministic crash-point injection for the durability pipelines.
//!
//! The commit, checkpoint, and vacuum paths are instrumented with named
//! [`CrashPoint`]s (in the style of the cluster layer's `FaultPlan`). A
//! [`CrashPlan`] can arm any point to "crash" — return
//! [`TvError::Injected`] — on its *n*-th execution, which the torture tests
//! treat as process death: they drop the store and re-open it from disk.
//!
//! Production code holds an `Option<Arc<CrashPlan>>` that is `None` outside
//! tests, so the hooks cost one pointer null-check on the hot paths and
//! nothing else.

use crate::error::{TvError, TvResult};
use std::collections::HashMap;
use std::fmt;
use std::sync::Mutex;

/// Instrumented locations in the durability pipelines. Each variant is a
/// place where process death leaves durable state in a distinct shape; the
/// torture suite must prove recovery from every one of them.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CrashPoint {
    /// Inside `Wal::append`, after part of the frame reached the file but
    /// before the frame is complete — models a torn tail. The transaction
    /// was never durable and must be absent after recovery.
    CommitMidWalAppend,
    /// After the WAL frame is written and synced but before the in-memory
    /// apply — the transaction IS durable and must be replayed on recovery.
    CommitPostWalPreApply,
    /// Mid-checkpoint, after some segment files are written but before the
    /// manifest — the partial checkpoint directory must be ignored and the
    /// previous checkpoint (or the empty state) used instead.
    CheckpointMidWrite,
    /// After the manifest rename made the checkpoint valid but before the
    /// WAL was truncated — recovery must tolerate WAL records at or below
    /// the checkpoint Tid (replay must be idempotent / filtered).
    CheckpointPostManifestPreTruncate,
    /// Inside the embedding two-stage vacuum's index-merge loop, between
    /// per-segment index rebuilds — only in-memory acceleration state is
    /// lost; durable state is untouched.
    VacuumMidIndexMerge,
    /// The migration source dies before the shipped snapshot file exists —
    /// nothing reached the destination; the source stays authoritative.
    MigrateMidShip,
    /// The transfer is cut mid-stream: the shipped container is truncated
    /// after the ship step. The destination's CRC verification must reject
    /// the partial file at install and the migration must abort cleanly.
    MigrateShipTruncate,
    /// The destination dies after decoding the shipped snapshot but before
    /// its copy is registered in the destination store — the staged state
    /// is orphaned and must be garbage-collected on abort.
    MigrateMidInstall,
    /// The coordinator dies between delta-tail catch-up rounds: the
    /// destination holds a behind copy that is not yet routed to. Abort
    /// must remove it; the source keeps serving.
    MigrateMidCatchup,
    /// The coordinator dies inside the flip critical section *before* the
    /// placement generation is bumped — appends are momentarily gated but
    /// the old placement is still authoritative; abort, don't flip.
    MigrateAtFlip,
    /// The coordinator dies after the placement flip committed but before
    /// the source copy was released — the migration IS complete; a retry
    /// must recognize that and finish the release idempotently.
    MigratePostFlipPreRelease,
}

impl CrashPoint {
    /// Crash points of the durability pipelines (commit / checkpoint /
    /// vacuum). The graph crash-torture suite iterates exactly these.
    pub const DURABILITY: [CrashPoint; 5] = [
        CrashPoint::CommitMidWalAppend,
        CrashPoint::CommitPostWalPreApply,
        CrashPoint::CheckpointMidWrite,
        CrashPoint::CheckpointPostManifestPreTruncate,
        CrashPoint::VacuumMidIndexMerge,
    ];

    /// Crash points of the live segment-migration pipeline, in phase
    /// order. The migration chaos suite iterates exactly these.
    pub const MIGRATION: [CrashPoint; 6] = [
        CrashPoint::MigrateMidShip,
        CrashPoint::MigrateShipTruncate,
        CrashPoint::MigrateMidInstall,
        CrashPoint::MigrateMidCatchup,
        CrashPoint::MigrateAtFlip,
        CrashPoint::MigratePostFlipPreRelease,
    ];

    /// All registered crash points, in pipeline order ([`Self::DURABILITY`]
    /// then [`Self::MIGRATION`]).
    pub const ALL: [CrashPoint; 11] = [
        CrashPoint::CommitMidWalAppend,
        CrashPoint::CommitPostWalPreApply,
        CrashPoint::CheckpointMidWrite,
        CrashPoint::CheckpointPostManifestPreTruncate,
        CrashPoint::VacuumMidIndexMerge,
        CrashPoint::MigrateMidShip,
        CrashPoint::MigrateShipTruncate,
        CrashPoint::MigrateMidInstall,
        CrashPoint::MigrateMidCatchup,
        CrashPoint::MigrateAtFlip,
        CrashPoint::MigratePostFlipPreRelease,
    ];
}

impl fmt::Display for CrashPoint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            CrashPoint::CommitMidWalAppend => "commit/mid-wal-append",
            CrashPoint::CommitPostWalPreApply => "commit/post-wal-pre-apply",
            CrashPoint::CheckpointMidWrite => "checkpoint/mid-write",
            CrashPoint::CheckpointPostManifestPreTruncate => {
                "checkpoint/post-manifest-pre-truncate"
            }
            CrashPoint::VacuumMidIndexMerge => "vacuum/mid-index-merge",
            CrashPoint::MigrateMidShip => "migrate/mid-ship",
            CrashPoint::MigrateShipTruncate => "migrate/ship-truncate",
            CrashPoint::MigrateMidInstall => "migrate/mid-install",
            CrashPoint::MigrateMidCatchup => "migrate/mid-catchup",
            CrashPoint::MigrateAtFlip => "migrate/at-flip",
            CrashPoint::MigratePostFlipPreRelease => "migrate/post-flip-pre-release",
        };
        f.write_str(name)
    }
}

#[derive(Default)]
struct PointState {
    /// Total times this point has been reached (armed or not).
    hits: u64,
    /// If set, `fire` errors when `hits` reaches this value.
    trip_at: Option<u64>,
}

/// Shared, thread-safe crash schedule. Clone the `Arc` into every component
/// that hosts a hook; arm points from the test driver.
#[derive(Default)]
pub struct CrashPlan {
    points: Mutex<HashMap<CrashPoint, PointState>>,
}

impl CrashPlan {
    /// A plan with nothing armed: hooks count hits but never fire.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Arm `point` to crash on its `nth` execution from now on (1-based,
    /// counted from the plan's creation — use [`CrashPlan::hits`] from an
    /// observation run to pick a reachable `nth`).
    pub fn arm(&self, point: CrashPoint, nth: u64) {
        assert!(nth >= 1, "nth is 1-based");
        let mut points = self.points.lock().expect("crash plan lock");
        points.entry(point).or_default().trip_at = Some(nth);
    }

    /// Disarm every point and reset hit counters.
    pub fn reset(&self) {
        self.points.lock().expect("crash plan lock").clear();
    }

    /// How many times `point` has been reached.
    #[must_use]
    pub fn hits(&self, point: CrashPoint) -> u64 {
        self.points
            .lock()
            .expect("crash plan lock")
            .get(&point)
            .map_or(0, |s| s.hits)
    }

    /// Hook entry: record the hit and return `Err(TvError::Injected)` iff
    /// the point is armed and this is the armed occurrence.
    pub fn fire(&self, point: CrashPoint) -> TvResult<()> {
        let mut points = self.points.lock().expect("crash plan lock");
        let state = points.entry(point).or_default();
        state.hits += 1;
        if state.trip_at == Some(state.hits) {
            state.trip_at = None;
            return Err(TvError::Injected(point.to_string()));
        }
        Ok(())
    }
}

/// Convenience for the `Option<Arc<CrashPlan>>` fields hosted by production
/// components: no-op when the plan is absent.
pub fn crash_hook(plan: Option<&CrashPlan>, point: CrashPoint) -> TvResult<()> {
    match plan {
        Some(plan) => plan.fire(point),
        None => Ok(()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disarmed_points_count_but_never_fire() {
        let plan = CrashPlan::new();
        for _ in 0..5 {
            plan.fire(CrashPoint::CommitMidWalAppend).unwrap();
        }
        assert_eq!(plan.hits(CrashPoint::CommitMidWalAppend), 5);
        assert_eq!(plan.hits(CrashPoint::CheckpointMidWrite), 0);
    }

    #[test]
    fn armed_point_fires_exactly_on_nth_hit() {
        let plan = CrashPlan::new();
        plan.arm(CrashPoint::CommitPostWalPreApply, 3);
        plan.fire(CrashPoint::CommitPostWalPreApply).unwrap();
        plan.fire(CrashPoint::CommitPostWalPreApply).unwrap();
        let err = plan.fire(CrashPoint::CommitPostWalPreApply).unwrap_err();
        assert_eq!(
            err,
            TvError::Injected("commit/post-wal-pre-apply".to_string())
        );
        // One-shot: the same point keeps counting but does not re-fire.
        plan.fire(CrashPoint::CommitPostWalPreApply).unwrap();
        assert_eq!(plan.hits(CrashPoint::CommitPostWalPreApply), 4);
    }

    #[test]
    fn points_are_independent() {
        let plan = CrashPlan::new();
        plan.arm(CrashPoint::CheckpointMidWrite, 1);
        plan.fire(CrashPoint::VacuumMidIndexMerge).unwrap();
        assert!(plan.fire(CrashPoint::CheckpointMidWrite).is_err());
    }

    #[test]
    fn reset_disarms_and_clears_counters() {
        let plan = CrashPlan::new();
        plan.arm(CrashPoint::CommitMidWalAppend, 1);
        plan.reset();
        plan.fire(CrashPoint::CommitMidWalAppend).unwrap();
        assert_eq!(plan.hits(CrashPoint::CommitMidWalAppend), 1);
    }

    #[test]
    fn hook_helper_is_noop_without_plan() {
        crash_hook(None, CrashPoint::CommitMidWalAppend).unwrap();
        let plan = CrashPlan::new();
        plan.arm(CrashPoint::CommitMidWalAppend, 1);
        assert!(crash_hook(Some(&plan), CrashPoint::CommitMidWalAppend).is_err());
    }

    #[test]
    fn injected_error_is_not_retryable() {
        assert!(!TvError::Injected("x".into()).is_retryable());
    }

    #[test]
    fn all_is_durability_then_migration() {
        let mut expected = CrashPoint::DURABILITY.to_vec();
        expected.extend(CrashPoint::MIGRATION);
        assert_eq!(expected, CrashPoint::ALL.to_vec());
    }
}
