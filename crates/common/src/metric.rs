//! Distance metrics for vector search.
//!
//! The paper's embedding type records a `METRIC` (§4.1); TigerVector supports
//! the three metrics common to HNSW deployments: L2 (squared Euclidean),
//! cosine distance, and (negated) inner product. All three are *distances*:
//! smaller is more similar, so a single top-k min-heap works for every metric.
//!
//! The free functions here delegate to the process-wide kernel table in
//! [`crate::kernels`] — runtime-dispatched SIMD (AVX2+FMA / SSE / NEON) with
//! the original 4-lane scalar loops as the always-correct fallback. Cosine
//! uses the fused `dot_norm_sq` kernel, so a cold pair costs two passes
//! instead of three; search loops with cached norms (see
//! [`crate::kernels::PreparedQuery`]) pay only one.

use crate::kernels::{self, cosine_from_parts};
use serde::{Deserialize, Serialize};

/// Similarity metric attached to an embedding attribute.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize, Default)]
pub enum DistanceMetric {
    /// Squared Euclidean distance. (Monotone in true L2, so top-k identical.)
    #[default]
    L2,
    /// Cosine distance: `1 - cos(a, b)`.
    Cosine,
    /// Negative inner product: `-<a, b>` (so smaller = more similar).
    InnerProduct,
}

impl DistanceMetric {
    /// Parse the GSQL keyword (`COSINE`, `L2`, `IP`).
    pub fn parse(s: &str) -> Option<Self> {
        match s.to_ascii_uppercase().as_str() {
            "L2" | "EUCLIDEAN" => Some(DistanceMetric::L2),
            "COSINE" => Some(DistanceMetric::Cosine),
            "IP" | "INNER_PRODUCT" | "DOT" => Some(DistanceMetric::InnerProduct),
            _ => None,
        }
    }

    /// GSQL keyword for this metric.
    #[must_use]
    pub fn keyword(self) -> &'static str {
        match self {
            DistanceMetric::L2 => "L2",
            DistanceMetric::Cosine => "COSINE",
            DistanceMetric::InnerProduct => "IP",
        }
    }
}

impl std::fmt::Display for DistanceMetric {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.keyword())
    }
}

/// Squared L2 distance between two equal-length vectors.
#[must_use]
pub fn l2_sq(a: &[f32], b: &[f32]) -> f32 {
    debug_assert_eq!(a.len(), b.len());
    kernels::active().l2_sq(a, b)
}

/// Inner product of two equal-length vectors.
#[must_use]
pub fn dot(a: &[f32], b: &[f32]) -> f32 {
    debug_assert_eq!(a.len(), b.len());
    kernels::active().dot(a, b)
}

/// Euclidean norm of a vector.
#[must_use]
pub fn norm(a: &[f32]) -> f32 {
    kernels::active().norm_sq(a).sqrt()
}

/// Cosine distance `1 - cos(a, b)`; zero vectors are treated as maximally
/// distant (distance 1) rather than producing NaN. Runs the fused
/// `dot_norm_sq` kernel — two passes over the pair, not three.
#[must_use]
pub fn cosine_distance(a: &[f32], b: &[f32]) -> f32 {
    let k = kernels::active();
    let (d, b_norm_sq) = k.dot_norm_sq(a, b);
    cosine_from_parts(d, k.norm_sq(a).sqrt() * b_norm_sq.sqrt())
}

/// Distance under `metric`. Smaller is always more similar.
#[must_use]
pub fn distance(metric: DistanceMetric, a: &[f32], b: &[f32]) -> f32 {
    match metric {
        DistanceMetric::L2 => l2_sq(a, b),
        DistanceMetric::Cosine => cosine_distance(a, b),
        DistanceMetric::InnerProduct => -dot(a, b),
    }
}

/// Normalize a vector in place to unit length; leaves zero vectors untouched.
pub fn normalize(v: &mut [f32]) {
    let n = norm(v);
    if n > 0.0 {
        for x in v.iter_mut() {
            *x /= n;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn assert_close(a: f32, b: f32) {
        assert!((a - b).abs() < 1e-5, "{a} vs {b}");
    }

    #[test]
    fn l2_basic() {
        assert_close(l2_sq(&[0.0, 0.0], &[3.0, 4.0]), 25.0);
        assert_close(l2_sq(&[1.0; 7], &[1.0; 7]), 0.0);
    }

    #[test]
    fn l2_handles_tail_lengths() {
        // lengths not divisible by 4 exercise the scalar tail
        for len in 1..10 {
            let a: Vec<f32> = (0..len).map(|i| i as f32).collect();
            let b: Vec<f32> = (0..len).map(|i| (i + 1) as f32).collect();
            assert_close(l2_sq(&a, &b), len as f32);
        }
    }

    #[test]
    fn dot_basic() {
        assert_close(dot(&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]), 32.0);
    }

    #[test]
    fn cosine_identical_is_zero() {
        let v = [0.3, -0.4, 0.5, 1.0, 2.0];
        assert_close(cosine_distance(&v, &v), 0.0);
    }

    #[test]
    fn cosine_orthogonal_is_one() {
        assert_close(cosine_distance(&[1.0, 0.0], &[0.0, 1.0]), 1.0);
    }

    #[test]
    fn cosine_opposite_is_two() {
        assert_close(cosine_distance(&[1.0, 0.0], &[-1.0, 0.0]), 2.0);
    }

    #[test]
    fn cosine_zero_vector_no_nan() {
        let d = cosine_distance(&[0.0, 0.0], &[1.0, 0.0]);
        assert!(d.is_finite());
        assert_close(d, 1.0);
    }

    #[test]
    fn inner_product_smaller_is_more_similar() {
        let q = [1.0, 0.0];
        let near = [2.0, 0.0];
        let far = [0.5, 0.0];
        assert!(
            distance(DistanceMetric::InnerProduct, &q, &near)
                < distance(DistanceMetric::InnerProduct, &q, &far)
        );
    }

    #[test]
    fn normalize_unit_length() {
        let mut v = vec![3.0, 4.0];
        normalize(&mut v);
        assert_close(norm(&v), 1.0);
    }

    #[test]
    fn normalize_zero_vector_is_noop() {
        let mut v = vec![0.0, 0.0];
        normalize(&mut v);
        assert_eq!(v, vec![0.0, 0.0]);
    }

    #[test]
    fn metric_parse_roundtrip() {
        for m in [
            DistanceMetric::L2,
            DistanceMetric::Cosine,
            DistanceMetric::InnerProduct,
        ] {
            assert_eq!(DistanceMetric::parse(m.keyword()), Some(m));
        }
        assert_eq!(DistanceMetric::parse("euclidean"), Some(DistanceMetric::L2));
        assert_eq!(DistanceMetric::parse("bogus"), None);
    }
}
