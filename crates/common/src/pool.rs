//! Persistent work-stealing thread pool shared by every fan-out in the
//! system: query scatter across segments, batched queries, vacuum merge
//! workers, cluster scatter-gather, and parallel index builds.
//!
//! Before this module, every fan-out spawned fresh OS threads per call
//! (`thread::scope` in the embedding service, one dedicated thread per
//! simulated server in the cluster runtime) and split work by *static
//! chunking*, so one slow segment pinned its whole chunk to one worker
//! while the others sat idle. The pool fixes both:
//!
//! * **Warm workers.** A lazily-started global pool ([`global`]), sized by
//!   the `TV_THREADS` env var or `available_parallelism`, owns
//!   process-lifetime worker threads. Components that need their own width
//!   build an injectable instance with [`WorkerPool::new`] (the cluster
//!   runtime sizes one by server count so an injected fault delay cannot
//!   starve unrelated requests).
//! * **Dynamic claiming.** Batch tasks are claimed one at a time from a
//!   shared queue — whichever worker finishes first takes the next task, so
//!   a slow segment no longer starves a statically-chunked sibling.
//! * **Caller participation.** The batch API ([`WorkerPool::run`]) keeps
//!   the *submitting* thread draining the same queue it published. A batch
//!   therefore completes even when every pool worker is busy, which makes
//!   nested batches (a pool worker running a batch of its own)
//!   deadlock-free by construction. `width <= 1` degrades to a strictly
//!   sequential in-order loop — crash-injection tests rely on that
//!   ordering.

use std::collections::VecDeque;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard, OnceLock, PoisonError, RwLock};
use std::thread::JoinHandle;

type Job = Box<dyn FnOnce() + Send + 'static>;

fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

/// Shared injector queue the workers block on.
struct Injector {
    queue: Mutex<VecDeque<Job>>,
    ready: Condvar,
    shutdown: AtomicBool,
}

/// A fixed-width pool of persistent worker threads.
pub struct WorkerPool {
    injector: Arc<Injector>,
    workers: Vec<JoinHandle<()>>,
    width: usize,
}

impl WorkerPool {
    /// Start a pool with `width` worker threads (clamped to at least 1).
    #[must_use]
    pub fn new(width: usize) -> Self {
        let width = width.max(1);
        let injector = Arc::new(Injector {
            queue: Mutex::new(VecDeque::new()),
            ready: Condvar::new(),
            shutdown: AtomicBool::new(false),
        });
        let workers = (0..width)
            .map(|i| {
                let inj = Arc::clone(&injector);
                std::thread::Builder::new()
                    .name(format!("tv-pool-{i}"))
                    .spawn(move || worker_loop(&inj))
                    .expect("spawn pool worker")
            })
            .collect();
        WorkerPool {
            injector,
            workers,
            width,
        }
    }

    /// Number of worker threads.
    #[must_use]
    pub fn width(&self) -> usize {
        self.width
    }

    /// Fire-and-forget: enqueue a job for any free worker. Panics inside
    /// the job are caught so a poisoned job cannot kill a pool worker.
    pub fn spawn(&self, job: impl FnOnce() + Send + 'static) {
        self.spawn_boxed(Box::new(job));
    }

    fn spawn_boxed(&self, job: Job) {
        lock(&self.injector.queue).push_back(job);
        self.injector.ready.notify_one();
    }

    /// Run `f` over every task with up to `width` threads (the caller plus
    /// `width - 1` pool workers), returning results **in task order**.
    ///
    /// Tasks are claimed dynamically — no static chunking. `width <= 1` or
    /// a single task runs strictly sequentially on the caller, preserving
    /// task order for deterministic crash-injection. A panic inside `f` is
    /// re-raised on the caller after the whole batch settles.
    pub fn run<T, R>(&self, tasks: Vec<T>, width: usize, f: impl Fn(T) -> R + Sync) -> Vec<R>
    where
        T: Send,
        R: Send,
    {
        let n = tasks.len();
        if width <= 1 || n <= 1 {
            return tasks.into_iter().map(f).collect();
        }
        let batch = Batch {
            pending: Mutex::new(tasks.into_iter().enumerate().collect()),
            results: Mutex::new((0..n).map(|_| None).collect()),
            remaining: Mutex::new(n),
            done: Condvar::new(),
            panic: Mutex::new(None),
            f,
        };
        // Helpers dereference `&batch` (a stack borrow) only while holding
        // the gate's read lock; the caller closes the gate (write lock)
        // before `batch` leaves scope, so a helper job still sitting in the
        // queue at that point sees the closed gate and never touches it.
        let gate: Arc<RwLock<bool>> = Arc::new(RwLock::new(true));
        let helpers = (width - 1).min(n - 1).min(self.width);
        for _ in 0..helpers {
            let gate = Arc::clone(&gate);
            let batch_ref = &batch;
            let job: Box<dyn FnOnce() + Send + '_> = Box::new(move || {
                let open = gate.read().unwrap_or_else(PoisonError::into_inner);
                if *open {
                    batch_ref.work();
                }
            });
            // SAFETY: lifetime erasure only — layout of a boxed trait
            // object does not depend on its lifetime bound. The job borrows
            // `batch` (and `f`/`tasks` inside it); the gate protocol above
            // plus the caller blocking until `remaining == 0` guarantee the
            // borrow is never dereferenced after `run` returns.
            let job: Job = unsafe {
                std::mem::transmute::<Box<dyn FnOnce() + Send + '_>, Box<dyn FnOnce() + Send>>(job)
            };
            self.spawn_boxed(job);
        }
        batch.work();
        {
            let mut rem = lock(&batch.remaining);
            while *rem > 0 {
                rem = batch.done.wait(rem).unwrap_or_else(PoisonError::into_inner);
            }
        }
        // Blocks until in-flight helpers drop their read locks.
        *gate.write().unwrap_or_else(PoisonError::into_inner) = false;
        if let Some(payload) = lock(&batch.panic).take() {
            resume_unwind(payload);
        }
        let out = lock(&batch.results)
            .iter_mut()
            .map(|slot| slot.take().expect("every task ran to completion"))
            .collect();
        out
    }
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        self.injector.shutdown.store(true, Ordering::Release);
        self.injector.ready.notify_all();
        for handle in self.workers.drain(..) {
            let _ = handle.join();
        }
    }
}

/// One in-flight batch: a task queue, an in-order result buffer, and a
/// completion latch. Caller and helper workers all drain it via [`work`].
struct Batch<T, R, F> {
    pending: Mutex<VecDeque<(usize, T)>>,
    results: Mutex<Vec<Option<R>>>,
    remaining: Mutex<usize>,
    done: Condvar,
    panic: Mutex<Option<Box<dyn std::any::Any + Send>>>,
    f: F,
}

impl<T, R, F: Fn(T) -> R + Sync> Batch<T, R, F> {
    fn work(&self) {
        loop {
            let Some((i, task)) = lock(&self.pending).pop_front() else {
                break;
            };
            match catch_unwind(AssertUnwindSafe(|| (self.f)(task))) {
                Ok(r) => lock(&self.results)[i] = Some(r),
                Err(payload) => {
                    let mut slot = lock(&self.panic);
                    if slot.is_none() {
                        *slot = Some(payload);
                    }
                }
            }
            let mut rem = lock(&self.remaining);
            *rem -= 1;
            if *rem == 0 {
                self.done.notify_all();
            }
        }
    }
}

fn worker_loop(inj: &Injector) {
    loop {
        let job = {
            let mut q = lock(&inj.queue);
            loop {
                if let Some(job) = q.pop_front() {
                    break Some(job);
                }
                if inj.shutdown.load(Ordering::Acquire) {
                    break None;
                }
                q = inj.ready.wait(q).unwrap_or_else(PoisonError::into_inner);
            }
        };
        match job {
            Some(job) => {
                let _ = catch_unwind(AssertUnwindSafe(job));
            }
            None => break,
        }
    }
}

static GLOBAL: OnceLock<Arc<WorkerPool>> = OnceLock::new();

/// Worker count for the global pool: `TV_THREADS` if set and valid, else
/// `available_parallelism`.
#[must_use]
pub fn default_width() -> usize {
    width_from(std::env::var("TV_THREADS").ok())
}

fn width_from(var: Option<String>) -> usize {
    var.and_then(|v| v.trim().parse::<usize>().ok())
        .filter(|&n| n >= 1)
        .unwrap_or_else(|| {
            std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get)
        })
}

/// The lazily-started process-wide pool. First call starts the workers;
/// they live for the rest of the process.
#[must_use]
pub fn global() -> Arc<WorkerPool> {
    Arc::clone(GLOBAL.get_or_init(|| Arc::new(WorkerPool::new(default_width()))))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;

    #[test]
    fn results_are_in_task_order() {
        let pool = WorkerPool::new(4);
        let tasks: Vec<usize> = (0..64).collect();
        let out = pool.run(tasks, 4, |i| i * 3);
        assert_eq!(out, (0..64).map(|i| i * 3).collect::<Vec<_>>());
    }

    #[test]
    fn width_one_is_strictly_sequential_in_order() {
        let pool = WorkerPool::new(4);
        let order = Mutex::new(Vec::new());
        let out = pool.run((0..16).collect(), 1, |i: usize| {
            lock(&order).push(i);
            i
        });
        assert_eq!(out, (0..16).collect::<Vec<_>>());
        assert_eq!(*lock(&order), (0..16).collect::<Vec<_>>());
    }

    #[test]
    fn borrows_non_static_state() {
        let pool = WorkerPool::new(2);
        let data: Vec<u64> = (0..100).collect();
        let slice = &data[..];
        let out = pool.run((0..100usize).collect(), 3, |i| slice[i] + 1);
        assert_eq!(out.iter().sum::<u64>(), (1..=100).sum::<u64>());
    }

    #[test]
    fn nested_batches_complete() {
        // Inner batches run while every pool worker may be busy with outer
        // tasks: caller participation must keep them moving.
        let pool = Arc::new(WorkerPool::new(2));
        let p2 = Arc::clone(&pool);
        let out = pool.run((0..8usize).collect(), 4, move |i| {
            p2.run((0..8usize).collect(), 4, |j| i * j)
                .iter()
                .sum::<usize>()
        });
        let inner: usize = (0..8).sum();
        assert_eq!(out, (0..8).map(|i| i * inner).collect::<Vec<_>>());
    }

    #[test]
    fn panic_in_task_propagates_after_batch_settles() {
        let pool = WorkerPool::new(2);
        let completed = AtomicUsize::new(0);
        let caught = catch_unwind(AssertUnwindSafe(|| {
            pool.run((0..8usize).collect(), 3, |i| {
                if i == 3 {
                    panic!("boom");
                }
                completed.fetch_add(1, Ordering::Relaxed);
                i
            })
        }));
        assert!(caught.is_err());
        // Every non-panicking task still ran.
        assert_eq!(completed.load(Ordering::Relaxed), 7);
        // The pool survives for subsequent batches.
        let out = pool.run((0..4usize).collect(), 2, |i| i + 1);
        assert_eq!(out, vec![1, 2, 3, 4]);
    }

    #[test]
    fn spawn_runs_detached_jobs() {
        let pool = WorkerPool::new(2);
        let (tx, rx) = std::sync::mpsc::channel();
        for i in 0..10 {
            let tx = tx.clone();
            pool.spawn(move || {
                let _ = tx.send(i);
            });
        }
        let mut got: Vec<i32> = (0..10).map(|_| rx.recv().unwrap()).collect();
        got.sort_unstable();
        assert_eq!(got, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn width_parsing() {
        assert_eq!(width_from(Some("8".into())), 8);
        assert_eq!(width_from(Some(" 3 ".into())), 3);
        // Invalid or zero falls back to available parallelism (>= 1).
        assert!(width_from(Some("0".into())) >= 1);
        assert!(width_from(Some("nope".into())) >= 1);
        assert!(width_from(None) >= 1);
    }

    #[test]
    fn global_pool_is_shared() {
        let a = global();
        let b = global();
        assert!(Arc::ptr_eq(&a, &b));
        assert!(a.width() >= 1);
    }
}
