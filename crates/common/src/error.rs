//! Error types shared across the workspace.

use std::fmt;

/// Result alias used throughout the TigerVector crates.
pub type TvResult<T> = Result<T, TvError>;

/// Unified error type for schema, storage, index, transaction, and query
/// failures.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TvError {
    /// Schema/catalog violation (duplicate type, unknown attribute, ...).
    Schema(String),
    /// Embedding-metadata incompatibility detected by static analysis of a
    /// query (§4.1: dimensions/model/datatype/metric must match; index type
    /// may differ).
    IncompatibleEmbeddings(String),
    /// Dimension mismatch between a vector value and its declared embedding
    /// type.
    DimensionMismatch {
        /// Dimension declared in the embedding type.
        expected: usize,
        /// Dimension of the offending vector.
        got: usize,
    },
    /// Referenced entity (vertex, type, attribute, segment) does not exist.
    NotFound(String),
    /// Storage-layer failure (segment full, WAL corruption, ...).
    Storage(String),
    /// Transaction aborted (conflict, explicit rollback, ...).
    TxnAborted(String),
    /// GSQL parse error with position information.
    Parse {
        /// Human-readable message.
        message: String,
        /// Byte offset in the query text.
        offset: usize,
    },
    /// Semantic error raised during query compilation (the paper's "semantic
    /// error" for incompatible embedding search, unknown aliases, ...).
    Semantic(String),
    /// Query execution failure.
    Execution(String),
    /// Cluster-simulation failure (server down, routing error, ...).
    Cluster(String),
    /// Invalid argument to a public API.
    InvalidArgument(String),
    /// The serving layer refused admission (queue full, rate limit, or
    /// executor saturation). Clients should back off and retry.
    Overloaded(String),
    /// A request deadline expired before (or while) the work ran.
    Timeout(String),
    /// The caller's session is not authorized for the touched data.
    PermissionDenied(String),
    /// A deterministic test-injected failure (crash-point or fault plan).
    /// Never produced in production; carries the injection site name.
    Injected(String),
    /// The addressed server no longer holds the segment: a migration flip
    /// moved it. Carries the placement generation that committed the move so
    /// the coordinator can re-route against a fresh placement table.
    Moved {
        /// The segment that was migrated away.
        segment: crate::ids::SegmentId,
        /// The placement generation at the answering server.
        generation: u64,
    },
}

impl TvError {
    /// Whether a client (or an upstream coordinator) may reasonably retry
    /// the failed request: transient capacity, timing, and cluster-routing
    /// failures are retryable; schema/semantic/permission failures are not.
    #[must_use]
    pub fn is_retryable(&self) -> bool {
        matches!(
            self,
            TvError::Overloaded(_)
                | TvError::Timeout(_)
                | TvError::Cluster(_)
                | TvError::Moved { .. }
        )
    }
}

impl fmt::Display for TvError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TvError::Schema(m) => write!(f, "schema error: {m}"),
            TvError::IncompatibleEmbeddings(m) => {
                write!(f, "incompatible embedding types: {m}")
            }
            TvError::DimensionMismatch { expected, got } => {
                write!(f, "dimension mismatch: expected {expected}, got {got}")
            }
            TvError::NotFound(m) => write!(f, "not found: {m}"),
            TvError::Storage(m) => write!(f, "storage error: {m}"),
            TvError::TxnAborted(m) => write!(f, "transaction aborted: {m}"),
            TvError::Parse { message, offset } => {
                write!(f, "parse error at byte {offset}: {message}")
            }
            TvError::Semantic(m) => write!(f, "semantic error: {m}"),
            TvError::Execution(m) => write!(f, "execution error: {m}"),
            TvError::Cluster(m) => write!(f, "cluster error: {m}"),
            TvError::InvalidArgument(m) => write!(f, "invalid argument: {m}"),
            TvError::Overloaded(m) => write!(f, "overloaded: {m}"),
            TvError::Timeout(m) => write!(f, "deadline exceeded: {m}"),
            TvError::PermissionDenied(m) => write!(f, "permission denied: {m}"),
            TvError::Injected(m) => write!(f, "injected crash: {m}"),
            TvError::Moved {
                segment,
                generation,
            } => {
                write!(
                    f,
                    "segment {} moved: placement generation {generation}",
                    segment.0
                )
            }
        }
    }
}

impl std::error::Error for TvError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_informative() {
        let e = TvError::DimensionMismatch {
            expected: 128,
            got: 96,
        };
        let s = e.to_string();
        assert!(s.contains("128") && s.contains("96"));

        let p = TvError::Parse {
            message: "expected LIMIT".into(),
            offset: 42,
        };
        assert!(p.to_string().contains("42"));
    }

    #[test]
    fn retryability_partitions_transient_from_permanent() {
        assert!(TvError::Overloaded("queue full".into()).is_retryable());
        assert!(TvError::Timeout("deadline".into()).is_retryable());
        assert!(TvError::Cluster("server 2 unreachable".into()).is_retryable());
        assert!(TvError::Moved {
            segment: crate::ids::SegmentId(3),
            generation: 7,
        }
        .is_retryable());
        assert!(!TvError::Schema("dup".into()).is_retryable());
        assert!(!TvError::PermissionDenied("no grant".into()).is_retryable());
        assert!(!TvError::InvalidArgument("k=0".into()).is_retryable());
    }

    #[test]
    fn error_is_std_error() {
        fn takes_err(_e: &dyn std::error::Error) {}
        takes_err(&TvError::Schema("x".into()));
    }
}
