//! Runtime-dispatched SIMD distance kernels.
//!
//! Every distance in the engine funnels through this layer. At first use the
//! process probes the CPU (`is_x86_feature_detected!`) and installs one
//! kernel table — AVX2+FMA where available, SSE2 on any x86-64, NEON on
//! aarch64, and the 4-lane scalar loops (the seed implementation, kept
//! verbatim in [`scalar`]) as the always-correct fallback. The choice can be
//! overridden with [`crate::config::KernelPolicy`] via [`set_policy`] or the
//! `TV_KERNELS` environment variable (`scalar|sse|avx2|neon|auto`), which CI
//! uses to keep the fallback path covered on AVX2 runners.
//!
//! Beyond plain `dot`/`l2_sq`, the table exposes **fused** one-pass kernels
//! (`dot_norm_sq` computes `<a,b>` and `|b|²` in a single sweep) and
//! **batched** kernels that score one query against N contiguous rows per
//! call, so the per-call dispatch cost is paid once per candidate batch
//! rather than once per candidate. [`PreparedQuery`] packages the
//! metric-aware scoring on top: it hoists the query norm once per search and
//! scores candidates against cached per-slot norms, which drops cosine from
//! three passes over both vectors to one fused pass per candidate.
//!
//! ## Tolerance contract
//!
//! Within one tier results are deterministic (bit-identical across calls and
//! processes on the same tier). Across tiers, results may differ by at most
//! `1e-5` **relative to the accumulated magnitude** of the reduction — FMA
//! contracts the multiply-add rounding step and wider registers change the
//! association order. The scalar tier reproduces the seed kernels
//! bit-for-bit, including the fused cosine path: `dot_norm_sq` accumulates
//! in exactly the seed's 4-lane order, so cached-norm cosine equals the
//! seed's three-pass cosine on the scalar tier. Cross-tier agreement is
//! enforced by `crates/common/tests/kernel_equivalence.rs`, not assumed.

use crate::config::KernelPolicy;
use crate::metric::DistanceMetric;
use std::sync::OnceLock;

/// One dispatchable implementation level.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum KernelTier {
    /// Portable 4-lane unrolled loops (the seed implementation).
    Scalar,
    /// 128-bit SSE2 (baseline on every x86-64).
    Sse,
    /// 256-bit AVX2 with fused multiply-add.
    Avx2Fma,
    /// 128-bit NEON (baseline on aarch64).
    Neon,
}

impl KernelTier {
    /// Stable display name (also accepted by [`KernelTier::parse`]).
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            KernelTier::Scalar => "scalar",
            KernelTier::Sse => "sse",
            KernelTier::Avx2Fma => "avx2+fma",
            KernelTier::Neon => "neon",
        }
    }

    /// Parse a tier name (`scalar`, `sse`, `avx2`, `avx2+fma`, `neon`).
    #[must_use]
    pub fn parse(s: &str) -> Option<Self> {
        match s.to_ascii_lowercase().as_str() {
            "scalar" => Some(KernelTier::Scalar),
            "sse" | "sse2" => Some(KernelTier::Sse),
            "avx2" | "avx2+fma" | "avx2fma" => Some(KernelTier::Avx2Fma),
            "neon" => Some(KernelTier::Neon),
            _ => None,
        }
    }
}

impl std::fmt::Display for KernelTier {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Batched asymmetric L2 against u8 codes: `(adjusted_query, step, codes, out)`.
type L2SqU8BatchFn = fn(&[f32], &[f32], &[u8], &mut [f32]);

/// A resolved table of distance kernels for one tier. All slices handed to
/// pair kernels must be equal-length; batch kernels take a row-major slab of
/// `out.len()` rows of `query.len()` floats.
pub struct Kernels {
    tier: KernelTier,
    dot: fn(&[f32], &[f32]) -> f32,
    l2_sq: fn(&[f32], &[f32]) -> f32,
    norm_sq: fn(&[f32]) -> f32,
    dot_norm_sq: fn(&[f32], &[f32]) -> (f32, f32),
    dot_batch: fn(&[f32], &[f32], &mut [f32]),
    l2_sq_batch: fn(&[f32], &[f32], &mut [f32]),
    dot_u8: fn(&[f32], &[u8]) -> f32,
    l2_sq_u8: fn(&[f32], &[f32], &[u8]) -> f32,
    dot_u8_batch: fn(&[f32], &[u8], &mut [f32]),
    l2_sq_u8_batch: L2SqU8BatchFn,
    prefetch: fn(*const u8),
}

impl Kernels {
    /// The tier this table implements.
    #[must_use]
    pub fn tier(&self) -> KernelTier {
        self.tier
    }

    /// Inner product `<a, b>`.
    #[must_use]
    pub fn dot(&self, a: &[f32], b: &[f32]) -> f32 {
        debug_assert_eq!(a.len(), b.len());
        (self.dot)(a, b)
    }

    /// Squared Euclidean distance `|a - b|²`.
    #[must_use]
    pub fn l2_sq(&self, a: &[f32], b: &[f32]) -> f32 {
        debug_assert_eq!(a.len(), b.len());
        (self.l2_sq)(a, b)
    }

    /// Squared norm `|a|²`.
    #[must_use]
    pub fn norm_sq(&self, a: &[f32]) -> f32 {
        (self.norm_sq)(a)
    }

    /// Fused one-pass `(<a, b>, |b|²)` — the cosine workhorse when `b`'s
    /// norm is not cached.
    #[must_use]
    pub fn dot_norm_sq(&self, a: &[f32], b: &[f32]) -> (f32, f32) {
        debug_assert_eq!(a.len(), b.len());
        (self.dot_norm_sq)(a, b)
    }

    /// Batched inner product: `out[i] = <q, slab[i*d..][..d]>`.
    pub fn dot_batch(&self, q: &[f32], slab: &[f32], out: &mut [f32]) {
        debug_assert_eq!(slab.len(), q.len() * out.len());
        (self.dot_batch)(q, slab, out);
    }

    /// Batched squared L2: `out[i] = |q - slab[i*d..][..d]|²`.
    pub fn l2_sq_batch(&self, q: &[f32], slab: &[f32], out: &mut [f32]) {
        debug_assert_eq!(slab.len(), q.len() * out.len());
        (self.l2_sq_batch)(q, slab, out);
    }

    /// Mixed-precision inner product against a `u8` code row:
    /// `Σ a[i] * codes[i]` with each code widened to `f32`. With
    /// `a[j] = q[j] * step[j]` this is the variable half of the SQ8
    /// asymmetric dot product (the constant half is `<q, min>`).
    #[must_use]
    pub fn dot_u8(&self, a: &[f32], codes: &[u8]) -> f32 {
        debug_assert_eq!(a.len(), codes.len());
        (self.dot_u8)(a, codes)
    }

    /// Mixed-precision squared L2 against a `u8` code row:
    /// `Σ (a[i] - scale[i] * codes[i])²`. With `a[j] = q[j] - min[j]` and
    /// `scale = step` this is the exact squared distance from the query to
    /// the SQ8 reconstruction, without materializing the reconstruction.
    #[must_use]
    pub fn l2_sq_u8(&self, a: &[f32], scale: &[f32], codes: &[u8]) -> f32 {
        debug_assert_eq!(a.len(), scale.len());
        debug_assert_eq!(a.len(), codes.len());
        (self.l2_sq_u8)(a, scale, codes)
    }

    /// Batched [`Self::dot_u8`]: `out[i] = dot_u8(a, codes[i*d..][..d])`.
    pub fn dot_u8_batch(&self, a: &[f32], codes: &[u8], out: &mut [f32]) {
        debug_assert_eq!(codes.len(), a.len() * out.len());
        (self.dot_u8_batch)(a, codes, out);
    }

    /// Batched [`Self::l2_sq_u8`] over contiguous code rows.
    pub fn l2_sq_u8_batch(&self, a: &[f32], scale: &[f32], codes: &[u8], out: &mut [f32]) {
        debug_assert_eq!(a.len(), scale.len());
        debug_assert_eq!(codes.len(), a.len() * out.len());
        (self.l2_sq_u8_batch)(a, scale, codes, out);
    }

    /// Advisory prefetch of the cache line at `p` into L1 (PREFETCHT0 /
    /// PRFM PLDL1KEEP). Purely a hint: the instruction never faults, so any
    /// address is safe to pass; the scalar tier compiles to a no-op. The
    /// packed-graph search loops use it to hide the DRAM latency of the
    /// next candidates' vector and neighbor rows.
    #[inline]
    pub fn prefetch(&self, p: *const u8) {
        (self.prefetch)(p);
    }

    /// Qualified names of the kernels in this table, for bench provenance
    /// (e.g. `"avx2+fma::dot_batch"`).
    #[must_use]
    pub fn kernel_names(&self) -> Vec<String> {
        [
            "dot",
            "l2_sq",
            "norm_sq",
            "dot_norm_sq",
            "dot_batch",
            "l2_sq_batch",
            "dot_u8",
            "l2_sq_u8",
            "dot_u8_batch",
            "l2_sq_u8_batch",
            "prefetch",
        ]
        .iter()
        .map(|op| format!("{}::{op}", self.tier.name()))
        .collect()
    }
}

/// Cosine distance from precomputed parts: `1 - dot / denom` with the
/// zero-vector guard (`denom == 0` → maximally distant, never NaN). `denom`
/// is the product of the two Euclidean norms.
#[must_use]
pub fn cosine_from_parts(dot: f32, denom: f32) -> f32 {
    if denom == 0.0 {
        1.0
    } else {
        1.0 - dot / denom
    }
}

/// A query prepared for repeated scoring: metric, query slice, and the query
/// norm hoisted once (cosine pays `|q|` exactly once per search, not once
/// per candidate).
pub struct PreparedQuery<'q> {
    metric: DistanceMetric,
    query: &'q [f32],
    query_norm: f32,
    k: &'static Kernels,
}

impl<'q> PreparedQuery<'q> {
    /// Prepare `query` under the process-wide active kernel table.
    #[must_use]
    pub fn new(metric: DistanceMetric, query: &'q [f32]) -> Self {
        Self::on(active(), metric, query)
    }

    /// Prepare `query` with an externally cached norm (must equal `|query|`;
    /// only consulted for cosine). Lets an index reuse its per-slot norm
    /// cache when a stored vector plays the query role (insert-time repair,
    /// link shrinking) instead of recomputing the norm.
    #[must_use]
    pub fn with_norm(metric: DistanceMetric, query: &'q [f32], query_norm: f32) -> Self {
        PreparedQuery {
            metric,
            query,
            query_norm,
            k: active(),
        }
    }

    /// Prepare `query` against an explicit kernel table (tests / benches).
    #[must_use]
    pub fn on(k: &'static Kernels, metric: DistanceMetric, query: &'q [f32]) -> Self {
        let query_norm = match metric {
            DistanceMetric::Cosine => k.norm_sq(query).sqrt(),
            _ => 0.0,
        };
        PreparedQuery {
            metric,
            query,
            query_norm,
            k,
        }
    }

    /// The metric this query scores under.
    #[must_use]
    pub fn metric(&self) -> DistanceMetric {
        self.metric
    }

    /// The prepared query vector.
    #[must_use]
    pub fn query(&self) -> &[f32] {
        self.query
    }

    /// The hoisted Euclidean query norm (0.0 for non-cosine metrics).
    #[must_use]
    pub fn query_norm(&self) -> f32 {
        self.query_norm
    }

    /// The kernel tier scoring this query.
    #[must_use]
    pub fn tier(&self) -> KernelTier {
        self.k.tier()
    }

    /// Distance to a candidate whose norm is **not** cached (cosine runs the
    /// fused `dot_norm_sq` kernel — one pass instead of three).
    #[must_use]
    pub fn distance(&self, v: &[f32]) -> f32 {
        match self.metric {
            DistanceMetric::L2 => self.k.l2_sq(self.query, v),
            DistanceMetric::InnerProduct => -self.k.dot(self.query, v),
            DistanceMetric::Cosine => {
                let (dot, norm_sq) = self.k.dot_norm_sq(self.query, v);
                cosine_from_parts(dot, self.query_norm * norm_sq.sqrt())
            }
        }
    }

    /// Distance to a candidate with a cached Euclidean norm: cosine becomes
    /// a single `dot` pass. `v_norm` is ignored for L2 / inner product.
    #[must_use]
    pub fn distance_cached(&self, v: &[f32], v_norm: f32) -> f32 {
        match self.metric {
            DistanceMetric::L2 => self.k.l2_sq(self.query, v),
            DistanceMetric::InnerProduct => -self.k.dot(self.query, v),
            DistanceMetric::Cosine => {
                cosine_from_parts(self.k.dot(self.query, v), self.query_norm * v_norm)
            }
        }
    }

    /// Score `slots` gathered from a slot-major `arena` (`dim` floats per
    /// slot) against this query, using the per-slot `norms` cache; distances
    /// land in `out` (cleared first, one entry per slot, same order).
    pub fn distance_slots(
        &self,
        arena: &[f32],
        dim: usize,
        norms: &[f32],
        slots: &[u32],
        out: &mut Vec<f32>,
    ) {
        out.clear();
        out.reserve(slots.len());
        for &s in slots {
            let v = &arena[s as usize * dim..(s as usize + 1) * dim];
            out.push(self.distance_cached(v, norms[s as usize]));
        }
    }

    /// [`Self::distance_slots`] with software prefetch interleaved: while
    /// slot `i` is being scored, slot `i+2`'s row is requested — two rows
    /// of arithmetic (~hundreds of cycles at dim 768) cover a DRAM-latency
    /// round trip, where one row's worth would not. Capped at 32 lines per
    /// row; the hardware stride prefetcher streams the tail of wider rows
    /// once the kernel starts walking them. Used by the compiled
    /// (`packed+prefetch`) graph layout; a no-op on the scalar tier.
    pub fn distance_slots_prefetch(
        &self,
        arena: &[f32],
        dim: usize,
        norms: &[f32],
        slots: &[u32],
        out: &mut Vec<f32>,
    ) {
        out.clear();
        out.reserve(slots.len());
        let lines = (dim * std::mem::size_of::<f32>()).div_ceil(64).min(32);
        let warm = |s: u32| {
            let p = arena.as_ptr().wrapping_add(s as usize * dim).cast::<u8>();
            for l in 0..lines {
                self.k.prefetch(p.wrapping_add(l * 64));
            }
        };
        if let Some(&second) = slots.get(1) {
            warm(second);
        }
        for (i, &s) in slots.iter().enumerate() {
            if let Some(&ahead) = slots.get(i + 2) {
                warm(ahead);
            }
            let v = &arena[s as usize * dim..(s as usize + 1) * dim];
            out.push(self.distance_cached(v, norms[s as usize]));
        }
    }

    /// Score `out.len()` contiguous rows of `slab` against this query in one
    /// batched kernel call. `norms` (one per row) is required for cosine;
    /// rows of other metrics ignore it.
    pub fn distance_batch(&self, slab: &[f32], norms: Option<&[f32]>, out: &mut [f32]) {
        match self.metric {
            DistanceMetric::L2 => self.k.l2_sq_batch(self.query, slab, out),
            DistanceMetric::InnerProduct => {
                self.k.dot_batch(self.query, slab, out);
                for o in out.iter_mut() {
                    *o = -*o;
                }
            }
            DistanceMetric::Cosine => {
                self.k.dot_batch(self.query, slab, out);
                let d = self.query.len();
                match norms {
                    Some(ns) => {
                        debug_assert_eq!(ns.len(), out.len());
                        for (o, &n) in out.iter_mut().zip(ns) {
                            *o = cosine_from_parts(*o, self.query_norm * n);
                        }
                    }
                    None => {
                        for (i, o) in out.iter_mut().enumerate() {
                            let row = &slab[i * d..(i + 1) * d];
                            let n = self.k.norm_sq(row).sqrt();
                            *o = cosine_from_parts(*o, self.query_norm * n);
                        }
                    }
                }
            }
        }
    }
}

/// The seed 4-lane scalar kernels — the always-correct reference every other
/// tier is tested against.
pub mod scalar {
    /// Inner product, 4-lane unrolled (auto-vectorizes on any target).
    #[must_use]
    pub fn dot(a: &[f32], b: &[f32]) -> f32 {
        let mut acc = [0.0f32; 4];
        let chunks = a.len() / 4;
        for i in 0..chunks {
            let base = i * 4;
            for lane in 0..4 {
                acc[lane] += a[base + lane] * b[base + lane];
            }
        }
        let mut sum = acc[0] + acc[1] + acc[2] + acc[3];
        for i in chunks * 4..a.len() {
            sum += a[i] * b[i];
        }
        sum
    }

    /// Squared L2 distance, 4-lane unrolled.
    #[must_use]
    pub fn l2_sq(a: &[f32], b: &[f32]) -> f32 {
        let mut acc = [0.0f32; 4];
        let chunks = a.len() / 4;
        for i in 0..chunks {
            let base = i * 4;
            for lane in 0..4 {
                let d = a[base + lane] - b[base + lane];
                acc[lane] += d * d;
            }
        }
        let mut sum = acc[0] + acc[1] + acc[2] + acc[3];
        for i in chunks * 4..a.len() {
            let d = a[i] - b[i];
            sum += d * d;
        }
        sum
    }

    /// Squared norm (`dot(a, a)` in the seed's accumulation order).
    #[must_use]
    pub fn norm_sq(a: &[f32]) -> f32 {
        dot(a, a)
    }

    /// Fused `(<a, b>, |b|²)`. Each reduction accumulates in exactly the
    /// same lane order as [`dot`], so the parts are bit-identical to the
    /// seed's separate passes.
    #[must_use]
    pub fn dot_norm_sq(a: &[f32], b: &[f32]) -> (f32, f32) {
        let mut ab = [0.0f32; 4];
        let mut bb = [0.0f32; 4];
        let chunks = a.len() / 4;
        for i in 0..chunks {
            let base = i * 4;
            for lane in 0..4 {
                ab[lane] += a[base + lane] * b[base + lane];
                bb[lane] += b[base + lane] * b[base + lane];
            }
        }
        let mut s_ab = ab[0] + ab[1] + ab[2] + ab[3];
        let mut s_bb = bb[0] + bb[1] + bb[2] + bb[3];
        for i in chunks * 4..a.len() {
            s_ab += a[i] * b[i];
            s_bb += b[i] * b[i];
        }
        (s_ab, s_bb)
    }

    pub(super) fn dot_batch(q: &[f32], slab: &[f32], out: &mut [f32]) {
        let d = q.len();
        for (i, o) in out.iter_mut().enumerate() {
            *o = dot(q, &slab[i * d..(i + 1) * d]);
        }
    }

    pub(super) fn l2_sq_batch(q: &[f32], slab: &[f32], out: &mut [f32]) {
        let d = q.len();
        for (i, o) in out.iter_mut().enumerate() {
            *o = l2_sq(q, &slab[i * d..(i + 1) * d]);
        }
    }

    /// Mixed-precision inner product `Σ a[i] * codes[i]`, 4-lane unrolled in
    /// the same accumulation order as [`dot`] — the reference every SIMD
    /// tier's u8 kernels are tested against.
    #[must_use]
    pub fn dot_u8(a: &[f32], codes: &[u8]) -> f32 {
        let mut acc = [0.0f32; 4];
        let chunks = a.len() / 4;
        for i in 0..chunks {
            let base = i * 4;
            for lane in 0..4 {
                acc[lane] += a[base + lane] * f32::from(codes[base + lane]);
            }
        }
        let mut sum = acc[0] + acc[1] + acc[2] + acc[3];
        for i in chunks * 4..a.len() {
            sum += a[i] * f32::from(codes[i]);
        }
        sum
    }

    /// Mixed-precision squared L2 `Σ (a[i] - scale[i]*codes[i])²`, 4-lane
    /// unrolled.
    #[must_use]
    pub fn l2_sq_u8(a: &[f32], scale: &[f32], codes: &[u8]) -> f32 {
        let mut acc = [0.0f32; 4];
        let chunks = a.len() / 4;
        for i in 0..chunks {
            let base = i * 4;
            for lane in 0..4 {
                let d = a[base + lane] - scale[base + lane] * f32::from(codes[base + lane]);
                acc[lane] += d * d;
            }
        }
        let mut sum = acc[0] + acc[1] + acc[2] + acc[3];
        for i in chunks * 4..a.len() {
            let d = a[i] - scale[i] * f32::from(codes[i]);
            sum += d * d;
        }
        sum
    }

    pub(super) fn dot_u8_batch(a: &[f32], codes: &[u8], out: &mut [f32]) {
        let d = a.len();
        for (i, o) in out.iter_mut().enumerate() {
            *o = dot_u8(a, &codes[i * d..(i + 1) * d]);
        }
    }

    pub(super) fn l2_sq_u8_batch(a: &[f32], scale: &[f32], codes: &[u8], out: &mut [f32]) {
        let d = a.len();
        for (i, o) in out.iter_mut().enumerate() {
            *o = l2_sq_u8(a, scale, &codes[i * d..(i + 1) * d]);
        }
    }

    /// Reference prefetch: a hint the portable tier cannot express, so it
    /// compiles to nothing.
    pub(super) fn prefetch(_p: *const u8) {}
}

static SCALAR: Kernels = Kernels {
    tier: KernelTier::Scalar,
    dot: scalar::dot,
    l2_sq: scalar::l2_sq,
    norm_sq: scalar::norm_sq,
    dot_norm_sq: scalar::dot_norm_sq,
    dot_batch: scalar::dot_batch,
    l2_sq_batch: scalar::l2_sq_batch,
    dot_u8: scalar::dot_u8,
    l2_sq_u8: scalar::l2_sq_u8,
    dot_u8_batch: scalar::dot_u8_batch,
    l2_sq_u8_batch: scalar::l2_sq_u8_batch,
    prefetch: scalar::prefetch,
};

#[cfg(target_arch = "x86_64")]
mod x86 {
    //! SSE2 and AVX2+FMA kernels. Every `unsafe` block is justified by the
    //! runtime feature check performed before the table is installed (SSE2
    //! is part of the x86-64 baseline). Batch kernels call the pair kernels
    //! from inside the same `#[target_feature]` context so they inline into
    //! one vectorized loop per row — the per-call dispatch cost is paid once
    //! per batch.

    use super::{KernelTier, Kernels};
    #[allow(clippy::wildcard_imports)]
    use std::arch::x86_64::*;

    #[inline]
    #[target_feature(enable = "sse2")]
    unsafe fn hsum128(v: __m128) -> f32 {
        // (a b c d) -> (a+c, b+d, ..) -> (a+c+b+d, ..)
        let hi = _mm_movehl_ps(v, v);
        let sum2 = _mm_add_ps(v, hi);
        let hi1 = _mm_shuffle_ps(sum2, sum2, 0b01);
        _mm_cvtss_f32(_mm_add_ss(sum2, hi1))
    }

    #[inline]
    #[target_feature(enable = "sse2")]
    unsafe fn dot_sse_raw(a: &[f32], b: &[f32]) -> f32 {
        let n = a.len();
        let (pa, pb) = (a.as_ptr(), b.as_ptr());
        let mut acc = _mm_setzero_ps();
        let mut i = 0;
        while i + 4 <= n {
            let va = _mm_loadu_ps(pa.add(i));
            let vb = _mm_loadu_ps(pb.add(i));
            acc = _mm_add_ps(acc, _mm_mul_ps(va, vb));
            i += 4;
        }
        let mut sum = hsum128(acc);
        while i < n {
            sum += *pa.add(i) * *pb.add(i);
            i += 1;
        }
        sum
    }

    #[inline]
    #[target_feature(enable = "sse2")]
    unsafe fn l2_sq_sse_raw(a: &[f32], b: &[f32]) -> f32 {
        let n = a.len();
        let (pa, pb) = (a.as_ptr(), b.as_ptr());
        let mut acc = _mm_setzero_ps();
        let mut i = 0;
        while i + 4 <= n {
            let d = _mm_sub_ps(_mm_loadu_ps(pa.add(i)), _mm_loadu_ps(pb.add(i)));
            acc = _mm_add_ps(acc, _mm_mul_ps(d, d));
            i += 4;
        }
        let mut sum = hsum128(acc);
        while i < n {
            let d = *pa.add(i) - *pb.add(i);
            sum += d * d;
            i += 1;
        }
        sum
    }

    #[inline]
    #[target_feature(enable = "sse2")]
    unsafe fn dot_norm_sq_sse_raw(a: &[f32], b: &[f32]) -> (f32, f32) {
        let n = a.len();
        let (pa, pb) = (a.as_ptr(), b.as_ptr());
        let mut acc_ab = _mm_setzero_ps();
        let mut acc_bb = _mm_setzero_ps();
        let mut i = 0;
        while i + 4 <= n {
            let va = _mm_loadu_ps(pa.add(i));
            let vb = _mm_loadu_ps(pb.add(i));
            acc_ab = _mm_add_ps(acc_ab, _mm_mul_ps(va, vb));
            acc_bb = _mm_add_ps(acc_bb, _mm_mul_ps(vb, vb));
            i += 4;
        }
        let (mut s_ab, mut s_bb) = (hsum128(acc_ab), hsum128(acc_bb));
        while i < n {
            let (x, y) = (*pa.add(i), *pb.add(i));
            s_ab += x * y;
            s_bb += y * y;
            i += 1;
        }
        (s_ab, s_bb)
    }

    fn dot_sse(a: &[f32], b: &[f32]) -> f32 {
        // SAFETY: SSE2 is part of the x86-64 baseline.
        unsafe { dot_sse_raw(a, b) }
    }
    fn l2_sq_sse(a: &[f32], b: &[f32]) -> f32 {
        // SAFETY: SSE2 is part of the x86-64 baseline.
        unsafe { l2_sq_sse_raw(a, b) }
    }
    fn norm_sq_sse(a: &[f32]) -> f32 {
        // SAFETY: SSE2 is part of the x86-64 baseline.
        unsafe { dot_sse_raw(a, a) }
    }
    fn dot_norm_sq_sse(a: &[f32], b: &[f32]) -> (f32, f32) {
        // SAFETY: SSE2 is part of the x86-64 baseline.
        unsafe { dot_norm_sq_sse_raw(a, b) }
    }

    #[target_feature(enable = "sse2")]
    unsafe fn dot_batch_sse_raw(q: &[f32], slab: &[f32], out: &mut [f32]) {
        let d = q.len();
        for (i, o) in out.iter_mut().enumerate() {
            *o = dot_sse_raw(q, &slab[i * d..(i + 1) * d]);
        }
    }
    #[target_feature(enable = "sse2")]
    unsafe fn l2_sq_batch_sse_raw(q: &[f32], slab: &[f32], out: &mut [f32]) {
        let d = q.len();
        for (i, o) in out.iter_mut().enumerate() {
            *o = l2_sq_sse_raw(q, &slab[i * d..(i + 1) * d]);
        }
    }
    fn dot_batch_sse(q: &[f32], slab: &[f32], out: &mut [f32]) {
        // SAFETY: SSE2 is part of the x86-64 baseline.
        unsafe { dot_batch_sse_raw(q, slab, out) }
    }
    fn l2_sq_batch_sse(q: &[f32], slab: &[f32], out: &mut [f32]) {
        // SAFETY: SSE2 is part of the x86-64 baseline.
        unsafe { l2_sq_batch_sse_raw(q, slab, out) }
    }

    /// Widen 4 code bytes at `p` to a `f32` lane vector. SSE2 has no
    /// `cvtepu8` (that's SSE4.1), so zero-extend via two unpacks.
    #[inline]
    #[target_feature(enable = "sse2")]
    unsafe fn load4_u8_ps(p: *const u8) -> __m128 {
        let raw = p.cast::<u32>().read_unaligned();
        let v = _mm_cvtsi32_si128(raw as i32);
        let zero = _mm_setzero_si128();
        let w32 = _mm_unpacklo_epi16(_mm_unpacklo_epi8(v, zero), zero);
        _mm_cvtepi32_ps(w32)
    }

    #[inline]
    #[target_feature(enable = "sse2")]
    unsafe fn dot_u8_sse_raw(a: &[f32], codes: &[u8]) -> f32 {
        let n = a.len();
        let (pa, pc) = (a.as_ptr(), codes.as_ptr());
        let mut acc = _mm_setzero_ps();
        let mut i = 0;
        while i + 4 <= n {
            acc = _mm_add_ps(
                acc,
                _mm_mul_ps(_mm_loadu_ps(pa.add(i)), load4_u8_ps(pc.add(i))),
            );
            i += 4;
        }
        let mut sum = hsum128(acc);
        while i < n {
            sum += *pa.add(i) * f32::from(*pc.add(i));
            i += 1;
        }
        sum
    }

    #[inline]
    #[target_feature(enable = "sse2")]
    unsafe fn l2_sq_u8_sse_raw(a: &[f32], scale: &[f32], codes: &[u8]) -> f32 {
        let n = a.len();
        let (pa, ps, pc) = (a.as_ptr(), scale.as_ptr(), codes.as_ptr());
        let mut acc = _mm_setzero_ps();
        let mut i = 0;
        while i + 4 <= n {
            let d = _mm_sub_ps(
                _mm_loadu_ps(pa.add(i)),
                _mm_mul_ps(_mm_loadu_ps(ps.add(i)), load4_u8_ps(pc.add(i))),
            );
            acc = _mm_add_ps(acc, _mm_mul_ps(d, d));
            i += 4;
        }
        let mut sum = hsum128(acc);
        while i < n {
            let d = *pa.add(i) - *ps.add(i) * f32::from(*pc.add(i));
            sum += d * d;
            i += 1;
        }
        sum
    }

    #[target_feature(enable = "sse2")]
    unsafe fn dot_u8_batch_sse_raw(a: &[f32], codes: &[u8], out: &mut [f32]) {
        let d = a.len();
        for (i, o) in out.iter_mut().enumerate() {
            *o = dot_u8_sse_raw(a, &codes[i * d..(i + 1) * d]);
        }
    }
    #[target_feature(enable = "sse2")]
    unsafe fn l2_sq_u8_batch_sse_raw(a: &[f32], scale: &[f32], codes: &[u8], out: &mut [f32]) {
        let d = a.len();
        for (i, o) in out.iter_mut().enumerate() {
            *o = l2_sq_u8_sse_raw(a, scale, &codes[i * d..(i + 1) * d]);
        }
    }

    fn dot_u8_sse(a: &[f32], codes: &[u8]) -> f32 {
        // SAFETY: SSE2 is part of the x86-64 baseline.
        unsafe { dot_u8_sse_raw(a, codes) }
    }
    fn l2_sq_u8_sse(a: &[f32], scale: &[f32], codes: &[u8]) -> f32 {
        // SAFETY: SSE2 is part of the x86-64 baseline.
        unsafe { l2_sq_u8_sse_raw(a, scale, codes) }
    }
    fn dot_u8_batch_sse(a: &[f32], codes: &[u8], out: &mut [f32]) {
        // SAFETY: SSE2 is part of the x86-64 baseline.
        unsafe { dot_u8_batch_sse_raw(a, codes, out) }
    }
    fn l2_sq_u8_batch_sse(a: &[f32], scale: &[f32], codes: &[u8], out: &mut [f32]) {
        // SAFETY: SSE2 is part of the x86-64 baseline.
        unsafe { l2_sq_u8_batch_sse_raw(a, scale, codes, out) }
    }

    fn prefetch_x86(p: *const u8) {
        // SAFETY: PREFETCHT0 is an advisory hint that never faults (any
        // address, mapped or not) and is part of the SSE baseline on x86-64.
        unsafe { _mm_prefetch::<_MM_HINT_T0>(p.cast::<i8>()) }
    }

    pub(super) static SSE: Kernels = Kernels {
        tier: KernelTier::Sse,
        dot: dot_sse,
        l2_sq: l2_sq_sse,
        norm_sq: norm_sq_sse,
        dot_norm_sq: dot_norm_sq_sse,
        dot_batch: dot_batch_sse,
        l2_sq_batch: l2_sq_batch_sse,
        dot_u8: dot_u8_sse,
        l2_sq_u8: l2_sq_u8_sse,
        dot_u8_batch: dot_u8_batch_sse,
        l2_sq_u8_batch: l2_sq_u8_batch_sse,
        prefetch: prefetch_x86,
    };

    #[inline]
    #[target_feature(enable = "avx2", enable = "fma")]
    unsafe fn hsum256(v: __m256) -> f32 {
        let lo = _mm256_castps256_ps128(v);
        let hi = _mm256_extractf128_ps(v, 1);
        hsum128(_mm_add_ps(lo, hi))
    }

    #[inline]
    #[target_feature(enable = "avx2", enable = "fma")]
    unsafe fn dot_avx2_raw(a: &[f32], b: &[f32]) -> f32 {
        let n = a.len();
        let (pa, pb) = (a.as_ptr(), b.as_ptr());
        // Two accumulators hide the FMA latency chain at dims >= 16.
        let mut acc0 = _mm256_setzero_ps();
        let mut acc1 = _mm256_setzero_ps();
        let mut i = 0;
        while i + 16 <= n {
            acc0 = _mm256_fmadd_ps(_mm256_loadu_ps(pa.add(i)), _mm256_loadu_ps(pb.add(i)), acc0);
            acc1 = _mm256_fmadd_ps(
                _mm256_loadu_ps(pa.add(i + 8)),
                _mm256_loadu_ps(pb.add(i + 8)),
                acc1,
            );
            i += 16;
        }
        if i + 8 <= n {
            acc0 = _mm256_fmadd_ps(_mm256_loadu_ps(pa.add(i)), _mm256_loadu_ps(pb.add(i)), acc0);
            i += 8;
        }
        let mut sum = hsum256(_mm256_add_ps(acc0, acc1));
        while i < n {
            sum += *pa.add(i) * *pb.add(i);
            i += 1;
        }
        sum
    }

    #[inline]
    #[target_feature(enable = "avx2", enable = "fma")]
    unsafe fn l2_sq_avx2_raw(a: &[f32], b: &[f32]) -> f32 {
        let n = a.len();
        let (pa, pb) = (a.as_ptr(), b.as_ptr());
        let mut acc0 = _mm256_setzero_ps();
        let mut acc1 = _mm256_setzero_ps();
        let mut i = 0;
        while i + 16 <= n {
            let d0 = _mm256_sub_ps(_mm256_loadu_ps(pa.add(i)), _mm256_loadu_ps(pb.add(i)));
            let d1 = _mm256_sub_ps(
                _mm256_loadu_ps(pa.add(i + 8)),
                _mm256_loadu_ps(pb.add(i + 8)),
            );
            acc0 = _mm256_fmadd_ps(d0, d0, acc0);
            acc1 = _mm256_fmadd_ps(d1, d1, acc1);
            i += 16;
        }
        if i + 8 <= n {
            let d = _mm256_sub_ps(_mm256_loadu_ps(pa.add(i)), _mm256_loadu_ps(pb.add(i)));
            acc0 = _mm256_fmadd_ps(d, d, acc0);
            i += 8;
        }
        let mut sum = hsum256(_mm256_add_ps(acc0, acc1));
        while i < n {
            let d = *pa.add(i) - *pb.add(i);
            sum += d * d;
            i += 1;
        }
        sum
    }

    #[inline]
    #[target_feature(enable = "avx2", enable = "fma")]
    unsafe fn dot_norm_sq_avx2_raw(a: &[f32], b: &[f32]) -> (f32, f32) {
        let n = a.len();
        let (pa, pb) = (a.as_ptr(), b.as_ptr());
        let mut acc_ab = _mm256_setzero_ps();
        let mut acc_bb = _mm256_setzero_ps();
        let mut i = 0;
        while i + 8 <= n {
            let va = _mm256_loadu_ps(pa.add(i));
            let vb = _mm256_loadu_ps(pb.add(i));
            acc_ab = _mm256_fmadd_ps(va, vb, acc_ab);
            acc_bb = _mm256_fmadd_ps(vb, vb, acc_bb);
            i += 8;
        }
        let (mut s_ab, mut s_bb) = (hsum256(acc_ab), hsum256(acc_bb));
        while i < n {
            let (x, y) = (*pa.add(i), *pb.add(i));
            s_ab += x * y;
            s_bb += y * y;
            i += 1;
        }
        (s_ab, s_bb)
    }

    #[target_feature(enable = "avx2", enable = "fma")]
    unsafe fn dot_batch_avx2_raw(q: &[f32], slab: &[f32], out: &mut [f32]) {
        let d = q.len();
        for (i, o) in out.iter_mut().enumerate() {
            *o = dot_avx2_raw(q, &slab[i * d..(i + 1) * d]);
        }
    }
    #[target_feature(enable = "avx2", enable = "fma")]
    unsafe fn l2_sq_batch_avx2_raw(q: &[f32], slab: &[f32], out: &mut [f32]) {
        let d = q.len();
        for (i, o) in out.iter_mut().enumerate() {
            *o = l2_sq_avx2_raw(q, &slab[i * d..(i + 1) * d]);
        }
    }

    pub(super) fn avx2_available() -> bool {
        is_x86_feature_detected!("avx2") && is_x86_feature_detected!("fma")
    }

    fn dot_avx2(a: &[f32], b: &[f32]) -> f32 {
        // SAFETY: table only installed when avx2_available() held.
        unsafe { dot_avx2_raw(a, b) }
    }
    fn l2_sq_avx2(a: &[f32], b: &[f32]) -> f32 {
        // SAFETY: table only installed when avx2_available() held.
        unsafe { l2_sq_avx2_raw(a, b) }
    }
    fn norm_sq_avx2(a: &[f32]) -> f32 {
        // SAFETY: table only installed when avx2_available() held.
        unsafe { dot_avx2_raw(a, a) }
    }
    fn dot_norm_sq_avx2(a: &[f32], b: &[f32]) -> (f32, f32) {
        // SAFETY: table only installed when avx2_available() held.
        unsafe { dot_norm_sq_avx2_raw(a, b) }
    }
    fn dot_batch_avx2(q: &[f32], slab: &[f32], out: &mut [f32]) {
        // SAFETY: table only installed when avx2_available() held.
        unsafe { dot_batch_avx2_raw(q, slab, out) }
    }
    fn l2_sq_batch_avx2(q: &[f32], slab: &[f32], out: &mut [f32]) {
        // SAFETY: table only installed when avx2_available() held.
        unsafe { l2_sq_batch_avx2_raw(q, slab, out) }
    }

    /// Widen 8 code bytes at `p` to a `f32` lane vector (`vpmovzxbd` +
    /// convert). The caller guarantees at least 8 readable bytes.
    #[inline]
    #[target_feature(enable = "avx2", enable = "fma")]
    unsafe fn load8_u8_ps(p: *const u8) -> __m256 {
        _mm256_cvtepi32_ps(_mm256_cvtepu8_epi32(_mm_loadl_epi64(p.cast())))
    }

    #[inline]
    #[target_feature(enable = "avx2", enable = "fma")]
    unsafe fn dot_u8_avx2_raw(a: &[f32], codes: &[u8]) -> f32 {
        let n = a.len();
        let (pa, pc) = (a.as_ptr(), codes.as_ptr());
        let mut acc0 = _mm256_setzero_ps();
        let mut acc1 = _mm256_setzero_ps();
        let mut i = 0;
        while i + 16 <= n {
            acc0 = _mm256_fmadd_ps(_mm256_loadu_ps(pa.add(i)), load8_u8_ps(pc.add(i)), acc0);
            acc1 = _mm256_fmadd_ps(
                _mm256_loadu_ps(pa.add(i + 8)),
                load8_u8_ps(pc.add(i + 8)),
                acc1,
            );
            i += 16;
        }
        if i + 8 <= n {
            acc0 = _mm256_fmadd_ps(_mm256_loadu_ps(pa.add(i)), load8_u8_ps(pc.add(i)), acc0);
            i += 8;
        }
        let mut sum = hsum256(_mm256_add_ps(acc0, acc1));
        while i < n {
            sum += *pa.add(i) * f32::from(*pc.add(i));
            i += 1;
        }
        sum
    }

    #[inline]
    #[target_feature(enable = "avx2", enable = "fma")]
    unsafe fn l2_sq_u8_avx2_raw(a: &[f32], scale: &[f32], codes: &[u8]) -> f32 {
        let n = a.len();
        let (pa, ps, pc) = (a.as_ptr(), scale.as_ptr(), codes.as_ptr());
        let mut acc0 = _mm256_setzero_ps();
        let mut acc1 = _mm256_setzero_ps();
        let mut i = 0;
        while i + 16 <= n {
            let d0 = _mm256_fnmadd_ps(
                _mm256_loadu_ps(ps.add(i)),
                load8_u8_ps(pc.add(i)),
                _mm256_loadu_ps(pa.add(i)),
            );
            let d1 = _mm256_fnmadd_ps(
                _mm256_loadu_ps(ps.add(i + 8)),
                load8_u8_ps(pc.add(i + 8)),
                _mm256_loadu_ps(pa.add(i + 8)),
            );
            acc0 = _mm256_fmadd_ps(d0, d0, acc0);
            acc1 = _mm256_fmadd_ps(d1, d1, acc1);
            i += 16;
        }
        if i + 8 <= n {
            let d = _mm256_fnmadd_ps(
                _mm256_loadu_ps(ps.add(i)),
                load8_u8_ps(pc.add(i)),
                _mm256_loadu_ps(pa.add(i)),
            );
            acc0 = _mm256_fmadd_ps(d, d, acc0);
            i += 8;
        }
        let mut sum = hsum256(_mm256_add_ps(acc0, acc1));
        while i < n {
            let d = *pa.add(i) - *ps.add(i) * f32::from(*pc.add(i));
            sum += d * d;
            i += 1;
        }
        sum
    }

    #[target_feature(enable = "avx2", enable = "fma")]
    unsafe fn dot_u8_batch_avx2_raw(a: &[f32], codes: &[u8], out: &mut [f32]) {
        let d = a.len();
        for (i, o) in out.iter_mut().enumerate() {
            *o = dot_u8_avx2_raw(a, &codes[i * d..(i + 1) * d]);
        }
    }
    #[target_feature(enable = "avx2", enable = "fma")]
    unsafe fn l2_sq_u8_batch_avx2_raw(a: &[f32], scale: &[f32], codes: &[u8], out: &mut [f32]) {
        let d = a.len();
        for (i, o) in out.iter_mut().enumerate() {
            *o = l2_sq_u8_avx2_raw(a, scale, &codes[i * d..(i + 1) * d]);
        }
    }

    fn dot_u8_avx2(a: &[f32], codes: &[u8]) -> f32 {
        // SAFETY: table only installed when avx2_available() held.
        unsafe { dot_u8_avx2_raw(a, codes) }
    }
    fn l2_sq_u8_avx2(a: &[f32], scale: &[f32], codes: &[u8]) -> f32 {
        // SAFETY: table only installed when avx2_available() held.
        unsafe { l2_sq_u8_avx2_raw(a, scale, codes) }
    }
    fn dot_u8_batch_avx2(a: &[f32], codes: &[u8], out: &mut [f32]) {
        // SAFETY: table only installed when avx2_available() held.
        unsafe { dot_u8_batch_avx2_raw(a, codes, out) }
    }
    fn l2_sq_u8_batch_avx2(a: &[f32], scale: &[f32], codes: &[u8], out: &mut [f32]) {
        // SAFETY: table only installed when avx2_available() held.
        unsafe { l2_sq_u8_batch_avx2_raw(a, scale, codes, out) }
    }

    pub(super) static AVX2: Kernels = Kernels {
        tier: KernelTier::Avx2Fma,
        dot: dot_avx2,
        l2_sq: l2_sq_avx2,
        norm_sq: norm_sq_avx2,
        dot_norm_sq: dot_norm_sq_avx2,
        dot_batch: dot_batch_avx2,
        l2_sq_batch: l2_sq_batch_avx2,
        dot_u8: dot_u8_avx2,
        l2_sq_u8: l2_sq_u8_avx2,
        dot_u8_batch: dot_u8_batch_avx2,
        l2_sq_u8_batch: l2_sq_u8_batch_avx2,
        prefetch: prefetch_x86,
    };
}

#[cfg(target_arch = "aarch64")]
mod arm {
    //! NEON kernels (baseline on aarch64, no runtime probe required).

    use super::{KernelTier, Kernels};
    #[allow(clippy::wildcard_imports)]
    use std::arch::aarch64::*;

    #[inline]
    unsafe fn dot_neon_raw(a: &[f32], b: &[f32]) -> f32 {
        let n = a.len();
        let (pa, pb) = (a.as_ptr(), b.as_ptr());
        let mut acc = vdupq_n_f32(0.0);
        let mut i = 0;
        while i + 4 <= n {
            acc = vfmaq_f32(acc, vld1q_f32(pa.add(i)), vld1q_f32(pb.add(i)));
            i += 4;
        }
        let mut sum = vaddvq_f32(acc);
        while i < n {
            sum += *pa.add(i) * *pb.add(i);
            i += 1;
        }
        sum
    }

    #[inline]
    unsafe fn l2_sq_neon_raw(a: &[f32], b: &[f32]) -> f32 {
        let n = a.len();
        let (pa, pb) = (a.as_ptr(), b.as_ptr());
        let mut acc = vdupq_n_f32(0.0);
        let mut i = 0;
        while i + 4 <= n {
            let d = vsubq_f32(vld1q_f32(pa.add(i)), vld1q_f32(pb.add(i)));
            acc = vfmaq_f32(acc, d, d);
            i += 4;
        }
        let mut sum = vaddvq_f32(acc);
        while i < n {
            let d = *pa.add(i) - *pb.add(i);
            sum += d * d;
            i += 1;
        }
        sum
    }

    #[inline]
    unsafe fn dot_norm_sq_neon_raw(a: &[f32], b: &[f32]) -> (f32, f32) {
        let n = a.len();
        let (pa, pb) = (a.as_ptr(), b.as_ptr());
        let mut acc_ab = vdupq_n_f32(0.0);
        let mut acc_bb = vdupq_n_f32(0.0);
        let mut i = 0;
        while i + 4 <= n {
            let va = vld1q_f32(pa.add(i));
            let vb = vld1q_f32(pb.add(i));
            acc_ab = vfmaq_f32(acc_ab, va, vb);
            acc_bb = vfmaq_f32(acc_bb, vb, vb);
            i += 4;
        }
        let (mut s_ab, mut s_bb) = (vaddvq_f32(acc_ab), vaddvq_f32(acc_bb));
        while i < n {
            let (x, y) = (*pa.add(i), *pb.add(i));
            s_ab += x * y;
            s_bb += y * y;
            i += 1;
        }
        (s_ab, s_bb)
    }

    fn dot_neon(a: &[f32], b: &[f32]) -> f32 {
        // SAFETY: NEON is part of the aarch64 baseline.
        unsafe { dot_neon_raw(a, b) }
    }
    fn l2_sq_neon(a: &[f32], b: &[f32]) -> f32 {
        // SAFETY: NEON is part of the aarch64 baseline.
        unsafe { l2_sq_neon_raw(a, b) }
    }
    fn norm_sq_neon(a: &[f32]) -> f32 {
        // SAFETY: NEON is part of the aarch64 baseline.
        unsafe { dot_neon_raw(a, a) }
    }
    fn dot_norm_sq_neon(a: &[f32], b: &[f32]) -> (f32, f32) {
        // SAFETY: NEON is part of the aarch64 baseline.
        unsafe { dot_norm_sq_neon_raw(a, b) }
    }
    fn dot_batch_neon(q: &[f32], slab: &[f32], out: &mut [f32]) {
        let d = q.len();
        for (i, o) in out.iter_mut().enumerate() {
            // SAFETY: NEON is part of the aarch64 baseline.
            *o = unsafe { dot_neon_raw(q, &slab[i * d..(i + 1) * d]) };
        }
    }
    fn l2_sq_batch_neon(q: &[f32], slab: &[f32], out: &mut [f32]) {
        let d = q.len();
        for (i, o) in out.iter_mut().enumerate() {
            // SAFETY: NEON is part of the aarch64 baseline.
            *o = unsafe { l2_sq_neon_raw(q, &slab[i * d..(i + 1) * d]) };
        }
    }

    /// Widen 8 code bytes at `p` into two `f32x4` lane vectors.
    #[inline]
    unsafe fn load8_u8_f32(p: *const u8) -> (float32x4_t, float32x4_t) {
        let w = vmovl_u8(vld1_u8(p));
        (
            vcvtq_f32_u32(vmovl_u16(vget_low_u16(w))),
            vcvtq_f32_u32(vmovl_u16(vget_high_u16(w))),
        )
    }

    #[inline]
    unsafe fn dot_u8_neon_raw(a: &[f32], codes: &[u8]) -> f32 {
        let n = a.len();
        let (pa, pc) = (a.as_ptr(), codes.as_ptr());
        let mut acc = vdupq_n_f32(0.0);
        let mut i = 0;
        while i + 8 <= n {
            let (lo, hi) = load8_u8_f32(pc.add(i));
            acc = vfmaq_f32(acc, vld1q_f32(pa.add(i)), lo);
            acc = vfmaq_f32(acc, vld1q_f32(pa.add(i + 4)), hi);
            i += 8;
        }
        let mut sum = vaddvq_f32(acc);
        while i < n {
            sum += *pa.add(i) * f32::from(*pc.add(i));
            i += 1;
        }
        sum
    }

    #[inline]
    unsafe fn l2_sq_u8_neon_raw(a: &[f32], scale: &[f32], codes: &[u8]) -> f32 {
        let n = a.len();
        let (pa, ps, pc) = (a.as_ptr(), scale.as_ptr(), codes.as_ptr());
        let mut acc = vdupq_n_f32(0.0);
        let mut i = 0;
        while i + 8 <= n {
            let (lo, hi) = load8_u8_f32(pc.add(i));
            let d0 = vfmsq_f32(vld1q_f32(pa.add(i)), vld1q_f32(ps.add(i)), lo);
            let d1 = vfmsq_f32(vld1q_f32(pa.add(i + 4)), vld1q_f32(ps.add(i + 4)), hi);
            acc = vfmaq_f32(acc, d0, d0);
            acc = vfmaq_f32(acc, d1, d1);
            i += 8;
        }
        let mut sum = vaddvq_f32(acc);
        while i < n {
            let d = *pa.add(i) - *ps.add(i) * f32::from(*pc.add(i));
            sum += d * d;
            i += 1;
        }
        sum
    }

    fn dot_u8_neon(a: &[f32], codes: &[u8]) -> f32 {
        // SAFETY: NEON is part of the aarch64 baseline.
        unsafe { dot_u8_neon_raw(a, codes) }
    }
    fn l2_sq_u8_neon(a: &[f32], scale: &[f32], codes: &[u8]) -> f32 {
        // SAFETY: NEON is part of the aarch64 baseline.
        unsafe { l2_sq_u8_neon_raw(a, scale, codes) }
    }
    fn dot_u8_batch_neon(a: &[f32], codes: &[u8], out: &mut [f32]) {
        let d = a.len();
        for (i, o) in out.iter_mut().enumerate() {
            // SAFETY: NEON is part of the aarch64 baseline.
            *o = unsafe { dot_u8_neon_raw(a, &codes[i * d..(i + 1) * d]) };
        }
    }
    fn l2_sq_u8_batch_neon(a: &[f32], scale: &[f32], codes: &[u8], out: &mut [f32]) {
        let d = a.len();
        for (i, o) in out.iter_mut().enumerate() {
            // SAFETY: NEON is part of the aarch64 baseline.
            *o = unsafe { l2_sq_u8_neon_raw(a, scale, &codes[i * d..(i + 1) * d]) };
        }
    }

    fn prefetch_neon(p: *const u8) {
        // SAFETY: PRFM PLDL1KEEP is an advisory hint that never faults.
        unsafe {
            core::arch::asm!(
                "prfm pldl1keep, [{0}]",
                in(reg) p,
                options(nostack, preserves_flags, readonly)
            );
        }
    }

    pub(super) static NEON: Kernels = Kernels {
        tier: KernelTier::Neon,
        dot: dot_neon,
        l2_sq: l2_sq_neon,
        norm_sq: norm_sq_neon,
        dot_norm_sq: dot_norm_sq_neon,
        dot_batch: dot_batch_neon,
        l2_sq_batch: l2_sq_batch_neon,
        dot_u8: dot_u8_neon,
        l2_sq_u8: l2_sq_u8_neon,
        dot_u8_batch: dot_u8_batch_neon,
        l2_sq_u8_batch: l2_sq_u8_batch_neon,
        prefetch: prefetch_neon,
    };
}

/// The kernel table for `tier`, if that tier is usable on this CPU.
/// `Scalar` always resolves.
#[must_use]
pub fn for_tier(tier: KernelTier) -> Option<&'static Kernels> {
    match tier {
        KernelTier::Scalar => Some(&SCALAR),
        #[cfg(target_arch = "x86_64")]
        KernelTier::Sse => Some(&x86::SSE),
        #[cfg(target_arch = "x86_64")]
        KernelTier::Avx2Fma => x86::avx2_available().then_some(&x86::AVX2),
        #[cfg(target_arch = "aarch64")]
        KernelTier::Neon => Some(&arm::NEON),
        #[allow(unreachable_patterns)]
        _ => None,
    }
}

/// Every kernel table usable on this CPU, scalar first.
#[must_use]
pub fn available() -> Vec<&'static Kernels> {
    [
        KernelTier::Scalar,
        KernelTier::Sse,
        KernelTier::Avx2Fma,
        KernelTier::Neon,
    ]
    .into_iter()
    .filter_map(for_tier)
    .collect()
}

/// The best tier this CPU supports (what `KernelPolicy::Auto` dispatches to).
#[must_use]
pub fn detect_best() -> KernelTier {
    for tier in [KernelTier::Avx2Fma, KernelTier::Neon, KernelTier::Sse] {
        if for_tier(tier).is_some() {
            return tier;
        }
    }
    KernelTier::Scalar
}

static POLICY: OnceLock<KernelPolicy> = OnceLock::new();
static ACTIVE: OnceLock<&'static Kernels> = OnceLock::new();

/// Install a kernel policy before first use. Returns `false` (and changes
/// nothing) if dispatch already resolved — the active table is immutable for
/// the life of the process, because per-slot norm caches and snapshot-backed
/// distances must all come from one tier.
pub fn set_policy(policy: KernelPolicy) -> bool {
    if ACTIVE.get().is_some() {
        return false;
    }
    POLICY.set(policy).is_ok()
}

/// The policy dispatch resolved (or will resolve) under: the `TV_KERNELS`
/// environment variable wins, then [`set_policy`], then `Auto`.
#[must_use]
pub fn policy() -> KernelPolicy {
    if let Ok(v) = std::env::var("TV_KERNELS") {
        if let Some(p) = KernelPolicy::parse(&v) {
            return p;
        }
    }
    POLICY.get().copied().unwrap_or(KernelPolicy::Auto)
}

/// The process-wide active kernel table (resolved once, first use wins).
/// A forced tier that this CPU cannot run falls back to `Scalar`.
#[must_use]
pub fn active() -> &'static Kernels {
    ACTIVE.get_or_init(|| match policy() {
        KernelPolicy::Auto => for_tier(detect_best()).unwrap_or(&SCALAR),
        KernelPolicy::Force(tier) => for_tier(tier).unwrap_or(&SCALAR),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_always_available() {
        assert!(for_tier(KernelTier::Scalar).is_some());
        assert!(available().iter().any(|k| k.tier() == KernelTier::Scalar));
    }

    #[test]
    fn tier_names_roundtrip() {
        for t in [
            KernelTier::Scalar,
            KernelTier::Sse,
            KernelTier::Avx2Fma,
            KernelTier::Neon,
        ] {
            assert_eq!(KernelTier::parse(t.name()), Some(t));
        }
        assert_eq!(KernelTier::parse("avx2"), Some(KernelTier::Avx2Fma));
        assert_eq!(KernelTier::parse("bogus"), None);
    }

    #[test]
    fn scalar_fused_matches_separate_passes_bitwise() {
        let a: Vec<f32> = (0..67).map(|i| (i as f32).sin()).collect();
        let b: Vec<f32> = (0..67).map(|i| (i as f32).cos()).collect();
        let (ab, bb) = scalar::dot_norm_sq(&a, &b);
        assert_eq!(ab.to_bits(), scalar::dot(&a, &b).to_bits());
        assert_eq!(bb.to_bits(), scalar::norm_sq(&b).to_bits());
    }

    #[test]
    fn prepared_query_cosine_zero_guard_every_tier() {
        let zeros = vec![0.0f32; 16];
        let v = vec![1.0f32; 16];
        for k in available() {
            let pq = PreparedQuery::on(k, DistanceMetric::Cosine, &zeros);
            assert_eq!(pq.distance(&v), 1.0, "tier {}", k.tier());
            assert_eq!(pq.distance_cached(&v, 4.0), 1.0, "tier {}", k.tier());
            let pq = PreparedQuery::on(k, DistanceMetric::Cosine, &v);
            assert_eq!(pq.distance(&zeros), 1.0, "tier {}", k.tier());
            assert_eq!(pq.distance_cached(&zeros, 0.0), 1.0, "tier {}", k.tier());
        }
    }

    #[test]
    fn batch_matches_pair_kernels() {
        let dim = 19;
        let n = 13;
        let q: Vec<f32> = (0..dim).map(|i| (i as f32 * 0.37).sin()).collect();
        let slab: Vec<f32> = (0..dim * n).map(|i| (i as f32 * 0.11).cos()).collect();
        for k in available() {
            let mut out = vec![0.0f32; n];
            k.dot_batch(&q, &slab, &mut out);
            for (i, &o) in out.iter().enumerate() {
                let want = k.dot(&q, &slab[i * dim..(i + 1) * dim]);
                assert_eq!(o.to_bits(), want.to_bits(), "tier {}", k.tier());
            }
            k.l2_sq_batch(&q, &slab, &mut out);
            for (i, &o) in out.iter().enumerate() {
                let want = k.l2_sq(&q, &slab[i * dim..(i + 1) * dim]);
                assert_eq!(o.to_bits(), want.to_bits(), "tier {}", k.tier());
            }
        }
    }

    #[test]
    fn kernel_names_are_qualified() {
        let names = SCALAR.kernel_names();
        assert!(names.contains(&"scalar::dot".to_string()));
        assert!(names.contains(&"scalar::dot_u8".to_string()));
        assert!(names.contains(&"scalar::prefetch".to_string()));
        assert_eq!(names.len(), 11);
    }

    #[test]
    fn prefetch_is_callable_on_every_tier() {
        // Prefetch is advisory: calling it on any tier must be a no-op
        // observable only through performance. Exercise in-bounds, unaligned,
        // and null pointers — none may fault.
        let data = vec![0u8; 4096];
        for k in available() {
            k.prefetch(data.as_ptr());
            k.prefetch(unsafe { data.as_ptr().add(17) });
            k.prefetch(std::ptr::null());
        }
    }

    #[test]
    fn u8_batch_matches_pair_kernels() {
        let dim = 21;
        let n = 11;
        let a: Vec<f32> = (0..dim).map(|i| (i as f32 * 0.41).sin()).collect();
        let scale: Vec<f32> = (0..dim)
            .map(|i| 0.01 + (i as f32 * 0.17).cos().abs())
            .collect();
        let codes: Vec<u8> = (0..dim * n).map(|i| (i * 37 % 256) as u8).collect();
        for k in available() {
            let mut out = vec![0.0f32; n];
            k.dot_u8_batch(&a, &codes, &mut out);
            for (i, &o) in out.iter().enumerate() {
                let want = k.dot_u8(&a, &codes[i * dim..(i + 1) * dim]);
                assert_eq!(o.to_bits(), want.to_bits(), "tier {}", k.tier());
            }
            k.l2_sq_u8_batch(&a, &scale, &codes, &mut out);
            for (i, &o) in out.iter().enumerate() {
                let want = k.l2_sq_u8(&a, &scale, &codes[i * dim..(i + 1) * dim]);
                assert_eq!(o.to_bits(), want.to_bits(), "tier {}", k.tier());
            }
        }
    }

    #[test]
    fn u8_kernels_match_widened_f32_reference() {
        // Widening each code to f32 and running the f32 kernels must agree
        // with the fused u8 kernels within the cross-tier tolerance.
        let dim = 37;
        let a: Vec<f32> = (0..dim).map(|i| (i as f32 * 0.23).sin() * 3.0).collect();
        let scale: Vec<f32> = (0..dim)
            .map(|i| 0.002 + (i as f32 * 0.05).cos().abs() * 0.01)
            .collect();
        let codes: Vec<u8> = (0..dim).map(|i| (i * 97 % 256) as u8).collect();
        let widened: Vec<f32> = codes.iter().map(|&c| f32::from(c)).collect();
        for k in available() {
            let dot_ref = k.dot(&a, &widened);
            let dot_u8 = k.dot_u8(&a, &codes);
            assert!(
                (dot_ref - dot_u8).abs() <= 1e-5 * dot_ref.abs().max(1.0),
                "tier {}: {dot_ref} vs {dot_u8}",
                k.tier()
            );
            let recon: Vec<f32> = scale.iter().zip(&widened).map(|(&s, &c)| s * c).collect();
            let l2_ref = k.l2_sq(&a, &recon);
            let l2_u8 = k.l2_sq_u8(&a, &scale, &codes);
            assert!(
                (l2_ref - l2_u8).abs() <= 1e-4 * l2_ref.abs().max(1.0),
                "tier {}: {l2_ref} vs {l2_u8}",
                k.tier()
            );
        }
    }
}
