//! Durable-file primitives shared by the WAL and the checkpoint subsystem:
//! CRC32 (IEEE), and a small checksummed file container written atomically
//! via temp-file + rename.
//!
//! Every durable artifact in the repo — WAL frames, graph segment images,
//! embedding segment images, checkpoint manifests — carries a CRC32 so a
//! half-written or bit-rotted file fails loudly on read instead of
//! deserializing garbage (§4.3's durability contract). The container layout:
//!
//! ```text
//! magic   8B  b"TVDF0001"
//! kind    u32 caller-defined file kind (manifest / graph seg / emb seg ...)
//! version u32 caller-defined format version of the payload
//! len     u64 payload length in bytes
//! crc     u32 CRC32 of the payload
//! payload len bytes
//! ```
//!
//! Writes go to `<path>.tmp`, are fsync'd, and renamed into place; the
//! parent directory is fsync'd afterwards so the rename itself is durable.
//! A crash at any instant therefore leaves either the old file, no file, or
//! a stray `.tmp` — never a torn final file.

use crate::error::{TvError, TvResult};
use std::fs::{self, File, OpenOptions};
use std::io::{Read, Write};
use std::path::Path;

const MAGIC: &[u8; 8] = b"TVDF0001";
const HEADER_LEN: usize = 8 + 4 + 4 + 8 + 4;

/// CRC32 (IEEE 802.3, reflected, polynomial 0xEDB88320) of `data`.
#[must_use]
pub fn crc32(data: &[u8]) -> u32 {
    crc32_update(0xFFFF_FFFF, data) ^ 0xFFFF_FFFF
}

/// Streaming form: feed chunks through a running state (seed with
/// `0xFFFF_FFFF`, finish by XORing `0xFFFF_FFFF`).
#[must_use]
pub fn crc32_update(mut state: u32, data: &[u8]) -> u32 {
    for &b in data {
        let idx = (state ^ u32::from(b)) & 0xFF;
        state = (state >> 8) ^ CRC_TABLE[idx as usize];
    }
    state
}

static CRC_TABLE: [u32; 256] = build_crc_table();

const fn build_crc_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut c = i as u32;
        let mut k = 0;
        while k < 8 {
            c = if c & 1 != 0 {
                0xEDB8_8320 ^ (c >> 1)
            } else {
                c >> 1
            };
            k += 1;
        }
        table[i] = c;
        i += 1;
    }
    table
}

/// Write `payload` to `path` atomically (temp file + fsync + rename + parent
/// directory fsync) under a checksummed, versioned header.
pub fn write_atomic(path: &Path, kind: u32, version: u32, payload: &[u8]) -> TvResult<()> {
    let tmp = tmp_path(path);
    {
        let mut f = File::create(&tmp)
            .map_err(|e| TvError::Storage(format!("create {}: {e}", tmp.display())))?;
        let mut header = Vec::with_capacity(HEADER_LEN);
        header.extend_from_slice(MAGIC);
        header.extend_from_slice(&kind.to_le_bytes());
        header.extend_from_slice(&version.to_le_bytes());
        header.extend_from_slice(&(payload.len() as u64).to_le_bytes());
        header.extend_from_slice(&crc32(payload).to_le_bytes());
        f.write_all(&header)
            .and_then(|()| f.write_all(payload))
            .and_then(|()| f.sync_all())
            .map_err(|e| TvError::Storage(format!("write {}: {e}", tmp.display())))?;
    }
    fs::rename(&tmp, path).map_err(|e| {
        TvError::Storage(format!(
            "rename {} -> {}: {e}",
            tmp.display(),
            path.display()
        ))
    })?;
    fsync_parent(path);
    Ok(())
}

/// Read a durable file, verifying magic, kind, length, and CRC. Returns
/// `(version, payload)`.
pub fn read(path: &Path, expect_kind: u32) -> TvResult<(u32, Vec<u8>)> {
    let mut data = Vec::new();
    File::open(path)
        .and_then(|mut f| f.read_to_end(&mut data))
        .map_err(|e| TvError::Storage(format!("read {}: {e}", path.display())))?;
    if data.len() < HEADER_LEN {
        return Err(TvError::Storage(format!(
            "{}: truncated header ({} bytes)",
            path.display(),
            data.len()
        )));
    }
    if &data[..8] != MAGIC {
        return Err(TvError::Storage(format!("{}: bad magic", path.display())));
    }
    let kind = u32::from_le_bytes(data[8..12].try_into().expect("4 bytes"));
    if kind != expect_kind {
        return Err(TvError::Storage(format!(
            "{}: file kind {kind}, expected {expect_kind}",
            path.display()
        )));
    }
    let version = u32::from_le_bytes(data[12..16].try_into().expect("4 bytes"));
    let len = u64::from_le_bytes(data[16..24].try_into().expect("8 bytes")) as usize;
    let crc = u32::from_le_bytes(data[24..28].try_into().expect("4 bytes"));
    let payload = &data[HEADER_LEN..];
    if payload.len() != len {
        return Err(TvError::Storage(format!(
            "{}: payload length {} != declared {len}",
            path.display(),
            payload.len()
        )));
    }
    if crc32(payload) != crc {
        return Err(TvError::Storage(format!(
            "{}: payload CRC mismatch",
            path.display()
        )));
    }
    Ok((version, payload.to_vec()))
}

fn tmp_path(path: &Path) -> std::path::PathBuf {
    let mut name = path
        .file_name()
        .map_or_else(|| "file".into(), |n| n.to_os_string());
    name.push(".tmp");
    path.with_file_name(name)
}

/// Best-effort fsync of `path`'s parent directory so a rename is durable.
/// Directory fds are not universally syncable; failures are ignored.
pub fn fsync_parent(path: &Path) {
    if let Some(parent) = path.parent() {
        if let Ok(dir) = OpenOptions::new().read(true).open(parent) {
            let _ = dir.sync_all();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_file(name: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!("tv-durafile-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(name)
    }

    #[test]
    fn crc32_matches_known_vectors() {
        // IEEE CRC32 check value for "123456789".
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
        assert_eq!(
            crc32(b"The quick brown fox jumps over the lazy dog"),
            0x414F_A339
        );
    }

    #[test]
    fn roundtrip_preserves_payload_and_version() {
        let path = temp_file("roundtrip.df");
        let payload: Vec<u8> = (0..=255).collect();
        write_atomic(&path, 7, 3, &payload).unwrap();
        let (version, got) = read(&path, 7).unwrap();
        assert_eq!(version, 3);
        assert_eq!(got, payload);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn wrong_kind_rejected() {
        let path = temp_file("kind.df");
        write_atomic(&path, 1, 1, b"abc").unwrap();
        assert!(read(&path, 2).is_err());
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn corruption_detected() {
        let path = temp_file("corrupt.df");
        write_atomic(&path, 1, 1, b"hello durable world").unwrap();
        let mut data = std::fs::read(&path).unwrap();
        let last = data.len() - 1;
        data[last] ^= 0x01;
        std::fs::write(&path, &data).unwrap();
        let err = read(&path, 1).unwrap_err();
        assert!(err.to_string().contains("CRC"));
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn truncation_detected() {
        let path = temp_file("trunc.df");
        write_atomic(&path, 1, 1, b"hello durable world").unwrap();
        let data = std::fs::read(&path).unwrap();
        for cut in [0, 5, 27, data.len() - 1] {
            std::fs::write(&path, &data[..cut]).unwrap();
            assert!(read(&path, 1).is_err(), "cut {cut}");
        }
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn overwrite_is_atomic_replacement() {
        let path = temp_file("replace.df");
        write_atomic(&path, 1, 1, b"old").unwrap();
        write_atomic(&path, 1, 2, b"new").unwrap();
        let (version, got) = read(&path, 1).unwrap();
        assert_eq!((version, got.as_slice()), (2, b"new".as_slice()));
        // No stray temp file left behind.
        assert!(!tmp_path(&path).exists());
        std::fs::remove_file(&path).unwrap();
    }
}
