//! Request deadlines.
//!
//! Every serving-layer request carries a [`Deadline`]; long scatter-gather
//! operations (the per-segment search fan-out in `tv-embedding`, the worker
//! loop in `tv-cluster`) check it at segment-search boundaries so a slow
//! query can be abandoned mid-flight instead of holding an executor slot
//! until completion.

use crate::{TvError, TvResult};
use std::time::{Duration, Instant};

/// An optional absolute deadline. `Deadline::none()` never expires, so
/// existing call paths that predate the serving layer keep their behavior.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Deadline {
    at: Option<Instant>,
}

impl Deadline {
    /// No deadline: never expires.
    #[must_use]
    pub const fn none() -> Self {
        Deadline { at: None }
    }

    /// Deadline `timeout` from now.
    #[must_use]
    pub fn after(timeout: Duration) -> Self {
        Deadline {
            at: Some(Instant::now() + timeout),
        }
    }

    /// Deadline at an absolute instant.
    #[must_use]
    pub const fn at(instant: Instant) -> Self {
        Deadline { at: Some(instant) }
    }

    /// An already-expired deadline (tests and fail-fast paths).
    #[must_use]
    pub fn expired_now() -> Self {
        Deadline {
            at: Some(Instant::now()),
        }
    }

    /// Whether the deadline has passed.
    #[must_use]
    pub fn expired(&self) -> bool {
        self.at.is_some_and(|at| Instant::now() >= at)
    }

    /// Time remaining; `None` when unbounded, `Some(ZERO)` when expired.
    #[must_use]
    pub fn remaining(&self) -> Option<Duration> {
        self.at
            .map(|at| at.saturating_duration_since(Instant::now()))
    }

    /// Error out when expired — the check placed at segment-search
    /// boundaries.
    pub fn check(&self, what: &str) -> TvResult<()> {
        if self.expired() {
            Err(TvError::Timeout(format!("deadline exceeded in {what}")))
        } else {
            Ok(())
        }
    }
}

impl Default for Deadline {
    fn default() -> Self {
        Deadline::none()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn none_never_expires() {
        let d = Deadline::none();
        assert!(!d.expired());
        assert!(d.remaining().is_none());
        assert!(d.check("x").is_ok());
    }

    #[test]
    fn expired_now_fails_check() {
        let d = Deadline::expired_now();
        assert!(d.expired());
        assert_eq!(d.remaining(), Some(Duration::ZERO));
        assert!(matches!(
            d.check("segment search"),
            Err(TvError::Timeout(_))
        ));
    }

    #[test]
    fn future_deadline_passes_then_expires() {
        let d = Deadline::after(Duration::from_millis(20));
        assert!(!d.expired());
        std::thread::sleep(Duration::from_millis(30));
        assert!(d.expired());
    }
}
