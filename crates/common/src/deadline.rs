//! Request deadlines.
//!
//! Every serving-layer request carries a [`Deadline`]; long scatter-gather
//! operations (the per-segment search fan-out in `tv-embedding`, the worker
//! loop in `tv-cluster`) check it at segment-search boundaries so a slow
//! query can be abandoned mid-flight instead of holding an executor slot
//! until completion.

use crate::{TvError, TvResult};
use std::time::{Duration, Instant};

/// An optional absolute deadline. `Deadline::none()` never expires, so
/// existing call paths that predate the serving layer keep their behavior.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Deadline {
    at: Option<Instant>,
}

impl Deadline {
    /// No deadline: never expires.
    #[must_use]
    pub const fn none() -> Self {
        Deadline { at: None }
    }

    /// Deadline `timeout` from now.
    #[must_use]
    pub fn after(timeout: Duration) -> Self {
        Deadline {
            at: Some(Instant::now() + timeout),
        }
    }

    /// Deadline at an absolute instant.
    #[must_use]
    pub const fn at(instant: Instant) -> Self {
        Deadline { at: Some(instant) }
    }

    /// An already-expired deadline (tests and fail-fast paths).
    #[must_use]
    pub fn expired_now() -> Self {
        Deadline {
            at: Some(Instant::now()),
        }
    }

    /// Whether the deadline has passed.
    #[must_use]
    pub fn expired(&self) -> bool {
        self.at.is_some_and(|at| Instant::now() >= at)
    }

    /// Time remaining; `None` when unbounded, `Some(ZERO)` when expired.
    #[must_use]
    pub fn remaining(&self) -> Option<Duration> {
        self.at
            .map(|at| at.saturating_duration_since(Instant::now()))
    }

    /// A wait no longer than `cap` that also never overshoots the
    /// deadline: `min(cap, remaining)`, or `cap` when unbounded. The
    /// coordinator's retry/hedge waits are all sized through this so
    /// recovery attempts spend only budget the caller still has.
    #[must_use]
    pub fn bounded_wait(&self, cap: Duration) -> Duration {
        match self.remaining() {
            Some(r) => r.min(cap),
            None => cap,
        }
    }

    /// Error out when expired — the check placed at segment-search
    /// boundaries.
    pub fn check(&self, what: &str) -> TvResult<()> {
        if self.expired() {
            Err(TvError::Timeout(format!("deadline exceeded in {what}")))
        } else {
            Ok(())
        }
    }
}

impl Default for Deadline {
    fn default() -> Self {
        Deadline::none()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn none_never_expires() {
        let d = Deadline::none();
        assert!(!d.expired());
        assert!(d.remaining().is_none());
        assert!(d.check("x").is_ok());
    }

    #[test]
    fn expired_now_fails_check() {
        let d = Deadline::expired_now();
        assert!(d.expired());
        assert_eq!(d.remaining(), Some(Duration::ZERO));
        assert!(matches!(
            d.check("segment search"),
            Err(TvError::Timeout(_))
        ));
    }

    #[test]
    fn bounded_wait_respects_cap_and_budget() {
        let cap = Duration::from_millis(50);
        assert_eq!(Deadline::none().bounded_wait(cap), cap);
        assert_eq!(Deadline::expired_now().bounded_wait(cap), Duration::ZERO);
        let tight = Deadline::after(Duration::from_millis(5));
        assert!(tight.bounded_wait(cap) <= Duration::from_millis(5));
        let loose = Deadline::after(Duration::from_secs(60));
        assert_eq!(loose.bounded_wait(cap), cap);
    }

    #[test]
    fn future_deadline_passes_then_expires() {
        let d = Deadline::after(Duration::from_millis(20));
        assert!(!d.expired());
        std::thread::sleep(Duration::from_millis(30));
        assert!(d.expired());
    }
}
