//! Lock-free latency histogram for the serving layer's per-tenant metrics.
//!
//! Latencies are recorded into logarithmic buckets (powers of ~2 over
//! nanoseconds), giving bounded memory, wait-free recording from many
//! executor threads, and quantile estimates (p50/p95/p99) accurate to the
//! bucket width — the standard shape used by production metrics pipelines.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

/// Number of log2 buckets: covers 1ns .. ~584 years.
const BUCKETS: usize = 64;

/// A concurrent latency histogram with log2 bucketing.
#[derive(Debug)]
pub struct LatencyHistogram {
    buckets: [AtomicU64; BUCKETS],
    count: AtomicU64,
    sum_nanos: AtomicU64,
    max_nanos: AtomicU64,
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        LatencyHistogram {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum_nanos: AtomicU64::new(0),
            max_nanos: AtomicU64::new(0),
        }
    }
}

fn bucket_of(nanos: u64) -> usize {
    // log2, with 0 mapped to bucket 0.
    (64 - nanos.max(1).leading_zeros() as usize).saturating_sub(1)
}

/// Upper bound (inclusive) of a bucket in nanoseconds.
fn bucket_upper(idx: usize) -> u64 {
    if idx >= 63 {
        u64::MAX
    } else {
        (2u64 << idx) - 1
    }
}

impl LatencyHistogram {
    /// Empty histogram.
    #[must_use]
    pub fn new() -> Self {
        LatencyHistogram::default()
    }

    /// Record one observation.
    pub fn record(&self, latency: Duration) {
        let nanos = u64::try_from(latency.as_nanos()).unwrap_or(u64::MAX);
        self.buckets[bucket_of(nanos)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum_nanos.fetch_add(nanos, Ordering::Relaxed);
        self.max_nanos.fetch_max(nanos, Ordering::Relaxed);
    }

    /// Number of observations.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Mean latency (zero when empty).
    #[must_use]
    pub fn mean(&self) -> Duration {
        let n = self.count();
        if n == 0 {
            return Duration::ZERO;
        }
        Duration::from_nanos(self.sum_nanos.load(Ordering::Relaxed) / n)
    }

    /// Maximum recorded latency.
    #[must_use]
    pub fn max(&self) -> Duration {
        Duration::from_nanos(self.max_nanos.load(Ordering::Relaxed))
    }

    /// Quantile estimate (`q` in `[0, 1]`), accurate to the bucket upper
    /// bound; zero when empty. Monotone in `q`.
    #[must_use]
    pub fn quantile(&self, q: f64) -> Duration {
        let n = self.count();
        if n == 0 {
            return Duration::ZERO;
        }
        let rank = ((q.clamp(0.0, 1.0) * n as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (idx, b) in self.buckets.iter().enumerate() {
            seen += b.load(Ordering::Relaxed);
            if seen >= rank {
                // Clamp the estimate to the true max so p99 of a uniform
                // sample can't exceed the largest observation.
                let upper = bucket_upper(idx).min(self.max_nanos.load(Ordering::Relaxed));
                return Duration::from_nanos(upper);
            }
        }
        self.max()
    }

    /// Convenience: (p50, p95, p99).
    #[must_use]
    pub fn percentiles(&self) -> (Duration, Duration, Duration) {
        (
            self.quantile(0.50),
            self.quantile(0.95),
            self.quantile(0.99),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_is_zero() {
        let h = LatencyHistogram::new();
        assert_eq!(h.count(), 0);
        assert_eq!(h.quantile(0.99), Duration::ZERO);
        assert_eq!(h.mean(), Duration::ZERO);
    }

    #[test]
    fn quantiles_are_monotone_and_bounded() {
        let h = LatencyHistogram::new();
        for us in 1..=1000u64 {
            h.record(Duration::from_micros(us));
        }
        let (p50, p95, p99) = h.percentiles();
        assert!(p50 <= p95 && p95 <= p99);
        assert!(p99 <= h.max());
        // p50 of 1..=1000µs sits within a 2× bucket of 500µs.
        assert!(p50 >= Duration::from_micros(250) && p50 <= Duration::from_micros(1050));
    }

    #[test]
    fn concurrent_recording() {
        let h = std::sync::Arc::new(LatencyHistogram::new());
        let mut handles = Vec::new();
        for _ in 0..8 {
            let h = std::sync::Arc::clone(&h);
            handles.push(std::thread::spawn(move || {
                for i in 0..1000 {
                    h.record(Duration::from_nanos(i));
                }
            }));
        }
        for t in handles {
            t.join().unwrap();
        }
        assert_eq!(h.count(), 8000);
    }

    #[test]
    fn bucket_math() {
        assert_eq!(bucket_of(0), 0);
        assert_eq!(bucket_of(1), 0);
        assert_eq!(bucket_of(2), 1);
        assert_eq!(bucket_of(1023), 9);
        assert_eq!(bucket_of(1024), 10);
        assert!(bucket_upper(9) >= 1023);
    }
}
