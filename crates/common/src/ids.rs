//! Identifier types shared across the engine.
//!
//! TigerGraph partitions vertices into fixed-capacity *segments*; a vertex is
//! globally addressed by `(segment id, local offset)`. TigerVector keeps the
//! same addressing for embedding segments so that a vertex and its vectors
//! always share a partition (the paper's vertex-centric partitioning, §4.2).

use serde::{Deserialize, Serialize};

/// Number of vertices a segment can hold.
///
/// TigerGraph uses on the order of a million vertices per segment; we default
/// to a smaller power of two so that laptop-scale datasets still produce
/// enough segments to exercise the MPP scatter-gather paths. Callers that
/// need a different granularity parameterize [`crate::ids::SegmentLayout`].
pub const SEGMENT_CAPACITY: usize = 8192;

/// Monotonically increasing transaction id (MVCC timestamp).
///
/// Deltas and snapshots are tagged with the `Tid` of the transaction that
/// produced them; a reader at `Tid t` observes exactly the deltas with
/// `tid <= t` (§4.3).
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct Tid(pub u64);

impl Tid {
    /// The zero transaction id — nothing is visible at this point.
    pub const ZERO: Tid = Tid(0);
    /// Maximum tid; a reader at `Tid::MAX` sees every committed delta.
    pub const MAX: Tid = Tid(u64::MAX);

    /// Next transaction id.
    #[must_use]
    pub fn next(self) -> Tid {
        Tid(self.0 + 1)
    }
}

impl std::fmt::Display for Tid {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "tid:{}", self.0)
    }
}

/// Identifier of a vertex segment (and of the embedding segments aligned with
/// it).
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default,
)]
pub struct SegmentId(pub u32);

impl std::fmt::Display for SegmentId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "seg:{}", self.0)
    }
}

/// Offset of a vertex within its segment.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default,
)]
pub struct LocalId(pub u32);

/// Globally unique vertex id: `(segment, offset)` packed into a `u64`.
///
/// The packing means ids sort first by segment, which keeps segment-parallel
/// scans cache-friendly and makes the owning partition recoverable from the
/// id alone — the property the distributed coordinator relies on when routing
/// per-segment sub-queries (§5.1).
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default,
)]
pub struct VertexId(pub u64);

impl VertexId {
    /// Compose a vertex id from its segment and local offset.
    #[must_use]
    pub fn new(segment: SegmentId, local: LocalId) -> Self {
        VertexId((u64::from(segment.0) << 32) | u64::from(local.0))
    }

    /// The segment this vertex lives in.
    #[must_use]
    pub fn segment(self) -> SegmentId {
        SegmentId((self.0 >> 32) as u32)
    }

    /// The offset of this vertex within its segment.
    #[must_use]
    pub fn local(self) -> LocalId {
        LocalId((self.0 & 0xFFFF_FFFF) as u32)
    }
}

impl std::fmt::Display for VertexId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "v({},{})", self.segment().0, self.local().0)
    }
}

/// Alias kept for readability in index code, where an id is "the thing the
/// index returns" rather than specifically a vertex.
pub type GlobalId = VertexId;

/// Maps a dense external row number (0..n) to `(segment, local)` coordinates
/// and back, for a fixed per-segment capacity.
///
/// Loaders use this to assign ids round-robin-free: row `r` lives in segment
/// `r / capacity` at offset `r % capacity`, mirroring TigerGraph's sequential
/// segment fill during bulk ingestion.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct SegmentLayout {
    /// Vertices per segment.
    pub capacity: usize,
}

impl Default for SegmentLayout {
    fn default() -> Self {
        SegmentLayout {
            capacity: SEGMENT_CAPACITY,
        }
    }
}

impl SegmentLayout {
    /// A layout with the given per-segment capacity (must be non-zero).
    #[must_use]
    pub fn with_capacity(capacity: usize) -> Self {
        assert!(capacity > 0, "segment capacity must be non-zero");
        SegmentLayout { capacity }
    }

    /// The vertex id of dense row `row`.
    #[must_use]
    pub fn vertex_id(&self, row: usize) -> VertexId {
        let seg = SegmentId((row / self.capacity) as u32);
        let loc = LocalId((row % self.capacity) as u32);
        VertexId::new(seg, loc)
    }

    /// The dense row of a vertex id.
    #[must_use]
    pub fn row(&self, id: VertexId) -> usize {
        id.segment().0 as usize * self.capacity + id.local().0 as usize
    }

    /// Number of segments needed to hold `n` rows.
    #[must_use]
    pub fn segments_for(&self, n: usize) -> usize {
        n.div_ceil(self.capacity)
    }

    /// Number of rows that fall into segment `seg` when `n` total rows are
    /// laid out sequentially.
    #[must_use]
    pub fn rows_in_segment(&self, seg: SegmentId, n: usize) -> usize {
        let start = seg.0 as usize * self.capacity;
        if start >= n {
            0
        } else {
            (n - start).min(self.capacity)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vertex_id_roundtrip() {
        let id = VertexId::new(SegmentId(7), LocalId(42));
        assert_eq!(id.segment(), SegmentId(7));
        assert_eq!(id.local(), LocalId(42));
    }

    #[test]
    fn vertex_ids_sort_by_segment_first() {
        let a = VertexId::new(SegmentId(1), LocalId(u32::MAX));
        let b = VertexId::new(SegmentId(2), LocalId(0));
        assert!(a < b);
    }

    #[test]
    fn tid_next_is_monotone() {
        let t = Tid(5);
        assert!(t.next() > t);
        assert_eq!(t.next(), Tid(6));
    }

    #[test]
    fn layout_roundtrip() {
        let layout = SegmentLayout::with_capacity(100);
        for row in [0usize, 1, 99, 100, 101, 999, 123_456] {
            assert_eq!(layout.row(layout.vertex_id(row)), row);
        }
    }

    #[test]
    fn layout_segments_for() {
        let layout = SegmentLayout::with_capacity(100);
        assert_eq!(layout.segments_for(0), 0);
        assert_eq!(layout.segments_for(1), 1);
        assert_eq!(layout.segments_for(100), 1);
        assert_eq!(layout.segments_for(101), 2);
    }

    #[test]
    fn layout_rows_in_segment() {
        let layout = SegmentLayout::with_capacity(100);
        assert_eq!(layout.rows_in_segment(SegmentId(0), 250), 100);
        assert_eq!(layout.rows_in_segment(SegmentId(1), 250), 100);
        assert_eq!(layout.rows_in_segment(SegmentId(2), 250), 50);
        assert_eq!(layout.rows_in_segment(SegmentId(3), 250), 0);
    }

    #[test]
    #[should_panic(expected = "non-zero")]
    fn layout_zero_capacity_panics() {
        let _ = SegmentLayout::with_capacity(0);
    }

    #[test]
    fn display_formats() {
        assert_eq!(Tid(3).to_string(), "tid:3");
        assert_eq!(SegmentId(3).to_string(), "seg:3");
        assert_eq!(
            VertexId::new(SegmentId(1), LocalId(2)).to_string(),
            "v(1,2)"
        );
    }
}
