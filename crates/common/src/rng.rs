//! Deterministic pseudo-random number generation.
//!
//! Benchmarks and data generators need reproducible randomness so that a
//! re-run regenerates the same dataset, the same queries, and hence the same
//! ground truth. `SplitMix64` is tiny, fast, and statistically adequate for
//! workload synthesis and HNSW level sampling.

/// SplitMix64 PRNG (Steele, Lea & Flood 2014).
#[derive(Debug, Clone)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Seeded generator. Equal seeds yield identical streams.
    #[must_use]
    pub fn new(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform `f64` in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }

    /// Uniform `f32` in `[0, 1)`.
    pub fn next_f32(&mut self) -> f32 {
        self.next_f64() as f32
    }

    /// Uniform integer in `[0, bound)`. `bound` must be non-zero.
    pub fn next_below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "bound must be non-zero");
        // Multiply-shift bounded sampling (Lemire); bias is negligible for
        // workload-generation purposes.
        ((u128::from(self.next_u64()) * u128::from(bound)) >> 64) as u64
    }

    /// Standard normal sample via Box–Muller.
    pub fn next_gaussian(&mut self) -> f64 {
        // Avoid ln(0) by nudging u1 away from zero.
        let u1 = self.next_f64().max(1e-12);
        let u2 = self.next_f64();
        (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
    }

    /// Exponential sample with rate 1 (used for HNSW level assignment where
    /// `level = floor(-ln(U) * mL)`).
    pub fn next_exp(&mut self) -> f64 {
        -self.next_f64().max(1e-12).ln()
    }

    /// Fisher–Yates shuffle of a slice.
    pub fn shuffle<T>(&mut self, items: &mut [T]) {
        for i in (1..items.len()).rev() {
            let j = self.next_below(i as u64 + 1) as usize;
            items.swap(i, j);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_for_equal_seeds() {
        let mut a = SplitMix64::new(42);
        let mut b = SplitMix64::new(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = SplitMix64::new(1);
        let mut b = SplitMix64::new(2);
        assert_ne!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut r = SplitMix64::new(7);
        for _ in 0..1000 {
            let x = r.next_f64();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn below_respects_bound() {
        let mut r = SplitMix64::new(9);
        for _ in 0..1000 {
            assert!(r.next_below(10) < 10);
        }
        // bound 1 always yields 0
        assert_eq!(r.next_below(1), 0);
    }

    #[test]
    fn gaussian_moments_roughly_standard() {
        let mut r = SplitMix64::new(123);
        let n = 20_000;
        let samples: Vec<f64> = (0..n).map(|_| r.next_gaussian()).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.05, "mean {mean}");
        assert!((var - 1.0).abs() < 0.1, "var {var}");
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut r = SplitMix64::new(5);
        let mut v: Vec<u32> = (0..50).collect();
        r.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<u32>>());
    }

    #[test]
    fn exp_is_positive() {
        let mut r = SplitMix64::new(11);
        for _ in 0..1000 {
            assert!(r.next_exp() >= 0.0);
        }
    }
}
