//! Shared tuning defaults.
//!
//! `tv-embedding::ServiceConfig` and `tv-cluster::RuntimeConfig` both carry
//! a brute-force threshold (and the embedding service a default `ef`);
//! before this module each crate independently hard-coded the same numbers,
//! which is exactly how defaults drift apart. Both configs now build from
//! [`TuningDefaults`], the single source of truth. [`RetryPolicy`] plays the
//! same role for the coordinator's fault-recovery knobs.

use crate::kernels::KernelTier;
use std::time::Duration;

/// Engine-wide tuning knobs shared by the single-machine embedding service
/// and the cluster runtime.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TuningDefaults {
    /// Valid-point count below which a segment search scans instead of
    /// using its index (§5.1's brute-force threshold).
    pub brute_force_threshold: usize,
    /// Default `ef` (search beam width) when the caller does not specify.
    pub default_ef: usize,
}

impl Default for TuningDefaults {
    fn default() -> Self {
        TuningDefaults {
            brute_force_threshold: 64,
            default_ef: 64,
        }
    }
}

/// Coordinator-side recovery policy for distributed scatter-gather: how an
/// unresponsive worker is detected (`attempt_timeout`), how many replica
/// re-route waves follow (`max_retries`, spaced by a doubling `backoff`),
/// and whether the slowest outstanding server gets a duplicate (hedged)
/// request before being declared failed (`hedge_after`).
///
/// Every wait derived from this policy is additionally bounded by the
/// request's [`crate::Deadline`] (via [`crate::Deadline::bounded_wait`]), so
/// retries never spend budget the caller no longer has.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Replica re-route waves after the initial scatter (0 = no retry).
    pub max_retries: usize,
    /// Per-wave gather wait before an unresponsive server is declared
    /// failed and its segments are re-routed. Generous by default so a
    /// merely slow worker is never misdeclared in the common case.
    pub attempt_timeout: Duration,
    /// Base sleep between waves; doubles each wave, bounded by the deadline.
    pub backoff: Duration,
    /// If set, once this much of a wave has elapsed with servers still
    /// outstanding, duplicate the slowest server's request to an untried
    /// replica and let the first reply win (`None` = never hedge).
    pub hedge_after: Option<Duration>,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            max_retries: 2,
            attempt_timeout: Duration::from_secs(5),
            backoff: Duration::from_millis(10),
            hedge_after: None,
        }
    }
}

/// Which distance-kernel tier the process dispatches to (see
/// [`crate::kernels`]). `Auto` probes the CPU at first use and picks the
/// widest supported tier; `Force` pins one tier (useful for reproducing
/// scalar-reference results or testing the fallback on wide hardware). A
/// forced tier the CPU cannot run falls back to `Scalar`, never crashes.
///
/// Resolution order at dispatch time: the `TV_KERNELS` environment variable
/// (`scalar|sse|avx2|neon|auto`), then [`crate::kernels::set_policy`], then
/// `Auto`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum KernelPolicy {
    /// Pick the best tier the CPU supports (the default).
    #[default]
    Auto,
    /// Pin one tier regardless of what else the CPU could run.
    Force(KernelTier),
}

impl KernelPolicy {
    /// Parse a policy string: `auto` or any [`KernelTier::parse`] name.
    #[must_use]
    pub fn parse(s: &str) -> Option<Self> {
        if s.eq_ignore_ascii_case("auto") {
            Some(KernelPolicy::Auto)
        } else {
            KernelTier::parse(s).map(KernelPolicy::Force)
        }
    }

    /// The policy named by `TV_KERNELS`, if set and well-formed.
    #[must_use]
    pub fn from_env() -> Option<Self> {
        std::env::var("TV_KERNELS")
            .ok()
            .and_then(|v| Self::parse(&v))
    }
}

impl std::fmt::Display for KernelPolicy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            KernelPolicy::Auto => f.write_str("auto"),
            KernelPolicy::Force(t) => write!(f, "force:{t}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_the_documented_values() {
        let d = TuningDefaults::default();
        assert_eq!(d.brute_force_threshold, 64);
        assert_eq!(d.default_ef, 64);
    }

    #[test]
    fn kernel_policy_parses() {
        assert_eq!(KernelPolicy::parse("auto"), Some(KernelPolicy::Auto));
        assert_eq!(
            KernelPolicy::parse("scalar"),
            Some(KernelPolicy::Force(KernelTier::Scalar))
        );
        assert_eq!(
            KernelPolicy::parse("avx2"),
            Some(KernelPolicy::Force(KernelTier::Avx2Fma))
        );
        assert_eq!(KernelPolicy::parse("bogus"), None);
        assert_eq!(KernelPolicy::default(), KernelPolicy::Auto);
    }

    #[test]
    fn retry_defaults_allow_recovery() {
        let r = RetryPolicy::default();
        assert!(r.max_retries >= 1, "default policy must actually retry");
        assert!(r.attempt_timeout > r.backoff);
        assert!(r.hedge_after.is_none(), "hedging is opt-in");
    }
}
