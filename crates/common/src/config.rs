//! Shared tuning defaults.
//!
//! `tv-embedding::ServiceConfig` and `tv-cluster::RuntimeConfig` both carry
//! a brute-force threshold (and the embedding service a default `ef`);
//! before this module each crate independently hard-coded the same numbers,
//! which is exactly how defaults drift apart. Both configs now build from
//! [`TuningDefaults`], the single source of truth.

/// Engine-wide tuning knobs shared by the single-machine embedding service
/// and the cluster runtime.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TuningDefaults {
    /// Valid-point count below which a segment search scans instead of
    /// using its index (§5.1's brute-force threshold).
    pub brute_force_threshold: usize,
    /// Default `ef` (search beam width) when the caller does not specify.
    pub default_ef: usize,
}

impl Default for TuningDefaults {
    fn default() -> Self {
        TuningDefaults {
            brute_force_threshold: 64,
            default_ef: 64,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_the_documented_values() {
        let d = TuningDefaults::default();
        assert_eq!(d.brute_force_threshold, 64);
        assert_eq!(d.default_ef, 64);
    }
}
