//! Shared tuning defaults.
//!
//! `tv-embedding::ServiceConfig` and `tv-cluster::RuntimeConfig` both carry
//! a brute-force threshold (and the embedding service a default `ef`);
//! before this module each crate independently hard-coded the same numbers,
//! which is exactly how defaults drift apart. Both configs now build from
//! [`TuningDefaults`], the single source of truth. [`RetryPolicy`] plays the
//! same role for the coordinator's fault-recovery knobs.

use crate::kernels::KernelTier;
use serde::{Deserialize, Serialize};
use std::time::Duration;

/// Engine-wide tuning knobs shared by the single-machine embedding service
/// and the cluster runtime.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TuningDefaults {
    /// Per-query filtered-search planner knobs (replaces the old scalar
    /// `brute_force_threshold`; see [`PlannerConfig`]).
    pub planner: PlannerConfig,
    /// Default `ef` (search beam width) when the caller does not specify.
    pub default_ef: usize,
    /// Worker threads for intra-segment index builds (`index_merge`,
    /// `rebuild`, bulk load). `1` (the default) keeps builds sequential and
    /// bit-deterministic — required wherever byte-identical recovery or
    /// snapshot comparisons are asserted; `> 1` enables the hnswlib-style
    /// locked parallel build, which preserves the deterministic per-key
    /// level assignment but lets link sets vary with interleaving (recall
    /// parity is the contract, not byte identity).
    pub build_threads: usize,
    /// Search-time adjacency layout compiled at `index_merge`/snapshot-load
    /// (see [`GraphLayout`]); overridable per process via `TV_LAYOUT`.
    pub layout: GraphLayout,
}

impl Default for TuningDefaults {
    fn default() -> Self {
        TuningDefaults {
            planner: PlannerConfig::default(),
            default_ef: 64,
            build_threads: 1,
            layout: GraphLayout::default(),
        }
    }
}

/// Per-query cost-based routing knobs for filtered vector search.
///
/// TigerVector (§5.1) routes filtered search by a single static valid-count
/// threshold; NaviX shows the winning strategy actually depends on predicate
/// selectivity, so a static rule hits a worst-case cliff on selective
/// filters. The planner estimates the true valid-live cardinality per query
/// (filter bitmap ∩ live occupancy) and chooses among brute force over the
/// filtered set, in-traversal bitmap filtering, and post-filtering an
/// unfiltered beam with adaptive `ef` enlargement — with a starvation
/// fallback that escalates (`ef` doubling, then brute force) whenever a
/// filtered search surfaces fewer than `k` results while valid points
/// remain.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PlannerConfig {
    /// `false` reproduces the legacy static-threshold routing (brute force
    /// iff the valid count is below [`Self::brute_force_threshold`], no
    /// starvation escalation). Kept for A/B benchmarking.
    pub enabled: bool,
    /// Valid-point count below which brute force always wins — scanning a
    /// handful of rows is cheaper than any graph entry descent (§5.1).
    pub brute_force_threshold: usize,
    /// Estimated distance computations per *admitted* beam slot of a graph
    /// traversal, relative to one brute-force candidate scan. The graph
    /// cost model is `graph_cost_factor × ef / selectivity`: with few valid
    /// points the beam must wade through that many invalid candidates to
    /// admit `ef` survivors.
    pub graph_cost_factor: f64,
    /// Selectivity (valid-live / live) at or above which the planner skips
    /// per-candidate bitmap checks during traversal and instead post-filters
    /// an unfiltered beam widened to `ef / selectivity`.
    pub post_filter_min_selectivity: f64,
    /// Hard cap on escalated `ef` before the starvation fallback gives up on
    /// the graph and scans the filtered set exactly.
    pub max_ef: usize,
}

impl Default for PlannerConfig {
    fn default() -> Self {
        PlannerConfig {
            enabled: true,
            brute_force_threshold: 64,
            graph_cost_factor: 8.0,
            post_filter_min_selectivity: 0.5,
            max_ef: 4096,
        }
    }
}

impl PlannerConfig {
    /// Legacy routing: static threshold comparison, no cost model, no
    /// starvation escalation. `static_threshold(0)` never brute-forces.
    #[must_use]
    pub fn static_threshold(threshold: usize) -> Self {
        PlannerConfig {
            enabled: false,
            brute_force_threshold: threshold,
            ..PlannerConfig::default()
        }
    }

    /// Override the always-brute valid-count floor.
    #[must_use]
    pub fn with_brute_threshold(mut self, threshold: usize) -> Self {
        self.brute_force_threshold = threshold;
        self
    }

    /// Override the graph cost factor.
    #[must_use]
    pub fn with_graph_cost_factor(mut self, f: f64) -> Self {
        self.graph_cost_factor = f;
        self
    }

    /// Override the post-filter selectivity floor.
    #[must_use]
    pub fn with_post_filter_min_selectivity(mut self, s: f64) -> Self {
        self.post_filter_min_selectivity = s;
        self
    }

    /// Override the escalation `ef` cap.
    #[must_use]
    pub fn with_max_ef(mut self, max_ef: usize) -> Self {
        self.max_ef = max_ef;
        self
    }
}

/// Coordinator-side recovery policy for distributed scatter-gather: how an
/// unresponsive worker is detected (`attempt_timeout`), how many replica
/// re-route waves follow (`max_retries`, spaced by a doubling `backoff`),
/// and whether the slowest outstanding server gets a duplicate (hedged)
/// request before being declared failed (`hedge_after`).
///
/// Every wait derived from this policy is additionally bounded by the
/// request's [`crate::Deadline`] (via [`crate::Deadline::bounded_wait`]), so
/// retries never spend budget the caller no longer has.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Replica re-route waves after the initial scatter (0 = no retry).
    pub max_retries: usize,
    /// Per-wave gather wait before an unresponsive server is declared
    /// failed and its segments are re-routed. Generous by default so a
    /// merely slow worker is never misdeclared in the common case.
    pub attempt_timeout: Duration,
    /// Base sleep between waves; doubles each wave, bounded by the deadline.
    pub backoff: Duration,
    /// If set, once this much of a wave has elapsed with servers still
    /// outstanding, duplicate the slowest server's request to an untried
    /// replica and let the first reply win (`None` = never hedge).
    pub hedge_after: Option<Duration>,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            max_retries: 2,
            attempt_timeout: Duration::from_secs(5),
            backoff: Duration::from_millis(10),
            hedge_after: None,
        }
    }
}

/// Knobs for coordinator-driven live segment migration (snapshot-ship +
/// delta-tail catch-up + atomic placement flip). The defaults bound how
/// long the flip critical section can get: catch-up keeps replaying the
/// source's delta tail in the background until the remaining tail is at
/// most `flip_threshold` records, then the flip drains that residue while
/// appends to the segment are briefly gated.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MigrationConfig {
    /// Maximum delta-tail length carried into the flip critical section.
    /// Catch-up loops until the tail is at or below this many records (or
    /// `max_catchup_rounds` is exhausted); whatever remains is replayed
    /// under the append gate during the flip.
    pub flip_threshold: usize,
    /// Maximum delta records shipped per catch-up round. Smaller batches
    /// yield the append path more often; larger batches converge faster.
    pub catchup_batch: usize,
    /// Hard cap on catch-up rounds before the migration flips anyway —
    /// bounds the race against a writer that appends faster than the
    /// coordinator ships (the flip gate then drains the rest exactly once).
    pub max_catchup_rounds: usize,
}

impl Default for MigrationConfig {
    fn default() -> Self {
        MigrationConfig {
            flip_threshold: 32,
            catchup_batch: 512,
            max_catchup_rounds: 64,
        }
    }
}

/// How an index stores the vectors it scores during traversal (the
/// quantized storage tier). `F32` is the uncompressed seed behavior; the
/// compressed tiers trade per-candidate precision for memory, recovering
/// recall through the exact-rerank stage configured in [`QuantSpec`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub enum StorageTier {
    /// Full-precision `f32` vectors (4 bytes/dim) — no codec, no rerank.
    #[default]
    F32,
    /// Per-dimension min/max scalar quantization to `u8` (1 byte/dim).
    /// Asymmetric scoring against f32 queries equals the exact distance to
    /// the reconstruction, so SQ8 traversal needs no rerank to hit its own
    /// fidelity ceiling.
    Sq8,
    /// Product quantization: `m` sub-spaces × ≤256 k-means centroids each
    /// (`m` bytes/vector), scored via per-query ADC lookup tables.
    Pq {
        /// Number of sub-quantizers (code bytes per vector).
        m: usize,
    },
}

impl StorageTier {
    /// Stable display name (`f32`, `sq8`, `pq8`, …); also accepted by
    /// [`StorageTier::parse`]. Used for bench provenance stamping.
    #[must_use]
    pub fn name(self) -> String {
        match self {
            StorageTier::F32 => "f32".into(),
            StorageTier::Sq8 => "sq8".into(),
            StorageTier::Pq { m } => format!("pq{m}"),
        }
    }

    /// Parse a tier name: `f32`, `sq8`, or `pq<m>` (e.g. `pq16`).
    #[must_use]
    pub fn parse(s: &str) -> Option<Self> {
        let s = s.to_ascii_lowercase();
        match s.as_str() {
            "f32" => Some(StorageTier::F32),
            "sq8" => Some(StorageTier::Sq8),
            _ => s
                .strip_prefix("pq")
                .and_then(|m| m.parse::<usize>().ok())
                .filter(|&m| m > 0)
                .map(|m| StorageTier::Pq { m }),
        }
    }
}

impl std::fmt::Display for StorageTier {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.name())
    }
}

/// Quantized-storage configuration for one vector index or embedding
/// attribute: which codec compresses the stored vectors, whether the f32
/// originals are retained beside the codes, and how wide the exact-rerank
/// stage re-scores.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct QuantSpec {
    /// Storage representation the traversal scores against.
    pub tier: StorageTier,
    /// Keep the f32 arena beside the codes. `true` costs the full f32
    /// footprint but makes rerank exact; `false` drops the arena (the
    /// memory win) and reranks from the best remaining representation —
    /// SQ8 codes for a PQ tier, nothing extra for SQ8 itself (asymmetric
    /// SQ8 scoring is already exact w.r.t. the reconstruction).
    pub keep_f32: bool,
    /// The rerank stage re-scores the top `rerank_factor × k` traversal
    /// candidates with the most precise representation available before
    /// returning `k`. `0` or `1` disables reranking beyond the beam order.
    pub rerank_factor: usize,
}

impl Default for QuantSpec {
    fn default() -> Self {
        QuantSpec {
            tier: StorageTier::F32,
            keep_f32: true,
            rerank_factor: 4,
        }
    }
}

impl QuantSpec {
    /// The uncompressed default (tier `F32`; rerank is a no-op).
    #[must_use]
    pub fn f32() -> Self {
        QuantSpec::default()
    }

    /// SQ8 codes-only: drop the f32 arena after encoding. The standard
    /// memory-saving configuration (≈0.26× the f32 bytes at dim 128).
    #[must_use]
    pub fn sq8() -> Self {
        QuantSpec {
            tier: StorageTier::Sq8,
            keep_f32: false,
            rerank_factor: 4,
        }
    }

    /// PQ with `m` sub-quantizers, codes + an SQ8 rerank store (no f32).
    #[must_use]
    pub fn pq(m: usize) -> Self {
        QuantSpec {
            tier: StorageTier::Pq { m },
            keep_f32: false,
            rerank_factor: 4,
        }
    }

    /// Override `keep_f32`.
    #[must_use]
    pub fn with_keep_f32(mut self, keep: bool) -> Self {
        self.keep_f32 = keep;
        self
    }

    /// Override `rerank_factor`.
    #[must_use]
    pub fn with_rerank_factor(mut self, rf: usize) -> Self {
        self.rerank_factor = rf;
        self
    }

    /// Whether this spec actually compresses anything.
    #[must_use]
    pub fn is_quantized(&self) -> bool {
        self.tier != StorageTier::F32
    }
}

/// How the HNSW adjacency is laid out for search (the `layout` execution
/// knob). `Pointer` is the mutable `Vec<Vec<Vec<u32>>>` forest the index is
/// built in; the packed layouts compile a frozen CSR form (contiguous
/// neighbor slabs + BFS locality reordering) at `index_merge`/snapshot-load
/// time, keeping the pointer form for build/update paths. `PackedPrefetch`
/// additionally issues software prefetches for upcoming candidates' vector
/// and neighbor rows inside the search loops (no-op on the scalar kernel
/// tier). Results are bit-identical across layouts modulo the slot
/// permutation — the layout is purely an execution choice.
///
/// Resolution order when a segment compiles an index: the `TV_LAYOUT`
/// environment variable (`pointer|packed|packed+prefetch`), then the
/// configured [`TuningDefaults::layout`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub enum GraphLayout {
    /// Mutable per-node `Vec` forest; no compilation step.
    Pointer,
    /// Frozen CSR adjacency + BFS locality reordering, no prefetch.
    Packed,
    /// CSR + reordering + software prefetch in the search loops (default).
    #[default]
    PackedPrefetch,
}

impl GraphLayout {
    /// Stable display name (`pointer`, `packed`, `packed+prefetch`); also
    /// accepted by [`GraphLayout::parse`]. Used for bench provenance
    /// stamping.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            GraphLayout::Pointer => "pointer",
            GraphLayout::Packed => "packed",
            GraphLayout::PackedPrefetch => "packed+prefetch",
        }
    }

    /// Parse a layout name: `pointer`, `packed`, or `packed+prefetch`.
    #[must_use]
    pub fn parse(s: &str) -> Option<Self> {
        match s.to_ascii_lowercase().as_str() {
            "pointer" => Some(GraphLayout::Pointer),
            "packed" => Some(GraphLayout::Packed),
            "packed+prefetch" | "packed_prefetch" | "prefetch" => Some(GraphLayout::PackedPrefetch),
            _ => None,
        }
    }

    /// The layout named by `TV_LAYOUT`, if set and well-formed.
    #[must_use]
    pub fn from_env() -> Option<Self> {
        std::env::var("TV_LAYOUT")
            .ok()
            .and_then(|v| Self::parse(&v))
    }

    /// Whether a compiled (CSR) form should be built at all.
    #[must_use]
    pub fn is_packed(self) -> bool {
        self != GraphLayout::Pointer
    }

    /// Whether the compiled form should prefetch during search.
    #[must_use]
    pub fn prefetch_enabled(self) -> bool {
        self == GraphLayout::PackedPrefetch
    }
}

impl std::fmt::Display for GraphLayout {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Which distance-kernel tier the process dispatches to (see
/// [`crate::kernels`]). `Auto` probes the CPU at first use and picks the
/// widest supported tier; `Force` pins one tier (useful for reproducing
/// scalar-reference results or testing the fallback on wide hardware). A
/// forced tier the CPU cannot run falls back to `Scalar`, never crashes.
///
/// Resolution order at dispatch time: the `TV_KERNELS` environment variable
/// (`scalar|sse|avx2|neon|auto`), then [`crate::kernels::set_policy`], then
/// `Auto`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum KernelPolicy {
    /// Pick the best tier the CPU supports (the default).
    #[default]
    Auto,
    /// Pin one tier regardless of what else the CPU could run.
    Force(KernelTier),
}

impl KernelPolicy {
    /// Parse a policy string: `auto` or any [`KernelTier::parse`] name.
    #[must_use]
    pub fn parse(s: &str) -> Option<Self> {
        if s.eq_ignore_ascii_case("auto") {
            Some(KernelPolicy::Auto)
        } else {
            KernelTier::parse(s).map(KernelPolicy::Force)
        }
    }

    /// The policy named by `TV_KERNELS`, if set and well-formed.
    #[must_use]
    pub fn from_env() -> Option<Self> {
        std::env::var("TV_KERNELS")
            .ok()
            .and_then(|v| Self::parse(&v))
    }
}

impl std::fmt::Display for KernelPolicy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            KernelPolicy::Auto => f.write_str("auto"),
            KernelPolicy::Force(t) => write!(f, "force:{t}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_the_documented_values() {
        let d = TuningDefaults::default();
        assert!(d.planner.enabled);
        assert_eq!(d.planner.brute_force_threshold, 64);
        assert_eq!(d.default_ef, 64);
    }

    #[test]
    fn planner_config_builders() {
        let legacy = PlannerConfig::static_threshold(7);
        assert!(!legacy.enabled);
        assert_eq!(legacy.brute_force_threshold, 7);
        let p = PlannerConfig::default()
            .with_brute_threshold(10)
            .with_graph_cost_factor(2.0)
            .with_post_filter_min_selectivity(0.9)
            .with_max_ef(256);
        assert!(p.enabled);
        assert_eq!(p.brute_force_threshold, 10);
        assert_eq!(p.graph_cost_factor, 2.0);
        assert_eq!(p.post_filter_min_selectivity, 0.9);
        assert_eq!(p.max_ef, 256);
    }

    #[test]
    fn kernel_policy_parses() {
        assert_eq!(KernelPolicy::parse("auto"), Some(KernelPolicy::Auto));
        assert_eq!(
            KernelPolicy::parse("scalar"),
            Some(KernelPolicy::Force(KernelTier::Scalar))
        );
        assert_eq!(
            KernelPolicy::parse("avx2"),
            Some(KernelPolicy::Force(KernelTier::Avx2Fma))
        );
        assert_eq!(KernelPolicy::parse("bogus"), None);
        assert_eq!(KernelPolicy::default(), KernelPolicy::Auto);
    }

    #[test]
    fn graph_layout_names_roundtrip() {
        for l in [
            GraphLayout::Pointer,
            GraphLayout::Packed,
            GraphLayout::PackedPrefetch,
        ] {
            assert_eq!(GraphLayout::parse(l.name()), Some(l));
        }
        assert_eq!(
            GraphLayout::parse("PACKED+PREFETCH"),
            Some(GraphLayout::PackedPrefetch)
        );
        assert_eq!(GraphLayout::parse("csr"), None);
        assert_eq!(GraphLayout::default(), GraphLayout::PackedPrefetch);
        assert!(GraphLayout::Packed.is_packed());
        assert!(!GraphLayout::Pointer.is_packed());
        assert!(GraphLayout::PackedPrefetch.prefetch_enabled());
        assert!(!GraphLayout::Packed.prefetch_enabled());
        assert_eq!(
            TuningDefaults::default().layout,
            GraphLayout::PackedPrefetch
        );
    }

    #[test]
    fn storage_tier_names_roundtrip() {
        for t in [
            StorageTier::F32,
            StorageTier::Sq8,
            StorageTier::Pq { m: 8 },
            StorageTier::Pq { m: 16 },
        ] {
            assert_eq!(StorageTier::parse(&t.name()), Some(t));
        }
        assert_eq!(StorageTier::parse("PQ32"), Some(StorageTier::Pq { m: 32 }));
        assert_eq!(StorageTier::parse("pq0"), None);
        assert_eq!(StorageTier::parse("pqx"), None);
        assert_eq!(StorageTier::parse("bf16"), None);
        assert_eq!(StorageTier::default(), StorageTier::F32);
    }

    #[test]
    fn quant_spec_constructors() {
        assert!(!QuantSpec::f32().is_quantized());
        let s = QuantSpec::sq8();
        assert!(s.is_quantized() && !s.keep_f32 && s.rerank_factor == 4);
        let p = QuantSpec::pq(16).with_keep_f32(true).with_rerank_factor(8);
        assert_eq!(p.tier, StorageTier::Pq { m: 16 });
        assert!(p.keep_f32);
        assert_eq!(p.rerank_factor, 8);
    }

    #[test]
    fn migration_defaults_bound_the_flip() {
        let m = MigrationConfig::default();
        assert!(m.flip_threshold < m.catchup_batch);
        assert!(m.max_catchup_rounds >= 1);
    }

    #[test]
    fn retry_defaults_allow_recovery() {
        let r = RetryPolicy::default();
        assert!(r.max_retries >= 1, "default policy must actually retry");
        assert!(r.attempt_timeout > r.backoff);
        assert!(r.hedge_after.is_none(), "hedging is opt-in");
    }
}
