//! # tv-common
//!
//! Shared foundation types for the TigerVector reproduction: identifiers,
//! distance metrics, validity bitmaps, bounded top-k heaps, errors, and a
//! deterministic RNG.
//!
//! Everything in this crate is dependency-light and usable from every layer
//! of the system — the storage engine, the HNSW index, the embedding service,
//! the query engine, and the cluster simulator all speak these types.

pub mod bitmap;
pub mod config;
pub mod crash;
pub mod deadline;
pub mod durafile;
pub mod error;
pub mod histogram;
pub mod ids;
pub mod kernels;
pub mod metric;
pub mod pool;
pub mod rng;
pub mod topk;

pub use bitmap::Bitmap;
pub use config::{
    GraphLayout, KernelPolicy, MigrationConfig, PlannerConfig, QuantSpec, RetryPolicy, StorageTier,
    TuningDefaults,
};
pub use crash::{crash_hook, CrashPlan, CrashPoint};
pub use deadline::Deadline;
pub use durafile::crc32;
pub use error::{TvError, TvResult};
pub use histogram::LatencyHistogram;
pub use ids::{GlobalId, LocalId, SegmentId, Tid, VertexId, SEGMENT_CAPACITY};
pub use kernels::{KernelTier, Kernels, PreparedQuery};
pub use metric::{distance, DistanceMetric};
pub use pool::WorkerPool;
pub use rng::SplitMix64;
pub use topk::{merge_topk, Neighbor, NeighborHeap};
