//! Bounded top-k structures for nearest-neighbor search.
//!
//! Every layer of TigerVector ends in a top-k merge: the HNSW search keeps a
//! bounded candidate set, each embedding segment returns its local top-k, and
//! the coordinator merges per-segment (and per-server) results into the
//! global answer (§5.1, Fig. 5). [`NeighborHeap`] is that primitive: a
//! max-heap of at most `k` `(distance, id)` pairs that keeps the k smallest
//! distances seen.

use crate::ids::VertexId;
use serde::{Deserialize, Serialize};
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// A search result: a vertex and its distance to the query.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct Neighbor {
    /// Distance to the query (smaller = more similar, for every metric).
    pub dist: f32,
    /// Global id of the matched vertex.
    pub id: VertexId,
}

impl Neighbor {
    /// Convenience constructor.
    #[must_use]
    pub fn new(id: VertexId, dist: f32) -> Self {
        Neighbor { dist, id }
    }
}

impl PartialEq for Neighbor {
    fn eq(&self, other: &Self) -> bool {
        self.cmp(other) == Ordering::Equal
    }
}
impl Eq for Neighbor {}

impl PartialOrd for Neighbor {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// Total order: by distance, ties broken by id so results are deterministic.
/// NaN distances sort last (treated as "infinitely far").
impl Ord for Neighbor {
    fn cmp(&self, other: &Self) -> Ordering {
        match (self.dist.is_nan(), other.dist.is_nan()) {
            (true, true) => self.id.cmp(&other.id),
            (true, false) => Ordering::Greater,
            (false, true) => Ordering::Less,
            (false, false) => self
                .dist
                .partial_cmp(&other.dist)
                .unwrap_or(Ordering::Equal)
                .then_with(|| self.id.cmp(&other.id)),
        }
    }
}

/// Bounded max-heap keeping the `k` nearest neighbors seen so far.
#[derive(Debug, Clone)]
pub struct NeighborHeap {
    k: usize,
    heap: BinaryHeap<Neighbor>,
}

impl NeighborHeap {
    /// A heap that retains at most `k` nearest neighbors. `k == 0` is allowed
    /// and retains nothing.
    #[must_use]
    pub fn new(k: usize) -> Self {
        NeighborHeap {
            k,
            heap: BinaryHeap::with_capacity(k + 1),
        }
    }

    /// Capacity `k` the heap was created with.
    #[must_use]
    pub fn k(&self) -> usize {
        self.k
    }

    /// Number of neighbors currently held.
    #[must_use]
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// True if no neighbors are held.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Offer a candidate; returns true if it entered the top-k.
    pub fn push(&mut self, n: Neighbor) -> bool {
        if self.k == 0 {
            return false;
        }
        if self.heap.len() < self.k {
            self.heap.push(n);
            true
        } else if n < *self.heap.peek().expect("non-empty at capacity") {
            self.heap.pop();
            self.heap.push(n);
            true
        } else {
            false
        }
    }

    /// The current k-th (worst retained) distance, or `f32::INFINITY` while
    /// the heap is not yet full. HNSW uses this as its expansion bound.
    #[must_use]
    pub fn bound(&self) -> f32 {
        if self.heap.len() < self.k {
            f32::INFINITY
        } else {
            self.heap.peek().map_or(f32::INFINITY, |n| n.dist)
        }
    }

    /// Merge another heap's contents into this one.
    pub fn merge(&mut self, other: &NeighborHeap) {
        for n in &other.heap {
            self.push(*n);
        }
    }

    /// Consume the heap, returning neighbors sorted nearest-first.
    #[must_use]
    pub fn into_sorted(self) -> Vec<Neighbor> {
        let mut v = self.heap.into_vec();
        v.sort_unstable();
        v
    }
}

/// Merge many per-segment top-k lists (each already nearest-first or not)
/// into a single global top-k, nearest-first. This is the coordinator's
/// final merge step in distributed query processing (Fig. 5).
#[must_use]
pub fn merge_topk(lists: impl IntoIterator<Item = Vec<Neighbor>>, k: usize) -> Vec<Neighbor> {
    let mut heap = NeighborHeap::new(k);
    for list in lists {
        for n in list {
            heap.push(n);
        }
    }
    heap.into_sorted()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::{LocalId, SegmentId};

    fn v(n: u64) -> VertexId {
        VertexId(n)
    }

    #[test]
    fn keeps_k_smallest() {
        let mut h = NeighborHeap::new(3);
        for (i, d) in [5.0, 1.0, 4.0, 2.0, 3.0].iter().enumerate() {
            h.push(Neighbor::new(v(i as u64), *d));
        }
        let got: Vec<f32> = h.into_sorted().iter().map(|n| n.dist).collect();
        assert_eq!(got, vec![1.0, 2.0, 3.0]);
    }

    #[test]
    fn sorted_output_nearest_first_with_id_ties() {
        let mut h = NeighborHeap::new(4);
        h.push(Neighbor::new(v(2), 1.0));
        h.push(Neighbor::new(v(1), 1.0));
        h.push(Neighbor::new(v(3), 0.5));
        let got = h.into_sorted();
        assert_eq!(got[0].id, v(3));
        assert_eq!(got[1].id, v(1)); // tie broken by smaller id
        assert_eq!(got[2].id, v(2));
    }

    #[test]
    fn bound_is_infinite_until_full() {
        let mut h = NeighborHeap::new(2);
        assert_eq!(h.bound(), f32::INFINITY);
        h.push(Neighbor::new(v(0), 1.0));
        assert_eq!(h.bound(), f32::INFINITY);
        h.push(Neighbor::new(v(1), 2.0));
        assert_eq!(h.bound(), 2.0);
        h.push(Neighbor::new(v(2), 0.5));
        assert_eq!(h.bound(), 1.0);
    }

    #[test]
    fn zero_k_accepts_nothing() {
        let mut h = NeighborHeap::new(0);
        assert!(!h.push(Neighbor::new(v(0), 1.0)));
        assert!(h.is_empty());
        assert!(h.into_sorted().is_empty());
    }

    #[test]
    fn push_reports_entry() {
        let mut h = NeighborHeap::new(1);
        assert!(h.push(Neighbor::new(v(0), 2.0)));
        assert!(h.push(Neighbor::new(v(1), 1.0)));
        assert!(!h.push(Neighbor::new(v(2), 3.0)));
    }

    #[test]
    fn nan_sorts_last() {
        let mut h = NeighborHeap::new(2);
        h.push(Neighbor::new(v(0), f32::NAN));
        h.push(Neighbor::new(v(1), 1.0));
        h.push(Neighbor::new(v(2), 2.0));
        let got = h.into_sorted();
        assert_eq!(got.len(), 2);
        assert!(got.iter().all(|n| !n.dist.is_nan()));
    }

    #[test]
    fn merge_topk_global() {
        let s0 = vec![Neighbor::new(v(0), 3.0), Neighbor::new(v(1), 1.0)];
        let s1 = vec![Neighbor::new(v(2), 2.0), Neighbor::new(v(3), 4.0)];
        let got = merge_topk([s0, s1], 3);
        let ids: Vec<VertexId> = got.iter().map(|n| n.id).collect();
        assert_eq!(ids, vec![v(1), v(2), v(0)]);
    }

    #[test]
    fn merge_heaps() {
        let mut a = NeighborHeap::new(2);
        a.push(Neighbor::new(v(0), 5.0));
        let mut b = NeighborHeap::new(2);
        b.push(Neighbor::new(v(1), 1.0));
        b.push(Neighbor::new(v(2), 2.0));
        a.merge(&b);
        let got = a.into_sorted();
        assert_eq!(got.len(), 2);
        assert_eq!(got[0].id, v(1));
        assert_eq!(got[1].id, v(2));
    }

    #[test]
    fn neighbor_uses_vertex_id_ordering() {
        let a = Neighbor::new(VertexId::new(SegmentId(0), LocalId(5)), 1.0);
        let b = Neighbor::new(VertexId::new(SegmentId(1), LocalId(0)), 1.0);
        assert!(a < b);
    }
}
