//! Validity bitmaps.
//!
//! TigerVector's pre-filter design (§5.2) evaluates graph predicates first
//! and hands the vector index a bitmap of qualified ids; the index consults
//! the bitmap for every candidate and only returns valid points. The same
//! structure marks deleted / unauthorized vectors during pure vector search
//! (§5.1), where the engine wraps the global vertex-status structure instead
//! of materializing a fresh bitmap.

use serde::{Deserialize, Serialize};

/// A fixed-length bitmap over local ids `0..len`.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Bitmap {
    words: Vec<u64>,
    len: usize,
}

impl Bitmap {
    /// All-zeros bitmap of length `len`.
    #[must_use]
    pub fn new(len: usize) -> Self {
        Bitmap {
            words: vec![0; len.div_ceil(64)],
            len,
        }
    }

    /// All-ones bitmap of length `len`.
    #[must_use]
    pub fn full(len: usize) -> Self {
        let mut b = Bitmap {
            words: vec![u64::MAX; len.div_ceil(64)],
            len,
        };
        b.clear_tail();
        b
    }

    /// Build from the indices that should be set. Out-of-range indices panic.
    #[must_use]
    pub fn from_indices(len: usize, indices: impl IntoIterator<Item = usize>) -> Self {
        let mut b = Bitmap::new(len);
        for i in indices {
            b.set(i, true);
        }
        b
    }

    /// Number of addressable bits.
    #[must_use]
    pub fn len(&self) -> usize {
        self.len
    }

    /// True if the bitmap has zero length.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Bit at `idx` (panics if out of range).
    #[must_use]
    pub fn get(&self, idx: usize) -> bool {
        assert!(
            idx < self.len,
            "bitmap index {idx} out of range {}",
            self.len
        );
        self.words[idx / 64] & (1u64 << (idx % 64)) != 0
    }

    /// Set bit `idx` to `value` (panics if out of range).
    pub fn set(&mut self, idx: usize, value: bool) {
        assert!(
            idx < self.len,
            "bitmap index {idx} out of range {}",
            self.len
        );
        let mask = 1u64 << (idx % 64);
        if value {
            self.words[idx / 64] |= mask;
        } else {
            self.words[idx / 64] &= !mask;
        }
    }

    /// Number of set bits. Used by the planner's brute-force threshold
    /// decision (§5.1): when few points are valid, HNSW must over-expand to
    /// surface enough of them, so brute force over the survivors wins.
    #[must_use]
    pub fn count_ones(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Iterator over the set bit positions in ascending order.
    pub fn iter_ones(&self) -> impl Iterator<Item = usize> + '_ {
        self.words.iter().enumerate().flat_map(|(wi, &w)| {
            let mut bits = w;
            std::iter::from_fn(move || {
                if bits == 0 {
                    None
                } else {
                    let tz = bits.trailing_zeros() as usize;
                    bits &= bits - 1;
                    Some(wi * 64 + tz)
                }
            })
        })
    }

    /// Number of positions set in both `self` and `other`. Unlike
    /// [`Bitmap::intersect`], the lengths need not match: positions past the
    /// shorter bitmap count as unset. This is the planner's valid-live
    /// cardinality estimate — filter bitmap ∩ index occupancy — where the
    /// filter covers the segment capacity but the occupancy mask only spans
    /// the local ids actually inserted.
    #[must_use]
    pub fn intersection_count(&self, other: &Bitmap) -> usize {
        self.words
            .iter()
            .zip(&other.words)
            .map(|(a, b)| (a & b).count_ones() as usize)
            .sum()
    }

    /// Grow the bitmap to at least `len` bits (new bits unset). Shrinking is
    /// not supported; a smaller `len` is a no-op.
    pub fn grow(&mut self, len: usize) {
        if len > self.len {
            self.len = len;
            self.words.resize(len.div_ceil(64), 0);
        }
    }

    /// In-place intersection with another bitmap of equal length.
    pub fn intersect(&mut self, other: &Bitmap) {
        assert_eq!(self.len, other.len, "bitmap length mismatch");
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            *a &= *b;
        }
    }

    /// In-place union with another bitmap of equal length.
    pub fn union(&mut self, other: &Bitmap) {
        assert_eq!(self.len, other.len, "bitmap length mismatch");
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            *a |= *b;
        }
    }

    /// In-place difference (`self AND NOT other`).
    pub fn difference(&mut self, other: &Bitmap) {
        assert_eq!(self.len, other.len, "bitmap length mismatch");
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            *a &= !*b;
        }
    }

    /// Zero out the padding bits past `len` in the last word so that
    /// `count_ones` stays exact after whole-word operations.
    fn clear_tail(&mut self) {
        let tail = self.len % 64;
        if tail != 0 {
            if let Some(last) = self.words.last_mut() {
                *last &= (1u64 << tail) - 1;
            }
        }
    }
}

/// A filter over local ids, as passed into the vector index search.
///
/// `None` means "everything valid" (pure vector search with no deletes);
/// otherwise the bitmap is consulted per candidate. This mirrors the paper's
/// filter-function hand-off where a single index call returns the valid
/// top-k (§5.1).
#[derive(Debug, Clone, Copy)]
pub enum Filter<'a> {
    /// Every id is valid.
    All,
    /// Only ids whose bit is set are valid.
    Valid(&'a Bitmap),
}

impl Filter<'_> {
    /// Whether local id `idx` passes the filter.
    #[must_use]
    pub fn accepts(&self, idx: usize) -> bool {
        match self {
            Filter::All => true,
            Filter::Valid(b) => idx < b.len() && b.get(idx),
        }
    }

    /// Number of valid points out of `universe` total.
    #[must_use]
    pub fn valid_count(&self, universe: usize) -> usize {
        match self {
            Filter::All => universe,
            Filter::Valid(b) => b.count_ones(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_is_all_zero() {
        let b = Bitmap::new(130);
        assert_eq!(b.count_ones(), 0);
        assert!(!b.get(0));
        assert!(!b.get(129));
    }

    #[test]
    fn full_counts_exactly_len() {
        for len in [0usize, 1, 63, 64, 65, 127, 128, 200] {
            assert_eq!(Bitmap::full(len).count_ones(), len, "len {len}");
        }
    }

    #[test]
    fn set_get_roundtrip() {
        let mut b = Bitmap::new(100);
        b.set(3, true);
        b.set(64, true);
        b.set(99, true);
        assert!(b.get(3) && b.get(64) && b.get(99));
        b.set(64, false);
        assert!(!b.get(64));
        assert_eq!(b.count_ones(), 2);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn get_out_of_range_panics() {
        let _ = Bitmap::new(10).get(10);
    }

    #[test]
    fn iter_ones_ascending() {
        let b = Bitmap::from_indices(200, [5, 64, 63, 199, 0]);
        let ones: Vec<usize> = b.iter_ones().collect();
        assert_eq!(ones, vec![0, 5, 63, 64, 199]);
    }

    #[test]
    fn set_ops() {
        let mut a = Bitmap::from_indices(70, [1, 2, 3, 65]);
        let b = Bitmap::from_indices(70, [2, 3, 4, 66]);
        let mut u = a.clone();
        u.union(&b);
        assert_eq!(u.iter_ones().collect::<Vec<_>>(), vec![1, 2, 3, 4, 65, 66]);
        let mut d = a.clone();
        d.difference(&b);
        assert_eq!(d.iter_ones().collect::<Vec<_>>(), vec![1, 65]);
        a.intersect(&b);
        assert_eq!(a.iter_ones().collect::<Vec<_>>(), vec![2, 3]);
    }

    #[test]
    fn intersection_count_tolerates_length_mismatch() {
        let long = Bitmap::from_indices(200, [1, 64, 65, 130, 199]);
        let short = Bitmap::from_indices(66, [1, 2, 64, 65]);
        assert_eq!(long.intersection_count(&short), 3); // 1, 64, 65
        assert_eq!(short.intersection_count(&long), 3); // symmetric
        assert_eq!(long.intersection_count(&Bitmap::new(0)), 0);
        assert_eq!(
            long.intersection_count(&Bitmap::full(200)),
            long.count_ones()
        );
    }

    #[test]
    fn grow_preserves_bits_and_never_shrinks() {
        let mut b = Bitmap::from_indices(10, [3, 9]);
        b.grow(130);
        assert_eq!(b.len(), 130);
        assert_eq!(b.iter_ones().collect::<Vec<_>>(), vec![3, 9]);
        b.set(129, true);
        b.grow(5); // no-op
        assert_eq!(b.len(), 130);
        assert_eq!(b.count_ones(), 3);
    }

    #[test]
    fn filter_all_accepts_everything() {
        let f = Filter::All;
        assert!(f.accepts(0));
        assert!(f.accepts(1_000_000));
        assert_eq!(f.valid_count(42), 42);
    }

    #[test]
    fn filter_valid_respects_bitmap() {
        let b = Bitmap::from_indices(10, [2, 7]);
        let f = Filter::Valid(&b);
        assert!(f.accepts(2));
        assert!(!f.accepts(3));
        assert!(!f.accepts(10)); // out of range treated as invalid
        assert_eq!(f.valid_count(10), 2);
    }
}
