//! Cross-tier kernel equivalence: every dispatch tier available on this
//! machine must agree with the scalar fallback across dims 0..=67 (empty,
//! tails < 4, unaligned lengths) and adversarial values (denormals, mixed
//! signs, zero vectors), within the documented tolerance — ≤1e-5 **relative
//! to the accumulated magnitude** of the reduction. Plain relative error is
//! the wrong yardstick for `dot`: mixed-sign inputs can cancel to a result
//! near zero while every partial sum is large, and FMA legitimately changes
//! that rounding path.

use tv_common::kernels::{self, KernelTier, PreparedQuery};
use tv_common::{DistanceMetric, SplitMix64};

const REL_TOL: f32 = 1e-5;

/// Magnitude-scale of the dot reduction: Σ|a_i·b_i|. Cross-tier error is
/// bounded relative to this, not to the (possibly cancelled) result.
fn dot_scale(a: &[f32], b: &[f32]) -> f32 {
    a.iter().zip(b).map(|(x, y)| (x * y).abs()).sum::<f32>()
}

fn l2_scale(a: &[f32], b: &[f32]) -> f32 {
    a.iter()
        .zip(b)
        .map(|(x, y)| {
            let d = x - y;
            d * d
        })
        .sum::<f32>()
}

fn assert_within(got: f32, want: f32, scale: f32, ctx: &str) {
    let tol = REL_TOL * scale.max(1e-30);
    assert!(
        (got - want).abs() <= tol || got == want,
        "{ctx}: got {got}, scalar {want}, tol {tol}"
    );
}

/// Deterministic vector families covering the adversarial cases the ISSUE
/// names: smooth values, mixed signs with cancellation, denormals, zeros,
/// and large magnitudes.
fn families(dim: usize, seed: u64) -> Vec<(String, Vec<f32>, Vec<f32>)> {
    let mut rng = SplitMix64::new(seed ^ dim as u64);
    let smooth_a: Vec<f32> = (0..dim).map(|_| rng.next_f32() * 2.0 - 1.0).collect();
    let smooth_b: Vec<f32> = (0..dim).map(|_| rng.next_f32() * 2.0 - 1.0).collect();
    let signs_a: Vec<f32> = (0..dim)
        .map(|i| if i % 2 == 0 { 1e3 } else { -1e3 } + i as f32 * 1e-3)
        .collect();
    let signs_b: Vec<f32> = (0..dim).map(|i| 1.0 + (i as f32) * 1e-6).collect();
    let denormal_a: Vec<f32> = (0..dim).map(|i| 1e-40 * (i as f32 + 1.0)).collect();
    let denormal_b: Vec<f32> = (0..dim).map(|i| 1e-40 * (dim - i) as f32).collect();
    let zeros = vec![0.0f32; dim];
    let large_a: Vec<f32> = (0..dim).map(|_| rng.next_f32() * 1e18).collect();
    let large_b: Vec<f32> = (0..dim).map(|_| rng.next_f32() * 1e18 - 5e17).collect();
    vec![
        ("smooth".into(), smooth_a, smooth_b.clone()),
        ("mixed-signs".into(), signs_a, signs_b),
        ("denormals".into(), denormal_a, denormal_b),
        ("zero-lhs".into(), zeros.clone(), smooth_b),
        ("zero-both".into(), zeros.clone(), zeros),
        ("large".into(), large_a, large_b),
    ]
}

#[test]
fn every_tier_matches_scalar_across_dims_and_families() {
    let scalar = kernels::for_tier(KernelTier::Scalar).unwrap();
    for k in kernels::available() {
        for dim in 0..=67usize {
            for (name, a, b) in families(dim, 0xD15C) {
                let ctx = |op: &str| format!("{}::{op} dim={dim} family={name}", k.tier());

                let want = scalar.dot(&a, &b);
                assert_within(k.dot(&a, &b), want, dot_scale(&a, &b), &ctx("dot"));

                let want = scalar.l2_sq(&a, &b);
                let got = k.l2_sq(&a, &b);
                assert!(got >= 0.0, "{}: negative l2 {got}", ctx("l2_sq"));
                assert_within(got, want, l2_scale(&a, &b), &ctx("l2_sq"));

                let want = scalar.norm_sq(&a);
                assert_within(k.norm_sq(&a), want, dot_scale(&a, &a), &ctx("norm_sq"));

                let (want_d, want_n) = scalar.dot_norm_sq(&a, &b);
                let (got_d, got_n) = k.dot_norm_sq(&a, &b);
                assert_within(got_d, want_d, dot_scale(&a, &b), &ctx("dot_norm_sq.dot"));
                assert_within(got_n, want_n, dot_scale(&b, &b), &ctx("dot_norm_sq.norm"));
            }
        }
    }
}

#[test]
fn batch_kernels_match_scalar_on_slabs() {
    let scalar = kernels::for_tier(KernelTier::Scalar).unwrap();
    let mut rng = SplitMix64::new(0xBA7C);
    for k in kernels::available() {
        for dim in [0usize, 1, 3, 4, 7, 16, 63, 67] {
            let rows = 9;
            let q: Vec<f32> = (0..dim).map(|_| rng.next_f32() * 2.0 - 1.0).collect();
            let slab: Vec<f32> = (0..dim * rows)
                .map(|_| rng.next_f32() * 2.0 - 1.0)
                .collect();
            let mut got = vec![0.0f32; rows];
            let mut want = vec![0.0f32; rows];
            k.dot_batch(&q, &slab, &mut got);
            scalar.dot_batch(&q, &slab, &mut want);
            for (i, (&g, &w)) in got.iter().zip(&want).enumerate() {
                let row = &slab[i * dim..(i + 1) * dim];
                assert_within(
                    g,
                    w,
                    dot_scale(&q, row),
                    &format!("{}::dot_batch dim={dim} row={i}", k.tier()),
                );
            }
            k.l2_sq_batch(&q, &slab, &mut got);
            scalar.l2_sq_batch(&q, &slab, &mut want);
            for (i, (&g, &w)) in got.iter().zip(&want).enumerate() {
                let row = &slab[i * dim..(i + 1) * dim];
                assert_within(
                    g,
                    w,
                    l2_scale(&q, row),
                    &format!("{}::l2_sq_batch dim={dim} row={i}", k.tier()),
                );
            }
        }
    }
}

/// Magnitude-scale of the u8 L2 reduction: Σ(a_i − s_i·c_i)².
fn l2_u8_scale(a: &[f32], scale: &[f32], codes: &[u8]) -> f32 {
    a.iter()
        .zip(scale)
        .zip(codes)
        .map(|((&x, &s), &c)| {
            let d = x - s * f32::from(c);
            d * d
        })
        .sum::<f32>()
}

#[test]
fn u8_kernels_match_scalar_across_dims() {
    // The quantized-tier analogue of the f32 sweep: every tier's u8 kernels
    // (pair and batch) must agree with the scalar u8 reference across dims
    // covering empty, sub-register tails, and unaligned lengths. This test
    // also runs under `TV_KERNELS=scalar` forcing in `make quant-smoke`,
    // which proves active()-dispatched quantized scoring is tier-independent.
    let scalar = kernels::for_tier(KernelTier::Scalar).unwrap();
    let mut rng = SplitMix64::new(0x5EED_A5A5);
    for k in kernels::available() {
        for dim in 0..=67usize {
            let a: Vec<f32> = (0..dim).map(|_| rng.next_f32() * 4.0 - 2.0).collect();
            let scale_v: Vec<f32> = (0..dim).map(|_| 1e-3 + rng.next_f32() * 0.05).collect();
            let codes: Vec<u8> = (0..dim).map(|_| (rng.next_u64() % 256) as u8).collect();
            let ctx = |op: &str| format!("{}::{op} dim={dim}", k.tier());

            let want = scalar.dot_u8(&a, &codes);
            let widened: Vec<f32> = codes.iter().map(|&c| f32::from(c)).collect();
            assert_within(
                k.dot_u8(&a, &codes),
                want,
                dot_scale(&a, &widened),
                &ctx("dot_u8"),
            );

            let want = scalar.l2_sq_u8(&a, &scale_v, &codes);
            let got = k.l2_sq_u8(&a, &scale_v, &codes);
            assert!(got >= 0.0, "{}: negative l2 {got}", ctx("l2_sq_u8"));
            assert_within(
                got,
                want,
                l2_u8_scale(&a, &scale_v, &codes),
                &ctx("l2_sq_u8"),
            );
        }

        // Batch forms over a code slab.
        for dim in [0usize, 1, 3, 4, 7, 16, 63, 67] {
            let rows = 9;
            let a: Vec<f32> = (0..dim).map(|_| rng.next_f32() * 2.0 - 1.0).collect();
            let scale_v: Vec<f32> = (0..dim).map(|_| 1e-3 + rng.next_f32() * 0.05).collect();
            let slab: Vec<u8> = (0..dim * rows)
                .map(|_| (rng.next_u64() % 256) as u8)
                .collect();
            let mut got = vec![0.0f32; rows];
            let mut want = vec![0.0f32; rows];
            k.dot_u8_batch(&a, &slab, &mut got);
            scalar.dot_u8_batch(&a, &slab, &mut want);
            for (i, (&g, &w)) in got.iter().zip(&want).enumerate() {
                let row = &slab[i * dim..(i + 1) * dim];
                let widened: Vec<f32> = row.iter().map(|&c| f32::from(c)).collect();
                assert_within(
                    g,
                    w,
                    dot_scale(&a, &widened),
                    &format!("{}::dot_u8_batch dim={dim} row={i}", k.tier()),
                );
            }
            k.l2_sq_u8_batch(&a, &scale_v, &slab, &mut got);
            scalar.l2_sq_u8_batch(&a, &scale_v, &slab, &mut want);
            for (i, (&g, &w)) in got.iter().zip(&want).enumerate() {
                let row = &slab[i * dim..(i + 1) * dim];
                assert_within(
                    g,
                    w,
                    l2_u8_scale(&a, &scale_v, row),
                    &format!("{}::l2_sq_u8_batch dim={dim} row={i}", k.tier()),
                );
            }
        }
    }
}

#[test]
fn cosine_zero_vector_guard_holds_in_every_tier() {
    for k in kernels::available() {
        for dim in [0usize, 1, 3, 8, 67] {
            let zeros = vec![0.0f32; dim];
            let ones = vec![1.0f32; dim];
            for (q, v) in [(&zeros, &ones), (&ones, &zeros), (&zeros, &zeros)] {
                let pq = PreparedQuery::on(k, DistanceMetric::Cosine, q);
                let d = pq.distance(v);
                assert!(d.is_finite(), "tier {} dim {dim}: NaN/inf {d}", k.tier());
                // dim=0: both norms are 0 → guard fires even for "ones".
                if q.iter().all(|&x| x == 0.0) || v.iter().all(|&x| x == 0.0) {
                    assert_eq!(d, 1.0, "tier {} dim {dim}", k.tier());
                    let v_norm = k.norm_sq(v).sqrt();
                    assert_eq!(pq.distance_cached(v, v_norm), 1.0);
                }
            }
        }
    }
}

#[test]
fn prepared_query_cached_and_uncached_paths_agree() {
    let mut rng = SplitMix64::new(0xCAFE);
    for k in kernels::available() {
        for metric in [
            DistanceMetric::L2,
            DistanceMetric::Cosine,
            DistanceMetric::InnerProduct,
        ] {
            for dim in [1usize, 5, 16, 67] {
                let q: Vec<f32> = (0..dim).map(|_| rng.next_f32()).collect();
                let v: Vec<f32> = (0..dim).map(|_| rng.next_f32()).collect();
                let pq = PreparedQuery::on(k, metric, &q);
                let plain = pq.distance(&v);
                let cached = pq.distance_cached(&v, k.norm_sq(&v).sqrt());
                let scale = dot_scale(&q, &v).max(l2_scale(&q, &v)).max(1.0);
                assert_within(
                    cached,
                    plain,
                    scale,
                    &format!("{}::{metric:?} dim={dim}", k.tier()),
                );
            }
        }
    }
}

#[test]
fn distance_slots_matches_per_candidate_calls() {
    let mut rng = SplitMix64::new(0x51075);
    let dim = 19;
    let n = 11;
    let arena: Vec<f32> = (0..dim * n).map(|_| rng.next_f32() * 2.0 - 1.0).collect();
    for k in kernels::available() {
        let norms: Vec<f32> = (0..n)
            .map(|s| k.norm_sq(&arena[s * dim..(s + 1) * dim]).sqrt())
            .collect();
        for metric in [
            DistanceMetric::L2,
            DistanceMetric::Cosine,
            DistanceMetric::InnerProduct,
        ] {
            let q: Vec<f32> = (0..dim).map(|_| rng.next_f32()).collect();
            let pq = PreparedQuery::on(k, metric, &q);
            let slots: Vec<u32> = [7u32, 0, 3, 10, 3].into();
            let mut out = Vec::new();
            pq.distance_slots(&arena, dim, &norms, &slots, &mut out);
            assert_eq!(out.len(), slots.len());
            for (&s, &d) in slots.iter().zip(&out) {
                let v = &arena[s as usize * dim..(s as usize + 1) * dim];
                let want = pq.distance_cached(v, norms[s as usize]);
                assert_eq!(d.to_bits(), want.to_bits(), "tier {}", k.tier());
            }
        }
    }
}

#[test]
fn this_machine_reports_its_tiers() {
    // Not an equivalence check — a visibility guard: `available()` must at
    // minimum contain the scalar tier, and `detect_best()` must be one of
    // the available tiers.
    let tiers: Vec<KernelTier> = kernels::available().iter().map(|k| k.tier()).collect();
    assert!(tiers.contains(&KernelTier::Scalar));
    assert!(tiers.contains(&kernels::detect_best()));
    #[cfg(target_arch = "x86_64")]
    assert!(tiers.contains(&KernelTier::Sse), "SSE2 is x86-64 baseline");
}
