//! The serving gateway: sessions → admission → (batcher | GSQL executor) →
//! merge, with per-tenant metrics around every step.

use crate::admission::{AdmissionConfig, AdmissionController};
use crate::batch::{BatchKey, Batcher};
use crate::metrics::{MetricsRegistry, TenantMetrics};
use crate::session::{Session, SessionManager};
use std::path::Path;
use std::sync::Arc;
use std::time::{Duration, Instant};
use tg_graph::{AccessControl, Graph};
use tv_cluster::{ClusterResponse, ClusterRuntime, MigrationPlan, MigrationReport, Migrator};
use tv_common::{Deadline, Tid, TvError, TvResult};
use tv_embedding::{BatchQuery, TypedNeighbor};
use tv_gsql::{Params, QueryOutput};
use tv_hnsw::SearchStats;

/// Serving-layer tuning.
#[derive(Debug, Clone, Copy)]
pub struct ServerConfig {
    /// Admission-control settings (executor pool, queue bound, rate limits).
    pub admission: AdmissionConfig,
    /// How long a batch leader waits for followers before executing.
    pub batch_window: Duration,
    /// Maximum queries coalesced into one fan-out.
    pub max_batch: usize,
    /// Deadline applied to requests whose session sets none (None = no
    /// deadline).
    pub default_deadline: Option<Duration>,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            admission: AdmissionConfig::default(),
            batch_window: Duration::from_micros(300),
            max_batch: 16,
            default_deadline: None,
        }
    }
}

/// The in-process query gateway.
///
/// Holds the graph, the rbac [`AccessControl`] every request is checked
/// against, and the serving stages. Batching note: an execution permit is
/// held while a request sits in the batcher, so coalescing only happens
/// among requests admitted concurrently — admission bounds work, batching
/// amortizes it.
pub struct Server {
    graph: Arc<Graph>,
    acl: Arc<AccessControl>,
    config: ServerConfig,
    admission: AdmissionController,
    batcher: Batcher,
    metrics: MetricsRegistry,
    sessions: SessionManager,
    cluster: Option<Arc<ClusterRuntime>>,
}

impl Server {
    /// A server fronting `graph` with `acl` governing every request.
    #[must_use]
    pub fn new(graph: Arc<Graph>, acl: Arc<AccessControl>, config: ServerConfig) -> Self {
        Server {
            graph,
            acl,
            admission: AdmissionController::new(config.admission),
            batcher: Batcher::new(config.batch_window, config.max_batch),
            metrics: MetricsRegistry::new(),
            sessions: SessionManager::new(),
            cluster: None,
            config,
        }
    }

    /// Attach a cluster runtime so [`Server::cluster_top_k`] can scatter
    /// deadline-carrying searches across workers.
    #[must_use]
    pub fn with_cluster(mut self, cluster: Arc<ClusterRuntime>) -> Self {
        self.cluster = Some(cluster);
        self
    }

    /// The graph being served.
    #[must_use]
    pub fn graph(&self) -> &Arc<Graph> {
        &self.graph
    }

    /// The access-control policy in force.
    #[must_use]
    pub fn acl(&self) -> &Arc<AccessControl> {
        &self.acl
    }

    /// The metrics registry.
    #[must_use]
    pub fn metrics(&self) -> &MetricsRegistry {
        &self.metrics
    }

    /// The admission controller (for observing queue depth).
    #[must_use]
    pub fn admission(&self) -> &AdmissionController {
        &self.admission
    }

    /// Open a session for `tenant` acting as rbac principal `user`.
    pub fn open_session(&self, tenant: &str, user: &str) -> Session {
        self.sessions.open(tenant, user)
    }

    /// Close a session.
    pub fn close_session(&self, session: &Session) {
        self.sessions.close(session);
    }

    /// Number of open sessions.
    #[must_use]
    pub fn active_sessions(&self) -> usize {
        self.sessions.active()
    }

    /// JSON snapshot of all per-tenant metrics.
    #[must_use]
    pub fn metrics_json(&self) -> serde_json::Value {
        self.metrics.snapshot()
    }

    /// Persist a crash-consistent checkpoint of the served graph (graph
    /// segment images, embedding deltas, index snapshots, manifest) and
    /// rotate its WAL. Requires a graph opened with `Graph::durable`;
    /// outcomes land in the `__durability__` metrics object.
    pub fn checkpoint(&self) -> TvResult<tg_graph::CheckpointInfo> {
        let start = Instant::now();
        match self.graph.checkpoint() {
            Ok(info) => {
                self.metrics.durability().record_checkpoint(
                    info.tid.0,
                    info.files,
                    info.wal_records_kept,
                    start.elapsed(),
                );
                Ok(info)
            }
            Err(e) => {
                self.metrics.durability().record_checkpoint_failure();
                Err(e)
            }
        }
    }

    fn deadline_for(&self, session: &Session) -> Deadline {
        match session.deadline.or(self.config.default_deadline) {
            Some(d) => Deadline::after(d),
            None => Deadline::none(),
        }
    }

    fn admit(
        &self,
        session: &Session,
        tenant: &Arc<TenantMetrics>,
        deadline: Deadline,
    ) -> TvResult<crate::admission::Permit<'_>> {
        match self.admission.admit(&session.tenant, deadline) {
            Ok((permit, info)) => {
                tenant.record_admitted(info.queued_at_depth);
                Ok(permit)
            }
            Err(e) => {
                match &e {
                    TvError::Overloaded(m) if m.contains("rate limit") => {
                        tenant.record_rate_limited();
                    }
                    TvError::Overloaded(_) => tenant.record_rejected(),
                    TvError::Timeout(_) => tenant.record_timeout(),
                    _ => {}
                }
                Err(e)
            }
        }
    }

    fn record_outcome<T>(&self, tenant: &Arc<TenantMetrics>, start: Instant, result: &TvResult<T>) {
        match result {
            Ok(_) => tenant.record_completed(start.elapsed()),
            Err(TvError::PermissionDenied(_)) => tenant.record_denied(),
            Err(TvError::Timeout(_)) => tenant.record_timeout(),
            Err(_) => {}
        }
    }

    /// Execute a GSQL query as the session's user: admission, type grants,
    /// row security, and the session deadline all apply.
    pub fn query(&self, session: &Session, src: &str, params: &Params) -> TvResult<QueryOutput> {
        let tenant = self.metrics.tenant(&session.tenant);
        let deadline = self.deadline_for(session);
        let start = Instant::now();
        let permit = self.admit(session, &tenant, deadline)?;
        let mut stats = SearchStats::default();
        let result = tv_gsql::execute_at_as_stats(
            &self.graph,
            &self.acl,
            &session.user,
            src,
            params,
            self.graph.read_tid(),
            deadline,
            &mut stats,
        );
        tenant.record_plans(&stats);
        drop(permit);
        self.record_outcome(&tenant, start, &result);
        result
    }

    /// Direct vector top-k over `attr_ids`, batched with concurrent
    /// same-shape queries when the session's user has unrestricted read
    /// access. Row-restricted users run solo (their pre-filter is private),
    /// which keeps batched results bit-identical to one-by-one execution.
    pub fn vector_top_k(
        &self,
        session: &Session,
        attr_ids: &[u32],
        query: Vec<f32>,
        k: usize,
    ) -> TvResult<Vec<TypedNeighbor>> {
        let tenant = self.metrics.tenant(&session.tenant);
        let deadline = self.deadline_for(session);
        let start = Instant::now();
        let permit = self.admit(session, &tenant, deadline)?;
        let tid = self.graph.read_tid();
        let ef = self.graph.embeddings().config().default_ef.max(k);

        let restriction =
            match self
                .acl
                .restriction_for_attrs(&self.graph, &session.user, attr_ids, tid)
            {
                Ok(r) => r,
                Err(e) => {
                    drop(permit);
                    let failed: TvResult<()> = Err(e);
                    self.record_outcome(&tenant, start, &failed);
                    return failed.map(|()| Vec::new());
                }
            };

        let result = match restriction {
            Some(set) => {
                let mut stats = SearchStats::default();
                let r = self.graph.vector_search_deadline(
                    attr_ids,
                    &query,
                    k,
                    ef,
                    Some(&set),
                    tid,
                    deadline,
                    &mut stats,
                );
                tenant.record_plans(&stats);
                r
            }
            None => {
                let key = BatchKey {
                    attr_ids: attr_ids.to_vec(),
                    k,
                    ef,
                    tid,
                };
                let graph = Arc::clone(&self.graph);
                let batch_tenant = Arc::clone(&tenant);
                let out = self.batcher.submit(&key, query, move |queries| {
                    let batch: Vec<BatchQuery> = queries
                        .iter()
                        .map(|q| BatchQuery {
                            query: q.clone(),
                            k,
                            ef,
                        })
                        .collect();
                    let mut stats = SearchStats::default();
                    let r = graph
                        .embeddings()
                        .top_k_many(attr_ids, &batch, tid, None, deadline, &mut stats);
                    batch_tenant.record_plans(&stats);
                    r
                });
                tenant.record_batched(out.batch_size);
                out.result
            }
        };
        drop(permit);
        self.record_outcome(&tenant, start, &result);
        result
    }

    /// Scatter a top-k across the attached cluster runtime with the session
    /// deadline propagated into every worker loop. The full
    /// [`ClusterResponse`] is returned so callers see the coverage of a
    /// degraded answer; the tenant's metrics record every replica retry,
    /// hedge, and degraded completion.
    pub fn cluster_top_k(
        &self,
        session: &Session,
        query: &[f32],
        k: usize,
        ef: usize,
        tid: Tid,
    ) -> TvResult<ClusterResponse> {
        let runtime = self.cluster.as_ref().ok_or_else(|| {
            TvError::InvalidArgument("no cluster runtime attached to this server".into())
        })?;
        let tenant = self.metrics.tenant(&session.tenant);
        let deadline = self.deadline_for(session);
        let start = Instant::now();
        let permit = self.admit(session, &tenant, deadline)?;
        let result = runtime.top_k_deadline(query, k, ef, tid, None, deadline);
        drop(permit);
        if let Ok(response) = &result {
            tenant.record_cluster(
                response.retries,
                response.hedges,
                !response.coverage.is_complete(),
            );
        }
        self.record_outcome(&tenant, start, &result);
        result
    }

    /// Execute a live segment migration on the attached cluster runtime
    /// (admin operation — it bypasses tenant admission). `staging` is the
    /// scratch directory the snapshot ships through. Both outcomes land in
    /// the `__cluster__` metrics: completion records shipped bytes,
    /// catch-up volume, flip pause, and the new placement generation; a
    /// clean abort records the plan and error.
    pub fn migrate_segment(
        &self,
        plan: MigrationPlan,
        staging: &Path,
    ) -> TvResult<MigrationReport> {
        let runtime = self.cluster.as_ref().ok_or_else(|| {
            TvError::InvalidArgument("no cluster runtime attached to this server".into())
        })?;
        let migrator = Migrator::new(Arc::clone(runtime), staging.to_path_buf());
        let cluster = self.metrics.cluster();
        let result = migrator.run(plan);
        cluster.set_migration_errors(runtime.migration_errors().count());
        match result {
            Ok(report) => {
                cluster.record_completed(&report);
                Ok(report)
            }
            Err(e) => {
                cluster.record_aborted(format!("{plan}: {e}"));
                Err(e)
            }
        }
    }
}
