//! Admission control: a semaphore-bounded executor pool behind a bounded
//! FIFO queue, plus per-tenant token-bucket rate limits.
//!
//! The contract:
//!
//! * at most `executor_permits` requests execute concurrently;
//! * at most `queue_capacity` more may wait, strictly FIFO (a later arrival
//!   can never overtake an earlier one);
//! * anything beyond that is rejected immediately with
//!   [`TvError::Overloaded`] — shedding load at the door is what keeps tail
//!   latency bounded under a burst;
//! * a tenant over its token-bucket rate is likewise rejected with
//!   [`TvError::Overloaded`] while other tenants proceed;
//! * a queued request whose [`Deadline`] expires leaves the queue with
//!   [`TvError::Timeout`] instead of occupying an executor it can no longer
//!   use.

use std::collections::{HashMap, VecDeque};
use std::sync::{Condvar, Mutex};
use std::time::{Duration, Instant};
use tv_common::{Deadline, TvError, TvResult};

/// Per-tenant token-bucket rate limit.
#[derive(Debug, Clone, Copy)]
pub struct RateLimitConfig {
    /// Bucket capacity (maximum burst size).
    pub burst: f64,
    /// Sustained refill rate in requests per second.
    pub per_sec: f64,
}

/// Admission-control tuning.
#[derive(Debug, Clone, Copy)]
pub struct AdmissionConfig {
    /// Maximum concurrently executing requests (the executor pool size).
    pub executor_permits: usize,
    /// Maximum requests waiting behind the executing ones.
    pub queue_capacity: usize,
    /// Optional per-tenant rate limit (None = unlimited).
    pub rate_limit: Option<RateLimitConfig>,
}

impl Default for AdmissionConfig {
    fn default() -> Self {
        AdmissionConfig {
            executor_permits: std::thread::available_parallelism().map_or(4, |n| n.get()),
            queue_capacity: 64,
            rate_limit: None,
        }
    }
}

struct TokenBucket {
    tokens: f64,
    last_refill: Instant,
}

struct Inner {
    active: usize,
    queue: VecDeque<u64>,
    next_ticket: u64,
    buckets: HashMap<String, TokenBucket>,
}

/// The admission controller.
pub struct AdmissionController {
    config: AdmissionConfig,
    inner: Mutex<Inner>,
    cv: Condvar,
}

/// What admission observed for one granted request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AdmitInfo {
    /// Queue depth at enqueue time (0 = granted without queuing).
    pub queued_at_depth: usize,
}

/// RAII execution permit; dropping it frees an executor slot and wakes the
/// queue head.
pub struct Permit<'a> {
    ctl: &'a AdmissionController,
}

impl std::fmt::Debug for Permit<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Permit").finish_non_exhaustive()
    }
}

impl Drop for Permit<'_> {
    fn drop(&mut self) {
        let mut inner = self.ctl.inner.lock().unwrap_or_else(|e| e.into_inner());
        inner.active = inner.active.saturating_sub(1);
        drop(inner);
        self.ctl.cv.notify_all();
    }
}

impl AdmissionController {
    /// New controller.
    #[must_use]
    pub fn new(config: AdmissionConfig) -> Self {
        AdmissionController {
            config,
            inner: Mutex::new(Inner {
                active: 0,
                queue: VecDeque::new(),
                next_ticket: 0,
                buckets: HashMap::new(),
            }),
            cv: Condvar::new(),
        }
    }

    /// The active configuration.
    #[must_use]
    pub fn config(&self) -> AdmissionConfig {
        self.config
    }

    /// Requests currently waiting in the queue.
    #[must_use]
    pub fn queue_depth(&self) -> usize {
        self.inner
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .queue
            .len()
    }

    /// Requests currently executing.
    #[must_use]
    pub fn active(&self) -> usize {
        self.inner.lock().unwrap_or_else(|e| e.into_inner()).active
    }

    /// Admit one request for `tenant`, blocking (FIFO) while the pool is
    /// saturated. Errors are immediate ([`TvError::Overloaded`]) except the
    /// deadline path ([`TvError::Timeout`]), which fires while queued.
    ///
    /// Note a rate-limited tenant's rejected request still consumed its
    /// token: probing while throttled keeps you throttled.
    pub fn admit(&self, tenant: &str, deadline: Deadline) -> TvResult<(Permit<'_>, AdmitInfo)> {
        let mut inner = self.inner.lock().unwrap_or_else(|e| e.into_inner());

        if let Some(rl) = self.config.rate_limit {
            let bucket = inner
                .buckets
                .entry(tenant.to_string())
                .or_insert_with(|| TokenBucket {
                    tokens: rl.burst,
                    last_refill: Instant::now(),
                });
            let now = Instant::now();
            let elapsed = now.duration_since(bucket.last_refill).as_secs_f64();
            bucket.tokens = (bucket.tokens + elapsed * rl.per_sec).min(rl.burst);
            bucket.last_refill = now;
            if bucket.tokens < 1.0 {
                return Err(TvError::Overloaded(format!(
                    "tenant '{tenant}' is over its rate limit"
                )));
            }
            bucket.tokens -= 1.0;
        }

        // Fast path: free executor and nobody ahead of us.
        if inner.active < self.config.executor_permits && inner.queue.is_empty() {
            inner.active += 1;
            return Ok((Permit { ctl: self }, AdmitInfo { queued_at_depth: 0 }));
        }

        // Bounded queue: shed anything beyond capacity.
        if inner.queue.len() >= self.config.queue_capacity {
            return Err(TvError::Overloaded(format!(
                "admission queue full ({} waiting)",
                inner.queue.len()
            )));
        }
        let ticket = inner.next_ticket;
        inner.next_ticket += 1;
        inner.queue.push_back(ticket);
        let depth = inner.queue.len();

        loop {
            if deadline.expired() {
                inner.queue.retain(|&t| t != ticket);
                drop(inner);
                self.cv.notify_all();
                return Err(TvError::Timeout(format!(
                    "deadline expired while queued (tenant '{tenant}')"
                )));
            }
            // Only the queue head may claim a permit — that is the FIFO
            // guarantee.
            if inner.queue.front() == Some(&ticket) && inner.active < self.config.executor_permits {
                inner.queue.pop_front();
                inner.active += 1;
                drop(inner);
                // Wake the next head: more than one permit may be free.
                self.cv.notify_all();
                return Ok((
                    Permit { ctl: self },
                    AdmitInfo {
                        queued_at_depth: depth,
                    },
                ));
            }
            inner = match deadline.remaining() {
                Some(rem) => {
                    // Bounded wait so an expiring deadline is noticed.
                    let wait = rem.min(Duration::from_millis(20));
                    self.cv
                        .wait_timeout(inner, wait)
                        .unwrap_or_else(|e| e.into_inner())
                        .0
                }
                None => self.cv.wait(inner).unwrap_or_else(|e| e.into_inner()),
            };
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::Arc;

    fn config(permits: usize, queue: usize) -> AdmissionConfig {
        AdmissionConfig {
            executor_permits: permits,
            queue_capacity: queue,
            rate_limit: None,
        }
    }

    #[test]
    fn fast_path_grants_up_to_permits() {
        let ctl = AdmissionController::new(config(2, 4));
        let (p1, i1) = ctl.admit("a", Deadline::none()).unwrap();
        let (p2, i2) = ctl.admit("a", Deadline::none()).unwrap();
        assert_eq!((i1.queued_at_depth, i2.queued_at_depth), (0, 0));
        assert_eq!(ctl.active(), 2);
        drop(p1);
        drop(p2);
        assert_eq!(ctl.active(), 0);
    }

    #[test]
    fn queue_bound_holds_under_burst_with_rejections_and_no_deadlock() {
        let permits = 2;
        let capacity = 3;
        let burst = 24;
        let ctl = Arc::new(AdmissionController::new(config(permits, capacity)));
        let rejected = Arc::new(AtomicUsize::new(0));
        let completed = Arc::new(AtomicUsize::new(0));
        let max_in_flight = Arc::new(AtomicUsize::new(0));
        let in_flight = Arc::new(AtomicUsize::new(0));
        let mut handles = Vec::new();
        for _ in 0..burst {
            let ctl = Arc::clone(&ctl);
            let rejected = Arc::clone(&rejected);
            let completed = Arc::clone(&completed);
            let max_in_flight = Arc::clone(&max_in_flight);
            let in_flight = Arc::clone(&in_flight);
            handles.push(std::thread::spawn(move || {
                match ctl.admit("burst", Deadline::none()) {
                    Ok((_permit, _)) => {
                        let now = in_flight.fetch_add(1, Ordering::SeqCst) + 1;
                        max_in_flight.fetch_max(now, Ordering::SeqCst);
                        std::thread::sleep(Duration::from_millis(5));
                        in_flight.fetch_sub(1, Ordering::SeqCst);
                        completed.fetch_add(1, Ordering::SeqCst);
                    }
                    Err(TvError::Overloaded(_)) => {
                        rejected.fetch_add(1, Ordering::SeqCst);
                    }
                    Err(other) => panic!("unexpected error: {other}"),
                }
            }));
        }
        for h in handles {
            h.join().unwrap(); // no deadlock: every thread finishes
        }
        let r = rejected.load(Ordering::SeqCst);
        let c = completed.load(Ordering::SeqCst);
        assert_eq!(r + c, burst);
        // A 24-request instantaneous burst against 2 permits + 3 queue
        // slots must shed load.
        assert!(r > 0, "expected rejections under burst");
        assert!(c >= permits + capacity, "queued requests must complete");
        assert!(max_in_flight.load(Ordering::SeqCst) <= permits);
        assert_eq!(ctl.active(), 0);
        assert_eq!(ctl.queue_depth(), 0);
    }

    #[test]
    fn fifo_order_preserved() {
        let n = 6;
        let ctl = Arc::new(AdmissionController::new(config(1, n)));
        // Occupy the only permit so every worker queues.
        let (gate, _) = ctl.admit("main", Deadline::none()).unwrap();
        let order = Arc::new(Mutex::new(Vec::new()));
        let mut handles = Vec::new();
        for i in 0..n {
            let worker_ctl = Arc::clone(&ctl);
            let order = Arc::clone(&order);
            handles.push(std::thread::spawn(move || {
                let (_permit, info) = worker_ctl.admit("w", Deadline::none()).unwrap();
                assert!(info.queued_at_depth > 0);
                order.lock().unwrap().push(i);
            }));
            // Wait until worker i is actually queued so arrival order is
            // deterministic.
            while ctl.queue_depth() < i + 1 {
                std::thread::yield_now();
            }
        }
        drop(gate);
        for h in handles {
            h.join().unwrap();
        }
        let got = order.lock().unwrap().clone();
        assert_eq!(got, (0..n).collect::<Vec<_>>(), "FIFO violated");
    }

    #[test]
    fn rate_limited_tenant_throttled_while_others_proceed() {
        let ctl = AdmissionController::new(AdmissionConfig {
            executor_permits: 8,
            queue_capacity: 8,
            rate_limit: Some(RateLimitConfig {
                burst: 3.0,
                per_sec: 1.0,
            }),
        });
        // Tenant "noisy" burns its burst...
        let mut permits = Vec::new();
        for _ in 0..3 {
            permits.push(ctl.admit("noisy", Deadline::none()).unwrap());
        }
        // ...and is then rejected.
        assert!(matches!(
            ctl.admit("noisy", Deadline::none()),
            Err(TvError::Overloaded(_))
        ));
        // A different tenant still gets in immediately.
        let (ok, info) = ctl.admit("quiet", Deadline::none()).unwrap();
        assert_eq!(info.queued_at_depth, 0);
        drop(ok);
        drop(permits);
        // After ~1s of refill the noisy tenant recovers one token.
        std::thread::sleep(Duration::from_millis(1100));
        assert!(ctl.admit("noisy", Deadline::none()).is_ok());
    }

    #[test]
    fn queued_request_times_out_and_leaves_queue() {
        let ctl = AdmissionController::new(config(1, 4));
        let (gate, _) = ctl.admit("main", Deadline::none()).unwrap();
        let err = ctl
            .admit("late", Deadline::after(Duration::from_millis(40)))
            .unwrap_err();
        assert!(matches!(err, TvError::Timeout(_)));
        assert_eq!(ctl.queue_depth(), 0, "timed-out ticket must leave queue");
        drop(gate);
        // Queue is clean: the next request is a fast-path grant.
        let (_p, info) = ctl.admit("next", Deadline::none()).unwrap();
        assert_eq!(info.queued_at_depth, 0);
    }
}
