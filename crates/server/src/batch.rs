//! Request batching: coalesce concurrent vector top-k queries that share an
//! embedding attribute (and `k`/`ef`/snapshot) into one multi-query segment
//! fan-out.
//!
//! The first arrival for a [`BatchKey`] becomes the *leader*: it waits up to
//! the batch window for followers to join, then runs the whole batch through
//! one executor call (`EmbeddingService::top_k_many`) and distributes the
//! per-query results. Followers just block on the batch condvar. Because
//! `top_k_many` issues exactly the per-segment searches a one-by-one loop
//! would, batched results are bit-identical to solo execution — batching
//! changes scheduling, never answers.
//!
//! Lock order is `pending` → `Batch::state`, and the leader never holds
//! `state` while touching `pending`, so there is no lock cycle.

use std::collections::HashMap;
use std::sync::{Arc, Condvar, Mutex};
use std::time::Duration;
use tv_common::{Tid, TvResult};
use tv_embedding::TypedNeighbor;

/// What makes two top-k queries coalescible: same attributes, same `k` and
/// `ef`, same read snapshot.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct BatchKey {
    /// Embedding attribute ids being searched.
    pub attr_ids: Vec<u32>,
    /// Result count.
    pub k: usize,
    /// Search beam width.
    pub ef: usize,
    /// Read snapshot.
    pub tid: Tid,
}

struct BatchState {
    queries: Vec<Vec<f32>>,
    sealed: bool,
    result: Option<TvResult<Vec<Vec<TypedNeighbor>>>>,
}

struct Batch {
    state: Mutex<BatchState>,
    cv: Condvar,
}

/// One participant's view of a finished batch.
pub struct BatchOutcome {
    /// This query's merged top-k (or the shared error).
    pub result: TvResult<Vec<TypedNeighbor>>,
    /// How many queries executed together.
    pub batch_size: usize,
    /// Whether this caller ran the fan-out for the whole batch.
    pub was_leader: bool,
}

/// The batching stage.
pub struct Batcher {
    window: Duration,
    max_batch: usize,
    pending: Mutex<HashMap<BatchKey, Arc<Batch>>>,
}

impl Batcher {
    /// A batcher that waits up to `window` for followers, capping batches at
    /// `max_batch` queries.
    #[must_use]
    pub fn new(window: Duration, max_batch: usize) -> Self {
        Batcher {
            window,
            max_batch: max_batch.max(1),
            pending: Mutex::new(HashMap::new()),
        }
    }

    /// Submit one query under `key`. Blocks until the batch it joined has
    /// executed via `execute` (run by the batch leader; receives all queries
    /// in join order, returns per-query results in the same order).
    pub fn submit<F>(&self, key: &BatchKey, query: Vec<f32>, execute: F) -> BatchOutcome
    where
        F: FnOnce(&[Vec<f32>]) -> TvResult<Vec<Vec<TypedNeighbor>>>,
    {
        let (batch, my_idx, leader) = self.join(key, query);
        if leader {
            // Give followers the window to join (or until the batch fills).
            let st = batch.state.lock().unwrap_or_else(|e| e.into_inner());
            let max = self.max_batch;
            let (mut st, _) = self.window_wait(&batch, st, |s| s.queries.len() >= max);
            st.sealed = true;
            let queries = st.queries.clone();
            drop(st);

            // Unpublish so late arrivals start a fresh batch. Only remove
            // the entry if it is still *this* batch.
            {
                let mut pending = self.pending.lock().unwrap_or_else(|e| e.into_inner());
                if let Some(cur) = pending.get(key) {
                    if Arc::ptr_eq(cur, &batch) {
                        pending.remove(key);
                    }
                }
            }

            let result = execute(&queries);
            let mut st = batch.state.lock().unwrap_or_else(|e| e.into_inner());
            st.result = Some(result);
            drop(st);
            batch.cv.notify_all();
        }

        let mut st = batch.state.lock().unwrap_or_else(|e| e.into_inner());
        while st.result.is_none() {
            st = batch.cv.wait(st).unwrap_or_else(|e| e.into_inner());
        }
        let batch_size = st.queries.len();
        let result = match st.result.as_ref().unwrap() {
            Ok(all) => Ok(all.get(my_idx).cloned().unwrap_or_default()),
            Err(e) => Err(e.clone()),
        };
        BatchOutcome {
            result,
            batch_size,
            was_leader: leader,
        }
    }

    /// Join (or create) the open batch for `key`. Returns the batch, this
    /// query's index within it, and whether the caller is the leader.
    fn join(&self, key: &BatchKey, query: Vec<f32>) -> (Arc<Batch>, usize, bool) {
        let mut pending = self.pending.lock().unwrap_or_else(|e| e.into_inner());
        if let Some(batch) = pending.get(key).map(Arc::clone) {
            let mut st = batch.state.lock().unwrap_or_else(|e| e.into_inner());
            if !st.sealed && st.queries.len() < self.max_batch {
                st.queries.push(query);
                let idx = st.queries.len() - 1;
                let full = st.queries.len() >= self.max_batch;
                drop(st);
                if full {
                    // Wake the leader out of its window wait early.
                    batch.cv.notify_all();
                }
                return (batch, idx, false);
            }
            // Sealed or full: fall through and open a fresh batch.
        }
        let batch = Arc::new(Batch {
            state: Mutex::new(BatchState {
                queries: vec![query],
                sealed: false,
                result: None,
            }),
            cv: Condvar::new(),
        });
        pending.insert(key.clone(), Arc::clone(&batch));
        (batch, 0, true)
    }

    /// Wait on the batch condvar for up to the window, or until `done`.
    fn window_wait<'a>(
        &self,
        batch: &'a Batch,
        st: std::sync::MutexGuard<'a, BatchState>,
        done: impl Fn(&BatchState) -> bool,
    ) -> (std::sync::MutexGuard<'a, BatchState>, bool) {
        let mut st = st;
        let start = std::time::Instant::now();
        loop {
            if done(&st) {
                return (st, true);
            }
            let elapsed = start.elapsed();
            if elapsed >= self.window {
                return (st, false);
            }
            let (next, _timeout) = batch
                .cv
                .wait_timeout(st, self.window - elapsed)
                .unwrap_or_else(|e| e.into_inner());
            st = next;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use tv_common::{Neighbor, TvError, VertexId};

    fn key() -> BatchKey {
        BatchKey {
            attr_ids: vec![0],
            k: 4,
            ef: 16,
            tid: Tid(1),
        }
    }

    /// Fake executor: each query's "result" encodes the query itself so we
    /// can check routing.
    fn echo(queries: &[Vec<f32>]) -> TvResult<Vec<Vec<TypedNeighbor>>> {
        Ok(queries
            .iter()
            .map(|q| {
                vec![TypedNeighbor {
                    attr_id: 0,
                    vertex_type: 0,
                    neighbor: Neighbor::new(VertexId(q[0] as u64), q[0]),
                }]
            })
            .collect())
    }

    #[test]
    fn solo_query_runs_after_window() {
        let b = Batcher::new(Duration::from_millis(5), 8);
        let out = b.submit(&key(), vec![7.0], echo);
        assert!(out.was_leader);
        assert_eq!(out.batch_size, 1);
        assert_eq!(out.result.unwrap()[0].neighbor.id.0, 7);
    }

    #[test]
    fn concurrent_queries_coalesce_and_route_results() {
        let b = Arc::new(Batcher::new(Duration::from_millis(60), 16));
        let executions = Arc::new(AtomicUsize::new(0));
        let n = 6;
        let mut handles = Vec::new();
        for i in 0..n {
            let b = Arc::clone(&b);
            let executions = Arc::clone(&executions);
            handles.push(std::thread::spawn(move || {
                let out = b.submit(&key(), vec![i as f32], move |qs| {
                    executions.fetch_add(1, Ordering::SeqCst);
                    echo(qs)
                });
                // Each caller gets *its own* query's result back.
                assert_eq!(out.result.unwrap()[0].neighbor.id.0, i as u64);
                out.batch_size
            }));
        }
        let sizes: Vec<usize> = handles.into_iter().map(|h| h.join().unwrap()).collect();
        // All six joined within the window: one execution, batch of six.
        assert!(
            executions.load(Ordering::SeqCst) < n,
            "no coalescing happened"
        );
        assert!(sizes.iter().any(|&s| s > 1), "expected a multi-query batch");
    }

    #[test]
    fn full_batch_executes_without_waiting_out_window() {
        let b = Arc::new(Batcher::new(Duration::from_secs(10), 2));
        let start = std::time::Instant::now();
        let b2 = Arc::clone(&b);
        let h = std::thread::spawn(move || b2.submit(&key(), vec![1.0], echo));
        let out = b.submit(&key(), vec![2.0], echo);
        let other = h.join().unwrap();
        // One of the two was the leader and the batch is capped at 2, so
        // the long window is cut short by the batch filling.
        assert!(start.elapsed() < Duration::from_secs(5));
        assert_eq!(out.result.unwrap()[0].neighbor.id.0, 2);
        assert_eq!(other.result.unwrap()[0].neighbor.id.0, 1);
    }

    #[test]
    fn different_keys_never_coalesce() {
        let b = Arc::new(Batcher::new(Duration::from_millis(40), 16));
        let other_key = BatchKey {
            attr_ids: vec![1],
            ..key()
        };
        let b2 = Arc::clone(&b);
        let h = std::thread::spawn(move || b2.submit(&key(), vec![1.0], echo));
        let out = b.submit(&other_key, vec![2.0], echo);
        let first = h.join().unwrap();
        assert_eq!(out.batch_size, 1);
        assert_eq!(first.batch_size, 1);
    }

    #[test]
    fn shared_error_reaches_every_member() {
        let b = Arc::new(Batcher::new(Duration::from_millis(60), 16));
        let mut handles = Vec::new();
        for i in 0..3 {
            let b = Arc::clone(&b);
            handles.push(std::thread::spawn(move || {
                b.submit(&key(), vec![i as f32], |_| {
                    Err(TvError::Timeout("deadline exceeded".into()))
                })
            }));
        }
        let mut timeout_errors = 0;
        for h in handles {
            let out = h.join().unwrap();
            if matches!(out.result, Err(TvError::Timeout(_))) {
                timeout_errors += 1;
            }
        }
        assert_eq!(timeout_errors, 3);
    }
}
