//! Sessions and tenants.
//!
//! A [`Session`] is the unit of identity the serving layer hands out: it
//! names the *tenant* (the accounting/rate-limiting principal) and the
//! *user* (the `tg-graph::rbac` principal whose grants gate every query).
//! The two are usually the same string but kept separate so one tenant can
//! run under several rbac roles.

use parking_lot::RwLock;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

/// An open session: identity plus per-session defaults.
#[derive(Debug, Clone)]
pub struct Session {
    /// Server-assigned session id.
    pub id: u64,
    /// Tenant for metrics and rate limiting.
    pub tenant: String,
    /// rbac principal whose grants gate query execution.
    pub user: String,
    /// Per-session default deadline (overrides the server default).
    pub deadline: Option<Duration>,
}

impl Session {
    /// Set a per-session default deadline for every request.
    #[must_use]
    pub fn with_deadline(mut self, deadline: Duration) -> Self {
        self.deadline = Some(deadline);
        self
    }
}

/// The registry of open sessions.
#[derive(Default)]
pub struct SessionManager {
    next_id: AtomicU64,
    open: RwLock<HashMap<u64, String>>,
}

impl SessionManager {
    /// Empty registry.
    #[must_use]
    pub fn new() -> Self {
        SessionManager::default()
    }

    /// Open a session for `tenant` acting as rbac principal `user`.
    pub fn open(&self, tenant: &str, user: &str) -> Session {
        let id = self.next_id.fetch_add(1, Ordering::Relaxed);
        self.open.write().insert(id, tenant.to_string());
        Session {
            id,
            tenant: tenant.to_string(),
            user: user.to_string(),
            deadline: None,
        }
    }

    /// Close a session (idempotent).
    pub fn close(&self, session: &Session) {
        self.open.write().remove(&session.id);
    }

    /// Number of open sessions.
    #[must_use]
    pub fn active(&self) -> usize {
        self.open.read().len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn open_close_lifecycle() {
        let mgr = SessionManager::new();
        let a = mgr.open("acme", "acme-reader");
        let b = mgr.open("globex", "globex-reader");
        assert_ne!(a.id, b.id);
        assert_eq!(mgr.active(), 2);
        mgr.close(&a);
        mgr.close(&a); // idempotent
        assert_eq!(mgr.active(), 1);
        mgr.close(&b);
        assert_eq!(mgr.active(), 0);
    }

    #[test]
    fn session_deadline_override() {
        let mgr = SessionManager::new();
        let s = mgr.open("t", "u").with_deadline(Duration::from_millis(50));
        assert_eq!(s.deadline, Some(Duration::from_millis(50)));
    }
}
