//! Per-tenant serving metrics.
//!
//! Counters are plain atomics and latency is a [`LatencyHistogram`]
//! (log2-bucketed, lock-free), so the hot path never takes a lock. The
//! registry renders a JSON snapshot with one object per tenant — the shape
//! documented in `DESIGN.md` under "Serving layer".

use parking_lot::{Mutex, RwLock};
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;
use tv_cluster::MigrationReport;
use tv_common::LatencyHistogram;
use tv_hnsw::SearchStats;

/// Counters and latency for one tenant.
#[derive(Default)]
pub struct TenantMetrics {
    admitted: AtomicU64,
    completed: AtomicU64,
    rejected: AtomicU64,
    rate_limited: AtomicU64,
    timeouts: AtomicU64,
    denied: AtomicU64,
    batched: AtomicU64,
    max_queue_depth: AtomicU64,
    cluster_retries: AtomicU64,
    cluster_hedges: AtomicU64,
    degraded: AtomicU64,
    plans_brute: AtomicU64,
    plans_in_traversal: AtomicU64,
    plans_post_filter: AtomicU64,
    ef_escalations: AtomicU64,
    brute_fallbacks: AtomicU64,
    latency: LatencyHistogram,
}

impl TenantMetrics {
    /// A request passed admission; `queued_at_depth` is the queue depth it
    /// observed (0 = fast path).
    pub fn record_admitted(&self, queued_at_depth: usize) {
        self.admitted.fetch_add(1, Ordering::Relaxed);
        self.max_queue_depth
            .fetch_max(queued_at_depth as u64, Ordering::Relaxed);
    }

    /// A request finished successfully after `elapsed`.
    pub fn record_completed(&self, elapsed: Duration) {
        self.completed.fetch_add(1, Ordering::Relaxed);
        self.latency.record(elapsed);
    }

    /// A request was shed at the admission queue.
    pub fn record_rejected(&self) {
        self.rejected.fetch_add(1, Ordering::Relaxed);
    }

    /// A request was shed by the tenant's token bucket.
    pub fn record_rate_limited(&self) {
        self.rate_limited.fetch_add(1, Ordering::Relaxed);
    }

    /// A request's deadline expired (queued or mid-search).
    pub fn record_timeout(&self) {
        self.timeouts.fetch_add(1, Ordering::Relaxed);
    }

    /// rbac denied the request.
    pub fn record_denied(&self) {
        self.denied.fetch_add(1, Ordering::Relaxed);
    }

    /// The request executed inside a coalesced batch of `size` queries.
    pub fn record_batched(&self, size: usize) {
        if size > 1 {
            self.batched.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// A cluster scatter-gather finished: `retries` replica re-routes and
    /// `hedges` duplicate requests were needed, and the answer was
    /// `degraded` (incomplete coverage) or not.
    pub fn record_cluster(&self, retries: u64, hedges: u64, degraded: bool) {
        self.cluster_retries.fetch_add(retries, Ordering::Relaxed);
        self.cluster_hedges.fetch_add(hedges, Ordering::Relaxed);
        if degraded {
            self.degraded.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Requests that passed admission.
    #[must_use]
    pub fn admitted(&self) -> u64 {
        self.admitted.load(Ordering::Relaxed)
    }

    /// Requests rejected at the queue.
    #[must_use]
    pub fn rejected(&self) -> u64 {
        self.rejected.load(Ordering::Relaxed)
    }

    /// Requests rejected by the rate limiter.
    #[must_use]
    pub fn rate_limited(&self) -> u64 {
        self.rate_limited.load(Ordering::Relaxed)
    }

    /// Requests whose deadline expired.
    #[must_use]
    pub fn timeouts(&self) -> u64 {
        self.timeouts.load(Ordering::Relaxed)
    }

    /// Requests denied by rbac.
    #[must_use]
    pub fn denied(&self) -> u64 {
        self.denied.load(Ordering::Relaxed)
    }

    /// Deepest queue position any request of this tenant observed.
    #[must_use]
    pub fn max_queue_depth(&self) -> u64 {
        self.max_queue_depth.load(Ordering::Relaxed)
    }

    /// Replica re-routes performed for this tenant's cluster queries.
    #[must_use]
    pub fn cluster_retries(&self) -> u64 {
        self.cluster_retries.load(Ordering::Relaxed)
    }

    /// Hedged (duplicate) cluster requests sent for this tenant.
    #[must_use]
    pub fn cluster_hedges(&self) -> u64 {
        self.cluster_hedges.load(Ordering::Relaxed)
    }

    /// Cluster queries answered with incomplete coverage.
    #[must_use]
    pub fn degraded(&self) -> u64 {
        self.degraded.load(Ordering::Relaxed)
    }

    /// The latency histogram (successful requests only).
    #[must_use]
    pub fn latency(&self) -> &LatencyHistogram {
        &self.latency
    }

    /// Accumulate the filtered-search planner's routing counters from one
    /// query's [`SearchStats`] (one count per segment search routed).
    pub fn record_plans(&self, stats: &SearchStats) {
        self.plans_brute
            .fetch_add(stats.plans_brute, Ordering::Relaxed);
        self.plans_in_traversal
            .fetch_add(stats.plans_in_traversal, Ordering::Relaxed);
        self.plans_post_filter
            .fetch_add(stats.plans_post_filter, Ordering::Relaxed);
        self.ef_escalations
            .fetch_add(stats.ef_escalations, Ordering::Relaxed);
        self.brute_fallbacks
            .fetch_add(stats.brute_fallbacks, Ordering::Relaxed);
    }

    /// Segment searches the planner routed to an exact scan.
    #[must_use]
    pub fn plans_brute(&self) -> u64 {
        self.plans_brute.load(Ordering::Relaxed)
    }

    /// Segment searches the planner routed to in-traversal filtering.
    #[must_use]
    pub fn plans_in_traversal(&self) -> u64 {
        self.plans_in_traversal.load(Ordering::Relaxed)
    }

    /// Segment searches the planner routed to beam + post-filter.
    #[must_use]
    pub fn plans_post_filter(&self) -> u64 {
        self.plans_post_filter.load(Ordering::Relaxed)
    }

    /// Starvation escalations (doubled `ef` and retried).
    #[must_use]
    pub fn ef_escalations(&self) -> u64 {
        self.ef_escalations.load(Ordering::Relaxed)
    }

    /// Starvation escalations that fell back to an exact scan.
    #[must_use]
    pub fn brute_fallbacks(&self) -> u64 {
        self.brute_fallbacks.load(Ordering::Relaxed)
    }

    /// Flat JSON object for this tenant.
    #[must_use]
    pub fn snapshot(&self) -> serde_json::Value {
        let (p50, p95, p99) = self.latency.percentiles();
        let ms = |d: Duration| d.as_secs_f64() * 1e3;
        let mut m = serde_json::Map::new();
        m.insert("admitted".into(), self.admitted().into());
        m.insert(
            "batched".into(),
            self.batched.load(Ordering::Relaxed).into(),
        );
        m.insert("cluster_hedges".into(), self.cluster_hedges().into());
        m.insert("cluster_retries".into(), self.cluster_retries().into());
        m.insert(
            "completed".into(),
            self.completed.load(Ordering::Relaxed).into(),
        );
        m.insert("degraded".into(), self.degraded().into());
        m.insert("denied".into(), self.denied().into());
        m.insert("latency_count".into(), self.latency.count().into());
        m.insert("latency_max_ms".into(), ms(self.latency.max()).into());
        m.insert("latency_mean_ms".into(), ms(self.latency.mean()).into());
        m.insert("latency_p50_ms".into(), ms(p50).into());
        m.insert("latency_p95_ms".into(), ms(p95).into());
        m.insert("latency_p99_ms".into(), ms(p99).into());
        m.insert("max_queue_depth".into(), self.max_queue_depth().into());
        m.insert("plans_brute".into(), self.plans_brute().into());
        m.insert(
            "plans_in_traversal".into(),
            self.plans_in_traversal().into(),
        );
        m.insert("plans_post_filter".into(), self.plans_post_filter().into());
        m.insert("plan_ef_escalations".into(), self.ef_escalations().into());
        m.insert("plan_brute_fallbacks".into(), self.brute_fallbacks().into());
        m.insert("rate_limited".into(), self.rate_limited().into());
        m.insert("rejected".into(), self.rejected().into());
        m.insert("timeouts".into(), self.timeouts().into());
        serde_json::Value::Object(m)
    }
}

/// System-wide durability counters (checkpoints are not tenant work).
#[derive(Default)]
pub struct DurabilityMetrics {
    checkpoints: AtomicU64,
    checkpoint_failures: AtomicU64,
    last_checkpoint_tid: AtomicU64,
    last_checkpoint_files: AtomicU64,
    wal_records_kept: AtomicU64,
    checkpoint_latency: LatencyHistogram,
}

impl DurabilityMetrics {
    /// A checkpoint completed at `tid`, writing `files` data files and
    /// leaving `wal_kept` records in the rotated WAL.
    pub fn record_checkpoint(&self, tid: u64, files: usize, wal_kept: usize, elapsed: Duration) {
        self.checkpoints.fetch_add(1, Ordering::Relaxed);
        self.last_checkpoint_tid.store(tid, Ordering::Relaxed);
        self.last_checkpoint_files
            .store(files as u64, Ordering::Relaxed);
        self.wal_records_kept
            .store(wal_kept as u64, Ordering::Relaxed);
        self.checkpoint_latency.record(elapsed);
    }

    /// A checkpoint attempt failed.
    pub fn record_checkpoint_failure(&self) {
        self.checkpoint_failures.fetch_add(1, Ordering::Relaxed);
    }

    /// Completed checkpoints.
    #[must_use]
    pub fn checkpoints(&self) -> u64 {
        self.checkpoints.load(Ordering::Relaxed)
    }

    /// Failed checkpoint attempts.
    #[must_use]
    pub fn checkpoint_failures(&self) -> u64 {
        self.checkpoint_failures.load(Ordering::Relaxed)
    }

    /// TID of the most recent completed checkpoint.
    #[must_use]
    pub fn last_checkpoint_tid(&self) -> u64 {
        self.last_checkpoint_tid.load(Ordering::Relaxed)
    }

    /// Flat JSON object for the durability subsystem.
    #[must_use]
    pub fn snapshot(&self) -> serde_json::Value {
        let ms = |d: Duration| d.as_secs_f64() * 1e3;
        let mut m = serde_json::Map::new();
        m.insert("checkpoints".into(), self.checkpoints().into());
        m.insert(
            "checkpoint_failures".into(),
            self.checkpoint_failures().into(),
        );
        m.insert(
            "last_checkpoint_tid".into(),
            self.last_checkpoint_tid().into(),
        );
        m.insert(
            "last_checkpoint_files".into(),
            self.last_checkpoint_files.load(Ordering::Relaxed).into(),
        );
        m.insert(
            "wal_records_kept".into(),
            self.wal_records_kept.load(Ordering::Relaxed).into(),
        );
        m.insert(
            "checkpoint_mean_ms".into(),
            ms(self.checkpoint_latency.mean()).into(),
        );
        serde_json::Value::Object(m)
    }
}

/// System-wide elastic-cluster counters (segment migrations are admin
/// work, not tenant work).
#[derive(Default)]
pub struct ClusterMetrics {
    migrations_completed: AtomicU64,
    migrations_aborted: AtomicU64,
    shipped_bytes: AtomicU64,
    catchup_records: AtomicU64,
    last_flip_pause_us: AtomicU64,
    placement_generation: AtomicU64,
    migration_errors: AtomicU64,
    last_error: Mutex<Option<String>>,
}

impl ClusterMetrics {
    /// A migration completed (or was found already complete on retry).
    pub fn record_completed(&self, report: &MigrationReport) {
        self.migrations_completed.fetch_add(1, Ordering::Relaxed);
        self.shipped_bytes
            .fetch_add(report.shipped_bytes, Ordering::Relaxed);
        self.catchup_records
            .fetch_add(report.catchup_records, Ordering::Relaxed);
        self.last_flip_pause_us
            .store(report.flip_pause.as_micros() as u64, Ordering::Relaxed);
        self.placement_generation
            .fetch_max(report.generation, Ordering::Relaxed);
    }

    /// A migration aborted cleanly; `detail` names the plan and error.
    pub fn record_aborted(&self, detail: String) {
        self.migrations_aborted.fetch_add(1, Ordering::Relaxed);
        *self.last_error.lock() = Some(detail);
    }

    /// Sync the error count from the runtime's migration-error log.
    pub fn set_migration_errors(&self, count: u64) {
        self.migration_errors.store(count, Ordering::Relaxed);
    }

    /// Completed migrations.
    #[must_use]
    pub fn migrations_completed(&self) -> u64 {
        self.migrations_completed.load(Ordering::Relaxed)
    }

    /// Cleanly-aborted migrations.
    #[must_use]
    pub fn migrations_aborted(&self) -> u64 {
        self.migrations_aborted.load(Ordering::Relaxed)
    }

    /// Newest placement generation any completed migration produced.
    #[must_use]
    pub fn placement_generation(&self) -> u64 {
        self.placement_generation.load(Ordering::Relaxed)
    }

    /// Most recent abort detail, if any migration has failed.
    #[must_use]
    pub fn last_error(&self) -> Option<String> {
        self.last_error.lock().clone()
    }

    /// Flat JSON object for the elastic-cluster subsystem.
    #[must_use]
    pub fn snapshot(&self) -> serde_json::Value {
        let mut m = serde_json::Map::new();
        m.insert(
            "migrations_completed".into(),
            self.migrations_completed().into(),
        );
        m.insert(
            "migrations_aborted".into(),
            self.migrations_aborted().into(),
        );
        m.insert(
            "shipped_bytes".into(),
            self.shipped_bytes.load(Ordering::Relaxed).into(),
        );
        m.insert(
            "catchup_records".into(),
            self.catchup_records.load(Ordering::Relaxed).into(),
        );
        m.insert(
            "last_flip_pause_us".into(),
            self.last_flip_pause_us.load(Ordering::Relaxed).into(),
        );
        m.insert(
            "placement_generation".into(),
            self.placement_generation().into(),
        );
        m.insert(
            "migration_errors".into(),
            self.migration_errors.load(Ordering::Relaxed).into(),
        );
        m.insert(
            "last_error".into(),
            self.last_error()
                .map_or(serde_json::Value::Null, Into::into),
        );
        serde_json::Value::Object(m)
    }
}

/// Registry of per-tenant metrics, get-or-create by tenant name, plus the
/// system-wide durability counters.
#[derive(Default)]
pub struct MetricsRegistry {
    tenants: RwLock<HashMap<String, Arc<TenantMetrics>>>,
    durability: DurabilityMetrics,
    cluster: ClusterMetrics,
}

impl MetricsRegistry {
    /// Empty registry.
    #[must_use]
    pub fn new() -> Self {
        MetricsRegistry::default()
    }

    /// Metrics handle for `tenant`, created on first use.
    pub fn tenant(&self, tenant: &str) -> Arc<TenantMetrics> {
        if let Some(m) = self.tenants.read().get(tenant) {
            return Arc::clone(m);
        }
        let mut w = self.tenants.write();
        Arc::clone(w.entry(tenant.to_string()).or_default())
    }

    /// The durability (checkpoint/recovery) counters.
    #[must_use]
    pub fn durability(&self) -> &DurabilityMetrics {
        &self.durability
    }

    /// The elastic-cluster (segment migration) counters.
    #[must_use]
    pub fn cluster(&self) -> &ClusterMetrics {
        &self.cluster
    }

    /// JSON snapshot: one object per tenant, keyed by tenant name, plus
    /// `__durability__` (checkpoint subsystem) and `__cluster__` (segment
    /// migration) objects.
    #[must_use]
    pub fn snapshot(&self) -> serde_json::Value {
        let tenants = self.tenants.read();
        let mut m = serde_json::Map::new();
        for (name, metrics) in tenants.iter() {
            m.insert(name.clone(), metrics.snapshot());
        }
        m.insert("__durability__".into(), self.durability.snapshot());
        m.insert("__cluster__".into(), self.cluster.snapshot());
        serde_json::Value::Object(m)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_and_snapshot() {
        let reg = MetricsRegistry::new();
        let t = reg.tenant("acme");
        t.record_admitted(3);
        t.record_admitted(1);
        t.record_completed(Duration::from_millis(4));
        t.record_completed(Duration::from_millis(8));
        t.record_rejected();
        t.record_rate_limited();
        t.record_timeout();
        t.record_denied();
        t.record_batched(4);
        t.record_batched(1); // not counted: batch of one
        t.record_cluster(3, 1, true);
        t.record_cluster(2, 0, false);

        assert_eq!(t.admitted(), 2);
        assert_eq!(t.max_queue_depth(), 3);
        let snap = reg.snapshot();
        let acme = snap.get("acme").unwrap();
        assert_eq!(acme.get("admitted").unwrap().as_u64(), Some(2));
        assert_eq!(acme.get("completed").unwrap().as_u64(), Some(2));
        assert_eq!(acme.get("rejected").unwrap().as_u64(), Some(1));
        assert_eq!(acme.get("rate_limited").unwrap().as_u64(), Some(1));
        assert_eq!(acme.get("timeouts").unwrap().as_u64(), Some(1));
        assert_eq!(acme.get("denied").unwrap().as_u64(), Some(1));
        assert_eq!(acme.get("batched").unwrap().as_u64(), Some(1));
        assert_eq!(acme.get("max_queue_depth").unwrap().as_u64(), Some(3));
        assert_eq!(acme.get("cluster_retries").unwrap().as_u64(), Some(5));
        assert_eq!(acme.get("cluster_hedges").unwrap().as_u64(), Some(1));
        assert_eq!(acme.get("degraded").unwrap().as_u64(), Some(1));
        assert!(acme.get("latency_p99_ms").unwrap().as_f64().unwrap() > 0.0);
    }

    #[test]
    fn tenant_handle_is_shared() {
        let reg = MetricsRegistry::new();
        let a = reg.tenant("t");
        let b = reg.tenant("t");
        a.record_rejected();
        assert_eq!(b.rejected(), 1);
        assert_eq!(reg.tenants.read().len(), 1);
    }
}
