//! # tv-server
//!
//! The multi-tenant query-serving subsystem: an in-process gateway fronting
//! the GSQL executor (`tv-gsql`) and the cluster runtime (`tv-cluster`).
//! The paper presents TigerVector as a *service inside* TigerGraph handling
//! concurrent declarative vector/hybrid queries; this crate is that tier —
//! the layer a production RAG data plane needs between clients and the
//! index.
//!
//! ```text
//!   client ──▶ Session ──▶ Admission ──▶ Batcher ──▶ Executor ──▶ Merge
//!              (tenant,    (permits,     (coalesce    (GSQL /      (global
//!               rbac        bounded       same-shape   segment      top-k)
//!               user)       FIFO queue,   top-k)       fan-out)
//!                           token
//!                           buckets)
//! ```
//!
//! Responsibilities:
//!
//! * [`session`] — session handles carrying a tenant id and an rbac
//!   principal, wired into `tg-graph::rbac` so one grant set governs graph
//!   rows *and* vectors (§1's data-governance argument);
//! * [`admission`] — a semaphore-bounded executor pool behind a bounded
//!   FIFO queue with explicit rejection ([`tv_common::TvError::Overloaded`])
//!   and per-tenant token-bucket rate limits;
//! * [`batch`] — leader/follower coalescing of vector top-k queries that
//!   share an embedding attribute into one multi-query segment fan-out
//!   (`EmbeddingService::top_k_many`), bit-identical to one-by-one
//!   execution;
//! * deadlines — every request carries a [`tv_common::Deadline`] checked at
//!   segment-search boundaries (in `tv-embedding` and the `tv-cluster`
//!   worker loop) so a slow scatter-gather is abandoned mid-flight;
//! * [`metrics`] — per-tenant counters and latency histograms
//!   (p50/p95/p99, queue depth, rejection/timeout counts) exported as JSON.

pub mod admission;
pub mod batch;
pub mod metrics;
pub mod server;
pub mod session;

pub use admission::{AdmissionConfig, AdmissionController, AdmitInfo, Permit, RateLimitConfig};
pub use batch::{BatchKey, BatchOutcome, Batcher};
pub use metrics::{ClusterMetrics, MetricsRegistry, TenantMetrics};
pub use server::{Server, ServerConfig};
pub use session::{Session, SessionManager};
