//! End-to-end serving-layer tests: concurrent tenants driving GSQL vector
//! queries through the full session → admission → batcher → executor →
//! merge pipeline, with rbac enforcement and per-tenant metrics.

use std::sync::Arc;
use std::time::Duration;
use tg_graph::{AccessControl, Graph, Role};
use tg_storage::{AttrType, AttrValue};
use tv_cluster::{ClusterRuntime, FaultKind, MigrationPlan, RuntimeConfig};
use tv_common::ids::{LocalId, SegmentLayout};
use tv_common::{
    Deadline, DistanceMetric, RetryPolicy, SegmentId, SplitMix64, Tid, TvError, VertexId,
};
use tv_embedding::{EmbeddingSegment, EmbeddingTypeDef, ServiceConfig};
use tv_gsql::{Params, Value};
use tv_hnsw::DeltaRecord;
use tv_server::{AdmissionConfig, Server, ServerConfig};

const DIM: usize = 4;
const DOCS: usize = 24;

/// Docs with a public/secret classification and an embedding, three
/// segments' worth, plus an ACL with unrestricted readers, a row-restricted
/// analyst, and nothing for everyone else.
fn serving_fixture() -> (Arc<Graph>, Arc<AccessControl>, Vec<VertexId>, Vec<Vec<f32>>) {
    let graph = Graph::with_config(
        SegmentLayout::with_capacity(8),
        ServiceConfig {
            planner: tv_common::PlannerConfig::default().with_brute_threshold(4),
            query_threads: 2,
            default_ef: 32,
            build_threads: 1,
        },
    );
    graph
        .create_vertex_type("Doc", &[("classification", AttrType::Str)])
        .unwrap();
    graph
        .add_embedding_attribute(
            "Doc",
            EmbeddingTypeDef::new("emb", DIM, "M", DistanceMetric::L2),
        )
        .unwrap();
    let ids = graph.allocate_many(0, DOCS).unwrap();
    let mut rng = SplitMix64::new(7);
    let mut vecs = Vec::new();
    let mut txn = graph.txn();
    for (i, &id) in ids.iter().enumerate() {
        let v: Vec<f32> = (0..DIM).map(|_| rng.next_f32() * 10.0).collect();
        let class = if i % 2 == 0 { "public" } else { "secret" };
        txn = txn
            .upsert_vertex(0, id, vec![AttrValue::Str(class.into())])
            .set_vector(0, id, v.clone());
        vecs.push(v);
    }
    txn.commit().unwrap();

    let acl = AccessControl::new();
    acl.define_role("reader", Role::default().allow_type(0));
    acl.define_role(
        "public-only",
        Role::default().allow_rows(0, "classification", AttrValue::Str("public".into())),
    );
    for user in ["u-acme", "u-globex", "u-initech", "u-umbrella"] {
        acl.assign(user, "reader").unwrap();
    }
    acl.assign("u-restricted", "public-only").unwrap();
    (Arc::new(graph), Arc::new(acl), ids, vecs)
}

fn topk_params(qv: &[f32]) -> Params {
    let mut p = Params::new();
    p.insert("qv".into(), Value::Vector(qv.to_vec()));
    p
}

const TOPK_SRC: &str = "SELECT s FROM (s:Doc) ORDER BY VECTOR_DIST(s.emb, $qv) LIMIT 3";

#[test]
fn four_tenants_admission_rbac_and_metrics_end_to_end() {
    let (graph, acl, _ids, vecs) = serving_fixture();
    let server = Arc::new(Server::new(
        Arc::clone(&graph),
        Arc::clone(&acl),
        ServerConfig {
            admission: AdmissionConfig {
                executor_permits: 1,
                queue_capacity: 4,
                rate_limit: None,
            },
            batch_window: Duration::from_micros(100),
            max_batch: 8,
            default_deadline: None,
        },
    ));
    let tenants = [
        ("acme", "u-acme"),
        ("globex", "u-globex"),
        ("initech", "u-initech"),
        ("umbrella", "u-umbrella"),
    ];

    // --- Phase A: burst beyond the queue bound, deterministically. -------
    // Occupy the only executor permit so every arrival must queue, then
    // fill the queue with acme requests...
    let (gate, _) = server.admission().admit("gate", Deadline::none()).unwrap();
    let fillers: Vec<_> = (0..4)
        .map(|_| {
            let server = Arc::clone(&server);
            let qv = vecs[0].clone();
            std::thread::spawn(move || {
                let session = server.open_session("acme", "u-acme");
                server.query(&session, TOPK_SRC, &topk_params(&qv))
            })
        })
        .collect();
    while server.admission().queue_depth() < 4 {
        std::thread::yield_now();
    }
    // ...so a burst from the other tenants is shed with Overloaded.
    let mut rejections = 0;
    for (tenant, user) in &tenants[1..] {
        let session = server.open_session(tenant, user);
        match server.query(&session, TOPK_SRC, &topk_params(&vecs[1])) {
            Err(TvError::Overloaded(_)) => rejections += 1,
            other => panic!("expected Overloaded, got {other:?}"),
        }
    }
    assert_eq!(rejections, 3, "queue bound must shed the burst");
    drop(gate);
    for filler in fillers {
        let rows = filler.join().unwrap().unwrap();
        assert_eq!(rows.rows().len(), 3);
    }

    // --- Phase B: 4 tenants querying concurrently, all succeeding. ------
    let solo: Vec<_> = (0..tenants.len())
        .map(|i| tv_gsql::execute(&graph, TOPK_SRC, &topk_params(&vecs[i + 2])).unwrap())
        .collect();
    let handles: Vec<_> = tenants
        .iter()
        .enumerate()
        .map(|(i, &(tenant, user))| {
            let server = Arc::clone(&server);
            let qv = vecs[i + 2].clone();
            std::thread::spawn(move || {
                let session = server.open_session(tenant, user);
                let mut outputs = Vec::new();
                for _ in 0..4 {
                    outputs.push(server.query(&session, TOPK_SRC, &topk_params(&qv)).unwrap());
                }
                server.close_session(&session);
                outputs
            })
        })
        .collect();
    for (i, h) in handles.into_iter().enumerate() {
        for out in h.join().unwrap() {
            // Concurrency never changes answers.
            assert_eq!(out.rows(), solo[i].rows());
        }
    }

    // --- Phase C: rbac denial for an unauthorized tenant. ----------------
    let mallory = server.open_session("mallory", "u-mallory");
    let err = server
        .query(&mallory, TOPK_SRC, &topk_params(&vecs[0]))
        .unwrap_err();
    assert!(matches!(err, TvError::PermissionDenied(_)));

    // Row-restricted tenant only ever sees public docs.
    let restricted = server.open_session("shady", "u-restricted");
    let hits = server
        .vector_top_k(&restricted, &[0], vecs[1].clone(), 5)
        .unwrap();
    assert!(!hits.is_empty());
    for hit in &hits {
        let i = _ids.iter().position(|&x| x == hit.neighbor.id).unwrap();
        assert_eq!(i % 2, 0, "doc {i} is secret but u-restricted saw it");
    }

    // --- Phase D: an already-expired session deadline times out. ---------
    let hurried = server
        .open_session("acme", "u-acme")
        .with_deadline(Duration::ZERO);
    let err = server
        .query(&hurried, TOPK_SRC, &topk_params(&vecs[0]))
        .unwrap_err();
    assert!(matches!(err, TvError::Timeout(_)));

    // --- Metrics: every counter the pipeline touched is populated. -------
    let snap = server.metrics_json();
    let acme = snap.get("acme").unwrap();
    assert!(acme.get("admitted").unwrap().as_u64().unwrap() > 0);
    assert!(acme.get("completed").unwrap().as_u64().unwrap() > 0);
    assert!(
        acme.get("latency_p99_ms").unwrap().as_f64().unwrap() > 0.0,
        "p99 must be non-zero once latencies are recorded"
    );
    assert!(
        acme.get("max_queue_depth").unwrap().as_u64().unwrap() >= 1,
        "the phase-A acme request observed queue depth 1"
    );
    assert!(acme.get("timeouts").unwrap().as_u64().unwrap() >= 1);
    for (tenant, _) in &tenants[1..] {
        let t = snap.get(tenant).unwrap();
        assert!(
            t.get("rejected").unwrap().as_u64().unwrap() >= 1,
            "tenant {tenant} was shed during the burst"
        );
    }
    assert!(
        snap.get("mallory")
            .unwrap()
            .get("denied")
            .unwrap()
            .as_u64()
            .unwrap()
            >= 1
    );
    // Phase B closed its 4 sessions; A/C/D left 4 + 3 + 2 + 1 open.
    assert_eq!(server.active_sessions(), 10);
}

/// A small replicated cluster the server can scatter into, loaded with
/// deterministic vectors.
fn serving_cluster(degraded_mode: bool) -> (Arc<ClusterRuntime>, Vec<Vec<f32>>) {
    let runtime = ClusterRuntime::start(RuntimeConfig {
        servers: 4,
        replication: 2,
        planner: tv_common::PlannerConfig::default().with_brute_threshold(4),
        retry: RetryPolicy {
            max_retries: 2,
            attempt_timeout: Duration::from_millis(100),
            backoff: Duration::from_millis(1),
            hedge_after: None,
        },
        degraded_mode,
        build_threads: 1,
    });
    let def = EmbeddingTypeDef::new("e", DIM, "M", DistanceMetric::L2);
    let mut rng = SplitMix64::new(11);
    let mut vecs = Vec::new();
    let mut tid = 0u64;
    for s in 0..8u32 {
        let seg = Arc::new(EmbeddingSegment::new(SegmentId(s), &def, 256));
        let mut recs = Vec::new();
        for l in 0..20u32 {
            tid += 1;
            let v: Vec<f32> = (0..DIM).map(|_| rng.next_f32() * 5.0).collect();
            recs.push(DeltaRecord::upsert(
                VertexId::new(SegmentId(s), LocalId(l)),
                Tid(tid),
                v.clone(),
            ));
            vecs.push(v);
        }
        seg.append_deltas(&recs).unwrap();
        seg.delta_merge(Tid(tid)).unwrap();
        seg.index_merge(Tid(tid)).unwrap();
        runtime.add_segment(seg);
    }
    (Arc::new(runtime), vecs)
}

#[test]
fn cluster_topk_records_retries_and_coverage_in_tenant_metrics() {
    let (graph, acl, _ids, _vecs) = serving_fixture();
    let (cluster, vecs) = serving_cluster(false);
    let server =
        Server::new(graph, acl, ServerConfig::default()).with_cluster(Arc::clone(&cluster));
    let session = server.open_session("acme", "u-acme");

    // Healthy scatter: complete coverage, nothing retried.
    let healthy = server
        .cluster_top_k(&session, &vecs[3], 5, 64, Tid::MAX)
        .unwrap();
    assert!(healthy.coverage.is_complete());
    assert_eq!(healthy.neighbors.len(), 5);

    // One injected crash: the replica retry path answers bit-identically
    // and the tenant's counters record the recovery.
    cluster.inject_fault(1, FaultKind::CrashOnRecv, Some(1));
    let recovered = server
        .cluster_top_k(&session, &vecs[3], 5, 64, Tid::MAX)
        .unwrap();
    assert_eq!(
        healthy.neighbors, recovered.neighbors,
        "replica retry must not change the answer"
    );
    assert!(recovered.coverage.is_complete());
    assert!(recovered.retries > 0);

    let snap = server.metrics_json();
    let acme = snap.get("acme").unwrap();
    assert!(acme.get("cluster_retries").unwrap().as_u64().unwrap() > 0);
    assert_eq!(acme.get("degraded").unwrap().as_u64(), Some(0));
    assert_eq!(acme.get("completed").unwrap().as_u64(), Some(2));
}

#[test]
fn cluster_topk_degraded_answer_counts_against_the_tenant() {
    let (graph, acl, _ids, _vecs) = serving_fixture();
    let (cluster, vecs) = serving_cluster(true);
    // Take down a server AND its replica peer so two segments lose every
    // holder: with degraded mode on, the request still succeeds.
    cluster.fail_server(2);
    cluster.fail_server(3);
    let server =
        Server::new(graph, acl, ServerConfig::default()).with_cluster(Arc::clone(&cluster));
    let session = server.open_session("acme", "u-acme");
    let r = server
        .cluster_top_k(&session, &vecs[0], 5, 64, Tid::MAX)
        .unwrap();
    assert!(!r.coverage.is_complete());
    assert_eq!(r.coverage.segments_total, 8);
    assert!(!r.unsearched.is_empty());
    assert!(!r.neighbors.is_empty());

    let snap = server.metrics_json();
    let acme = snap.get("acme").unwrap();
    assert_eq!(acme.get("degraded").unwrap().as_u64(), Some(1));
    assert_eq!(acme.get("completed").unwrap().as_u64(), Some(1));
}

#[test]
fn batched_vector_topk_is_bit_identical_to_solo() {
    let (graph, acl, _ids, vecs) = serving_fixture();
    let server = Arc::new(Server::new(
        Arc::clone(&graph),
        Arc::clone(&acl),
        ServerConfig {
            admission: AdmissionConfig {
                executor_permits: 8,
                queue_capacity: 16,
                rate_limit: None,
            },
            // Generous window so concurrent queries reliably coalesce.
            batch_window: Duration::from_millis(50),
            max_batch: 8,
            default_deadline: None,
        },
    ));

    let n = 6;
    let k = 4;
    let tid = graph.read_tid();
    let ef = graph.embeddings().config().default_ef.max(k);
    let solo: Vec<_> = (0..n)
        .map(|i| {
            let (hits, _) = graph
                .vector_search(&[0], &vecs[i], k, ef, None, tid)
                .unwrap();
            hits
        })
        .collect();

    let handles: Vec<_> = (0..n)
        .map(|i| {
            let server = Arc::clone(&server);
            let qv = vecs[i].clone();
            std::thread::spawn(move || {
                let session = server.open_session("acme", "u-acme");
                server.vector_top_k(&session, &[0], qv, k).unwrap()
            })
        })
        .collect();
    for (i, h) in handles.into_iter().enumerate() {
        let batched = h.join().unwrap();
        assert_eq!(batched, solo[i], "batched result differs for query {i}");
    }

    // The point of the exercise: they actually shared a fan-out.
    let snap = server.metrics_json();
    assert!(
        snap.get("acme")
            .unwrap()
            .get("batched")
            .unwrap()
            .as_u64()
            .unwrap()
            > 0,
        "no queries coalesced — batching never engaged"
    );
}

/// The serving layer can checkpoint a durable graph online; queries before
/// and after see identical state, the durability metrics record the
/// checkpoint, and a recovered server serves the same answers.
#[test]
fn server_checkpoint_and_recovery_serving_continuity() {
    let dir = std::env::temp_dir().join(format!("tv-serve-ckpt-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let layout = SegmentLayout::with_capacity(8);
    let cfg = ServiceConfig {
        planner: tv_common::PlannerConfig::default().with_brute_threshold(1024), // exact search → comparable results
        query_threads: 1,
        default_ef: 32,
        build_threads: 1,
    };
    let setup = |g: &Graph| {
        g.create_vertex_type("Doc", &[("classification", AttrType::Str)])
            .unwrap();
        g.add_embedding_attribute(
            "Doc",
            EmbeddingTypeDef::new("emb", DIM, "M", DistanceMetric::L2),
        )
        .unwrap();
    };
    let acl = Arc::new(AccessControl::new());
    acl.define_role("reader", Role::default().allow_type(0));
    acl.assign("u", "reader").unwrap();

    let mut rng = SplitMix64::new(41);
    let vecs: Vec<Vec<f32>> = (0..DOCS)
        .map(|_| (0..DIM).map(|_| rng.next_f32() * 10.0).collect())
        .collect();
    let before;
    {
        let graph = Graph::durable(&dir, layout, cfg).unwrap();
        setup(&graph);
        let ids = graph.allocate_many(0, DOCS).unwrap();
        let mut txn = graph.txn();
        for (i, &id) in ids.iter().enumerate() {
            txn = txn
                .upsert_vertex(0, id, vec![AttrValue::Str("public".into())])
                .set_vector(0, id, vecs[i].clone());
        }
        txn.commit().unwrap();
        let graph = Arc::new(graph);
        let server = Server::new(
            Arc::clone(&graph),
            Arc::clone(&acl),
            ServerConfig::default(),
        );
        let session = server.open_session("acme", "u");
        before = server
            .vector_top_k(&session, &[0], vecs[3].clone(), 3)
            .unwrap();
        let info = server.checkpoint().unwrap();
        assert!(info.files > 0);
        assert_eq!(info.wal_records_kept, 0);
        // Serving continues after the checkpoint with identical answers.
        let after = server
            .vector_top_k(&session, &[0], vecs[3].clone(), 3)
            .unwrap();
        assert_eq!(after, before);
        let snap = server.metrics_json();
        let dur = snap.get("__durability__").unwrap();
        assert_eq!(dur.get("checkpoints").unwrap().as_u64(), Some(1));
        assert_eq!(dur.get("last_checkpoint_tid").unwrap().as_u64(), Some(1));
    }
    // A fresh process recovers from the checkpoint and serves the same
    // results.
    let graph = Graph::durable(&dir, layout, cfg).unwrap();
    setup(&graph);
    let report = graph.recover().unwrap();
    assert_eq!(report.checkpoint, Some(Tid(1)));
    assert_eq!(report.replayed, 0);
    let server = Server::new(Arc::new(graph), acl, ServerConfig::default());
    let session = server.open_session("acme", "u");
    let recovered = server
        .vector_top_k(&session, &[0], vecs[3].clone(), 3)
        .unwrap();
    assert_eq!(recovered, before);
    // An in-memory graph cannot checkpoint; the failure is counted.
    let mem = Arc::new(Graph::new());
    let mem_server = Server::new(mem, Arc::new(AccessControl::new()), ServerConfig::default());
    assert!(mem_server.checkpoint().is_err());
    assert_eq!(mem_server.metrics().durability().checkpoint_failures(), 1);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn migrate_segment_is_admin_triggered_and_lands_in_cluster_metrics() {
    let (graph, acl, _ids, _vecs) = serving_fixture();
    let (cluster, cvecs) = serving_cluster(false);
    let server =
        Server::new(graph, acl, ServerConfig::default()).with_cluster(Arc::clone(&cluster));
    let session = server.open_session("acme", "u-acme");
    let staging = std::env::temp_dir().join(format!("tv-migrate-serving-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&staging);

    let before = server
        .cluster_top_k(&session, &cvecs[3], 5, 64, Tid::MAX)
        .unwrap();
    assert!(before.coverage.is_complete());

    // Admin-trigger a legal move: any holder of segment 0 to any
    // non-holder.
    let table = cluster.placement();
    let seg = SegmentId(0);
    let from = table.holders(seg)[0];
    let to = (0..4).find(|s| !table.holds(seg, *s)).unwrap();
    let report = server
        .migrate_segment(
            MigrationPlan {
                segment: seg,
                from,
                to,
            },
            &staging,
        )
        .unwrap();
    assert!(!report.already_complete);
    assert!(report.shipped_bytes > 0);
    assert_eq!(report.generation, cluster.generation());
    assert!(report.generation > 0);

    // Serving continues across the flip with identical answers.
    let after = server
        .cluster_top_k(&session, &cvecs[3], 5, 64, Tid::MAX)
        .unwrap();
    assert!(after.coverage.is_complete());
    assert_eq!(before.neighbors, after.neighbors);

    // An illegal plan (destination already holds the segment) aborts
    // cleanly and is recorded alongside the completion.
    let bad_to = cluster.placement().holders(seg)[0];
    let err = server
        .migrate_segment(
            MigrationPlan {
                segment: seg,
                from: bad_to,
                to: bad_to,
            },
            &staging,
        )
        .unwrap_err();
    assert!(matches!(err, TvError::InvalidArgument(_)), "{err}");

    let snap = server.metrics_json();
    let cm = snap.get("__cluster__").unwrap();
    assert_eq!(cm.get("migrations_completed").unwrap().as_u64(), Some(1));
    assert_eq!(cm.get("migrations_aborted").unwrap().as_u64(), Some(1));
    assert!(cm.get("shipped_bytes").unwrap().as_u64().unwrap() > 0);
    assert_eq!(
        cm.get("placement_generation").unwrap().as_u64(),
        Some(report.generation)
    );
    assert!(cm.get("last_error").unwrap().as_str().is_some());
    let _ = std::fs::remove_dir_all(&staging);
}
