//! Explicit per-segment filter policy for scatter-gather queries.
//!
//! The runtime used to take a bare `HashMap<SegmentId, Bitmap>`: a segment
//! *absent* from the map was silently searched **unfiltered**. For a
//! pre-filter that is an optimization hint that is merely surprising; for an
//! RBAC bitmap it is an authorization leak — forget one segment and every
//! row in it becomes visible. [`FilterSet`] replaces the bare map with an
//! explicit default policy for unlisted segments: [`FilterDefault::All`]
//! (unfiltered, the old pre-filter behavior) or [`FilterDefault::Empty`]
//! (excluded — the only safe default for security filters).

use std::collections::HashMap;
use tv_common::{Bitmap, SegmentId};

/// What an unlisted segment gets.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum FilterDefault {
    /// Unlisted segments are searched unfiltered (pre-filter semantics:
    /// "I only restrict the segments I name").
    #[default]
    All,
    /// Unlisted segments contribute nothing (RBAC semantics: "anything I
    /// did not explicitly allow is denied").
    Empty,
}

/// The filter a worker must apply to one segment.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SegmentFilter<'a> {
    /// Search the whole segment.
    Unfiltered,
    /// Search only the set bits.
    Restricted(&'a Bitmap),
    /// Do not search the segment at all; it contributes the empty set by
    /// policy (still *covered* — exclusion is a resolved answer, not a
    /// failure).
    Excluded,
}

/// Per-segment bitmaps plus the policy for segments without one.
#[derive(Debug, Clone, Default)]
pub struct FilterSet {
    default: FilterDefault,
    per_segment: HashMap<SegmentId, Bitmap>,
}

impl FilterSet {
    /// No restrictions anywhere (what `filters: None` means).
    #[must_use]
    pub fn unfiltered() -> Self {
        FilterSet::default()
    }

    /// An empty set with the given default policy for unlisted segments.
    #[must_use]
    pub fn new(default: FilterDefault) -> Self {
        FilterSet {
            default,
            per_segment: HashMap::new(),
        }
    }

    /// Deny-by-default set: only segments given an explicit bitmap via
    /// [`FilterSet::set`] contribute rows. Use this for RBAC bitmaps.
    #[must_use]
    pub fn deny_unlisted() -> Self {
        FilterSet::new(FilterDefault::Empty)
    }

    /// Attach (or replace) the bitmap for one segment.
    pub fn set(&mut self, seg: SegmentId, bitmap: Bitmap) {
        self.per_segment.insert(seg, bitmap);
    }

    /// Builder-style [`FilterSet::set`].
    #[must_use]
    pub fn with(mut self, seg: SegmentId, bitmap: Bitmap) -> Self {
        self.set(seg, bitmap);
        self
    }

    /// The policy applied to unlisted segments.
    #[must_use]
    pub fn default_policy(&self) -> FilterDefault {
        self.default
    }

    /// Number of segments with an explicit bitmap.
    #[must_use]
    pub fn len(&self) -> usize {
        self.per_segment.len()
    }

    /// True when no explicit bitmaps are attached.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.per_segment.is_empty()
    }

    /// The filter in force for `seg` — never silently unfiltered: absent
    /// segments resolve through the declared default.
    #[must_use]
    pub fn effective(&self, seg: SegmentId) -> SegmentFilter<'_> {
        match self.per_segment.get(&seg) {
            Some(b) => SegmentFilter::Restricted(b),
            None => match self.default {
                FilterDefault::All => SegmentFilter::Unfiltered,
                FilterDefault::Empty => SegmentFilter::Excluded,
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unfiltered_default_preserves_prefilter_semantics() {
        let f = FilterSet::unfiltered().with(SegmentId(1), Bitmap::new(8));
        assert!(matches!(
            f.effective(SegmentId(1)),
            SegmentFilter::Restricted(_)
        ));
        assert_eq!(f.effective(SegmentId(0)), SegmentFilter::Unfiltered);
        assert_eq!(f.default_policy(), FilterDefault::All);
    }

    #[test]
    fn deny_unlisted_excludes_absent_segments() {
        let mut allowed = Bitmap::new(8);
        allowed.set(3, true);
        let f = FilterSet::deny_unlisted().with(SegmentId(2), allowed);
        assert!(matches!(
            f.effective(SegmentId(2)),
            SegmentFilter::Restricted(_)
        ));
        // The footgun: an RBAC map that misses a segment must NOT fall
        // through to "search everything".
        assert_eq!(f.effective(SegmentId(7)), SegmentFilter::Excluded);
    }

    #[test]
    fn empty_set_len() {
        let f = FilterSet::deny_unlisted();
        assert!(f.is_empty());
        assert_eq!(f.len(), 0);
        let f = f.with(SegmentId(0), Bitmap::new(4));
        assert_eq!(f.len(), 1);
    }
}
