//! # tv-cluster
//!
//! Distributed vector search (Fig. 5 of the paper): a **coordinator**
//! prepares per-segment top-k requests in a send queue, dispatches them to
//! **worker servers**, each worker searches its local embedding segments,
//! and the IDs + distances flow back to the coordinator's response pool for
//! a global merge.
//!
//! The paper runs on 8–32 GCP machines; this container has one core, so the
//! crate provides two layers (both exercised by the benchmarks):
//!
//! * [`runtime`] — a *real* message-passing runtime: one thread per server,
//!   crossbeam channels as the network, actual scatter-gather execution.
//!   This validates the architecture (results identical to a centralized
//!   search, replica failover works) and measures real per-server compute.
//! * [`model`] — an analytic cost model that turns measured per-query CPU
//!   work into modeled cluster latency/QPS under a configurable network
//!   (per-message latency + per-byte cost) and per-server core count. The
//!   node- and data-scalability figures (Fig. 9/10) are regenerated through
//!   this model; DESIGN.md documents the substitution.
//!
//! The runtime is fault-tolerant rather than fault-oblivious: [`fault`]
//! injects deterministic worker failures (crash-on-recv, reply-drop,
//! fixed/seeded delay), the coordinator recovers via replica retry waves
//! and optional hedged requests ([`tv_common::RetryPolicy`]), [`filter`]
//! makes per-segment filter hand-off policy-explicit (no silent
//! unfiltered fallback), and degraded mode returns partial results with an
//! honest [`Coverage`] instead of discarding finished work. DESIGN.md
//! ("Failure model") documents the guarantees.

pub mod fault;
pub mod filter;
pub mod model;
pub mod placement;
pub mod runtime;

pub use fault::{FaultAction, FaultKind, FaultPlan};
pub use filter::{FilterDefault, FilterSet, SegmentFilter};
pub use model::{ClusterModel, NetworkModel, QueryWork};
pub use placement::Placement;
pub use runtime::{ClusterResponse, ClusterRuntime, Coverage, RuntimeConfig};
