//! # tv-cluster
//!
//! Distributed vector search (Fig. 5 of the paper): a **coordinator**
//! prepares per-segment top-k requests in a send queue, dispatches them to
//! **worker servers**, each worker searches its local embedding segments,
//! and the IDs + distances flow back to the coordinator's response pool for
//! a global merge.
//!
//! The paper runs on 8–32 GCP machines; this container has one core, so the
//! crate provides two layers (both exercised by the benchmarks):
//!
//! * [`runtime`] — a *real* message-passing runtime: one thread per server,
//!   crossbeam channels as the network, actual scatter-gather execution.
//!   This validates the architecture (results identical to a centralized
//!   search, replica failover works) and measures real per-server compute.
//! * [`model`] — an analytic cost model that turns measured per-query CPU
//!   work into modeled cluster latency/QPS under a configurable network
//!   (per-message latency + per-byte cost) and per-server core count. The
//!   node- and data-scalability figures (Fig. 9/10) are regenerated through
//!   this model; DESIGN.md documents the substitution.
//!
//! The runtime is fault-tolerant rather than fault-oblivious: [`fault`]
//! injects deterministic worker failures (crash-on-recv, reply-drop,
//! fixed/seeded delay), the coordinator recovers via replica retry waves
//! and optional hedged requests ([`tv_common::RetryPolicy`]), [`filter`]
//! makes per-segment filter hand-off policy-explicit (no silent
//! unfiltered fallback), and degraded mode returns partial results with an
//! honest [`Coverage`] instead of discarding finished work. DESIGN.md
//! ("Failure model") documents the guarantees.
//!
//! The cluster is also *elastic*: [`placement`] carries a
//! generation-versioned [`PlacementTable`] (queries pin the table they
//! scattered with; flips swap it atomically) with a minimal-move
//! [`PlacementTable::rebalance_plan`] planner, and [`migrate`] executes
//! [`MigrationPlan`]s live — snapshot-ship via the `durafile` container,
//! delta-tail catch-up while the source keeps serving, and a gated atomic
//! flip — with every phase crash-instrumented and abort/retry-safe.

pub mod fault;
pub mod filter;
pub mod migrate;
pub mod model;
pub mod placement;
pub mod runtime;

pub use fault::{FaultAction, FaultKind, FaultPlan};
pub use filter::{FilterDefault, FilterSet, SegmentFilter};
pub use migrate::{MigrationErrors, MigrationPhase, MigrationReport, Migrator};
pub use model::{ClusterModel, NetworkModel, QueryWork};
pub use placement::{MigrationPlan, Placement, PlacementTable};
pub use runtime::{ClusterResponse, ClusterRuntime, Coverage, RuntimeConfig};
