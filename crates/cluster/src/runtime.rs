//! The coordinator/worker message-passing runtime (Fig. 5).
//!
//! One thread per server; crossbeam channels play the network. The
//! coordinator puts per-server top-k requests in the send queue, workers
//! search their local embedding segments and push `(id, distance)` lists
//! into the response pool, and the coordinator performs the global merge.
//! A coordinator can also function as a worker (the paper notes this);
//! in the runtime the coordinator is just the caller's thread.

use crate::placement::Placement;
use crossbeam::channel::{unbounded, Receiver, Sender};
use parking_lot::RwLock;
use std::collections::HashMap;
use std::sync::Arc;
use std::time::Duration;
use tv_common::{merge_topk, Bitmap, Deadline, Neighbor, SegmentId, Tid, TvError, TvResult};
use tv_embedding::EmbeddingSegment;
use tv_hnsw::SearchStats;

/// Runtime configuration.
#[derive(Debug, Clone, Copy)]
pub struct RuntimeConfig {
    /// Number of worker servers.
    pub servers: usize,
    /// Replication factor for segments.
    pub replication: usize,
    /// Brute-force threshold forwarded to segment searches.
    pub brute_force_threshold: usize,
}

impl Default for RuntimeConfig {
    fn default() -> Self {
        RuntimeConfig {
            servers: 4,
            replication: 1,
            brute_force_threshold: tv_common::TuningDefaults::default().brute_force_threshold,
        }
    }
}

enum Request {
    TopK {
        query: Arc<Vec<f32>>,
        k: usize,
        ef: usize,
        tid: Tid,
        /// Segments this server must search for this query (failover may
        /// shift segments between holders).
        segments: Vec<SegmentId>,
        /// Optional per-segment filters.
        filters: Arc<HashMap<SegmentId, Bitmap>>,
        /// Abandon the scatter-gather mid-flight once this expires (checked
        /// at every segment-search boundary in the worker loop).
        deadline: Deadline,
        reply: Sender<(usize, Vec<Neighbor>, SearchStats, Duration, bool)>,
    },
    Shutdown,
}

struct ServerHandle {
    tx: Sender<Request>,
    join: Option<std::thread::JoinHandle<()>>,
}

/// A running cluster: server threads owning embedding segments.
pub struct ClusterRuntime {
    /// The configuration the runtime was started with.
    pub config: RuntimeConfig,
    placement: Placement,
    /// Segment stores shared with server threads (server i serves the
    /// segments placement assigns it).
    segments: Arc<RwLock<HashMap<SegmentId, Arc<EmbeddingSegment>>>>,
    servers: Vec<ServerHandle>,
    down: RwLock<Vec<usize>>,
}

impl ClusterRuntime {
    /// Spin up server threads.
    #[must_use]
    pub fn start(config: RuntimeConfig) -> Self {
        let placement = Placement::new(config.servers, config.replication);
        let segments: Arc<RwLock<HashMap<SegmentId, Arc<EmbeddingSegment>>>> =
            Arc::new(RwLock::new(HashMap::new()));
        let mut servers = Vec::with_capacity(config.servers);
        for server_id in 0..config.servers {
            let (tx, rx): (Sender<Request>, Receiver<Request>) = unbounded();
            let segs = Arc::clone(&segments);
            let threshold = config.brute_force_threshold;
            let join = std::thread::spawn(move || {
                while let Ok(req) = rx.recv() {
                    match req {
                        Request::TopK {
                            query,
                            k,
                            ef,
                            tid,
                            segments,
                            filters,
                            deadline,
                            reply,
                        } => {
                            let started = std::time::Instant::now();
                            let mut local: Vec<Vec<Neighbor>> = Vec::new();
                            let mut stats = SearchStats::default();
                            let mut timed_out = false;
                            let map = segs.read();
                            for seg_id in segments {
                                if deadline.expired() {
                                    timed_out = true;
                                    break;
                                }
                                if let Some(seg) = map.get(&seg_id) {
                                    let (r, s) = seg.search(
                                        &query,
                                        k,
                                        ef,
                                        filters.get(&seg_id),
                                        tid,
                                        threshold,
                                    );
                                    stats.merge(&s);
                                    local.push(r);
                                }
                            }
                            drop(map);
                            let merged = merge_topk(local, k);
                            // Response pool: ids + distances back to the
                            // coordinator.
                            let _ = reply.send((
                                server_id,
                                merged,
                                stats,
                                started.elapsed(),
                                timed_out,
                            ));
                        }
                        Request::Shutdown => break,
                    }
                }
            });
            servers.push(ServerHandle {
                tx,
                join: Some(join),
            });
        }
        ClusterRuntime {
            config,
            placement,
            segments,
            servers,
            down: RwLock::new(Vec::new()),
        }
    }

    /// Register an embedding segment with the cluster (the owner is derived
    /// from the placement).
    pub fn add_segment(&self, segment: Arc<EmbeddingSegment>) {
        self.segments.write().insert(segment.segment_id, segment);
    }

    /// Number of registered segments.
    #[must_use]
    pub fn segment_count(&self) -> usize {
        self.segments.read().len()
    }

    /// The placement map.
    #[must_use]
    pub fn placement(&self) -> &Placement {
        &self.placement
    }

    /// Mark a server down (its segments shift to replicas).
    pub fn fail_server(&self, server: usize) {
        let mut down = self.down.write();
        if !down.contains(&server) {
            down.push(server);
        }
    }

    /// Bring a failed server back.
    pub fn recover_server(&self, server: usize) {
        self.down.write().retain(|&s| s != server);
    }

    /// Distributed top-k: scatter per-server requests, gather and globally
    /// merge. Returns the merged results, per-server compute times, and the
    /// merged stats.
    pub fn top_k(
        &self,
        query: &[f32],
        k: usize,
        ef: usize,
        tid: Tid,
        filters: Option<&HashMap<SegmentId, Bitmap>>,
    ) -> TvResult<(Vec<Neighbor>, Vec<Duration>, SearchStats)> {
        self.top_k_deadline(query, k, ef, tid, filters, Deadline::none())
    }

    /// Distributed top-k with a deadline: workers check it before every
    /// segment search, so an expired deadline abandons the scatter-gather
    /// mid-flight and the call fails with [`TvError::Timeout`].
    pub fn top_k_deadline(
        &self,
        query: &[f32],
        k: usize,
        ef: usize,
        tid: Tid,
        filters: Option<&HashMap<SegmentId, Bitmap>>,
        deadline: Deadline,
    ) -> TvResult<(Vec<Neighbor>, Vec<Duration>, SearchStats)> {
        deadline.check("cluster top-k scatter")?;
        let down = self.down.read().clone();
        // Route each segment to its serving holder.
        let mut per_server: HashMap<usize, Vec<SegmentId>> = HashMap::new();
        for (&seg_id, _) in self.segments.read().iter() {
            match self.placement.serving(seg_id, &down) {
                Some(s) => per_server.entry(s).or_default().push(seg_id),
                None => {
                    return Err(TvError::Cluster(format!(
                        "segment {seg_id} has no live holder"
                    )))
                }
            }
        }
        let query = Arc::new(query.to_vec());
        let filters = Arc::new(filters.cloned().unwrap_or_default());
        let (reply_tx, reply_rx) = unbounded();
        let mut outstanding = 0;
        for (server, segments) in per_server {
            self.servers[server]
                .tx
                .send(Request::TopK {
                    query: Arc::clone(&query),
                    k,
                    ef,
                    tid,
                    segments,
                    filters: Arc::clone(&filters),
                    deadline,
                    reply: reply_tx.clone(),
                })
                .map_err(|_| TvError::Cluster(format!("server {server} unreachable")))?;
            outstanding += 1;
        }
        drop(reply_tx);
        let mut lists = Vec::with_capacity(outstanding);
        let mut times = Vec::with_capacity(outstanding);
        let mut stats = SearchStats::default();
        let mut timed_out = false;
        for _ in 0..outstanding {
            let (_server, list, s, took, worker_timed_out) = reply_rx
                .recv()
                .map_err(|_| TvError::Cluster("response pool closed".into()))?;
            lists.push(list);
            times.push(took);
            stats.merge(&s);
            timed_out |= worker_timed_out;
        }
        if timed_out {
            return Err(TvError::Timeout(
                "deadline exceeded in cluster worker segment search".into(),
            ));
        }
        Ok((merge_topk(lists, k), times, stats))
    }
}

impl Drop for ClusterRuntime {
    fn drop(&mut self) {
        for s in &self.servers {
            let _ = s.tx.send(Request::Shutdown);
        }
        for s in &mut self.servers {
            if let Some(j) = s.join.take() {
                let _ = j.join();
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tv_common::ids::{LocalId, VertexId};
    use tv_common::{DistanceMetric, SplitMix64};
    use tv_embedding::EmbeddingTypeDef;
    use tv_hnsw::DeltaRecord;

    fn loaded_cluster(
        servers: usize,
        replication: usize,
        segments: usize,
        per_segment: usize,
    ) -> (ClusterRuntime, Vec<(VertexId, Vec<f32>)>) {
        let runtime = ClusterRuntime::start(RuntimeConfig {
            servers,
            replication,
            brute_force_threshold: 4,
        });
        let def = EmbeddingTypeDef::new("e", 8, "M", DistanceMetric::L2);
        let mut rng = SplitMix64::new(31);
        let mut all = Vec::new();
        let mut tid = 0u64;
        for s in 0..segments {
            let seg = Arc::new(EmbeddingSegment::new(SegmentId(s as u32), &def, 1024));
            let mut recs = Vec::new();
            for l in 0..per_segment {
                tid += 1;
                let v: Vec<f32> = (0..8).map(|_| rng.next_f32() * 5.0).collect();
                let id = VertexId::new(SegmentId(s as u32), LocalId(l as u32));
                recs.push(DeltaRecord::upsert(id, Tid(tid), v.clone()));
                all.push((id, v));
            }
            seg.append_deltas(&recs).unwrap();
            seg.delta_merge(Tid(tid)).unwrap();
            seg.index_merge(Tid(tid)).unwrap();
            runtime.add_segment(seg);
        }
        (runtime, all)
    }

    fn exact_top1(all: &[(VertexId, Vec<f32>)], q: &[f32]) -> VertexId {
        all.iter()
            .min_by(|a, b| {
                tv_common::metric::l2_sq(q, &a.1).total_cmp(&tv_common::metric::l2_sq(q, &b.1))
            })
            .unwrap()
            .0
    }

    #[test]
    fn distributed_matches_exact_top1() {
        let (runtime, all) = loaded_cluster(4, 1, 8, 50);
        for probe in [0usize, 17, 133, 399] {
            let q = &all[probe].1;
            let (r, times, stats) = runtime.top_k(q, 1, 64, Tid::MAX, None).unwrap();
            assert_eq!(r[0].id, exact_top1(&all, q));
            assert_eq!(times.len(), 4);
            assert!(stats.distance_computations > 0);
        }
    }

    #[test]
    fn global_merge_is_sorted_topk() {
        let (runtime, all) = loaded_cluster(3, 1, 6, 40);
        let (r, _, _) = runtime.top_k(&all[5].1, 10, 64, Tid::MAX, None).unwrap();
        assert_eq!(r.len(), 10);
        assert!(r.windows(2).all(|w| w[0].dist <= w[1].dist));
    }

    #[test]
    fn failover_to_replicas() {
        let (runtime, all) = loaded_cluster(3, 2, 6, 30);
        let q = &all[10].1;
        let (before, _, _) = runtime.top_k(q, 5, 64, Tid::MAX, None).unwrap();
        runtime.fail_server(0);
        let (after, _, _) = runtime.top_k(q, 5, 64, Tid::MAX, None).unwrap();
        assert_eq!(
            before.iter().map(|n| n.id).collect::<Vec<_>>(),
            after.iter().map(|n| n.id).collect::<Vec<_>>()
        );
        runtime.recover_server(0);
        let (again, _, _) = runtime.top_k(q, 5, 64, Tid::MAX, None).unwrap();
        assert_eq!(after.len(), again.len());
    }

    #[test]
    fn unreplicated_cluster_fails_hard_when_server_down() {
        let (runtime, all) = loaded_cluster(3, 1, 6, 20);
        runtime.fail_server(1);
        let err = runtime.top_k(&all[0].1, 3, 32, Tid::MAX, None).unwrap_err();
        assert!(matches!(err, TvError::Cluster(_)));
    }

    #[test]
    fn filters_apply_per_segment() {
        let (runtime, all) = loaded_cluster(2, 1, 4, 25);
        // Only segment 2, locals 0..5 are valid.
        let mut filters = HashMap::new();
        let mut bm = Bitmap::new(1024);
        for l in 0..5 {
            bm.set(l, true);
        }
        filters.insert(SegmentId(2), bm);
        // Empty bitmaps for other segments exclude them entirely... absent
        // means unfiltered in the runtime, so pass explicit empties.
        for s in [0u32, 1, 3] {
            filters.insert(SegmentId(s), Bitmap::new(1024));
        }
        let (r, _, _) = runtime
            .top_k(&all[0].1, 3, 64, Tid::MAX, Some(&filters))
            .unwrap();
        assert!(!r.is_empty());
        assert!(r
            .iter()
            .all(|n| n.id.segment() == SegmentId(2) && n.id.local().0 < 5));
    }

    #[test]
    fn expired_deadline_rejected_before_scatter() {
        let (runtime, all) = loaded_cluster(2, 1, 4, 20);
        let err = runtime
            .top_k_deadline(&all[0].1, 3, 32, Tid::MAX, None, Deadline::expired_now())
            .unwrap_err();
        assert!(matches!(err, TvError::Timeout(_)));
        // A generous deadline behaves exactly like no deadline.
        let (r, _, _) = runtime
            .top_k_deadline(
                &all[0].1,
                3,
                32,
                Tid::MAX,
                None,
                Deadline::after(Duration::from_secs(60)),
            )
            .unwrap();
        let (r2, _, _) = runtime.top_k(&all[0].1, 3, 32, Tid::MAX, None).unwrap();
        assert_eq!(
            r.iter().map(|n| n.id).collect::<Vec<_>>(),
            r2.iter().map(|n| n.id).collect::<Vec<_>>()
        );
    }

    #[test]
    fn concurrent_queries_from_many_client_threads() {
        let (runtime, all) = loaded_cluster(4, 1, 8, 30);
        let runtime = Arc::new(runtime);
        let all = Arc::new(all);
        let mut handles = Vec::new();
        for t in 0..8 {
            let rt = Arc::clone(&runtime);
            let data = Arc::clone(&all);
            handles.push(std::thread::spawn(move || {
                for i in 0..20 {
                    let q = &data[(t * 13 + i * 7) % data.len()].1;
                    let (r, _, _) = rt.top_k(q, 5, 32, Tid::MAX, None).unwrap();
                    assert!(!r.is_empty());
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
    }
}
