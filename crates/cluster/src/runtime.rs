//! The coordinator/worker message-passing runtime (Fig. 5).
//!
//! Server work runs on a shared [`WorkerPool`] sized to the server count;
//! crossbeam channels play the network. The coordinator scatters per-server
//! top-k requests as pool jobs, workers search their local embedding
//! segments and push per-segment `(id, distance)` lists into the response
//! pool, and the coordinator performs the global merge. A coordinator can
//! also function as a worker (the paper notes this); in the runtime the
//! coordinator is just the caller's thread.
//!
//! ## Failure model
//!
//! The paper's MPP design assumes every scatter reaches a live holder; this
//! runtime does not. Three mechanisms make the scatter-gather robust:
//!
//! * **Fault injection** ([`FaultPlan`]) — workers consult a deterministic
//!   per-server fault schedule (crash-on-recv, reply-drop, fixed/seeded
//!   delay), so every recovery path below is exercised by tests rather
//!   than only reasoned about.
//! * **Retry + hedging** ([`RetryPolicy`]) — a server that does not reply
//!   within `attempt_timeout` is declared a per-query suspect and its
//!   segments are re-routed to live replica holders in bounded-backoff
//!   waves; optionally the slowest outstanding server's request is
//!   duplicated (hedged) to a replica and the first reply wins. Replies are
//!   accepted per *segment*, so a late original and a hedge never
//!   double-count. All waits are budgeted by [`Deadline::bounded_wait`].
//! * **Degraded mode** (`RuntimeConfig::degraded_mode`) — instead of
//!   discarding every finished per-segment list when something fails, the
//!   query returns the partial global merge plus an honest [`Coverage`].
//!   Strict mode (the default) keeps the original fail-hard behavior.

use crate::fault::FaultPlan;
use crate::filter::{FilterSet, SegmentFilter};
use crate::migrate::MigrationErrors;
use crate::placement::{Placement, PlacementTable};
use crossbeam::channel::{unbounded, RecvTimeoutError, Sender};
use parking_lot::{Mutex, RwLock};
use std::collections::{HashMap, HashSet};
use std::sync::Arc;
use std::time::{Duration, Instant};
use tv_common::{
    merge_topk, Deadline, Neighbor, PlannerConfig, RetryPolicy, SegmentId, Tid, TvError, TvResult,
    WorkerPool,
};
use tv_embedding::EmbeddingSegment;
use tv_hnsw::{DeltaRecord, SearchStats};

/// One server's local segment store. Replicas registered through
/// [`ClusterRuntime::add_segment`] share a single [`EmbeddingSegment`]
/// `Arc`; a migrated-in copy is an independent instance kept convergent by
/// delta-tail replay.
type SegmentStore = Arc<RwLock<HashMap<SegmentId, Arc<EmbeddingSegment>>>>;

/// Runtime configuration.
#[derive(Debug, Clone, Copy)]
pub struct RuntimeConfig {
    /// Number of worker servers.
    pub servers: usize,
    /// Replication factor for segments.
    pub replication: usize,
    /// Filtered-search planner knobs forwarded to segment searches.
    pub planner: PlannerConfig,
    /// Coordinator-side failure detection, replica retry, and hedging.
    pub retry: RetryPolicy,
    /// `true`: failures degrade the answer (partial results + accurate
    /// [`Coverage`]) instead of failing it. `false` (default): keep the
    /// strict behavior — unroutable segments and expired deadlines error.
    pub degraded_mode: bool,
    /// Threads per segment index build in [`ClusterRuntime::index_merge_all`]
    /// (1 = sequential, bit-deterministic; see `TuningDefaults`).
    pub build_threads: usize,
}

impl Default for RuntimeConfig {
    fn default() -> Self {
        RuntimeConfig {
            servers: 4,
            replication: 1,
            planner: tv_common::TuningDefaults::default().planner,
            retry: RetryPolicy::default(),
            degraded_mode: false,
            build_threads: 1,
        }
    }
}

/// How much of the query the answer actually reflects.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Coverage {
    /// Segments whose contribution is exact: searched by a worker, or
    /// excluded by an explicit [`FilterSet`] policy (an excluded segment's
    /// answer — the empty set — is exact, not degraded).
    pub segments_searched: usize,
    /// Segments registered with the cluster.
    pub segments_total: usize,
    /// Distinct servers that failed to serve during this query: declared
    /// suspect after a timeout, unreachable, or down while being the only
    /// holder of an unsearched segment.
    pub servers_failed: usize,
}

impl Coverage {
    /// True when every segment contributed exactly.
    #[must_use]
    pub fn is_complete(&self) -> bool {
        self.segments_searched == self.segments_total
    }

    /// Searched fraction in `[0, 1]` (1.0 for an empty cluster).
    #[must_use]
    pub fn fraction(&self) -> f64 {
        if self.segments_total == 0 {
            1.0
        } else {
            self.segments_searched as f64 / self.segments_total as f64
        }
    }
}

/// A completed distributed top-k: the global merge plus everything the
/// serving layer needs to reason about how it was obtained.
#[derive(Debug, Clone)]
pub struct ClusterResponse {
    /// Globally merged top-k, nearest-first.
    pub neighbors: Vec<Neighbor>,
    /// Per-reply worker compute times (one entry per accepted reply).
    pub times: Vec<Duration>,
    /// Merged search statistics across accepted replies.
    pub stats: SearchStats,
    /// How much of the cluster the answer reflects.
    pub coverage: Coverage,
    /// Re-routed per-server requests sent in retry waves after the scatter.
    pub retries: u64,
    /// Hedged (duplicate) requests sent to replicas of slow servers.
    pub hedges: u64,
    /// Segments re-routed mid-query because the addressed server had
    /// migrated them away (the query pinned an older placement generation
    /// at scatter; the coordinator re-resolved against the fresh table).
    pub moved_redirects: u64,
    /// Segments that contributed nothing (sorted; empty when complete).
    pub unsearched: Vec<SegmentId>,
}

/// One per-server request, executed as a pool job (failover and retry
/// waves shift segments between holders).
struct Request {
    server: usize,
    query: Arc<Vec<f32>>,
    k: usize,
    ef: usize,
    tid: Tid,
    /// Segments this server must search for this query.
    segments: Vec<SegmentId>,
    /// Per-segment filter policy (explicit default for absent segments).
    filters: Arc<FilterSet>,
    /// Abandon the scatter-gather mid-flight once this expires (checked
    /// at every segment-search boundary in the worker loop).
    deadline: Deadline,
    reply: Sender<WorkerReply>,
}

/// One worker's answer: per-segment result lists so the coordinator can
/// account coverage exactly and dedupe retried/hedged segments.
struct WorkerReply {
    server: usize,
    results: Vec<(SegmentId, Vec<Neighbor>)>,
    /// Segments the coordinator asked for that this server's store no
    /// longer holds — migrated away after the query pinned its placement.
    /// The coordinator re-routes them against the fresh table.
    moved: Vec<SegmentId>,
    stats: SearchStats,
    took: Duration,
    timed_out: bool,
}

/// A running cluster: a worker pool serving embedding segments.
pub struct ClusterRuntime {
    /// The configuration the runtime was started with.
    pub config: RuntimeConfig,
    /// Placement *policy*: where a newly registered segment's replicas land.
    policy: Placement,
    /// Placement *authority*: the generation-versioned routing table.
    /// Swapped atomically (behind `Arc`) at migration flips; queries clone
    /// the `Arc` once at scatter and keep that exact view to completion.
    table: RwLock<Arc<PlacementTable>>,
    /// Per-server segment stores (server `i` owns `stores[i]`). A worker
    /// only ever sees its own store, so a drained server answers `Moved`
    /// rather than silently serving a stale copy.
    stores: Vec<SegmentStore>,
    /// Per-segment append gates: [`ClusterRuntime::append_deltas`] holds a
    /// segment's gate for the duration of the append, and the migration
    /// flip holds it across final-tail drain + table swap, so no committed
    /// record can fall between the source and destination copies.
    write_gates: Mutex<HashMap<SegmentId, Arc<Mutex<()>>>>,
    /// Migration failure log (phase, segment, error) — the `VacuumErrors`
    /// pattern: aborts are recorded, never silently swallowed.
    migration_errors: Arc<MigrationErrors>,
    /// Shared execution pool: one warm worker per server, so a delayed or
    /// faulted request occupies one slot without starving the others. This
    /// runtime owns its pool (rather than using the process-global one) so
    /// injected fault delays cannot stall unrelated query fan-out.
    pool: Arc<WorkerPool>,
    down: RwLock<Vec<usize>>,
    faults: Arc<FaultPlan>,
}

impl ClusterRuntime {
    /// Spin up the server worker pool.
    #[must_use]
    pub fn start(config: RuntimeConfig) -> Self {
        let policy = Placement::new(config.servers, config.replication);
        let stores = (0..config.servers)
            .map(|_| Arc::new(RwLock::new(HashMap::new())))
            .collect();
        let faults = Arc::new(FaultPlan::new());
        let pool = Arc::new(WorkerPool::new(config.servers.max(1)));
        ClusterRuntime {
            table: RwLock::new(Arc::new(PlacementTable::new(config.servers))),
            config,
            policy,
            stores,
            write_gates: Mutex::new(HashMap::new()),
            migration_errors: Arc::new(MigrationErrors::default()),
            pool,
            down: RwLock::new(Vec::new()),
            faults,
        }
    }

    /// Dispatch one per-server request to the pool. The job applies the
    /// server's fault schedule (crash-on-recv swallows the request,
    /// delay sleeps, drop-reply does the work but loses the answer) and
    /// pushes a [`WorkerReply`] into the response channel otherwise.
    fn dispatch(&self, req: Request) {
        let store = Arc::clone(&self.stores[req.server]);
        let plan = Arc::clone(&self.faults);
        let planner = self.config.planner;
        self.pool.spawn(move || {
            let action = plan.on_receive(req.server);
            if action.crash {
                // Crash-on-recv: the request is swallowed; the
                // coordinator's attempt timeout detects the silence.
                return;
            }
            if !action.delay.is_zero() {
                std::thread::sleep(action.delay);
            }
            let started = Instant::now();
            let mut results: Vec<(SegmentId, Vec<Neighbor>)> = Vec::new();
            let mut moved: Vec<SegmentId> = Vec::new();
            let mut stats = SearchStats::default();
            let mut timed_out = false;
            let map = store.read();
            for seg_id in req.segments {
                if req.deadline.expired() {
                    timed_out = true;
                    break;
                }
                let filter = match req.filters.effective(seg_id) {
                    SegmentFilter::Excluded => {
                        // Excluded by policy: the empty set is this
                        // segment's exact answer.
                        results.push((seg_id, Vec::new()));
                        continue;
                    }
                    SegmentFilter::Restricted(b) => Some(b),
                    SegmentFilter::Unfiltered => None,
                };
                if let Some(seg) = map.get(&seg_id) {
                    let (r, s) = seg.search(&req.query, req.k, req.ef, filter, req.tid, &planner);
                    stats.merge(&s);
                    results.push((seg_id, r));
                } else {
                    // This server no longer (or never) holds the segment —
                    // the coordinator routed against a pre-flip table.
                    // Report it as moved rather than inventing an answer.
                    moved.push(seg_id);
                }
            }
            drop(map);
            if action.drop_reply {
                // The work happened; the answer is lost on the wire.
                return;
            }
            // Response pool: per-segment ids + distances back to the
            // coordinator.
            let _ = req.reply.send(WorkerReply {
                server: req.server,
                results,
                moved,
                stats,
                took: started.elapsed(),
                timed_out,
            });
        });
    }

    /// Rebuild the vector index of every registered segment up to `up_to`,
    /// fanned out over the runtime's pool with `config.build_threads`
    /// forwarded to each segment's intra-index build. Returns the per-
    /// segment merge results keyed by segment id, sorted.
    pub fn index_merge_all(&self, up_to: Tid) -> TvResult<Vec<(SegmentId, Option<Tid>)>> {
        // Every *distinct* copy per segment is merged: replicas registered
        // through `add_segment` share one instance, but a mid-migration
        // destination copy is independent and must not be left behind.
        let table = self.table.read().clone();
        let mut jobs: Vec<(SegmentId, Arc<EmbeddingSegment>)> = Vec::new();
        for id in table.segment_ids() {
            let mut seen: Vec<*const EmbeddingSegment> = Vec::new();
            for &h in table.holders(id) {
                if let Some(seg) = self.stores[h].read().get(&id) {
                    if !seen.contains(&Arc::as_ptr(seg)) {
                        seen.push(Arc::as_ptr(seg));
                        jobs.push((id, Arc::clone(seg)));
                    }
                }
            }
        }
        let build_threads = self.config.build_threads;
        let width = self.pool.width();
        let out = self.pool.run(jobs, width, |(id, seg)| {
            let merged = seg.index_merge_with(up_to, build_threads)?;
            Ok::<_, TvError>((id, merged))
        });
        let merged: Vec<(SegmentId, Option<Tid>)> = out.into_iter().collect::<TvResult<_>>()?;
        // One row per segment: copies fold the same record set to the same
        // tid, so the first (jobs are segment-ordered) speaks for all.
        let mut per_seg: Vec<(SegmentId, Option<Tid>)> = Vec::new();
        for (id, m) in merged {
            if per_seg.last().map(|&(last, _)| last) != Some(id) {
                per_seg.push((id, m));
            }
        }
        Ok(per_seg)
    }

    /// Register an embedding segment with the cluster. The holders come
    /// from the round-robin [`Placement`] policy; all replicas share this
    /// one instance. Registration does not bump the placement generation —
    /// it cannot invalidate any in-flight route.
    pub fn add_segment(&self, segment: Arc<EmbeddingSegment>) {
        let id = segment.segment_id;
        let holders = self.policy.holders(id);
        for &h in &holders {
            self.stores[h].write().insert(id, Arc::clone(&segment));
        }
        let mut table = self.table.write();
        *table = Arc::new(table.assign(id, holders));
    }

    /// Number of registered segments.
    #[must_use]
    pub fn segment_count(&self) -> usize {
        self.table.read().len()
    }

    /// Registered segment ids, sorted.
    #[must_use]
    pub fn segment_ids(&self) -> Vec<SegmentId> {
        self.table.read().segment_ids()
    }

    /// The currently serving copy of `seg` (the first live table holder's),
    /// or `None` if unknown everywhere.
    #[must_use]
    pub fn segment(&self, seg: SegmentId) -> Option<Arc<EmbeddingSegment>> {
        let table = self.table.read().clone();
        for &h in table.holders(seg) {
            if let Some(s) = self.stores[h].read().get(&seg) {
                return Some(Arc::clone(s));
            }
        }
        None
    }

    /// The current placement table. Queries clone this `Arc` once at
    /// scatter and route against that exact view to completion; a flip
    /// committed mid-query swaps the runtime's table without touching any
    /// pinned clone.
    #[must_use]
    pub fn placement(&self) -> Arc<PlacementTable> {
        self.table.read().clone()
    }

    /// The current placement generation (bumped once per committed
    /// migration flip).
    #[must_use]
    pub fn generation(&self) -> u64 {
        self.table.read().generation()
    }

    /// Append committed delta records to every distinct copy of `seg`,
    /// under the segment's append gate. During a live migration the gate
    /// serializes appends against the flip critical section: a record
    /// either lands on the source in time for the final-tail drain or on
    /// the destination after the flip — never in the gap between.
    pub fn append_deltas(&self, seg: SegmentId, records: &[DeltaRecord]) -> TvResult<()> {
        let gate = self.write_gate(seg);
        let _guard = gate.lock();
        let table = self.table.read().clone();
        let holders = table.holders(seg);
        if holders.is_empty() {
            return Err(TvError::NotFound(format!(
                "segment {} not registered with the cluster",
                seg.0
            )));
        }
        let mut targets: Vec<Arc<EmbeddingSegment>> = Vec::new();
        for &h in holders {
            if let Some(s) = self.stores[h].read().get(&seg) {
                if !targets.iter().any(|t| Arc::ptr_eq(t, s)) {
                    targets.push(Arc::clone(s));
                }
            }
        }
        if targets.is_empty() {
            return Err(TvError::Cluster(format!(
                "no holder of segment {} has a local copy",
                seg.0
            )));
        }
        for t in targets {
            t.append_deltas(records)?;
        }
        Ok(())
    }

    /// Search `seg` directly on `server` — the per-server request surface.
    /// A server that does not hold the segment answers with the typed
    /// [`TvError::Moved`] redirect (carrying the current generation) rather
    /// than an empty result that could be mistaken for a real answer.
    pub fn search_on(
        &self,
        server: usize,
        seg: SegmentId,
        query: &[f32],
        k: usize,
        ef: usize,
        tid: Tid,
    ) -> TvResult<Vec<Neighbor>> {
        let store = self.stores.get(server).ok_or_else(|| {
            TvError::InvalidArgument(format!("server {server} outside the cluster"))
        })?;
        let Some(segment) = store.read().get(&seg).cloned() else {
            return Err(TvError::Moved {
                segment: seg,
                generation: self.generation(),
            });
        };
        let (r, _) = segment.search(query, k, ef, None, tid, &self.config.planner);
        Ok(r)
    }

    /// The migration failure log (phase, segment, error per abort).
    #[must_use]
    pub fn migration_errors(&self) -> &MigrationErrors {
        &self.migration_errors
    }

    /// Server `s`'s local segment store (migration installs/releases copies
    /// here).
    pub(crate) fn store(&self, server: usize) -> &SegmentStore {
        &self.stores[server]
    }

    /// The append gate for `seg` (created on first use).
    pub(crate) fn write_gate(&self, seg: SegmentId) -> Arc<Mutex<()>> {
        Arc::clone(self.write_gates.lock().entry(seg).or_default())
    }

    /// Atomically publish the placement move `seg: from -> to`, returning
    /// the new generation. Validation (source holds, destination does not)
    /// lives in [`PlacementTable::with_move`]. Callers must hold the
    /// segment's append gate.
    pub(crate) fn commit_flip(&self, seg: SegmentId, from: usize, to: usize) -> TvResult<u64> {
        let mut table = self.table.write();
        let next = table.with_move(seg, from, to)?;
        let generation = next.generation();
        *table = Arc::new(next);
        Ok(generation)
    }

    /// The fault-injection schedule workers consult on every request.
    #[must_use]
    pub fn faults(&self) -> &FaultPlan {
        &self.faults
    }

    /// Arm a fault on `server` for its next `times` requests (`None` =
    /// until cleared). Convenience for [`ClusterRuntime::faults`].
    pub fn inject_fault(&self, server: usize, kind: crate::fault::FaultKind, times: Option<u64>) {
        self.faults.inject(server, kind, times);
    }

    /// Mark a server down (its segments shift to replicas).
    pub fn fail_server(&self, server: usize) {
        let mut down = self.down.write();
        if !down.contains(&server) {
            down.push(server);
        }
    }

    /// Bring a failed server back.
    pub fn recover_server(&self, server: usize) {
        self.down.write().retain(|&s| s != server);
    }

    /// Distributed top-k: scatter per-server requests, gather and globally
    /// merge, recovering from unresponsive servers via replica retry.
    pub fn top_k(
        &self,
        query: &[f32],
        k: usize,
        ef: usize,
        tid: Tid,
        filters: Option<&FilterSet>,
    ) -> TvResult<ClusterResponse> {
        self.top_k_deadline(query, k, ef, tid, filters, Deadline::none())
    }

    /// Route each pending segment to a live, non-suspect holder of the
    /// given (query-pinned) placement table. Returns the per-server
    /// assignment and the segments with no holder left.
    fn route(
        table: &PlacementTable,
        pending: &HashSet<SegmentId>,
        down: &[usize],
        suspects: &HashSet<usize>,
    ) -> (HashMap<usize, Vec<SegmentId>>, Vec<SegmentId>) {
        let excluded: Vec<usize> = suspects.iter().copied().collect();
        let mut assignment: HashMap<usize, Vec<SegmentId>> = HashMap::new();
        let mut unroutable = Vec::new();
        for &seg in pending {
            match table.serving_excluding(seg, down, &excluded) {
                Some(s) => assignment.entry(s).or_default().push(seg),
                None => unroutable.push(seg),
            }
        }
        (assignment, unroutable)
    }

    /// Distributed top-k with a deadline: workers check it before every
    /// segment search, and every coordinator-side recovery wait is bounded
    /// by [`Deadline::bounded_wait`].
    ///
    /// Strict mode (`degraded_mode == false`): a segment with no live
    /// holder fails the query with [`TvError::Cluster`], and an expired
    /// deadline fails it with [`TvError::Timeout`]. Degraded mode: the
    /// query returns whatever was gathered, with an accurate
    /// [`Coverage`] — partial answers beat dead ones for serving RAG.
    #[allow(clippy::too_many_lines)]
    pub fn top_k_deadline(
        &self,
        query: &[f32],
        k: usize,
        ef: usize,
        tid: Tid,
        filters: Option<&FilterSet>,
        deadline: Deadline,
    ) -> TvResult<ClusterResponse> {
        deadline.check("cluster top-k scatter")?;
        let policy = self.config.retry;
        let degraded = self.config.degraded_mode;
        let down = self.down.read().clone();
        let filters = Arc::new(filters.cloned().unwrap_or_default());

        // Pin the placement: this query routes against exactly this view
        // even if a migration flip swaps the runtime's table mid-flight. A
        // server drained after the pin answers `moved`, which re-resolves
        // against the fresh table below.
        let table = self.table.read().clone();

        // Resolve the filter policy at the coordinator: excluded segments
        // are covered (their answer is empty by policy), never scattered.
        let all_segments = table.segment_ids();
        let segments_total = all_segments.len();
        let mut covered_by_policy = 0usize;
        let mut pending: HashSet<SegmentId> = HashSet::new();
        for seg in all_segments {
            if matches!(filters.effective(seg), SegmentFilter::Excluded) {
                covered_by_policy += 1;
            } else {
                pending.insert(seg);
            }
        }

        let query = Arc::new(query.to_vec());
        let (reply_tx, reply_rx) = unbounded::<WorkerReply>();
        // Per-segment result lists, keyed for a deterministic merge order
        // regardless of which holder answered.
        let mut gathered: Vec<(SegmentId, Vec<Neighbor>)> = Vec::new();
        let mut times = Vec::new();
        let mut stats = SearchStats::default();
        let mut suspects: HashSet<usize> = HashSet::new();
        let mut retries = 0u64;
        let mut hedges = 0u64;
        let mut moved_redirects = 0u64;
        // Per-segment redirect budget: a livelock guard against a segment
        // bouncing between stale views (one flip moves a segment once, so
        // real migrations need exactly one redirect).
        let mut redirect_budget: HashMap<SegmentId, u32> = HashMap::new();
        let mut worker_deadline_hit = false;
        let mut wave = 0usize;

        'waves: while !pending.is_empty() {
            let (assignment, unroutable) = Self::route(&table, &pending, &down, &suspects);
            if !degraded && !unroutable.is_empty() {
                let seg = unroutable[0];
                return Err(TvError::Cluster(if wave == 0 {
                    format!("segment {seg} has no live holder")
                } else {
                    format!("segment {seg} has no live holder left after {wave} retry wave(s)")
                }));
            }
            if assignment.is_empty() {
                break;
            }

            // Scatter this wave.
            let mut outstanding: HashSet<usize> = HashSet::new();
            let mut wave_assignment: HashMap<usize, Vec<SegmentId>> = HashMap::new();
            for (server, segments) in assignment {
                self.dispatch(Request {
                    server,
                    query: Arc::clone(&query),
                    k,
                    ef,
                    tid,
                    segments: segments.clone(),
                    filters: Arc::clone(&filters),
                    deadline,
                    reply: reply_tx.clone(),
                });
                if wave > 0 {
                    retries += 1;
                }
                outstanding.insert(server);
                wave_assignment.insert(server, segments);
            }

            // Gather: accept replies per segment (late and hedged replies
            // dedupe naturally) until the wave's servers all answered or
            // the attempt/deadline budget runs out.
            let wave_start = Instant::now();
            let mut hedged_this_wave = false;
            while !outstanding.is_empty() && !pending.is_empty() {
                let elapsed = wave_start.elapsed();
                if elapsed >= policy.attempt_timeout {
                    break;
                }
                let mut wait = policy.attempt_timeout - elapsed;
                if let Some(h) = policy.hedge_after {
                    if !hedged_this_wave {
                        if elapsed >= h {
                            hedges += self.send_hedges(
                                &table,
                                &wave_assignment,
                                &pending,
                                &down,
                                &suspects,
                                &mut outstanding,
                                &query,
                                k,
                                ef,
                                tid,
                                &filters,
                                deadline,
                                &reply_tx,
                            );
                            hedged_this_wave = true;
                        } else {
                            wait = wait.min(h - elapsed);
                        }
                    }
                }
                let wait = deadline.bounded_wait(wait);
                if wait.is_zero() {
                    break 'waves;
                }
                match reply_rx.recv_timeout(wait) {
                    Ok(reply) => {
                        outstanding.remove(&reply.server);
                        times.push(reply.took);
                        stats.merge(&reply.stats);
                        worker_deadline_hit |= reply.timed_out;
                        for (seg, list) in reply.results {
                            if pending.remove(&seg) {
                                gathered.push((seg, list));
                            }
                        }
                        for seg in reply.moved {
                            if !pending.contains(&seg) {
                                continue;
                            }
                            let budget = redirect_budget.entry(seg).or_insert(0);
                            if *budget >= 3 {
                                continue;
                            }
                            *budget += 1;
                            // Typed redirect: re-resolve against the
                            // *fresh* table — the pinned view is what sent
                            // us to the drained server in the first place.
                            let fresh = self.table.read().clone();
                            let excluded: Vec<usize> = suspects.iter().copied().collect();
                            if let Some(target) = fresh.serving_excluding(seg, &down, &excluded) {
                                moved_redirects += 1;
                                self.dispatch(Request {
                                    server: target,
                                    query: Arc::clone(&query),
                                    k,
                                    ef,
                                    tid,
                                    segments: vec![seg],
                                    filters: Arc::clone(&filters),
                                    deadline,
                                    reply: reply_tx.clone(),
                                });
                                outstanding.insert(target);
                                wave_assignment.entry(target).or_default().push(seg);
                            }
                        }
                    }
                    Err(RecvTimeoutError::Timeout) => {}
                    Err(RecvTimeoutError::Disconnected) => break,
                }
            }
            // Whoever did not answer in time is a suspect: their segments
            // re-route next wave.
            for server in outstanding {
                suspects.insert(server);
            }

            if pending.is_empty() || deadline.expired() {
                break;
            }
            wave += 1;
            if wave > policy.max_retries {
                break;
            }
            let backoff = policy
                .backoff
                .saturating_mul(1u32 << (wave - 1).min(16) as u32);
            let backoff = deadline.bounded_wait(backoff);
            if !backoff.is_zero() {
                std::thread::sleep(backoff);
            }
        }

        // Final accounting: a down server that was the only holder of an
        // unsearched segment failed this query just as surely as a timeout.
        let mut failed = suspects;
        for &seg in &pending {
            for &holder in table.holders(seg) {
                if down.contains(&holder) {
                    failed.insert(holder);
                }
            }
        }
        let coverage = Coverage {
            segments_searched: covered_by_policy + gathered.len(),
            segments_total,
            servers_failed: failed.len(),
        };

        if !degraded && !pending.is_empty() {
            if worker_deadline_hit || deadline.expired() {
                return Err(TvError::Timeout(
                    "deadline exceeded in cluster worker segment search".into(),
                ));
            }
            return Err(TvError::Cluster(format!(
                "{} of {segments_total} segment(s) unsearched after {wave} retry wave(s)",
                pending.len(),
            )));
        }

        // Deterministic merge order: by segment id, not arrival order.
        gathered.sort_unstable_by_key(|(seg, _)| *seg);
        let mut unsearched: Vec<SegmentId> = pending.into_iter().collect();
        unsearched.sort_unstable();
        Ok(ClusterResponse {
            neighbors: merge_topk(gathered.into_iter().map(|(_, list)| list), k),
            times,
            stats,
            coverage,
            retries,
            hedges,
            moved_redirects,
            unsearched,
        })
    }

    /// Duplicate the slowest outstanding server's pending segments to
    /// untried replica holders; returns the number of hedge requests sent.
    /// The per-segment dedupe in the gather loop makes the race safe.
    #[allow(clippy::too_many_arguments)]
    fn send_hedges(
        &self,
        table: &PlacementTable,
        wave_assignment: &HashMap<usize, Vec<SegmentId>>,
        pending: &HashSet<SegmentId>,
        down: &[usize],
        suspects: &HashSet<usize>,
        outstanding: &mut HashSet<usize>,
        query: &Arc<Vec<f32>>,
        k: usize,
        ef: usize,
        tid: Tid,
        filters: &Arc<FilterSet>,
        deadline: Deadline,
        reply_tx: &Sender<WorkerReply>,
    ) -> u64 {
        // Slowest = the outstanding server with the most still-pending
        // segments (ties broken by id for determinism).
        let mut slow: Option<(usize, Vec<SegmentId>)> = None;
        for &server in outstanding.iter() {
            let Some(assigned) = wave_assignment.get(&server) else {
                continue;
            };
            let mut segs: Vec<SegmentId> = assigned
                .iter()
                .copied()
                .filter(|s| pending.contains(s))
                .collect();
            segs.sort_unstable();
            let better = match &slow {
                None => !segs.is_empty(),
                Some((best, best_segs)) => {
                    segs.len() > best_segs.len()
                        || (segs.len() == best_segs.len() && server < *best)
                }
            };
            if better {
                slow = Some((server, segs));
            }
        }
        let Some((slow_server, segs)) = slow else {
            return 0;
        };
        // Route the slow server's segments to holders not already involved.
        let mut avoid: Vec<usize> = suspects.iter().copied().collect();
        avoid.extend(outstanding.iter().copied());
        if !avoid.contains(&slow_server) {
            avoid.push(slow_server);
        }
        let mut per_alt: HashMap<usize, Vec<SegmentId>> = HashMap::new();
        for seg in segs {
            if let Some(alt) = table.serving_excluding(seg, down, &avoid) {
                per_alt.entry(alt).or_default().push(seg);
            }
        }
        let mut sent = 0u64;
        for (alt, segments) in per_alt {
            self.dispatch(Request {
                server: alt,
                query: Arc::clone(query),
                k,
                ef,
                tid,
                segments,
                filters: Arc::clone(filters),
                deadline,
                reply: reply_tx.clone(),
            });
            outstanding.insert(alt);
            sent += 1;
        }
        sent
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fault::FaultKind;
    use tv_common::ids::{LocalId, VertexId};
    use tv_common::{Bitmap, DistanceMetric, SplitMix64};
    use tv_embedding::EmbeddingTypeDef;
    use tv_hnsw::DeltaRecord;

    fn fast_retry() -> RetryPolicy {
        RetryPolicy {
            max_retries: 2,
            attempt_timeout: Duration::from_millis(100),
            backoff: Duration::from_millis(1),
            hedge_after: None,
        }
    }

    fn loaded_cluster_with(
        config: RuntimeConfig,
        segments: usize,
        per_segment: usize,
    ) -> (ClusterRuntime, Vec<(VertexId, Vec<f32>)>) {
        let runtime = ClusterRuntime::start(config);
        let def = EmbeddingTypeDef::new("e", 8, "M", DistanceMetric::L2);
        let mut rng = SplitMix64::new(31);
        let mut all = Vec::new();
        let mut tid = 0u64;
        for s in 0..segments {
            let seg = Arc::new(EmbeddingSegment::new(SegmentId(s as u32), &def, 1024));
            let mut recs = Vec::new();
            for l in 0..per_segment {
                tid += 1;
                let v: Vec<f32> = (0..8).map(|_| rng.next_f32() * 5.0).collect();
                let id = VertexId::new(SegmentId(s as u32), LocalId(l as u32));
                recs.push(DeltaRecord::upsert(id, Tid(tid), v.clone()));
                all.push((id, v));
            }
            seg.append_deltas(&recs).unwrap();
            seg.delta_merge(Tid(tid)).unwrap();
            seg.index_merge(Tid(tid)).unwrap();
            runtime.add_segment(seg);
        }
        (runtime, all)
    }

    fn loaded_cluster(
        servers: usize,
        replication: usize,
        segments: usize,
        per_segment: usize,
    ) -> (ClusterRuntime, Vec<(VertexId, Vec<f32>)>) {
        loaded_cluster_with(
            RuntimeConfig {
                servers,
                replication,
                planner: PlannerConfig::default().with_brute_threshold(4),
                retry: fast_retry(),
                degraded_mode: false,
                build_threads: 1,
            },
            segments,
            per_segment,
        )
    }

    fn exact_top1(all: &[(VertexId, Vec<f32>)], q: &[f32]) -> VertexId {
        all.iter()
            .min_by(|a, b| {
                tv_common::metric::l2_sq(q, &a.1).total_cmp(&tv_common::metric::l2_sq(q, &b.1))
            })
            .unwrap()
            .0
    }

    fn ids(r: &ClusterResponse) -> Vec<VertexId> {
        r.neighbors.iter().map(|n| n.id).collect()
    }

    #[test]
    fn distributed_matches_exact_top1() {
        let (runtime, all) = loaded_cluster(4, 1, 8, 50);
        for probe in [0usize, 17, 133, 399] {
            let q = &all[probe].1;
            let r = runtime.top_k(q, 1, 64, Tid::MAX, None).unwrap();
            assert_eq!(r.neighbors[0].id, exact_top1(&all, q));
            assert_eq!(r.times.len(), 4);
            assert!(r.stats.distance_computations > 0);
            assert!(r.coverage.is_complete());
            assert_eq!(r.retries, 0);
            assert_eq!(r.hedges, 0);
        }
    }

    #[test]
    fn global_merge_is_sorted_topk() {
        let (runtime, all) = loaded_cluster(3, 1, 6, 40);
        let r = runtime.top_k(&all[5].1, 10, 64, Tid::MAX, None).unwrap();
        assert_eq!(r.neighbors.len(), 10);
        assert!(r.neighbors.windows(2).all(|w| w[0].dist <= w[1].dist));
    }

    #[test]
    fn failover_to_replicas() {
        let (runtime, all) = loaded_cluster(3, 2, 6, 30);
        let q = &all[10].1;
        let before = runtime.top_k(q, 5, 64, Tid::MAX, None).unwrap();
        runtime.fail_server(0);
        let after = runtime.top_k(q, 5, 64, Tid::MAX, None).unwrap();
        assert_eq!(ids(&before), ids(&after));
        assert!(after.coverage.is_complete());
        runtime.recover_server(0);
        let again = runtime.top_k(q, 5, 64, Tid::MAX, None).unwrap();
        assert_eq!(after.neighbors.len(), again.neighbors.len());
    }

    #[test]
    fn unreplicated_cluster_fails_hard_when_server_down() {
        let (runtime, all) = loaded_cluster(3, 1, 6, 20);
        runtime.fail_server(1);
        let err = runtime.top_k(&all[0].1, 3, 32, Tid::MAX, None).unwrap_err();
        assert!(matches!(err, TvError::Cluster(_)));
    }

    #[test]
    fn crash_fault_recovers_via_replica_retry_bit_identical() {
        let (runtime, all) = loaded_cluster(4, 2, 8, 30);
        let q = &all[21].1;
        let healthy = runtime.top_k(q, 10, 64, Tid::MAX, None).unwrap();
        runtime.inject_fault(1, FaultKind::CrashOnRecv, Some(1));
        let recovered = runtime.top_k(q, 10, 64, Tid::MAX, None).unwrap();
        assert_eq!(ids(&healthy), ids(&recovered));
        assert!(recovered.coverage.is_complete());
        assert!(recovered.retries > 0, "recovery must have re-routed");
        assert_eq!(recovered.coverage.servers_failed, 1);
        // The counted fault expired: the next query is clean again.
        let clean = runtime.top_k(q, 10, 64, Tid::MAX, None).unwrap();
        assert_eq!(clean.retries, 0);
        assert_eq!(clean.coverage.servers_failed, 0);
    }

    #[test]
    fn dropped_reply_is_indistinguishable_from_crash() {
        let (runtime, all) = loaded_cluster(4, 2, 8, 30);
        let q = &all[77].1;
        let healthy = runtime.top_k(q, 5, 64, Tid::MAX, None).unwrap();
        runtime.inject_fault(2, FaultKind::DropReply, Some(1));
        let recovered = runtime.top_k(q, 5, 64, Tid::MAX, None).unwrap();
        assert_eq!(ids(&healthy), ids(&recovered));
        assert!(recovered.coverage.is_complete());
        assert!(recovered.retries > 0);
    }

    #[test]
    fn strict_mode_errors_when_retries_exhaust_holders() {
        let (runtime, all) = loaded_cluster(3, 1, 6, 20);
        // replication = 1: the crashed server's segments have no replica.
        runtime.inject_fault(0, FaultKind::CrashOnRecv, Some(8));
        let err = runtime.top_k(&all[0].1, 3, 32, Tid::MAX, None).unwrap_err();
        assert!(matches!(err, TvError::Cluster(_)), "got {err:?}");
    }

    #[test]
    fn degraded_mode_returns_partial_results_with_accurate_coverage() {
        let (runtime, all) = loaded_cluster_with(
            RuntimeConfig {
                servers: 4,
                replication: 1,
                planner: PlannerConfig::default().with_brute_threshold(4),
                retry: fast_retry(),
                degraded_mode: true,
                build_threads: 1,
            },
            8,
            25,
        );
        runtime.fail_server(2); // holds segments 2 and 6
        let r = runtime.top_k(&all[0].1, 5, 64, Tid::MAX, None).unwrap();
        assert_eq!(r.coverage.segments_total, 8);
        assert_eq!(r.coverage.segments_searched, 6);
        assert_eq!(r.coverage.servers_failed, 1);
        assert!(!r.coverage.is_complete());
        assert_eq!(r.unsearched, vec![SegmentId(2), SegmentId(6)]);
        // The partial answer is exact over the segments that were searched.
        let live: Vec<(VertexId, Vec<f32>)> = all
            .iter()
            .filter(|(id, _)| !r.unsearched.contains(&id.segment()))
            .cloned()
            .collect();
        assert_eq!(r.neighbors[0].id, exact_top1(&live, &all[0].1));
        assert!(r
            .neighbors
            .iter()
            .all(|n| !r.unsearched.contains(&n.id.segment())));
    }

    #[test]
    fn degraded_mode_covers_injected_crash_without_replicas() {
        let (runtime, all) = loaded_cluster_with(
            RuntimeConfig {
                servers: 4,
                replication: 1,
                planner: PlannerConfig::default().with_brute_threshold(4),
                retry: RetryPolicy {
                    max_retries: 1,
                    attempt_timeout: Duration::from_millis(60),
                    backoff: Duration::from_millis(1),
                    hedge_after: None,
                },
                degraded_mode: true,
                build_threads: 1,
            },
            8,
            25,
        );
        // Enough uses to swallow the initial scatter and the retry wave.
        runtime.inject_fault(3, FaultKind::CrashOnRecv, Some(4));
        let r = runtime.top_k(&all[0].1, 5, 64, Tid::MAX, None).unwrap();
        assert_eq!(r.coverage.segments_searched, 6);
        assert_eq!(r.coverage.servers_failed, 1);
        assert_eq!(r.unsearched, vec![SegmentId(3), SegmentId(7)]);
        runtime.faults().clear_all();
        let clean = runtime.top_k(&all[0].1, 5, 64, Tid::MAX, None).unwrap();
        assert!(clean.coverage.is_complete());
    }

    #[test]
    fn hedging_beats_a_straggler_and_stays_bit_identical() {
        let (runtime, all) = loaded_cluster_with(
            RuntimeConfig {
                servers: 4,
                replication: 2,
                planner: PlannerConfig::default().with_brute_threshold(4),
                retry: RetryPolicy {
                    max_retries: 2,
                    attempt_timeout: Duration::from_secs(2),
                    backoff: Duration::from_millis(1),
                    hedge_after: Some(Duration::from_millis(10)),
                },
                degraded_mode: false,
                build_threads: 1,
            },
            8,
            30,
        );
        let q = &all[40].1;
        let healthy = runtime.top_k(q, 10, 64, Tid::MAX, None).unwrap();
        runtime.inject_fault(0, FaultKind::Delay(Duration::from_millis(300)), Some(1));
        let started = Instant::now();
        let hedged = runtime.top_k(q, 10, 64, Tid::MAX, None).unwrap();
        assert_eq!(ids(&healthy), ids(&hedged));
        assert!(hedged.hedges >= 1, "hedge must have fired");
        assert!(hedged.coverage.is_complete());
        assert!(
            started.elapsed() < Duration::from_millis(290),
            "hedge should beat the 300ms straggler, took {:?}",
            started.elapsed()
        );
    }

    #[test]
    fn degraded_deadline_keeps_finished_workers_results() {
        let (runtime, all) = loaded_cluster_with(
            RuntimeConfig {
                servers: 4,
                replication: 1,
                planner: PlannerConfig::default().with_brute_threshold(4),
                retry: RetryPolicy {
                    max_retries: 0,
                    attempt_timeout: Duration::from_secs(5),
                    backoff: Duration::ZERO,
                    hedge_after: None,
                },
                degraded_mode: true,
                build_threads: 1,
            },
            8,
            25,
        );
        // One straggler sleeps far past the deadline; the other three
        // workers' finished top-k lists must survive.
        runtime.inject_fault(1, FaultKind::Delay(Duration::from_secs(2)), Some(1));
        let r = runtime
            .top_k_deadline(
                &all[0].1,
                5,
                64,
                Tid::MAX,
                None,
                Deadline::after(Duration::from_millis(250)),
            )
            .unwrap();
        assert_eq!(r.coverage.segments_searched, 6);
        assert_eq!(r.unsearched, vec![SegmentId(1), SegmentId(5)]);
        assert!(!r.neighbors.is_empty());
    }

    #[test]
    fn filters_apply_per_segment() {
        let (runtime, all) = loaded_cluster(2, 1, 4, 25);
        // Only segment 2, locals 0..5 are valid; deny everything unlisted.
        let mut bm = Bitmap::new(1024);
        for l in 0..5 {
            bm.set(l, true);
        }
        let filters = FilterSet::deny_unlisted().with(SegmentId(2), bm);
        let r = runtime
            .top_k(&all[0].1, 3, 64, Tid::MAX, Some(&filters))
            .unwrap();
        assert!(!r.neighbors.is_empty());
        assert!(r
            .neighbors
            .iter()
            .all(|n| n.id.segment() == SegmentId(2) && n.id.local().0 < 5));
        // Policy-excluded segments are covered: exclusion is an exact
        // answer, not a failure.
        assert!(r.coverage.is_complete());
    }

    #[test]
    fn absent_segment_cannot_leak_rows_regression() {
        // Regression for the pre-FilterSet footgun: an RBAC bitmap that
        // misses a segment used to fall through to "search unfiltered".
        let (runtime, all) = loaded_cluster(2, 1, 4, 25);
        let mut bm = Bitmap::new(1024);
        bm.set(0, true);
        // deny_unlisted with a bitmap ONLY for segment 1 — segments 0, 2, 3
        // have no entry and must contribute nothing.
        let filters = FilterSet::deny_unlisted().with(SegmentId(1), bm);
        let r = runtime
            .top_k(&all[0].1, 10, 64, Tid::MAX, Some(&filters))
            .unwrap();
        assert_eq!(r.neighbors.len(), 1, "only the single allowed row");
        assert_eq!(r.neighbors[0].id, VertexId::new(SegmentId(1), LocalId(0)));
        // The permissive default keeps pre-filter semantics for callers
        // that only restrict the segments they name.
        let mut bm2 = Bitmap::new(1024);
        bm2.set(0, true);
        let permissive = FilterSet::unfiltered().with(SegmentId(1), bm2);
        let r2 = runtime
            .top_k(&all[0].1, 100, 64, Tid::MAX, Some(&permissive))
            .unwrap();
        assert!(
            r2.neighbors.iter().any(|n| n.id.segment() != SegmentId(1)),
            "unlisted segments stay searchable under FilterDefault::All"
        );
    }

    #[test]
    fn expired_deadline_rejected_before_scatter() {
        let (runtime, all) = loaded_cluster(2, 1, 4, 20);
        let err = runtime
            .top_k_deadline(&all[0].1, 3, 32, Tid::MAX, None, Deadline::expired_now())
            .unwrap_err();
        assert!(matches!(err, TvError::Timeout(_)));
        // A generous deadline behaves exactly like no deadline.
        let r = runtime
            .top_k_deadline(
                &all[0].1,
                3,
                32,
                Tid::MAX,
                None,
                Deadline::after(Duration::from_secs(60)),
            )
            .unwrap();
        let r2 = runtime.top_k(&all[0].1, 3, 32, Tid::MAX, None).unwrap();
        assert_eq!(ids(&r), ids(&r2));
    }

    #[test]
    fn concurrent_queries_from_many_client_threads() {
        let (runtime, all) = loaded_cluster(4, 1, 8, 30);
        let runtime = Arc::new(runtime);
        let all = Arc::new(all);
        let mut handles = Vec::new();
        for t in 0..8 {
            let rt = Arc::clone(&runtime);
            let data = Arc::clone(&all);
            handles.push(std::thread::spawn(move || {
                for i in 0..20 {
                    let q = &data[(t * 13 + i * 7) % data.len()].1;
                    let r = rt.top_k(q, 5, 32, Tid::MAX, None).unwrap();
                    assert!(!r.neighbors.is_empty());
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
    }

    #[test]
    fn index_merge_all_folds_every_segment_through_the_pool() {
        let (runtime, all) = loaded_cluster(3, 1, 6, 25);
        // Append a second delta wave the initial load did not index, then
        // flush it so index_merge_all has delta files to fold.
        let def = EmbeddingTypeDef::new("e", 8, "M", DistanceMetric::L2);
        let _ = def;
        let mut tid = 6 * 25;
        let mut extra = Vec::new();
        for s in 0..6u32 {
            let seg = runtime.segment(SegmentId(s)).unwrap();
            let mut recs = Vec::new();
            for l in 25..30u32 {
                tid += 1;
                let v: Vec<f32> = (0..8).map(|d| (d + l + s * 100) as f32).collect();
                let id = VertexId::new(SegmentId(s), LocalId(l));
                recs.push(DeltaRecord::upsert(id, Tid(tid), v.clone()));
                extra.push((id, v));
            }
            runtime.append_deltas(SegmentId(s), &recs).unwrap();
            seg.delta_merge(Tid(tid)).unwrap();
        }
        let merged = runtime.index_merge_all(Tid(tid)).unwrap();
        assert_eq!(merged.len(), 6);
        assert!(
            merged.iter().all(|(_, m)| m.is_some()),
            "every segment had deltas to fold: {merged:?}"
        );
        // The freshly merged vectors are now served from the indexes.
        let (id, v) = &extra[7];
        let r = runtime.top_k(v, 1, 64, Tid::MAX, None).unwrap();
        assert_eq!(r.neighbors[0].id, *id);
        let _ = all;
    }

    #[test]
    fn search_on_a_non_holder_is_a_typed_moved_redirect() {
        let (runtime, all) = loaded_cluster(3, 1, 6, 20);
        // Segment 1 lives on server 1; server 2 does not hold it.
        let ok = runtime
            .search_on(1, SegmentId(1), &all[25].1, 3, 32, Tid::MAX)
            .unwrap();
        assert!(!ok.is_empty());
        let err = runtime
            .search_on(2, SegmentId(1), &all[25].1, 3, 32, Tid::MAX)
            .unwrap_err();
        assert!(
            matches!(
                err,
                TvError::Moved {
                    segment: SegmentId(1),
                    generation: 0,
                }
            ),
            "got {err:?}"
        );
        assert!(err.is_retryable());
        assert!(runtime
            .search_on(99, SegmentId(1), &all[25].1, 3, 32, Tid::MAX)
            .is_err());
    }

    #[test]
    fn add_segment_registers_every_replica_with_one_shared_copy() {
        let (runtime, _all) = loaded_cluster(4, 2, 8, 10);
        let table = runtime.placement();
        assert_eq!(table.generation(), 0);
        for s in 0..8u32 {
            let seg = SegmentId(s);
            let holders = table.holders(seg);
            assert_eq!(holders.len(), 2);
            let copies: Vec<_> = holders
                .iter()
                .map(|&h| runtime.store(h).read().get(&seg).cloned().unwrap())
                .collect();
            assert!(
                Arc::ptr_eq(&copies[0], &copies[1]),
                "replicas share one copy"
            );
            // Non-holders have nothing.
            for server in 0..4 {
                if !holders.contains(&server) {
                    assert!(runtime.store(server).read().get(&seg).is_none());
                }
            }
        }
    }

    #[test]
    fn append_deltas_requires_a_registered_segment() {
        let (runtime, _all) = loaded_cluster(2, 1, 2, 10);
        let v: Vec<f32> = vec![0.0; 8];
        let rec = DeltaRecord::upsert(VertexId::new(SegmentId(9), LocalId(0)), Tid(1000), v);
        let err = runtime.append_deltas(SegmentId(9), &[rec]).unwrap_err();
        assert!(matches!(err, TvError::NotFound(_)), "got {err:?}");
    }
}
