//! Deterministic fault injection for the cluster runtime.
//!
//! `fail_server` only flips routing; it cannot exercise the interesting
//! failure modes — a worker that receives a request and dies, a reply lost
//! on the wire, a straggler. [`FaultPlan`] injects exactly those, per
//! server and with bounded repetition, so the coordinator's retry, hedging,
//! and degraded-mode paths are *testable* (same seed → same faults) instead
//! of only simulatable.
//!
//! Workers consult the plan once per received request via
//! [`FaultPlan::on_receive`]; the returned [`FaultAction`] tells the worker
//! loop what to sabotage. Faults injected with a `times` budget expire on
//! their own, which keeps chaos tests free of cleanup ordering bugs.

use parking_lot::Mutex;
use std::collections::HashMap;
use std::time::Duration;
use tv_common::SplitMix64;

/// One kind of injected misbehavior.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// The worker receives the request and never replies (process crash as
    /// seen from the coordinator). Detected by the coordinator's
    /// per-attempt timeout and recovered via replica re-route.
    CrashOnRecv,
    /// The worker does the full search but the reply is lost (network
    /// partition on the return path). Indistinguishable from a crash at the
    /// coordinator — which is exactly the point.
    DropReply,
    /// Fixed extra latency before the worker starts searching (straggler).
    Delay(Duration),
    /// Pseudo-random latency in `[0, max)`, deterministic per
    /// `(seed, server, request index)` — a reproducible noisy network.
    SeededDelay {
        /// Exclusive upper bound on the injected latency.
        max: Duration,
        /// Seed mixed with the server id and request counter.
        seed: u64,
    },
}

/// What the worker loop should do with one incoming request, aggregated
/// over every fault active on that server.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FaultAction {
    /// Swallow the request without replying.
    pub crash: bool,
    /// Do the work, then lose the reply.
    pub drop_reply: bool,
    /// Sleep this long before searching.
    pub delay: Duration,
}

impl FaultAction {
    /// True when the request is processed and answered normally.
    #[must_use]
    pub fn is_clean(&self) -> bool {
        !self.crash && !self.drop_reply && self.delay.is_zero()
    }
}

#[derive(Debug, Clone, Copy)]
struct ActiveFault {
    kind: FaultKind,
    /// Requests this fault still applies to (`None` = until cleared).
    remaining: Option<u64>,
}

#[derive(Default)]
struct ServerState {
    faults: Vec<ActiveFault>,
    /// Requests this server has received (drives seeded delays).
    requests_seen: u64,
}

/// Per-server fault schedule shared between the coordinator (which injects
/// and clears) and the worker threads (which consult it per request).
#[derive(Default)]
pub struct FaultPlan {
    state: Mutex<HashMap<usize, ServerState>>,
}

impl FaultPlan {
    /// An empty plan: every request is clean.
    #[must_use]
    pub fn new() -> Self {
        FaultPlan::default()
    }

    /// Arm `kind` on `server` for the next `times` requests it receives
    /// (`None` = until [`FaultPlan::clear`]). Multiple faults stack: a
    /// delay plus a drop-reply models a slow worker whose answer is lost.
    pub fn inject(&self, server: usize, kind: FaultKind, times: Option<u64>) {
        self.state
            .lock()
            .entry(server)
            .or_default()
            .faults
            .push(ActiveFault {
                kind,
                remaining: times,
            });
    }

    /// Remove every fault armed on `server`.
    pub fn clear(&self, server: usize) {
        if let Some(s) = self.state.lock().get_mut(&server) {
            s.faults.clear();
        }
    }

    /// Remove every fault on every server.
    pub fn clear_all(&self) {
        for s in self.state.lock().values_mut() {
            s.faults.clear();
        }
    }

    /// Number of faults currently armed (for assertions in tests).
    #[must_use]
    pub fn armed(&self) -> usize {
        self.state.lock().values().map(|s| s.faults.len()).sum()
    }

    /// Consulted by a worker for each received request: aggregates the
    /// active faults into one [`FaultAction`] and consumes one use from
    /// every counted fault.
    pub fn on_receive(&self, server: usize) -> FaultAction {
        let mut state = self.state.lock();
        let Some(s) = state.get_mut(&server) else {
            return FaultAction::default();
        };
        s.requests_seen += 1;
        let request = s.requests_seen;
        let mut action = FaultAction::default();
        for f in &mut s.faults {
            match f.kind {
                FaultKind::CrashOnRecv => action.crash = true,
                FaultKind::DropReply => action.drop_reply = true,
                FaultKind::Delay(d) => action.delay += d,
                FaultKind::SeededDelay { max, seed } => {
                    let mut rng = SplitMix64::new(seed ^ ((server as u64) << 32) ^ request);
                    action.delay += max.mul_f64(f64::from(rng.next_f32()));
                }
            }
            if let Some(n) = &mut f.remaining {
                *n -= 1;
            }
        }
        s.faults.retain(|f| f.remaining != Some(0));
        action
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clean_by_default() {
        let plan = FaultPlan::new();
        assert!(plan.on_receive(0).is_clean());
        assert_eq!(plan.armed(), 0);
    }

    #[test]
    fn counted_fault_expires_on_its_own() {
        let plan = FaultPlan::new();
        plan.inject(1, FaultKind::CrashOnRecv, Some(2));
        assert!(plan.on_receive(1).crash);
        assert!(plan.on_receive(1).crash);
        assert!(plan.on_receive(1).is_clean());
        assert_eq!(plan.armed(), 0);
        // Other servers were never affected.
        assert!(plan.on_receive(0).is_clean());
    }

    #[test]
    fn uncounted_fault_lasts_until_cleared() {
        let plan = FaultPlan::new();
        plan.inject(0, FaultKind::DropReply, None);
        for _ in 0..5 {
            assert!(plan.on_receive(0).drop_reply);
        }
        plan.clear(0);
        assert!(plan.on_receive(0).is_clean());
    }

    #[test]
    fn faults_stack() {
        let plan = FaultPlan::new();
        plan.inject(0, FaultKind::Delay(Duration::from_millis(3)), Some(1));
        plan.inject(0, FaultKind::DropReply, Some(1));
        let a = plan.on_receive(0);
        assert!(a.drop_reply);
        assert_eq!(a.delay, Duration::from_millis(3));
    }

    #[test]
    fn seeded_delay_is_deterministic_per_request() {
        let mk = || {
            let plan = FaultPlan::new();
            plan.inject(
                2,
                FaultKind::SeededDelay {
                    max: Duration::from_millis(10),
                    seed: 42,
                },
                None,
            );
            (plan.on_receive(2).delay, plan.on_receive(2).delay)
        };
        let (a1, a2) = mk();
        let (b1, b2) = mk();
        assert_eq!(a1, b1);
        assert_eq!(a2, b2);
        assert!(a1 < Duration::from_millis(10));
    }

    #[test]
    fn clear_all_covers_every_server() {
        let plan = FaultPlan::new();
        plan.inject(0, FaultKind::CrashOnRecv, None);
        plan.inject(3, FaultKind::DropReply, None);
        assert_eq!(plan.armed(), 2);
        plan.clear_all();
        assert_eq!(plan.armed(), 0);
        assert!(plan.on_receive(0).is_clean() && plan.on_receive(3).is_clean());
    }
}
