//! Segment placement: which server owns which embedding segments, plus
//! replica assignment for high availability (§4.2: "ensuring high
//! availability is simplified with embedding segment replicas distributed
//! across the cluster").
//!
//! Two layers live here. [`Placement`] is the *policy*: the round-robin rule
//! that decides where a brand-new segment's replicas land. [`PlacementTable`]
//! is the *authority*: an explicit, generation-versioned segment→holders map
//! that live migration rewrites one move at a time ([`PlacementTable::
//! with_move`] bumps the generation; queries pin the table `Arc` they started
//! with so a mid-query flip can never split one request across two views).
//! [`PlacementTable::rebalance_plan`] emits the minimal-move
//! [`MigrationPlan`] list that adapts the current table to a grown or shrunk
//! server count.

use std::collections::BTreeMap;
use tv_common::{SegmentId, TvError, TvResult};

/// Round-robin segment→server placement with `replication` copies.
#[derive(Debug, Clone)]
pub struct Placement {
    /// Number of servers.
    pub servers: usize,
    /// Copies per segment (1 = no replicas).
    pub replication: usize,
}

impl Placement {
    /// New placement; panics on zero servers (programmer error).
    #[must_use]
    pub fn new(servers: usize, replication: usize) -> Self {
        assert!(servers > 0, "cluster needs at least one server");
        Placement {
            servers,
            replication: replication.clamp(1, servers),
        }
    }

    /// Primary owner of a segment.
    #[must_use]
    pub fn primary(&self, seg: SegmentId) -> usize {
        seg.0 as usize % self.servers
    }

    /// All servers holding a copy of `seg` (primary first).
    #[must_use]
    pub fn holders(&self, seg: SegmentId) -> Vec<usize> {
        (0..self.replication)
            .map(|r| (seg.0 as usize + r) % self.servers)
            .collect()
    }

    /// The server that should serve `seg` when `down` servers are
    /// unavailable; `None` if every holder is down.
    #[must_use]
    pub fn serving(&self, seg: SegmentId, down: &[usize]) -> Option<usize> {
        self.serving_excluding(seg, down, &[])
    }

    /// Like [`Placement::serving`], but also skipping `excluded` servers —
    /// the coordinator's per-query suspect list (servers that timed out or
    /// were unreachable this query and whose segments are being re-routed).
    /// `None` when no holder survives both lists.
    #[must_use]
    pub fn serving_excluding(
        &self,
        seg: SegmentId,
        down: &[usize],
        excluded: &[usize],
    ) -> Option<usize> {
        self.holders(seg)
            .into_iter()
            .find(|s| !down.contains(s) && !excluded.contains(s))
    }

    /// Segments (out of `total`) that server `s` holds a copy of.
    #[must_use]
    pub fn segments_of(&self, s: usize, total: usize) -> Vec<SegmentId> {
        (0..total)
            .map(|i| SegmentId(i as u32))
            .filter(|seg| self.holders(*seg).contains(&s))
            .collect()
    }
}

/// One segment move in a rebalancing (or ad-hoc migration) plan.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MigrationPlan {
    /// Segment to move.
    pub segment: SegmentId,
    /// Server currently holding the copy that will be released.
    pub from: usize,
    /// Server that will hold the copy after the flip. Must not already
    /// hold one.
    pub to: usize,
}

impl std::fmt::Display for MigrationPlan {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "segment {} {} -> {}", self.segment.0, self.from, self.to)
    }
}

/// Explicit, generation-versioned segment→holders map — the routing
/// authority during live migration. Immutable: every mutation returns a new
/// table, so the runtime can publish it behind an `Arc` swap and in-flight
/// queries keep the exact view they scattered with. Only
/// [`PlacementTable::with_move`] bumps the generation; registering a new
/// segment ([`PlacementTable::assign`]) does not, because it cannot
/// invalidate any existing route.
#[derive(Debug, Clone)]
pub struct PlacementTable {
    generation: u64,
    servers: usize,
    holders: BTreeMap<SegmentId, Vec<usize>>,
}

impl PlacementTable {
    /// An empty table for a cluster of `servers` servers, at generation 0.
    #[must_use]
    pub fn new(servers: usize) -> Self {
        assert!(servers > 0, "cluster needs at least one server");
        PlacementTable {
            generation: 0,
            servers,
            holders: BTreeMap::new(),
        }
    }

    /// The placement generation: bumped by exactly one per committed
    /// migration flip, never by anything else.
    #[must_use]
    pub fn generation(&self) -> u64 {
        self.generation
    }

    /// Number of servers this table routes across.
    #[must_use]
    pub fn servers(&self) -> usize {
        self.servers
    }

    /// Number of segments registered.
    #[must_use]
    pub fn len(&self) -> usize {
        self.holders.len()
    }

    /// Whether no segment is registered.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.holders.is_empty()
    }

    /// A new table with `seg` registered on `holders` (same generation —
    /// registration cannot invalidate an existing route). Panics on an
    /// empty or out-of-range holder list (programmer error: the runtime
    /// derives holders from the [`Placement`] policy).
    #[must_use]
    pub fn assign(&self, seg: SegmentId, holders: Vec<usize>) -> Self {
        assert!(!holders.is_empty(), "segment needs at least one holder");
        assert!(
            holders.iter().all(|&s| s < self.servers),
            "holder out of range"
        );
        let mut next = self.clone();
        next.holders.insert(seg, holders);
        next
    }

    /// Servers holding a copy of `seg` (primary first); empty if unknown.
    #[must_use]
    pub fn holders(&self, seg: SegmentId) -> &[usize] {
        self.holders.get(&seg).map_or(&[], Vec::as_slice)
    }

    /// Whether `server` holds a copy of `seg`.
    #[must_use]
    pub fn holds(&self, seg: SegmentId, server: usize) -> bool {
        self.holders(seg).contains(&server)
    }

    /// The holder that should serve `seg`, skipping `down` and `excluded`
    /// servers; `None` when no holder survives both lists.
    #[must_use]
    pub fn serving_excluding(
        &self,
        seg: SegmentId,
        down: &[usize],
        excluded: &[usize],
    ) -> Option<usize> {
        self.holders(seg)
            .iter()
            .copied()
            .find(|s| !down.contains(s) && !excluded.contains(s))
    }

    /// All registered segment ids, ascending.
    #[must_use]
    pub fn segment_ids(&self) -> Vec<SegmentId> {
        self.holders.keys().copied().collect()
    }

    /// Segments server `s` holds a copy of, ascending.
    #[must_use]
    pub fn segments_of(&self, s: usize) -> Vec<SegmentId> {
        self.holders
            .iter()
            .filter(|(_, h)| h.contains(&s))
            .map(|(seg, _)| *seg)
            .collect()
    }

    /// Number of segment copies server `s` holds.
    #[must_use]
    pub fn load(&self, s: usize) -> usize {
        self.holders.values().filter(|h| h.contains(&s)).count()
    }

    /// A new table, one generation later, with `seg`'s copy moved from
    /// `from` to `to`. Rejects moves from a non-holder, onto an existing
    /// holder, or onto a server outside the cluster — the invariants the
    /// rebalance property test pins down.
    pub fn with_move(&self, seg: SegmentId, from: usize, to: usize) -> TvResult<Self> {
        if to >= self.servers {
            return Err(TvError::InvalidArgument(format!(
                "migration destination {to} outside cluster of {} servers",
                self.servers
            )));
        }
        if from == to {
            return Err(TvError::InvalidArgument(format!(
                "migration of segment {} from server {from} to itself",
                seg.0
            )));
        }
        let Some(holders) = self.holders.get(&seg) else {
            return Err(TvError::NotFound(format!(
                "segment {} not in placement table",
                seg.0
            )));
        };
        if !holders.contains(&from) {
            return Err(TvError::InvalidArgument(format!(
                "server {from} does not hold segment {}",
                seg.0
            )));
        }
        if holders.contains(&to) {
            return Err(TvError::InvalidArgument(format!(
                "server {to} already holds segment {}",
                seg.0
            )));
        }
        let mut next = self.clone();
        next.generation += 1;
        let hs = next.holders.get_mut(&seg).expect("checked above");
        for h in hs.iter_mut() {
            if *h == from {
                *h = to;
            }
        }
        Ok(next)
    }

    /// Minimal-move plan adapting this table to a cluster of `new_servers`
    /// servers. Two passes: forced evacuation of every copy stranded on a
    /// server `>= new_servers` (each lands on the least-loaded legal
    /// survivor), then greedy balancing that moves copies from the most- to
    /// the least-loaded server until the spread is at most one copy — the
    /// fewest moves that can both legalize and balance the table. Errors
    /// when a stranded copy has nowhere legal to go (every surviving server
    /// already holds the segment, i.e. replication exceeds `new_servers`).
    /// The plan is *advisory*: nothing is applied to this table.
    pub fn rebalance_plan(&self, new_servers: usize) -> TvResult<Vec<MigrationPlan>> {
        if new_servers == 0 {
            return Err(TvError::InvalidArgument(
                "cannot rebalance onto zero servers".into(),
            ));
        }
        let mut holders = self.holders.clone();
        let mut plans = Vec::new();
        let load = |holders: &BTreeMap<SegmentId, Vec<usize>>, s: usize| {
            holders.values().filter(|h| h.contains(&s)).count()
        };
        let apply = |holders: &mut BTreeMap<SegmentId, Vec<usize>>, plan: MigrationPlan| {
            for h in holders.get_mut(&plan.segment).expect("planned segment") {
                if *h == plan.from {
                    *h = plan.to;
                }
            }
        };

        // Pass 1: evacuate servers that no longer exist.
        let segs: Vec<SegmentId> = holders.keys().copied().collect();
        for seg in segs {
            while let Some(&from) = holders[&seg].iter().find(|&&s| s >= new_servers) {
                let to = (0..new_servers)
                    .filter(|d| !holders[&seg].contains(d))
                    .min_by_key(|&d| (load(&holders, d), d));
                let Some(to) = to else {
                    return Err(TvError::Cluster(format!(
                        "segment {} stranded on server {from}: every surviving \
                         server already holds a copy",
                        seg.0
                    )));
                };
                let plan = MigrationPlan {
                    segment: seg,
                    from,
                    to,
                };
                apply(&mut holders, plan);
                plans.push(plan);
            }
        }

        // Pass 2: greedy balance to a spread of at most one copy.
        loop {
            let loads: Vec<usize> = (0..new_servers).map(|s| load(&holders, s)).collect();
            let (min_s, &min_l) = loads
                .iter()
                .enumerate()
                .min_by_key(|&(s, &l)| (l, s))
                .expect("new_servers > 0");
            // Donors from most loaded down; stop once no donor can improve.
            let mut donors: Vec<(usize, usize)> = loads.iter().copied().enumerate().collect();
            donors.sort_by_key(|&(s, l)| (std::cmp::Reverse(l), s));
            let mut moved = false;
            for (donor, donor_load) in donors {
                if donor_load <= min_l + 1 {
                    break;
                }
                // Smallest-id segment on the donor the receiver lacks.
                let seg = holders
                    .iter()
                    .find(|(_, h)| h.contains(&donor) && !h.contains(&min_s))
                    .map(|(seg, _)| *seg);
                if let Some(seg) = seg {
                    let plan = MigrationPlan {
                        segment: seg,
                        from: donor,
                        to: min_s,
                    };
                    apply(&mut holders, plan);
                    plans.push(plan);
                    moved = true;
                    break;
                }
            }
            if !moved {
                break;
            }
        }
        Ok(plans)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primary_is_round_robin() {
        let p = Placement::new(4, 1);
        assert_eq!(p.primary(SegmentId(0)), 0);
        assert_eq!(p.primary(SegmentId(5)), 1);
        assert_eq!(p.holders(SegmentId(5)), vec![1]);
    }

    #[test]
    fn replicas_are_distinct_servers() {
        let p = Placement::new(4, 3);
        let h = p.holders(SegmentId(2));
        assert_eq!(h, vec![2, 3, 0]);
        let mut uniq = h.clone();
        uniq.dedup();
        assert_eq!(uniq.len(), 3);
    }

    #[test]
    fn replication_clamped_to_servers() {
        let p = Placement::new(2, 5);
        assert_eq!(p.replication, 2);
    }

    #[test]
    fn failover_prefers_primary_then_replicas() {
        let p = Placement::new(3, 2);
        let seg = SegmentId(1);
        assert_eq!(p.serving(seg, &[]), Some(1));
        assert_eq!(p.serving(seg, &[1]), Some(2));
        assert_eq!(p.serving(seg, &[1, 2]), None);
    }

    #[test]
    fn serving_excluding_skips_suspects_then_exhausts() {
        let p = Placement::new(4, 3);
        let seg = SegmentId(1); // holders 1, 2, 3
        assert_eq!(p.serving_excluding(seg, &[], &[]), Some(1));
        assert_eq!(p.serving_excluding(seg, &[], &[1]), Some(2));
        assert_eq!(p.serving_excluding(seg, &[2], &[1]), Some(3));
        assert_eq!(p.serving_excluding(seg, &[2], &[1, 3]), None);
    }

    #[test]
    fn segments_of_covers_everything() {
        let p = Placement::new(3, 2);
        let total = 10;
        // Every segment is held by exactly `replication` servers.
        let mut count = vec![0usize; total];
        for s in 0..3 {
            for seg in p.segments_of(s, total) {
                count[seg.0 as usize] += 1;
            }
        }
        assert!(count.iter().all(|&c| c == 2));
    }

    #[test]
    #[should_panic(expected = "at least one server")]
    fn zero_servers_panics() {
        let _ = Placement::new(0, 1);
    }

    /// A table populated by the round-robin policy, as the runtime does at
    /// `add_segment` time.
    fn seeded_table(servers: usize, replication: usize, segments: usize) -> PlacementTable {
        let policy = Placement::new(servers, replication);
        let mut table = PlacementTable::new(servers);
        for i in 0..segments {
            let seg = SegmentId(i as u32);
            table = table.assign(seg, policy.holders(seg));
        }
        table
    }

    #[test]
    fn table_registration_keeps_generation() {
        let t = seeded_table(3, 2, 6);
        assert_eq!(t.generation(), 0);
        assert_eq!(t.len(), 6);
        assert_eq!(t.holders(SegmentId(4)), &[1, 2]);
        assert!(t.holds(SegmentId(4), 2));
        assert!(!t.holds(SegmentId(4), 0));
        assert_eq!(t.serving_excluding(SegmentId(4), &[1], &[]), Some(2));
        assert_eq!(t.load(0), 4); // segments 0, 2, 3, 5
    }

    #[test]
    fn with_move_bumps_generation_and_reroutes() {
        let t = seeded_table(3, 1, 6);
        let moved = t.with_move(SegmentId(1), 1, 2).unwrap();
        assert_eq!(moved.generation(), 1);
        assert_eq!(moved.holders(SegmentId(1)), &[2]);
        // The original table is untouched (queries pin it).
        assert_eq!(t.generation(), 0);
        assert_eq!(t.holders(SegmentId(1)), &[1]);
    }

    #[test]
    fn with_move_rejects_illegal_moves() {
        let t = seeded_table(3, 2, 6);
        // Not a holder.
        assert!(t.with_move(SegmentId(0), 2, 1).is_err());
        // Already a holder.
        assert!(t.with_move(SegmentId(0), 0, 1).is_err());
        // Outside the cluster.
        assert!(t.with_move(SegmentId(0), 0, 3).is_err());
        // Self-move.
        assert!(t.with_move(SegmentId(0), 0, 0).is_err());
        // Unknown segment.
        assert!(t.with_move(SegmentId(99), 0, 2).is_err());
    }

    #[test]
    fn rebalance_growth_is_minimal_and_balanced() {
        // 12 segments, replication 1, on 4 servers: loads [3, 3, 3, 3].
        // Growing to 6 servers (target load 2) requires exactly 4 moves.
        let t = seeded_table(4, 1, 12);
        let grown = PlacementTable {
            generation: t.generation,
            servers: 6,
            holders: t.holders.clone(),
        };
        let plan = grown.rebalance_plan(6).unwrap();
        assert_eq!(plan.len(), 4, "minimal growth plan is 4 moves: {plan:?}");
        let mut scratch = grown.clone();
        for m in &plan {
            scratch = scratch.with_move(m.segment, m.from, m.to).unwrap();
        }
        let loads: Vec<usize> = (0..6).map(|s| scratch.load(s)).collect();
        assert!(loads.iter().all(|&l| l == 2), "balanced: {loads:?}");
    }

    #[test]
    fn rebalance_shrink_evacuates_with_minimal_moves() {
        // 12 segments, replication 1, on 4 servers; dropping server 3
        // forces exactly its 3 segments to move.
        let t = seeded_table(4, 1, 12);
        let plan = t.rebalance_plan(3).unwrap();
        assert_eq!(plan.len(), 3, "minimal shrink plan is 3 moves: {plan:?}");
        assert!(plan.iter().all(|m| m.from == 3 && m.to < 3));
        let mut scratch = t.clone();
        for m in &plan {
            scratch = scratch.with_move(m.segment, m.from, m.to).unwrap();
        }
        let loads: Vec<usize> = (0..3).map(|s| scratch.load(s)).collect();
        assert!(loads.iter().all(|&l| l == 4), "balanced: {loads:?}");
    }

    #[test]
    fn rebalance_errors_when_replication_exceeds_survivors() {
        let t = seeded_table(4, 3, 8);
        let err = t.rebalance_plan(2).unwrap_err();
        assert!(matches!(err, TvError::Cluster(_)), "got {err}");
        assert!(t.rebalance_plan(0).is_err());
    }

    /// Satellite property: across random cluster shapes, no rebalance plan
    /// ever leaves a segment with zero holders, moves a copy onto a server
    /// that already holds one, moves from a non-holder, or leaves a copy on
    /// an evacuated server — and with replication 1 the result is balanced
    /// to a spread of at most one.
    #[test]
    fn rebalance_plan_property() {
        let mut rng = tv_common::SplitMix64::new(0x0BA1_ACE5);
        for case in 0..200 {
            let old_servers = 1 + (rng.next_u64() % 6) as usize;
            let replication = 1 + (rng.next_u64() % 3) as usize;
            let segments = (rng.next_u64() % 21) as usize;
            let new_servers = 1 + (rng.next_u64() % 6) as usize;
            let rep_eff = replication.min(old_servers);

            let table = seeded_table(old_servers, replication, segments);
            // Plan against the union of old and new server counts so growth
            // destinations are representable.
            let widened = PlacementTable {
                generation: table.generation,
                servers: old_servers.max(new_servers),
                holders: table.holders.clone(),
            };
            let plan = match widened.rebalance_plan(new_servers) {
                Ok(plan) => plan,
                Err(e) => {
                    assert!(
                        segments > 0 && rep_eff > new_servers,
                        "case {case}: unexpected plan error {e} \
                         (old={old_servers} rep={replication} segs={segments} \
                         new={new_servers})"
                    );
                    continue;
                }
            };
            assert!(
                rep_eff <= new_servers || segments == 0,
                "case {case}: expected stranded-copy error"
            );

            let mut scratch = widened.clone();
            for m in &plan {
                // with_move enforces per-step legality: from holds, to does
                // not, to is in range. A violation fails loudly here.
                scratch = scratch
                    .with_move(m.segment, m.from, m.to)
                    .unwrap_or_else(|e| panic!("case {case}: illegal move {m} in plan: {e}"));
                assert!(m.to < new_servers, "case {case}: move onto dead server");
            }
            for seg in scratch.segment_ids() {
                let holders = scratch.holders(seg);
                assert!(!holders.is_empty(), "case {case}: segment lost all holders");
                assert_eq!(holders.len(), rep_eff, "case {case}: replica count changed");
                assert!(
                    holders.iter().all(|&h| h < new_servers),
                    "case {case}: copy left on evacuated server {holders:?}"
                );
                let mut uniq = holders.to_vec();
                uniq.sort_unstable();
                uniq.dedup();
                assert_eq!(uniq.len(), holders.len(), "case {case}: duplicate holders");
            }
            if rep_eff == 1 && segments > 0 {
                let loads: Vec<usize> = (0..new_servers).map(|s| scratch.load(s)).collect();
                let spread = loads.iter().max().unwrap() - loads.iter().min().unwrap();
                assert!(spread <= 1, "case {case}: unbalanced {loads:?}");
            }
        }
    }
}
