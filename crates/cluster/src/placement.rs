//! Segment placement: which server owns which embedding segments, plus
//! replica assignment for high availability (§4.2: "ensuring high
//! availability is simplified with embedding segment replicas distributed
//! across the cluster").

use tv_common::SegmentId;

/// Round-robin segment→server placement with `replication` copies.
#[derive(Debug, Clone)]
pub struct Placement {
    /// Number of servers.
    pub servers: usize,
    /// Copies per segment (1 = no replicas).
    pub replication: usize,
}

impl Placement {
    /// New placement; panics on zero servers (programmer error).
    #[must_use]
    pub fn new(servers: usize, replication: usize) -> Self {
        assert!(servers > 0, "cluster needs at least one server");
        Placement {
            servers,
            replication: replication.clamp(1, servers),
        }
    }

    /// Primary owner of a segment.
    #[must_use]
    pub fn primary(&self, seg: SegmentId) -> usize {
        seg.0 as usize % self.servers
    }

    /// All servers holding a copy of `seg` (primary first).
    #[must_use]
    pub fn holders(&self, seg: SegmentId) -> Vec<usize> {
        (0..self.replication)
            .map(|r| (seg.0 as usize + r) % self.servers)
            .collect()
    }

    /// The server that should serve `seg` when `down` servers are
    /// unavailable; `None` if every holder is down.
    #[must_use]
    pub fn serving(&self, seg: SegmentId, down: &[usize]) -> Option<usize> {
        self.serving_excluding(seg, down, &[])
    }

    /// Like [`Placement::serving`], but also skipping `excluded` servers —
    /// the coordinator's per-query suspect list (servers that timed out or
    /// were unreachable this query and whose segments are being re-routed).
    /// `None` when no holder survives both lists.
    #[must_use]
    pub fn serving_excluding(
        &self,
        seg: SegmentId,
        down: &[usize],
        excluded: &[usize],
    ) -> Option<usize> {
        self.holders(seg)
            .into_iter()
            .find(|s| !down.contains(s) && !excluded.contains(s))
    }

    /// Segments (out of `total`) that server `s` holds a copy of.
    #[must_use]
    pub fn segments_of(&self, s: usize, total: usize) -> Vec<SegmentId> {
        (0..total)
            .map(|i| SegmentId(i as u32))
            .filter(|seg| self.holders(*seg).contains(&s))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primary_is_round_robin() {
        let p = Placement::new(4, 1);
        assert_eq!(p.primary(SegmentId(0)), 0);
        assert_eq!(p.primary(SegmentId(5)), 1);
        assert_eq!(p.holders(SegmentId(5)), vec![1]);
    }

    #[test]
    fn replicas_are_distinct_servers() {
        let p = Placement::new(4, 3);
        let h = p.holders(SegmentId(2));
        assert_eq!(h, vec![2, 3, 0]);
        let mut uniq = h.clone();
        uniq.dedup();
        assert_eq!(uniq.len(), 3);
    }

    #[test]
    fn replication_clamped_to_servers() {
        let p = Placement::new(2, 5);
        assert_eq!(p.replication, 2);
    }

    #[test]
    fn failover_prefers_primary_then_replicas() {
        let p = Placement::new(3, 2);
        let seg = SegmentId(1);
        assert_eq!(p.serving(seg, &[]), Some(1));
        assert_eq!(p.serving(seg, &[1]), Some(2));
        assert_eq!(p.serving(seg, &[1, 2]), None);
    }

    #[test]
    fn serving_excluding_skips_suspects_then_exhausts() {
        let p = Placement::new(4, 3);
        let seg = SegmentId(1); // holders 1, 2, 3
        assert_eq!(p.serving_excluding(seg, &[], &[]), Some(1));
        assert_eq!(p.serving_excluding(seg, &[], &[1]), Some(2));
        assert_eq!(p.serving_excluding(seg, &[2], &[1]), Some(3));
        assert_eq!(p.serving_excluding(seg, &[2], &[1, 3]), None);
    }

    #[test]
    fn segments_of_covers_everything() {
        let p = Placement::new(3, 2);
        let total = 10;
        // Every segment is held by exactly `replication` servers.
        let mut count = vec![0usize; total];
        for s in 0..3 {
            for seg in p.segments_of(s, total) {
                count[seg.0 as usize] += 1;
            }
        }
        assert!(count.iter().all(|&c| c == 2));
    }

    #[test]
    #[should_panic(expected = "at least one server")]
    fn zero_servers_panics() {
        let _ = Placement::new(0, 1);
    }
}
