//! Coordinator-driven live segment migration.
//!
//! A [`Migrator`] moves one segment copy between servers while the cluster
//! keeps serving queries and accepting delta appends, in five phases:
//!
//! 1. **Ship** — snapshot the source's newest index into the `durafile`
//!    checkpoint container (CRC32-verified, temp+rename atomic) in the
//!    staging directory. The source stays fully authoritative.
//! 2. **Install** — read the container back (a truncated or corrupt
//!    transfer fails the CRC here, not at query time), decode the index,
//!    and register an independent destination copy. Not yet routed to:
//!    the placement table still lists only the old holders.
//! 3. **Catch up** — replay the source's delta tail (`(snapshot_tid, ∞)`)
//!    onto the destination in bounded batches until the remaining tail is
//!    short enough to drain inside the flip, or the round budget runs out.
//! 4. **Flip** — under the segment's append gate: drain the final tail,
//!    then atomically publish the moved placement table (generation + 1).
//!    In-flight queries keep the table they pinned at scatter; requests
//!    that still reach the drained source get a typed
//!    [`tv_common::TvError::Moved`] redirect.
//! 5. **Release** — drop the source's copy (no longer a table holder) and
//!    the staging file.
//!
//! Every phase is instrumented with a migration [`CrashPoint`]. A crash in
//! phases 1–4 aborts cleanly: the placement table is untouched, the source
//! still serves, and the orphaned destination state (store entry + staging
//! file) is garbage-collected. A crash after the flip committed leaves the
//! migration *complete*; re-running the same plan recognizes that and
//! finishes the release idempotently. Aborts are recorded in the runtime's
//! [`MigrationErrors`] log, never silently swallowed.

use crate::placement::MigrationPlan;
use crate::runtime::ClusterRuntime;
use std::fmt;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};
use tv_common::crash::{crash_hook, CrashPlan, CrashPoint};
use tv_common::{
    durafile, DistanceMetric, MigrationConfig, QuantSpec, SegmentId, StorageTier, Tid, TvError,
    TvResult,
};
use tv_embedding::{EmbeddingSegment, EmbeddingTypeDef};
use tv_hnsw::snapshot;

/// `durafile` kind tag of a shipped migration segment ("MIGS").
pub const KIND_MIGRATE_SEG: u32 = 0x4D49_4753;
const FORMAT_VERSION: u32 = 1;

/// The migration state-machine phase an error was raised in.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MigrationPhase {
    /// Snapshot-shipping the source index into the staging container.
    Ship,
    /// Decoding + registering the destination copy.
    Install,
    /// Background delta-tail replay onto the destination.
    CatchUp,
    /// The gated final-tail drain + placement table swap.
    Flip,
    /// Post-flip source-copy release and staging cleanup.
    Release,
}

impl fmt::Display for MigrationPhase {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            MigrationPhase::Ship => "ship",
            MigrationPhase::Install => "install",
            MigrationPhase::CatchUp => "catch-up",
            MigrationPhase::Flip => "flip",
            MigrationPhase::Release => "release",
        })
    }
}

/// Migration failure log — the `VacuumErrors` pattern: a lock-free counter
/// for cheap "did anything fail" checks plus a detailed (phase, segment,
/// error) entry list behind a mutex.
#[derive(Default)]
pub struct MigrationErrors {
    count: AtomicU64,
    log: parking_lot::Mutex<Vec<(MigrationPhase, SegmentId, String)>>,
}

impl MigrationErrors {
    /// Record one aborted migration.
    pub fn record(&self, phase: MigrationPhase, segment: SegmentId, error: &TvError) {
        self.count.fetch_add(1, Ordering::Relaxed);
        self.log.lock().push((phase, segment, error.to_string()));
    }

    /// Total aborts recorded.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// The most recent abort, if any.
    #[must_use]
    pub fn last(&self) -> Option<(MigrationPhase, SegmentId, String)> {
        self.log.lock().last().cloned()
    }

    /// Every recorded abort, oldest first.
    #[must_use]
    pub fn entries(&self) -> Vec<(MigrationPhase, SegmentId, String)> {
        self.log.lock().clone()
    }
}

/// What a completed (or recognized-as-already-complete) migration did.
#[derive(Debug, Clone)]
pub struct MigrationReport {
    /// The executed plan's segment.
    pub segment: SegmentId,
    /// Source server.
    pub from: usize,
    /// Destination server.
    pub to: usize,
    /// Placement generation after the flip.
    pub generation: u64,
    /// Bytes of snapshot payload shipped through the staging container.
    pub shipped_bytes: u64,
    /// Background catch-up rounds run before the flip.
    pub catchup_rounds: u64,
    /// Delta records replayed onto the destination (catch-up + final
    /// drain).
    pub catchup_records: u64,
    /// How long the flip held the segment's append gate (the only window
    /// in which writers to this segment wait).
    pub flip_pause: Duration,
    /// Wall-clock for the whole migration.
    pub total: Duration,
    /// `true` when the plan was already committed by a previous attempt
    /// (crash after flip) and this run only finished the release.
    pub already_complete: bool,
}

/// Executes [`MigrationPlan`]s against a [`ClusterRuntime`].
pub struct Migrator {
    runtime: Arc<ClusterRuntime>,
    staging: PathBuf,
    crash: Option<Arc<CrashPlan>>,
    config: MigrationConfig,
}

impl Migrator {
    /// A migrator staging shipped snapshots under `staging`.
    #[must_use]
    pub fn new(runtime: Arc<ClusterRuntime>, staging: PathBuf) -> Self {
        Migrator {
            runtime,
            staging,
            crash: None,
            config: MigrationConfig::default(),
        }
    }

    /// Arm deterministic crash injection (tests only).
    #[must_use]
    pub fn with_crash_plan(mut self, plan: Arc<CrashPlan>) -> Self {
        self.crash = Some(plan);
        self
    }

    /// Override the catch-up/flip knobs.
    #[must_use]
    pub fn with_config(mut self, config: MigrationConfig) -> Self {
        self.config = config;
        self
    }

    fn ship_path(&self, plan: MigrationPlan) -> PathBuf {
        self.staging.join(format!(
            "migrate-seg{}-{}to{}.tvm",
            plan.segment.0, plan.from, plan.to
        ))
    }

    /// Run `plan` to completion. On error the migration has been cleanly
    /// aborted (placement untouched, source authoritative, destination
    /// state garbage-collected) — unless the flip had already committed, in
    /// which case re-running the identical plan completes idempotently.
    pub fn run(&self, plan: MigrationPlan) -> TvResult<MigrationReport> {
        let started = Instant::now();
        let table = self.runtime.placement();

        // Idempotent retry: a previous attempt that died after the flip
        // left the table already moved; only the release is outstanding.
        if !table.holds(plan.segment, plan.from) && table.holds(plan.segment, plan.to) {
            self.release(plan);
            return Ok(MigrationReport {
                segment: plan.segment,
                from: plan.from,
                to: plan.to,
                generation: table.generation(),
                shipped_bytes: 0,
                catchup_rounds: 0,
                catchup_records: 0,
                flip_pause: Duration::ZERO,
                total: started.elapsed(),
                already_complete: true,
            });
        }

        if plan.to >= self.runtime.config.servers {
            return Err(TvError::InvalidArgument(format!(
                "migration destination {} outside cluster of {} servers",
                plan.to, self.runtime.config.servers
            )));
        }
        if !table.holds(plan.segment, plan.from) {
            return Err(TvError::InvalidArgument(format!(
                "server {} does not hold segment {}",
                plan.from, plan.segment.0
            )));
        }
        if table.holds(plan.segment, plan.to) {
            return Err(TvError::InvalidArgument(format!(
                "server {} already holds segment {}",
                plan.to, plan.segment.0
            )));
        }

        match self.execute(plan, started) {
            Ok(report) => Ok(report),
            Err((phase, e)) => {
                self.abort(plan);
                self.runtime
                    .migration_errors()
                    .record(phase, plan.segment, &e);
                Err(e)
            }
        }
    }

    #[allow(clippy::too_many_lines)]
    fn execute(
        &self,
        plan: MigrationPlan,
        started: Instant,
    ) -> Result<MigrationReport, (MigrationPhase, TvError)> {
        use MigrationPhase as P;
        let seg_id = plan.segment;
        let crash = self.crash.as_deref();
        let path = self.ship_path(plan);

        // --- Phase 1: Ship -------------------------------------------------
        let src = self
            .runtime
            .store(plan.from)
            .read()
            .get(&seg_id)
            .cloned()
            .ok_or_else(|| {
                (
                    P::Ship,
                    TvError::Cluster(format!(
                        "source server {} has no local copy of segment {}",
                        plan.from, seg_id.0
                    )),
                )
            })?;
        crash_hook(crash, CrashPoint::MigrateMidShip).map_err(|e| (P::Ship, e))?;
        let snap = src.newest_snapshot();
        let snap_tid = snap.up_to;
        let payload = encode_shipped_segment(&src, snap_tid, &snap.index);
        let shipped_bytes = payload.len() as u64;
        std::fs::create_dir_all(&self.staging)
            .map_err(|e| (P::Ship, TvError::Storage(format!("staging dir: {e}"))))?;
        durafile::write_atomic(&path, KIND_MIGRATE_SEG, FORMAT_VERSION, &payload)
            .map_err(|e| (P::Ship, e))?;
        if crash_hook(crash, CrashPoint::MigrateShipTruncate).is_err() {
            // The injected "crash" models a transfer cut mid-stream: chop
            // the shipped container and carry on — the install phase's CRC
            // verification must catch it and abort the migration.
            truncate_file(&path).map_err(|e| (P::Ship, e))?;
        }

        // --- Phase 2: Install ----------------------------------------------
        let (_, read_back) =
            durafile::read(&path, KIND_MIGRATE_SEG).map_err(|e| (P::Install, e))?;
        let dest = decode_shipped_segment(&read_back).map_err(|e| (P::Install, e))?;
        crash_hook(crash, CrashPoint::MigrateMidInstall).map_err(|e| (P::Install, e))?;
        let dest = Arc::new(dest);
        self.runtime
            .store(plan.to)
            .write()
            .insert(seg_id, Arc::clone(&dest));

        // --- Phase 3: Catch up ---------------------------------------------
        let mut cursor = snap_tid;
        let mut catchup_rounds = 0u64;
        let mut catchup_records = 0u64;
        loop {
            let tail = src.delta_tail(cursor, Tid::MAX);
            if tail.len() <= self.config.flip_threshold
                || catchup_rounds >= self.config.max_catchup_rounds as u64
            {
                break;
            }
            crash_hook(crash, CrashPoint::MigrateMidCatchup).map_err(|e| (P::CatchUp, e))?;
            let batch = &tail[..tail.len().min(self.config.catchup_batch)];
            dest.append_deltas(batch).map_err(|e| (P::CatchUp, e))?;
            cursor = batch.last().expect("non-empty batch").tid;
            catchup_records += batch.len() as u64;
            catchup_rounds += 1;
        }

        // --- Phase 4: Flip --------------------------------------------------
        // Under the append gate: no writer can slip a record between the
        // final-tail drain and the table swap.
        let gate = self.runtime.write_gate(seg_id);
        let flip_started = Instant::now();
        let generation;
        {
            let _guard = gate.lock();
            crash_hook(crash, CrashPoint::MigrateAtFlip).map_err(|e| (P::Flip, e))?;
            let tail = src.delta_tail(cursor, Tid::MAX);
            if !tail.is_empty() {
                dest.append_deltas(&tail).map_err(|e| (P::Flip, e))?;
                catchup_records += tail.len() as u64;
            }
            generation = self
                .runtime
                .commit_flip(seg_id, plan.from, plan.to)
                .map_err(|e| (P::Flip, e))?;
        }
        let flip_pause = flip_started.elapsed();

        // --- Phase 5: Release ----------------------------------------------
        crash_hook(crash, CrashPoint::MigratePostFlipPreRelease).map_err(|e| (P::Release, e))?;
        self.release(plan);

        Ok(MigrationReport {
            segment: seg_id,
            from: plan.from,
            to: plan.to,
            generation,
            shipped_bytes,
            catchup_rounds,
            catchup_records,
            flip_pause,
            total: started.elapsed(),
            already_complete: false,
        })
    }

    /// Post-flip cleanup: drop the source's copy (it is no longer a table
    /// holder) and the staging file. Idempotent.
    fn release(&self, plan: MigrationPlan) {
        let table = self.runtime.placement();
        if !table.holds(plan.segment, plan.from) {
            self.runtime.store(plan.from).write().remove(&plan.segment);
        }
        let _ = std::fs::remove_file(self.ship_path(plan));
    }

    /// Pre-flip cleanup: garbage-collect the orphaned destination state.
    /// Guarded by the table so an abort can never remove a copy that a
    /// committed flip made authoritative. Idempotent.
    fn abort(&self, plan: MigrationPlan) {
        let table = self.runtime.placement();
        if !table.holds(plan.segment, plan.to) {
            self.runtime.store(plan.to).write().remove(&plan.segment);
        }
        let _ = std::fs::remove_file(self.ship_path(plan));
    }
}

/// Chop the tail off a staged container (the partial-transfer fault).
fn truncate_file(path: &Path) -> TvResult<()> {
    let f = std::fs::OpenOptions::new()
        .write(true)
        .open(path)
        .map_err(|e| TvError::Storage(format!("truncate open: {e}")))?;
    let len = f
        .metadata()
        .map_err(|e| TvError::Storage(format!("truncate stat: {e}")))?
        .len();
    f.set_len(len * 2 / 3)
        .map_err(|e| TvError::Storage(format!("truncate: {e}")))?;
    Ok(())
}

/// Shipped-segment payload: everything the destination needs to rebuild an
/// independent, byte-identical serving copy.
///
/// ```text
/// seg u32 | up_to u64 | capacity u64 | dim u64 | metric u8 |
/// tier u8 | pq_m u64 | keep_f32 u8 | rerank u64 |
/// index_len u64 | index bytes (tv-hnsw snapshot container)
/// ```
fn encode_shipped_segment(
    src: &EmbeddingSegment,
    up_to: Tid,
    index: &tv_hnsw::HnswIndex,
) -> Vec<u8> {
    let index_bytes = snapshot::to_bytes(index);
    let quant = src.quant_spec();
    let cfg = index.config();
    let mut out = Vec::with_capacity(index_bytes.len() + 64);
    out.extend_from_slice(&src.segment_id.0.to_le_bytes());
    out.extend_from_slice(&up_to.0.to_le_bytes());
    out.extend_from_slice(&(src.capacity() as u64).to_le_bytes());
    out.extend_from_slice(&(cfg.dim as u64).to_le_bytes());
    out.push(match cfg.metric {
        DistanceMetric::L2 => 0,
        DistanceMetric::Cosine => 1,
        DistanceMetric::InnerProduct => 2,
    });
    let (tier, pq_m) = match quant.tier {
        StorageTier::F32 => (0u8, 0u64),
        StorageTier::Sq8 => (1, 0),
        StorageTier::Pq { m } => (2, m as u64),
    };
    out.push(tier);
    out.extend_from_slice(&pq_m.to_le_bytes());
    out.push(u8::from(quant.keep_f32));
    out.extend_from_slice(&(quant.rerank_factor as u64).to_le_bytes());
    out.extend_from_slice(&(index_bytes.len() as u64).to_le_bytes());
    out.extend_from_slice(&index_bytes);
    out
}

/// Decode a shipped segment into a fresh destination copy (a pristine
/// segment with the shipped index installed as its newest snapshot).
fn decode_shipped_segment(payload: &[u8]) -> TvResult<EmbeddingSegment> {
    let mut pos = 0usize;
    let take = |pos: &mut usize, n: usize| -> TvResult<&[u8]> {
        let end = pos.checked_add(n).filter(|&e| e <= payload.len());
        let Some(end) = end else {
            return Err(TvError::Storage("shipped segment truncated".into()));
        };
        let s = &payload[*pos..end];
        *pos = end;
        Ok(s)
    };
    let take_u32 = |pos: &mut usize| -> TvResult<u32> {
        Ok(u32::from_le_bytes(
            take(pos, 4)?.try_into().expect("4 bytes"),
        ))
    };
    let take_u64 = |pos: &mut usize| -> TvResult<u64> {
        Ok(u64::from_le_bytes(
            take(pos, 8)?.try_into().expect("8 bytes"),
        ))
    };
    let take_u8 = |pos: &mut usize| -> TvResult<u8> { Ok(take(pos, 1)?[0]) };

    let seg_id = SegmentId(take_u32(&mut pos)?);
    let up_to = Tid(take_u64(&mut pos)?);
    let capacity = usize::try_from(take_u64(&mut pos)?)
        .map_err(|_| TvError::Storage("shipped capacity overflow".into()))?;
    let dim = usize::try_from(take_u64(&mut pos)?)
        .map_err(|_| TvError::Storage("shipped dim overflow".into()))?;
    let metric = match take_u8(&mut pos)? {
        0 => DistanceMetric::L2,
        1 => DistanceMetric::Cosine,
        2 => DistanceMetric::InnerProduct,
        m => return Err(TvError::Storage(format!("unknown shipped metric {m}"))),
    };
    let tier = take_u8(&mut pos)?;
    let pq_m = take_u64(&mut pos)? as usize;
    let keep_f32 = take_u8(&mut pos)? != 0;
    let rerank_factor = take_u64(&mut pos)? as usize;
    let quant = QuantSpec {
        tier: match tier {
            0 => StorageTier::F32,
            1 => StorageTier::Sq8,
            2 => StorageTier::Pq { m: pq_m },
            t => return Err(TvError::Storage(format!("unknown shipped tier {t}"))),
        },
        keep_f32,
        rerank_factor,
    };
    let index_len = usize::try_from(take_u64(&mut pos)?)
        .map_err(|_| TvError::Storage("shipped index length overflow".into()))?;
    let index = snapshot::from_bytes(take(&mut pos, index_len)?)?;

    let def = EmbeddingTypeDef::new("migrated", dim, "migrated", metric).with_quant(quant);
    let dest = EmbeddingSegment::new(seg_id, &def, capacity);
    dest.restore_checkpoint(up_to, index, &[])?;
    Ok(dest)
}

#[cfg(test)]
mod tests {
    use super::*;
    use tv_common::ids::{LocalId, VertexId};
    use tv_common::SplitMix64;
    use tv_hnsw::DeltaRecord;

    fn shipped_roundtrip(quant: QuantSpec) {
        let def = EmbeddingTypeDef::new("e", 8, "M", DistanceMetric::Cosine).with_quant(quant);
        let src = EmbeddingSegment::new(SegmentId(7), &def, 256);
        let mut rng = SplitMix64::new(5);
        let recs: Vec<DeltaRecord> = (0..40)
            .map(|i| {
                let v: Vec<f32> = (0..8).map(|_| rng.next_f32()).collect();
                DeltaRecord::upsert(
                    VertexId::new(SegmentId(7), LocalId(i)),
                    Tid(u64::from(i) + 1),
                    v,
                )
            })
            .collect();
        src.append_deltas(&recs).unwrap();
        src.delta_merge(Tid(40)).unwrap();
        src.index_merge(Tid(40)).unwrap();

        let snap = src.newest_snapshot();
        let payload = encode_shipped_segment(&src, snap.up_to, &snap.index);
        let dest = decode_shipped_segment(&payload).unwrap();
        assert_eq!(dest.segment_id, SegmentId(7));
        assert_eq!(dest.capacity(), 256);
        assert_eq!(dest.quant_spec(), quant);
        // The installed snapshot serializes byte-identically to the source's.
        let dsnap = dest.newest_snapshot();
        assert_eq!(dsnap.up_to, snap.up_to);
        assert_eq!(
            snapshot::to_bytes(&dsnap.index),
            snapshot::to_bytes(&snap.index)
        );
    }

    #[test]
    fn shipped_segment_roundtrips_byte_identically() {
        shipped_roundtrip(QuantSpec::f32());
        shipped_roundtrip(QuantSpec::sq8());
    }

    #[test]
    fn truncated_payload_is_rejected_loudly() {
        let def = EmbeddingTypeDef::new("e", 8, "M", DistanceMetric::L2);
        let src = EmbeddingSegment::new(SegmentId(0), &def, 64);
        let snap = src.newest_snapshot();
        let payload = encode_shipped_segment(&src, snap.up_to, &snap.index);
        for cut in [0, 5, payload.len() / 2, payload.len() - 1] {
            assert!(
                decode_shipped_segment(&payload[..cut]).is_err(),
                "cut at {cut} must not decode"
            );
        }
    }

    #[test]
    fn migration_errors_log_records_and_counts() {
        let errs = MigrationErrors::default();
        assert_eq!(errs.count(), 0);
        assert!(errs.last().is_none());
        errs.record(
            MigrationPhase::Install,
            SegmentId(3),
            &TvError::Storage("crc mismatch".into()),
        );
        errs.record(
            MigrationPhase::Flip,
            SegmentId(4),
            &TvError::Injected("migrate/at-flip".into()),
        );
        assert_eq!(errs.count(), 2);
        let (phase, seg, msg) = errs.last().unwrap();
        assert_eq!(phase, MigrationPhase::Flip);
        assert_eq!(seg, SegmentId(4));
        assert!(msg.contains("at-flip"));
        assert_eq!(errs.entries().len(), 2);
    }
}
