//! Randomized chaos properties for the fault-tolerant scatter-gather.
//!
//! The container cannot vendor `proptest`, so these are hand-rolled
//! seeded-random properties over [`SplitMix64`]: every trial derives its
//! fault schedule, down/recover sequence, and query from the seed, so a
//! failure reproduces exactly. Two properties:
//!
//! 1. **Bit-identical recovery** — with `replication = 2` and at most one
//!    impaired server at a time (down, crash-on-recv, reply-drop, or
//!    delayed), a distributed top-k returns exactly the ids and distances
//!    of the healthy cluster: retry and hedging may change *who* answers,
//!    never *what* is answered.
//! 2. **Honest degradation** — with `replication = 1` and `degraded_mode`,
//!    impairing one server yields partial results whose [`Coverage`] and
//!    `unsearched` list match the injected fault exactly, and no neighbor
//!    is ever drawn from an unsearched segment.

use std::sync::Arc;
use std::time::Duration;
use tv_cluster::{ClusterRuntime, FaultKind, RuntimeConfig};
use tv_common::ids::{LocalId, VertexId};
use tv_common::{DistanceMetric, PlannerConfig, RetryPolicy, SegmentId, SplitMix64, Tid};
use tv_embedding::{EmbeddingSegment, EmbeddingTypeDef};
use tv_hnsw::DeltaRecord;

const DIM: usize = 8;
const SEGMENTS: u32 = 8;
const PER_SEGMENT: u32 = 25;

fn loaded_cluster(config: RuntimeConfig, seed: u64) -> (ClusterRuntime, Vec<Vec<f32>>) {
    let runtime = ClusterRuntime::start(config);
    let def = EmbeddingTypeDef::new("e", DIM, "M", DistanceMetric::L2);
    let mut rng = SplitMix64::new(seed);
    let mut vecs = Vec::new();
    let mut tid = 0u64;
    for s in 0..SEGMENTS {
        let seg = Arc::new(EmbeddingSegment::new(SegmentId(s), &def, 256));
        let mut recs = Vec::new();
        for l in 0..PER_SEGMENT {
            tid += 1;
            let v: Vec<f32> = (0..DIM).map(|_| rng.next_f32() * 5.0).collect();
            recs.push(DeltaRecord::upsert(
                VertexId::new(SegmentId(s), LocalId(l)),
                Tid(tid),
                v.clone(),
            ));
            vecs.push(v);
        }
        seg.append_deltas(&recs).unwrap();
        seg.delta_merge(Tid(tid)).unwrap();
        seg.index_merge(Tid(tid)).unwrap();
        runtime.add_segment(seg);
    }
    (runtime, vecs)
}

fn random_query(rng: &mut SplitMix64) -> Vec<f32> {
    (0..DIM).map(|_| rng.next_f32() * 5.0).collect()
}

/// One impaired server per step keeps every segment routable at
/// `replication = 2`, which is exactly the regime where recovery must be
/// invisible to the caller.
#[test]
fn topk_is_bit_identical_under_random_single_server_faults() {
    let servers = 4;
    let (runtime, _vecs) = loaded_cluster(
        RuntimeConfig {
            servers,
            replication: 2,
            planner: PlannerConfig::default().with_brute_threshold(4),
            retry: RetryPolicy {
                max_retries: 2,
                attempt_timeout: Duration::from_millis(80),
                backoff: Duration::from_millis(1),
                hedge_after: None,
            },
            degraded_mode: false,
            build_threads: 1,
        },
        31,
    );
    let mut rng = SplitMix64::new(0xC4A0_5EED);
    for step in 0..12 {
        let q = random_query(&mut rng);
        let healthy = runtime.top_k(&q, 10, 64, Tid::MAX, None).unwrap();
        assert!(healthy.coverage.is_complete());

        let victim = rng.next_below(servers as u64) as usize;
        let kind = rng.next_below(4);
        match kind {
            0 => runtime.fail_server(victim),
            1 => runtime.inject_fault(victim, FaultKind::CrashOnRecv, Some(1)),
            2 => runtime.inject_fault(victim, FaultKind::DropReply, Some(1)),
            _ => {
                // Half the delays exceed the attempt timeout (suspect →
                // retry), half do not (the original answers, just late).
                let ms = if rng.next_below(2) == 0 { 120 } else { 20 };
                runtime.inject_fault(victim, FaultKind::Delay(Duration::from_millis(ms)), Some(1));
            }
        }

        let chaotic = runtime.top_k(&q, 10, 64, Tid::MAX, None).unwrap();
        assert_eq!(
            healthy.neighbors, chaotic.neighbors,
            "step {step}: victim {victim} kind {kind} changed the answer"
        );
        assert!(
            chaotic.coverage.is_complete(),
            "step {step}: replication 2 must always reach full coverage"
        );

        runtime.recover_server(victim);
        runtime.faults().clear_all();
    }
}

/// With no replicas, a failed server's segments are honestly reported as
/// unsearched — never silently dropped, never leaked into the answer.
#[test]
fn degraded_coverage_accounts_exactly_for_injected_faults() {
    let servers = 4usize;
    let (runtime, vecs) = loaded_cluster(
        RuntimeConfig {
            servers,
            replication: 1,
            planner: PlannerConfig::default().with_brute_threshold(4),
            retry: RetryPolicy {
                max_retries: 1,
                attempt_timeout: Duration::from_millis(60),
                backoff: Duration::from_millis(1),
                hedge_after: None,
            },
            degraded_mode: true,
            build_threads: 1,
        },
        47,
    );
    let all: Vec<(VertexId, &Vec<f32>)> = (0..SEGMENTS)
        .flat_map(|s| (0..PER_SEGMENT).map(move |l| VertexId::new(SegmentId(s), LocalId(l))))
        .zip(vecs.iter())
        .collect();

    let mut rng = SplitMix64::new(0xDE6_0ADE);
    for step in 0..8 {
        let q = random_query(&mut rng);
        let victim = rng.next_below(servers as u64) as usize;
        // Round-robin placement at replication 1: the victim is the only
        // holder of every segment congruent to it mod `servers`.
        let expected_unsearched: Vec<SegmentId> = (0..SEGMENTS)
            .filter(|s| *s as usize % servers == victim)
            .map(SegmentId)
            .collect();

        let crashed = rng.next_below(2) == 0;
        if crashed {
            // Enough uses to swallow the scatter and every retry wave.
            runtime.inject_fault(victim, FaultKind::CrashOnRecv, Some(4));
        } else {
            runtime.fail_server(victim);
        }

        let r = runtime.top_k(&q, 10, 64, Tid::MAX, None).unwrap();
        assert_eq!(
            r.unsearched, expected_unsearched,
            "step {step}: victim {victim} crashed={crashed}"
        );
        assert_eq!(r.coverage.segments_total, SEGMENTS as usize);
        assert_eq!(
            r.coverage.segments_searched,
            SEGMENTS as usize - expected_unsearched.len()
        );
        assert_eq!(r.coverage.servers_failed, 1);
        assert!(!r.coverage.is_complete());
        assert!(
            r.neighbors
                .iter()
                .all(|n| !expected_unsearched.contains(&n.id.segment())),
            "step {step}: a neighbor came from an unsearched segment"
        );
        // The partial answer is still exact over the live segments.
        let live_best = all
            .iter()
            .filter(|(id, _)| !expected_unsearched.contains(&id.segment()))
            .min_by(|a, b| {
                tv_common::metric::l2_sq(&q, a.1).total_cmp(&tv_common::metric::l2_sq(&q, b.1))
            })
            .unwrap()
            .0;
        assert_eq!(r.neighbors[0].id, live_best, "step {step}");

        runtime.recover_server(victim);
        runtime.faults().clear_all();
        let clean = runtime.top_k(&q, 10, 64, Tid::MAX, None).unwrap();
        assert!(
            clean.coverage.is_complete(),
            "step {step}: recovery must restore full coverage"
        );
    }
}

/// Random fail/recover sequences across steps: the cluster's down-set
/// evolves, and as long as replication covers it, answers never change.
#[test]
fn random_fail_recover_walk_never_changes_answers() {
    let servers = 4usize;
    let (runtime, _vecs) = loaded_cluster(
        RuntimeConfig {
            servers,
            replication: 2,
            planner: PlannerConfig::default().with_brute_threshold(4),
            retry: RetryPolicy {
                max_retries: 2,
                attempt_timeout: Duration::from_millis(80),
                backoff: Duration::from_millis(1),
                hedge_after: None,
            },
            degraded_mode: false,
            build_threads: 1,
        },
        59,
    );
    let mut rng = SplitMix64::new(0xF01D_AB1E);
    let mut down: Option<usize> = None;
    let mut baseline: Vec<(Vec<f32>, Vec<VertexId>)> = Vec::new();
    for _ in 0..4 {
        let q = random_query(&mut rng);
        let r = runtime.top_k(&q, 10, 64, Tid::MAX, None).unwrap();
        let ids = r.neighbors.iter().map(|n| n.id).collect();
        baseline.push((q, ids));
    }
    for step in 0..16 {
        // Mutate the down-set: recover the current victim or fail a new one
        // (never two at once — adjacent pairs share every replica at rep 2).
        match down {
            Some(s) if rng.next_below(2) == 0 => {
                runtime.recover_server(s);
                down = None;
            }
            Some(_) => {}
            None => {
                let s = rng.next_below(servers as u64) as usize;
                runtime.fail_server(s);
                down = Some(s);
            }
        }
        let (q, expected) = &baseline[step % baseline.len()];
        let r = runtime.top_k(q, 10, 64, Tid::MAX, None).unwrap();
        let got: Vec<VertexId> = r.neighbors.iter().map(|n| n.id).collect();
        assert_eq!(&got, expected, "step {step}, down = {down:?}");
        assert!(r.coverage.is_complete());
    }
}
