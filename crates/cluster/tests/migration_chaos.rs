//! Migration chaos suite: prove that live segment migration is
//! crash-safe at every instrumented point and invisible to correctness.
//!
//! A subject cluster is compared against a **never-migrated oracle** loaded
//! with the identical deterministic dataset. Every assertion on query
//! results is bit-level (`f32::to_bits` on distances, exact vertex ids), so
//! a migration that loses, duplicates, or reorders a single delta record
//! fails loudly.
//!
//! The main test walks every [`CrashPoint::MIGRATION`] point at several
//! occurrence indices and requires one of exactly two outcomes:
//!
//! * **clean abort** — placement generation unchanged, source still
//!   authoritative, orphaned destination state garbage-collected, staging
//!   file gone, the abort recorded in [`MigrationErrors`], and a fresh
//!   retry completing normally; or
//! * **idempotent completion** — the flip had already committed, queries
//!   route to the destination, and re-running the identical plan returns
//!   `already_complete` while finishing the release.
//!
//! Separate tests keep concurrent appends and queries flowing *during* a
//! migration, drive the typed `Moved` redirect with a delayed worker, and
//! pin down degraded-mode `Coverage` accounting around aborted and
//! completed migrations.

use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;
use tv_cluster::{
    ClusterResponse, ClusterRuntime, FaultKind, MigrationPlan, Migrator, RuntimeConfig,
};
use tv_common::ids::{LocalId, VertexId};
use tv_common::{
    CrashPlan, CrashPoint, DistanceMetric, MigrationConfig, RetryPolicy, SegmentId, SplitMix64,
    Tid, TvError,
};
use tv_embedding::{EmbeddingSegment, EmbeddingTypeDef};
use tv_hnsw::DeltaRecord;

const SERVERS: usize = 3;
const SEGMENTS: u32 = 6;
const DIM: usize = 8;
/// Records folded into each segment's index snapshot before migration.
const BASE: u32 = 30;
/// Post-snapshot records per segment — the delta tail catch-up must ship.
const EXTRA: u32 = 20;
/// The segment every migration in this suite moves.
const MIGRATED: SegmentId = SegmentId(1);

/// Tight knobs so the scripted migration exercises multiple catch-up
/// rounds and drains the final tail inside the flip.
fn test_config() -> MigrationConfig {
    MigrationConfig {
        flip_threshold: 0,
        catchup_batch: 8,
        max_catchup_rounds: 64,
    }
}

fn retry_policy(attempt_timeout: Duration) -> RetryPolicy {
    RetryPolicy {
        max_retries: 2,
        attempt_timeout,
        backoff: Duration::from_millis(1),
        hedge_after: None,
    }
}

fn start_cluster_with(degraded: bool, retry: RetryPolicy) -> Arc<ClusterRuntime> {
    Arc::new(ClusterRuntime::start(RuntimeConfig {
        servers: SERVERS,
        replication: 1,
        // Exact scans: results are bit-comparable however each copy's
        // index was built.
        planner: tv_common::PlannerConfig::default().with_brute_threshold(4096),
        retry,
        degraded_mode: degraded,
        build_threads: 1,
    }))
}

fn start_cluster(degraded: bool) -> Arc<ClusterRuntime> {
    start_cluster_with(degraded, retry_policy(Duration::from_millis(500)))
}

/// Deterministic vector for `(segment, local slot, version)`.
fn vec_for(seg: u32, local: u32, version: u64) -> Vec<f32> {
    let mut rng =
        SplitMix64::new(0x4D16_12A7 ^ (u64::from(seg) << 32) ^ (u64::from(local) << 8) ^ version);
    (0..DIM).map(|_| rng.next_f32() * 4.0).collect()
}

/// Load the deterministic dataset: `BASE` records per segment folded into
/// an index snapshot, then `EXTRA` records appended *through the runtime*
/// so every segment carries a delta tail beyond its snapshot (real
/// catch-up work). Returns the final committed TID.
fn load(runtime: &Arc<ClusterRuntime>) -> Tid {
    let def = EmbeddingTypeDef::new("emb", DIM, "model", DistanceMetric::L2);
    let mut tid = 0u64;
    for s in 0..SEGMENTS {
        let seg = Arc::new(EmbeddingSegment::new(SegmentId(s), &def, 256));
        let mut recs = Vec::new();
        for l in 0..BASE {
            tid += 1;
            recs.push(DeltaRecord::upsert(
                VertexId::new(SegmentId(s), LocalId(l)),
                Tid(tid),
                vec_for(s, l, 0),
            ));
        }
        seg.append_deltas(&recs).unwrap();
        seg.delta_merge(Tid(tid)).unwrap();
        seg.index_merge(Tid(tid)).unwrap();
        runtime.add_segment(seg);
    }
    for s in 0..SEGMENTS {
        let mut recs = Vec::new();
        for l in BASE..BASE + EXTRA {
            tid += 1;
            recs.push(DeltaRecord::upsert(
                VertexId::new(SegmentId(s), LocalId(l)),
                Tid(tid),
                vec_for(s, l, 0),
            ));
        }
        runtime.append_deltas(SegmentId(s), &recs).unwrap();
    }
    Tid(tid)
}

fn queries() -> Vec<Vec<f32>> {
    (0..8u64)
        .map(|q| {
            let mut rng = SplitMix64::new(0x9E37_79B9 + q);
            (0..DIM).map(|_| rng.next_f32() * 4.0).collect()
        })
        .collect()
}

fn fingerprint(r: &ClusterResponse) -> Vec<(u64, u32)> {
    r.neighbors
        .iter()
        .map(|n| (n.id.0, n.dist.to_bits()))
        .collect()
}

/// Every probe query on `subject` must be complete and bit-identical to
/// the oracle's answer at the same pinned TID.
fn assert_bit_identical(subject: &ClusterRuntime, oracle: &ClusterRuntime, tid: Tid, label: &str) {
    for (i, q) in queries().iter().enumerate() {
        let a = subject.top_k(q, 5, 64, tid, None).unwrap();
        let b = oracle.top_k(q, 5, 64, tid, None).unwrap();
        assert!(a.coverage.is_complete(), "{label}: query {i} degraded");
        assert_eq!(
            fingerprint(&a),
            fingerprint(&b),
            "{label}: query {i} diverged from the never-migrated oracle"
        );
    }
}

fn staging(label: &str) -> PathBuf {
    std::env::temp_dir().join(format!("tv-migration-chaos-{}-{label}", std::process::id()))
}

/// The only holder of `seg` under replication 1, and a server that does
/// not hold it.
fn source_and_spare(runtime: &ClusterRuntime, seg: SegmentId) -> (usize, usize) {
    let table = runtime.placement();
    let from = table.holders(seg)[0];
    let to = (0..SERVERS).find(|s| !table.holds(seg, *s)).unwrap();
    (from, to)
}

/// One armed crash case: run the scripted migration with `point` tripping
/// on its `nth` occurrence and require a clean abort or an idempotent
/// completion — never a third state.
fn run_crash_case(point: CrashPoint, nth: u64, oracle: &Arc<ClusterRuntime>, final_tid: Tid) {
    let label = format!("{point}@{nth}");
    let subject = start_cluster(false);
    assert_eq!(load(&subject), final_tid, "{label}: fixture drifted");
    let (from, to) = source_and_spare(&subject, MIGRATED);
    let plan = MigrationPlan {
        segment: MIGRATED,
        from,
        to,
    };
    let dir = staging(&label.replace(['/', '@'], "-"));
    let _ = std::fs::remove_dir_all(&dir);
    let crash = Arc::new(CrashPlan::new());
    crash.arm(point, nth);
    let migrator = Migrator::new(Arc::clone(&subject), dir.clone())
        .with_crash_plan(Arc::clone(&crash))
        .with_config(test_config());
    let gen_before = subject.generation();
    let errors_before = subject.migration_errors().count();

    let err = migrator
        .run(plan)
        .expect_err("an armed crash point must surface as an error");
    // `Injected` is the crash itself; `Storage` is the CRC rejection of a
    // truncated transfer (the ship-truncate fault fires *and continues*,
    // so the install phase must catch the damage).
    assert!(
        matches!(err, TvError::Injected(_) | TvError::Storage(_)),
        "{label}: unexpected error shape: {err}"
    );
    assert!(
        subject.migration_errors().count() > errors_before,
        "{label}: the failure must be recorded, not swallowed"
    );
    let probe = &queries()[0];

    if subject.generation() == gen_before {
        // --- Clean abort: the source is still authoritative. ------------
        let table = subject.placement();
        assert!(
            table.holds(MIGRATED, from),
            "{label}: source lost the segment"
        );
        assert!(!table.holds(MIGRATED, to), "{label}: abort leaked a holder");
        let on_src = subject.search_on(from, MIGRATED, probe, 5, 64, final_tid);
        assert!(
            !on_src.unwrap().is_empty(),
            "{label}: source stopped serving after a clean abort"
        );
        // The orphaned destination copy was garbage-collected: a direct
        // probe gets the typed redirect, not stale data.
        assert!(
            matches!(
                subject.search_on(to, MIGRATED, probe, 5, 64, final_tid),
                Err(TvError::Moved { .. })
            ),
            "{label}: destination still holds orphaned state"
        );
        let ship = dir.join(format!("migrate-seg{}-{from}to{to}.tvm", MIGRATED.0));
        assert!(!ship.exists(), "{label}: staging file survived the abort");
        assert_bit_identical(&subject, oracle, final_tid, &format!("{label}/post-abort"));

        // A fresh retry of the identical plan completes normally.
        let retry = Migrator::new(Arc::clone(&subject), dir.clone()).with_config(test_config());
        let report = retry.run(plan).unwrap();
        assert!(!report.already_complete, "{label}: retry skipped real work");
        assert_eq!(report.generation, gen_before + 1);
    } else {
        // --- The flip committed before the crash: migration complete. ---
        let table = subject.placement();
        assert!(
            table.holds(MIGRATED, to),
            "{label}: flip did not move the segment"
        );
        assert!(
            !table.holds(MIGRATED, from),
            "{label}: flip left two holders"
        );

        // Re-running the identical plan is recognized as already done and
        // finishes the release idempotently.
        let retry = Migrator::new(Arc::clone(&subject), dir.clone()).with_config(test_config());
        let report = retry.run(plan).unwrap();
        assert!(
            report.already_complete,
            "{label}: retry re-ran a committed flip"
        );
        assert_eq!(report.generation, subject.generation());
        assert!(
            matches!(
                subject.search_on(from, MIGRATED, probe, 5, 64, final_tid),
                Err(TvError::Moved { .. })
            ),
            "{label}: source copy not released after retry"
        );
    }

    // Either way the cluster answers exactly like the oracle, and the
    // moved copy holds exactly the oracle's live records (no loss, no
    // duplication).
    assert_bit_identical(&subject, oracle, final_tid, &format!("{label}/final"));
    let subject_live = subject.segment(MIGRATED).unwrap().live_count(final_tid);
    let oracle_live = oracle.segment(MIGRATED).unwrap().live_count(final_tid);
    assert_eq!(
        subject_live, oracle_live,
        "{label}: live-record count drifted"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn every_migration_crash_point_aborts_cleanly_or_completes_idempotently() {
    // Observation run: an unarmed plan counts how often each migration
    // crash point is reached by the scripted migration.
    let observed = Arc::new(CrashPlan::new());
    {
        let subject = start_cluster(false);
        load(&subject);
        let (from, to) = source_and_spare(&subject, MIGRATED);
        let dir = staging("observe");
        let migrator = Migrator::new(Arc::clone(&subject), dir.clone())
            .with_crash_plan(Arc::clone(&observed))
            .with_config(test_config());
        let report = migrator
            .run(MigrationPlan {
                segment: MIGRATED,
                from,
                to,
            })
            .unwrap();
        assert!(
            report.catchup_rounds >= 2,
            "fixture must force real catch-up"
        );
        assert!(report.catchup_records >= u64::from(EXTRA));
        let _ = std::fs::remove_dir_all(&dir);
    }
    for point in CrashPoint::MIGRATION {
        assert!(
            observed.hits(point) > 0,
            "{point} is unreachable in the scripted migration — the suite would prove nothing"
        );
    }

    let oracle = start_cluster(false);
    let final_tid = load(&oracle);

    for point in CrashPoint::MIGRATION {
        let hits = observed.hits(point);
        let mut nths = vec![1, 2, hits / 2, hits];
        nths.retain(|n| (1..=hits).contains(n));
        nths.sort_unstable();
        nths.dedup();
        for nth in nths {
            run_crash_case(point, nth, &oracle, final_tid);
        }
    }
}

#[test]
fn live_migration_with_concurrent_appends_and_queries_is_bit_identical() {
    let subject = start_cluster(false);
    let oracle = start_cluster(false);
    let t0 = load(&subject);
    assert_eq!(load(&oracle), t0);
    let (from, to) = source_and_spare(&subject, MIGRATED);

    // `committed` only advances after a record landed on BOTH clusters, so
    // any query pinned at or below it must see identical state.
    let committed = Arc::new(AtomicU64::new(t0.0));
    let stop = Arc::new(AtomicBool::new(false));

    let writer = {
        let subject = Arc::clone(&subject);
        let oracle = Arc::clone(&oracle);
        let committed = Arc::clone(&committed);
        let stop = Arc::clone(&stop);
        std::thread::spawn(move || {
            let mut tid = t0.0;
            let mut appended = 0u64;
            while !stop.load(Ordering::Relaxed) {
                tid += 1;
                // Overwrite existing slots round-robin: unbounded churn
                // without exhausting segment capacity.
                let local = LocalId((tid % u64::from(BASE)) as u32);
                let rec = DeltaRecord::upsert(
                    VertexId::new(MIGRATED, local),
                    Tid(tid),
                    vec_for(MIGRATED.0, local.0, tid),
                );
                subject
                    .append_deltas(MIGRATED, std::slice::from_ref(&rec))
                    .unwrap();
                oracle.append_deltas(MIGRATED, &[rec]).unwrap();
                committed.store(tid, Ordering::Release);
                appended += 1;
                std::thread::sleep(Duration::from_micros(100));
            }
            appended
        })
    };

    let checker = {
        let subject = Arc::clone(&subject);
        let oracle = Arc::clone(&oracle);
        let committed = Arc::clone(&committed);
        let stop = Arc::clone(&stop);
        std::thread::spawn(move || {
            let qs = queries();
            let mut checked = 0u64;
            while !stop.load(Ordering::Relaxed) {
                let tid = Tid(committed.load(Ordering::Acquire));
                for q in &qs {
                    let a = subject.top_k(q, 5, 64, tid, None).unwrap();
                    let b = oracle.top_k(q, 5, 64, tid, None).unwrap();
                    assert!(a.coverage.is_complete());
                    assert_eq!(
                        fingerprint(&a),
                        fingerprint(&b),
                        "mid-migration query at tid {} diverged",
                        tid.0
                    );
                    checked += 1;
                }
            }
            checked
        })
    };

    // Migrate while both flows run. A small flip threshold plus a writer
    // that keeps appending forces the flip to drain a live tail.
    let dir = staging("live");
    let migrator = Migrator::new(Arc::clone(&subject), dir.clone()).with_config(MigrationConfig {
        flip_threshold: 4,
        catchup_batch: 8,
        max_catchup_rounds: 1024,
    });
    std::thread::sleep(Duration::from_millis(20));
    let report = migrator
        .run(MigrationPlan {
            segment: MIGRATED,
            from,
            to,
        })
        .unwrap();
    std::thread::sleep(Duration::from_millis(20));
    stop.store(true, Ordering::Relaxed);
    let appended = writer.join().unwrap();
    let checked = checker.join().unwrap();

    assert!(!report.already_complete);
    assert!(report.shipped_bytes > 0);
    assert!(appended > 0, "the writer never ran");
    assert!(checked > 0, "the checker never ran");

    // Zero lost or duplicated records across the hand-off: the final state
    // is bit-identical to the oracle at the writer's last committed TID,
    // and the destination copy's live count matches exactly.
    let final_tid = Tid(committed.load(Ordering::Acquire));
    assert_bit_identical(&subject, &oracle, final_tid, "post-migration");
    assert_eq!(
        subject.segment(MIGRATED).unwrap().live_count(final_tid),
        oracle.segment(MIGRATED).unwrap().live_count(final_tid)
    );
    assert!(subject.placement().holds(MIGRATED, to));
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn in_flight_queries_pinned_to_the_old_generation_redirect_instead_of_failing() {
    // Long attempt timeout: the delayed worker must NOT be declared a
    // suspect — the point is to catch the *redirect* path, not the retry
    // path.
    let subject = start_cluster_with(false, retry_policy(Duration::from_secs(5)));
    let oracle = start_cluster(false);
    let final_tid = load(&subject);
    assert_eq!(load(&oracle), final_tid);
    let (from, to) = source_and_spare(&subject, MIGRATED);

    // The source answers its next request only after a long nap — time
    // enough for the migration to flip and release under the query.
    subject.inject_fault(from, FaultKind::Delay(Duration::from_millis(400)), Some(1));

    let probe = queries()[0].clone();
    let want = {
        let r = oracle.top_k(&probe, 5, 64, final_tid, None).unwrap();
        fingerprint(&r)
    };
    let query = {
        let subject = Arc::clone(&subject);
        let probe = probe.clone();
        std::thread::spawn(move || subject.top_k(&probe, 5, 64, final_tid, None).unwrap())
    };

    // Flip the segment away while the query's pinned-generation request
    // sleeps on the old holder.
    std::thread::sleep(Duration::from_millis(100));
    let dir = staging("redirect");
    let report = Migrator::new(Arc::clone(&subject), dir.clone())
        .with_config(test_config())
        .run(MigrationPlan {
            segment: MIGRATED,
            from,
            to,
        })
        .unwrap();
    assert!(!report.already_complete);

    let response = query.join().unwrap();
    assert!(response.coverage.is_complete());
    assert_eq!(
        fingerprint(&response),
        want,
        "redirected query returned a wrong answer"
    );
    assert!(
        response.moved_redirects >= 1,
        "the drained source must answer with a typed redirect, got {:?} redirects",
        response.moved_redirects
    );
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn degraded_coverage_stays_honest_across_aborted_and_completed_migrations() {
    let subject = start_cluster(true);
    let final_tid = load(&subject);
    let (from, to) = source_and_spare(&subject, MIGRATED);
    let plan = MigrationPlan {
        segment: MIGRATED,
        from,
        to,
    };
    let dir = staging("coverage");
    let probe = queries()[0].clone();
    let unsearched_count =
        |r: &ClusterResponse| r.unsearched.iter().filter(|s| **s == MIGRATED).count();

    // Abort a migration mid-install, leaving a would-be orphan copy.
    let crash = Arc::new(CrashPlan::new());
    crash.arm(CrashPoint::MigrateMidInstall, 1);
    Migrator::new(Arc::clone(&subject), dir.clone())
        .with_crash_plan(crash)
        .with_config(test_config())
        .run(plan)
        .unwrap_err();

    // Healthy cluster after the abort: full coverage, stable totals.
    let r = subject.top_k(&probe, 5, 64, final_tid, None).unwrap();
    assert!(r.coverage.is_complete());
    assert_eq!(r.coverage.segments_total, SEGMENTS as usize);

    // Source down after the abort: the segment is unsearched EXACTLY once
    // — an aborted migration must neither double-count it (orphan copy)
    // nor drop it from the accounting.
    subject.fail_server(from);
    let r = subject.top_k(&probe, 5, 64, final_tid, None).unwrap();
    assert!(!r.coverage.is_complete());
    assert_eq!(r.coverage.segments_total, SEGMENTS as usize);
    assert_eq!(
        unsearched_count(&r),
        1,
        "aborted migration corrupted coverage"
    );
    subject.recover_server(from);

    // Complete the migration for real, then check both failure sides.
    let report = Migrator::new(Arc::clone(&subject), dir.clone())
        .with_config(test_config())
        .run(plan)
        .unwrap();
    assert!(!report.already_complete);

    // Old source down: the migrated segment no longer depends on it.
    subject.fail_server(from);
    let r = subject.top_k(&probe, 5, 64, final_tid, None).unwrap();
    assert_eq!(r.coverage.segments_total, SEGMENTS as usize);
    assert_eq!(
        unsearched_count(&r),
        0,
        "migrated segment still accounted to the drained source"
    );
    subject.recover_server(from);

    // New holder down: the segment is unsearched exactly once again.
    subject.fail_server(to);
    let r = subject.top_k(&probe, 5, 64, final_tid, None).unwrap();
    assert!(!r.coverage.is_complete());
    assert_eq!(unsearched_count(&r), 1);
    let _ = std::fs::remove_dir_all(&dir);
}
