//! LDBC-SNB-like social graph generator (§6.1, §6.5).
//!
//! The paper augments LDBC SNB with content embeddings on Message vertices
//! (Post and Comment) "sampled from the SIFT100M dataset". This generator
//! reproduces the structural properties the hybrid-search results depend
//! on: a `knows` graph with heavy-tailed degrees (so k-hop neighborhoods
//! explode the way IC5 needs), skewed message authorship, language and tag
//! attributes with realistic selectivities, and SIFT-shaped embeddings on
//! every message.

use crate::vectors::{DatasetShape, VectorDataset};
use tg_graph::Graph;
use tv_common::ids::SegmentLayout;
use tv_common::{PlannerConfig, SplitMix64, TvResult, VertexId};

// Re-exported so callers need not import tg-storage types directly.
pub use tg_storage::{AttrType, AttrValue};
use tv_embedding::{EmbeddingSpace, IndexKind, ServiceConfig, VectorDataType};

/// Generator parameters.
#[derive(Debug, Clone, Copy)]
pub struct SnbConfig {
    /// Scale factor: entity counts scale linearly (SF10/SF30 in the paper).
    pub sf: usize,
    /// Embedding dimensionality (the paper samples 128-d SIFT; benchmarks
    /// here default lower for single-core speed — documented in
    /// EXPERIMENTS.md).
    pub dim: usize,
    /// RNG seed.
    pub seed: u64,
    /// Vertex segment capacity (smaller → more segments → more MPP fan-out).
    pub segment_capacity: usize,
    /// Average `knows` degree.
    pub avg_knows: usize,
}

impl Default for SnbConfig {
    fn default() -> Self {
        SnbConfig {
            sf: 10,
            dim: 16,
            seed: 0x5EED,
            segment_capacity: 1024,
            avg_knows: 18,
        }
    }
}

/// Number of languages; index 1 ("es") is the IC11 filter (~20% of
/// messages).
pub const LANGUAGES: [&str; 5] = ["en", "es", "de", "fr", "zh"];

/// Tag universe size (IC6 filters on one rare tag).
pub const TAGS: i64 = 200;

/// Countries (IC3 filters on the two rarest).
pub const COUNTRIES: usize = 20;

/// A generated SNB-like graph plus the ids needed to query it.
pub struct SnbGraph {
    /// The populated graph.
    pub graph: Graph,
    /// Config used.
    pub config: SnbConfig,
    /// Vertex type ids.
    pub person_t: u32,
    /// Post vertex type.
    pub post_t: u32,
    /// Comment vertex type.
    pub comment_t: u32,
    /// Country vertex type.
    pub country_t: u32,
    /// `knows` edge (Person→Person).
    pub knows_e: u32,
    /// `hasCreator` from Post.
    pub post_creator_e: u32,
    /// `hasCreator` from Comment.
    pub comment_creator_e: u32,
    /// `isLocatedIn` (Person→Country).
    pub located_e: u32,
    /// `replyOf` (Comment→Post).
    pub reply_e: u32,
    /// Post embedding attribute id.
    pub post_emb: u32,
    /// Comment embedding attribute id.
    pub comment_emb: u32,
    /// All person ids.
    pub persons: Vec<VertexId>,
    /// All post ids.
    pub posts: Vec<VertexId>,
    /// All comment ids.
    pub comments: Vec<VertexId>,
    /// Country of each person (index-parallel to `persons`).
    pub person_country: Vec<usize>,
}

impl SnbGraph {
    /// Entity counts for a scale factor: `(persons, posts, comments)`.
    #[must_use]
    pub fn counts(sf: usize) -> (usize, usize, usize) {
        (90 * sf, 350 * sf, 1050 * sf)
    }

    /// Generate and load the graph.
    pub fn generate(config: SnbConfig) -> TvResult<Self> {
        let (n_person, n_post, n_comment) = Self::counts(config.sf);
        let mut rng = SplitMix64::new(config.seed);

        let graph = Graph::with_config(
            SegmentLayout::with_capacity(config.segment_capacity),
            ServiceConfig {
                planner: PlannerConfig::default(),
                query_threads: 2,
                default_ef: 64,
                build_threads: 1,
            },
        );
        let person_t = graph.create_vertex_type(
            "Person",
            &[("firstName", AttrType::Str), ("countryId", AttrType::Int)],
        )?;
        let post_t = graph.create_vertex_type(
            "Post",
            &[
                ("language", AttrType::Str),
                ("tag", AttrType::Int),
                ("creationDate", AttrType::Int),
                ("length", AttrType::Int),
            ],
        )?;
        let comment_t = graph.create_vertex_type(
            "Comment",
            &[
                ("language", AttrType::Str),
                ("tag", AttrType::Int),
                ("creationDate", AttrType::Int),
                ("length", AttrType::Int),
            ],
        )?;
        let country_t = graph.create_vertex_type("Country", &[("name", AttrType::Str)])?;
        let knows_e = graph.create_edge_type("knows", "Person", "Person")?;
        let post_creator_e = graph.create_edge_type("postHasCreator", "Post", "Person")?;
        let comment_creator_e = graph.create_edge_type("commentHasCreator", "Comment", "Person")?;
        let located_e = graph.create_edge_type("isLocatedIn", "Person", "Country")?;
        let reply_e = graph.create_edge_type("replyOf", "Comment", "Post")?;

        // One embedding space for all message content (§4.1, Fig. 2).
        graph.create_embedding_space(EmbeddingSpace {
            name: "content_space".into(),
            dimension: config.dim,
            model: "SIFT".into(),
            index: IndexKind::Hnsw,
            datatype: VectorDataType::Float,
            metric: tv_common::DistanceMetric::L2,
            quant: tv_common::QuantSpec::f32(),
            layout: tv_common::GraphLayout::default(),
        })?;
        let post_emb = graph.add_embedding_in_space("Post", "content_emb", "content_space")?;
        let comment_emb =
            graph.add_embedding_in_space("Comment", "content_emb", "content_space")?;

        // Countries.
        let countries = graph.allocate_many(country_t, COUNTRIES)?;
        let mut txn = graph.txn();
        for (i, &c) in countries.iter().enumerate() {
            txn = txn.upsert_vertex(country_t, c, vec![AttrValue::Str(format!("country{i}"))]);
        }
        txn.commit()?;

        // Persons: country skew — rare countries get few people.
        let persons = graph.allocate_many(person_t, n_person)?;
        let mut person_country = Vec::with_capacity(n_person);
        for chunk in persons.chunks(2048) {
            let mut txn = graph.txn();
            for &p in chunk {
                let i = person_country.len();
                // Zipf-ish: country index grows rare towards the tail.
                let c = (rng.next_f64().powf(2.5) * COUNTRIES as f64) as usize;
                let c = c.min(COUNTRIES - 1);
                person_country.push(c);
                txn = txn
                    .upsert_vertex(
                        person_t,
                        p,
                        vec![AttrValue::Str(format!("p{i}")), AttrValue::Int(c as i64)],
                    )
                    .add_edge(located_e, person_t, p, countries[c]);
            }
            txn.commit()?;
        }

        // knows: heavy-tailed degrees, symmetric.
        let mut txn = graph.txn();
        let mut edge_budget = 0usize;
        for (i, &p) in persons.iter().enumerate() {
            // Pareto-ish degree: most people ~avg/2, a few hubs with many.
            let u = rng.next_f64().max(1e-9);
            let deg =
                ((config.avg_knows as f64 / 2.0) / u.powf(0.5)).min(n_person as f64 / 4.0) as usize;
            for _ in 0..deg {
                let j = rng.next_below(n_person as u64) as usize;
                if i != j {
                    txn = txn
                        .add_edge(knows_e, person_t, p, persons[j])
                        .add_edge(knows_e, person_t, persons[j], p);
                    edge_budget += 1;
                }
                if edge_budget % 4096 == 4095 {
                    txn.commit()?;
                    txn = graph.txn();
                }
            }
        }
        txn.commit()?;

        // Message embeddings: SIFT-shape at the configured dim.
        let vectors = VectorDataset::generate_dim(
            DatasetShape::Sift,
            config.dim,
            n_post + n_comment,
            0,
            config.seed ^ 0xE,
        );

        // Posts + comments: authorship skew (prolific authors make IC5's
        // candidate explosion possible).
        let posts = graph.allocate_many(post_t, n_post)?;
        let comments = graph.allocate_many(comment_t, n_comment)?;
        let pick_author = |rng: &mut SplitMix64| -> usize {
            // Quadratic skew toward low person indices.
            let u = rng.next_f64();
            ((u * u) * n_person as f64) as usize % n_person
        };
        let pick_language = |rng: &mut SplitMix64| -> &'static str {
            let u = rng.next_f64();
            // en 50%, es 20%, de 15%, fr 10%, zh 5%.
            if u < 0.5 {
                LANGUAGES[0]
            } else if u < 0.7 {
                LANGUAGES[1]
            } else if u < 0.85 {
                LANGUAGES[2]
            } else if u < 0.95 {
                LANGUAGES[3]
            } else {
                LANGUAGES[4]
            }
        };
        let pick_tag = |rng: &mut SplitMix64| -> i64 {
            // Zipf-ish over TAGS values.
            let u = rng.next_f64().max(1e-9);
            ((u.powf(2.0)) * TAGS as f64) as i64 % TAGS
        };

        for (mi, chunk) in posts.chunks(1024).enumerate() {
            let mut txn = graph.txn();
            for (off, &m) in chunk.iter().enumerate() {
                let i = mi * 1024 + off;
                let author = pick_author(&mut rng);
                txn = txn
                    .upsert_vertex(
                        post_t,
                        m,
                        vec![
                            AttrValue::Str(pick_language(&mut rng).to_string()),
                            AttrValue::Int(pick_tag(&mut rng)),
                            AttrValue::Int(i as i64),
                            AttrValue::Int((rng.next_below(2000)) as i64),
                        ],
                    )
                    .set_vector(post_emb, m, vectors.base[i].clone())
                    .add_edge(post_creator_e, post_t, m, persons[author]);
            }
            txn.commit()?;
        }
        for (mi, chunk) in comments.chunks(1024).enumerate() {
            let mut txn = graph.txn();
            for (off, &m) in chunk.iter().enumerate() {
                let i = mi * 1024 + off;
                let author = pick_author(&mut rng);
                let parent = posts[rng.next_below(n_post as u64) as usize];
                txn = txn
                    .upsert_vertex(
                        comment_t,
                        m,
                        vec![
                            AttrValue::Str(pick_language(&mut rng).to_string()),
                            AttrValue::Int(pick_tag(&mut rng)),
                            AttrValue::Int((n_post + i) as i64),
                            AttrValue::Int((rng.next_below(2000)) as i64),
                        ],
                    )
                    .set_vector(comment_emb, m, vectors.base[n_post + i].clone())
                    .add_edge(comment_creator_e, comment_t, m, persons[author])
                    .add_edge(reply_e, comment_t, m, parent);
            }
            txn.commit()?;
        }

        Ok(SnbGraph {
            graph,
            config,
            person_t,
            post_t,
            comment_t,
            country_t,
            knows_e,
            post_creator_e,
            comment_creator_e,
            located_e,
            reply_e,
            post_emb,
            comment_emb,
            persons,
            posts,
            comments,
            person_country,
        })
    }

    /// Total message count.
    #[must_use]
    pub fn message_count(&self) -> usize {
        self.posts.len() + self.comments.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> SnbGraph {
        SnbGraph::generate(SnbConfig {
            sf: 1,
            dim: 8,
            seed: 7,
            segment_capacity: 256,
            avg_knows: 8,
        })
        .unwrap()
    }

    #[test]
    fn generates_expected_counts() {
        let g = tiny();
        assert_eq!(g.persons.len(), 90);
        assert_eq!(g.posts.len(), 350);
        assert_eq!(g.comments.len(), 1050);
        assert_eq!(g.message_count(), 1400);
        let tid = g.graph.read_tid();
        assert_eq!(g.graph.all_vertices(g.person_t, tid).unwrap().len(), 90);
    }

    #[test]
    fn every_message_has_creator_and_embedding() {
        let g = tiny();
        let tid = g.graph.read_tid();
        for &m in g.posts.iter().take(20) {
            assert_eq!(
                g.graph
                    .out_neighbors(g.post_t, m, g.post_creator_e, tid)
                    .unwrap()
                    .len(),
                1
            );
            assert!(g.graph.embedding_of(g.post_emb, m, tid).unwrap().is_some());
        }
        for &c in g.comments.iter().take(20) {
            assert_eq!(
                g.graph
                    .out_neighbors(g.comment_t, c, g.comment_creator_e, tid)
                    .unwrap()
                    .len(),
                1
            );
            assert!(g
                .graph
                .embedding_of(g.comment_emb, c, tid)
                .unwrap()
                .is_some());
        }
    }

    #[test]
    fn knows_graph_is_connected_enough() {
        let g = tiny();
        let tid = g.graph.read_tid();
        // 2-hop neighborhood of a hub (author 0 is the most prolific; person
        // 0 also tends to be well connected) should reach a decent chunk.
        let seeds = tg_graph::VertexSet::from_iter_typed(g.person_t, [g.persons[0]]);
        let reached = g
            .graph
            .k_hop(&seeds, g.person_t, g.knows_e, 2, tid)
            .unwrap();
        assert!(reached.len() > 10, "2-hop reached only {}", reached.len());
    }

    #[test]
    fn languages_have_expected_skew() {
        let g = tiny();
        let tid = g.graph.read_tid();
        let es = g
            .graph
            .select_vertices(g.post_t, tid, |_, get| {
                get("language").and_then(|v| v.as_str().map(String::from)) == Some("es".to_string())
            })
            .unwrap();
        let frac = es.len() as f64 / g.posts.len() as f64;
        assert!((0.1..0.35).contains(&frac), "es fraction {frac}");
    }

    #[test]
    fn deterministic_given_seed() {
        let a = tiny();
        let b = tiny();
        assert_eq!(a.person_country, b.person_country);
    }
}
