//! The modified LDBC interactive-complex (IC) hybrid queries of §6.5.
//!
//! Each query selects IC queries "involving the KNOWS edge type and var[ies]
//! the number of repetitions of KNOWS"; a global accumulator collects the
//! matched Message vertices (Post or Comment), and a top-k vector search
//! runs over the collected set. The five shapes reproduce the paper's
//! candidate-set profile (Tables 3–4):
//!
//! | query | extra filter                        | candidate profile |
//! |-------|-------------------------------------|-------------------|
//! | IC3   | creator in the two rarest countries + rare tag | tens |
//! | IC5   | none — every message of reachable persons | millions-scale (largest) |
//! | IC6   | one rare tag                         | moderate-small |
//! | IC9   | 20 most recent messages              | exactly 20 |
//! | IC11  | language = "es"                      | moderate-large |

use crate::snb::{SnbGraph, COUNTRIES};
use std::collections::HashSet;
use std::time::{Duration, Instant};
use tg_graph::accum::SetAccum;
use tg_graph::VertexSet;
use tv_common::{TvResult, VertexId};
use tv_gsql::{vector_search_with_stats, VectorSearchOptions};

/// Which IC shape to run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IcQuery {
    /// Friends' messages from rare countries (tiny candidate set).
    Ic3,
    /// All friends' messages (huge candidate set).
    Ic5,
    /// Friends' messages with a rare tag (moderate-small).
    Ic6,
    /// 20 most recent friends' messages (exactly 20).
    Ic9,
    /// Friends' messages in Spanish (moderate-large).
    Ic11,
}

impl IcQuery {
    /// All five shapes, in the tables' column order.
    pub const ALL: [IcQuery; 5] = [
        IcQuery::Ic3,
        IcQuery::Ic5,
        IcQuery::Ic6,
        IcQuery::Ic9,
        IcQuery::Ic11,
    ];

    /// Table column label.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            IcQuery::Ic3 => "IC3",
            IcQuery::Ic5 => "IC5",
            IcQuery::Ic6 => "IC6",
            IcQuery::Ic9 => "IC9",
            IcQuery::Ic11 => "IC11",
        }
    }
}

/// Measurements for one hybrid query run (one cell group of Tables 3–4).
#[derive(Debug, Clone, Copy)]
pub struct HybridStats {
    /// Total query time (graph traversal + collection + vector search).
    pub end_to_end: Duration,
    /// Number of collected Message candidates.
    pub candidates: usize,
    /// Time of the top-k vector search alone.
    pub vector_search: Duration,
    /// Embedding segments touched by the vector search.
    pub segments_touched: usize,
    /// Whether the vector stage used brute force (the Tables' analysis
    /// notes IC11 went brute-force while IC5 used the index).
    pub brute_force: bool,
}

/// Run one IC hybrid query: `hops` repetitions of KNOWS from `seed_person`,
/// collect matching messages, then top-k vector search with `query_vector`.
pub fn run_ic(
    snb: &SnbGraph,
    query: IcQuery,
    seed_person: VertexId,
    hops: usize,
    k: usize,
    query_vector: &[f32],
) -> TvResult<HybridStats> {
    let g = &snb.graph;
    let tid = g.read_tid();
    let started = Instant::now();

    // KNOWS^hops neighborhood (the IC query skeleton).
    let seeds = VertexSet::from_iter_typed(snb.person_t, [seed_person]);
    let friends = g.k_hop(&seeds, snb.person_t, snb.knows_e, hops, tid)?;
    let friend_set: HashSet<VertexId> = friends.of_type(snb.person_t).into_iter().collect();

    // Collect Message candidates through a global accumulator, walking the
    // hasCreator edges of both message types (EdgeAction).
    let mut accum = SetAccum::default();
    // Country indices are zipf-skewed towards 0, so the last index is the
    // rarest (~2% of persons); tag values are skewed the same way, so tag 0
    // is the most common (~7%) and low thresholds are selective.
    let rarest_country = (COUNTRIES - 1) as i64;
    for (msg_type, creator_edge) in [
        (snb.post_t, snb.post_creator_e),
        (snb.comment_t, snb.comment_creator_e),
    ] {
        let store = g.store().vertex_type(msg_type)?;
        let schema = store.schema().clone();
        let lang_col = schema.index_of("language").expect("language attr");
        let tag_col = schema.index_of("tag").expect("tag attr");
        let country_attr_col = {
            let pstore = g.store().vertex_type(snb.person_t)?;
            pstore.schema().index_of("countryId").expect("countryId")
        };
        let edges = g.edge_action(msg_type, creator_edge, tid, |msg, person| (msg, person))?;
        for (msg, person) in edges {
            if !friend_set.contains(&person) {
                continue;
            }
            let keep = match query {
                IcQuery::Ic5 | IcQuery::Ic9 => true,
                IcQuery::Ic11 => store
                    .attr(msg, lang_col, tid)
                    .and_then(|v| v.as_str().map(|s| s == "es"))
                    .unwrap_or(false),
                IcQuery::Ic6 => store
                    .attr(msg, tag_col, tid)
                    .and_then(|v| v.as_int())
                    .is_some_and(|t| t == 0),
                IcQuery::Ic3 => {
                    let country_ok = g
                        .store()
                        .vertex_type(snb.person_t)?
                        .attr(person, country_attr_col, tid)
                        .and_then(|v| v.as_int())
                        .is_some_and(|c| c == rarest_country);
                    let tag_ok = store
                        .attr(msg, tag_col, tid)
                        .and_then(|v| v.as_int())
                        .is_some_and(|t| t < 2);
                    country_ok && tag_ok
                }
            };
            if keep {
                accum.add(msg_type, msg);
            }
        }
    }

    // IC9 keeps only the 20 most recent messages.
    let candidates: VertexSet = if query == IcQuery::Ic9 {
        let mut dated: Vec<(i64, u32, VertexId)> = Vec::new();
        for (t, id) in accum.iter() {
            let store = g.store().vertex_type(t)?;
            let col = store.schema().index_of("creationDate").expect("date");
            let date = store
                .attr(id, col, tid)
                .and_then(|v| v.as_int())
                .unwrap_or(0);
            dated.push((date, t, id));
        }
        dated.sort_unstable_by(|a, b| b.0.cmp(&a.0).then(a.2.cmp(&b.2)));
        dated
            .into_iter()
            .take(20)
            .map(|(_, t, id)| (t, id))
            .collect()
    } else {
        accum.to_vertex_set()
    };
    let candidate_count = candidates.len();

    // Segments the vector stage will touch.
    let filters = g.segment_filters(&[snb.post_emb, snb.comment_emb], &candidates)?;
    let segments_touched = filters
        .keys()
        .map(|(_, seg)| *seg)
        .collect::<HashSet<_>>()
        .len();

    // Top-k vector search over the accumulated Message set.
    let vs_started = Instant::now();
    let (_topk, stats) = vector_search_with_stats(
        g,
        &[("Post", "content_emb"), ("Comment", "content_emb")],
        query_vector,
        k,
        &mut VectorSearchOptions {
            filter: Some(&candidates),
            tid: Some(tid),
            ..VectorSearchOptions::default()
        },
    )?;
    let vector_search = vs_started.elapsed();

    Ok(HybridStats {
        end_to_end: started.elapsed(),
        candidates: candidate_count,
        vector_search,
        segments_touched,
        brute_force: stats.brute_force,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::snb::SnbConfig;

    fn small_snb() -> SnbGraph {
        SnbGraph::generate(SnbConfig {
            sf: 2,
            dim: 8,
            seed: 5,
            segment_capacity: 256,
            avg_knows: 10,
        })
        .unwrap()
    }

    #[test]
    fn candidate_profile_matches_paper_ordering() {
        let snb = small_snb();
        let qv = vec![64.0f32; 8];
        let seed = snb.persons[0];
        let mut results = std::collections::HashMap::new();
        for q in IcQuery::ALL {
            let stats = run_ic(&snb, q, seed, 2, 10, &qv).unwrap();
            results.insert(q.label(), stats);
        }
        // IC5 collects the most; IC9 exactly min(20, available); IC3 tiny.
        let ic5 = results["IC5"].candidates;
        let ic11 = results["IC11"].candidates;
        let ic6 = results["IC6"].candidates;
        let ic3 = results["IC3"].candidates;
        let ic9 = results["IC9"].candidates;
        assert!(ic5 >= ic11, "IC5 {ic5} < IC11 {ic11}");
        assert!(ic11 >= ic6, "IC11 {ic11} < IC6 {ic6}");
        assert!(ic6 >= ic3, "IC6 {ic6} < IC3 {ic3}");
        assert!(ic9 <= 20);
        assert!(ic5 > 100, "IC5 should be broad, got {ic5}");
    }

    #[test]
    fn more_hops_grow_candidates() {
        let snb = small_snb();
        let qv = vec![64.0f32; 8];
        let seed = snb.persons[0];
        let h2 = run_ic(&snb, IcQuery::Ic5, seed, 2, 10, &qv).unwrap();
        let h4 = run_ic(&snb, IcQuery::Ic5, seed, 4, 10, &qv).unwrap();
        assert!(h4.candidates >= h2.candidates);
    }

    #[test]
    fn vector_search_time_is_fraction_of_end_to_end() {
        let snb = small_snb();
        let qv = vec![64.0f32; 8];
        let stats = run_ic(&snb, IcQuery::Ic5, snb.persons[0], 3, 10, &qv).unwrap();
        assert!(stats.vector_search <= stats.end_to_end);
        assert!(stats.segments_touched > 0);
    }

    #[test]
    fn wrong_dim_query_vector_fails() {
        let snb = small_snb();
        let qv = vec![0.0f32; 3];
        assert!(run_ic(&snb, IcQuery::Ic5, snb.persons[0], 2, 5, &qv).is_err());
    }
}
