//! # tv-datagen
//!
//! Synthetic datasets and workloads standing in for the paper's
//! SIFT100M/1B, Deep100M/1B, and LDBC-SNB inputs (§6.1), plus exact ground
//! truth for recall measurement:
//!
//! * [`vectors`] — deterministic clustered Gaussian vector generators with
//!   the two shapes the paper benchmarks (SIFT: 128-d non-normalized;
//!   Deep: 96-d normalized), scaled down per DESIGN.md;
//! * [`snb`] — an LDBC-SNB-like social graph (Person/Post/Comment/Country,
//!   knows/hasCreator/replyOf/isLocatedIn) with content embeddings on
//!   messages, parameterized by a scale factor;
//! * [`ic`] — the modified LDBC interactive-complex query family of §6.5
//!   (IC3/5/6/9/11 shapes with variable KNOWS repetitions) whose candidate
//!   sets feed a top-k vector search, instrumented exactly like Tables 3–4.

pub mod ic;
pub mod snb;
pub mod vectors;

pub use ic::{run_ic, HybridStats, IcQuery};
pub use snb::{SnbConfig, SnbGraph};
pub use vectors::{ground_truth, DatasetShape, VectorDataset};
