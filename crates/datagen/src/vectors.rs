//! Clustered vector generation and exact ground truth.
//!
//! SIFT and Deep are both strongly clustered — that clustering is what
//! makes HNSW's recall/ef trade-off non-trivial, so the generator samples
//! from a mixture of Gaussians: cluster centers uniform in the value range,
//! points normally distributed around a randomly chosen center. Queries
//! come from the same mixture (the realistic case: queries look like data).

use tv_common::ids::SegmentLayout;
use tv_common::metric::normalize;
use tv_common::{DistanceMetric, Neighbor, NeighborHeap, PreparedQuery, SplitMix64, VertexId};

/// Which published dataset's shape to imitate.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DatasetShape {
    /// SIFT: 128-d local descriptors, coordinates in [0, 218), L2.
    Sift,
    /// Deep: 96-d CNN descriptors, unit-normalized, L2 (≡ angular).
    Deep,
}

impl DatasetShape {
    /// Dimensionality of the shape.
    #[must_use]
    pub fn dim(self) -> usize {
        match self {
            DatasetShape::Sift => 128,
            DatasetShape::Deep => 96,
        }
    }

    /// Metric the published benchmark uses.
    #[must_use]
    pub fn metric(self) -> DistanceMetric {
        DistanceMetric::L2
    }

    /// Display name at reproduction scale (×1000 scale-down documented in
    /// DESIGN.md — 100K stands in for 100M).
    #[must_use]
    pub fn scaled_name(self) -> &'static str {
        match self {
            DatasetShape::Sift => "SIFT100K (for SIFT100M)",
            DatasetShape::Deep => "Deep100K (for Deep100M)",
        }
    }
}

/// A generated dataset: base vectors plus query vectors.
pub struct VectorDataset {
    /// Shape generated.
    pub shape: DatasetShape,
    /// Dimensionality (may be overridden below the published dim for quick
    /// tests).
    pub dim: usize,
    /// Base vectors, row id = index.
    pub base: Vec<Vec<f32>>,
    /// Query vectors.
    pub queries: Vec<Vec<f32>>,
}

impl VectorDataset {
    /// Generate `n` base and `q` query vectors of `shape` at full published
    /// dimensionality.
    #[must_use]
    pub fn generate(shape: DatasetShape, n: usize, q: usize, seed: u64) -> Self {
        Self::generate_dim(shape, shape.dim(), n, q, seed)
    }

    /// Generate with an explicit (possibly reduced) dimensionality.
    #[must_use]
    pub fn generate_dim(shape: DatasetShape, dim: usize, n: usize, q: usize, seed: u64) -> Self {
        let mut rng = SplitMix64::new(seed);
        // Many small clusters whose tails overlap heavily: with per-cluster
        // spread comparable to inter-center distance, a query's true top-k
        // straddles several clusters — the regime where HNSW's ef/recall
        // trade-off is non-trivial (as on real SIFT/Deep).
        let clusters = (n / 100).clamp(16, 65_536);
        let centers: Vec<Vec<f32>> = (0..clusters)
            .map(|_| (0..dim).map(|_| rng.next_f32() * 128.0).collect())
            .collect();
        let spread = 48.0f64;
        let sample = |rng: &mut SplitMix64| -> Vec<f32> {
            let c = &centers[rng.next_below(clusters as u64) as usize];
            let mut v: Vec<f32> = c
                .iter()
                .map(|&x| x + (rng.next_gaussian() * spread) as f32)
                .collect();
            if shape == DatasetShape::Deep {
                normalize(&mut v);
            }
            v
        };
        let base: Vec<Vec<f32>> = (0..n).map(|_| sample(&mut rng)).collect();
        let queries: Vec<Vec<f32>> = (0..q).map(|_| sample(&mut rng)).collect();
        VectorDataset {
            shape,
            dim,
            base,
            queries,
        }
    }

    /// Base vectors paired with vertex ids under `layout` (the loader
    /// format).
    #[must_use]
    pub fn with_ids(&self, layout: SegmentLayout) -> Vec<(VertexId, Vec<f32>)> {
        self.base
            .iter()
            .enumerate()
            .map(|(i, v)| (layout.vertex_id(i), v.clone()))
            .collect()
    }
}

/// Exact top-k ground truth (brute force) for every query; rows parallel to
/// `queries`, ids are dense base-row indices converted through `layout`.
#[must_use]
pub fn ground_truth(
    base: &[Vec<f32>],
    queries: &[Vec<f32>],
    k: usize,
    metric: DistanceMetric,
    layout: SegmentLayout,
) -> Vec<Vec<VertexId>> {
    queries
        .iter()
        .map(|q| {
            // One query-norm pass per query, not per base vector.
            let pq = PreparedQuery::new(metric, q);
            let mut heap = NeighborHeap::new(k);
            for (i, b) in base.iter().enumerate() {
                heap.push(Neighbor::new(layout.vertex_id(i), pq.distance(b)));
            }
            heap.into_sorted().into_iter().map(|n| n.id).collect()
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_generation() {
        let a = VectorDataset::generate_dim(DatasetShape::Sift, 16, 100, 5, 1);
        let b = VectorDataset::generate_dim(DatasetShape::Sift, 16, 100, 5, 1);
        assert_eq!(a.base, b.base);
        assert_eq!(a.queries, b.queries);
        let c = VectorDataset::generate_dim(DatasetShape::Sift, 16, 100, 5, 2);
        assert_ne!(a.base, c.base);
    }

    #[test]
    fn shapes_have_published_dims() {
        assert_eq!(DatasetShape::Sift.dim(), 128);
        assert_eq!(DatasetShape::Deep.dim(), 96);
        let d = VectorDataset::generate(DatasetShape::Deep, 10, 2, 3);
        assert_eq!(d.base[0].len(), 96);
    }

    #[test]
    fn deep_is_normalized() {
        let d = VectorDataset::generate_dim(DatasetShape::Deep, 32, 50, 0, 9);
        for v in &d.base {
            let n = tv_common::metric::norm(v);
            assert!((n - 1.0).abs() < 1e-4, "norm {n}");
        }
    }

    #[test]
    fn sift_is_not_normalized() {
        let d = VectorDataset::generate_dim(DatasetShape::Sift, 32, 50, 0, 9);
        let normalized = d
            .base
            .iter()
            .filter(|v| (tv_common::metric::norm(v) - 1.0).abs() < 1e-4)
            .count();
        assert!(normalized < d.base.len() / 2);
    }

    #[test]
    fn data_is_clustered() {
        // Mean nearest-neighbor distance must be far below mean pairwise
        // distance for clustered data.
        let d = VectorDataset::generate_dim(DatasetShape::Sift, 8, 4000, 0, 7);
        let sample: Vec<&Vec<f32>> = d.base.iter().step_by(40).collect();
        let mut nn = 0.0;
        let mut all = 0.0;
        let mut all_n = 0;
        for (i, a) in sample.iter().enumerate() {
            let mut best = f32::INFINITY;
            for (j, b) in sample.iter().enumerate() {
                if i == j {
                    continue;
                }
                let dist = tv_common::metric::l2_sq(a, b);
                best = best.min(dist);
                all += f64::from(dist);
                all_n += 1;
            }
            nn += f64::from(best);
        }
        let mean_nn = nn / sample.len() as f64;
        let mean_all = all / f64::from(all_n as u32);
        assert!(
            mean_nn < mean_all / 3.0,
            "mean_nn {mean_nn} vs mean_all {mean_all}"
        );
    }

    #[test]
    fn ground_truth_is_sorted_and_exact() {
        let d = VectorDataset::generate_dim(DatasetShape::Sift, 8, 200, 4, 11);
        let layout = SegmentLayout::with_capacity(64);
        let gt = ground_truth(&d.base, &d.queries, 5, DistanceMetric::L2, layout);
        assert_eq!(gt.len(), 4);
        for (q, truth) in d.queries.iter().zip(&gt) {
            assert_eq!(truth.len(), 5);
            let dists: Vec<f32> = truth
                .iter()
                .map(|id| {
                    let row = layout.row(*id);
                    tv_common::metric::l2_sq(q, &d.base[row])
                })
                .collect();
            assert!(dists.windows(2).all(|w| w[0] <= w[1]));
            // Exactness: top-1 really is the global min.
            let min = d
                .base
                .iter()
                .map(|b| tv_common::metric::l2_sq(q, b))
                .fold(f32::INFINITY, f32::min);
            assert!((dists[0] - min).abs() < 1e-5);
        }
    }

    #[test]
    fn with_ids_follows_layout() {
        let d = VectorDataset::generate_dim(DatasetShape::Sift, 4, 10, 0, 1);
        let layout = SegmentLayout::with_capacity(4);
        let rows = d.with_ids(layout);
        assert_eq!(rows.len(), 10);
        assert_eq!(rows[5].0, layout.vertex_id(5));
    }
}
