//! Packed-vs-pointer oracle identity suite.
//!
//! The cache-conscious layout compiler (BFS slot renumbering + CSR
//! adjacency + prefetched search loops) must be *invisible* through the
//! key-based search API: for every query, every layout produces the same
//! neighbor ids and bit-identical distances (`f32::to_bits`). The slot
//! permutation itself is unobservable — results are keyed by `VertexId`,
//! which travels with its vector.
//!
//! Covered: top-k (unfiltered, filtered, post-filter via the planner),
//! range search, post-vacuum graphs (tombstones + upserts), every
//! quantized tier, and compile→thaw→recompile cycles.

use tv_common::bitmap::Filter;
use tv_common::ids::{LocalId, SegmentId};
use tv_common::{Bitmap, DistanceMetric, GraphLayout, Neighbor, QuantSpec, SplitMix64, VertexId};
use tv_hnsw::{HnswConfig, HnswIndex, VectorIndex};

fn key(i: u32) -> VertexId {
    VertexId::new(SegmentId(0), LocalId(i))
}

fn make_vectors(n: usize, dim: usize, seed: u64) -> Vec<Vec<f32>> {
    let mut rng = SplitMix64::new(seed);
    (0..n)
        .map(|_| (0..dim).map(|_| rng.next_f32() * 10.0).collect())
        .collect()
}

fn build(n: usize, dim: usize, metric: DistanceMetric, seed: u64) -> HnswIndex {
    let mut idx = HnswIndex::new(HnswConfig::new(dim, metric));
    for (i, v) in make_vectors(n, dim, seed).into_iter().enumerate() {
        idx.insert(key(i as u32), &v).unwrap();
    }
    idx
}

/// `(key, dist bits)` fingerprint of a result list — the form in which two
/// layouts must agree exactly.
fn fingerprint(results: &[Neighbor]) -> Vec<(VertexId, u32)> {
    results.iter().map(|n| (n.id, n.dist.to_bits())).collect()
}

/// Assert that compiling `idx` into each packed layout changes no search
/// result across a battery of query shapes.
fn assert_layouts_identical(idx: &HnswIndex, dim: usize, queries: usize) {
    let qs = make_vectors(queries, dim, 0xBEEF);
    let filter_bits = Bitmap::from_indices(idx.slot_count() + 8, (0..idx.slot_count()).step_by(3));
    for layout in [GraphLayout::Packed, GraphLayout::PackedPrefetch] {
        let mut packed = idx.clone();
        packed.compile_layout(layout);
        assert_eq!(packed.layout(), layout);
        assert_eq!(packed.len(), idx.len());
        for q in &qs {
            // Unfiltered top-k.
            let (a, _) = idx.top_k(q, 10, 64, Filter::All);
            let (b, sb) = packed.top_k(q, 10, 64, Filter::All);
            assert_eq!(fingerprint(&a), fingerprint(&b), "top_k {layout}");
            assert_eq!(sb.packed_searches, 1, "served from the packed form");
            // Filtered top-k (in-traversal bitmap).
            let (a, _) = idx.top_k(q, 5, 64, Filter::Valid(&filter_bits));
            let (b, _) = packed.top_k(q, 5, 64, Filter::Valid(&filter_bits));
            assert_eq!(fingerprint(&a), fingerprint(&b), "filtered {layout}");
            // Post-filter strategy.
            let (a, _) = idx.post_filter_top_k(q, 5, 96, Filter::Valid(&filter_bits));
            let (b, _) = packed.post_filter_top_k(q, 5, 96, Filter::Valid(&filter_bits));
            assert_eq!(fingerprint(&a), fingerprint(&b), "post_filter {layout}");
            // Range search.
            let (a, _) = idx.range_search(q, 30.0, 64, Filter::All);
            let (b, _) = packed.range_search(q, 30.0, 64, Filter::All);
            assert_eq!(fingerprint(&a), fingerprint(&b), "range {layout}");
        }
        // Every stored embedding is reachable by key and identical.
        for s in 0..idx.slot_count() as u32 {
            let k = key(s);
            let va = idx.get_embedding(k);
            let vb = packed.get_embedding(k);
            match (va, vb) {
                (None, None) => {}
                (Some(va), Some(vb)) => {
                    let fa: Vec<u32> = va.iter().map(|x| x.to_bits()).collect();
                    let fb: Vec<u32> = vb.iter().map(|x| x.to_bits()).collect();
                    assert_eq!(fa, fb, "embedding {s} {layout}");
                }
                other => panic!("embedding presence diverged for {s}: {other:?}"),
            }
        }
    }
}

#[test]
fn oracle_identity_l2() {
    let idx = build(400, 16, DistanceMetric::L2, 11);
    assert_layouts_identical(&idx, 16, 12);
}

#[test]
fn oracle_identity_cosine_and_ip() {
    for metric in [DistanceMetric::Cosine, DistanceMetric::InnerProduct] {
        let idx = build(250, 12, metric, 23);
        assert_layouts_identical(&idx, 12, 8);
    }
}

#[test]
fn oracle_identity_post_vacuum() {
    // Tombstones + upserts before compiling: the repaired graph must pack
    // the same as it searches.
    let mut idx = build(350, 16, DistanceMetric::L2, 37);
    for i in (0..350u32).step_by(5) {
        idx.remove(key(i));
    }
    // Distinct vectors throughout: exact distance ties break on slot id,
    // which the BFS renumbering permutes — identity is guaranteed modulo
    // ties (see DESIGN §3i), so the oracle uses tie-free data.
    let fresh = make_vectors(40, 16, 99);
    for (i, v) in fresh.iter().enumerate() {
        idx.insert(key(1000 + i as u32), v).unwrap();
    }
    let moved = make_vectors(40, 16, 101);
    for (i, v) in moved.iter().enumerate() {
        idx.insert(key((i * 7) as u32 + 1), v).unwrap(); // in-place updates
    }
    assert_layouts_identical(&idx, 16, 10);
}

#[test]
fn oracle_identity_quantized_tiers() {
    for spec in [
        QuantSpec::sq8(),
        QuantSpec::sq8().with_keep_f32(true),
        QuantSpec::pq(4),
        QuantSpec::pq(4).with_keep_f32(true),
    ] {
        let mut idx = build(300, 16, DistanceMetric::L2, 53);
        idx.quantize(spec).unwrap();
        assert_layouts_identical(&idx, 16, 8);
    }
}

#[test]
fn oracle_identity_quantized_cosine() {
    // Cosine exercises the recon-norm caches, which the permutation must
    // carry along with the code rows.
    let mut idx = build(220, 16, DistanceMetric::Cosine, 71);
    idx.quantize(QuantSpec::sq8().with_keep_f32(true)).unwrap();
    assert_layouts_identical(&idx, 16, 8);
}

#[test]
fn compile_thaw_recompile_is_stable() {
    let idx = build(300, 16, DistanceMetric::L2, 67);
    let qs = make_vectors(6, 16, 0xFEED);
    let mut packed = idx.clone();
    packed.compile_layout(GraphLayout::PackedPrefetch);
    let baseline: Vec<_> = qs
        .iter()
        .map(|q| fingerprint(&packed.top_k(q, 10, 64, Filter::All).0))
        .collect();

    // Mutate (thaws), then recompile — results must match a plain index
    // given the same mutation, and the recompile must stay queryable.
    let extra = make_vectors(20, 16, 0x5A5A);
    let mut plain = idx.clone();
    for (i, v) in extra.iter().enumerate() {
        packed.insert(key(2000 + i as u32), v).unwrap();
        plain.insert(key(2000 + i as u32), v).unwrap();
    }
    assert_eq!(packed.layout(), GraphLayout::Pointer, "mutation thaws");
    for q in &qs {
        assert_eq!(
            fingerprint(&packed.top_k(q, 10, 64, Filter::All).0),
            fingerprint(&plain.top_k(q, 10, 64, Filter::All).0),
            "thawed graph == never-compiled graph"
        );
    }
    packed.compile_layout(GraphLayout::PackedPrefetch);
    for q in &qs {
        assert_eq!(
            fingerprint(&packed.top_k(q, 10, 64, Filter::All).0),
            fingerprint(&plain.top_k(q, 10, 64, Filter::All).0),
            "recompiled graph == never-compiled graph"
        );
    }

    // Compiling an already-compiled index only flips the prefetch policy.
    let mut twice = idx.clone();
    twice.compile_layout(GraphLayout::Packed);
    twice.compile_layout(GraphLayout::PackedPrefetch);
    assert_eq!(twice.layout(), GraphLayout::PackedPrefetch);
    for (q, want) in qs.iter().zip(&baseline) {
        let got = fingerprint(&twice.top_k(q, 10, 64, Filter::All).0);
        assert_eq!(&got, want);
    }

    // Pointer layout request thaws without changing results.
    twice.compile_layout(GraphLayout::Pointer);
    assert_eq!(twice.layout(), GraphLayout::Pointer);
}

#[test]
fn memory_accounting_reports_both_forms() {
    let idx = build(300, 16, DistanceMetric::L2, 91);
    let (pointer_before, packed_est) = idx.link_memory_bytes();
    // The pointer forest pays three layers of Vec headers plus growth
    // slack; the CSR estimate must come in well under it.
    assert!(packed_est < pointer_before);

    let mut compiled = idx.clone();
    compiled.compile_layout(GraphLayout::Packed);
    let (pointer_est, packed_exact) = compiled.link_memory_bytes();
    // Estimates are len-based where the exact numbers are capacity-based,
    // so cross-form comparisons are approximate — but the packed slabs are
    // exact and must cover every stored neighbor id.
    assert!(packed_exact >= packed_est);
    assert!(pointer_before >= pointer_est);
    // Compiling must shrink the index's total resident accounting.
    assert!(compiled.memory_bytes() < idx.memory_bytes());
}
