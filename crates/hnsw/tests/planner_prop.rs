//! Seeded property tests for the filtered-search planner.
//!
//! The core claim of the cost-based planner is behavioral, not statistical:
//! whatever strategy it picks — brute force, in-traversal filtering, or
//! post-filter with an enlarged beam — a filtered top-k must return exactly
//! the same ids as an exact scan of the valid set, at every selectivity from
//! "one in ten thousand" to "everything". These tests sweep selectivity
//! across that range (plus the degenerate filters that triggered the
//! original bugs: filters covering only deleted slots and filters disjoint
//! from the index) with a seeded RNG so failures replay deterministically.

use tv_common::bitmap::Filter;
use tv_common::ids::{LocalId, SegmentId, VertexId};
use tv_common::{Bitmap, DistanceMetric, PlannerConfig, SplitMix64};
use tv_hnsw::{HnswConfig, HnswIndex};

const DIM: usize = 12;
const N: usize = 600;

fn key(i: u32) -> VertexId {
    VertexId::new(SegmentId(0), LocalId(i))
}

fn rand_vec(rng: &mut SplitMix64) -> Vec<f32> {
    (0..DIM).map(|_| rng.next_f32() * 2.0 - 1.0).collect()
}

/// Build a seeded index with `N` points, of which every 7th is deleted.
fn build(seed: u64) -> (HnswIndex, Vec<Vec<f32>>, Vec<bool>) {
    let cfg = HnswConfig::new(DIM, DistanceMetric::L2).with_seed(seed);
    let mut index = HnswIndex::new(cfg);
    let mut rng = SplitMix64::new(seed);
    let vecs: Vec<Vec<f32>> = (0..N).map(|_| rand_vec(&mut rng)).collect();
    for (i, v) in vecs.iter().enumerate() {
        index.insert(key(i as u32), v).unwrap();
    }
    let mut live = vec![true; N];
    for i in (0..N).step_by(7) {
        assert!(index.remove(key(i as u32)));
        live[i] = false;
    }
    (index, vecs, live)
}

/// A random filter admitting each *local id* with probability `p`.
fn random_filter(rng: &mut SplitMix64, p: f64) -> Bitmap {
    let mut bm = Bitmap::new(N);
    for i in 0..N {
        if f64::from(rng.next_f32()) < p {
            bm.set(i, true);
        }
    }
    bm
}

/// Ids of the exact top-k over the valid live set, straight from the oracle.
fn oracle_ids(index: &HnswIndex, query: &[f32], k: usize, filter: Filter<'_>) -> Vec<VertexId> {
    let (r, _) = index.brute_force_top_k(query, k, filter);
    r.into_iter().map(|n| n.id).collect()
}

/// Sweep selectivity from 0.01% to 100%: every planner choice must return
/// results identical to the brute-force oracle (same ids, same order — L2
/// distances over distinct random points are untied in practice).
#[test]
fn planned_search_matches_oracle_across_selectivities() {
    let (index, _vecs, _live) = build(0x5EED_0001);
    let mut rng = SplitMix64::new(42);
    let cfg = PlannerConfig::default();
    for &p in &[0.0001, 0.001, 0.01, 0.05, 0.2, 0.5, 0.9, 1.0] {
        for trial in 0..4 {
            let bm = random_filter(&mut rng, p);
            let q = rand_vec(&mut rng);
            let k = [1, 5, 10, 25][trial % 4];
            let valid_live = index.valid_live_count(Filter::Valid(&bm));
            let (got, stats) = index.search_planned(&q, k, 32, Filter::Valid(&bm), &cfg);
            // Exactness: the planner returns min(k, valid_live) results
            // whenever any exist — a short answer proves set exhaustion.
            assert_eq!(
                got.len(),
                k.min(valid_live),
                "starved result at p={p} k={k} (valid_live={valid_live}, {stats:?})"
            );
            let want = oracle_ids(&index, &q, k, Filter::Valid(&bm));
            let got_ids: Vec<VertexId> = got.iter().map(|n| n.id).collect();
            assert_eq!(got_ids, want, "plan diverged from oracle at p={p} k={k}");
            // Exactly one routed plan per non-empty search; an empty valid
            // set routes nothing at all.
            assert_eq!(stats.plans_total(), u64::from(valid_live > 0));
        }
    }
}

/// Regression (satellite 1): a filter covering *only deleted slots* has a
/// true valid cardinality of zero. The old `bitmap.count_ones()` estimate
/// counted the dead slots, routed to the graph, and burned a traversal; the
/// fixed estimate intersects with live occupancy and plans `Empty`.
#[test]
fn filter_covering_only_deleted_slots_is_empty_and_free() {
    let (index, vecs, live) = build(7);
    let mut bm = Bitmap::new(N);
    for (i, &l) in live.iter().enumerate() {
        if !l {
            bm.set(i, true);
        }
    }
    assert!(bm.count_ones() > 0, "test needs deleted slots");
    assert_eq!(index.valid_live_count(Filter::Valid(&bm)), 0);
    let (r, stats) = index.search_planned(
        &vecs[1],
        5,
        32,
        Filter::Valid(&bm),
        &PlannerConfig::default(),
    );
    assert!(r.is_empty());
    assert_eq!(stats.distance_computations, 0, "empty plan must not score");
    assert_eq!(stats.plans_total(), 0);
}

/// Regression (satellite 1, second shape): a filter disjoint from every id
/// the index holds (e.g. the graph handed over a bitmap for a different
/// segment's population).
#[test]
fn filter_disjoint_from_index_returns_empty() {
    let cfg = HnswConfig::new(DIM, DistanceMetric::L2).with_seed(3);
    let mut index = HnswIndex::new(cfg);
    let mut rng = SplitMix64::new(3);
    for i in 0..50u32 {
        let v = rand_vec(&mut rng);
        index.insert(key(i), &v).unwrap();
    }
    // Valid ids 1000.. — none exist in the index.
    let bm = Bitmap::from_indices(2048, 1000..1100);
    let q = rand_vec(&mut rng);
    assert_eq!(index.valid_live_count(Filter::Valid(&bm)), 0);
    let (r, _) = index.search_planned(&q, 5, 32, Filter::Valid(&bm), &PlannerConfig::default());
    assert!(r.is_empty());
}

/// Regression (tentpole): under a selective filter the static-threshold
/// router starves — an in-traversal beam over a 1%-selective bitmap cannot
/// fill `k` because nearly every traversed candidate is rejected. The
/// planner must return all `min(k, valid_live)` results anyway (by routing
/// to brute force, or by escalating `ef`).
#[test]
fn selective_filter_never_starves_topk() {
    let (index, _vecs, live) = build(11);
    let mut rng = SplitMix64::new(11);
    // ~1% selective: pick 6 live ids.
    let mut chosen = Vec::new();
    while chosen.len() < 6 {
        let i = (rng.next_u64() % N as u64) as usize;
        if live[i] && !chosen.contains(&i) {
            chosen.push(i);
        }
    }
    let bm = Bitmap::from_indices(N, chosen.iter().copied());
    let q = rand_vec(&mut rng);
    let k = 10;
    let cfg = PlannerConfig::default();
    let (r, _) = index.search_planned(&q, k, 32, Filter::Valid(&bm), &cfg);
    assert_eq!(r.len(), 6, "must surface every valid point when k > valid");

    // The legacy static path (threshold 0: always in-traversal) is exactly
    // the cliff this PR fixes — with a starved beam it may return fewer.
    // The planner with a zero brute threshold must still escalate to full
    // results rather than inherit the starvation.
    let zero = PlannerConfig::default().with_brute_threshold(0);
    let (r, stats) = index.search_planned(&q, k, 4, Filter::Valid(&bm), &zero);
    assert_eq!(
        r.len(),
        6,
        "escalation must rescue a starved beam ({stats:?})"
    );
}

/// Regression (satellite 2): the naive range-search doubling loop treated a
/// starved filtered beam (`results.len() < k`) as proof of set exhaustion
/// and silently dropped in-range points. The planned range search must
/// return exactly the oracle's in-range set at every selectivity.
#[test]
fn range_search_returns_all_in_range_points_under_selective_filters() {
    let (index, _vecs, _live) = build(23);
    let mut rng = SplitMix64::new(23);
    let cfg = PlannerConfig::default();
    for &p in &[0.01, 0.05, 0.3, 1.0] {
        let bm = random_filter(&mut rng, p);
        let q = rand_vec(&mut rng);
        let valid_live = index.valid_live_count(Filter::Valid(&bm));
        // Oracle: exact scan of the whole valid set, thresholded.
        let (all, _) = index.brute_force_top_k(&q, valid_live.max(1), Filter::Valid(&bm));
        let threshold = 2.5f32;
        let mut want: Vec<VertexId> = all
            .iter()
            .filter(|n| n.dist <= threshold)
            .map(|n| n.id)
            .collect();
        want.sort_unstable();
        let (got, _) = index.range_search_planned(&q, threshold, 32, Filter::Valid(&bm), &cfg);
        let mut got_ids: Vec<VertexId> = got.iter().map(|n| n.id).collect();
        got_ids.sort_unstable();
        assert_eq!(
            got_ids, want,
            "range search dropped in-range points at p={p}"
        );
    }
}

/// Planner bookkeeping: each strategy is reachable, and the stats say which
/// one ran.
#[test]
fn planner_routes_all_three_strategies() {
    let (index, _vecs, live) = build(31);
    let mut rng = SplitMix64::new(31);
    let q = rand_vec(&mut rng);
    let cfg = PlannerConfig::default();

    // Tiny valid set → brute force.
    let first_live = (0..N).find(|&i| live[i]).unwrap();
    let bm = Bitmap::from_indices(N, [first_live]);
    let (_, stats) = index.search_planned(&q, 3, 32, Filter::Valid(&bm), &cfg);
    assert_eq!(stats.plans_brute, 1);

    // Full bitmap → post-filter (selectivity 1.0 ≥ 0.5 default cutoff).
    let full = Bitmap::full(N);
    let (_, stats) = index.search_planned(&q, 3, 32, Filter::Valid(&full), &cfg);
    assert_eq!(stats.plans_post_filter, 1);

    // Mid selectivity (~20% of live, above the brute crossover) with a
    // planner tuned so the graph path wins → in-traversal.
    let bm = random_filter(&mut rng, 0.2);
    let tuned = PlannerConfig::default()
        .with_graph_cost_factor(0.5)
        .with_post_filter_min_selectivity(0.95);
    let (_, stats) = index.search_planned(&q, 3, 32, Filter::Valid(&bm), &tuned);
    assert_eq!(stats.plans_in_traversal, 1);
}

/// Satellite 3: deleted slots and filter rejections are counted separately.
#[test]
fn stats_separate_deleted_from_filtered() {
    let (index, vecs, _live) = build(47);
    let full = Bitmap::full(N);
    // In-traversal over the full set: tombstones are skipped as deleted,
    // and nothing is a filter rejection (every live id is valid).
    let legacy = PlannerConfig::static_threshold(0);
    let (_, stats) = index.search_planned(&vecs[1], 5, 64, Filter::Valid(&full), &legacy);
    assert!(
        stats.deleted_skipped > 0,
        "tombstones must be visible: {stats:?}"
    );
    assert_eq!(
        stats.filtered_out, 0,
        "full filter rejects nothing: {stats:?}"
    );

    // Halve the filter: now real rejections appear, still separated.
    let mut half = Bitmap::new(N);
    for i in 0..N / 2 {
        half.set(i, true);
    }
    let (_, stats) = index.search_planned(&vecs[1], 5, 64, Filter::Valid(&half), &legacy);
    assert!(
        stats.filtered_out > 0,
        "expected filter rejections: {stats:?}"
    );
}
