//! Per-query cost-based routing for filtered vector search.
//!
//! TigerVector (§5.1) routes filtered search with one static valid-count
//! threshold. NaviX observes that the winning strategy depends on predicate
//! selectivity: very selective filters want an exact scan of the survivors,
//! mid-selectivity filters want in-traversal bitmap filtering (navigate
//! through invalid points, admit only valid ones), and near-unselective
//! filters want a plain unfiltered beam post-filtered afterwards — paying a
//! modest `ef` enlargement instead of a bitmap probe per candidate.
//!
//! [`choose`] is a pure function of [`PlanInputs`] so the decision is
//! deterministic, unit-testable, and cheap (no allocation, a handful of
//! float ops). The cardinality input must be the *true* valid-live count
//! (filter bitmap ∩ live occupancy, see `HnswIndex::valid_live_count`) —
//! feeding it raw bitmap cardinality was exactly the misrouting bug this
//! module replaces.

use tv_common::PlannerConfig;

/// The strategy chosen for one filtered search.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PlanChoice {
    /// No valid point exists; return empty without touching vector data.
    Empty,
    /// Exact scan over the filtered survivors.
    BruteForce,
    /// HNSW beam that navigates through invalid points but only admits
    /// filter-passing ones (the §5.1 filter-function hand-off).
    InTraversal {
        /// Beam width to search with.
        ef: usize,
    },
    /// Unfiltered HNSW beam widened to `fetch_ef`, filtered afterwards.
    PostFilter {
        /// Enlarged beam width (`ef / selectivity`, capped at `max_ef`).
        fetch_ef: usize,
    },
}

/// Everything the cost model looks at for one query.
#[derive(Debug, Clone, Copy)]
pub struct PlanInputs {
    /// True cardinality of the valid set: filter bitmap ∩ live occupancy.
    pub valid_live: usize,
    /// Live (non-tombstoned) points in the index.
    pub live_total: usize,
    /// Requested result count.
    pub k: usize,
    /// Caller's beam width.
    pub ef: usize,
}

/// Pick a strategy. Pure and total: every input maps to exactly one choice.
///
/// Cost model (unit: one distance computation):
/// * brute force costs `valid_live`;
/// * a filtered traversal costs about `graph_cost_factor × ef / s` where
///   `s = valid_live / live_total` — the beam admits one valid point per
///   `1/s` candidates scored — capped at `live_total` (a traversal can never
///   score more points than exist);
/// * post-filtering costs about `graph_cost_factor × ef / s` too, but skips
///   the per-candidate bitmap probe, so it is preferred once `s` is high
///   enough (`post_filter_min_selectivity`) that the enlarged beam stays
///   small.
#[must_use]
pub fn choose(cfg: &PlannerConfig, inputs: PlanInputs) -> PlanChoice {
    let PlanInputs {
        valid_live,
        live_total,
        k,
        ef,
    } = inputs;
    if valid_live == 0 || k == 0 {
        return PlanChoice::Empty;
    }
    if !cfg.enabled {
        // Legacy static routing, preserved for A/B comparison.
        return if valid_live < cfg.brute_force_threshold {
            PlanChoice::BruteForce
        } else {
            PlanChoice::InTraversal { ef }
        };
    }
    if valid_live <= cfg.brute_force_threshold {
        return PlanChoice::BruteForce;
    }
    let s = valid_live as f64 / live_total.max(1) as f64;
    let graph_cost = (cfg.graph_cost_factor * ef.max(k).max(1) as f64 / s.max(f64::MIN_POSITIVE))
        .min(live_total as f64);
    if (valid_live as f64) < graph_cost {
        return PlanChoice::BruteForce;
    }
    if s >= cfg.post_filter_min_selectivity {
        let fetch_ef = ((ef.max(1) as f64 / s).ceil() as usize)
            .max(ef)
            .min(cfg.max_ef.max(ef));
        return PlanChoice::PostFilter { fetch_ef };
    }
    PlanChoice::InTraversal { ef }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn inputs(valid_live: usize, live_total: usize) -> PlanInputs {
        PlanInputs {
            valid_live,
            live_total,
            k: 10,
            ef: 64,
        }
    }

    #[test]
    fn empty_valid_set_short_circuits() {
        let cfg = PlannerConfig::default();
        assert_eq!(choose(&cfg, inputs(0, 10_000)), PlanChoice::Empty);
        assert_eq!(
            choose(&PlannerConfig::static_threshold(5), inputs(0, 10_000)),
            PlanChoice::Empty
        );
        let mut z = inputs(100, 10_000);
        z.k = 0;
        assert_eq!(choose(&cfg, z), PlanChoice::Empty);
    }

    #[test]
    fn tiny_valid_sets_brute_force() {
        let cfg = PlannerConfig::default();
        assert_eq!(choose(&cfg, inputs(3, 100_000)), PlanChoice::BruteForce);
        assert_eq!(choose(&cfg, inputs(64, 100_000)), PlanChoice::BruteForce);
    }

    #[test]
    fn selective_filters_brute_force_beyond_the_static_threshold() {
        // 500 valid of 1M (0.05%): the static 64-threshold would route to
        // the graph and wade through ~2000 invalid candidates per admit;
        // the cost model scans the 500 survivors instead.
        let cfg = PlannerConfig::default();
        assert_eq!(choose(&cfg, inputs(500, 1_000_000)), PlanChoice::BruteForce);
    }

    #[test]
    fn unselective_filters_post_filter() {
        let cfg = PlannerConfig::default();
        match choose(&cfg, inputs(90_000, 100_000)) {
            PlanChoice::PostFilter { fetch_ef } => {
                assert!((64..=128).contains(&fetch_ef), "fetch_ef {fetch_ef}");
            }
            other => panic!("expected post-filter, got {other:?}"),
        }
        // No filter at all (s = 1): fetch_ef collapses to ef.
        assert_eq!(
            choose(&cfg, inputs(100_000, 100_000)),
            PlanChoice::PostFilter { fetch_ef: 64 }
        );
    }

    #[test]
    fn mid_selectivity_filters_in_traversal() {
        let cfg = PlannerConfig::default();
        assert_eq!(
            choose(&cfg, inputs(10_000, 100_000)),
            PlanChoice::InTraversal { ef: 64 }
        );
    }

    #[test]
    fn post_filter_fetch_ef_respects_max_ef() {
        let cfg = PlannerConfig::default().with_max_ef(100);
        // s = 0.5 wants fetch_ef = 128; the cap clamps it to 100.
        match choose(&cfg, inputs(50_000, 100_000)) {
            PlanChoice::PostFilter { fetch_ef } => assert_eq!(fetch_ef, 100),
            other => panic!("expected capped post-filter, got {other:?}"),
        }
    }

    #[test]
    fn disabled_planner_reproduces_static_threshold() {
        let cfg = PlannerConfig::static_threshold(64);
        assert_eq!(choose(&cfg, inputs(63, 1_000_000)), PlanChoice::BruteForce);
        // The cliff the planner fixes: 64 valid of 1M still routes to the
        // graph under the static rule.
        assert_eq!(
            choose(&cfg, inputs(64, 1_000_000)),
            PlanChoice::InTraversal { ef: 64 }
        );
        // static_threshold(0) never brute-forces.
        assert_eq!(
            choose(&PlannerConfig::static_threshold(0), inputs(1, 2)),
            PlanChoice::InTraversal { ef: 64 }
        );
    }
}
