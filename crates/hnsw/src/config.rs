//! HNSW construction and search parameters.

use serde::{Deserialize, Serialize};
use tv_common::DistanceMetric;

/// Parameters of an HNSW index.
///
/// Defaults follow the paper's experimental setup (§6.1): `M = 16`,
/// `ef_construction = 128` ("efb=128 as recommended in [SingleStore-V]").
/// Neo4j's inability to tune these parameters is exactly the limitation the
/// paper calls out, so they are all public and explicit here.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct HnswConfig {
    /// Vector dimensionality.
    pub dim: usize,
    /// Distance metric.
    pub metric: DistanceMetric,
    /// Max out-degree per node on layers above 0.
    pub m: usize,
    /// Max out-degree on layer 0 (conventionally `2 * m`).
    pub m0: usize,
    /// Beam width during construction.
    pub ef_construction: usize,
    /// Level-sampling normalization factor; `None` means the canonical
    /// `1 / ln(M)`.
    pub ml: Option<f64>,
    /// Seed for the level-sampling RNG (determinism across runs).
    pub seed: u64,
}

impl HnswConfig {
    /// Config with paper-default parameters for the given dimension/metric.
    #[must_use]
    pub fn new(dim: usize, metric: DistanceMetric) -> Self {
        HnswConfig {
            dim,
            metric,
            m: 16,
            m0: 32,
            ef_construction: 128,
            ml: None,
            seed: 0x7161_7261,
        }
    }

    /// Override `M` (also sets `m0 = 2 * m`).
    #[must_use]
    pub fn with_m(mut self, m: usize) -> Self {
        self.m = m;
        self.m0 = 2 * m;
        self
    }

    /// Override `ef_construction`.
    #[must_use]
    pub fn with_ef_construction(mut self, ef: usize) -> Self {
        self.ef_construction = ef;
        self
    }

    /// Override the RNG seed.
    #[must_use]
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Effective level-normalization factor.
    #[must_use]
    pub fn level_norm(&self) -> f64 {
        self.ml.unwrap_or_else(|| 1.0 / (self.m.max(2) as f64).ln())
    }

    /// Validate invariants; called by the index constructor.
    pub fn validate(&self) -> Result<(), String> {
        if self.dim == 0 {
            return Err("dimension must be non-zero".into());
        }
        if self.m < 2 {
            return Err("M must be at least 2".into());
        }
        if self.m0 < self.m {
            return Err("M0 must be >= M".into());
        }
        if self.ef_construction == 0 {
            return Err("ef_construction must be non-zero".into());
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_paper() {
        let c = HnswConfig::new(128, DistanceMetric::L2);
        assert_eq!(c.m, 16);
        assert_eq!(c.m0, 32);
        assert_eq!(c.ef_construction, 128);
        assert!(c.validate().is_ok());
    }

    #[test]
    fn with_m_updates_m0() {
        let c = HnswConfig::new(8, DistanceMetric::L2).with_m(8);
        assert_eq!(c.m0, 16);
    }

    #[test]
    fn level_norm_is_inverse_log_m() {
        let c = HnswConfig::new(8, DistanceMetric::L2);
        assert!((c.level_norm() - 1.0 / 16f64.ln()).abs() < 1e-12);
    }

    #[test]
    fn validate_rejects_bad_configs() {
        assert!(HnswConfig::new(0, DistanceMetric::L2).validate().is_err());
        let mut c = HnswConfig::new(4, DistanceMetric::L2);
        c.m = 1;
        assert!(c.validate().is_err());
        let mut c = HnswConfig::new(4, DistanceMetric::L2);
        c.m0 = 4;
        assert!(c.validate().is_err());
        let mut c = HnswConfig::new(4, DistanceMetric::L2);
        c.ef_construction = 0;
        assert!(c.validate().is_err());
    }
}
