//! Exact brute-force index.
//!
//! Serves three roles in the reproduction:
//! 1. the engine's fallback when the validity bitmap leaves too few points
//!    for graph search to pay off (§5.1's brute-force threshold),
//! 2. the search path over unmerged vector deltas — queries combine index
//!    snapshot results with "brute-force search results over vector deltas"
//!    (§4.3),
//! 3. ground truth for recall measurement in the benchmarks.
//!
//! Queries gather the accepted slots (a scan that touches no vector data),
//! then score them in batched kernel calls against the per-slot norm cache;
//! when the arena has no holes and no filter the whole slab is scored in a
//! single `distance_batch` call.

use crate::index::{DeltaAction, DeltaRecord, VectorIndex};
use crate::stats::SearchStats;
use std::collections::HashMap;
use tv_common::bitmap::Filter;
use tv_common::kernels;
use tv_common::{
    DistanceMetric, Neighbor, NeighborHeap, PreparedQuery, TvError, TvResult, VertexId,
};

/// A flat, exact vector index: linear scan for every query.
pub struct BruteForceIndex {
    dim: usize,
    metric: DistanceMetric,
    keys: Vec<VertexId>,
    vectors: Vec<f32>,
    /// Per-slot Euclidean norm cache (valid while the slot is occupied).
    norms: Vec<f32>,
    /// Whether each slot currently holds a live vector.
    occupied: Vec<bool>,
    slot_of: HashMap<VertexId, u32>,
    /// Tombstones (slots freed by delete/upsert; reused by later inserts).
    free: Vec<u32>,
    live: usize,
}

impl BruteForceIndex {
    /// New empty index.
    #[must_use]
    pub fn new(dim: usize, metric: DistanceMetric) -> Self {
        assert!(dim > 0, "dimension must be non-zero");
        BruteForceIndex {
            dim,
            metric,
            keys: Vec::new(),
            vectors: Vec::new(),
            norms: Vec::new(),
            occupied: Vec::new(),
            slot_of: HashMap::new(),
            free: Vec::new(),
            live: 0,
        }
    }

    /// Insert or replace the vector for `key`.
    pub fn insert(&mut self, key: VertexId, vector: &[f32]) -> TvResult<()> {
        if vector.len() != self.dim {
            return Err(TvError::DimensionMismatch {
                expected: self.dim,
                got: vector.len(),
            });
        }
        let norm = kernels::active().norm_sq(vector).sqrt();
        if let Some(&slot) = self.slot_of.get(&key) {
            let s = slot as usize * self.dim;
            self.vectors[s..s + self.dim].copy_from_slice(vector);
            self.norms[slot as usize] = norm;
            return Ok(());
        }
        let slot = if let Some(slot) = self.free.pop() {
            let s = slot as usize * self.dim;
            self.vectors[s..s + self.dim].copy_from_slice(vector);
            self.norms[slot as usize] = norm;
            self.keys[slot as usize] = key;
            self.occupied[slot as usize] = true;
            slot
        } else {
            let slot = self.keys.len() as u32;
            self.keys.push(key);
            self.vectors.extend_from_slice(vector);
            self.norms.push(norm);
            self.occupied.push(true);
            slot
        };
        self.slot_of.insert(key, slot);
        self.live += 1;
        Ok(())
    }

    /// Remove the vector for `key`; returns true if it was present.
    pub fn remove(&mut self, key: VertexId) -> bool {
        if let Some(slot) = self.slot_of.remove(&key) {
            self.occupied[slot as usize] = false;
            self.free.push(slot);
            self.live -= 1;
            true
        } else {
            false
        }
    }

    fn vec_of(&self, slot: u32) -> &[f32] {
        let s = slot as usize * self.dim;
        &self.vectors[s..s + self.dim]
    }

    /// Accepted slots in slot order (occupied and filter-passing); counts
    /// rejections into `stats`.
    fn gather_accepted(&self, filter: Filter<'_>, stats: &mut SearchStats) -> Vec<u32> {
        let mut accepted = Vec::with_capacity(self.live);
        for (slot, &key) in self.keys.iter().enumerate() {
            if !self.occupied[slot] {
                continue;
            }
            if !filter.accepts(key.local().0 as usize) {
                stats.filtered_out += 1;
                continue;
            }
            accepted.push(slot as u32);
        }
        accepted
    }
}

impl VectorIndex for BruteForceIndex {
    fn dim(&self) -> usize {
        self.dim
    }

    fn metric(&self) -> DistanceMetric {
        self.metric
    }

    fn len(&self) -> usize {
        self.live
    }

    fn get_embedding(&self, id: VertexId) -> Option<Vec<f32>> {
        self.slot_of.get(&id).map(|&s| self.vec_of(s).to_vec())
    }

    fn top_k(
        &self,
        query: &[f32],
        k: usize,
        _ef: usize,
        filter: Filter<'_>,
    ) -> (Vec<Neighbor>, SearchStats) {
        let mut stats = SearchStats {
            brute_force: true,
            ..SearchStats::default()
        };
        let pq = PreparedQuery::new(self.metric, query);
        let mut heap = NeighborHeap::new(k);
        if self.free.is_empty() && matches!(filter, Filter::All) {
            // Dense arena, no filter: score the whole slab in one call.
            let n = self.keys.len();
            let mut dists = vec![0.0f32; n];
            pq.distance_batch(&self.vectors, Some(&self.norms), &mut dists);
            stats.distance_computations += n as u64;
            for (slot, &d) in dists.iter().enumerate() {
                heap.push(Neighbor::new(self.keys[slot], d));
            }
        } else {
            let accepted = self.gather_accepted(filter, &mut stats);
            let mut dists: Vec<f32> = Vec::new();
            pq.distance_slots(&self.vectors, self.dim, &self.norms, &accepted, &mut dists);
            stats.distance_computations += accepted.len() as u64;
            for (&slot, &d) in accepted.iter().zip(&dists) {
                heap.push(Neighbor::new(self.keys[slot as usize], d));
            }
        }
        (heap.into_sorted(), stats)
    }

    fn range_search(
        &self,
        query: &[f32],
        threshold: f32,
        _ef: usize,
        filter: Filter<'_>,
    ) -> (Vec<Neighbor>, SearchStats) {
        let mut stats = SearchStats {
            brute_force: true,
            ..SearchStats::default()
        };
        let pq = PreparedQuery::new(self.metric, query);
        let accepted = self.gather_accepted(filter, &mut stats);
        let mut dists: Vec<f32> = Vec::new();
        pq.distance_slots(&self.vectors, self.dim, &self.norms, &accepted, &mut dists);
        stats.distance_computations += accepted.len() as u64;
        let mut out = Vec::new();
        for (&slot, &d) in accepted.iter().zip(&dists) {
            if d <= threshold {
                out.push(Neighbor::new(self.keys[slot as usize], d));
            }
        }
        out.sort_unstable();
        (out, stats)
    }

    fn update_items(&mut self, records: &[DeltaRecord]) -> TvResult<usize> {
        let mut applied = 0;
        for rec in records {
            match rec.action {
                DeltaAction::Upsert => self.insert(rec.id, &rec.vector)?,
                DeltaAction::Delete => {
                    self.remove(rec.id);
                }
            }
            applied += 1;
        }
        Ok(applied)
    }

    fn scan(&self) -> Box<dyn Iterator<Item = (VertexId, Vec<f32>)> + '_> {
        Box::new(
            self.slot_of
                .iter()
                .map(|(&k, &s)| (k, self.vec_of(s).to_vec())),
        )
    }

    fn memory_bytes(&self) -> usize {
        use std::mem::size_of;
        self.vectors.len() * size_of::<f32>()
            + self.norms.len() * size_of::<f32>()
            + self.keys.len() * size_of::<VertexId>()
            + self.occupied.len() * size_of::<bool>()
            + self.free.len() * size_of::<u32>()
            + self.slot_of.len() * (size_of::<VertexId>() + size_of::<u32>())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tv_common::ids::{LocalId, SegmentId};
    use tv_common::Bitmap;

    fn key(i: u32) -> VertexId {
        VertexId::new(SegmentId(0), LocalId(i))
    }

    #[test]
    fn insert_search_roundtrip() {
        let mut idx = BruteForceIndex::new(2, DistanceMetric::L2);
        idx.insert(key(0), &[0.0, 0.0]).unwrap();
        idx.insert(key(1), &[3.0, 4.0]).unwrap();
        let (r, stats) = idx.top_k(&[0.0, 0.0], 2, 0, Filter::All);
        assert_eq!(r[0].id, key(0));
        assert_eq!(r[1].id, key(1));
        assert!((r[1].dist - 25.0).abs() < 1e-6);
        assert!(stats.brute_force);
        assert_eq!(stats.distance_computations, 2);
    }

    #[test]
    fn upsert_in_place() {
        let mut idx = BruteForceIndex::new(2, DistanceMetric::L2);
        idx.insert(key(0), &[0.0, 0.0]).unwrap();
        idx.insert(key(0), &[1.0, 1.0]).unwrap();
        assert_eq!(idx.len(), 1);
        assert_eq!(idx.get_embedding(key(0)).unwrap(), &[1.0, 1.0]);
    }

    #[test]
    fn remove_and_slot_reuse() {
        let mut idx = BruteForceIndex::new(2, DistanceMetric::L2);
        idx.insert(key(0), &[0.0, 0.0]).unwrap();
        idx.insert(key(1), &[1.0, 0.0]).unwrap();
        assert!(idx.remove(key(0)));
        assert!(!idx.remove(key(0)));
        assert_eq!(idx.len(), 1);
        // New insert reuses the freed slot; results stay correct.
        idx.insert(key(2), &[2.0, 0.0]).unwrap();
        assert_eq!(idx.len(), 2);
        let (r, _) = idx.top_k(&[2.0, 0.0], 1, 0, Filter::All);
        assert_eq!(r[0].id, key(2));
        assert!(idx.get_embedding(key(0)).is_none());
    }

    #[test]
    fn holes_are_not_scored() {
        // A freed slot must not appear in results even though its vector
        // bytes are still resident in the arena.
        let mut idx = BruteForceIndex::new(1, DistanceMetric::L2);
        for i in 0..5 {
            idx.insert(key(i), &[f32::from(i as u16)]).unwrap();
        }
        idx.remove(key(0));
        let (r, stats) = idx.top_k(&[0.0], 5, 0, Filter::All);
        assert_eq!(r.len(), 4);
        assert!(r.iter().all(|n| n.id != key(0)));
        assert_eq!(stats.distance_computations, 4);
    }

    #[test]
    fn cosine_upsert_refreshes_cached_norm() {
        // If the norm cache went stale on upsert, the rescaled vector would
        // keep the old denominator and cosine distances would drift.
        let mut idx = BruteForceIndex::new(2, DistanceMetric::Cosine);
        idx.insert(key(0), &[1.0, 0.0]).unwrap();
        idx.insert(key(0), &[0.0, 100.0]).unwrap();
        let (r, _) = idx.top_k(&[0.0, 1.0], 1, 0, Filter::All);
        assert!(r[0].dist.abs() < 1e-6, "dist {}", r[0].dist);
    }

    #[test]
    fn dimension_mismatch_rejected() {
        let mut idx = BruteForceIndex::new(3, DistanceMetric::L2);
        assert!(idx.insert(key(0), &[1.0]).is_err());
    }

    #[test]
    fn filter_applies() {
        let mut idx = BruteForceIndex::new(1, DistanceMetric::L2);
        for i in 0..10 {
            idx.insert(key(i), &[f32::from(i as u16)]).unwrap();
        }
        let bm = Bitmap::from_indices(10, [5usize, 6]);
        let (r, _) = idx.top_k(&[0.0], 10, 0, Filter::Valid(&bm));
        assert_eq!(r.len(), 2);
        assert_eq!(r[0].id, key(5));
    }

    #[test]
    fn range_search_exact() {
        let mut idx = BruteForceIndex::new(1, DistanceMetric::L2);
        for i in 0..10 {
            idx.insert(key(i), &[f32::from(i as u16)]).unwrap();
        }
        let (r, _) = idx.range_search(&[0.0], 4.5, 0, Filter::All);
        // squared distances <= 4.5 => values 0,1,2
        assert_eq!(r.len(), 3);
        assert!(r.windows(2).all(|w| w[0].dist <= w[1].dist));
    }

    #[test]
    fn update_items_applies() {
        let mut idx = BruteForceIndex::new(1, DistanceMetric::L2);
        let recs = vec![
            DeltaRecord::upsert(key(0), tv_common::Tid(1), vec![1.0]),
            DeltaRecord::delete(key(0), tv_common::Tid(2)),
            DeltaRecord::upsert(key(1), tv_common::Tid(3), vec![2.0]),
        ];
        assert_eq!(idx.update_items(&recs).unwrap(), 3);
        assert_eq!(idx.len(), 1);
        assert!(idx.get_embedding(key(0)).is_none());
    }

    #[test]
    fn scan_covers_live_set() {
        let mut idx = BruteForceIndex::new(1, DistanceMetric::L2);
        for i in 0..5 {
            idx.insert(key(i), &[0.0]).unwrap();
        }
        idx.remove(key(2));
        let mut seen: Vec<u32> = idx.scan().map(|(k, _)| k.local().0).collect();
        seen.sort_unstable();
        assert_eq!(seen, vec![0, 1, 3, 4]);
    }
}
