//! Core HNSW index.
//!
//! Layout: node `slot` (a dense `u32`) owns a vector (`dim` floats in a
//! slot-major arena), an external key ([`VertexId`]), a top level, a deleted
//! flag, and per-level neighbor lists. External keys map to slots through a
//! hash map so upserts and deletes address vectors by id, as the embedding
//! service's delta records do (§4.3).
//!
//! Upserts of live keys update **in place** with neighborhood repair
//! (hnswlib's `updatePoint`): the old neighbors' lists are re-selected from
//! their two-hop pools and the moved node is re-linked — several times the
//! cost of a fresh insert, which is why incremental updating loses to a
//! full rebuild beyond a ~20% update ratio (the paper's Fig. 11 crossover).
//! Deletes are soft (tombstones stay navigable, like hnswlib); the vacuum's
//! rebuild path compacts them away.

use crate::config::HnswConfig;
use crate::select::{select_neighbors, Scored};
use crate::stats::SearchStats;
use serde::{Deserialize, Serialize};
use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::collections::HashMap;
use tv_common::bitmap::Filter;
use tv_common::kernels::{self, cosine_from_parts};
use tv_common::{
    DistanceMetric, Neighbor, NeighborHeap, PreparedQuery, SplitMix64, Tid, TvError, TvResult,
    VertexId,
};

/// Upsert/delete action flag of a vector delta (§4.3: the delta schema is
/// `Action Flag, ID, TID, Vector Value`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum DeltaAction {
    /// Insert or replace the vector for an id.
    Upsert,
    /// Remove the vector for an id.
    Delete,
}

/// One vector delta record, as accumulated in the in-memory delta store and
/// flushed to delta files by the delta-merge vacuum.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DeltaRecord {
    /// Upsert or delete.
    pub action: DeltaAction,
    /// The vertex whose vector changes.
    pub id: VertexId,
    /// Committing transaction.
    pub tid: Tid,
    /// New vector value (empty for deletes).
    pub vector: Vec<f32>,
}

impl DeltaRecord {
    /// An upsert record.
    #[must_use]
    pub fn upsert(id: VertexId, tid: Tid, vector: Vec<f32>) -> Self {
        DeltaRecord {
            action: DeltaAction::Upsert,
            id,
            tid,
            vector,
        }
    }

    /// A delete record.
    #[must_use]
    pub fn delete(id: VertexId, tid: Tid) -> Self {
        DeltaRecord {
            action: DeltaAction::Delete,
            id,
            tid,
            vector: Vec::new(),
        }
    }
}

/// The interface TigerVector requires of any vector index (§4.4). Implemented
/// by [`HnswIndex`] and [`crate::BruteForceIndex`]; quantization-based
/// indexes would slot in behind the same four functions.
pub trait VectorIndex: Send + Sync {
    /// Declared dimensionality.
    fn dim(&self) -> usize;
    /// Distance metric.
    fn metric(&self) -> DistanceMetric;
    /// Number of live (non-deleted) vectors.
    fn len(&self) -> usize;
    /// True if no live vectors are present.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }
    /// `GetEmbedding`: the stored vector for `id`, if present and live.
    fn get_embedding(&self, id: VertexId) -> Option<&[f32]>;
    /// `TopKSearch`: the `k` nearest valid neighbors of `query`. `ef` bounds
    /// the search beam (clamped up to `k`); `filter` restricts validity by
    /// *local id* within this segment.
    fn top_k(
        &self,
        query: &[f32],
        k: usize,
        ef: usize,
        filter: Filter<'_>,
    ) -> (Vec<Neighbor>, SearchStats);
    /// `RangeSearch`: all valid neighbors within `threshold` distance.
    fn range_search(
        &self,
        query: &[f32],
        threshold: f32,
        ef: usize,
        filter: Filter<'_>,
    ) -> (Vec<Neighbor>, SearchStats);
    /// `UpdateItems`: apply delta records in order; returns how many were
    /// applied.
    fn update_items(&mut self, records: &[DeltaRecord]) -> TvResult<usize>;
    /// Iterate over `(key, vector)` pairs of live entries (brute-force scans
    /// and ground-truth computation).
    fn scan(&self) -> Box<dyn Iterator<Item = (VertexId, &[f32])> + '_>;
}

/// Hierarchical Navigable Small World index over one embedding segment.
#[derive(Clone)]
pub struct HnswIndex {
    cfg: HnswConfig,
    /// Slot-major vector arena: slot `s` occupies `s*dim .. (s+1)*dim`.
    vectors: Vec<f32>,
    /// Per-slot Euclidean norm cache, maintained on insert/upsert (stored
    /// norms never change between writes, so cosine scoring pays one dot
    /// pass per candidate instead of three full passes).
    norms: Vec<f32>,
    /// External key per slot.
    keys: Vec<VertexId>,
    /// Key → live slot.
    slot_of: HashMap<VertexId, u32>,
    /// Per-slot, per-level adjacency.
    links: Vec<Vec<Vec<u32>>>,
    /// Top level per slot.
    levels: Vec<u8>,
    /// Tombstones.
    deleted: Vec<bool>,
    deleted_count: usize,
    /// Entry slot and the highest level in the graph.
    entry: Option<(u32, u8)>,
    rng: SplitMix64,
}

impl HnswIndex {
    /// New empty index. Panics on invalid config (programmer error).
    #[must_use]
    pub fn new(cfg: HnswConfig) -> Self {
        if let Err(e) = cfg.validate() {
            panic!("invalid HNSW config: {e}");
        }
        let rng = SplitMix64::new(cfg.seed);
        HnswIndex {
            cfg,
            vectors: Vec::new(),
            norms: Vec::new(),
            keys: Vec::new(),
            slot_of: HashMap::new(),
            links: Vec::new(),
            levels: Vec::new(),
            deleted: Vec::new(),
            deleted_count: 0,
            entry: None,
            rng,
        }
    }

    /// The construction configuration.
    #[must_use]
    pub fn config(&self) -> &HnswConfig {
        &self.cfg
    }

    /// Total slots, including tombstones (capacity metric for vacuum
    /// decisions).
    #[must_use]
    pub fn slot_count(&self) -> usize {
        self.keys.len()
    }

    /// Number of tombstoned slots. The vacuum compares this against
    /// [`Self::slot_count`] to decide between incremental update and full
    /// rebuild (Fig. 11's crossover).
    #[must_use]
    pub fn tombstone_count(&self) -> usize {
        self.deleted_count
    }

    /// Approximate resident bytes across **all** resident structures:
    /// vector arena, norm cache, adjacency lists (including their `Vec`
    /// headers), keys, levels, tombstone flags, and the key→slot hash map
    /// (entries plus ~30% open-addressing slack).
    #[must_use]
    pub fn memory_bytes(&self) -> usize {
        use std::mem::size_of;
        let vec_bytes = self.vectors.len() * size_of::<f32>();
        let norm_bytes = self.norms.len() * size_of::<f32>();
        let key_bytes = self.keys.len() * size_of::<VertexId>();
        let level_bytes = self.levels.len() * size_of::<u8>();
        let deleted_bytes = self.deleted.len() * size_of::<bool>();
        let link_bytes: usize = self.links.len() * size_of::<Vec<Vec<u32>>>()
            + self
                .links
                .iter()
                .map(|per_node| {
                    per_node.len() * size_of::<Vec<u32>>()
                        + per_node
                            .iter()
                            .map(|l| l.len() * size_of::<u32>())
                            .sum::<usize>()
                })
                .sum::<usize>();
        let slot_of_bytes =
            self.slot_of.len() * (size_of::<VertexId>() + size_of::<u32>()) * 13 / 10;
        vec_bytes
            + norm_bytes
            + key_bytes
            + level_bytes
            + deleted_bytes
            + link_bytes
            + slot_of_bytes
    }

    fn vec_of(&self, slot: u32) -> &[f32] {
        let d = self.cfg.dim;
        let s = slot as usize;
        &self.vectors[s * d..(s + 1) * d]
    }

    /// Distance between two stored slots, on cached norms (cosine is a
    /// single dot pass).
    fn pair_distance(&self, a: u32, b: u32) -> f32 {
        let k = kernels::active();
        let (va, vb) = (self.vec_of(a), self.vec_of(b));
        match self.cfg.metric {
            DistanceMetric::L2 => k.l2_sq(va, vb),
            DistanceMetric::InnerProduct => -k.dot(va, vb),
            DistanceMetric::Cosine => cosine_from_parts(
                k.dot(va, vb),
                self.norms[a as usize] * self.norms[b as usize],
            ),
        }
    }

    /// A stored slot prepared to act as the query (insert-time repair, link
    /// shrinking) — reuses the cached norm instead of recomputing it.
    fn slot_query(&self, slot: u32) -> PreparedQuery<'_> {
        PreparedQuery::with_norm(
            self.cfg.metric,
            self.vec_of(slot),
            self.norms[slot as usize],
        )
    }

    fn sample_level(&mut self) -> u8 {
        let ml = self.cfg.level_norm();
        let lvl = (self.rng.next_exp() * ml).floor();
        // Cap pathological samples; 32 levels covers > 10^14 points at M=16.
        lvl.min(32.0) as u8
    }

    /// Insert or replace the vector for `key`. Returns an error on dimension
    /// mismatch.
    pub fn insert(&mut self, key: VertexId, vector: &[f32]) -> TvResult<()> {
        if vector.len() != self.cfg.dim {
            return Err(TvError::DimensionMismatch {
                expected: self.cfg.dim,
                got: vector.len(),
            });
        }
        // Upsert of a live key: in-place update with neighborhood repair
        // (hnswlib's updatePoint) — the expensive path whose cost Fig. 11
        // compares against a full rebuild.
        if let Some(&old) = self.slot_of.get(&key) {
            if !self.deleted[old as usize] {
                self.update_in_place(old, vector);
                return Ok(());
            }
        }

        let slot = self.keys.len() as u32;
        let level = self.sample_level();
        self.vectors.extend_from_slice(vector);
        self.norms.push(kernels::active().norm_sq(vector).sqrt());
        self.keys.push(key);
        self.levels.push(level);
        self.deleted.push(false);
        self.links
            .push((0..=level).map(|_| Vec::new()).collect::<Vec<_>>());
        self.slot_of.insert(key, slot);

        let Some((mut cur, top)) = self.entry else {
            self.entry = Some((slot, level));
            return Ok(());
        };

        // The new node's vector plays the query role; its norm is already
        // cached, so reuse it (one norm pass for the whole insert).
        let pq = PreparedQuery::with_norm(self.cfg.metric, vector, self.norms[slot as usize]);
        // Greedy descent through layers above the new node's level.
        let mut stats = SearchStats::default();
        for lvl in ((level + 1)..=top).rev() {
            cur = self.greedy_closest(&pq, cur, lvl, &mut stats);
        }

        // Connect on each layer from min(level, top) down to 0.
        let mut entry_points = vec![cur];
        for lvl in (0..=level.min(top)).rev() {
            let found = self.search_layer(
                &pq,
                &entry_points,
                self.cfg.ef_construction,
                lvl,
                &mut stats,
            );
            let max_deg = if lvl == 0 { self.cfg.m0 } else { self.cfg.m };
            let chosen =
                select_neighbors(&found, self.cfg.m, true, |a, b| self.pair_distance(a, b));
            for &nb in &chosen {
                self.links[slot as usize][lvl as usize].push(nb);
                self.links[nb as usize][lvl as usize].push(slot);
                self.shrink_links(nb, lvl, max_deg);
            }
            entry_points = found.iter().map(|&(_, s)| s).collect();
            if entry_points.is_empty() {
                entry_points = vec![cur];
            }
        }

        if level > top {
            self.entry = Some((slot, level));
        }
        Ok(())
    }

    /// Replace a live node's vector and repair the surrounding graph:
    /// re-select the neighbor lists of the node's old neighbors from their
    /// two-hop candidate pool (the moved node invalidated their diversity
    /// choices), then re-link the node itself at every level. This costs
    /// several times a fresh insert — which is exactly why incremental
    /// updating loses to rebuilding beyond a ~20% update ratio (Fig. 11).
    fn update_in_place(&mut self, slot: u32, vector: &[f32]) {
        let d = self.cfg.dim;
        self.vectors[slot as usize * d..(slot as usize + 1) * d].copy_from_slice(vector);
        self.norms[slot as usize] = kernels::active().norm_sq(vector).sqrt();
        let Some((entry, top)) = self.entry else {
            return;
        };
        let level = self.levels[slot as usize];

        // Phase 1: repair old neighbors' lists from their 2-hop pools.
        let mut dists: Vec<f32> = Vec::new();
        for lvl in 0..=level.min(top) {
            let old_neighbors = self.links[slot as usize][lvl as usize].clone();
            if old_neighbors.is_empty() {
                continue;
            }
            let max_deg = if lvl == 0 { self.cfg.m0 } else { self.cfg.m };
            for &nb in &old_neighbors {
                // Candidate pool for this neighbor: its own links plus the
                // moved node's old neighborhood (hnswlib's repair set).
                let mut pool: Vec<u32> = self.links[nb as usize][lvl as usize].clone();
                pool.extend(old_neighbors.iter().copied());
                pool.sort_unstable();
                pool.dedup();
                pool.retain(|&c| c != nb);
                // Batch-score the whole pool against nb in one kernel call.
                self.slot_query(nb).distance_slots(
                    &self.vectors,
                    d,
                    &self.norms,
                    &pool,
                    &mut dists,
                );
                let mut scored: Vec<Scored> =
                    pool.iter().zip(&dists).map(|(&c, &dc)| (dc, c)).collect();
                scored.sort_unstable_by(|a, b| a.0.total_cmp(&b.0));
                let kept =
                    select_neighbors(&scored, max_deg, true, |a, b| self.pair_distance(a, b));
                self.links[nb as usize][lvl as usize] = kept;
            }
        }

        // Phase 2: re-link the moved node like a fresh insert.
        let pq = PreparedQuery::with_norm(self.cfg.metric, vector, self.norms[slot as usize]);
        let mut stats = SearchStats::default();
        let mut cur = entry;
        for lvl in ((level + 1)..=top).rev() {
            cur = self.greedy_closest(&pq, cur, lvl, &mut stats);
        }
        let mut entry_points = vec![cur];
        for lvl in (0..=level.min(top)).rev() {
            let mut found = self.search_layer(
                &pq,
                &entry_points,
                self.cfg.ef_construction,
                lvl,
                &mut stats,
            );
            found.retain(|&(_, s)| s != slot);
            let max_deg = if lvl == 0 { self.cfg.m0 } else { self.cfg.m };
            let chosen =
                select_neighbors(&found, self.cfg.m, true, |a, b| self.pair_distance(a, b));
            self.links[slot as usize][lvl as usize] = chosen.clone();
            for &nb in &chosen {
                if !self.links[nb as usize][lvl as usize].contains(&slot) {
                    self.links[nb as usize][lvl as usize].push(slot);
                    self.shrink_links(nb, lvl, max_deg);
                }
            }
            entry_points = found.iter().map(|&(_, s)| s).collect();
            if entry_points.is_empty() {
                entry_points = vec![cur];
            }
        }
    }

    /// Mark the vector for `key` deleted. Returns true if a live entry was
    /// removed.
    pub fn remove(&mut self, key: VertexId) -> bool {
        if let Some(&slot) = self.slot_of.get(&key) {
            if !self.deleted[slot as usize] {
                self.deleted[slot as usize] = true;
                self.deleted_count += 1;
                self.slot_of.remove(&key);
                return true;
            }
        }
        false
    }

    /// Prune a node's neighbor list back to `max_deg` using the diversity
    /// heuristic.
    fn shrink_links(&mut self, node: u32, lvl: u8, max_deg: usize) {
        let list = &self.links[node as usize][lvl as usize];
        if list.len() <= max_deg {
            return;
        }
        // Batch-score the full neighbor list against the node in one call.
        let mut dists: Vec<f32> = Vec::new();
        self.slot_query(node).distance_slots(
            &self.vectors,
            self.cfg.dim,
            &self.norms,
            list,
            &mut dists,
        );
        let mut scored: Vec<Scored> = list.iter().zip(&dists).map(|(&nb, &dn)| (dn, nb)).collect();
        scored.sort_unstable_by(|a, b| a.0.total_cmp(&b.0));
        let kept = select_neighbors(&scored, max_deg, true, |a, b| self.pair_distance(a, b));
        self.links[node as usize][lvl as usize] = kept;
    }

    /// Greedy walk to the locally-closest node on one layer (the ef=1 upper-
    /// layer descent of the HNSW search). Each hop scores the node's whole
    /// neighbor list in one batched kernel call.
    fn greedy_closest(
        &self,
        pq: &PreparedQuery<'_>,
        start: u32,
        lvl: u8,
        stats: &mut SearchStats,
    ) -> u32 {
        let d = self.cfg.dim;
        let mut dists: Vec<f32> = Vec::new();
        let mut cur = start;
        let mut cur_dist = pq.distance_cached(self.vec_of(cur), self.norms[cur as usize]);
        stats.distance_computations += 1;
        loop {
            let nbs = &self.links[cur as usize][lvl as usize];
            pq.distance_slots(&self.vectors, d, &self.norms, nbs, &mut dists);
            stats.distance_computations += nbs.len() as u64;
            stats.hops += nbs.len() as u64;
            let mut improved = false;
            for (&nb, &nd) in nbs.iter().zip(&dists) {
                if nd < cur_dist {
                    cur = nb;
                    cur_dist = nd;
                    improved = true;
                }
            }
            if !improved {
                return cur;
            }
        }
    }

    /// Beam search on one layer. Returns up to `ef` candidates sorted by
    /// ascending distance. Deleted nodes participate in navigation and in
    /// the returned candidate list (construction links through them), so
    /// callers that produce user-visible results must filter afterwards.
    fn search_layer(
        &self,
        pq: &PreparedQuery<'_>,
        entries: &[u32],
        ef: usize,
        lvl: u8,
        stats: &mut SearchStats,
    ) -> Vec<Scored> {
        let n = self.keys.len();
        let dim = self.cfg.dim;
        let mut visited = vec![false; n];
        // Min-heap of frontier candidates; max-heap (via NeighborHeap-like
        // bound) of the best `ef` found.
        let mut frontier: BinaryHeap<Reverse<(OrdF32, u32)>> = BinaryHeap::new();
        let mut best: BinaryHeap<(OrdF32, u32)> = BinaryHeap::new();
        // Scratch for batched scoring: the unvisited neighbors of one node,
        // scored in a single kernel call. Distances don't depend on heap
        // state, so admission order — and therefore results — match the
        // one-at-a-time loop exactly.
        let mut batch: Vec<u32> = Vec::new();
        let mut dists: Vec<f32> = Vec::new();

        for &e in entries {
            if !visited[e as usize] {
                visited[e as usize] = true;
                batch.push(e);
            }
        }
        pq.distance_slots(&self.vectors, dim, &self.norms, &batch, &mut dists);
        stats.distance_computations += batch.len() as u64;
        for (&e, &de) in batch.iter().zip(&dists) {
            frontier.push(Reverse((OrdF32(de), e)));
            best.push((OrdF32(de), e));
            if best.len() > ef {
                best.pop();
            }
        }

        while let Some(Reverse((OrdF32(d), node))) = frontier.pop() {
            let bound = best.peek().map_or(f32::INFINITY, |&(OrdF32(b), _)| b);
            if d > bound && best.len() >= ef {
                break;
            }
            batch.clear();
            for &nb in &self.links[node as usize][lvl as usize] {
                if !visited[nb as usize] {
                    visited[nb as usize] = true;
                    batch.push(nb);
                }
            }
            pq.distance_slots(&self.vectors, dim, &self.norms, &batch, &mut dists);
            stats.hops += batch.len() as u64;
            stats.distance_computations += batch.len() as u64;
            for (&nb, &nd) in batch.iter().zip(&dists) {
                let bound = best.peek().map_or(f32::INFINITY, |&(OrdF32(b), _)| b);
                if nd < bound || best.len() < ef {
                    frontier.push(Reverse((OrdF32(nd), nb)));
                    best.push((OrdF32(nd), nb));
                    if best.len() > ef {
                        best.pop();
                    }
                }
            }
        }

        let mut out: Vec<Scored> = best.into_iter().map(|(OrdF32(d), s)| (d, s)).collect();
        out.sort_unstable_by(|a, b| a.0.total_cmp(&b.0).then(a.1.cmp(&b.1)));
        out
    }

    /// Layer-0 beam search that only admits *valid* (live + filter-passing)
    /// points into the result set, while still navigating through invalid
    /// ones — the filter-function semantics the paper passes to the index so
    /// "a single call to the vector index returns the valid top-k" (§5.1).
    fn search_layer0_filtered(
        &self,
        pq: &PreparedQuery<'_>,
        entries: &[u32],
        ef: usize,
        filter: Filter<'_>,
        stats: &mut SearchStats,
    ) -> Vec<Scored> {
        let n = self.keys.len();
        let dim = self.cfg.dim;
        let mut visited = vec![false; n];
        let mut frontier: BinaryHeap<Reverse<(OrdF32, u32)>> = BinaryHeap::new();
        let mut best: BinaryHeap<(OrdF32, u32)> = BinaryHeap::new();
        let mut batch: Vec<u32> = Vec::new();
        let mut dists: Vec<f32> = Vec::new();

        let accepts = |slot: u32| -> bool {
            !self.deleted[slot as usize]
                && filter.accepts(self.keys[slot as usize].local().0 as usize)
        };

        for &e in entries {
            if !visited[e as usize] {
                visited[e as usize] = true;
                batch.push(e);
            }
        }
        pq.distance_slots(&self.vectors, dim, &self.norms, &batch, &mut dists);
        stats.distance_computations += batch.len() as u64;
        for (&e, &de) in batch.iter().zip(&dists) {
            frontier.push(Reverse((OrdF32(de), e)));
            if accepts(e) {
                best.push((OrdF32(de), e));
                if best.len() > ef {
                    best.pop();
                }
            } else {
                stats.filtered_out += 1;
            }
        }

        while let Some(Reverse((OrdF32(d), node))) = frontier.pop() {
            let bound = best.peek().map_or(f32::INFINITY, |&(OrdF32(b), _)| b);
            if d > bound && best.len() >= ef {
                break;
            }
            batch.clear();
            for &nb in &self.links[node as usize][0] {
                if !visited[nb as usize] {
                    visited[nb as usize] = true;
                    batch.push(nb);
                }
            }
            pq.distance_slots(&self.vectors, dim, &self.norms, &batch, &mut dists);
            stats.hops += batch.len() as u64;
            stats.distance_computations += batch.len() as u64;
            for (&nb, &nd) in batch.iter().zip(&dists) {
                let bound = best.peek().map_or(f32::INFINITY, |&(OrdF32(b), _)| b);
                if nd < bound || best.len() < ef {
                    frontier.push(Reverse((OrdF32(nd), nb)));
                    if accepts(nb) {
                        best.push((OrdF32(nd), nb));
                        if best.len() > ef {
                            best.pop();
                        }
                    } else {
                        stats.filtered_out += 1;
                    }
                }
            }
        }

        let mut out: Vec<Scored> = best.into_iter().map(|(OrdF32(d), s)| (d, s)).collect();
        out.sort_unstable_by(|a, b| a.0.total_cmp(&b.0).then(a.1.cmp(&b.1)));
        out
    }

    /// Exact linear scan over live, filter-passing entries — the planner's
    /// fallback when too few points are valid for graph search to pay off.
    pub fn brute_force_top_k(
        &self,
        query: &[f32],
        k: usize,
        filter: Filter<'_>,
    ) -> (Vec<Neighbor>, SearchStats) {
        let mut stats = SearchStats {
            brute_force: true,
            ..SearchStats::default()
        };
        let mut heap = NeighborHeap::new(k);
        // Gather accepted slots first, then score the whole set in batched
        // kernel calls — the filter pass touches no vector data.
        let mut accepted: Vec<u32> = Vec::new();
        for (slot, &key) in self.keys.iter().enumerate() {
            if self.deleted[slot] {
                continue;
            }
            if !filter.accepts(key.local().0 as usize) {
                stats.filtered_out += 1;
                continue;
            }
            accepted.push(slot as u32);
        }
        let pq = PreparedQuery::new(self.cfg.metric, query);
        let mut dists: Vec<f32> = Vec::new();
        pq.distance_slots(
            &self.vectors,
            self.cfg.dim,
            &self.norms,
            &accepted,
            &mut dists,
        );
        stats.distance_computations += accepted.len() as u64;
        for (&slot, &d) in accepted.iter().zip(&dists) {
            heap.push(Neighbor::new(self.keys[slot as usize], d));
        }
        (heap.into_sorted(), stats)
    }

    /// Fraction of live points among all slots; used with the valid-point
    /// threshold to pick brute force vs. index search.
    #[must_use]
    pub fn live_fraction(&self) -> f64 {
        if self.keys.is_empty() {
            1.0
        } else {
            1.0 - self.deleted_count as f64 / self.keys.len() as f64
        }
    }
}

impl VectorIndex for HnswIndex {
    fn dim(&self) -> usize {
        self.cfg.dim
    }

    fn metric(&self) -> DistanceMetric {
        self.cfg.metric
    }

    fn len(&self) -> usize {
        self.keys.len() - self.deleted_count
    }

    fn get_embedding(&self, id: VertexId) -> Option<&[f32]> {
        let &slot = self.slot_of.get(&id)?;
        if self.deleted[slot as usize] {
            None
        } else {
            Some(self.vec_of(slot))
        }
    }

    fn top_k(
        &self,
        query: &[f32],
        k: usize,
        ef: usize,
        filter: Filter<'_>,
    ) -> (Vec<Neighbor>, SearchStats) {
        let mut stats = SearchStats::default();
        if k == 0 || query.len() != self.cfg.dim {
            return (Vec::new(), stats);
        }
        let Some((entry, top)) = self.entry else {
            return (Vec::new(), stats);
        };
        let ef = ef.max(k);
        // One norm pass for the whole search (cosine); every candidate after
        // this scores against cached per-slot norms.
        let pq = PreparedQuery::new(self.cfg.metric, query);
        let mut cur = entry;
        for lvl in (1..=top).rev() {
            cur = self.greedy_closest(&pq, cur, lvl, &mut stats);
        }
        let found = self.search_layer0_filtered(&pq, &[cur], ef, filter, &mut stats);
        let out = found
            .into_iter()
            .take(k)
            .map(|(d, s)| Neighbor::new(self.keys[s as usize], d))
            .collect();
        (out, stats)
    }

    fn range_search(
        &self,
        query: &[f32],
        threshold: f32,
        ef: usize,
        filter: Filter<'_>,
    ) -> (Vec<Neighbor>, SearchStats) {
        // DiskANN-style adaptation (§4.4): repeat TopKSearch with doubling k
        // until the threshold is smaller than the median returned distance
        // (i.e. at least half the beam already lies outside the range) or
        // the whole valid set has been fetched.
        let mut stats = SearchStats::default();
        let live = match filter {
            Filter::All => self.len(),
            Filter::Valid(b) => self.len().min(b.count_ones()),
        };
        let mut k = 16usize;
        loop {
            let (results, s) = self.top_k(query, k, ef.max(k), filter);
            stats.merge(&s);
            let exhausted = results.len() < k || results.len() >= live;
            let median = if results.is_empty() {
                f32::INFINITY
            } else {
                results[results.len() / 2].dist
            };
            if exhausted || threshold < median {
                let out = results
                    .into_iter()
                    .filter(|n| n.dist <= threshold)
                    .collect();
                return (out, stats);
            }
            k *= 2;
        }
    }

    fn update_items(&mut self, records: &[DeltaRecord]) -> TvResult<usize> {
        let mut applied = 0;
        for rec in records {
            match rec.action {
                DeltaAction::Upsert => {
                    self.insert(rec.id, &rec.vector)?;
                    applied += 1;
                }
                DeltaAction::Delete => {
                    self.remove(rec.id);
                    applied += 1;
                }
            }
        }
        Ok(applied)
    }

    fn scan(&self) -> Box<dyn Iterator<Item = (VertexId, &[f32])> + '_> {
        Box::new(
            self.keys
                .iter()
                .enumerate()
                .filter(move |&(slot, key)| {
                    !self.deleted[slot] && self.slot_of.get(key) == Some(&(slot as u32))
                })
                .map(move |(slot, &key)| (key, self.vec_of(slot as u32))),
        )
    }
}

/// Total-ordered f32 wrapper for heap use (NaN sorts greatest).
#[derive(Debug, Clone, Copy, PartialEq)]
pub(crate) struct OrdF32(pub f32);

impl Eq for OrdF32 {}
impl PartialOrd for OrdF32 {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for OrdF32 {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.0.total_cmp(&other.0)
    }
}

// Internal accessors for snapshot serialization.
impl HnswIndex {
    #[allow(clippy::type_complexity)]
    pub(crate) fn parts(
        &self,
    ) -> (
        &HnswConfig,
        &[f32],
        &[VertexId],
        &[Vec<Vec<u32>>],
        &[u8],
        &[bool],
        Option<(u32, u8)>,
    ) {
        (
            &self.cfg,
            &self.vectors,
            &self.keys,
            &self.links,
            &self.levels,
            &self.deleted,
            self.entry,
        )
    }

    pub(crate) fn from_parts(
        cfg: HnswConfig,
        vectors: Vec<f32>,
        keys: Vec<VertexId>,
        links: Vec<Vec<Vec<u32>>>,
        levels: Vec<u8>,
        deleted: Vec<bool>,
        entry: Option<(u32, u8)>,
    ) -> TvResult<Self> {
        let n = keys.len();
        if vectors.len() != n * cfg.dim
            || links.len() != n
            || levels.len() != n
            || deleted.len() != n
        {
            return Err(TvError::Storage("inconsistent snapshot parts".into()));
        }
        let mut slot_of = HashMap::with_capacity(n);
        let mut deleted_count = 0;
        for (slot, (&key, &dead)) in keys.iter().zip(&deleted).enumerate() {
            if dead {
                deleted_count += 1;
            } else {
                slot_of.insert(key, slot as u32);
            }
        }
        let rng = SplitMix64::new(cfg.seed ^ n as u64);
        // The snapshot format carries no norms; rebuild the cache in one
        // pass over the arena (cheaper than persisting and keeps old
        // snapshots readable).
        let k = kernels::active();
        let norms = (0..n)
            .map(|s| k.norm_sq(&vectors[s * cfg.dim..(s + 1) * cfg.dim]).sqrt())
            .collect();
        Ok(HnswIndex {
            cfg,
            vectors,
            norms,
            keys,
            slot_of,
            links,
            levels,
            deleted,
            deleted_count,
            entry,
            rng,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tv_common::ids::{LocalId, SegmentId};
    use tv_common::Bitmap;

    fn key(i: u32) -> VertexId {
        VertexId::new(SegmentId(0), LocalId(i))
    }

    /// Deterministic clustered test vectors.
    fn make_vectors(n: usize, dim: usize, seed: u64) -> Vec<Vec<f32>> {
        let mut rng = SplitMix64::new(seed);
        (0..n)
            .map(|_| (0..dim).map(|_| rng.next_f32() * 10.0).collect())
            .collect()
    }

    fn build_index(vecs: &[Vec<f32>]) -> HnswIndex {
        let mut idx = HnswIndex::new(HnswConfig::new(vecs[0].len(), DistanceMetric::L2));
        for (i, v) in vecs.iter().enumerate() {
            idx.insert(key(i as u32), v).unwrap();
        }
        idx
    }

    fn exact_top_k(vecs: &[Vec<f32>], q: &[f32], k: usize) -> Vec<u32> {
        let mut scored: Vec<(f32, u32)> = vecs
            .iter()
            .enumerate()
            .map(|(i, v)| (tv_common::metric::l2_sq(q, v), i as u32))
            .collect();
        scored.sort_by(|a, b| a.0.total_cmp(&b.0));
        scored.into_iter().take(k).map(|(_, i)| i).collect()
    }

    #[test]
    fn empty_index_returns_nothing() {
        let idx = HnswIndex::new(HnswConfig::new(4, DistanceMetric::L2));
        let (r, _) = idx.top_k(&[0.0; 4], 5, 50, Filter::All);
        assert!(r.is_empty());
        assert_eq!(idx.len(), 0);
        assert!(idx.is_empty());
    }

    #[test]
    fn single_point() {
        let mut idx = HnswIndex::new(HnswConfig::new(2, DistanceMetric::L2));
        idx.insert(key(0), &[1.0, 2.0]).unwrap();
        let (r, _) = idx.top_k(&[1.0, 2.0], 1, 10, Filter::All);
        assert_eq!(r.len(), 1);
        assert_eq!(r[0].id, key(0));
        assert!(r[0].dist < 1e-6);
    }

    #[test]
    fn insert_rejects_wrong_dimension() {
        let mut idx = HnswIndex::new(HnswConfig::new(4, DistanceMetric::L2));
        let err = idx.insert(key(0), &[1.0, 2.0]).unwrap_err();
        assert!(matches!(
            err,
            TvError::DimensionMismatch {
                expected: 4,
                got: 2
            }
        ));
    }

    #[test]
    fn recall_at_10_is_high() {
        let vecs = make_vectors(2000, 16, 7);
        let idx = build_index(&vecs);
        let queries = make_vectors(20, 16, 99);
        let mut hits = 0;
        let mut total = 0;
        for q in &queries {
            let exact = exact_top_k(&vecs, q, 10);
            let (approx, _) = idx.top_k(q, 10, 100, Filter::All);
            let got: Vec<u32> = approx.iter().map(|n| n.id.local().0).collect();
            total += exact.len();
            hits += exact.iter().filter(|e| got.contains(e)).count();
        }
        let recall = hits as f64 / total as f64;
        assert!(recall > 0.9, "recall {recall}");
    }

    #[test]
    fn higher_ef_does_not_reduce_quality() {
        let vecs = make_vectors(1000, 8, 3);
        let idx = build_index(&vecs);
        let q = &vecs[123];
        let (lo, _) = idx.top_k(q, 10, 10, Filter::All);
        let (hi, _) = idx.top_k(q, 10, 200, Filter::All);
        // Sum of distances with larger beam must be <= with smaller beam.
        let sum = |v: &Vec<Neighbor>| v.iter().map(|n| n.dist as f64).sum::<f64>();
        assert!(sum(&hi) <= sum(&lo) + 1e-6);
    }

    #[test]
    fn delete_excludes_from_results() {
        let vecs = make_vectors(200, 8, 5);
        let mut idx = build_index(&vecs);
        let q = vecs[0].clone();
        let (before, _) = idx.top_k(&q, 1, 50, Filter::All);
        assert_eq!(before[0].id, key(0));
        assert!(idx.remove(key(0)));
        let (after, _) = idx.top_k(&q, 1, 50, Filter::All);
        assert_ne!(after[0].id, key(0));
        assert_eq!(idx.len(), 199);
        assert!(idx.get_embedding(key(0)).is_none());
        // Double-remove reports false.
        assert!(!idx.remove(key(0)));
    }

    #[test]
    fn upsert_replaces_vector() {
        let vecs = make_vectors(100, 4, 11);
        let mut idx = build_index(&vecs);
        let newv = vec![100.0, 100.0, 100.0, 100.0];
        idx.insert(key(5), &newv).unwrap();
        assert_eq!(idx.get_embedding(key(5)).unwrap(), newv.as_slice());
        assert_eq!(idx.len(), 100); // still 100 live
                                    // In-place update: no tombstone, no slot growth.
        assert_eq!(idx.tombstone_count(), 0);
        assert_eq!(idx.slot_count(), 100);
        let (r, _) = idx.top_k(&newv, 1, 50, Filter::All);
        assert_eq!(r[0].id, key(5));
    }

    #[test]
    fn filtered_search_respects_bitmap() {
        let vecs = make_vectors(500, 8, 13);
        let idx = build_index(&vecs);
        // Only even local ids valid.
        let bm = Bitmap::from_indices(500, (0..500).step_by(2));
        let (r, stats) = idx.top_k(&vecs[3], 10, 100, Filter::Valid(&bm));
        assert_eq!(r.len(), 10);
        assert!(r.iter().all(|n| n.id.local().0 % 2 == 0));
        assert!(stats.filtered_out > 0);
    }

    #[test]
    fn filtered_search_with_tiny_valid_set_finds_them() {
        let vecs = make_vectors(500, 8, 17);
        let idx = build_index(&vecs);
        let bm = Bitmap::from_indices(500, [42usize, 99]);
        let (r, _) = idx.top_k(&vecs[0], 10, 400, Filter::Valid(&bm));
        // May find fewer than requested, but only valid ones.
        assert!(!r.is_empty());
        assert!(r
            .iter()
            .all(|n| n.id.local().0 == 42 || n.id.local().0 == 99));
    }

    #[test]
    fn brute_force_matches_exact() {
        let vecs = make_vectors(300, 8, 19);
        let idx = build_index(&vecs);
        let q = &vecs[7];
        let exact = exact_top_k(&vecs, q, 5);
        let (bf, stats) = idx.brute_force_top_k(q, 5, Filter::All);
        let got: Vec<u32> = bf.iter().map(|n| n.id.local().0).collect();
        assert_eq!(got, exact);
        assert!(stats.brute_force);
        assert_eq!(stats.distance_computations, 300);
    }

    #[test]
    fn range_search_returns_only_within_threshold() {
        let vecs = make_vectors(400, 8, 23);
        let idx = build_index(&vecs);
        let q = &vecs[11];
        let threshold = 30.0f32;
        let (r, _) = idx.range_search(q, threshold, 100, Filter::All);
        assert!(r.iter().all(|n| n.dist <= threshold));
        // Compare against exact count (allow small ANN slack).
        let exact = vecs
            .iter()
            .filter(|v| tv_common::metric::l2_sq(q, v) <= threshold)
            .count();
        assert!(
            r.len() as f64 >= exact as f64 * 0.8,
            "range recall too low: {} vs {exact}",
            r.len()
        );
    }

    #[test]
    fn range_search_zero_threshold_finds_self() {
        let vecs = make_vectors(100, 8, 29);
        let idx = build_index(&vecs);
        let (r, _) = idx.range_search(&vecs[5], 1e-9, 50, Filter::All);
        assert!(r.iter().any(|n| n.id == key(5)));
    }

    #[test]
    fn update_items_applies_in_order() {
        let mut idx = HnswIndex::new(HnswConfig::new(2, DistanceMetric::L2));
        let recs = vec![
            DeltaRecord::upsert(key(0), Tid(1), vec![0.0, 0.0]),
            DeltaRecord::upsert(key(1), Tid(2), vec![1.0, 1.0]),
            DeltaRecord::upsert(key(0), Tid(3), vec![5.0, 5.0]), // update
            DeltaRecord::delete(key(1), Tid(4)),
        ];
        let n = idx.update_items(&recs).unwrap();
        assert_eq!(n, 4);
        assert_eq!(idx.len(), 1);
        assert_eq!(idx.get_embedding(key(0)).unwrap(), &[5.0, 5.0]);
        assert!(idx.get_embedding(key(1)).is_none());
    }

    #[test]
    fn scan_yields_live_entries_once() {
        let vecs = make_vectors(50, 4, 31);
        let mut idx = build_index(&vecs);
        idx.insert(key(3), &[9.0, 9.0, 9.0, 9.0]).unwrap(); // upsert
        idx.remove(key(7));
        let entries: Vec<VertexId> = idx.scan().map(|(k, _)| k).collect();
        assert_eq!(entries.len(), 49);
        let mut uniq = entries.clone();
        uniq.sort_unstable();
        uniq.dedup();
        assert_eq!(uniq.len(), 49);
        assert!(!entries.contains(&key(7)));
    }

    #[test]
    fn stats_count_work() {
        let vecs = make_vectors(500, 8, 37);
        let idx = build_index(&vecs);
        let (_, stats) = idx.top_k(&vecs[0], 10, 50, Filter::All);
        assert!(stats.distance_computations > 10);
        assert!(stats.hops > 0);
        assert!(!stats.brute_force);
    }

    #[test]
    fn deterministic_given_seed() {
        let vecs = make_vectors(300, 8, 41);
        let a = build_index(&vecs);
        let b = build_index(&vecs);
        let (ra, _) = a.top_k(&vecs[9], 10, 60, Filter::All);
        let (rb, _) = b.top_k(&vecs[9], 10, 60, Filter::All);
        assert_eq!(
            ra.iter().map(|n| n.id).collect::<Vec<_>>(),
            rb.iter().map(|n| n.id).collect::<Vec<_>>()
        );
    }

    #[test]
    fn cosine_metric_search() {
        let mut idx = HnswIndex::new(HnswConfig::new(3, DistanceMetric::Cosine));
        idx.insert(key(0), &[1.0, 0.0, 0.0]).unwrap();
        idx.insert(key(1), &[0.0, 1.0, 0.0]).unwrap();
        idx.insert(key(2), &[0.9, 0.1, 0.0]).unwrap();
        let (r, _) = idx.top_k(&[1.0, 0.0, 0.0], 2, 10, Filter::All);
        assert_eq!(r[0].id, key(0));
        assert_eq!(r[1].id, key(2));
    }

    #[test]
    fn memory_bytes_grows_with_content() {
        let vecs = make_vectors(100, 16, 43);
        let idx = build_index(&vecs);
        assert!(idx.memory_bytes() >= 100 * 16 * 4);
    }

    #[test]
    fn active_tier_exact_topk_matches_scalar_reference() {
        // Recall-affecting guarantee, tested rather than assumed: the ids an
        // exact scan returns under whatever tier this machine dispatches to
        // must equal the ids computed with the scalar reference kernels.
        use tv_common::kernels::{self, cosine_from_parts, KernelTier};
        let vecs = make_vectors(400, 24, 61);
        let mut idx = HnswIndex::new(HnswConfig::new(24, DistanceMetric::Cosine));
        for (i, v) in vecs.iter().enumerate() {
            idx.insert(key(i as u32), v).unwrap();
        }
        let scalar = kernels::for_tier(KernelTier::Scalar).unwrap();
        for probe in [0usize, 5, 123] {
            let q = &vecs[probe];
            let qn = scalar.norm_sq(q).sqrt();
            let mut scored: Vec<(f32, u32)> = vecs
                .iter()
                .enumerate()
                .map(|(i, v)| {
                    let (d, nn) = scalar.dot_norm_sq(q, v);
                    (cosine_from_parts(d, qn * nn.sqrt()), i as u32)
                })
                .collect();
            scored.sort_by(|a, b| a.0.total_cmp(&b.0));
            let exact: Vec<u32> = scored.into_iter().take(10).map(|(_, i)| i).collect();
            let (bf, _) = idx.brute_force_top_k(q, 10, Filter::All);
            let got: Vec<u32> = bf.iter().map(|n| n.id.local().0).collect();
            assert_eq!(
                got,
                exact,
                "active tier {} disagrees with scalar ranking",
                kernels::active().tier()
            );
        }
    }

    #[test]
    fn memory_bytes_covers_all_resident_structures() {
        let vecs = make_vectors(200, 16, 53);
        let idx = build_index(&vecs);
        use std::mem::size_of;
        // Lower bound from first principles: arena + norm cache + keys +
        // levels + tombstones + link payloads + slot_of entries. If any of
        // these stops being counted, this assertion breaks.
        let link_payload: usize = idx
            .links
            .iter()
            .map(|per_node| {
                per_node
                    .iter()
                    .map(|l| l.len() * size_of::<u32>())
                    .sum::<usize>()
            })
            .sum();
        let floor = idx.vectors.len() * size_of::<f32>()
            + idx.norms.len() * size_of::<f32>()
            + idx.keys.len() * size_of::<VertexId>()
            + idx.levels.len()
            + idx.deleted.len()
            + link_payload
            + idx.slot_of.len() * (size_of::<VertexId>() + size_of::<u32>());
        assert!(
            idx.memory_bytes() >= floor,
            "memory_bytes {} < structural floor {floor}",
            idx.memory_bytes()
        );
        // The norm cache alone must be visible in the accounting: one f32
        // per slot.
        assert_eq!(idx.norms.len(), idx.slot_count());
    }

    #[test]
    fn live_fraction_tracks_deletes() {
        let vecs = make_vectors(100, 4, 47);
        let mut idx = build_index(&vecs);
        assert!((idx.live_fraction() - 1.0).abs() < 1e-9);
        for i in 0..50 {
            idx.remove(key(i));
        }
        assert!((idx.live_fraction() - 0.5).abs() < 1e-9);
    }
}
