//! Core HNSW index.
//!
//! Layout: node `slot` (a dense `u32`) owns a vector (`dim` floats in a
//! slot-major arena), an external key ([`VertexId`]), a top level, a deleted
//! flag, and per-level neighbor lists. External keys map to slots through a
//! hash map so upserts and deletes address vectors by id, as the embedding
//! service's delta records do (§4.3).
//!
//! Upserts of live keys update **in place** with neighborhood repair
//! (hnswlib's `updatePoint`): the old neighbors' lists are re-selected from
//! their two-hop pools and the moved node is re-linked — several times the
//! cost of a fresh insert, which is why incremental updating loses to a
//! full rebuild beyond a ~20% update ratio (the paper's Fig. 11 crossover).
//! Deletes are soft (tombstones stay navigable, like hnswlib); the vacuum's
//! rebuild path compacts them away.

use crate::config::HnswConfig;
use crate::packed::{self, PackedGraph};
use crate::planner::{self, PlanChoice, PlanInputs};
use crate::select::{select_neighbors, Scored};
use crate::stats::SearchStats;
use serde::{Deserialize, Serialize};
use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::collections::HashMap;
use tv_common::bitmap::Filter;
use tv_common::kernels::{self, cosine_from_parts};
use tv_common::{
    Bitmap, DistanceMetric, GraphLayout, Kernels, Neighbor, PlannerConfig, PreparedQuery,
    QuantSpec, SplitMix64, StorageTier, Tid, TvError, TvResult, VertexId,
};
use tv_quant::{permute_code_rows, Codec, QuantQuery, QuantizedCodec};

/// Upsert/delete action flag of a vector delta (§4.3: the delta schema is
/// `Action Flag, ID, TID, Vector Value`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum DeltaAction {
    /// Insert or replace the vector for an id.
    Upsert,
    /// Remove the vector for an id.
    Delete,
}

/// One vector delta record, as accumulated in the in-memory delta store and
/// flushed to delta files by the delta-merge vacuum.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DeltaRecord {
    /// Upsert or delete.
    pub action: DeltaAction,
    /// The vertex whose vector changes.
    pub id: VertexId,
    /// Committing transaction.
    pub tid: Tid,
    /// New vector value (empty for deletes).
    pub vector: Vec<f32>,
}

impl DeltaRecord {
    /// An upsert record.
    #[must_use]
    pub fn upsert(id: VertexId, tid: Tid, vector: Vec<f32>) -> Self {
        DeltaRecord {
            action: DeltaAction::Upsert,
            id,
            tid,
            vector,
        }
    }

    /// A delete record.
    #[must_use]
    pub fn delete(id: VertexId, tid: Tid) -> Self {
        DeltaRecord {
            action: DeltaAction::Delete,
            id,
            tid,
            vector: Vec::new(),
        }
    }
}

/// The interface TigerVector requires of any vector index (§4.4). Implemented
/// by [`HnswIndex`] and [`crate::BruteForceIndex`]; quantization-based
/// indexes would slot in behind the same four functions.
pub trait VectorIndex: Send + Sync {
    /// Declared dimensionality.
    fn dim(&self) -> usize;
    /// Distance metric.
    fn metric(&self) -> DistanceMetric;
    /// Number of live (non-deleted) vectors.
    fn len(&self) -> usize;
    /// True if no live vectors are present.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }
    /// `GetEmbedding`: the stored vector for `id`, if present and live.
    /// Quantized tiers that dropped the f32 arena return the codec
    /// reconstruction (hence the owned buffer).
    fn get_embedding(&self, id: VertexId) -> Option<Vec<f32>>;
    /// `TopKSearch`: the `k` nearest valid neighbors of `query`. `ef` bounds
    /// the search beam (clamped up to `k`); `filter` restricts validity by
    /// *local id* within this segment.
    fn top_k(
        &self,
        query: &[f32],
        k: usize,
        ef: usize,
        filter: Filter<'_>,
    ) -> (Vec<Neighbor>, SearchStats);
    /// `RangeSearch`: all valid neighbors within `threshold` distance.
    fn range_search(
        &self,
        query: &[f32],
        threshold: f32,
        ef: usize,
        filter: Filter<'_>,
    ) -> (Vec<Neighbor>, SearchStats);
    /// `UpdateItems`: apply delta records in order; returns how many were
    /// applied.
    fn update_items(&mut self, records: &[DeltaRecord]) -> TvResult<usize>;
    /// Iterate over `(key, vector)` pairs of live entries (brute-force scans
    /// and ground-truth computation). Vectors are materialized per entry so
    /// quantized tiers can yield reconstructions.
    fn scan(&self) -> Box<dyn Iterator<Item = (VertexId, Vec<f32>)> + '_>;
    /// Approximate resident bytes of every structure this index keeps in
    /// memory (vector payload, caches, graph/list structure, id maps).
    fn memory_bytes(&self) -> usize;
    /// Storage tier of the vector payload (`F32` unless a quantized tier is
    /// attached).
    fn storage_tier(&self) -> StorageTier {
        StorageTier::F32
    }
}

/// Quantized vector storage attached to an index: the frozen codec, a
/// slot-major code arena (tombstones included — deleted slots must stay
/// navigable/scorable), and per-slot reconstruction norms when the metric
/// is cosine. In codes-only PQ mode, `rerank` holds a finer-grained SQ8
/// side store used by the exact-rerank stage in `top_k`.
#[derive(Clone)]
pub(crate) struct QuantState {
    pub(crate) spec: QuantSpec,
    pub(crate) codec: Codec,
    /// `codec.code_len()` bytes per slot, slot-major.
    pub(crate) codes: Vec<u8>,
    /// Euclidean norm of each slot's reconstruction (cosine only; empty for
    /// other metrics).
    pub(crate) recon_norms: Vec<f32>,
    /// SQ8 rerank store for PQ codes-only mode.
    pub(crate) rerank: Option<RerankStore>,
}

/// A secondary, finer-grained code store used only for reranking.
#[derive(Clone)]
pub(crate) struct RerankStore {
    pub(crate) codec: Codec,
    pub(crate) codes: Vec<u8>,
    pub(crate) recon_norms: Vec<f32>,
}

impl QuantState {
    /// Train the codec(s) named by `spec` on a slot-major `arena` and encode
    /// every slot. The same `(arena, seed)` always produce bit-identical
    /// codebooks and codes (deterministic k-means), which is what the
    /// durability layer's recovery guarantees build on.
    pub(crate) fn build(
        spec: QuantSpec,
        dim: usize,
        metric: DistanceMetric,
        arena: &[f32],
        seed: u64,
    ) -> TvResult<Self> {
        let codec = Codec::train(spec.tier, dim, arena, seed)?;
        let (codes, recon_norms) = encode_arena(&codec, arena, dim, metric);
        // PQ codes are too coarse to rank exactly; when the f32 arena is
        // dropped, keep an SQ8 store (1 byte/dim) for the rerank stage.
        let rerank = if !spec.keep_f32 && matches!(spec.tier, StorageTier::Pq { .. }) {
            let rc = Codec::train(StorageTier::Sq8, dim, arena, seed)?;
            let (rcodes, rnorms) = encode_arena(&rc, arena, dim, metric);
            Some(RerankStore {
                codec: rc,
                codes: rcodes,
                recon_norms: rnorms,
            })
        } else {
            None
        };
        Ok(QuantState {
            spec,
            codec,
            codes,
            recon_norms,
            rerank,
        })
    }

    /// Encode `vector` with the frozen codec(s) and append it as the next
    /// slot (the incremental-insert path).
    pub(crate) fn push(&mut self, metric: DistanceMetric, vector: &[f32]) {
        let slot = self.codes.len() / self.codec.code_len();
        self.codes
            .resize(self.codes.len() + self.codec.code_len(), 0);
        self.reencode(metric, slot, vector);
    }

    /// Re-encode `slot` in place from a new vector value (upsert path).
    pub(crate) fn reencode(&mut self, metric: DistanceMetric, slot: usize, vector: &[f32]) {
        let k = kernels::active();
        let dim = self.codec.dim();
        let cl = self.codec.code_len();
        self.codec
            .encode_into(vector, &mut self.codes[slot * cl..(slot + 1) * cl]);
        if metric == DistanceMetric::Cosine {
            let mut recon = vec![0.0f32; dim];
            self.codec
                .reconstruct_into(&self.codes[slot * cl..(slot + 1) * cl], &mut recon);
            let norm = k.norm_sq(&recon).sqrt();
            if slot == self.recon_norms.len() {
                self.recon_norms.push(norm);
            } else {
                self.recon_norms[slot] = norm;
            }
        }
        if let Some(r) = &mut self.rerank {
            let rcl = r.codec.code_len();
            if r.codes.len() < (slot + 1) * rcl {
                r.codes.resize((slot + 1) * rcl, 0);
            }
            r.codec
                .encode_into(vector, &mut r.codes[slot * rcl..(slot + 1) * rcl]);
            if metric == DistanceMetric::Cosine {
                let mut recon = vec![0.0f32; dim];
                r.codec
                    .reconstruct_into(&r.codes[slot * rcl..(slot + 1) * rcl], &mut recon);
                let norm = k.norm_sq(&recon).sqrt();
                if slot == r.recon_norms.len() {
                    r.recon_norms.push(norm);
                } else {
                    r.recon_norms[slot] = norm;
                }
            }
        }
    }

    /// Reconstruct `slot`'s vector into `out`.
    pub(crate) fn materialize_into(&self, slot: usize, out: &mut [f32]) {
        let cl = self.codec.code_len();
        self.codec
            .reconstruct_into(&self.codes[slot * cl..(slot + 1) * cl], out);
    }

    /// Reorder every slot-indexed arena by `perm[old] = new` (layout
    /// compilation; see [`crate::packed`]): codes, reconstruction norms,
    /// and the rerank side store move together with the vectors.
    pub(crate) fn apply_permutation(&mut self, perm: &[u32]) {
        let cl = self.codec.code_len();
        self.codes = permute_code_rows(&self.codes, cl, perm);
        if !self.recon_norms.is_empty() {
            self.recon_norms = permuted(&self.recon_norms, perm);
        }
        if let Some(r) = &mut self.rerank {
            let rcl = r.codec.code_len();
            r.codes = permute_code_rows(&r.codes, rcl, perm);
            if !r.recon_norms.is_empty() {
                r.recon_norms = permuted(&r.recon_norms, perm);
            }
        }
    }

    /// Resident bytes of codes, norm caches, and codec parameters.
    pub(crate) fn bytes(&self) -> usize {
        let mut b = self.codes.len()
            + self.recon_norms.len() * std::mem::size_of::<f32>()
            + self.codec.memory_bytes();
        if let Some(r) = &self.rerank {
            b += r.codes.len()
                + r.recon_norms.len() * std::mem::size_of::<f32>()
                + r.codec.memory_bytes();
        }
        b
    }
}

/// Reorder a per-slot array by `perm[old] = new` (layout compilation).
fn permuted<T: Clone>(src: &[T], perm: &[u32]) -> Vec<T> {
    debug_assert_eq!(src.len(), perm.len());
    let mut out = src.to_vec();
    for (old, item) in src.iter().enumerate() {
        out[perm[old] as usize] = item.clone();
    }
    out
}

/// Encode a whole slot-major arena; returns `(codes, recon_norms)` with
/// `recon_norms` populated only for cosine.
fn encode_arena(
    codec: &Codec,
    arena: &[f32],
    dim: usize,
    metric: DistanceMetric,
) -> (Vec<u8>, Vec<f32>) {
    let n = arena.len() / dim;
    let cl = codec.code_len();
    let k = kernels::active();
    let mut codes = vec![0u8; n * cl];
    let mut recon_norms = Vec::new();
    let mut recon = vec![0.0f32; dim];
    for i in 0..n {
        codec.encode_into(
            &arena[i * dim..(i + 1) * dim],
            &mut codes[i * cl..(i + 1) * cl],
        );
        if metric == DistanceMetric::Cosine {
            codec.reconstruct_into(&codes[i * cl..(i + 1) * cl], &mut recon);
            recon_norms.push(k.norm_sq(&recon).sqrt());
        }
    }
    (codes, recon_norms)
}

/// Either scoring backend, so one traversal implementation serves both
/// storage tiers. The `F32` arm borrows the query slice; the `Quant` arm
/// owns its prepared plan, so an index can hold a scorer across graph
/// mutations.
pub(crate) enum Scorer<'q> {
    F32(PreparedQuery<'q>),
    Quant(QuantQuery),
}

/// Reusable per-search scratch: epoch-stamped visited marks plus the
/// batched-scoring buffers. A slot is "visited" iff `marks[slot] == epoch`,
/// so clearing between searches is one epoch bump instead of an O(n)
/// memset — the `vec![false; n]` the beam searches used to allocate (and
/// zero) on every call.
#[derive(Default)]
pub(crate) struct SearchScratch {
    epoch: u32,
    marks: Vec<u32>,
    batch: Vec<u32>,
    dists: Vec<f32>,
    /// Repair-path staging (`update_in_place`/`shrink_links`): the moved
    /// node's old neighborhood, the 2-hop candidate pool / list copy, and
    /// the scored pairs — pooled here so the graph-repair loops reuse one
    /// warmed allocation instead of cloning per neighbor per level.
    nbrs: Vec<u32>,
    pool: Vec<u32>,
    scored: Vec<Scored>,
}

impl SearchScratch {
    /// Start a fresh visited set covering `n` slots. Epochs wrap at
    /// `u32::MAX` by resetting the marks once — amortized O(1).
    fn begin(&mut self, n: usize) {
        if self.marks.len() < n {
            self.marks.resize(n, 0);
        }
        if self.epoch == u32::MAX {
            for m in &mut self.marks {
                *m = 0;
            }
            self.epoch = 0;
        }
        self.epoch += 1;
    }

    /// Mark `slot` visited; true iff this is its first visit this epoch.
    #[inline]
    fn visit(&mut self, slot: u32) -> bool {
        let m = &mut self.marks[slot as usize];
        if *m == self.epoch {
            false
        } else {
            *m = self.epoch;
            true
        }
    }
}

/// Per-index pool of [`SearchScratch`] buffers, one per in-flight search.
/// Concurrent searches each take their own buffer; returning it keeps the
/// warmed allocation (and its epoch) for the next search.
#[derive(Default)]
pub(crate) struct ScratchPool(std::sync::Mutex<Vec<SearchScratch>>);

/// Bound on pooled buffers: enough for any realistic fan-out width while
/// capping worst-case retained memory at `64 × 4n` bytes per index.
const MAX_POOLED_SCRATCH: usize = 64;

impl ScratchPool {
    fn take(&self) -> SearchScratch {
        self.0
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .pop()
            .unwrap_or_default()
    }

    fn put(&self, scratch: SearchScratch) {
        let mut pool = self
            .0
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        if pool.len() < MAX_POOLED_SCRATCH {
            pool.push(scratch);
        }
    }
}

impl Clone for ScratchPool {
    /// Cloned indexes start an empty pool: scratch holds no index state
    /// (results are bit-identical with or without pooled buffers), so
    /// sharing would only contend the lock.
    fn clone(&self) -> Self {
        ScratchPool::default()
    }
}

/// Hierarchical Navigable Small World index over one embedding segment.
#[derive(Clone)]
pub struct HnswIndex {
    cfg: HnswConfig,
    /// Slot-major vector arena: slot `s` occupies `s*dim .. (s+1)*dim`.
    vectors: Vec<f32>,
    /// Per-slot Euclidean norm cache, maintained on insert/upsert (stored
    /// norms never change between writes, so cosine scoring pays one dot
    /// pass per candidate instead of three full passes).
    norms: Vec<f32>,
    /// External key per slot.
    keys: Vec<VertexId>,
    /// Key → live slot.
    slot_of: HashMap<VertexId, u32>,
    /// Per-slot, per-level adjacency.
    links: Vec<Vec<Vec<u32>>>,
    /// Top level per slot.
    levels: Vec<u8>,
    /// Tombstones.
    deleted: Vec<bool>,
    deleted_count: usize,
    /// Live occupancy by *local id* (the key space the caller's filter
    /// bitmaps address): bit set ⇔ a live slot carries that local id. The
    /// planner intersects this with the filter bitmap to get the true
    /// valid-live cardinality — raw `bitmap.count_ones()` also counts bits
    /// on deleted and never-inserted ids and overestimates selectivity.
    live_mask: Bitmap,
    /// Entry slot and the highest level in the graph.
    entry: Option<(u32, u8)>,
    /// Quantized storage tier, if attached via [`HnswIndex::quantize`].
    /// When `spec.keep_f32` is false, `vectors` and `norms` are empty and
    /// all scoring runs against codes.
    quant: Option<QuantState>,
    /// Compiled cache-conscious adjacency (see [`crate::packed`]). When
    /// present, `links` is empty and searches read the CSR slabs; mutation
    /// paths thaw back to the forest first. Slots are renumbered in BFS
    /// order at compile time, so the two forms are never mixed.
    packed: Option<PackedGraph>,
    /// Pooled search scratch (visited epochs + batch-scoring buffers).
    scratch: ScratchPool,
}

impl HnswIndex {
    /// New empty index. Panics on invalid config (programmer error).
    #[must_use]
    pub fn new(cfg: HnswConfig) -> Self {
        if let Err(e) = cfg.validate() {
            panic!("invalid HNSW config: {e}");
        }
        HnswIndex {
            cfg,
            vectors: Vec::new(),
            norms: Vec::new(),
            keys: Vec::new(),
            slot_of: HashMap::new(),
            links: Vec::new(),
            levels: Vec::new(),
            deleted: Vec::new(),
            deleted_count: 0,
            live_mask: Bitmap::new(0),
            entry: None,
            quant: None,
            packed: None,
            scratch: ScratchPool::default(),
        }
    }

    /// The construction configuration.
    #[must_use]
    pub fn config(&self) -> &HnswConfig {
        &self.cfg
    }

    /// Total slots, including tombstones (capacity metric for vacuum
    /// decisions).
    #[must_use]
    pub fn slot_count(&self) -> usize {
        self.keys.len()
    }

    /// Number of tombstoned slots. The vacuum compares this against
    /// [`Self::slot_count`] to decide between incremental update and full
    /// rebuild (Fig. 11's crossover).
    #[must_use]
    pub fn tombstone_count(&self) -> usize {
        self.deleted_count
    }

    /// Approximate resident bytes across **all** resident structures:
    /// vector payload (f32 arena + norm cache and/or quantized codes, norm
    /// caches, and codec parameters), adjacency (the resident form from
    /// [`Self::link_memory_bytes`]), keys, levels, tombstone flags, and the
    /// key→slot hash map (entries plus ~30% open-addressing slack).
    #[must_use]
    pub fn memory_bytes(&self) -> usize {
        use std::mem::size_of;
        let vec_bytes = self.vector_storage_bytes();
        let key_bytes = self.keys.len() * size_of::<VertexId>();
        let level_bytes = self.levels.len() * size_of::<u8>();
        let deleted_bytes = self.deleted.len() * size_of::<bool>();
        let (pointer_links, packed_links) = self.link_memory_bytes();
        let link_bytes = if self.packed.is_some() {
            packed_links
        } else {
            pointer_links
        };
        let slot_of_bytes =
            self.slot_of.len() * (size_of::<VertexId>() + size_of::<u32>()) * 13 / 10;
        let live_mask_bytes = self.live_mask.len().div_ceil(64) * size_of::<u64>();
        vec_bytes
            + key_bytes
            + level_bytes
            + deleted_bytes
            + link_bytes
            + slot_of_bytes
            + live_mask_bytes
    }

    /// Adjacency footprint in both representations, as
    /// `(pointer_form_bytes, packed_form_bytes)`. The resident form is
    /// exact: **capacity**-based for the pointer forest — the old len-based
    /// accounting missed both the growth slack of every per-level list and
    /// the slack of the per-node header arrays, which for push-grown `Vec`s
    /// is nearly half the heap footprint — and slab-sized for the CSR
    /// (built once at final size). The non-resident form is the len-based
    /// cost the index *would* pay after converting: neighbor payload plus
    /// per-node and per-level `Vec` headers for the forest; neighbor slabs
    /// plus prefix tables for the CSR.
    #[must_use]
    pub fn link_memory_bytes(&self) -> (usize, usize) {
        use std::mem::size_of;
        let n = self.keys.len();
        match &self.packed {
            Some(p) => {
                let nbrs = p.neighbor_count();
                let rows = p.upper_row_count();
                let pointer = n * size_of::<Vec<Vec<u32>>>()
                    + (n + rows) * size_of::<Vec<u32>>()
                    + nbrs * size_of::<u32>();
                (pointer, p.memory_bytes())
            }
            None => {
                let mut pointer = self.links.capacity() * size_of::<Vec<Vec<u32>>>();
                let mut nbrs = 0usize;
                let mut rows = 0usize;
                for per_node in &self.links {
                    pointer += per_node.capacity() * size_of::<Vec<u32>>();
                    rows += per_node.len().saturating_sub(1);
                    for l in per_node {
                        pointer += l.capacity() * size_of::<u32>();
                        nbrs += l.len();
                    }
                }
                // CSR cost: l0_off (n+1) + upper_base (n+1) + upper_row_off
                // (rows+1) + both neighbor slabs.
                let packed = (2 * (n + 1) + rows + 1 + nbrs) * size_of::<u32>();
                (pointer, packed)
            }
        }
    }

    /// The adjacency representation currently resident: `Pointer` until
    /// [`Self::compile_layout`] freezes the graph, then `Packed` or
    /// `PackedPrefetch` until the next mutation thaws it.
    #[must_use]
    pub fn layout(&self) -> GraphLayout {
        match &self.packed {
            None => GraphLayout::Pointer,
            Some(p) if p.prefetch => GraphLayout::PackedPrefetch,
            Some(_) => GraphLayout::Packed,
        }
    }

    /// Compile the frozen, cache-conscious search layout: renumber slots in
    /// BFS order from the entry point (applied to every slot-indexed
    /// structure — vectors, norms, keys, levels, tombstones, links, entry,
    /// quantized code slabs; the live mask is keyed by local id and is
    /// unaffected), then freeze the adjacency into CSR slabs
    /// ([`crate::packed`]). `Pointer` thaws instead. Returns true iff the
    /// index is compiled afterwards; empty indexes stay uncompiled.
    ///
    /// Search results are bit-identical across layouts (modulo the slot
    /// renumbering, which is invisible through the key-based API).
    /// Mutations transparently thaw back to the pointer form; the
    /// vacuum/index-merge policy recompiles, so correctness never depends
    /// on layout freshness.
    pub fn compile_layout(&mut self, layout: GraphLayout) -> bool {
        if !layout.is_packed() {
            self.ensure_mutable();
            return false;
        }
        if let Some(p) = &mut self.packed {
            // Already frozen — mutations thaw, so the graph cannot have
            // changed since compilation; only the prefetch policy can.
            p.prefetch = layout.prefetch_enabled();
            return true;
        }
        let Some((entry, _)) = self.entry else {
            return false;
        };
        let perm = packed::bfs_order(&self.links, entry);
        if !packed::is_identity(&perm) {
            self.apply_permutation(&perm);
        }
        let pg = PackedGraph::build(&self.links, layout.prefetch_enabled());
        self.links = Vec::new();
        self.packed = Some(pg);
        true
    }

    /// Thaw the compiled layout back into the mutable forest. Called at
    /// the top of every mutation path. The BFS slot renumbering is kept
    /// (it is just as valid for a mutable graph); only the storage form
    /// reverts, so results do not change.
    fn ensure_mutable(&mut self) {
        if let Some(p) = self.packed.take() {
            self.links = p.to_links();
        }
    }

    /// Freeze the CSR directly from already-BFS-ordered links (snapshot
    /// load). The stored slot order *is* the compiled order, so no
    /// re-permutation runs — which keeps `to_bytes(from_bytes(b)) == b`
    /// for compiled snapshots.
    pub(crate) fn compile_from_stored(&mut self, prefetch: bool) {
        if self.keys.is_empty() {
            return;
        }
        let pg = PackedGraph::build(&self.links, prefetch);
        self.links = Vec::new();
        self.packed = Some(pg);
    }

    /// Compiled-form accessor (snapshot writer).
    pub(crate) fn packed(&self) -> Option<&PackedGraph> {
        self.packed.as_ref()
    }

    /// Reorder every slot-indexed structure by `perm[old_slot] = new_slot`.
    /// Neighbor ids are remapped but list *order* is preserved, so
    /// traversal visit order — and therefore results — are unchanged.
    fn apply_permutation(&mut self, perm: &[u32]) {
        let n = self.keys.len();
        debug_assert_eq!(perm.len(), n);
        let d = self.cfg.dim;
        if !self.vectors.is_empty() {
            let mut nv = vec![0.0f32; self.vectors.len()];
            for (old, &p) in perm.iter().enumerate() {
                let new = p as usize;
                nv[new * d..(new + 1) * d].copy_from_slice(&self.vectors[old * d..(old + 1) * d]);
            }
            self.vectors = nv;
            self.norms = permuted(&self.norms, perm);
        }
        self.keys = permuted(&self.keys, perm);
        self.levels = permuted(&self.levels, perm);
        self.deleted = permuted(&self.deleted, perm);
        let mut new_links: Vec<Vec<Vec<u32>>> = vec![Vec::new(); n];
        for (old, per_node) in std::mem::take(&mut self.links).into_iter().enumerate() {
            new_links[perm[old] as usize] = per_node
                .into_iter()
                .map(|l| l.into_iter().map(|nb| perm[nb as usize]).collect())
                .collect();
        }
        self.links = new_links;
        for slot in self.slot_of.values_mut() {
            *slot = perm[*slot as usize];
        }
        if let Some((e, top)) = self.entry {
            self.entry = Some((perm[e as usize], top));
        }
        if let Some(q) = &mut self.quant {
            q.apply_permutation(perm);
        }
        // `live_mask` is keyed by local id, not slot — unaffected.
    }

    /// Bytes of the vector *payload* only (f32 arena + norm cache, plus
    /// quantized codes, recon-norm caches, and codec parameters), excluding
    /// graph structure — the numerator of the memory-reduction ratios the
    /// quantized benchmarks report.
    #[must_use]
    pub fn vector_storage_bytes(&self) -> usize {
        use std::mem::size_of;
        let mut b = self.vectors.len() * size_of::<f32>() + self.norms.len() * size_of::<f32>();
        if let Some(q) = &self.quant {
            b += q.bytes();
        }
        b
    }

    /// The active quantization spec, if a quantized tier is attached.
    #[must_use]
    pub fn quant_spec(&self) -> Option<QuantSpec> {
        self.quant.as_ref().map(|q| q.spec)
    }

    /// Storage tier of the vector payload.
    #[must_use]
    pub fn storage_tier(&self) -> StorageTier {
        self.quant
            .as_ref()
            .map_or(StorageTier::F32, |q| q.spec.tier)
    }

    /// Attach a quantized storage tier: train the codec(s) on the current
    /// arena, encode every slot, and (unless `spec.keep_f32`) drop the f32
    /// arena and norm cache. Later inserts encode with the frozen codec;
    /// retraining only happens through a rebuild.
    ///
    /// With `spec.keep_f32`, traversal scores against codes and `top_k`
    /// reranks the top `rerank_factor × k` candidates against the retained
    /// f32 vectors. In codes-only PQ mode an SQ8 side store plays that
    /// rerank role; codes-only SQ8 needs no rerank (its asymmetric scores
    /// are already exact w.r.t. the reconstruction).
    pub fn quantize(&mut self, spec: QuantSpec) -> TvResult<()> {
        if !spec.is_quantized() {
            return match &self.quant {
                None => Ok(()),
                Some(q) if q.spec.keep_f32 => {
                    self.quant = None;
                    Ok(())
                }
                Some(_) => Err(TvError::InvalidArgument(
                    "cannot drop quantization: the f32 arena was not retained".into(),
                )),
            };
        }
        if self.quant.is_some() {
            return Err(TvError::InvalidArgument(
                "index is already quantized; rebuild to change tiers".into(),
            ));
        }
        if self.keys.is_empty() {
            return Err(TvError::InvalidArgument(
                "cannot train a codec on an empty index".into(),
            ));
        }
        let state = QuantState::build(
            spec,
            self.cfg.dim,
            self.cfg.metric,
            &self.vectors,
            self.cfg.seed,
        )?;
        self.quant = Some(state);
        if !spec.keep_f32 {
            self.vectors = Vec::new();
            self.norms = Vec::new();
        }
        Ok(())
    }

    fn vec_of(&self, slot: u32) -> &[f32] {
        let d = self.cfg.dim;
        let s = slot as usize;
        &self.vectors[s * d..(s + 1) * d]
    }

    /// The f32 vector for a slot: the retained arena row when present,
    /// otherwise the codec reconstruction.
    fn materialize(&self, slot: u32) -> Vec<f32> {
        if !self.vectors.is_empty() {
            return self.vec_of(slot).to_vec();
        }
        let q = self.quant.as_ref().expect("no f32 arena and no codes");
        let mut out = vec![0.0f32; self.cfg.dim];
        q.materialize_into(slot as usize, &mut out);
        out
    }

    /// Scorer for an external query vector: prepared f32 query, or a
    /// prepared quantized plan when a quantized tier is attached (traversal
    /// always scores against codes in that case, even when the f32 arena is
    /// retained for reranking).
    fn scorer<'q>(&self, query: &'q [f32]) -> Scorer<'q> {
        match &self.quant {
            Some(q) => Scorer::Quant(QuantQuery::new(&q.codec, self.cfg.metric, query)),
            None => Scorer::F32(PreparedQuery::new(self.cfg.metric, query)),
        }
    }

    /// A stored slot prepared to act as the query (insert-time repair, link
    /// shrinking) — f32 indexes reuse the cached norm; quantized indexes
    /// reconstruct the slot so construction geometry matches search
    /// geometry.
    fn slot_scorer(&self, slot: u32) -> Scorer<'_> {
        match &self.quant {
            Some(q) => {
                let v = self.materialize(slot);
                Scorer::Quant(QuantQuery::new(&q.codec, self.cfg.metric, &v))
            }
            None => Scorer::F32(PreparedQuery::with_norm(
                self.cfg.metric,
                self.vec_of(slot),
                self.norms[slot as usize],
            )),
        }
    }

    /// Distance from a scorer to one stored slot.
    fn score_slot(&self, sc: &Scorer<'_>, slot: u32) -> f32 {
        match sc {
            Scorer::F32(pq) => pq.distance_cached(self.vec_of(slot), self.norms[slot as usize]),
            Scorer::Quant(qq) => {
                let q = self.quant.as_ref().expect("quant scorer without codes");
                let cl = qq.code_len();
                let s = slot as usize;
                let rn = q.recon_norms.get(s).copied().unwrap_or(0.0);
                qq.score(&q.codes[s * cl..(s + 1) * cl], rn)
            }
        }
    }

    /// Batch-score `slots` against a scorer; distances land in `out` (one
    /// entry per slot, same order).
    fn score_slots(&self, sc: &Scorer<'_>, slots: &[u32], out: &mut Vec<f32>) {
        self.score_slots_pf(sc, slots, out, false);
    }

    /// [`Self::score_slots`] with an opt-in interleaved prefetch schedule:
    /// while one slot's row is scored, the head of the next slot's row is
    /// requested. Only the search loops of a `packed+prefetch` index pass
    /// `true`; the admission logic sees identical distances either way.
    fn score_slots_pf(&self, sc: &Scorer<'_>, slots: &[u32], out: &mut Vec<f32>, prefetch: bool) {
        match sc {
            Scorer::F32(pq) if prefetch => {
                pq.distance_slots_prefetch(&self.vectors, self.cfg.dim, &self.norms, slots, out);
            }
            Scorer::F32(pq) => {
                pq.distance_slots(&self.vectors, self.cfg.dim, &self.norms, slots, out);
            }
            Scorer::Quant(qq) => {
                let q = self.quant.as_ref().expect("quant scorer without codes");
                qq.score_slots(&q.codes, &q.recon_norms, slots, out);
            }
        }
    }

    /// The neighbor list of `slot` on `lvl`, from whichever adjacency form
    /// is resident: one offset lookup into the CSR slabs when compiled,
    /// the pointer forest otherwise.
    #[inline]
    fn neighbors(&self, slot: u32, lvl: u8) -> &[u32] {
        match &self.packed {
            Some(p) => p.neighbors(slot, lvl),
            None => &self.links[slot as usize][lvl as usize],
        }
    }

    /// Issue an advisory prefetch for `slot`'s scoring row — the quantized
    /// code row when a quantized tier is attached (traversal scores codes),
    /// the f32 arena row otherwise. Called while the batch is still being
    /// collected, so the loads overlap the preceding scoring work. `deep`
    /// warms up to 32 lines instead of 2: the scorer's own interleaved
    /// schedule starts two rows in, so only the batch's first rows need
    /// their full depth requested ahead of time.
    #[inline]
    fn prefetch_slot(&self, k: &Kernels, slot: u32, deep: bool) {
        let s = slot as usize;
        if let Some(q) = &self.quant {
            let cl = q.codec.code_len();
            k.prefetch(q.codes.as_ptr().wrapping_add(s * cl));
        } else {
            let p = self
                .vectors
                .as_ptr()
                .wrapping_add(s * self.cfg.dim)
                .cast::<u8>();
            let row_lines = (self.cfg.dim * std::mem::size_of::<f32>()).div_ceil(64);
            let lines = row_lines.min(if deep { 32 } else { 2 });
            for l in 0..lines {
                k.prefetch(p.wrapping_add(l * 64));
            }
        }
    }

    /// Distance between two stored slots: cached norms on the f32 path
    /// (cosine is a single dot pass); reconstruction of both sides in
    /// quantized codes-only mode (per-pair allocation — the diversity
    /// heuristic runs off the search hot path).
    fn pair_distance(&self, a: u32, b: u32) -> f32 {
        let k = kernels::active();
        if self.vectors.is_empty() {
            if let Some(q) = &self.quant {
                let (va, vb) = (self.materialize(a), self.materialize(b));
                return match self.cfg.metric {
                    DistanceMetric::L2 => k.l2_sq(&va, &vb),
                    DistanceMetric::InnerProduct => -k.dot(&va, &vb),
                    DistanceMetric::Cosine => cosine_from_parts(
                        k.dot(&va, &vb),
                        q.recon_norms[a as usize] * q.recon_norms[b as usize],
                    ),
                };
            }
        }
        let (va, vb) = (self.vec_of(a), self.vec_of(b));
        match self.cfg.metric {
            DistanceMetric::L2 => k.l2_sq(va, vb),
            DistanceMetric::InnerProduct => -k.dot(va, vb),
            DistanceMetric::Cosine => cosine_from_parts(
                k.dot(va, vb),
                self.norms[a as usize] * self.norms[b as usize],
            ),
        }
    }

    /// Deterministic per-key level sample: the key (mixed with the config
    /// seed) seeds a [`SplitMix64`] stream whose first exponential draw
    /// picks the level. Replaces the old shared-mutable build RNG — levels
    /// no longer depend on insertion order, so parallel build interleaving
    /// cannot perturb them, a key re-inserted after deletion lands on the
    /// same level, and `fig11_update` runs are reproducible. Persisted
    /// snapshots are unaffected (levels are stored).
    fn level_for_key(&self, key: VertexId) -> u8 {
        let raw = (u64::from(key.segment().0) << 32) | u64::from(key.local().0);
        let mut rng = SplitMix64::new(self.cfg.seed ^ raw);
        let lvl = (rng.next_exp() * self.cfg.level_norm()).floor();
        // Cap pathological samples; 32 levels covers > 10^14 points at M=16.
        lvl.min(32.0) as u8
    }

    /// Insert or replace the vector for `key`. Returns an error on dimension
    /// mismatch.
    pub fn insert(&mut self, key: VertexId, vector: &[f32]) -> TvResult<()> {
        if vector.len() != self.cfg.dim {
            return Err(TvError::DimensionMismatch {
                expected: self.cfg.dim,
                got: vector.len(),
            });
        }
        // Writes run against the mutable forest; a compiled index thaws
        // here (the BFS renumbering is kept — only the storage form
        // reverts, so search results are unchanged).
        self.ensure_mutable();
        // Upsert of a live key: in-place update with neighborhood repair
        // (hnswlib's updatePoint) — the expensive path whose cost Fig. 11
        // compares against a full rebuild.
        if let Some(&old) = self.slot_of.get(&key) {
            if !self.deleted[old as usize] {
                self.update_in_place(old, vector);
                return Ok(());
            }
        }

        let slot = self.keys.len() as u32;
        let level = self.level_for_key(key);
        let metric = self.cfg.metric;
        // Quantized tiers encode with the frozen codec; the f32 arena is
        // maintained only when the spec retains it.
        if let Some(q) = &mut self.quant {
            q.push(metric, vector);
        }
        if self.quant.as_ref().is_none_or(|q| q.spec.keep_f32) {
            self.vectors.extend_from_slice(vector);
            self.norms.push(kernels::active().norm_sq(vector).sqrt());
        }
        self.keys.push(key);
        self.levels.push(level);
        self.deleted.push(false);
        self.links
            .push((0..=level).map(|_| Vec::new()).collect::<Vec<_>>());
        self.slot_of.insert(key, slot);
        let local = key.local().0 as usize;
        self.live_mask.grow(local + 1);
        self.live_mask.set(local, true);

        let Some((mut cur, top)) = self.entry else {
            self.entry = Some((slot, level));
            return Ok(());
        };

        // The new node's vector plays the query role; the f32 path reuses
        // its freshly cached norm (one norm pass for the whole insert).
        let sc = match &self.quant {
            Some(q) => Scorer::Quant(QuantQuery::new(&q.codec, metric, vector)),
            None => Scorer::F32(PreparedQuery::with_norm(
                metric,
                vector,
                self.norms[slot as usize],
            )),
        };
        // Greedy descent through layers above the new node's level.
        let mut stats = SearchStats::default();
        let mut scratch = self.scratch.take();
        for lvl in ((level + 1)..=top).rev() {
            cur = self.greedy_closest(&sc, cur, lvl, &mut stats, &mut scratch);
        }

        // Connect on each layer from min(level, top) down to 0.
        let mut entry_points = vec![cur];
        for lvl in (0..=level.min(top)).rev() {
            let found = self.search_layer(
                &sc,
                &entry_points,
                self.cfg.ef_construction,
                lvl,
                &mut stats,
                &mut scratch,
            );
            let max_deg = if lvl == 0 { self.cfg.m0 } else { self.cfg.m };
            let chosen =
                select_neighbors(&found, self.cfg.m, true, |a, b| self.pair_distance(a, b));
            for &nb in &chosen {
                self.links[slot as usize][lvl as usize].push(nb);
                self.links[nb as usize][lvl as usize].push(slot);
                self.shrink_links(nb, lvl, max_deg, &mut scratch);
            }
            entry_points = found.iter().map(|&(_, s)| s).collect();
            if entry_points.is_empty() {
                entry_points = vec![cur];
            }
        }
        self.scratch.put(scratch);

        if level > top {
            self.entry = Some((slot, level));
        }
        Ok(())
    }

    /// Replace a live node's vector and repair the surrounding graph:
    /// re-select the neighbor lists of the node's old neighbors from their
    /// two-hop candidate pool (the moved node invalidated their diversity
    /// choices), then re-link the node itself at every level. This costs
    /// several times a fresh insert — which is exactly why incremental
    /// updating loses to rebuilding beyond a ~20% update ratio (Fig. 11).
    fn update_in_place(&mut self, slot: u32, vector: &[f32]) {
        let d = self.cfg.dim;
        let metric = self.cfg.metric;
        if let Some(q) = &mut self.quant {
            q.reencode(metric, slot as usize, vector);
        }
        if !self.vectors.is_empty() {
            self.vectors[slot as usize * d..(slot as usize + 1) * d].copy_from_slice(vector);
            self.norms[slot as usize] = kernels::active().norm_sq(vector).sqrt();
        }
        let Some((entry, top)) = self.entry else {
            return;
        };
        let level = self.levels[slot as usize];

        // Phase 1: repair old neighbors' lists from their 2-hop pools. The
        // neighborhood copies and scored pairs stage through the pooled
        // scratch buffers — the per-neighbor-per-level `clone()`s this loop
        // used to allocate dominated the repair path's allocator traffic.
        let mut scratch = self.scratch.take();
        let mut dists: Vec<f32> = std::mem::take(&mut scratch.dists);
        let mut old_neighbors: Vec<u32> = std::mem::take(&mut scratch.nbrs);
        let mut pool: Vec<u32> = std::mem::take(&mut scratch.pool);
        let mut scored: Vec<Scored> = std::mem::take(&mut scratch.scored);
        for lvl in 0..=level.min(top) {
            old_neighbors.clear();
            old_neighbors.extend_from_slice(&self.links[slot as usize][lvl as usize]);
            if old_neighbors.is_empty() {
                continue;
            }
            let max_deg = if lvl == 0 { self.cfg.m0 } else { self.cfg.m };
            for &nb in &old_neighbors {
                // Candidate pool for this neighbor: its own links plus the
                // moved node's old neighborhood (hnswlib's repair set).
                pool.clear();
                pool.extend_from_slice(&self.links[nb as usize][lvl as usize]);
                pool.extend_from_slice(&old_neighbors);
                pool.sort_unstable();
                pool.dedup();
                pool.retain(|&c| c != nb);
                // Batch-score the whole pool against nb in one kernel call.
                let sc_nb = self.slot_scorer(nb);
                self.score_slots(&sc_nb, &pool, &mut dists);
                scored.clear();
                scored.extend(pool.iter().zip(&dists).map(|(&c, &dc)| (dc, c)));
                scored.sort_unstable_by(|a, b| a.0.total_cmp(&b.0));
                let kept =
                    select_neighbors(&scored, max_deg, true, |a, b| self.pair_distance(a, b));
                self.links[nb as usize][lvl as usize] = kept;
            }
        }
        scratch.dists = dists;
        scratch.nbrs = old_neighbors;
        scratch.pool = pool;
        scratch.scored = scored;

        // Phase 2: re-link the moved node like a fresh insert.
        let sc = match &self.quant {
            Some(q) => Scorer::Quant(QuantQuery::new(&q.codec, metric, vector)),
            None => Scorer::F32(PreparedQuery::with_norm(
                metric,
                vector,
                self.norms[slot as usize],
            )),
        };
        let mut stats = SearchStats::default();
        let mut cur = entry;
        for lvl in ((level + 1)..=top).rev() {
            cur = self.greedy_closest(&sc, cur, lvl, &mut stats, &mut scratch);
        }
        let mut entry_points = vec![cur];
        for lvl in (0..=level.min(top)).rev() {
            let mut found = self.search_layer(
                &sc,
                &entry_points,
                self.cfg.ef_construction,
                lvl,
                &mut stats,
                &mut scratch,
            );
            found.retain(|&(_, s)| s != slot);
            let max_deg = if lvl == 0 { self.cfg.m0 } else { self.cfg.m };
            let chosen =
                select_neighbors(&found, self.cfg.m, true, |a, b| self.pair_distance(a, b));
            self.links[slot as usize][lvl as usize] = chosen.clone();
            for &nb in &chosen {
                if !self.links[nb as usize][lvl as usize].contains(&slot) {
                    self.links[nb as usize][lvl as usize].push(slot);
                    self.shrink_links(nb, lvl, max_deg, &mut scratch);
                }
            }
            entry_points = found.iter().map(|&(_, s)| s).collect();
            if entry_points.is_empty() {
                entry_points = vec![cur];
            }
        }
        self.scratch.put(scratch);
    }

    /// Mark the vector for `key` deleted. Returns true if a live entry was
    /// removed.
    pub fn remove(&mut self, key: VertexId) -> bool {
        if let Some(&slot) = self.slot_of.get(&key) {
            if !self.deleted[slot as usize] {
                self.deleted[slot as usize] = true;
                self.deleted_count += 1;
                self.slot_of.remove(&key);
                let local = key.local().0 as usize;
                if local < self.live_mask.len() {
                    self.live_mask.set(local, false);
                }
                return true;
            }
        }
        false
    }

    /// Prune a node's neighbor list back to `max_deg` using the diversity
    /// heuristic. Distance and scored buffers stage through the pooled
    /// scratch (no per-call allocations).
    fn shrink_links(&mut self, node: u32, lvl: u8, max_deg: usize, scratch: &mut SearchScratch) {
        if self.links[node as usize][lvl as usize].len() <= max_deg {
            return;
        }
        // Batch-score the full neighbor list against the node in one call.
        let mut dists = std::mem::take(&mut scratch.dists);
        let mut list = std::mem::take(&mut scratch.pool);
        let mut scored = std::mem::take(&mut scratch.scored);
        list.clear();
        list.extend_from_slice(&self.links[node as usize][lvl as usize]);
        let sc = self.slot_scorer(node);
        self.score_slots(&sc, &list, &mut dists);
        scored.clear();
        scored.extend(list.iter().zip(&dists).map(|(&nb, &dn)| (dn, nb)));
        scored.sort_unstable_by(|a, b| a.0.total_cmp(&b.0));
        let kept = select_neighbors(&scored, max_deg, true, |a, b| self.pair_distance(a, b));
        self.links[node as usize][lvl as usize] = kept;
        scratch.dists = dists;
        scratch.pool = list;
        scratch.scored = scored;
    }

    /// Bulk insert with optional parallel graph construction.
    ///
    /// `threads <= 1` (or a batch of one) runs the plain sequential insert
    /// loop and is **bit-identical** to calling [`HnswIndex::insert`] per
    /// item. With more threads, items whose key repeats within the batch or
    /// is already live are applied sequentially first (in batch order, so
    /// upsert semantics are preserved), and the remaining fresh appends are
    /// linked concurrently under per-node locks. Levels come from the
    /// deterministic per-key sampler, so the node set and level assignment
    /// are identical across thread counts; only link sets may differ
    /// (hnswlib-style construction races), preserving recall parity rather
    /// than byte identity.
    pub fn insert_batch(&mut self, items: &[(VertexId, Vec<f32>)], threads: usize) -> TvResult<()> {
        self.ensure_mutable();
        if threads <= 1 || items.len() <= 1 {
            for (key, vector) in items {
                self.insert(*key, vector)?;
            }
            return Ok(());
        }
        for (_, vector) in items {
            if vector.len() != self.cfg.dim {
                return Err(TvError::DimensionMismatch {
                    expected: self.cfg.dim,
                    got: vector.len(),
                });
            }
        }
        let mut count: HashMap<VertexId, usize> = HashMap::with_capacity(items.len());
        for (key, _) in items {
            *count.entry(*key).or_insert(0) += 1;
        }
        let mut fresh: Vec<(VertexId, &[f32])> = Vec::with_capacity(items.len());
        for (key, vector) in items {
            if count[key] == 1 && !self.slot_of.contains_key(key) {
                fresh.push((*key, vector.as_slice()));
            } else {
                self.insert(*key, vector)?;
            }
        }
        self.parallel_insert_fresh(&fresh, threads);
        Ok(())
    }

    /// Append `items` (all fresh keys, dimension-checked by the caller) and
    /// link them concurrently. Phase A appends every slot sequentially —
    /// arena, norms, codes, keys, levels, tombstones, key map, live mask —
    /// so the shared state is immutable during linking. Phase B moves the
    /// adjacency lists into per-node mutexes and the entry point into an
    /// `RwLock`, then fans the link work out over the shared pool; scoring
    /// reads only the (now frozen) arena/codes, and neighbor lists are
    /// touched one lock at a time, so no lock ordering issues arise.
    fn parallel_insert_fresh(&mut self, items: &[(VertexId, &[f32])], threads: usize) {
        use std::sync::{Mutex, PoisonError, RwLock};
        let first = self.keys.len() as u32;
        let metric = self.cfg.metric;
        for (key, vector) in items {
            let slot = self.keys.len() as u32;
            let level = self.level_for_key(*key);
            if let Some(q) = &mut self.quant {
                q.push(metric, vector);
            }
            if self.quant.as_ref().is_none_or(|q| q.spec.keep_f32) {
                self.vectors.extend_from_slice(vector);
                self.norms.push(kernels::active().norm_sq(vector).sqrt());
            }
            self.keys.push(*key);
            self.levels.push(level);
            self.deleted.push(false);
            self.links
                .push((0..=level).map(|_| Vec::new()).collect::<Vec<_>>());
            self.slot_of.insert(*key, slot);
            let local = key.local().0 as usize;
            self.live_mask.grow(local + 1);
            self.live_mask.set(local, true);
        }
        let mut work: Vec<u32> = (first..self.keys.len() as u32).collect();
        if self.entry.is_none() {
            if work.is_empty() {
                return;
            }
            // Bootstrap like the sequential path: the first node becomes the
            // entry with no out-links; later nodes back-link into it.
            let boot = work.remove(0);
            self.entry = Some((boot, self.levels[boot as usize]));
        }
        if work.is_empty() {
            return;
        }
        let locked: Vec<Mutex<Vec<Vec<u32>>>> = std::mem::take(&mut self.links)
            .into_iter()
            .map(Mutex::new)
            .collect();
        let entry_lock = RwLock::new(self.entry.expect("entry bootstrapped above"));
        let this = &*self;
        let pool = tv_common::pool::global();
        pool.run(work.clone(), threads, |slot| {
            this.link_one_locked(slot, &locked, &entry_lock);
        });
        // Refinement pass: two nodes linked concurrently are blind to each
        // other (neither had links when the other's beam ran), which costs
        // a fraction of a percent of recall versus sequential build. One
        // level-0 re-search per fresh node over the now-complete graph
        // recovers those missed mutual links and restores recall parity.
        pool.run(work, threads, |slot| {
            this.refine_one_locked(slot, &locked, &entry_lock);
        });
        self.links = locked
            .into_iter()
            .map(|m| m.into_inner().unwrap_or_else(PoisonError::into_inner))
            .collect();
        self.entry = Some(*entry_lock.read().unwrap_or_else(PoisonError::into_inner));
    }

    /// Link one pre-appended node into the locked graph: greedy descent
    /// above its level, beam search + diversity selection per layer, own
    /// list written under its own lock, back-links pushed (and shrunk) under
    /// each neighbor's lock.
    fn link_one_locked(
        &self,
        slot: u32,
        links: &[std::sync::Mutex<Vec<Vec<u32>>>],
        entry: &std::sync::RwLock<(u32, u8)>,
    ) {
        use std::sync::PoisonError;
        let level = self.levels[slot as usize];
        let sc = self.slot_scorer(slot);
        let mut scratch = self.scratch.take();
        let mut stats = SearchStats::default();
        let (mut cur, top) = *entry.read().unwrap_or_else(PoisonError::into_inner);
        for lvl in ((level + 1)..=top).rev() {
            cur = self.greedy_closest_locked(&sc, cur, lvl, links, &mut scratch);
        }
        let mut entry_points = vec![cur];
        for lvl in (0..=level.min(top)).rev() {
            let mut found = self.search_layer_locked(
                &sc,
                &entry_points,
                self.cfg.ef_construction,
                lvl,
                links,
                &mut stats,
                &mut scratch,
            );
            // The node is reachable once a concurrent peer back-links it;
            // never link a node to itself.
            found.retain(|&(_, s)| s != slot);
            let max_deg = if lvl == 0 { self.cfg.m0 } else { self.cfg.m };
            let chosen =
                select_neighbors(&found, self.cfg.m, true, |a, b| self.pair_distance(a, b));
            {
                let mut own = links[slot as usize]
                    .lock()
                    .unwrap_or_else(PoisonError::into_inner);
                own[lvl as usize] = chosen.clone();
            }
            for &nb in &chosen {
                let mut guard = links[nb as usize]
                    .lock()
                    .unwrap_or_else(PoisonError::into_inner);
                let list = &mut guard[lvl as usize];
                if !list.contains(&slot) {
                    list.push(slot);
                    if list.len() > max_deg {
                        let mut dists: Vec<f32> = Vec::new();
                        let sc_nb = self.slot_scorer(nb);
                        self.score_slots(&sc_nb, list, &mut dists);
                        let mut scored: Vec<Scored> =
                            list.iter().zip(&dists).map(|(&c, &dc)| (dc, c)).collect();
                        scored.sort_unstable_by(|a, b| a.0.total_cmp(&b.0));
                        *list = select_neighbors(&scored, max_deg, true, |a, b| {
                            self.pair_distance(a, b)
                        });
                    }
                }
            }
            entry_points = found.iter().map(|&(_, s)| s).collect();
            if entry_points.is_empty() {
                entry_points = vec![cur];
            }
        }
        self.scratch.put(scratch);
        if level > top {
            let mut e = entry.write().unwrap_or_else(PoisonError::into_inner);
            if level > e.1 {
                *e = (slot, level);
            }
        }
    }

    /// Second-pass link refinement for one node (parallel build only):
    /// re-run the level-0 beam on the completed locked graph, merge the
    /// candidates with the node's current list through the diversity
    /// heuristic, and back-link any newly chosen neighbors.
    fn refine_one_locked(
        &self,
        slot: u32,
        links: &[std::sync::Mutex<Vec<Vec<u32>>>],
        entry: &std::sync::RwLock<(u32, u8)>,
    ) {
        use std::sync::PoisonError;
        let sc = self.slot_scorer(slot);
        let mut scratch = self.scratch.take();
        let mut stats = SearchStats::default();
        let (mut cur, top) = *entry.read().unwrap_or_else(PoisonError::into_inner);
        for lvl in (1..=top).rev() {
            cur = self.greedy_closest_locked(&sc, cur, lvl, links, &mut scratch);
        }
        let mut found = self.search_layer_locked(
            &sc,
            &[cur],
            self.cfg.ef_construction,
            0,
            links,
            &mut stats,
            &mut scratch,
        );
        self.scratch.put(scratch);
        found.retain(|&(_, s)| s != slot);
        if found.is_empty() {
            return;
        }
        let own: Vec<u32> = links[slot as usize]
            .lock()
            .unwrap_or_else(PoisonError::into_inner)[0]
            .clone();
        let mut dists: Vec<f32> = Vec::new();
        self.score_slots(&sc, &own, &mut dists);
        for (&nb, &nd) in own.iter().zip(&dists) {
            if !found.iter().any(|&(_, s)| s == nb) {
                found.push((nd, nb));
            }
        }
        found.sort_unstable_by(|a, b| a.0.total_cmp(&b.0).then(a.1.cmp(&b.1)));
        let chosen = select_neighbors(&found, self.cfg.m, true, |a, b| self.pair_distance(a, b));
        let added: Vec<u32> = chosen
            .iter()
            .copied()
            .filter(|nb| !own.contains(nb))
            .collect();
        {
            let mut guard = links[slot as usize]
                .lock()
                .unwrap_or_else(PoisonError::into_inner);
            guard[0] = chosen;
        }
        let max_deg = self.cfg.m0;
        for nb in added {
            let mut guard = links[nb as usize]
                .lock()
                .unwrap_or_else(PoisonError::into_inner);
            let list = &mut guard[0];
            if !list.contains(&slot) {
                list.push(slot);
                if list.len() > max_deg {
                    let mut dists: Vec<f32> = Vec::new();
                    let sc_nb = self.slot_scorer(nb);
                    self.score_slots(&sc_nb, list, &mut dists);
                    let mut scored: Vec<Scored> =
                        list.iter().zip(&dists).map(|(&c, &dc)| (dc, c)).collect();
                    scored.sort_unstable_by(|a, b| a.0.total_cmp(&b.0));
                    *list =
                        select_neighbors(&scored, max_deg, true, |a, b| self.pair_distance(a, b));
                }
            }
        }
    }

    /// [`HnswIndex::greedy_closest`] against per-node-locked adjacency:
    /// each hop copies the current node's list out under its lock (one lock
    /// held at a time), then scores the copy lock-free.
    fn greedy_closest_locked(
        &self,
        sc: &Scorer<'_>,
        start: u32,
        lvl: u8,
        links: &[std::sync::Mutex<Vec<Vec<u32>>>],
        scratch: &mut SearchScratch,
    ) -> u32 {
        use std::sync::PoisonError;
        let mut nbs: Vec<u32> = Vec::new();
        let mut cur = start;
        let mut cur_dist = self.score_slot(sc, cur);
        loop {
            {
                let guard = links[cur as usize]
                    .lock()
                    .unwrap_or_else(PoisonError::into_inner);
                nbs.clear();
                if let Some(l) = guard.get(lvl as usize) {
                    nbs.extend_from_slice(l);
                }
            }
            self.score_slots(sc, &nbs, &mut scratch.dists);
            let mut improved = false;
            for (&nb, &nd) in nbs.iter().zip(&scratch.dists) {
                if nd < cur_dist {
                    cur = nb;
                    cur_dist = nd;
                    improved = true;
                }
            }
            if !improved {
                return cur;
            }
        }
    }

    /// [`HnswIndex::search_layer`] against per-node-locked adjacency; same
    /// beam/admission logic, neighbor lists copied out under their lock.
    #[allow(clippy::too_many_arguments)]
    fn search_layer_locked(
        &self,
        sc: &Scorer<'_>,
        entries: &[u32],
        ef: usize,
        lvl: u8,
        links: &[std::sync::Mutex<Vec<Vec<u32>>>],
        stats: &mut SearchStats,
        scratch: &mut SearchScratch,
    ) -> Vec<Scored> {
        use std::sync::PoisonError;
        scratch.begin(self.keys.len());
        let mut frontier: BinaryHeap<Reverse<(OrdF32, u32)>> = BinaryHeap::new();
        let mut best: BinaryHeap<(OrdF32, u32)> = BinaryHeap::new();
        let mut nbs: Vec<u32> = Vec::new();

        scratch.batch.clear();
        for &e in entries {
            if scratch.visit(e) {
                scratch.batch.push(e);
            }
        }
        self.score_slots(sc, &scratch.batch, &mut scratch.dists);
        stats.distance_computations += scratch.batch.len() as u64;
        for (&e, &de) in scratch.batch.iter().zip(&scratch.dists) {
            frontier.push(Reverse((OrdF32(de), e)));
            best.push((OrdF32(de), e));
            if best.len() > ef {
                best.pop();
            }
        }

        while let Some(Reverse((OrdF32(d), node))) = frontier.pop() {
            let bound = best.peek().map_or(f32::INFINITY, |&(OrdF32(b), _)| b);
            if d > bound && best.len() >= ef {
                break;
            }
            {
                let guard = links[node as usize]
                    .lock()
                    .unwrap_or_else(PoisonError::into_inner);
                nbs.clear();
                if let Some(l) = guard.get(lvl as usize) {
                    nbs.extend_from_slice(l);
                }
            }
            scratch.batch.clear();
            for &nb in &nbs {
                if scratch.visit(nb) {
                    scratch.batch.push(nb);
                }
            }
            self.score_slots(sc, &scratch.batch, &mut scratch.dists);
            stats.hops += scratch.batch.len() as u64;
            stats.distance_computations += scratch.batch.len() as u64;
            for (&nb, &nd) in scratch.batch.iter().zip(&scratch.dists) {
                let bound = best.peek().map_or(f32::INFINITY, |&(OrdF32(b), _)| b);
                if nd < bound || best.len() < ef {
                    frontier.push(Reverse((OrdF32(nd), nb)));
                    best.push((OrdF32(nd), nb));
                    if best.len() > ef {
                        best.pop();
                    }
                }
            }
        }

        let mut out: Vec<Scored> = best.into_iter().map(|(OrdF32(d), s)| (d, s)).collect();
        out.sort_unstable_by(|a, b| a.0.total_cmp(&b.0).then(a.1.cmp(&b.1)));
        out
    }

    /// [`VectorIndex::update_items`] with optional parallel linking of the
    /// fresh appends. Duplicate-key records, deletes, and upserts of live
    /// keys apply sequentially first (in record order); single-occurrence
    /// upserts of fresh keys then link concurrently. `threads <= 1` is the
    /// plain sequential path, bit-identical to [`VectorIndex::update_items`].
    pub fn update_items_with(
        &mut self,
        records: &[DeltaRecord],
        threads: usize,
    ) -> TvResult<usize> {
        self.ensure_mutable();
        if threads <= 1 || records.len() <= 1 {
            return self.update_items(records);
        }
        for rec in records {
            if rec.action == DeltaAction::Upsert && rec.vector.len() != self.cfg.dim {
                return Err(TvError::DimensionMismatch {
                    expected: self.cfg.dim,
                    got: rec.vector.len(),
                });
            }
        }
        let mut count: HashMap<VertexId, usize> = HashMap::with_capacity(records.len());
        for rec in records {
            *count.entry(rec.id).or_insert(0) += 1;
        }
        let mut fresh: Vec<(VertexId, &[f32])> = Vec::new();
        let mut applied = 0;
        for rec in records {
            let is_fresh = rec.action == DeltaAction::Upsert
                && count[&rec.id] == 1
                && !self.slot_of.contains_key(&rec.id);
            if is_fresh {
                fresh.push((rec.id, rec.vector.as_slice()));
                continue;
            }
            match rec.action {
                DeltaAction::Upsert => {
                    self.insert(rec.id, &rec.vector)?;
                    applied += 1;
                }
                DeltaAction::Delete => {
                    self.remove(rec.id);
                    applied += 1;
                }
            }
        }
        applied += fresh.len();
        self.parallel_insert_fresh(&fresh, threads);
        Ok(applied)
    }

    /// Greedy walk to the locally-closest node on one layer (the ef=1 upper-
    /// layer descent of the HNSW search). Each hop scores the node's whole
    /// neighbor list in one batched kernel call.
    fn greedy_closest(
        &self,
        sc: &Scorer<'_>,
        start: u32,
        lvl: u8,
        stats: &mut SearchStats,
        scratch: &mut SearchScratch,
    ) -> u32 {
        let prefetch = self.packed.as_ref().is_some_and(|p| p.prefetch);
        let k = kernels::active();
        let mut cur = start;
        let mut cur_dist = self.score_slot(sc, cur);
        stats.distance_computations += 1;
        loop {
            let nbs = self.neighbors(cur, lvl);
            if prefetch {
                // Warm the hop's leading rows in full; the scorer's own
                // schedule requests the rest two rows ahead of use.
                for (i, &nb) in nbs.iter().enumerate() {
                    self.prefetch_slot(k, nb, i < 2);
                }
            }
            self.score_slots_pf(sc, nbs, &mut scratch.dists, prefetch);
            stats.distance_computations += nbs.len() as u64;
            stats.hops += nbs.len() as u64;
            let mut improved = false;
            for (&nb, &nd) in nbs.iter().zip(&scratch.dists) {
                if nd < cur_dist {
                    cur = nb;
                    cur_dist = nd;
                    improved = true;
                }
            }
            if !improved {
                return cur;
            }
        }
    }

    /// Beam search on one layer. Returns up to `ef` candidates sorted by
    /// ascending distance. Deleted nodes participate in navigation and in
    /// the returned candidate list (construction links through them), so
    /// callers that produce user-visible results must filter afterwards.
    fn search_layer(
        &self,
        sc: &Scorer<'_>,
        entries: &[u32],
        ef: usize,
        lvl: u8,
        stats: &mut SearchStats,
        scratch: &mut SearchScratch,
    ) -> Vec<Scored> {
        // Pooled visited set: one epoch bump instead of an O(n) alloc +
        // memset per call. Visit order and admission logic are unchanged,
        // so results are bit-identical to the fresh-alloc path.
        scratch.begin(self.keys.len());
        let pf_graph = self.packed.as_ref().filter(|p| p.prefetch);
        let kern = kernels::active();
        // Min-heap of frontier candidates; max-heap (via NeighborHeap-like
        // bound) of the best `ef` found.
        let mut frontier: BinaryHeap<Reverse<(OrdF32, u32)>> = BinaryHeap::new();
        let mut best: BinaryHeap<(OrdF32, u32)> = BinaryHeap::new();

        // Batched scoring: the unvisited neighbors of one node, scored in a
        // single kernel call. Distances don't depend on heap state, so
        // admission order — and therefore results — match the
        // one-at-a-time loop exactly.
        scratch.batch.clear();
        for &e in entries {
            if scratch.visit(e) {
                scratch.batch.push(e);
            }
        }
        self.score_slots_pf(sc, &scratch.batch, &mut scratch.dists, pf_graph.is_some());
        stats.distance_computations += scratch.batch.len() as u64;
        for (&e, &de) in scratch.batch.iter().zip(&scratch.dists) {
            frontier.push(Reverse((OrdF32(de), e)));
            best.push((OrdF32(de), e));
            if best.len() > ef {
                best.pop();
            }
        }

        while let Some(Reverse((OrdF32(d), node))) = frontier.pop() {
            let bound = best.peek().map_or(f32::INFINITY, |&(OrdF32(b), _)| b);
            if d > bound && best.len() >= ef {
                break;
            }
            scratch.batch.clear();
            for &nb in self.neighbors(node, lvl) {
                if scratch.visit(nb) {
                    // Warm the batch's first rows in full — the scorer hits
                    // them before its own two-ahead schedule ramps up — and
                    // later rows' heads, plus (on the base layer) the
                    // candidate's adjacency row.
                    if let Some(p) = pf_graph {
                        self.prefetch_slot(kern, nb, scratch.batch.len() < 2);
                        if lvl == 0 {
                            p.prefetch_l0_row(kern, nb);
                        }
                    }
                    scratch.batch.push(nb);
                }
            }
            self.score_slots_pf(sc, &scratch.batch, &mut scratch.dists, pf_graph.is_some());
            stats.hops += scratch.batch.len() as u64;
            stats.distance_computations += scratch.batch.len() as u64;
            for (&nb, &nd) in scratch.batch.iter().zip(&scratch.dists) {
                let bound = best.peek().map_or(f32::INFINITY, |&(OrdF32(b), _)| b);
                if nd < bound || best.len() < ef {
                    frontier.push(Reverse((OrdF32(nd), nb)));
                    best.push((OrdF32(nd), nb));
                    if best.len() > ef {
                        best.pop();
                    }
                }
            }
        }

        let mut out: Vec<Scored> = best.into_iter().map(|(OrdF32(d), s)| (d, s)).collect();
        out.sort_unstable_by(|a, b| a.0.total_cmp(&b.0).then(a.1.cmp(&b.1)));
        out
    }

    /// Layer-0 beam search that only admits *valid* (live + filter-passing)
    /// points into the result set, while still navigating through invalid
    /// ones — the filter-function semantics the paper passes to the index so
    /// "a single call to the vector index returns the valid top-k" (§5.1).
    fn search_layer0_filtered(
        &self,
        sc: &Scorer<'_>,
        entries: &[u32],
        ef: usize,
        filter: Filter<'_>,
        stats: &mut SearchStats,
        scratch: &mut SearchScratch,
    ) -> Vec<Scored> {
        scratch.begin(self.keys.len());
        let pf_graph = self.packed.as_ref().filter(|p| p.prefetch);
        let kern = kernels::active();
        let mut frontier: BinaryHeap<Reverse<(OrdF32, u32)>> = BinaryHeap::new();
        let mut best: BinaryHeap<(OrdF32, u32)> = BinaryHeap::new();

        // Deleted slots and filter rejections are counted separately: the
        // planner's selectivity feedback needs filter pressure, not
        // tombstone density (which `live_fraction` already tracks).
        let accepts = |slot: u32, stats: &mut SearchStats| -> bool {
            if self.deleted[slot as usize] {
                stats.deleted_skipped += 1;
                return false;
            }
            if !filter.accepts(self.keys[slot as usize].local().0 as usize) {
                stats.filtered_out += 1;
                return false;
            }
            true
        };

        scratch.batch.clear();
        for &e in entries {
            if scratch.visit(e) {
                scratch.batch.push(e);
            }
        }
        self.score_slots_pf(sc, &scratch.batch, &mut scratch.dists, pf_graph.is_some());
        stats.distance_computations += scratch.batch.len() as u64;
        for (&e, &de) in scratch.batch.iter().zip(&scratch.dists) {
            frontier.push(Reverse((OrdF32(de), e)));
            if accepts(e, stats) {
                best.push((OrdF32(de), e));
                if best.len() > ef {
                    best.pop();
                }
            }
        }

        while let Some(Reverse((OrdF32(d), node))) = frontier.pop() {
            let bound = best.peek().map_or(f32::INFINITY, |&(OrdF32(b), _)| b);
            if d > bound && best.len() >= ef {
                break;
            }
            scratch.batch.clear();
            for &nb in self.neighbors(node, 0) {
                if scratch.visit(nb) {
                    if let Some(p) = pf_graph {
                        self.prefetch_slot(kern, nb, scratch.batch.len() < 2);
                        p.prefetch_l0_row(kern, nb);
                    }
                    scratch.batch.push(nb);
                }
            }
            self.score_slots_pf(sc, &scratch.batch, &mut scratch.dists, pf_graph.is_some());
            stats.hops += scratch.batch.len() as u64;
            stats.distance_computations += scratch.batch.len() as u64;
            for (&nb, &nd) in scratch.batch.iter().zip(&scratch.dists) {
                let bound = best.peek().map_or(f32::INFINITY, |&(OrdF32(b), _)| b);
                if nd < bound || best.len() < ef {
                    frontier.push(Reverse((OrdF32(nd), nb)));
                    if accepts(nb, stats) {
                        best.push((OrdF32(nd), nb));
                        if best.len() > ef {
                            best.pop();
                        }
                    }
                }
            }
        }

        let mut out: Vec<Scored> = best.into_iter().map(|(OrdF32(d), s)| (d, s)).collect();
        out.sort_unstable_by(|a, b| a.0.total_cmp(&b.0).then(a.1.cmp(&b.1)));
        out
    }

    /// How many candidates the approximate stage must surface for a final
    /// top-`k`: `rerank_factor × k` when an exact-rerank pass will follow
    /// (retained f32 arena, or the SQ8 side store backing a PQ tier),
    /// otherwise just `k`.
    fn fetch_count(&self, k: usize) -> usize {
        match &self.quant {
            Some(q) if q.spec.keep_f32 || q.rerank.is_some() => {
                k.saturating_mul(q.spec.rerank_factor.max(1))
            }
            _ => k,
        }
    }

    /// Exact-rerank stage: rescore the approximate candidates against the
    /// most precise representation available (retained f32, else the SQ8
    /// side store), then keep the best `k`. Pass-through when the index is
    /// unquantized or codes are already the best representation.
    fn rerank_and_take(
        &self,
        query: &[f32],
        found: Vec<Scored>,
        k: usize,
        stats: &mut SearchStats,
    ) -> Vec<Neighbor> {
        let quant = match &self.quant {
            Some(q) if q.spec.keep_f32 || q.rerank.is_some() => q,
            _ => {
                return found
                    .into_iter()
                    .take(k)
                    .map(|(d, s)| Neighbor::new(self.keys[s as usize], d))
                    .collect();
            }
        };
        let slots: Vec<u32> = found.iter().map(|&(_, s)| s).collect();
        let mut dists: Vec<f32> = Vec::new();
        if quant.spec.keep_f32 {
            let pq = PreparedQuery::new(self.cfg.metric, query);
            pq.distance_slots(&self.vectors, self.cfg.dim, &self.norms, &slots, &mut dists);
        } else {
            let r = quant.rerank.as_ref().expect("checked above");
            let qq = QuantQuery::new(&r.codec, self.cfg.metric, query);
            qq.score_slots(&r.codes, &r.recon_norms, &slots, &mut dists);
        }
        stats.distance_computations += slots.len() as u64;
        stats.reranked += slots.len() as u64;
        let mut rescored: Vec<Scored> = slots.iter().zip(&dists).map(|(&s, &d)| (d, s)).collect();
        rescored.sort_unstable_by(|a, b| a.0.total_cmp(&b.0).then(a.1.cmp(&b.1)));
        rescored
            .into_iter()
            .take(k)
            .map(|(d, s)| Neighbor::new(self.keys[s as usize], d))
            .collect()
    }

    /// Exact linear scan over live, filter-passing entries — the planner's
    /// fallback when too few points are valid for graph search to pay off.
    /// On quantized tiers the scan scores codes and the exact-rerank stage
    /// re-scores the shortlist, same as graph search.
    pub fn brute_force_top_k(
        &self,
        query: &[f32],
        k: usize,
        filter: Filter<'_>,
    ) -> (Vec<Neighbor>, SearchStats) {
        let mut stats = SearchStats {
            brute_force: true,
            ..SearchStats::default()
        };
        // Gather accepted slots first, then score the whole set in batched
        // kernel calls — the filter pass touches no vector data.
        let mut accepted: Vec<u32> = Vec::new();
        for (slot, &key) in self.keys.iter().enumerate() {
            if self.deleted[slot] {
                stats.deleted_skipped += 1;
                continue;
            }
            if !filter.accepts(key.local().0 as usize) {
                stats.filtered_out += 1;
                continue;
            }
            accepted.push(slot as u32);
        }
        let sc = self.scorer(query);
        let mut dists: Vec<f32> = Vec::new();
        self.score_slots(&sc, &accepted, &mut dists);
        stats.distance_computations += accepted.len() as u64;
        // Keep only the `fetch` best before the (possibly exact-rerank)
        // final stage; a bounded max-heap caps memory at O(fetch).
        let fetch = self.fetch_count(k);
        let mut heap: BinaryHeap<(OrdF32, u32)> = BinaryHeap::new();
        for (&slot, &d) in accepted.iter().zip(&dists) {
            heap.push((OrdF32(d), slot));
            if heap.len() > fetch {
                heap.pop();
            }
        }
        let mut found: Vec<Scored> = heap.into_iter().map(|(OrdF32(d), s)| (d, s)).collect();
        found.sort_unstable_by(|a, b| a.0.total_cmp(&b.0).then(a.1.cmp(&b.1)));
        let out = self.rerank_and_take(query, found, k, &mut stats);
        (out, stats)
    }

    /// Fraction of live points among all slots; used with the valid-point
    /// threshold to pick brute force vs. index search.
    #[must_use]
    pub fn live_fraction(&self) -> f64 {
        if self.keys.is_empty() {
            1.0
        } else {
            1.0 - self.deleted_count as f64 / self.keys.len() as f64
        }
    }

    /// True cardinality of the valid set under `filter`: live points whose
    /// local id the filter accepts (filter bitmap ∩ live occupancy). This is
    /// the planner's selectivity input; unlike the filter bitmap's raw
    /// popcount it excludes deleted and never-inserted ids.
    #[must_use]
    pub fn valid_live_count(&self, filter: Filter<'_>) -> usize {
        match filter {
            Filter::All => self.len(),
            Filter::Valid(b) => self.live_mask.intersection_count(b),
        }
    }

    /// Post-filter strategy: run an *unfiltered* layer-0 beam widened to
    /// `fetch_ef`, then drop results the filter rejects. Cheaper than
    /// in-traversal filtering when most points are valid — the beam skips
    /// the per-candidate bitmap probe and the enlargement stays small.
    pub fn post_filter_top_k(
        &self,
        query: &[f32],
        k: usize,
        fetch_ef: usize,
        filter: Filter<'_>,
    ) -> (Vec<Neighbor>, SearchStats) {
        let mut stats = SearchStats::default();
        if k == 0 || query.len() != self.cfg.dim {
            return (Vec::new(), stats);
        }
        let Some((entry, top)) = self.entry else {
            return (Vec::new(), stats);
        };
        let fetch = self.fetch_count(k);
        let beam = fetch_ef.max(fetch);
        if self.packed.is_some() {
            stats.packed_searches += 1;
        }
        let sc = self.scorer(query);
        let mut scratch = self.scratch.take();
        let mut cur = entry;
        for lvl in (1..=top).rev() {
            cur = self.greedy_closest(&sc, cur, lvl, &mut stats, &mut scratch);
        }
        let found =
            self.search_layer0_filtered(&sc, &[cur], beam, Filter::All, &mut stats, &mut scratch);
        self.scratch.put(scratch);
        let mut valid: Vec<Scored> = Vec::with_capacity(found.len());
        for (d, slot) in found {
            if filter.accepts(self.keys[slot as usize].local().0 as usize) {
                valid.push((d, slot));
            } else {
                stats.filtered_out += 1;
            }
        }
        valid.truncate(fetch);
        let out = self.rerank_and_take(query, valid, k, &mut stats);
        (out, stats)
    }

    /// Planner-routed filtered top-k (the per-query cost-based routing of
    /// the NaviX-style planner; see [`crate::planner`]):
    ///
    /// 1. estimate the true valid-live cardinality under `filter`;
    /// 2. choose brute force / in-traversal filtering / post-filter with
    ///    enlarged `ef`;
    /// 3. if a graph strategy returns fewer than `min(k, valid_live)`
    ///    results (a starved beam, *not* set exhaustion), escalate: double
    ///    `ef` up to `cfg.max_ef`, then fall back to an exact scan.
    ///
    /// The starvation fallback makes the result count exact: the search
    /// returns `min(k, valid_live)` results whenever any exist, so a short
    /// result honestly signals an exhausted valid set.
    pub fn search_planned(
        &self,
        query: &[f32],
        k: usize,
        ef: usize,
        filter: Filter<'_>,
        cfg: &PlannerConfig,
    ) -> (Vec<Neighbor>, SearchStats) {
        let mut stats = SearchStats::default();
        if k == 0 || query.len() != self.cfg.dim {
            return (Vec::new(), stats);
        }
        let valid_live = self.valid_live_count(filter);
        let plan = planner::choose(
            cfg,
            PlanInputs {
                valid_live,
                live_total: self.len(),
                k,
                ef,
            },
        );
        let (mut results, mut used_ef) = match plan {
            PlanChoice::Empty => return (Vec::new(), stats),
            PlanChoice::BruteForce => {
                stats.plans_brute += 1;
                let (r, s) = self.brute_force_top_k(query, k, filter);
                stats.merge(&s);
                return (r, stats);
            }
            PlanChoice::InTraversal { ef } => {
                stats.plans_in_traversal += 1;
                let (r, s) = self.top_k(query, k, ef, filter);
                stats.merge(&s);
                (r, ef)
            }
            PlanChoice::PostFilter { fetch_ef } => {
                stats.plans_post_filter += 1;
                let (r, s) = self.post_filter_top_k(query, k, fetch_ef, filter);
                stats.merge(&s);
                (r, fetch_ef)
            }
        };
        let target = k.min(valid_live);
        if results.len() >= target || !cfg.enabled {
            return (results, stats);
        }
        // Starved beam: valid points exist that the graph search did not
        // surface. Escalate with a widening in-traversal beam, then give up
        // on the graph entirely (disconnected or unreachable valid points).
        while used_ef < cfg.max_ef {
            used_ef = used_ef.saturating_mul(2).min(cfg.max_ef);
            stats.ef_escalations += 1;
            let (r, s) = self.top_k(query, k, used_ef, filter);
            stats.merge(&s);
            results = r;
            if results.len() >= target {
                return (results, stats);
            }
        }
        stats.brute_fallbacks += 1;
        let (r, s) = self.brute_force_top_k(query, k, filter);
        stats.merge(&s);
        (r, stats)
    }

    /// Planner-routed range search. Fixes the starvation bug in the naive
    /// doubling loop: a filtered beam returning fewer than `k` results is a
    /// *starved beam*, not proof the valid set is exhausted — treating it as
    /// exhaustion silently drops in-range points under selective filters.
    /// Exhaustion is instead detected against the true valid-live count, and
    /// once the doubling `k` covers the whole valid set the scan finishes
    /// exactly.
    pub fn range_search_planned(
        &self,
        query: &[f32],
        threshold: f32,
        ef: usize,
        filter: Filter<'_>,
        cfg: &PlannerConfig,
    ) -> (Vec<Neighbor>, SearchStats) {
        let mut stats = SearchStats::default();
        if query.len() != self.cfg.dim {
            return (Vec::new(), stats);
        }
        let valid_live = self.valid_live_count(filter);
        if valid_live == 0 {
            return (Vec::new(), stats);
        }
        let mut k = 16usize;
        loop {
            if k >= valid_live {
                // The doubling k now covers every valid point: finish with
                // an exact scan instead of trusting a possibly-starved beam.
                let (results, s) = self.brute_force_top_k(query, valid_live, filter);
                stats.merge(&s);
                let out = results
                    .into_iter()
                    .filter(|n| n.dist <= threshold)
                    .collect();
                return (out, stats);
            }
            let (results, s) = self.search_planned(query, k, ef.max(k), filter, cfg);
            stats.merge(&s);
            let median = if results.is_empty() {
                f32::NEG_INFINITY
            } else {
                results[results.len() / 2].dist
            };
            // At least half the beam already lies outside the range: the
            // in-range set is fully covered (DiskANN's stopping rule).
            if !results.is_empty() && threshold < median {
                let out = results
                    .into_iter()
                    .filter(|n| n.dist <= threshold)
                    .collect();
                return (out, stats);
            }
            k = k.saturating_mul(2);
        }
    }
}

impl VectorIndex for HnswIndex {
    fn dim(&self) -> usize {
        self.cfg.dim
    }

    fn metric(&self) -> DistanceMetric {
        self.cfg.metric
    }

    fn len(&self) -> usize {
        self.keys.len() - self.deleted_count
    }

    fn get_embedding(&self, id: VertexId) -> Option<Vec<f32>> {
        let &slot = self.slot_of.get(&id)?;
        if self.deleted[slot as usize] {
            None
        } else {
            Some(self.materialize(slot))
        }
    }

    fn top_k(
        &self,
        query: &[f32],
        k: usize,
        ef: usize,
        filter: Filter<'_>,
    ) -> (Vec<Neighbor>, SearchStats) {
        let mut stats = SearchStats::default();
        if k == 0 || query.len() != self.cfg.dim {
            return (Vec::new(), stats);
        }
        let Some((entry, top)) = self.entry else {
            return (Vec::new(), stats);
        };
        // The beam must surface enough candidates for the exact-rerank
        // stage (rerank_factor × k on quantized tiers).
        let fetch = self.fetch_count(k);
        let ef = ef.max(fetch);
        if self.packed.is_some() {
            stats.packed_searches += 1;
        }
        // One norm pass (f32) or one LUT build (quantized) for the whole
        // search; every candidate after this scores against cached state.
        let sc = self.scorer(query);
        let mut scratch = self.scratch.take();
        let mut cur = entry;
        for lvl in (1..=top).rev() {
            cur = self.greedy_closest(&sc, cur, lvl, &mut stats, &mut scratch);
        }
        let mut found =
            self.search_layer0_filtered(&sc, &[cur], ef, filter, &mut stats, &mut scratch);
        self.scratch.put(scratch);
        found.truncate(fetch);
        let out = self.rerank_and_take(query, found, k, &mut stats);
        (out, stats)
    }

    fn range_search(
        &self,
        query: &[f32],
        threshold: f32,
        ef: usize,
        filter: Filter<'_>,
    ) -> (Vec<Neighbor>, SearchStats) {
        // DiskANN-style adaptation (§4.4): repeat TopKSearch with doubling k
        // until the threshold is smaller than the median returned distance
        // (i.e. at least half the beam already lies outside the range) or
        // the whole valid set has been fetched. Routed through the planner
        // so a starved filtered beam is escalated instead of being mistaken
        // for set exhaustion.
        self.range_search_planned(query, threshold, ef, filter, &PlannerConfig::default())
    }

    fn update_items(&mut self, records: &[DeltaRecord]) -> TvResult<usize> {
        let mut applied = 0;
        for rec in records {
            match rec.action {
                DeltaAction::Upsert => {
                    self.insert(rec.id, &rec.vector)?;
                    applied += 1;
                }
                DeltaAction::Delete => {
                    self.remove(rec.id);
                    applied += 1;
                }
            }
        }
        Ok(applied)
    }

    fn scan(&self) -> Box<dyn Iterator<Item = (VertexId, Vec<f32>)> + '_> {
        Box::new(
            self.keys
                .iter()
                .enumerate()
                .filter(move |&(slot, key)| {
                    !self.deleted[slot] && self.slot_of.get(key) == Some(&(slot as u32))
                })
                .map(move |(slot, &key)| (key, self.materialize(slot as u32))),
        )
    }

    fn memory_bytes(&self) -> usize {
        HnswIndex::memory_bytes(self)
    }

    fn storage_tier(&self) -> StorageTier {
        HnswIndex::storage_tier(self)
    }
}

/// Total-ordered f32 wrapper for heap use (NaN sorts greatest).
#[derive(Debug, Clone, Copy, PartialEq)]
pub(crate) struct OrdF32(pub f32);

impl Eq for OrdF32 {}
impl PartialOrd for OrdF32 {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for OrdF32 {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.0.total_cmp(&other.0)
    }
}

// Internal accessors for snapshot serialization.
impl HnswIndex {
    #[allow(clippy::type_complexity)]
    pub(crate) fn parts(
        &self,
    ) -> (
        &HnswConfig,
        &[f32],
        &[VertexId],
        &[Vec<Vec<u32>>],
        &[u8],
        &[bool],
        Option<(u32, u8)>,
    ) {
        (
            &self.cfg,
            &self.vectors,
            &self.keys,
            &self.links,
            &self.levels,
            &self.deleted,
            self.entry,
        )
    }

    /// Quantized-tier state, if any (snapshot writer access).
    pub(crate) fn quant(&self) -> Option<&QuantState> {
        self.quant.as_ref()
    }

    #[allow(clippy::too_many_arguments)]
    pub(crate) fn from_parts(
        cfg: HnswConfig,
        vectors: Vec<f32>,
        keys: Vec<VertexId>,
        links: Vec<Vec<Vec<u32>>>,
        levels: Vec<u8>,
        deleted: Vec<bool>,
        entry: Option<(u32, u8)>,
        quant: Option<QuantState>,
    ) -> TvResult<Self> {
        let n = keys.len();
        // A codes-only quantized snapshot legitimately carries no f32 arena.
        let codes_only = vectors.is_empty() && quant.as_ref().is_some_and(|q| !q.spec.keep_f32);
        if (vectors.len() != n * cfg.dim && !codes_only)
            || links.len() != n
            || levels.len() != n
            || deleted.len() != n
        {
            return Err(TvError::Storage("inconsistent snapshot parts".into()));
        }
        if let Some(q) = &quant {
            let cl = q.codec.code_len();
            if q.codes.len() != n * cl {
                return Err(TvError::Storage("inconsistent quant codes".into()));
            }
            if !q.recon_norms.is_empty() && q.recon_norms.len() != n {
                return Err(TvError::Storage("inconsistent quant norms".into()));
            }
            if let Some(r) = &q.rerank {
                if r.codes.len() != n * r.codec.code_len()
                    || (!r.recon_norms.is_empty() && r.recon_norms.len() != n)
                {
                    return Err(TvError::Storage("inconsistent rerank store".into()));
                }
            }
        }
        let mut slot_of = HashMap::with_capacity(n);
        let mut deleted_count = 0;
        let mut live_mask = Bitmap::new(0);
        for (slot, (&key, &dead)) in keys.iter().zip(&deleted).enumerate() {
            if dead {
                deleted_count += 1;
            } else {
                slot_of.insert(key, slot as u32);
                let local = key.local().0 as usize;
                live_mask.grow(local + 1);
                live_mask.set(local, true);
            }
        }
        // The snapshot format carries no norms; rebuild the cache in one
        // pass over the arena (cheaper than persisting and keeps old
        // snapshots readable). Codes-only tiers keep no arena norms.
        let k = kernels::active();
        let norms = if vectors.is_empty() {
            Vec::new()
        } else {
            (0..n)
                .map(|s| k.norm_sq(&vectors[s * cfg.dim..(s + 1) * cfg.dim]).sqrt())
                .collect()
        };
        Ok(HnswIndex {
            cfg,
            vectors,
            norms,
            keys,
            slot_of,
            links,
            levels,
            deleted,
            deleted_count,
            live_mask,
            entry,
            packed: None,
            scratch: ScratchPool::default(),
            quant,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tv_common::ids::{LocalId, SegmentId};
    use tv_common::Bitmap;

    fn key(i: u32) -> VertexId {
        VertexId::new(SegmentId(0), LocalId(i))
    }

    /// Deterministic clustered test vectors.
    fn make_vectors(n: usize, dim: usize, seed: u64) -> Vec<Vec<f32>> {
        let mut rng = SplitMix64::new(seed);
        (0..n)
            .map(|_| (0..dim).map(|_| rng.next_f32() * 10.0).collect())
            .collect()
    }

    fn build_index(vecs: &[Vec<f32>]) -> HnswIndex {
        let mut idx = HnswIndex::new(HnswConfig::new(vecs[0].len(), DistanceMetric::L2));
        for (i, v) in vecs.iter().enumerate() {
            idx.insert(key(i as u32), v).unwrap();
        }
        idx
    }

    fn exact_top_k(vecs: &[Vec<f32>], q: &[f32], k: usize) -> Vec<u32> {
        let mut scored: Vec<(f32, u32)> = vecs
            .iter()
            .enumerate()
            .map(|(i, v)| (tv_common::metric::l2_sq(q, v), i as u32))
            .collect();
        scored.sort_by(|a, b| a.0.total_cmp(&b.0));
        scored.into_iter().take(k).map(|(_, i)| i).collect()
    }

    #[test]
    fn empty_index_returns_nothing() {
        let idx = HnswIndex::new(HnswConfig::new(4, DistanceMetric::L2));
        let (r, _) = idx.top_k(&[0.0; 4], 5, 50, Filter::All);
        assert!(r.is_empty());
        assert_eq!(idx.len(), 0);
        assert!(idx.is_empty());
    }

    #[test]
    fn single_point() {
        let mut idx = HnswIndex::new(HnswConfig::new(2, DistanceMetric::L2));
        idx.insert(key(0), &[1.0, 2.0]).unwrap();
        let (r, _) = idx.top_k(&[1.0, 2.0], 1, 10, Filter::All);
        assert_eq!(r.len(), 1);
        assert_eq!(r[0].id, key(0));
        assert!(r[0].dist < 1e-6);
    }

    #[test]
    fn insert_rejects_wrong_dimension() {
        let mut idx = HnswIndex::new(HnswConfig::new(4, DistanceMetric::L2));
        let err = idx.insert(key(0), &[1.0, 2.0]).unwrap_err();
        assert!(matches!(
            err,
            TvError::DimensionMismatch {
                expected: 4,
                got: 2
            }
        ));
    }

    #[test]
    fn recall_at_10_is_high() {
        let vecs = make_vectors(2000, 16, 7);
        let idx = build_index(&vecs);
        let queries = make_vectors(20, 16, 99);
        let mut hits = 0;
        let mut total = 0;
        for q in &queries {
            let exact = exact_top_k(&vecs, q, 10);
            let (approx, _) = idx.top_k(q, 10, 100, Filter::All);
            let got: Vec<u32> = approx.iter().map(|n| n.id.local().0).collect();
            total += exact.len();
            hits += exact.iter().filter(|e| got.contains(e)).count();
        }
        let recall = hits as f64 / total as f64;
        assert!(recall > 0.9, "recall {recall}");
    }

    #[test]
    fn higher_ef_does_not_reduce_quality() {
        let vecs = make_vectors(1000, 8, 3);
        let idx = build_index(&vecs);
        let q = &vecs[123];
        let (lo, _) = idx.top_k(q, 10, 10, Filter::All);
        let (hi, _) = idx.top_k(q, 10, 200, Filter::All);
        // Sum of distances with larger beam must be <= with smaller beam.
        let sum = |v: &Vec<Neighbor>| v.iter().map(|n| n.dist as f64).sum::<f64>();
        assert!(sum(&hi) <= sum(&lo) + 1e-6);
    }

    #[test]
    fn delete_excludes_from_results() {
        let vecs = make_vectors(200, 8, 5);
        let mut idx = build_index(&vecs);
        let q = vecs[0].clone();
        let (before, _) = idx.top_k(&q, 1, 50, Filter::All);
        assert_eq!(before[0].id, key(0));
        assert!(idx.remove(key(0)));
        let (after, _) = idx.top_k(&q, 1, 50, Filter::All);
        assert_ne!(after[0].id, key(0));
        assert_eq!(idx.len(), 199);
        assert!(idx.get_embedding(key(0)).is_none());
        // Double-remove reports false.
        assert!(!idx.remove(key(0)));
    }

    #[test]
    fn upsert_replaces_vector() {
        let vecs = make_vectors(100, 4, 11);
        let mut idx = build_index(&vecs);
        let newv = vec![100.0, 100.0, 100.0, 100.0];
        idx.insert(key(5), &newv).unwrap();
        assert_eq!(idx.get_embedding(key(5)).unwrap(), newv.as_slice());
        assert_eq!(idx.len(), 100); // still 100 live
                                    // In-place update: no tombstone, no slot growth.
        assert_eq!(idx.tombstone_count(), 0);
        assert_eq!(idx.slot_count(), 100);
        let (r, _) = idx.top_k(&newv, 1, 50, Filter::All);
        assert_eq!(r[0].id, key(5));
    }

    #[test]
    fn filtered_search_respects_bitmap() {
        let vecs = make_vectors(500, 8, 13);
        let idx = build_index(&vecs);
        // Only even local ids valid.
        let bm = Bitmap::from_indices(500, (0..500).step_by(2));
        let (r, stats) = idx.top_k(&vecs[3], 10, 100, Filter::Valid(&bm));
        assert_eq!(r.len(), 10);
        assert!(r.iter().all(|n| n.id.local().0 % 2 == 0));
        assert!(stats.filtered_out > 0);
    }

    #[test]
    fn filtered_search_with_tiny_valid_set_finds_them() {
        let vecs = make_vectors(500, 8, 17);
        let idx = build_index(&vecs);
        let bm = Bitmap::from_indices(500, [42usize, 99]);
        let (r, _) = idx.top_k(&vecs[0], 10, 400, Filter::Valid(&bm));
        // May find fewer than requested, but only valid ones.
        assert!(!r.is_empty());
        assert!(r
            .iter()
            .all(|n| n.id.local().0 == 42 || n.id.local().0 == 99));
    }

    #[test]
    fn brute_force_matches_exact() {
        let vecs = make_vectors(300, 8, 19);
        let idx = build_index(&vecs);
        let q = &vecs[7];
        let exact = exact_top_k(&vecs, q, 5);
        let (bf, stats) = idx.brute_force_top_k(q, 5, Filter::All);
        let got: Vec<u32> = bf.iter().map(|n| n.id.local().0).collect();
        assert_eq!(got, exact);
        assert!(stats.brute_force);
        assert_eq!(stats.distance_computations, 300);
    }

    #[test]
    fn range_search_returns_only_within_threshold() {
        let vecs = make_vectors(400, 8, 23);
        let idx = build_index(&vecs);
        let q = &vecs[11];
        let threshold = 30.0f32;
        let (r, _) = idx.range_search(q, threshold, 100, Filter::All);
        assert!(r.iter().all(|n| n.dist <= threshold));
        // Compare against exact count (allow small ANN slack).
        let exact = vecs
            .iter()
            .filter(|v| tv_common::metric::l2_sq(q, v) <= threshold)
            .count();
        assert!(
            r.len() as f64 >= exact as f64 * 0.8,
            "range recall too low: {} vs {exact}",
            r.len()
        );
    }

    #[test]
    fn range_search_zero_threshold_finds_self() {
        let vecs = make_vectors(100, 8, 29);
        let idx = build_index(&vecs);
        let (r, _) = idx.range_search(&vecs[5], 1e-9, 50, Filter::All);
        assert!(r.iter().any(|n| n.id == key(5)));
    }

    #[test]
    fn update_items_applies_in_order() {
        let mut idx = HnswIndex::new(HnswConfig::new(2, DistanceMetric::L2));
        let recs = vec![
            DeltaRecord::upsert(key(0), Tid(1), vec![0.0, 0.0]),
            DeltaRecord::upsert(key(1), Tid(2), vec![1.0, 1.0]),
            DeltaRecord::upsert(key(0), Tid(3), vec![5.0, 5.0]), // update
            DeltaRecord::delete(key(1), Tid(4)),
        ];
        let n = idx.update_items(&recs).unwrap();
        assert_eq!(n, 4);
        assert_eq!(idx.len(), 1);
        assert_eq!(idx.get_embedding(key(0)).unwrap(), &[5.0, 5.0]);
        assert!(idx.get_embedding(key(1)).is_none());
    }

    #[test]
    fn scan_yields_live_entries_once() {
        let vecs = make_vectors(50, 4, 31);
        let mut idx = build_index(&vecs);
        idx.insert(key(3), &[9.0, 9.0, 9.0, 9.0]).unwrap(); // upsert
        idx.remove(key(7));
        let entries: Vec<VertexId> = idx.scan().map(|(k, _)| k).collect();
        assert_eq!(entries.len(), 49);
        let mut uniq = entries.clone();
        uniq.sort_unstable();
        uniq.dedup();
        assert_eq!(uniq.len(), 49);
        assert!(!entries.contains(&key(7)));
    }

    #[test]
    fn stats_count_work() {
        let vecs = make_vectors(500, 8, 37);
        let idx = build_index(&vecs);
        let (_, stats) = idx.top_k(&vecs[0], 10, 50, Filter::All);
        assert!(stats.distance_computations > 10);
        assert!(stats.hops > 0);
        assert!(!stats.brute_force);
    }

    #[test]
    fn deterministic_given_seed() {
        let vecs = make_vectors(300, 8, 41);
        let a = build_index(&vecs);
        let b = build_index(&vecs);
        let (ra, _) = a.top_k(&vecs[9], 10, 60, Filter::All);
        let (rb, _) = b.top_k(&vecs[9], 10, 60, Filter::All);
        assert_eq!(
            ra.iter().map(|n| n.id).collect::<Vec<_>>(),
            rb.iter().map(|n| n.id).collect::<Vec<_>>()
        );
    }

    #[test]
    fn cosine_metric_search() {
        let mut idx = HnswIndex::new(HnswConfig::new(3, DistanceMetric::Cosine));
        idx.insert(key(0), &[1.0, 0.0, 0.0]).unwrap();
        idx.insert(key(1), &[0.0, 1.0, 0.0]).unwrap();
        idx.insert(key(2), &[0.9, 0.1, 0.0]).unwrap();
        let (r, _) = idx.top_k(&[1.0, 0.0, 0.0], 2, 10, Filter::All);
        assert_eq!(r[0].id, key(0));
        assert_eq!(r[1].id, key(2));
    }

    #[test]
    fn memory_bytes_grows_with_content() {
        let vecs = make_vectors(100, 16, 43);
        let idx = build_index(&vecs);
        assert!(idx.memory_bytes() >= 100 * 16 * 4);
    }

    #[test]
    fn active_tier_exact_topk_matches_scalar_reference() {
        // Recall-affecting guarantee, tested rather than assumed: the ids an
        // exact scan returns under whatever tier this machine dispatches to
        // must equal the ids computed with the scalar reference kernels.
        use tv_common::kernels::{self, cosine_from_parts, KernelTier};
        let vecs = make_vectors(400, 24, 61);
        let mut idx = HnswIndex::new(HnswConfig::new(24, DistanceMetric::Cosine));
        for (i, v) in vecs.iter().enumerate() {
            idx.insert(key(i as u32), v).unwrap();
        }
        let scalar = kernels::for_tier(KernelTier::Scalar).unwrap();
        for probe in [0usize, 5, 123] {
            let q = &vecs[probe];
            let qn = scalar.norm_sq(q).sqrt();
            let mut scored: Vec<(f32, u32)> = vecs
                .iter()
                .enumerate()
                .map(|(i, v)| {
                    let (d, nn) = scalar.dot_norm_sq(q, v);
                    (cosine_from_parts(d, qn * nn.sqrt()), i as u32)
                })
                .collect();
            scored.sort_by(|a, b| a.0.total_cmp(&b.0));
            let exact: Vec<u32> = scored.into_iter().take(10).map(|(_, i)| i).collect();
            let (bf, _) = idx.brute_force_top_k(q, 10, Filter::All);
            let got: Vec<u32> = bf.iter().map(|n| n.id.local().0).collect();
            assert_eq!(
                got,
                exact,
                "active tier {} disagrees with scalar ranking",
                kernels::active().tier()
            );
        }
    }

    #[test]
    fn memory_bytes_covers_all_resident_structures() {
        let vecs = make_vectors(200, 16, 53);
        let idx = build_index(&vecs);
        use std::mem::size_of;
        // Lower bound from first principles: arena + norm cache + keys +
        // levels + tombstones + link payloads + slot_of entries. If any of
        // these stops being counted, this assertion breaks.
        let link_payload: usize = idx
            .links
            .iter()
            .map(|per_node| {
                per_node
                    .iter()
                    .map(|l| l.len() * size_of::<u32>())
                    .sum::<usize>()
            })
            .sum();
        let floor = idx.vectors.len() * size_of::<f32>()
            + idx.norms.len() * size_of::<f32>()
            + idx.keys.len() * size_of::<VertexId>()
            + idx.levels.len()
            + idx.deleted.len()
            + link_payload
            + idx.slot_of.len() * (size_of::<VertexId>() + size_of::<u32>());
        assert!(
            idx.memory_bytes() >= floor,
            "memory_bytes {} < structural floor {floor}",
            idx.memory_bytes()
        );
        // The norm cache alone must be visible in the accounting: one f32
        // per slot.
        assert_eq!(idx.norms.len(), idx.slot_count());
    }

    #[test]
    fn live_fraction_tracks_deletes() {
        let vecs = make_vectors(100, 4, 47);
        let mut idx = build_index(&vecs);
        assert!((idx.live_fraction() - 1.0).abs() < 1e-9);
        for i in 0..50 {
            idx.remove(key(i));
        }
        assert!((idx.live_fraction() - 0.5).abs() < 1e-9);
    }

    fn recall_against_exact(idx: &HnswIndex, vecs: &[Vec<f32>], queries: &[Vec<f32>]) -> f64 {
        let mut hits = 0;
        for q in queries {
            let exact = exact_top_k(vecs, q, 10);
            let (got, _) = idx.top_k(q, 10, 100, Filter::All);
            hits += exact
                .iter()
                .filter(|e| got.iter().any(|n| n.id.local().0 == **e))
                .count();
        }
        hits as f64 / (queries.len() as f64 * 10.0)
    }

    #[test]
    fn sq8_codes_only_high_recall_and_memory_win() {
        let vecs = make_vectors(600, 32, 11);
        let mut idx = build_index(&vecs);
        let f32_bytes = idx.vector_storage_bytes();
        idx.quantize(QuantSpec::sq8()).unwrap();
        assert_eq!(idx.storage_tier(), StorageTier::Sq8);
        // The acceptance bar: ≤ 0.30× the f32 vector-storage bytes.
        let q_bytes = idx.vector_storage_bytes();
        assert!(
            (q_bytes as f64) <= 0.30 * f32_bytes as f64,
            "sq8 bytes {q_bytes} vs f32 {f32_bytes}"
        );
        let queries = make_vectors(20, 32, 77);
        let recall = recall_against_exact(&idx, &vecs, &queries);
        assert!(recall >= 0.9, "sq8 codes-only recall {recall}");
    }

    #[test]
    fn sq8_keep_f32_rerank_returns_exact_distances() {
        let vecs = make_vectors(400, 16, 13);
        let mut idx = build_index(&vecs);
        idx.quantize(QuantSpec::sq8().with_keep_f32(true).with_rerank_factor(4))
            .unwrap();
        let queries = make_vectors(10, 16, 5);
        for q in &queries {
            let (got, stats) = idx.top_k(q, 5, 64, Filter::All);
            assert!(stats.reranked > 0, "rerank stage must run");
            // Reranked distances come from the retained f32 arena, so they
            // must equal the exact metric values.
            for n in &got {
                let v = &vecs[n.id.local().0 as usize];
                let exact = tv_common::metric::l2_sq(q, v);
                assert!(
                    (n.dist - exact).abs() <= 1e-5 * exact.max(1.0),
                    "dist {} vs exact {exact}",
                    n.dist
                );
            }
        }
        let recall = recall_against_exact(&idx, &vecs, &queries);
        assert!(recall >= 0.95, "keep_f32 rerank recall {recall}");
    }

    #[test]
    fn pq_codes_only_reranks_from_sq8_store() {
        let vecs = make_vectors(500, 16, 17);
        let mut idx = build_index(&vecs);
        idx.quantize(QuantSpec::pq(8).with_rerank_factor(8))
            .unwrap();
        assert_eq!(idx.storage_tier(), StorageTier::Pq { m: 8 });
        let queries = make_vectors(10, 16, 3);
        let (_, stats) = idx.top_k(&queries[0], 5, 64, Filter::All);
        assert!(stats.reranked > 0, "PQ codes-only must rerank via SQ8");
        let recall = recall_against_exact(&idx, &vecs, &queries);
        assert!(recall >= 0.7, "pq+sq8-rerank recall {recall}");
    }

    #[test]
    fn quantized_index_accepts_inserts_updates_deletes() {
        let vecs = make_vectors(300, 8, 23);
        let mut idx = build_index(&vecs);
        idx.quantize(QuantSpec::sq8()).unwrap();
        // Incremental insert encodes with the frozen codec.
        let novel = vec![9.5; 8];
        idx.insert(key(9000), &novel).unwrap();
        let (r, _) = idx.top_k(&novel, 1, 64, Filter::All);
        assert_eq!(r[0].id, key(9000));
        // Upsert re-encodes in place.
        let moved = vec![0.25; 8];
        idx.insert(key(3), &moved).unwrap();
        let got = idx.get_embedding(key(3)).unwrap();
        for (a, b) in got.iter().zip(&moved) {
            assert!((a - b).abs() < 0.1, "reconstruction {a} vs {b}");
        }
        // Delete excludes from results.
        assert!(idx.remove(key(9000)));
        let (r, _) = idx.top_k(&novel, 1, 64, Filter::All);
        assert_ne!(r[0].id, key(9000));
    }

    #[test]
    fn quantized_cosine_search_works() {
        let vecs = make_vectors(300, 12, 31);
        let mut idx = HnswIndex::new(HnswConfig::new(12, DistanceMetric::Cosine));
        for (i, v) in vecs.iter().enumerate() {
            idx.insert(key(i as u32), v).unwrap();
        }
        idx.quantize(QuantSpec::sq8()).unwrap();
        let q = &vecs[42];
        let (r, _) = idx.top_k(q, 3, 64, Filter::All);
        assert_eq!(r[0].id, key(42), "self-query must top the list");
        assert!(r[0].dist < 1e-3, "cosine self-distance {}", r[0].dist);
    }

    #[test]
    fn quantize_rejects_invalid_transitions() {
        let mut empty = HnswIndex::new(HnswConfig::new(4, DistanceMetric::L2));
        assert!(empty.quantize(QuantSpec::sq8()).is_err(), "empty index");

        let vecs = make_vectors(50, 4, 7);
        let mut idx = build_index(&vecs);
        // F32 spec on an unquantized index is a no-op.
        idx.quantize(QuantSpec::f32()).unwrap();
        idx.quantize(QuantSpec::sq8()).unwrap();
        // Tier changes require a rebuild.
        assert!(idx.quantize(QuantSpec::pq(2)).is_err());
        // Codes-only cannot go back to f32 (the arena is gone).
        assert!(idx.quantize(QuantSpec::f32()).is_err());

        // keep_f32 CAN go back: the arena still exists.
        let mut kept = build_index(&vecs);
        kept.quantize(QuantSpec::sq8().with_keep_f32(true)).unwrap();
        kept.quantize(QuantSpec::f32()).unwrap();
        assert_eq!(kept.storage_tier(), StorageTier::F32);
    }

    #[test]
    fn codes_only_get_embedding_is_bounded_reconstruction() {
        let vecs = make_vectors(200, 8, 3);
        let mut idx = build_index(&vecs);
        idx.quantize(QuantSpec::sq8()).unwrap();
        // SQ8 reconstruction error is at most one quantization step per
        // dim; with values in [0,10) a loose 0.1 bound is safe (step ≈
        // range/255 ≈ 0.04).
        for i in [0u32, 57, 199] {
            let got = idx.get_embedding(key(i)).unwrap();
            for (a, b) in got.iter().zip(&vecs[i as usize]) {
                assert!((a - b).abs() < 0.1, "slot {i}: {a} vs {b}");
            }
        }
    }

    #[test]
    fn quantized_brute_force_matches_graph_results() {
        let vecs = make_vectors(300, 16, 41);
        let mut idx = build_index(&vecs);
        idx.quantize(QuantSpec::sq8().with_keep_f32(true)).unwrap();
        let q = make_vectors(1, 16, 9).pop().unwrap();
        let (bf, stats) = idx.brute_force_top_k(&q, 10, Filter::All);
        assert!(stats.brute_force);
        assert!(stats.reranked > 0);
        // Brute force over codes + exact rerank must agree with the exact
        // scan on the retained arena for the top results.
        let exact = exact_top_k(&vecs, &q, 10);
        let got: Vec<u32> = bf.iter().map(|n| n.id.local().0).collect();
        let hits = exact.iter().filter(|e| got.contains(e)).count();
        assert!(hits >= 9, "brute-force quantized hits {hits}/10");
    }

    #[test]
    fn quantized_memory_bytes_counts_codes() {
        let vecs = make_vectors(100, 8, 53);
        let mut idx = build_index(&vecs);
        let before = idx.memory_bytes();
        idx.quantize(QuantSpec::sq8()).unwrap();
        let after = idx.memory_bytes();
        assert!(
            after < before,
            "codes-only must shrink: {after} vs {before}"
        );
        // The code arena (1 byte/dim/slot) must be visible in the total.
        assert!(after >= idx.slot_count() * 8);
    }

    /// Bit-level comparison of result lists: same ids, same distance bits.
    fn assert_bit_identical(a: &[Neighbor], b: &[Neighbor], ctx: &str) {
        assert_eq!(a.len(), b.len(), "{ctx}: length mismatch");
        for (x, y) in a.iter().zip(b) {
            assert_eq!(x.id, y.id, "{ctx}: id mismatch");
            assert_eq!(
                x.dist.to_bits(),
                y.dist.to_bits(),
                "{ctx}: distance bits mismatch"
            );
        }
    }

    #[test]
    fn pooled_scratch_searches_bit_identical_to_fresh_pool() {
        let vecs = make_vectors(400, 16, 91);
        let mut idx = build_index(&vecs);
        // Tombstones give the filtered path deleted slots to skip.
        for i in 0..40 {
            idx.remove(key(i * 7));
        }
        let mut bm = Bitmap::new(400);
        for i in 0..400 {
            bm.set(i, i % 3 != 0);
        }
        // A clone starts with an empty scratch pool: its first search runs
        // on freshly allocated buffers, exactly like the pre-pooling code.
        let fresh = idx.clone();
        let queries = make_vectors(25, 16, 17);
        for (qi, q) in queries.iter().enumerate() {
            // Warm the pool, then reuse it: both passes must match the
            // fresh-buffer oracle bit for bit.
            let (warm, _) = idx.top_k(q, 10, 64, Filter::All);
            let (reused, _) = idx.top_k(q, 10, 64, Filter::All);
            let (oracle, _) = fresh.top_k(q, 10, 64, Filter::All);
            assert_bit_identical(&warm, &oracle, &format!("top_k q{qi} warm"));
            assert_bit_identical(&reused, &oracle, &format!("top_k q{qi} reused"));

            let (filt, _) = idx.top_k(q, 10, 64, Filter::Valid(&bm));
            let (filt_oracle, _) = fresh.top_k(q, 10, 64, Filter::Valid(&bm));
            assert_bit_identical(&filt, &filt_oracle, &format!("filtered q{qi}"));

            let (rng_res, _) = idx.range_search(q, 30.0, 64, Filter::All);
            let (rng_oracle, _) = fresh.range_search(q, 30.0, 64, Filter::All);
            assert_bit_identical(&rng_res, &rng_oracle, &format!("range q{qi}"));
        }
    }

    #[test]
    fn scratch_epoch_wrap_resets_visit_marks() {
        let mut s = SearchScratch::default();
        s.begin(8);
        assert!(s.visit(3));
        assert!(!s.visit(3));
        // Force the wrap: the next begin() must zero the marks once and
        // restart epochs, so slot 3 reads unvisited again.
        s.epoch = u32::MAX;
        s.begin(8);
        assert_eq!(s.epoch, 1);
        assert!(s.visit(3), "post-wrap visit must start clean");
        assert!(!s.visit(3));
        // A stale mark from the pre-wrap era can never alias the new epoch.
        assert!(s.marks.iter().all(|&m| m <= 1));
    }

    #[test]
    fn insert_batch_single_thread_is_bit_identical_to_sequential() {
        let vecs = make_vectors(300, 8, 23);
        let items: Vec<(VertexId, Vec<f32>)> = vecs
            .iter()
            .enumerate()
            .map(|(i, v)| (key(i as u32), v.clone()))
            .collect();
        let seq = build_index(&vecs);
        let mut batched = HnswIndex::new(HnswConfig::new(8, DistanceMetric::L2));
        batched.insert_batch(&items, 1).unwrap();
        assert_eq!(
            crate::snapshot::to_bytes(&seq),
            crate::snapshot::to_bytes(&batched),
            "threads=1 insert_batch must reproduce the sequential build byte for byte"
        );
    }

    #[test]
    fn parallel_build_keeps_recall_and_loses_no_keys() {
        let n = 600usize;
        let vecs = make_vectors(n, 16, 41);
        let items: Vec<(VertexId, Vec<f32>)> = vecs
            .iter()
            .enumerate()
            .map(|(i, v)| (key(i as u32), v.clone()))
            .collect();
        let queries = make_vectors(30, 16, 77);
        let mut seq = HnswIndex::new(HnswConfig::new(16, DistanceMetric::L2));
        seq.insert_batch(&items, 1).unwrap();
        let seq_recall = recall_against_exact(&seq, &vecs, &queries);
        for threads in [2usize, 4, 8] {
            let mut idx = HnswIndex::new(HnswConfig::new(16, DistanceMetric::L2));
            idx.insert_batch(&items, threads).unwrap();
            // No lost or duplicated keys: every key maps to exactly one
            // live slot and the scan returns each exactly once.
            assert_eq!(idx.len(), n, "threads={threads}: live count");
            let mut seen: Vec<u32> = idx.scan().map(|(id, _)| id.local().0).collect();
            seen.sort_unstable();
            assert_eq!(seen.len(), n, "threads={threads}: scan count");
            seen.dedup();
            assert_eq!(seen.len(), n, "threads={threads}: duplicate keys");
            // Deterministic levels: identical node levels regardless of
            // thread count (only link sets may differ).
            assert_eq!(idx.levels, seq.levels, "threads={threads}: levels");
            let recall = recall_against_exact(&idx, &vecs, &queries);
            assert!(
                recall >= seq_recall - 0.005,
                "threads={threads}: recall {recall} vs sequential {seq_recall}"
            );
        }
    }

    #[test]
    fn insert_batch_routes_duplicates_and_live_keys_sequentially() {
        let vecs = make_vectors(120, 8, 67);
        let mut idx = build_index(&vecs[..100]);
        idx.remove(key(5));
        // Batch mixing: a live-key upsert (update-in-place path), a key
        // repeated within the batch (last write must win), a re-insert of a
        // tombstoned key, and fresh appends.
        let items: Vec<(VertexId, Vec<f32>)> = vec![
            (key(3), vecs[100].clone()),
            (key(200), vecs[101].clone()),
            (key(200), vecs[102].clone()),
            (key(5), vecs[103].clone()),
            (key(201), vecs[104].clone()),
            (key(202), vecs[105].clone()),
        ];
        let mut oracle = idx.clone();
        for (k, v) in &items {
            oracle.insert(*k, v).unwrap();
        }
        idx.insert_batch(&items, 4).unwrap();
        assert_eq!(idx.len(), oracle.len());
        let mut got: Vec<(u32, Vec<f32>)> = idx.scan().map(|(id, v)| (id.local().0, v)).collect();
        let mut want: Vec<(u32, Vec<f32>)> =
            oracle.scan().map(|(id, v)| (id.local().0, v)).collect();
        got.sort_by_key(|(l, _)| *l);
        want.sort_by_key(|(l, _)| *l);
        assert_eq!(got, want, "live key→vector mapping must match sequential");
    }

    #[test]
    fn update_items_with_parallel_matches_sequential_membership() {
        let vecs = make_vectors(260, 8, 53);
        let mut idx = build_index(&vecs[..200]);
        let mut recs = Vec::new();
        for i in 0..30 {
            // Fresh appends (parallel-eligible).
            recs.push(DeltaRecord::upsert(
                key(300 + i),
                Tid(u64::from(i) + 1),
                vecs[200 + i as usize].clone(),
            ));
        }
        // Live-key upsert, delete, and a duplicate fresh key — all must
        // take the sequential path without disturbing the parallel set.
        recs.push(DeltaRecord::upsert(key(7), Tid(40), vecs[230].clone()));
        recs.push(DeltaRecord::delete(key(11), Tid(41)));
        recs.push(DeltaRecord::upsert(key(400), Tid(42), vecs[231].clone()));
        recs.push(DeltaRecord::upsert(key(400), Tid(43), vecs[232].clone()));
        let mut oracle = idx.clone();
        let want_applied = oracle.update_items(&recs).unwrap();
        let got_applied = idx.update_items_with(&recs, 4).unwrap();
        assert_eq!(got_applied, want_applied);
        assert_eq!(idx.len(), oracle.len());
        let mut got: Vec<(u32, Vec<f32>)> = idx.scan().map(|(id, v)| (id.local().0, v)).collect();
        let mut want: Vec<(u32, Vec<f32>)> =
            oracle.scan().map(|(id, v)| (id.local().0, v)).collect();
        got.sort_by_key(|(l, _)| *l);
        want.sort_by_key(|(l, _)| *l);
        assert_eq!(got, want);
    }

    #[test]
    fn level_assignment_is_independent_of_insertion_order() {
        let vecs = make_vectors(100, 8, 29);
        let forward = build_index(&vecs);
        let mut reversed = HnswIndex::new(HnswConfig::new(8, DistanceMetric::L2));
        for (i, v) in vecs.iter().enumerate().rev() {
            reversed.insert(key(i as u32), v).unwrap();
        }
        for i in 0..100u32 {
            let fs = forward.slot_of[&key(i)] as usize;
            let rs = reversed.slot_of[&key(i)] as usize;
            assert_eq!(
                forward.levels[fs], reversed.levels[rs],
                "key {i}: level must depend only on the key and seed"
            );
        }
        // Re-insert after delete lands on the same level.
        let mut idx = forward.clone();
        let before = idx.levels[idx.slot_of[&key(42)] as usize];
        idx.remove(key(42));
        idx.insert(key(42), &vecs[42]).unwrap();
        assert_eq!(idx.levels[idx.slot_of[&key(42)] as usize], before);
    }
}
