//! Neighbor-selection heuristic (Algorithm 4 of the HNSW paper).
//!
//! Given a candidate set sorted by distance to the inserted point, keep a
//! candidate only if it is closer to the point than to every neighbor
//! already kept. This spreads the kept edges across directions, which is
//! what gives HNSW its navigability; plain "closest M" clusters edges and
//! degrades recall on clustered data (exactly the SIFT/Deep regime the paper
//! benchmarks).

/// A scored candidate: `(distance to the base point, slot)`.
pub type Scored = (f32, u32);

/// Select up to `m` diverse neighbors from `candidates` (must be sorted by
/// ascending distance). `dist_between(candidate, kept)` resolves the
/// stored-pair distance — callers supply it so node-to-node distances can
/// run on cached norms (cosine pays one dot pass, not three full passes).
///
/// `keep_pruned` re-fills from the pruned list when fewer than `m` survive
/// the diversity test, matching hnswlib's `extendCandidates=false,
/// keepPrunedConnections=true` default.
pub fn select_neighbors(
    candidates: &[Scored],
    m: usize,
    keep_pruned: bool,
    dist_between: impl Fn(u32, u32) -> f32,
) -> Vec<u32> {
    if candidates.len() <= m {
        return candidates.iter().map(|&(_, s)| s).collect();
    }
    let mut selected: Vec<Scored> = Vec::with_capacity(m);
    let mut pruned: Vec<Scored> = Vec::new();
    for &(dist_to_base, cand) in candidates {
        if selected.len() >= m {
            break;
        }
        // Diversity test: closer to the base point than to any kept neighbor.
        let dominated = selected
            .iter()
            .any(|&(_, kept)| dist_between(cand, kept) < dist_to_base);
        if dominated {
            pruned.push((dist_to_base, cand));
        } else {
            selected.push((dist_to_base, cand));
        }
    }
    if keep_pruned {
        for &(d, s) in &pruned {
            if selected.len() >= m {
                break;
            }
            selected.push((d, s));
        }
    }
    selected.into_iter().map(|(_, s)| s).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use tv_common::metric::l2_sq;

    /// Helper: pairwise L2 over a static table of 2-d points.
    fn table(points: &[[f32; 2]]) -> impl Fn(u32, u32) -> f32 + '_ {
        move |a: u32, b: u32| l2_sq(&points[a as usize][..], &points[b as usize][..])
    }

    #[test]
    fn small_candidate_sets_pass_through() {
        let pts = [[0.0, 0.0], [1.0, 0.0]];
        let cands = vec![(1.0, 1u32)];
        let got = select_neighbors(&cands, 4, true, table(&pts));
        assert_eq!(got, vec![1]);
    }

    #[test]
    fn diversity_prefers_spread_neighbors() {
        // Base point at origin. Candidates: two nearly-identical points to
        // the right (slots 0, 1) and one to the left (slot 2), farther away.
        // With m=2 the heuristic should keep one right point and the left
        // point, not both right points.
        let pts = [[1.0, 0.0], [1.1, 0.0], [-2.0, 0.0]];
        let cands = vec![(1.0, 0u32), (1.21, 1u32), (4.0, 2u32)];
        let got = select_neighbors(&cands, 2, false, table(&pts));
        assert_eq!(got, vec![0, 2]);
    }

    #[test]
    fn keep_pruned_refills_to_m() {
        // All candidates cluster together: only one survives diversity, but
        // keep_pruned tops the list back up to m.
        let pts = [[1.0, 0.0], [1.01, 0.0], [1.02, 0.0]];
        let cands = vec![(1.0, 0u32), (1.0201, 1u32), (1.0404, 2u32)];
        let strict = select_neighbors(&cands, 2, false, table(&pts));
        assert_eq!(strict, vec![0]);
        let refilled = select_neighbors(&cands, 2, true, table(&pts));
        assert_eq!(refilled, vec![0, 1]);
    }

    #[test]
    fn never_exceeds_m() {
        let pts: Vec<[f32; 2]> = (0..20).map(|i| [i as f32, (i % 3) as f32]).collect();
        let cands: Vec<Scored> = (0..20)
            .map(|i| {
                let p = pts[i as usize];
                (p[0] * p[0] + p[1] * p[1], i)
            })
            .collect();
        let got = select_neighbors(&cands, 5, true, table(&pts));
        assert!(got.len() <= 5);
    }
}
