//! # tv-hnsw
//!
//! A from-scratch HNSW (Hierarchical Navigable Small World, Malkov &
//! Yashunin 2020) approximate-nearest-neighbor index, plus a brute-force
//! exact index, implementing the four generic functions TigerVector requires
//! of a vector index (§4.4 of the paper):
//!
//! * **GetEmbedding** — fetch the stored vector for an id,
//! * **TopKSearch** — ef-controlled top-k search with an optional validity
//!   filter (the paper's bitmap hand-off, §5.1/§5.2),
//! * **RangeSearch** — threshold search implemented DiskANN-style as repeated
//!   top-k searches until the threshold falls below the median distance,
//! * **UpdateItems** — incremental upsert/delete application from delta
//!   records, preserving per-id record order.
//!
//! One `HnswIndex` instance serves one *embedding segment*; TigerVector's
//! MPP layer builds one index per segment and merges per-segment top-k
//! results (§4.2). Searches take `&self` and may run concurrently from many
//! threads; mutation takes `&mut self` (segment indexes are single-writer —
//! the embedding service's vacuum assigns each segment to one merge thread).

pub mod brute;
pub mod config;
pub mod index;
pub mod ivf;
pub(crate) mod packed;
pub mod planner;
pub mod select;
pub mod snapshot;
pub mod stats;

pub use brute::BruteForceIndex;
pub use config::HnswConfig;
pub use index::{DeltaRecord, HnswIndex, VectorIndex};
pub use ivf::{IvfConfig, IvfFlatIndex};
pub use planner::{PlanChoice, PlanInputs};
pub use stats::SearchStats;

// Property tests need the external `proptest` crate, unavailable in the
// offline build container; enable with `--features proptests` once vendored.
#[cfg(all(test, feature = "proptests"))]
mod proptests;
