//! IVF-Flat: an inverted-file index behind the same [`VectorIndex`] trait.
//!
//! The paper notes that "other vector indexes (such as quantization-based
//! indexes) can be easily integrated into TigerVector" because the engine
//! only needs the four generic functions (§4.4). This module demonstrates
//! that: a k-means coarse quantizer with `nprobe` list probing implements
//! the same trait as HNSW, and the embedding service composes with it
//! unchanged. It also serves as the ablation partner in the benchmark
//! suite (HNSW vs IVF recall/latency trade-offs).

use crate::index::{DeltaAction, DeltaRecord, OrdF32, QuantState, Scorer, VectorIndex};
use crate::stats::SearchStats;
use std::collections::{BinaryHeap, HashMap};
use tv_common::bitmap::Filter;
use tv_common::kernels;
use tv_common::{
    DistanceMetric, Neighbor, PreparedQuery, QuantSpec, SplitMix64, StorageTier, TvError, TvResult,
    VertexId,
};
use tv_quant::QuantQuery;

/// IVF-Flat configuration.
#[derive(Debug, Clone, Copy)]
pub struct IvfConfig {
    /// Vector dimensionality.
    pub dim: usize,
    /// Distance metric.
    pub metric: DistanceMetric,
    /// Number of inverted lists (k-means centroids).
    pub nlist: usize,
    /// Lists probed per query.
    pub nprobe: usize,
    /// k-means iterations at (re)train time.
    pub train_iters: usize,
    /// RNG seed for centroid init.
    pub seed: u64,
}

impl IvfConfig {
    /// Reasonable defaults for `dim`/`metric`.
    #[must_use]
    pub fn new(dim: usize, metric: DistanceMetric) -> Self {
        IvfConfig {
            dim,
            metric,
            nlist: 64,
            nprobe: 8,
            train_iters: 5,
            seed: 0x1F1F,
        }
    }
}

/// Inverted-file flat index: coarse k-means partition + exact scan of the
/// probed lists.
pub struct IvfFlatIndex {
    cfg: IvfConfig,
    /// Flat centroid storage (nlist × dim), empty until trained.
    centroids: Vec<f32>,
    /// Euclidean norm per centroid (refreshed whenever centroids move).
    centroid_norms: Vec<f32>,
    /// Per-list member slots.
    lists: Vec<Vec<u32>>,
    /// Slot-major vectors.
    vectors: Vec<f32>,
    /// Per-slot Euclidean norm cache.
    norms: Vec<f32>,
    keys: Vec<VertexId>,
    slot_of: HashMap<VertexId, u32>,
    deleted: Vec<bool>,
    live: usize,
    /// Quantized storage tier, if attached via [`IvfFlatIndex::quantize`].
    /// When `spec.keep_f32` is false, `vectors`/`norms` are empty and all
    /// list scoring runs against codes (centroids stay f32).
    quant: Option<QuantState>,
}

impl IvfFlatIndex {
    /// New untrained index.
    #[must_use]
    pub fn new(cfg: IvfConfig) -> Self {
        assert!(cfg.dim > 0 && cfg.nlist > 0, "bad IVF config");
        IvfFlatIndex {
            cfg,
            centroids: Vec::new(),
            centroid_norms: Vec::new(),
            lists: vec![Vec::new(); cfg.nlist],
            vectors: Vec::new(),
            norms: Vec::new(),
            keys: Vec::new(),
            slot_of: HashMap::new(),
            deleted: Vec::new(),
            live: 0,
            quant: None,
        }
    }

    fn vec_of(&self, slot: u32) -> &[f32] {
        let d = self.cfg.dim;
        &self.vectors[slot as usize * d..(slot as usize + 1) * d]
    }

    /// The vector at `slot`, reconstructed from codes when the f32 arena
    /// has been dropped.
    fn materialize(&self, slot: u32) -> Vec<f32> {
        if !self.vectors.is_empty() {
            return self.vec_of(slot).to_vec();
        }
        let q = self.quant.as_ref().expect("no arena and no quant state");
        let mut out = vec![0.0f32; self.cfg.dim];
        q.materialize_into(slot as usize, &mut out);
        out
    }

    /// Attach a quantized storage tier (same semantics as
    /// `HnswIndex::quantize`): train on the current arena, encode every
    /// slot, and drop the f32 arena unless the spec retains it.
    pub fn quantize(&mut self, spec: QuantSpec) -> TvResult<()> {
        if spec.tier == StorageTier::F32 {
            return match &self.quant {
                None => Ok(()),
                Some(q) if q.spec.keep_f32 => {
                    self.quant = None;
                    Ok(())
                }
                Some(_) => Err(TvError::InvalidArgument(
                    "cannot drop quantization: f32 arena was discarded".into(),
                )),
            };
        }
        if self.quant.is_some() {
            return Err(TvError::InvalidArgument(
                "index is already quantized; rebuild to change tiers".into(),
            ));
        }
        if self.keys.is_empty() {
            return Err(TvError::InvalidArgument(
                "cannot train a codec on an empty index".into(),
            ));
        }
        let q = QuantState::build(
            spec,
            self.cfg.dim,
            self.cfg.metric,
            &self.vectors,
            self.cfg.seed,
        )?;
        if !spec.keep_f32 {
            self.vectors = Vec::new();
            self.norms = Vec::new();
        }
        self.quant = Some(q);
        Ok(())
    }

    /// The active storage tier.
    #[must_use]
    pub fn storage_tier(&self) -> StorageTier {
        self.quant
            .as_ref()
            .map_or(StorageTier::F32, |q| q.spec.tier)
    }

    /// The quantization spec, if a tier is attached.
    #[must_use]
    pub fn quant_spec(&self) -> Option<QuantSpec> {
        self.quant.as_ref().map(|q| q.spec)
    }

    /// Resident bytes of vector payloads (arena + norms + codes).
    #[must_use]
    pub fn vector_storage_bytes(&self) -> usize {
        use std::mem::size_of;
        self.vectors.len() * size_of::<f32>()
            + self.norms.len() * size_of::<f32>()
            + self.quant.as_ref().map_or(0, QuantState::bytes)
    }

    /// Prepare a scorer for `query` against the active storage tier.
    fn scorer<'q>(&self, query: &'q [f32]) -> Scorer<'q> {
        match &self.quant {
            Some(q) => Scorer::Quant(QuantQuery::new(&q.codec, self.cfg.metric, query)),
            None => Scorer::F32(PreparedQuery::new(self.cfg.metric, query)),
        }
    }

    /// Batch-score `slots` with either backend.
    fn score_slots(&self, sc: &Scorer<'_>, slots: &[u32], out: &mut Vec<f32>) {
        match sc {
            Scorer::F32(pq) => {
                pq.distance_slots(&self.vectors, self.cfg.dim, &self.norms, slots, out);
            }
            Scorer::Quant(qq) => {
                let q = self.quant.as_ref().expect("quant scorer without state");
                qq.score_slots(&q.codes, &q.recon_norms, slots, out);
            }
        }
    }

    /// Candidates the probe stage must surface for a final top-`k` (see
    /// `HnswIndex::fetch_count`).
    fn fetch_count(&self, k: usize) -> usize {
        match &self.quant {
            Some(q) if q.spec.keep_f32 || q.rerank.is_some() => {
                k.saturating_mul(q.spec.rerank_factor.max(1))
            }
            _ => k,
        }
    }

    /// Exact-rerank stage over the probed shortlist (see
    /// `HnswIndex::rerank_and_take`).
    fn rerank_and_take(
        &self,
        query: &[f32],
        mut found: Vec<(f32, u32)>,
        k: usize,
        stats: &mut SearchStats,
    ) -> Vec<Neighbor> {
        found.sort_unstable_by(|a, b| a.0.total_cmp(&b.0).then(a.1.cmp(&b.1)));
        let quant = match &self.quant {
            Some(q) if q.spec.keep_f32 || q.rerank.is_some() => q,
            _ => {
                return found
                    .into_iter()
                    .take(k)
                    .map(|(d, s)| Neighbor::new(self.keys[s as usize], d))
                    .collect();
            }
        };
        let slots: Vec<u32> = found.iter().map(|&(_, s)| s).collect();
        let mut dists: Vec<f32> = Vec::new();
        if quant.spec.keep_f32 {
            let pq = PreparedQuery::new(self.cfg.metric, query);
            pq.distance_slots(&self.vectors, self.cfg.dim, &self.norms, &slots, &mut dists);
        } else {
            let r = quant.rerank.as_ref().expect("checked above");
            let qq = QuantQuery::new(&r.codec, self.cfg.metric, query);
            qq.score_slots(&r.codes, &r.recon_norms, &slots, &mut dists);
        }
        stats.distance_computations += slots.len() as u64;
        stats.reranked += slots.len() as u64;
        let mut rescored: Vec<(f32, u32)> =
            slots.iter().zip(&dists).map(|(&s, &d)| (d, s)).collect();
        rescored.sort_unstable_by(|a, b| a.0.total_cmp(&b.0).then(a.1.cmp(&b.1)));
        rescored
            .into_iter()
            .take(k)
            .map(|(d, s)| Neighbor::new(self.keys[s as usize], d))
            .collect()
    }

    fn centroid(&self, c: usize) -> &[f32] {
        let d = self.cfg.dim;
        &self.centroids[c * d..(c + 1) * d]
    }

    /// Whether k-means has run.
    #[must_use]
    pub fn is_trained(&self) -> bool {
        !self.centroids.is_empty()
    }

    /// Train the coarse quantizer on the current live vectors and rebuild
    /// the inverted lists. Call after bulk loading (or rely on the lazy
    /// training in `top_k`).
    pub fn train(&mut self) {
        let d = self.cfg.dim;
        let live_slots: Vec<u32> = (0..self.keys.len() as u32)
            .filter(|&s| !self.deleted[s as usize])
            .collect();
        if live_slots.is_empty() {
            self.centroids.clear();
            self.centroid_norms.clear();
            return;
        }
        let nlist = self.cfg.nlist.min(live_slots.len());
        // Init: sample distinct points. Codes-only tiers train on
        // reconstructions (training is offline, the copies are fine).
        let mut rng = SplitMix64::new(self.cfg.seed);
        let mut picks = live_slots.clone();
        rng.shuffle(&mut picks);
        self.centroids = picks[..nlist]
            .iter()
            .flat_map(|&s| self.materialize(s))
            .collect();
        self.refresh_centroid_norms(nlist);
        // Lloyd iterations.
        let mut scratch: Vec<f32> = Vec::new();
        for _ in 0..self.cfg.train_iters {
            let mut sums = vec![0.0f64; nlist * d];
            let mut counts = vec![0usize; nlist];
            for &s in &live_slots {
                let v = self.materialize(s);
                let c = self.nearest_centroid(&v, nlist, &mut scratch);
                counts[c] += 1;
                for (j, &x) in v.iter().enumerate() {
                    sums[c * d + j] += f64::from(x);
                }
            }
            for c in 0..nlist {
                if counts[c] > 0 {
                    for j in 0..d {
                        self.centroids[c * d + j] = (sums[c * d + j] / counts[c] as f64) as f32;
                    }
                }
            }
            self.refresh_centroid_norms(nlist);
        }
        // Rebuild lists.
        self.lists = vec![Vec::new(); nlist];
        for &s in &live_slots {
            let v = self.materialize(s);
            let c = self.nearest_centroid(&v, nlist, &mut scratch);
            self.lists[c].push(s);
        }
    }

    fn refresh_centroid_norms(&mut self, nlist: usize) {
        let k = kernels::active();
        self.centroid_norms = (0..nlist)
            .map(|c| k.norm_sq(self.centroid(c)).sqrt())
            .collect();
    }

    /// Nearest centroid to `v`, scored over the contiguous centroid slab in
    /// one batched kernel call (`dists` is caller-owned scratch).
    fn nearest_centroid(&self, v: &[f32], nlist: usize, dists: &mut Vec<f32>) -> usize {
        let d = self.cfg.dim;
        let pq = PreparedQuery::new(self.cfg.metric, v);
        dists.clear();
        dists.resize(nlist, 0.0);
        pq.distance_batch(
            &self.centroids[..nlist * d],
            Some(&self.centroid_norms[..nlist]),
            dists,
        );
        let mut best = 0;
        let mut best_d = f32::INFINITY;
        for (c, &dc) in dists.iter().enumerate() {
            if dc < best_d {
                best_d = dc;
                best = c;
            }
        }
        best
    }

    /// Insert or replace; new points go to their nearest list (once
    /// trained) without retraining — the incremental-update path.
    pub fn insert(&mut self, key: VertexId, vector: &[f32]) -> TvResult<()> {
        if vector.len() != self.cfg.dim {
            return Err(TvError::DimensionMismatch {
                expected: self.cfg.dim,
                got: vector.len(),
            });
        }
        if let Some(&old) = self.slot_of.get(&key) {
            if !self.deleted[old as usize] {
                self.deleted[old as usize] = true;
                self.live -= 1;
            }
        }
        let slot = self.keys.len() as u32;
        let metric = self.cfg.metric;
        if let Some(q) = &mut self.quant {
            q.push(metric, vector);
        }
        if self.quant.as_ref().is_none_or(|q| q.spec.keep_f32) {
            self.vectors.extend_from_slice(vector);
            self.norms.push(kernels::active().norm_sq(vector).sqrt());
        }
        self.keys.push(key);
        self.deleted.push(false);
        self.slot_of.insert(key, slot);
        self.live += 1;
        if self.is_trained() {
            let nlist = self.lists.len();
            let mut scratch = Vec::new();
            let c = self.nearest_centroid(vector, nlist, &mut scratch);
            self.lists[c].push(slot);
        }
        Ok(())
    }

    /// Mark deleted.
    pub fn remove(&mut self, key: VertexId) -> bool {
        if let Some(&slot) = self.slot_of.get(&key) {
            if !self.deleted[slot as usize] {
                self.deleted[slot as usize] = true;
                self.live -= 1;
                self.slot_of.remove(&key);
                return true;
            }
        }
        false
    }
}

impl VectorIndex for IvfFlatIndex {
    fn dim(&self) -> usize {
        self.cfg.dim
    }

    fn metric(&self) -> DistanceMetric {
        self.cfg.metric
    }

    fn len(&self) -> usize {
        self.live
    }

    fn get_embedding(&self, id: VertexId) -> Option<Vec<f32>> {
        let &slot = self.slot_of.get(&id)?;
        if self.deleted[slot as usize] {
            None
        } else {
            Some(self.materialize(slot))
        }
    }

    fn top_k(
        &self,
        query: &[f32],
        k: usize,
        _ef: usize,
        filter: Filter<'_>,
    ) -> (Vec<Neighbor>, SearchStats) {
        let mut stats = SearchStats::default();
        if k == 0 || query.len() != self.cfg.dim || self.live == 0 {
            return (Vec::new(), stats);
        }
        let d = self.cfg.dim;
        let sc = self.scorer(query);
        let fetch = self.fetch_count(k);
        let mut dists: Vec<f32> = Vec::new();
        // Bounded max-heap of the `fetch` best approximate candidates; the
        // exact-rerank stage trims to `k`.
        let mut heap: BinaryHeap<(OrdF32, u32)> = BinaryHeap::new();
        if !self.is_trained() {
            // Untrained: exact scan (small indexes never need training) —
            // gather the accepted slots, then one batched scoring pass.
            stats.brute_force = true;
            let mut accepted: Vec<u32> = Vec::with_capacity(self.live);
            for (&key, &slot) in &self.slot_of {
                if !filter.accepts(key.local().0 as usize) {
                    stats.filtered_out += 1;
                    continue;
                }
                accepted.push(slot);
            }
            self.score_slots(&sc, &accepted, &mut dists);
            stats.distance_computations += accepted.len() as u64;
            for (&slot, &dist) in accepted.iter().zip(&dists) {
                heap.push((OrdF32(dist), slot));
                if heap.len() > fetch {
                    heap.pop();
                }
            }
            let found: Vec<(f32, u32)> = heap
                .into_iter()
                .map(|(OrdF32(dist), s)| (dist, s))
                .collect();
            let out = self.rerank_and_take(query, found, k, &mut stats);
            return (out, stats);
        }
        // Rank centroids over the contiguous centroid slab in one batched
        // call, probe the nearest `nprobe` lists. Centroids are always f32.
        let pq = PreparedQuery::new(self.cfg.metric, query);
        let nlist = self.lists.len();
        dists.resize(nlist, 0.0);
        pq.distance_batch(
            &self.centroids[..nlist * d],
            Some(&self.centroid_norms[..nlist]),
            &mut dists,
        );
        stats.distance_computations += nlist as u64;
        let mut ranked: Vec<(f32, usize)> = dists.iter().copied().zip(0..nlist).collect();
        ranked.sort_unstable_by(|a, b| a.0.total_cmp(&b.0));
        let mut accepted: Vec<u32> = Vec::new();
        for &(_, c) in ranked.iter().take(self.cfg.nprobe.max(1)) {
            // Gather this list's valid members, then score them in one call.
            accepted.clear();
            for &slot in &self.lists[c] {
                if self.deleted[slot as usize] {
                    stats.deleted_skipped += 1;
                    continue;
                }
                let key = self.keys[slot as usize];
                // Skip stale slots superseded by an upsert.
                if self.slot_of.get(&key) != Some(&slot) {
                    continue;
                }
                if !filter.accepts(key.local().0 as usize) {
                    stats.filtered_out += 1;
                    continue;
                }
                accepted.push(slot);
            }
            self.score_slots(&sc, &accepted, &mut dists);
            stats.distance_computations += accepted.len() as u64;
            stats.hops += accepted.len() as u64;
            for (&slot, &dist) in accepted.iter().zip(&dists) {
                heap.push((OrdF32(dist), slot));
                if heap.len() > fetch {
                    heap.pop();
                }
            }
        }
        let found: Vec<(f32, u32)> = heap
            .into_iter()
            .map(|(OrdF32(dist), s)| (dist, s))
            .collect();
        let out = self.rerank_and_take(query, found, k, &mut stats);
        (out, stats)
    }

    fn range_search(
        &self,
        query: &[f32],
        threshold: f32,
        ef: usize,
        filter: Filter<'_>,
    ) -> (Vec<Neighbor>, SearchStats) {
        // Same DiskANN-style doubling adaptation as HNSW (§4.4).
        let mut stats = SearchStats::default();
        let mut k = 16usize;
        loop {
            let (results, s) = self.top_k(query, k, ef, filter);
            stats.merge(&s);
            let exhausted = results.len() < k || results.len() >= self.live;
            let median = if results.is_empty() {
                f32::INFINITY
            } else {
                results[results.len() / 2].dist
            };
            if exhausted || threshold < median {
                return (
                    results
                        .into_iter()
                        .filter(|n| n.dist <= threshold)
                        .collect(),
                    stats,
                );
            }
            k *= 2;
        }
    }

    fn update_items(&mut self, records: &[DeltaRecord]) -> TvResult<usize> {
        let mut applied = 0;
        for rec in records {
            match rec.action {
                DeltaAction::Upsert => self.insert(rec.id, &rec.vector)?,
                DeltaAction::Delete => {
                    self.remove(rec.id);
                }
            }
            applied += 1;
        }
        Ok(applied)
    }

    fn scan(&self) -> Box<dyn Iterator<Item = (VertexId, Vec<f32>)> + '_> {
        Box::new(self.slot_of.iter().map(|(&k, &s)| (k, self.materialize(s))))
    }

    fn memory_bytes(&self) -> usize {
        use std::mem::size_of;
        self.vector_storage_bytes()
            + self.centroids.len() * size_of::<f32>()
            + self.centroid_norms.len() * size_of::<f32>()
            + self
                .lists
                .iter()
                .map(|l| l.len() * size_of::<u32>())
                .sum::<usize>()
            + self.keys.len() * size_of::<VertexId>()
            + self.deleted.len() * size_of::<bool>()
            + self.slot_of.len() * (size_of::<VertexId>() + size_of::<u32>())
    }

    fn storage_tier(&self) -> StorageTier {
        IvfFlatIndex::storage_tier(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tv_common::ids::{LocalId, SegmentId};

    fn key(i: u32) -> VertexId {
        VertexId::new(SegmentId(0), LocalId(i))
    }

    fn clustered(n: usize, dim: usize, seed: u64) -> Vec<Vec<f32>> {
        let mut rng = SplitMix64::new(seed);
        let centers: Vec<Vec<f32>> = (0..8)
            .map(|_| (0..dim).map(|_| rng.next_f32() * 100.0).collect())
            .collect();
        (0..n)
            .map(|_| {
                let c = &centers[rng.next_below(8) as usize];
                c.iter()
                    .map(|&x| x + rng.next_gaussian() as f32 * 2.0)
                    .collect()
            })
            .collect()
    }

    fn build(n: usize) -> (IvfFlatIndex, Vec<Vec<f32>>) {
        let vecs = clustered(n, 8, 42);
        let mut idx = IvfFlatIndex::new(IvfConfig {
            nlist: 16,
            nprobe: 6,
            ..IvfConfig::new(8, DistanceMetric::L2)
        });
        for (i, v) in vecs.iter().enumerate() {
            idx.insert(key(i as u32), v).unwrap();
        }
        idx.train();
        (idx, vecs)
    }

    #[test]
    fn untrained_falls_back_to_exact() {
        let vecs = clustered(50, 8, 1);
        let mut idx = IvfFlatIndex::new(IvfConfig::new(8, DistanceMetric::L2));
        for (i, v) in vecs.iter().enumerate() {
            idx.insert(key(i as u32), v).unwrap();
        }
        assert!(!idx.is_trained());
        let (r, stats) = idx.top_k(&vecs[7], 1, 0, Filter::All);
        assert_eq!(r[0].id, key(7));
        assert!(stats.brute_force);
    }

    #[test]
    fn trained_search_finds_exact_match() {
        let (idx, vecs) = build(600);
        for probe in [0usize, 99, 321, 599] {
            let (r, stats) = idx.top_k(&vecs[probe], 1, 0, Filter::All);
            assert_eq!(r[0].id, key(probe as u32), "probe {probe}");
            assert!(!stats.brute_force);
            // Probing must scan far fewer points than the whole set.
            assert!(stats.hops < 600);
        }
    }

    #[test]
    fn recall_reasonable_on_clustered_data() {
        let (idx, vecs) = build(1000);
        let queries = clustered(20, 8, 9);
        let mut hits = 0;
        for q in &queries {
            let exact: Vec<u32> = {
                let mut scored: Vec<(f32, u32)> = vecs
                    .iter()
                    .enumerate()
                    .map(|(i, v)| (tv_common::metric::l2_sq(q, v), i as u32))
                    .collect();
                scored.sort_by(|a, b| a.0.total_cmp(&b.0));
                scored.into_iter().take(10).map(|(_, i)| i).collect()
            };
            let (got, _) = idx.top_k(q, 10, 0, Filter::All);
            hits += exact
                .iter()
                .filter(|e| got.iter().any(|n| n.id.local().0 == **e))
                .count();
        }
        let recall = hits as f64 / (20.0 * 10.0);
        assert!(recall > 0.8, "IVF recall {recall}");
    }

    #[test]
    fn incremental_insert_after_train() {
        let (mut idx, _) = build(200);
        let novel = vec![500.0; 8];
        idx.insert(key(9999), &novel).unwrap();
        let (r, _) = idx.top_k(&novel, 1, 0, Filter::All);
        assert_eq!(r[0].id, key(9999));
    }

    #[test]
    fn delete_and_upsert_respected() {
        let (mut idx, vecs) = build(100);
        assert!(idx.remove(key(5)));
        let (r, _) = idx.top_k(&vecs[5], 1, 0, Filter::All);
        assert_ne!(r[0].id, key(5));
        idx.insert(key(6), &[999.0; 8]).unwrap();
        assert_eq!(idx.get_embedding(key(6)).unwrap(), &[999.0f32; 8]);
        assert_eq!(idx.len(), 99);
    }

    #[test]
    fn filter_respected() {
        let (idx, vecs) = build(100);
        let bm = tv_common::Bitmap::from_indices(100, [3usize, 4]);
        let (r, _) = idx.top_k(&vecs[0], 5, 0, Filter::Valid(&bm));
        assert!(r.iter().all(|n| n.id.local().0 == 3 || n.id.local().0 == 4));
    }

    #[test]
    fn range_search_within_threshold() {
        let (idx, vecs) = build(300);
        let (r, _) = idx.range_search(&vecs[0], 50.0, 0, Filter::All);
        assert!(r.iter().all(|n| n.dist <= 50.0));
        assert!(r.iter().any(|n| n.id == key(0)));
    }

    #[test]
    fn quantized_ivf_search_and_memory() {
        let vecs = clustered(600, 32, 4);
        let mut idx = IvfFlatIndex::new(IvfConfig {
            nlist: 16,
            nprobe: 8,
            ..IvfConfig::new(32, DistanceMetric::L2)
        });
        for (i, v) in vecs.iter().enumerate() {
            idx.insert(key(i as u32), v).unwrap();
        }
        idx.train();
        let f32_bytes = idx.vector_storage_bytes();
        idx.quantize(QuantSpec::sq8()).unwrap();
        assert_eq!(idx.storage_tier(), StorageTier::Sq8);
        assert!(
            (idx.vector_storage_bytes() as f64) <= 0.30 * f32_bytes as f64,
            "ivf sq8 bytes {} vs f32 {f32_bytes}",
            idx.vector_storage_bytes()
        );
        // Codes score the lists; exact matches still surface.
        for probe in [0usize, 100, 599] {
            let (r, _) = idx.top_k(&vecs[probe], 1, 0, Filter::All);
            assert_eq!(r[0].id, key(probe as u32), "probe {probe}");
        }
        // Incremental insert + retrain on reconstructions both work.
        idx.insert(key(9999), &[500.0; 32]).unwrap();
        idx.train();
        let (r, _) = idx.top_k(&[500.0; 32], 1, 0, Filter::All);
        assert_eq!(r[0].id, key(9999));
    }

    #[test]
    fn quantized_ivf_keep_f32_reranks_exactly() {
        let vecs = clustered(400, 8, 6);
        let mut idx = IvfFlatIndex::new(IvfConfig {
            nlist: 8,
            nprobe: 8,
            ..IvfConfig::new(8, DistanceMetric::L2)
        });
        for (i, v) in vecs.iter().enumerate() {
            idx.insert(key(i as u32), v).unwrap();
        }
        idx.train();
        idx.quantize(QuantSpec::sq8().with_keep_f32(true).with_rerank_factor(4))
            .unwrap();
        let q = &vecs[17];
        let (r, stats) = idx.top_k(q, 5, 0, Filter::All);
        assert_eq!(r[0].id, key(17));
        assert!(stats.reranked > 0);
        // Reranked distances equal exact f32 metric values.
        for n in &r {
            let exact = tv_common::metric::l2_sq(q, &vecs[n.id.local().0 as usize]);
            assert!((n.dist - exact).abs() <= 1e-4 * exact.max(1.0));
        }
    }

    #[test]
    fn update_items_works_via_trait() {
        let mut idx = IvfFlatIndex::new(IvfConfig::new(4, DistanceMetric::L2));
        let recs = vec![
            DeltaRecord::upsert(key(0), tv_common::Tid(1), vec![1.0; 4]),
            DeltaRecord::upsert(key(1), tv_common::Tid(2), vec![2.0; 4]),
            DeltaRecord::delete(key(0), tv_common::Tid(3)),
        ];
        assert_eq!(idx.update_items(&recs).unwrap(), 3);
        assert_eq!(idx.len(), 1);
    }
}
