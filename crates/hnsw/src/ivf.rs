//! IVF-Flat: an inverted-file index behind the same [`VectorIndex`] trait.
//!
//! The paper notes that "other vector indexes (such as quantization-based
//! indexes) can be easily integrated into TigerVector" because the engine
//! only needs the four generic functions (§4.4). This module demonstrates
//! that: a k-means coarse quantizer with `nprobe` list probing implements
//! the same trait as HNSW, and the embedding service composes with it
//! unchanged. It also serves as the ablation partner in the benchmark
//! suite (HNSW vs IVF recall/latency trade-offs).

use crate::index::{DeltaAction, DeltaRecord, VectorIndex};
use crate::stats::SearchStats;
use std::collections::HashMap;
use tv_common::bitmap::Filter;
use tv_common::kernels;
use tv_common::{
    DistanceMetric, Neighbor, NeighborHeap, PreparedQuery, SplitMix64, TvError, TvResult, VertexId,
};

/// IVF-Flat configuration.
#[derive(Debug, Clone, Copy)]
pub struct IvfConfig {
    /// Vector dimensionality.
    pub dim: usize,
    /// Distance metric.
    pub metric: DistanceMetric,
    /// Number of inverted lists (k-means centroids).
    pub nlist: usize,
    /// Lists probed per query.
    pub nprobe: usize,
    /// k-means iterations at (re)train time.
    pub train_iters: usize,
    /// RNG seed for centroid init.
    pub seed: u64,
}

impl IvfConfig {
    /// Reasonable defaults for `dim`/`metric`.
    #[must_use]
    pub fn new(dim: usize, metric: DistanceMetric) -> Self {
        IvfConfig {
            dim,
            metric,
            nlist: 64,
            nprobe: 8,
            train_iters: 5,
            seed: 0x1F1F,
        }
    }
}

/// Inverted-file flat index: coarse k-means partition + exact scan of the
/// probed lists.
pub struct IvfFlatIndex {
    cfg: IvfConfig,
    /// Flat centroid storage (nlist × dim), empty until trained.
    centroids: Vec<f32>,
    /// Euclidean norm per centroid (refreshed whenever centroids move).
    centroid_norms: Vec<f32>,
    /// Per-list member slots.
    lists: Vec<Vec<u32>>,
    /// Slot-major vectors.
    vectors: Vec<f32>,
    /// Per-slot Euclidean norm cache.
    norms: Vec<f32>,
    keys: Vec<VertexId>,
    slot_of: HashMap<VertexId, u32>,
    deleted: Vec<bool>,
    live: usize,
}

impl IvfFlatIndex {
    /// New untrained index.
    #[must_use]
    pub fn new(cfg: IvfConfig) -> Self {
        assert!(cfg.dim > 0 && cfg.nlist > 0, "bad IVF config");
        IvfFlatIndex {
            cfg,
            centroids: Vec::new(),
            centroid_norms: Vec::new(),
            lists: vec![Vec::new(); cfg.nlist],
            vectors: Vec::new(),
            norms: Vec::new(),
            keys: Vec::new(),
            slot_of: HashMap::new(),
            deleted: Vec::new(),
            live: 0,
        }
    }

    fn vec_of(&self, slot: u32) -> &[f32] {
        let d = self.cfg.dim;
        &self.vectors[slot as usize * d..(slot as usize + 1) * d]
    }

    fn centroid(&self, c: usize) -> &[f32] {
        let d = self.cfg.dim;
        &self.centroids[c * d..(c + 1) * d]
    }

    /// Whether k-means has run.
    #[must_use]
    pub fn is_trained(&self) -> bool {
        !self.centroids.is_empty()
    }

    /// Train the coarse quantizer on the current live vectors and rebuild
    /// the inverted lists. Call after bulk loading (or rely on the lazy
    /// training in `top_k`).
    pub fn train(&mut self) {
        let d = self.cfg.dim;
        let live_slots: Vec<u32> = (0..self.keys.len() as u32)
            .filter(|&s| !self.deleted[s as usize])
            .collect();
        if live_slots.is_empty() {
            self.centroids.clear();
            self.centroid_norms.clear();
            return;
        }
        let nlist = self.cfg.nlist.min(live_slots.len());
        // Init: sample distinct points.
        let mut rng = SplitMix64::new(self.cfg.seed);
        let mut picks = live_slots.clone();
        rng.shuffle(&mut picks);
        self.centroids = picks[..nlist]
            .iter()
            .flat_map(|&s| self.vec_of(s).to_vec())
            .collect();
        self.refresh_centroid_norms(nlist);
        // Lloyd iterations.
        let mut scratch: Vec<f32> = Vec::new();
        for _ in 0..self.cfg.train_iters {
            let mut sums = vec![0.0f64; nlist * d];
            let mut counts = vec![0usize; nlist];
            for &s in &live_slots {
                let v = self.vec_of(s);
                let c = self.nearest_centroid(v, nlist, &mut scratch);
                counts[c] += 1;
                for (j, &x) in v.iter().enumerate() {
                    sums[c * d + j] += f64::from(x);
                }
            }
            for c in 0..nlist {
                if counts[c] > 0 {
                    for j in 0..d {
                        self.centroids[c * d + j] = (sums[c * d + j] / counts[c] as f64) as f32;
                    }
                }
            }
            self.refresh_centroid_norms(nlist);
        }
        // Rebuild lists.
        self.lists = vec![Vec::new(); nlist];
        for &s in &live_slots {
            let c = self.nearest_centroid(self.vec_of(s), nlist, &mut scratch);
            self.lists[c].push(s);
        }
    }

    fn refresh_centroid_norms(&mut self, nlist: usize) {
        let k = kernels::active();
        self.centroid_norms = (0..nlist)
            .map(|c| k.norm_sq(self.centroid(c)).sqrt())
            .collect();
    }

    /// Nearest centroid to `v`, scored over the contiguous centroid slab in
    /// one batched kernel call (`dists` is caller-owned scratch).
    fn nearest_centroid(&self, v: &[f32], nlist: usize, dists: &mut Vec<f32>) -> usize {
        let d = self.cfg.dim;
        let pq = PreparedQuery::new(self.cfg.metric, v);
        dists.clear();
        dists.resize(nlist, 0.0);
        pq.distance_batch(
            &self.centroids[..nlist * d],
            Some(&self.centroid_norms[..nlist]),
            dists,
        );
        let mut best = 0;
        let mut best_d = f32::INFINITY;
        for (c, &dc) in dists.iter().enumerate() {
            if dc < best_d {
                best_d = dc;
                best = c;
            }
        }
        best
    }

    /// Insert or replace; new points go to their nearest list (once
    /// trained) without retraining — the incremental-update path.
    pub fn insert(&mut self, key: VertexId, vector: &[f32]) -> TvResult<()> {
        if vector.len() != self.cfg.dim {
            return Err(TvError::DimensionMismatch {
                expected: self.cfg.dim,
                got: vector.len(),
            });
        }
        if let Some(&old) = self.slot_of.get(&key) {
            if !self.deleted[old as usize] {
                self.deleted[old as usize] = true;
                self.live -= 1;
            }
        }
        let slot = self.keys.len() as u32;
        self.vectors.extend_from_slice(vector);
        self.norms.push(kernels::active().norm_sq(vector).sqrt());
        self.keys.push(key);
        self.deleted.push(false);
        self.slot_of.insert(key, slot);
        self.live += 1;
        if self.is_trained() {
            let nlist = self.lists.len();
            let mut scratch = Vec::new();
            let c = self.nearest_centroid(vector, nlist, &mut scratch);
            self.lists[c].push(slot);
        }
        Ok(())
    }

    /// Mark deleted.
    pub fn remove(&mut self, key: VertexId) -> bool {
        if let Some(&slot) = self.slot_of.get(&key) {
            if !self.deleted[slot as usize] {
                self.deleted[slot as usize] = true;
                self.live -= 1;
                self.slot_of.remove(&key);
                return true;
            }
        }
        false
    }
}

impl VectorIndex for IvfFlatIndex {
    fn dim(&self) -> usize {
        self.cfg.dim
    }

    fn metric(&self) -> DistanceMetric {
        self.cfg.metric
    }

    fn len(&self) -> usize {
        self.live
    }

    fn get_embedding(&self, id: VertexId) -> Option<&[f32]> {
        let &slot = self.slot_of.get(&id)?;
        if self.deleted[slot as usize] {
            None
        } else {
            Some(self.vec_of(slot))
        }
    }

    fn top_k(
        &self,
        query: &[f32],
        k: usize,
        _ef: usize,
        filter: Filter<'_>,
    ) -> (Vec<Neighbor>, SearchStats) {
        let mut stats = SearchStats::default();
        if k == 0 || query.len() != self.cfg.dim || self.live == 0 {
            return (Vec::new(), stats);
        }
        let d = self.cfg.dim;
        let pq = PreparedQuery::new(self.cfg.metric, query);
        let mut dists: Vec<f32> = Vec::new();
        if !self.is_trained() {
            // Untrained: exact scan (small indexes never need training) —
            // gather the accepted slots, then one batched scoring pass.
            stats.brute_force = true;
            let mut heap = NeighborHeap::new(k);
            let mut accepted: Vec<u32> = Vec::with_capacity(self.live);
            for (&key, &slot) in &self.slot_of {
                if !filter.accepts(key.local().0 as usize) {
                    stats.filtered_out += 1;
                    continue;
                }
                accepted.push(slot);
            }
            pq.distance_slots(&self.vectors, d, &self.norms, &accepted, &mut dists);
            stats.distance_computations += accepted.len() as u64;
            for (&slot, &dist) in accepted.iter().zip(&dists) {
                heap.push(Neighbor::new(self.keys[slot as usize], dist));
            }
            return (heap.into_sorted(), stats);
        }
        // Rank centroids over the contiguous centroid slab in one batched
        // call, probe the nearest `nprobe` lists.
        let nlist = self.lists.len();
        dists.resize(nlist, 0.0);
        pq.distance_batch(
            &self.centroids[..nlist * d],
            Some(&self.centroid_norms[..nlist]),
            &mut dists,
        );
        stats.distance_computations += nlist as u64;
        let mut ranked: Vec<(f32, usize)> = dists.iter().copied().zip(0..nlist).collect();
        ranked.sort_unstable_by(|a, b| a.0.total_cmp(&b.0));
        let mut heap = NeighborHeap::new(k);
        let mut accepted: Vec<u32> = Vec::new();
        for &(_, c) in ranked.iter().take(self.cfg.nprobe.max(1)) {
            // Gather this list's valid members, then score them in one call.
            accepted.clear();
            for &slot in &self.lists[c] {
                if self.deleted[slot as usize] {
                    continue;
                }
                let key = self.keys[slot as usize];
                // Skip stale slots superseded by an upsert.
                if self.slot_of.get(&key) != Some(&slot) {
                    continue;
                }
                if !filter.accepts(key.local().0 as usize) {
                    stats.filtered_out += 1;
                    continue;
                }
                accepted.push(slot);
            }
            pq.distance_slots(&self.vectors, d, &self.norms, &accepted, &mut dists);
            stats.distance_computations += accepted.len() as u64;
            stats.hops += accepted.len() as u64;
            for (&slot, &dist) in accepted.iter().zip(&dists) {
                heap.push(Neighbor::new(self.keys[slot as usize], dist));
            }
        }
        (heap.into_sorted(), stats)
    }

    fn range_search(
        &self,
        query: &[f32],
        threshold: f32,
        ef: usize,
        filter: Filter<'_>,
    ) -> (Vec<Neighbor>, SearchStats) {
        // Same DiskANN-style doubling adaptation as HNSW (§4.4).
        let mut stats = SearchStats::default();
        let mut k = 16usize;
        loop {
            let (results, s) = self.top_k(query, k, ef, filter);
            stats.merge(&s);
            let exhausted = results.len() < k || results.len() >= self.live;
            let median = if results.is_empty() {
                f32::INFINITY
            } else {
                results[results.len() / 2].dist
            };
            if exhausted || threshold < median {
                return (
                    results
                        .into_iter()
                        .filter(|n| n.dist <= threshold)
                        .collect(),
                    stats,
                );
            }
            k *= 2;
        }
    }

    fn update_items(&mut self, records: &[DeltaRecord]) -> TvResult<usize> {
        let mut applied = 0;
        for rec in records {
            match rec.action {
                DeltaAction::Upsert => self.insert(rec.id, &rec.vector)?,
                DeltaAction::Delete => {
                    self.remove(rec.id);
                }
            }
            applied += 1;
        }
        Ok(applied)
    }

    fn scan(&self) -> Box<dyn Iterator<Item = (VertexId, &[f32])> + '_> {
        Box::new(self.slot_of.iter().map(|(&k, &s)| (k, self.vec_of(s))))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tv_common::ids::{LocalId, SegmentId};

    fn key(i: u32) -> VertexId {
        VertexId::new(SegmentId(0), LocalId(i))
    }

    fn clustered(n: usize, dim: usize, seed: u64) -> Vec<Vec<f32>> {
        let mut rng = SplitMix64::new(seed);
        let centers: Vec<Vec<f32>> = (0..8)
            .map(|_| (0..dim).map(|_| rng.next_f32() * 100.0).collect())
            .collect();
        (0..n)
            .map(|_| {
                let c = &centers[rng.next_below(8) as usize];
                c.iter()
                    .map(|&x| x + rng.next_gaussian() as f32 * 2.0)
                    .collect()
            })
            .collect()
    }

    fn build(n: usize) -> (IvfFlatIndex, Vec<Vec<f32>>) {
        let vecs = clustered(n, 8, 42);
        let mut idx = IvfFlatIndex::new(IvfConfig {
            nlist: 16,
            nprobe: 6,
            ..IvfConfig::new(8, DistanceMetric::L2)
        });
        for (i, v) in vecs.iter().enumerate() {
            idx.insert(key(i as u32), v).unwrap();
        }
        idx.train();
        (idx, vecs)
    }

    #[test]
    fn untrained_falls_back_to_exact() {
        let vecs = clustered(50, 8, 1);
        let mut idx = IvfFlatIndex::new(IvfConfig::new(8, DistanceMetric::L2));
        for (i, v) in vecs.iter().enumerate() {
            idx.insert(key(i as u32), v).unwrap();
        }
        assert!(!idx.is_trained());
        let (r, stats) = idx.top_k(&vecs[7], 1, 0, Filter::All);
        assert_eq!(r[0].id, key(7));
        assert!(stats.brute_force);
    }

    #[test]
    fn trained_search_finds_exact_match() {
        let (idx, vecs) = build(600);
        for probe in [0usize, 99, 321, 599] {
            let (r, stats) = idx.top_k(&vecs[probe], 1, 0, Filter::All);
            assert_eq!(r[0].id, key(probe as u32), "probe {probe}");
            assert!(!stats.brute_force);
            // Probing must scan far fewer points than the whole set.
            assert!(stats.hops < 600);
        }
    }

    #[test]
    fn recall_reasonable_on_clustered_data() {
        let (idx, vecs) = build(1000);
        let queries = clustered(20, 8, 9);
        let mut hits = 0;
        for q in &queries {
            let exact: Vec<u32> = {
                let mut scored: Vec<(f32, u32)> = vecs
                    .iter()
                    .enumerate()
                    .map(|(i, v)| (tv_common::metric::l2_sq(q, v), i as u32))
                    .collect();
                scored.sort_by(|a, b| a.0.total_cmp(&b.0));
                scored.into_iter().take(10).map(|(_, i)| i).collect()
            };
            let (got, _) = idx.top_k(q, 10, 0, Filter::All);
            hits += exact
                .iter()
                .filter(|e| got.iter().any(|n| n.id.local().0 == **e))
                .count();
        }
        let recall = hits as f64 / (20.0 * 10.0);
        assert!(recall > 0.8, "IVF recall {recall}");
    }

    #[test]
    fn incremental_insert_after_train() {
        let (mut idx, _) = build(200);
        let novel = vec![500.0; 8];
        idx.insert(key(9999), &novel).unwrap();
        let (r, _) = idx.top_k(&novel, 1, 0, Filter::All);
        assert_eq!(r[0].id, key(9999));
    }

    #[test]
    fn delete_and_upsert_respected() {
        let (mut idx, vecs) = build(100);
        assert!(idx.remove(key(5)));
        let (r, _) = idx.top_k(&vecs[5], 1, 0, Filter::All);
        assert_ne!(r[0].id, key(5));
        idx.insert(key(6), &[999.0; 8]).unwrap();
        assert_eq!(idx.get_embedding(key(6)).unwrap(), &[999.0f32; 8]);
        assert_eq!(idx.len(), 99);
    }

    #[test]
    fn filter_respected() {
        let (idx, vecs) = build(100);
        let bm = tv_common::Bitmap::from_indices(100, [3usize, 4]);
        let (r, _) = idx.top_k(&vecs[0], 5, 0, Filter::Valid(&bm));
        assert!(r.iter().all(|n| n.id.local().0 == 3 || n.id.local().0 == 4));
    }

    #[test]
    fn range_search_within_threshold() {
        let (idx, vecs) = build(300);
        let (r, _) = idx.range_search(&vecs[0], 50.0, 0, Filter::All);
        assert!(r.iter().all(|n| n.dist <= 50.0));
        assert!(r.iter().any(|n| n.id == key(0)));
    }

    #[test]
    fn update_items_works_via_trait() {
        let mut idx = IvfFlatIndex::new(IvfConfig::new(4, DistanceMetric::L2));
        let recs = vec![
            DeltaRecord::upsert(key(0), tv_common::Tid(1), vec![1.0; 4]),
            DeltaRecord::upsert(key(1), tv_common::Tid(2), vec![2.0; 4]),
            DeltaRecord::delete(key(0), tv_common::Tid(3)),
        ];
        assert_eq!(idx.update_items(&recs).unwrap(), 3);
        assert_eq!(idx.len(), 1);
    }
}
