//! Frozen, cache-conscious graph representation.
//!
//! The mutable index stores adjacency as a `Vec<Vec<Vec<u32>>>` forest —
//! three pointer hops and a separate heap allocation per node per level, so
//! every `search_layer` step is a cache-miss chain even though the distance
//! kernels are SIMD-speed and allocation-free. [`PackedGraph`] is the
//! compiled search form: level 0 (where almost all traversal work happens)
//! becomes one contiguous CSR — a single `u32` neighbor slab plus `n + 1`
//! prefix offsets — and the sparse upper levels pack into a second small
//! slab addressed through a per-node row base. Reading a neighbor list is
//! one offset lookup into an arena that the hardware prefetcher can stream.
//!
//! Compilation also renumbers slots by BFS order from the entry point
//! ([`bfs_order`]), so nodes that are neighbors in traversal are neighbors
//! in memory — the adjacency rows *and* the permuted vector/code rows of a
//! beam's candidates land in the same few pages. The permutation is applied
//! to every slot-indexed structure by `HnswIndex::apply_permutation`;
//! results stay bit-identical modulo the renumbering (locked by the
//! layout-oracle test suite).
//!
//! The packed form is read-only: mutations thaw the index back to the
//! forest (`PackedGraph::to_links`), and the vacuum/index-merge policy
//! recompiles. Correctness therefore never depends on layout freshness.

use std::collections::VecDeque;

/// CSR-packed adjacency: the frozen search representation compiled from the
/// per-node `Vec` forest at index-merge/snapshot-load time.
#[derive(Clone, Debug)]
pub(crate) struct PackedGraph {
    /// Whether search loops should issue software prefetch hints for
    /// upcoming candidates' vector/code and adjacency rows.
    pub(crate) prefetch: bool,
    /// `n + 1` prefix offsets into [`Self::l0_nbr`]; node `s`'s level-0
    /// neighbors are `l0_nbr[l0_off[s] .. l0_off[s + 1]]`.
    l0_off: Vec<u32>,
    /// Level-0 neighbor slab, concatenated in slot order.
    l0_nbr: Vec<u32>,
    /// `n + 1` prefix sums of upper rows per node: node `s` owns rows
    /// `upper_base[s] .. upper_base[s + 1]` (one row per level `1..=top`).
    upper_base: Vec<u32>,
    /// `total_rows + 1` prefix offsets into [`Self::upper_nbr`].
    upper_row_off: Vec<u32>,
    /// Upper-level neighbor slab.
    upper_nbr: Vec<u32>,
}

impl PackedGraph {
    /// Compile the forest into CSR slabs. Neighbor order within every list
    /// is preserved exactly, so traversal visit order — and therefore
    /// results — match the pointer form bit for bit.
    pub(crate) fn build(links: &[Vec<Vec<u32>>], prefetch: bool) -> Self {
        let n = links.len();
        let mut l0_off = Vec::with_capacity(n + 1);
        let mut l0_nbr = Vec::new();
        let mut upper_base = Vec::with_capacity(n + 1);
        let mut rows = 0u32;
        l0_off.push(0u32);
        upper_base.push(0u32);
        for per_node in links {
            if let Some(l0) = per_node.first() {
                l0_nbr.extend_from_slice(l0);
            }
            l0_off.push(l0_nbr.len() as u32);
            rows += per_node.len().saturating_sub(1) as u32;
            upper_base.push(rows);
        }
        let mut upper_row_off = Vec::with_capacity(rows as usize + 1);
        let mut upper_nbr = Vec::new();
        upper_row_off.push(0u32);
        for per_node in links {
            for level_list in per_node.iter().skip(1) {
                upper_nbr.extend_from_slice(level_list);
                upper_row_off.push(upper_nbr.len() as u32);
            }
        }
        PackedGraph {
            prefetch,
            l0_off,
            l0_nbr,
            upper_base,
            upper_row_off,
            upper_nbr,
        }
    }

    /// Node count.
    pub(crate) fn len(&self) -> usize {
        self.l0_off.len() - 1
    }

    /// The neighbor list of `slot` on `lvl` — one offset lookup, no pointer
    /// chase. Levels above the node's top return an empty slice, matching
    /// the forest's `per_node.get(lvl)` shape for out-of-range reads.
    #[inline]
    pub(crate) fn neighbors(&self, slot: u32, lvl: u8) -> &[u32] {
        let s = slot as usize;
        if lvl == 0 {
            &self.l0_nbr[self.l0_off[s] as usize..self.l0_off[s + 1] as usize]
        } else {
            let base = self.upper_base[s];
            let rows = self.upper_base[s + 1] - base;
            let r = u32::from(lvl) - 1;
            if r >= rows {
                return &[];
            }
            let row = (base + r) as usize;
            &self.upper_nbr[self.upper_row_off[row] as usize..self.upper_row_off[row + 1] as usize]
        }
    }

    /// Prefetch the head of `slot`'s level-0 adjacency row (issued when a
    /// candidate is admitted to the frontier, ahead of the pop that reads
    /// its list).
    #[inline]
    pub(crate) fn prefetch_l0_row(&self, k: &tv_common::Kernels, slot: u32) {
        let off = self.l0_off[slot as usize] as usize;
        k.prefetch(self.l0_nbr.as_ptr().wrapping_add(off).cast::<u8>());
    }

    /// Thaw back into the mutable forest (mutation paths and snapshot
    /// serialization). Node `s` gets `1 + upper_rows(s)` level lists, which
    /// is exactly the `levels[s] + 1` lists the forest held at compile time.
    pub(crate) fn to_links(&self) -> Vec<Vec<Vec<u32>>> {
        let n = self.len();
        (0..n)
            .map(|s| {
                let rows = (self.upper_base[s + 1] - self.upper_base[s]) as usize;
                let mut per_node = Vec::with_capacity(rows + 1);
                per_node.push(self.neighbors(s as u32, 0).to_vec());
                for lvl in 1..=rows {
                    per_node.push(self.neighbors(s as u32, lvl as u8).to_vec());
                }
                per_node
            })
            .collect()
    }

    /// Resident bytes of the five slabs (exact — CSR vectors are built once
    /// at final size, so capacity equals length).
    pub(crate) fn memory_bytes(&self) -> usize {
        (self.l0_off.len()
            + self.l0_nbr.len()
            + self.upper_base.len()
            + self.upper_row_off.len()
            + self.upper_nbr.len())
            * std::mem::size_of::<u32>()
    }

    /// Total stored neighbor ids across all levels.
    pub(crate) fn neighbor_count(&self) -> usize {
        self.l0_nbr.len() + self.upper_nbr.len()
    }

    /// Total upper-level rows (Σ levels\[s\]).
    pub(crate) fn upper_row_count(&self) -> usize {
        self.upper_row_off.len() - 1
    }
}

/// BFS renumbering from the entry point over level-0 adjacency: returns
/// `perm` with `perm[old_slot] = new_slot`. The entry becomes slot 0, its
/// neighbors 1, 2, … in list order, and so on breadth-first; slots
/// unreachable on level 0 are appended in ascending old-slot order.
///
/// The ordering is **idempotent**: on an already-BFS-ordered graph the BFS
/// re-discovers slots in exactly their current order (neighbor lists were
/// permuted but not reordered internally), so recompiling a compiled graph
/// yields the identity permutation and snapshot bytes stay stable.
pub(crate) fn bfs_order(links: &[Vec<Vec<u32>>], entry: u32) -> Vec<u32> {
    let n = links.len();
    let mut perm = vec![u32::MAX; n];
    let mut next: u32 = 0;
    let mut queue = VecDeque::new();
    perm[entry as usize] = next;
    next += 1;
    queue.push_back(entry);
    while let Some(s) = queue.pop_front() {
        if let Some(l0) = links[s as usize].first() {
            for &nb in l0 {
                if perm[nb as usize] == u32::MAX {
                    perm[nb as usize] = next;
                    next += 1;
                    queue.push_back(nb);
                }
            }
        }
    }
    for p in &mut perm {
        if *p == u32::MAX {
            *p = next;
            next += 1;
        }
    }
    perm
}

/// True iff `perm` maps every slot to itself.
pub(crate) fn is_identity(perm: &[u32]) -> bool {
    perm.iter().enumerate().all(|(i, &p)| p as usize == i)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A small forest: node 0 has levels 0..=2, node 1 levels 0..=0,
    /// node 2 levels 0..=1, node 3 has an empty level-0 list.
    fn forest() -> Vec<Vec<Vec<u32>>> {
        vec![
            vec![vec![1, 2], vec![2], vec![]],
            vec![vec![0, 3]],
            vec![vec![0], vec![0]],
            vec![vec![]],
        ]
    }

    #[test]
    fn csr_matches_forest_on_every_level() {
        let links = forest();
        let pg = PackedGraph::build(&links, false);
        assert_eq!(pg.len(), links.len());
        for (s, per_node) in links.iter().enumerate() {
            for (lvl, list) in per_node.iter().enumerate() {
                assert_eq!(
                    pg.neighbors(s as u32, lvl as u8),
                    list.as_slice(),
                    "node {s} level {lvl}"
                );
            }
            // Levels above the node's top read as empty.
            assert!(pg.neighbors(s as u32, per_node.len() as u8).is_empty());
            assert!(pg.neighbors(s as u32, 63).is_empty());
        }
        assert_eq!(pg.neighbor_count(), 7);
        assert_eq!(pg.upper_row_count(), 3);
    }

    #[test]
    fn thaw_roundtrips_exactly() {
        let links = forest();
        let pg = PackedGraph::build(&links, true);
        assert_eq!(pg.to_links(), links);
    }

    #[test]
    fn bfs_order_is_breadth_first_and_covers_strays() {
        // 0 -> {2, 1}, 2 -> {4}; 3 is unreachable on level 0.
        let links: Vec<Vec<Vec<u32>>> = vec![
            vec![vec![2, 1]],
            vec![vec![0]],
            vec![vec![4]],
            vec![vec![]],
            vec![vec![]],
        ];
        let perm = bfs_order(&links, 0);
        // entry=0, then neighbors in list order (2 then 1), then 2's
        // neighbor 4, then the unreachable 3 appended last.
        assert_eq!(perm, vec![0, 2, 1, 4, 3]);
    }

    #[test]
    fn bfs_order_is_idempotent() {
        let links = forest();
        let perm = bfs_order(&links, 0);
        // Apply the permutation: new_links[perm[s]] = map(links[s]).
        let mut permuted = vec![Vec::new(); links.len()];
        for (s, per_node) in links.iter().enumerate() {
            permuted[perm[s] as usize] = per_node
                .iter()
                .map(|l| l.iter().map(|&nb| perm[nb as usize]).collect())
                .collect();
        }
        let again = bfs_order(&permuted, perm[0]);
        assert!(is_identity(&again), "re-running BFS must be the identity");
    }

    #[test]
    fn empty_level0_lists_pack_and_thaw() {
        let links: Vec<Vec<Vec<u32>>> = vec![vec![vec![]], vec![vec![], vec![]]];
        let pg = PackedGraph::build(&links, false);
        assert!(pg.neighbors(0, 0).is_empty());
        assert!(pg.neighbors(1, 1).is_empty());
        assert_eq!(pg.to_links(), links);
        assert_eq!(pg.neighbor_count(), 0);
    }
}
