//! Property-based tests over the index invariants.

use crate::brute::BruteForceIndex;
use crate::config::HnswConfig;
use crate::index::{DeltaRecord, HnswIndex, VectorIndex};
use proptest::prelude::*;
use tv_common::bitmap::Filter;
use tv_common::ids::{LocalId, SegmentId};
use tv_common::{DistanceMetric, Tid, VertexId};

fn key(i: u32) -> VertexId {
    VertexId::new(SegmentId(0), LocalId(i))
}

/// Arbitrary small vector with bounded coordinates.
fn vec_strategy(dim: usize) -> impl Strategy<Value = Vec<f32>> {
    prop::collection::vec(-100.0f32..100.0, dim)
}

/// An arbitrary sequence of upsert/delete operations over a small key space.
#[derive(Debug, Clone)]
enum Op {
    Upsert(u32, Vec<f32>),
    Delete(u32),
}

fn op_strategy(dim: usize, keyspace: u32) -> impl Strategy<Value = Op> {
    prop_oneof![
        (0..keyspace, vec_strategy(dim)).prop_map(|(k, v)| Op::Upsert(k, v)),
        (0..keyspace).prop_map(Op::Delete),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 24, ..ProptestConfig::default() })]

    /// After any operation sequence, the HNSW index and the brute-force
    /// index agree on the live set and on every stored vector.
    #[test]
    fn hnsw_and_brute_agree_on_live_set(
        ops in prop::collection::vec(op_strategy(4, 16), 1..60)
    ) {
        let mut hnsw = HnswIndex::new(HnswConfig::new(4, DistanceMetric::L2).with_m(4));
        let mut brute = BruteForceIndex::new(4, DistanceMetric::L2);
        for op in &ops {
            match op {
                Op::Upsert(k, v) => {
                    hnsw.insert(key(*k), v).unwrap();
                    brute.insert(key(*k), v).unwrap();
                }
                Op::Delete(k) => {
                    hnsw.remove(key(*k));
                    brute.remove(key(*k));
                }
            }
        }
        prop_assert_eq!(hnsw.len(), brute.len());
        let mut hnsw_live: Vec<VertexId> = hnsw.scan().map(|(k, _)| k).collect();
        let mut brute_live: Vec<VertexId> = brute.scan().map(|(k, _)| k).collect();
        hnsw_live.sort_unstable();
        brute_live.sort_unstable();
        prop_assert_eq!(&hnsw_live, &brute_live);
        for id in hnsw_live {
            prop_assert_eq!(hnsw.get_embedding(id), brute.get_embedding(id));
        }
    }

    /// Top-k results are sorted by ascending distance, contain no duplicates,
    /// and never exceed k.
    #[test]
    fn topk_results_sorted_unique_bounded(
        vectors in prop::collection::vec(vec_strategy(4), 5..80),
        query in vec_strategy(4),
        k in 1usize..12,
    ) {
        let mut idx = HnswIndex::new(HnswConfig::new(4, DistanceMetric::L2).with_m(4));
        for (i, v) in vectors.iter().enumerate() {
            idx.insert(key(i as u32), v).unwrap();
        }
        let (r, _) = idx.top_k(&query, k, 64, Filter::All);
        prop_assert!(r.len() <= k);
        prop_assert!(r.windows(2).all(|w| w[0].dist <= w[1].dist));
        let mut ids: Vec<_> = r.iter().map(|n| n.id).collect();
        ids.sort_unstable();
        ids.dedup();
        prop_assert_eq!(ids.len(), r.len());
    }

    /// With ef covering the whole dataset, HNSW top-1 matches exact top-1.
    #[test]
    fn top1_exact_with_full_beam(
        vectors in prop::collection::vec(vec_strategy(3), 2..50),
        query in vec_strategy(3),
    ) {
        let mut idx = HnswIndex::new(HnswConfig::new(3, DistanceMetric::L2).with_m(8));
        let mut brute = BruteForceIndex::new(3, DistanceMetric::L2);
        for (i, v) in vectors.iter().enumerate() {
            idx.insert(key(i as u32), v).unwrap();
            brute.insert(key(i as u32), v).unwrap();
        }
        let n = vectors.len();
        let (h, _) = idx.top_k(&query, 1, n * 2, Filter::All);
        let (b, _) = brute.top_k(&query, 1, 0, Filter::All);
        prop_assert_eq!(h.len(), 1);
        // Equal distance (ties may pick different ids).
        prop_assert!((h[0].dist - b[0].dist).abs() <= 1e-4 * (1.0 + b[0].dist.abs()));
    }

    /// Range search never returns a point outside the threshold, under any
    /// metric.
    #[test]
    fn range_search_respects_threshold(
        vectors in prop::collection::vec(vec_strategy(3), 5..60),
        query in vec_strategy(3),
        threshold in 0.0f32..500.0,
    ) {
        let mut idx = HnswIndex::new(HnswConfig::new(3, DistanceMetric::L2).with_m(4));
        for (i, v) in vectors.iter().enumerate() {
            idx.insert(key(i as u32), v).unwrap();
        }
        let (r, _) = idx.range_search(&query, threshold, 32, Filter::All);
        prop_assert!(r.iter().all(|n| n.dist <= threshold));
    }

    /// Snapshot roundtrip preserves the live set exactly.
    #[test]
    fn snapshot_roundtrip_preserves_live_set(
        ops in prop::collection::vec(op_strategy(3, 12), 1..40)
    ) {
        let mut idx = HnswIndex::new(HnswConfig::new(3, DistanceMetric::L2).with_m(4));
        let recs: Vec<DeltaRecord> = ops.iter().enumerate().map(|(i, op)| match op {
            Op::Upsert(k, v) => DeltaRecord::upsert(key(*k), Tid(i as u64), v.clone()),
            Op::Delete(k) => DeltaRecord::delete(key(*k), Tid(i as u64)),
        }).collect();
        idx.update_items(&recs).unwrap();
        let restored = crate::snapshot::from_bytes(&crate::snapshot::to_bytes(&idx)).unwrap();
        prop_assert_eq!(restored.len(), idx.len());
        let mut a: Vec<VertexId> = idx.scan().map(|(k, _)| k).collect();
        let mut b: Vec<VertexId> = restored.scan().map(|(k, _)| k).collect();
        a.sort_unstable();
        b.sort_unstable();
        prop_assert_eq!(a, b);
    }
}
