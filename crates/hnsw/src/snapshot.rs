//! Binary snapshot serialization for HNSW indexes.
//!
//! The index-merge vacuum produces *index snapshots* that the engine switches
//! to atomically (§4.3, Fig. 4). A snapshot is a self-contained byte image:
//! config, keys, vectors, levels, tombstones, adjacency, and entry point.
//! The format is a simple length-prefixed little-endian layout — versioned,
//! with a magic header, so corrupt or foreign files fail loudly instead of
//! deserializing garbage.

use crate::config::HnswConfig;
use crate::index::{HnswIndex, QuantState, RerankStore};
use tv_common::{DistanceMetric, QuantSpec, StorageTier, TvError, TvResult, VertexId};
use tv_quant::{Codec, QuantizedCodec};

const MAGIC: &[u8; 8] = b"TVHNSW01";
/// Version 2 adds the quantized-storage block (and makes the f32 arena
/// optional). Unquantized indexes still serialize as v1 byte-for-byte, so
/// every pre-existing snapshot and checkpoint stays readable and stable.
const MAGIC2: &[u8; 8] = b"TVHNSW02";
/// Version 3 marks a **compiled** (CSR-packed, BFS-reordered) index: a
/// layout tag and a quant-presence flag, followed by exactly the v1/v2
/// payload. The stored slot order *is* the compiled order, so loading
/// rebuilds the CSR without re-permuting and re-serialization reproduces
/// the image byte-for-byte. Uncompiled indexes keep writing v1/v2.
const MAGIC3: &[u8; 8] = b"TVHNSW03";

const LAYOUT_PACKED: u8 = 1;
const LAYOUT_PACKED_PREFETCH: u8 = 2;

const TIER_SQ8: u8 = 1;
const TIER_PQ: u8 = 2;

/// Serialize an index into a byte buffer.
#[must_use]
pub fn to_bytes(index: &HnswIndex) -> Vec<u8> {
    let (cfg, vectors, keys, links, levels, deleted, entry) = index.parts();
    let quant = index.quant();
    // A compiled index keeps no pointer forest; materialize one for the
    // stable on-disk shape (slot order is already the BFS order).
    let thawed;
    let (links, layout_tag) = match index.packed() {
        Some(p) => {
            thawed = p.to_links();
            let tag = if p.prefetch {
                LAYOUT_PACKED_PREFETCH
            } else {
                LAYOUT_PACKED
            };
            (thawed.as_slice(), Some(tag))
        }
        None => (links, None),
    };
    let mut buf = Vec::with_capacity(64 + vectors.len() * 4 + keys.len() * 16);
    match layout_tag {
        Some(tag) => {
            buf.extend_from_slice(MAGIC3);
            buf.push(tag);
            buf.push(u8::from(quant.is_some()));
        }
        None if quant.is_some() => buf.extend_from_slice(MAGIC2),
        None => buf.extend_from_slice(MAGIC),
    }
    write_header(&mut buf, cfg, keys.len());
    if let Some(q) = quant {
        // Whether the f32 arena follows (codes-only tiers drop it).
        buf.push(u8::from(!vectors.is_empty()));
        write_body(&mut buf, vectors, keys, links, levels, deleted, entry);
        write_quant(&mut buf, q);
    } else {
        write_body(&mut buf, vectors, keys, links, levels, deleted, entry);
    }
    buf
}

fn write_header(buf: &mut Vec<u8>, cfg: &HnswConfig, n: usize) {
    // Config.
    put_u64(buf, cfg.dim as u64);
    buf.push(metric_tag(cfg.metric));
    put_u64(buf, cfg.m as u64);
    put_u64(buf, cfg.m0 as u64);
    put_u64(buf, cfg.ef_construction as u64);
    put_f64(buf, cfg.ml.unwrap_or(f64::NAN));
    put_u64(buf, cfg.seed);
    // Node count.
    put_u64(buf, n as u64);
}

fn write_body(
    buf: &mut Vec<u8>,
    vectors: &[f32],
    keys: &[VertexId],
    links: &[Vec<Vec<u32>>],
    levels: &[u8],
    deleted: &[bool],
    entry: Option<(u32, u8)>,
) {
    // Keys.
    for k in keys {
        put_u64(buf, k.0);
    }
    // Levels + deleted flags.
    buf.extend(levels.iter().copied());
    buf.extend(deleted.iter().map(|&d| u8::from(d)));
    // Vectors (absent in codes-only v2 snapshots).
    for v in vectors {
        buf.extend_from_slice(&v.to_le_bytes());
    }
    // Links: per node, level count then per-level neighbor lists.
    for per_node in links {
        put_u32(buf, per_node.len() as u32);
        for level_links in per_node {
            put_u32(buf, level_links.len() as u32);
            for &nb in level_links {
                put_u32(buf, nb);
            }
        }
    }
    // Entry point.
    match entry {
        Some((slot, lvl)) => {
            buf.push(1);
            put_u32(buf, slot);
            buf.push(lvl);
        }
        None => buf.push(0),
    }
}

/// Quantized-storage block: spec, codec image, code arena, reconstruction
/// norms, and the optional rerank side store. Norms are serialized (not
/// recomputed on load) so recovery is bit-identical by construction.
fn write_quant(buf: &mut Vec<u8>, q: &QuantState) {
    match q.spec.tier {
        StorageTier::Sq8 => buf.push(TIER_SQ8),
        StorageTier::Pq { m } => {
            buf.push(TIER_PQ);
            put_u32(buf, m as u32);
        }
        StorageTier::F32 => unreachable!("quant state never carries the f32 tier"),
    }
    buf.push(u8::from(q.spec.keep_f32));
    put_u32(buf, q.spec.rerank_factor as u32);
    write_codec_block(buf, &q.codec, &q.codes, &q.recon_norms);
    match &q.rerank {
        Some(r) => {
            buf.push(1);
            write_codec_block(buf, &r.codec, &r.codes, &r.recon_norms);
        }
        None => buf.push(0),
    }
}

fn write_codec_block(buf: &mut Vec<u8>, codec: &Codec, codes: &[u8], recon_norms: &[f32]) {
    let image = codec.to_bytes();
    put_u32(buf, image.len() as u32);
    buf.extend_from_slice(&image);
    put_u32(buf, codec.code_len() as u32);
    buf.extend_from_slice(codes);
    put_u32(buf, recon_norms.len() as u32);
    for &v in recon_norms {
        buf.extend_from_slice(&v.to_le_bytes());
    }
}

/// Deserialize an index from a snapshot buffer (either version).
pub fn from_bytes(data: &[u8]) -> TvResult<HnswIndex> {
    let mut r = Reader { data, pos: 0 };
    let magic = r.take(8)?;
    let v2 = magic == MAGIC2;
    let v3 = magic == MAGIC3;
    if magic != MAGIC && !v2 && !v3 {
        return Err(TvError::Storage("bad snapshot magic".into()));
    }
    // v3 prefixes a compiled-layout tag and a quant-presence flag before
    // the common payload.
    let layout_prefetch = if v3 {
        match r.u8()? {
            LAYOUT_PACKED => Some(false),
            LAYOUT_PACKED_PREFETCH => Some(true),
            _ => return Err(TvError::Storage("corrupt snapshot: layout tag".into())),
        }
    } else {
        None
    };
    let has_quant = if v3 {
        match r.u8()? {
            0 => false,
            1 => true,
            _ => return Err(TvError::Storage("corrupt snapshot: quant flag".into())),
        }
    } else {
        v2
    };
    let dim = r.u64()? as usize;
    let metric = metric_from_tag(r.u8()?)?;
    let m = r.u64()? as usize;
    let m0 = r.u64()? as usize;
    let ef_construction = r.u64()? as usize;
    let ml_raw = r.f64()?;
    let seed = r.u64()?;
    let cfg = HnswConfig {
        dim,
        metric,
        m,
        m0,
        ef_construction,
        ml: if ml_raw.is_nan() { None } else { Some(ml_raw) },
        seed,
    };
    let n = r.u64()? as usize;
    if n > (u32::MAX as usize) {
        return Err(TvError::Storage("snapshot too large".into()));
    }
    // Quantized snapshots carry an explicit "arena present" flag
    // (codes-only tiers drop the f32 vectors); others always have it.
    let vectors_present = if has_quant { r.u8()? != 0 } else { true };
    // Every node occupies at least 8 (key) + 1 (level) + 1 (tombstone) +
    // 4*dim (vector, when present) + 4 (link count) bytes. Clamp the
    // declared count against the bytes actually present BEFORE any
    // allocation, so a corrupt header in a tiny file cannot demand
    // gigabytes.
    let per_node_vec = if vectors_present {
        dim.saturating_mul(4)
    } else {
        0
    };
    let min_node_bytes = 14usize.saturating_add(per_node_vec);
    if n.saturating_mul(min_node_bytes) > r.remaining() {
        return Err(TvError::Storage(format!(
            "corrupt snapshot: {n} nodes cannot fit in {} remaining bytes",
            r.remaining()
        )));
    }
    let mut keys = Vec::with_capacity(n);
    for _ in 0..n {
        keys.push(VertexId(r.u64()?));
    }
    let levels = r.take(n)?.to_vec();
    let deleted: Vec<bool> = r.take(n)?.iter().map(|&b| b != 0).collect();
    let mut vectors = Vec::new();
    if vectors_present {
        let vec_count = n
            .checked_mul(dim)
            .ok_or_else(|| TvError::Storage("corrupt snapshot: vector count overflow".into()))?;
        if vec_count.saturating_mul(4) > r.remaining() {
            return Err(TvError::Storage("truncated snapshot".into()));
        }
        vectors.reserve_exact(vec_count);
        for _ in 0..vec_count {
            vectors.push(r.f32()?);
        }
    }
    let mut links = Vec::with_capacity(n);
    for _ in 0..n {
        let lc = r.u32()? as usize;
        if lc > 64 {
            return Err(TvError::Storage("corrupt snapshot: level count".into()));
        }
        let mut per_node = Vec::with_capacity(lc);
        for _ in 0..lc {
            let cnt = r.u32()? as usize;
            if cnt > n {
                return Err(TvError::Storage("corrupt snapshot: neighbor count".into()));
            }
            let mut l = Vec::with_capacity(cnt);
            for _ in 0..cnt {
                let nb = r.u32()?;
                if nb as usize >= n {
                    return Err(TvError::Storage("corrupt snapshot: neighbor id".into()));
                }
                l.push(nb);
            }
            per_node.push(l);
        }
        links.push(per_node);
    }
    let entry = match r.u8()? {
        0 => None,
        1 => {
            let slot = r.u32()?;
            let lvl = r.u8()?;
            if slot as usize >= n {
                return Err(TvError::Storage(format!(
                    "corrupt snapshot: entry slot {slot} out of range (n={n})"
                )));
            }
            // A node at level L carries L+1 adjacency lists; the entry
            // level must address one of them or the first search step
            // would index out of bounds.
            if usize::from(lvl) >= links[slot as usize].len() {
                return Err(TvError::Storage(format!(
                    "corrupt snapshot: entry level {lvl} exceeds node level"
                )));
            }
            Some((slot, lvl))
        }
        _ => return Err(TvError::Storage("corrupt snapshot: entry tag".into())),
    };
    let quant = if has_quant {
        Some(read_quant(&mut r, n, !vectors.is_empty())?)
    } else {
        None
    };
    if r.remaining() != 0 {
        return Err(TvError::Storage(format!(
            "corrupt snapshot: {} trailing bytes",
            r.remaining()
        )));
    }
    let mut index =
        HnswIndex::from_parts(cfg, vectors, keys, links, levels, deleted, entry, quant)?;
    if let Some(prefetch) = layout_prefetch {
        index.compile_from_stored(prefetch);
    }
    Ok(index)
}

fn read_quant(r: &mut Reader<'_>, n: usize, arena_present: bool) -> TvResult<QuantState> {
    let tier = match r.u8()? {
        TIER_SQ8 => StorageTier::Sq8,
        TIER_PQ => StorageTier::Pq {
            m: r.u32()? as usize,
        },
        _ => return Err(TvError::Storage("corrupt snapshot: tier tag".into())),
    };
    let keep_f32 = match r.u8()? {
        0 => false,
        1 => true,
        _ => return Err(TvError::Storage("corrupt snapshot: keep_f32 flag".into())),
    };
    if keep_f32 != arena_present {
        return Err(TvError::Storage(
            "corrupt snapshot: keep_f32 disagrees with arena presence".into(),
        ));
    }
    let rerank_factor = r.u32()? as usize;
    let (codec, codes, recon_norms) = read_codec_block(r, n)?;
    if codec.tier() != tier {
        return Err(TvError::Storage(
            "corrupt snapshot: codec disagrees with tier tag".into(),
        ));
    }
    let rerank = match r.u8()? {
        0 => None,
        1 => {
            let (rc, rcodes, rnorms) = read_codec_block(r, n)?;
            Some(RerankStore {
                codec: rc,
                codes: rcodes,
                recon_norms: rnorms,
            })
        }
        _ => return Err(TvError::Storage("corrupt snapshot: rerank flag".into())),
    };
    let spec = QuantSpec {
        tier,
        keep_f32,
        rerank_factor,
    };
    Ok(QuantState {
        spec,
        codec,
        codes,
        recon_norms,
        rerank,
    })
}

fn read_codec_block(r: &mut Reader<'_>, n: usize) -> TvResult<(Codec, Vec<u8>, Vec<f32>)> {
    let image_len = r.u32()? as usize;
    let codec = Codec::from_bytes(r.take(image_len)?)?;
    let code_len = r.u32()? as usize;
    if code_len != codec.code_len() {
        return Err(TvError::Storage(
            "corrupt snapshot: code length disagrees with codec".into(),
        ));
    }
    let total = n
        .checked_mul(code_len)
        .ok_or_else(|| TvError::Storage("corrupt snapshot: code arena overflow".into()))?;
    let codes = r.take(total)?.to_vec();
    let norm_count = r.u32()? as usize;
    if norm_count != 0 && norm_count != n {
        return Err(TvError::Storage(
            "corrupt snapshot: reconstruction norm count".into(),
        ));
    }
    let mut norms = Vec::with_capacity(norm_count);
    for _ in 0..norm_count {
        norms.push(r.f32()?);
    }
    Ok((codec, codes, norms))
}

fn metric_tag(m: DistanceMetric) -> u8 {
    match m {
        DistanceMetric::L2 => 0,
        DistanceMetric::Cosine => 1,
        DistanceMetric::InnerProduct => 2,
    }
}

fn metric_from_tag(t: u8) -> TvResult<DistanceMetric> {
    match t {
        0 => Ok(DistanceMetric::L2),
        1 => Ok(DistanceMetric::Cosine),
        2 => Ok(DistanceMetric::InnerProduct),
        _ => Err(TvError::Storage("corrupt snapshot: metric tag".into())),
    }
}

fn put_u32(buf: &mut Vec<u8>, v: u32) {
    buf.extend_from_slice(&v.to_le_bytes());
}
fn put_u64(buf: &mut Vec<u8>, v: u64) {
    buf.extend_from_slice(&v.to_le_bytes());
}
fn put_f64(buf: &mut Vec<u8>, v: f64) {
    buf.extend_from_slice(&v.to_le_bytes());
}

struct Reader<'a> {
    data: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn remaining(&self) -> usize {
        self.data.len() - self.pos
    }
    fn take(&mut self, n: usize) -> TvResult<&'a [u8]> {
        if n > self.remaining() {
            return Err(TvError::Storage("truncated snapshot".into()));
        }
        let s = &self.data[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }
    fn u8(&mut self) -> TvResult<u8> {
        Ok(self.take(1)?[0])
    }
    fn u32(&mut self) -> TvResult<u32> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }
    fn u64(&mut self) -> TvResult<u64> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }
    fn f32(&mut self) -> TvResult<f32> {
        Ok(f32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }
    fn f64(&mut self) -> TvResult<f64> {
        Ok(f64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::index::VectorIndex;
    use tv_common::bitmap::Filter;
    use tv_common::ids::{LocalId, SegmentId};
    use tv_common::SplitMix64;

    fn key(i: u32) -> VertexId {
        VertexId::new(SegmentId(3), LocalId(i))
    }

    fn sample_index(n: usize) -> HnswIndex {
        let mut rng = SplitMix64::new(77);
        let mut idx = HnswIndex::new(HnswConfig::new(8, DistanceMetric::L2));
        for i in 0..n {
            let v: Vec<f32> = (0..8).map(|_| rng.next_f32()).collect();
            idx.insert(key(i as u32), &v).unwrap();
        }
        idx
    }

    #[test]
    fn roundtrip_preserves_results() {
        let mut idx = sample_index(300);
        idx.remove(key(5));
        let q: Vec<f32> = vec![0.5; 8];
        let (before, _) = idx.top_k(&q, 10, 64, Filter::All);

        let bytes = to_bytes(&idx);
        let restored = from_bytes(&bytes).unwrap();
        let (after, _) = restored.top_k(&q, 10, 64, Filter::All);

        assert_eq!(
            before.iter().map(|n| n.id).collect::<Vec<_>>(),
            after.iter().map(|n| n.id).collect::<Vec<_>>()
        );
        assert_eq!(restored.len(), idx.len());
        assert_eq!(restored.tombstone_count(), idx.tombstone_count());
    }

    #[test]
    fn roundtrip_empty_index() {
        let idx = HnswIndex::new(HnswConfig::new(4, DistanceMetric::Cosine));
        let restored = from_bytes(&to_bytes(&idx)).unwrap();
        assert_eq!(restored.len(), 0);
        assert_eq!(restored.metric(), DistanceMetric::Cosine);
    }

    #[test]
    fn bad_magic_rejected() {
        let mut bytes = to_bytes(&sample_index(10));
        bytes[0] = b'X';
        assert!(from_bytes(&bytes).is_err());
    }

    #[test]
    fn truncated_rejected() {
        let bytes = to_bytes(&sample_index(10));
        assert!(from_bytes(&bytes[..bytes.len() / 2]).is_err());
        assert!(from_bytes(&bytes[..4]).is_err());
        assert!(from_bytes(&[]).is_err());
    }

    #[test]
    fn huge_declared_count_in_tiny_file_rejected_cheaply() {
        // 50-byte file claiming ~2^62 nodes: must fail fast on the clamp,
        // never attempt the multi-GB allocation.
        let valid = to_bytes(&sample_index(3));
        let mut bytes = valid[..50].to_vec();
        // Node count lives right after magic(8) + dim(8) + metric(1) +
        // m(8) + m0(8) + ef(8) + ml(8) + seed(8) = offset 57 in a full
        // header; rebuild a minimal header instead of patching offsets.
        bytes.clear();
        bytes.extend_from_slice(MAGIC);
        put_u64(&mut bytes, 8); // dim
        bytes.push(0); // metric
        put_u64(&mut bytes, 16); // m
        put_u64(&mut bytes, 32); // m0
        put_u64(&mut bytes, 100); // ef_construction
        put_f64(&mut bytes, f64::NAN); // ml
        put_u64(&mut bytes, 42); // seed
        put_u64(&mut bytes, 1 << 62); // node count
        assert!(bytes.len() < 70);
        assert!(from_bytes(&bytes).is_err());
        // Same for a count that overflows n * dim.
        let cnt_off = bytes.len() - 8;
        bytes[cnt_off..].copy_from_slice(&u64::from(u32::MAX).to_le_bytes());
        assert!(from_bytes(&bytes).is_err());
    }

    #[test]
    fn corrupt_entry_point_rejected() {
        let bytes = to_bytes(&sample_index(20));
        // The entry record is the final 6 bytes: tag(1) slot(4) lvl(1).
        let slot_off = bytes.len() - 5;
        let lvl_off = bytes.len() - 1;
        assert_eq!(bytes[bytes.len() - 6], 1, "sample index has an entry");

        let mut bad_slot = bytes.clone();
        bad_slot[slot_off..slot_off + 4].copy_from_slice(&999u32.to_le_bytes());
        assert!(from_bytes(&bad_slot).is_err());

        let mut bad_lvl = bytes.clone();
        bad_lvl[lvl_off] = 200;
        assert!(from_bytes(&bad_lvl).is_err());
    }

    #[test]
    fn truncation_fuzz_always_errs_never_panics() {
        let bytes = to_bytes(&sample_index(40));
        // Every strict prefix must fail cleanly: each byte participates in
        // the parse, so no truncation can silently decode.
        for cut in 0..bytes.len() {
            assert!(from_bytes(&bytes[..cut]).is_err(), "prefix of {cut} bytes");
        }
    }

    #[test]
    fn byte_flip_fuzz_never_panics_or_overallocates() {
        let bytes = to_bytes(&sample_index(40));
        let mut rng = SplitMix64::new(0xF1A5);
        // Deterministic single-bit flips across the whole image. Decoding
        // may succeed (a flipped vector lane is still a valid snapshot) but
        // must never panic, abort, or allocate beyond the input's scale.
        for trial in 0..500 {
            let mut mutated = bytes.clone();
            let pos = (rng.next_u64() as usize) % mutated.len();
            let bit = (rng.next_u64() % 8) as u32;
            mutated[pos] ^= 1 << bit;
            let _ = from_bytes(&mutated);
            // Multi-byte damage on the same image.
            if trial % 5 == 0 {
                let pos2 = (rng.next_u64() as usize) % mutated.len();
                mutated[pos2] = rng.next_u64() as u8;
                let _ = from_bytes(&mutated);
            }
        }
    }

    #[test]
    fn restored_index_accepts_updates() {
        let idx = sample_index(50);
        let mut restored = from_bytes(&to_bytes(&idx)).unwrap();
        restored.insert(key(1000), &[0.1; 8]).unwrap();
        assert_eq!(restored.len(), 51);
        let (r, _) = restored.top_k(&[0.1; 8], 1, 32, Filter::All);
        assert_eq!(r[0].id, key(1000));
    }

    use tv_common::QuantSpec;

    fn quantized_sample(n: usize, spec: QuantSpec) -> HnswIndex {
        let mut idx = sample_index(n);
        idx.quantize(spec).unwrap();
        idx
    }

    #[test]
    fn unquantized_snapshots_stay_v1() {
        // Byte-compat guarantee: indexes without a quant tier serialize
        // exactly as before this format revision.
        let bytes = to_bytes(&sample_index(20));
        assert_eq!(&bytes[..8], MAGIC);
    }

    #[test]
    fn v2_roundtrip_is_bit_identical_across_tiers() {
        for spec in [
            QuantSpec::sq8(),
            QuantSpec::sq8().with_keep_f32(true),
            QuantSpec::pq(4),
            QuantSpec::pq(4).with_keep_f32(true),
        ] {
            let idx = quantized_sample(120, spec);
            let bytes = to_bytes(&idx);
            assert_eq!(&bytes[..8], MAGIC2);
            let restored = from_bytes(&bytes).unwrap();
            // Re-serialization must reproduce the exact image — the
            // property the durability layer's checkpoint verification
            // builds on.
            assert_eq!(bytes, to_bytes(&restored), "spec {spec:?}");
            assert_eq!(restored.storage_tier(), spec.tier);
            assert_eq!(restored.quant_spec(), Some(spec));

            let q: Vec<f32> = vec![0.5; 8];
            let (before, _) = idx.top_k(&q, 10, 64, Filter::All);
            let (after, _) = restored.top_k(&q, 10, 64, Filter::All);
            assert_eq!(
                before.iter().map(|n| n.id).collect::<Vec<_>>(),
                after.iter().map(|n| n.id).collect::<Vec<_>>()
            );
        }
    }

    #[test]
    fn v2_restored_index_accepts_updates() {
        let idx = quantized_sample(60, QuantSpec::sq8());
        let mut restored = from_bytes(&to_bytes(&idx)).unwrap();
        restored.insert(key(1000), &[0.9; 8]).unwrap();
        let (r, _) = restored.top_k(&[0.9; 8], 1, 32, Filter::All);
        assert_eq!(r[0].id, key(1000));
    }

    #[test]
    fn v2_truncation_fuzz_always_errs_never_panics() {
        let bytes = to_bytes(&quantized_sample(30, QuantSpec::pq(4)));
        for cut in 0..bytes.len() {
            assert!(from_bytes(&bytes[..cut]).is_err(), "prefix of {cut} bytes");
        }
    }

    #[test]
    fn v2_byte_flip_fuzz_never_panics() {
        let bytes = to_bytes(&quantized_sample(30, QuantSpec::sq8()));
        let mut rng = SplitMix64::new(0xBEEF);
        for _ in 0..500 {
            let mut mutated = bytes.clone();
            let pos = (rng.next_u64() as usize) % mutated.len();
            let bit = (rng.next_u64() % 8) as u32;
            mutated[pos] ^= 1 << bit;
            let _ = from_bytes(&mutated);
        }
    }

    use tv_common::GraphLayout;

    #[test]
    fn v3_roundtrip_is_bit_identical_and_stays_compiled() {
        for layout in [GraphLayout::Packed, GraphLayout::PackedPrefetch] {
            let mut idx = sample_index(150);
            idx.remove(key(7));
            assert!(idx.compile_layout(layout));
            let bytes = to_bytes(&idx);
            assert_eq!(&bytes[..8], MAGIC3);
            let restored = from_bytes(&bytes).unwrap();
            assert_eq!(restored.layout(), layout, "layout survives the trip");
            // Re-serialization reproduces the exact image: the stored slot
            // order is the BFS order, so the load-time CSR rebuild runs no
            // re-permutation.
            assert_eq!(bytes, to_bytes(&restored), "layout {layout}");

            let q: Vec<f32> = vec![0.5; 8];
            let (before, s1) = idx.top_k(&q, 10, 64, Filter::All);
            let (after, s2) = restored.top_k(&q, 10, 64, Filter::All);
            assert_eq!(before, after);
            assert_eq!(s1.packed_searches, 1);
            assert_eq!(s2.packed_searches, 1);
        }
    }

    #[test]
    fn v3_quantized_roundtrip_is_bit_identical() {
        for spec in [QuantSpec::sq8(), QuantSpec::pq(4).with_keep_f32(true)] {
            let mut idx = quantized_sample(120, spec);
            assert!(idx.compile_layout(GraphLayout::PackedPrefetch));
            let bytes = to_bytes(&idx);
            assert_eq!(&bytes[..8], MAGIC3);
            let restored = from_bytes(&bytes).unwrap();
            assert_eq!(bytes, to_bytes(&restored), "spec {spec:?}");
            assert_eq!(restored.quant_spec(), Some(spec));
            let q: Vec<f32> = vec![0.5; 8];
            let (before, _) = idx.top_k(&q, 10, 64, Filter::All);
            let (after, _) = restored.top_k(&q, 10, 64, Filter::All);
            assert_eq!(before, after);
        }
    }

    #[test]
    fn v3_layout_and_quant_tags_validated() {
        let mut idx = sample_index(20);
        idx.compile_layout(GraphLayout::Packed);
        let bytes = to_bytes(&idx);
        // Byte 8 is the layout tag, byte 9 the quant flag.
        let mut bad_layout = bytes.clone();
        bad_layout[8] = 7;
        assert!(from_bytes(&bad_layout).is_err());
        let mut bad_quant = bytes.clone();
        bad_quant[9] = 3;
        assert!(from_bytes(&bad_quant).is_err());
        // A quant flag claiming a block that is not there must fail on the
        // (now misaligned) payload, not panic.
        let mut lying_quant = bytes;
        lying_quant[9] = 1;
        assert!(from_bytes(&lying_quant).is_err());
    }

    #[test]
    fn v3_truncation_fuzz_always_errs_never_panics() {
        let mut idx = quantized_sample(30, QuantSpec::sq8());
        idx.compile_layout(GraphLayout::PackedPrefetch);
        let bytes = to_bytes(&idx);
        for cut in 0..bytes.len() {
            assert!(from_bytes(&bytes[..cut]).is_err(), "prefix of {cut} bytes");
        }
    }

    #[test]
    fn v3_byte_flip_fuzz_never_panics_or_overallocates() {
        let mut idx = sample_index(40);
        idx.compile_layout(GraphLayout::Packed);
        let bytes = to_bytes(&idx);
        let mut rng = SplitMix64::new(0xC511);
        for trial in 0..500 {
            let mut mutated = bytes.clone();
            let pos = (rng.next_u64() as usize) % mutated.len();
            let bit = (rng.next_u64() % 8) as u32;
            mutated[pos] ^= 1 << bit;
            let _ = from_bytes(&mutated);
            if trial % 5 == 0 {
                let pos2 = (rng.next_u64() as usize) % mutated.len();
                mutated[pos2] = rng.next_u64() as u8;
                let _ = from_bytes(&mutated);
            }
        }
    }

    #[test]
    fn v3_huge_declared_count_rejected_cheaply() {
        // A v3 header claiming ~2^62 nodes in a tiny file must fail on the
        // size clamp before any allocation.
        let mut bytes = Vec::new();
        bytes.extend_from_slice(MAGIC3);
        bytes.push(LAYOUT_PACKED); // layout tag
        bytes.push(0); // no quant
        put_u64(&mut bytes, 8); // dim
        bytes.push(0); // metric
        put_u64(&mut bytes, 16); // m
        put_u64(&mut bytes, 32); // m0
        put_u64(&mut bytes, 100); // ef_construction
        put_f64(&mut bytes, f64::NAN); // ml
        put_u64(&mut bytes, 42); // seed
        put_u64(&mut bytes, 1 << 62); // node count
        assert!(bytes.len() < 80);
        assert!(from_bytes(&bytes).is_err());
    }

    #[test]
    fn v3_restored_index_thaws_on_mutation() {
        let mut idx = sample_index(50);
        idx.compile_layout(GraphLayout::PackedPrefetch);
        let mut restored = from_bytes(&to_bytes(&idx)).unwrap();
        restored.insert(key(1000), &[0.1; 8]).unwrap();
        assert_eq!(restored.layout(), GraphLayout::Pointer);
        assert_eq!(restored.len(), 51);
        let (r, _) = restored.top_k(&[0.1; 8], 1, 32, Filter::All);
        assert_eq!(r[0].id, key(1000));
        // And a thawed index serializes back to the uncompiled format.
        assert_eq!(&to_bytes(&restored)[..8], MAGIC);
    }
}
