//! Search statistics.
//!
//! The paper notes TigerVector "enhance[s] the indexes to report relevant
//! statistics for measuring its performance" (§4.4). Benchmarks use these to
//! explain *why* a configuration is fast or slow (e.g. the Table 3/4 analysis
//! of brute-force vs. index search per segment), and the filtered-search
//! planner uses them as its feedback signal — which is why filter rejections
//! and tombstone skips are counted separately.

use serde::{Deserialize, Serialize};

/// Counters accumulated during one search call.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct SearchStats {
    /// Number of distance computations performed.
    pub distance_computations: u64,
    /// Number of graph edges traversed (candidate expansions).
    pub hops: u64,
    /// Number of candidates rejected by the caller's validity filter
    /// (deleted slots are counted in `deleted_skipped`, not here).
    pub filtered_out: u64,
    /// Number of tombstoned candidates skipped during traversal or scan.
    pub deleted_skipped: u64,
    /// Number of candidates rescored by the exact-rerank stage (quantized
    /// indexes only; included in `distance_computations` as well).
    pub reranked: u64,
    /// Overlay vectors whose dimensionality did not match the query; they
    /// cannot be scored, but silently dropping them hides data corruption.
    pub overlay_dim_mismatches: u64,
    /// Whether the engine chose brute force over the index for this call.
    pub brute_force: bool,
    /// Searches the planner routed to an exact scan of the filtered set.
    pub plans_brute: u64,
    /// Searches the planner routed to in-traversal bitmap filtering.
    pub plans_in_traversal: u64,
    /// Searches the planner routed to an unfiltered beam + post-filter.
    pub plans_post_filter: u64,
    /// Starvation escalations: a filtered search returned fewer than `k`
    /// results while valid points remained, so `ef` was doubled and the
    /// search retried.
    pub ef_escalations: u64,
    /// Starvation escalations that exhausted `max_ef` and fell back to an
    /// exact scan.
    pub brute_fallbacks: u64,
    /// Graph searches served from the compiled (CSR-packed, BFS-reordered)
    /// layout rather than the mutable pointer forest. Lets benchmarks and
    /// the planner's telemetry attribute throughput to layout freshness.
    pub packed_searches: u64,
}

impl SearchStats {
    /// Accumulate another search's counters into this one (used when a
    /// query fans out over many segments).
    pub fn merge(&mut self, other: &SearchStats) {
        self.distance_computations += other.distance_computations;
        self.hops += other.hops;
        self.filtered_out += other.filtered_out;
        self.deleted_skipped += other.deleted_skipped;
        self.reranked += other.reranked;
        self.overlay_dim_mismatches += other.overlay_dim_mismatches;
        self.brute_force |= other.brute_force;
        self.plans_brute += other.plans_brute;
        self.plans_in_traversal += other.plans_in_traversal;
        self.plans_post_filter += other.plans_post_filter;
        self.ef_escalations += other.ef_escalations;
        self.brute_fallbacks += other.brute_fallbacks;
        self.packed_searches += other.packed_searches;
    }

    /// Total segment searches the planner routed (one count per plan).
    #[must_use]
    pub fn plans_total(&self) -> u64 {
        self.plans_brute + self.plans_in_traversal + self.plans_post_filter
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn merge_accumulates() {
        let mut a = SearchStats {
            distance_computations: 10,
            hops: 5,
            filtered_out: 1,
            deleted_skipped: 2,
            reranked: 3,
            overlay_dim_mismatches: 0,
            brute_force: false,
            plans_brute: 1,
            plans_in_traversal: 0,
            plans_post_filter: 2,
            ef_escalations: 1,
            brute_fallbacks: 0,
            packed_searches: 2,
        };
        let b = SearchStats {
            distance_computations: 7,
            hops: 2,
            filtered_out: 0,
            deleted_skipped: 3,
            reranked: 4,
            overlay_dim_mismatches: 1,
            brute_force: true,
            plans_brute: 0,
            plans_in_traversal: 1,
            plans_post_filter: 0,
            ef_escalations: 0,
            brute_fallbacks: 1,
            packed_searches: 1,
        };
        a.merge(&b);
        assert_eq!(a.distance_computations, 17);
        assert_eq!(a.hops, 7);
        assert_eq!(a.filtered_out, 1);
        assert_eq!(a.deleted_skipped, 5);
        assert_eq!(a.reranked, 7);
        assert_eq!(a.overlay_dim_mismatches, 1);
        assert!(a.brute_force);
        assert_eq!(a.plans_total(), 4);
        assert_eq!(a.ef_escalations, 1);
        assert_eq!(a.brute_fallbacks, 1);
        assert_eq!(a.packed_searches, 3);
    }
}
