//! Search statistics.
//!
//! The paper notes TigerVector "enhance[s] the indexes to report relevant
//! statistics for measuring its performance" (§4.4). Benchmarks use these to
//! explain *why* a configuration is fast or slow (e.g. the Table 3/4 analysis
//! of brute-force vs. index search per segment).

use serde::{Deserialize, Serialize};

/// Counters accumulated during one search call.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct SearchStats {
    /// Number of distance computations performed.
    pub distance_computations: u64,
    /// Number of graph edges traversed (candidate expansions).
    pub hops: u64,
    /// Number of candidates rejected by the validity filter.
    pub filtered_out: u64,
    /// Number of candidates rescored by the exact-rerank stage (quantized
    /// indexes only; included in `distance_computations` as well).
    pub reranked: u64,
    /// Whether the engine chose brute force over the index for this call.
    pub brute_force: bool,
}

impl SearchStats {
    /// Accumulate another search's counters into this one (used when a
    /// query fans out over many segments).
    pub fn merge(&mut self, other: &SearchStats) {
        self.distance_computations += other.distance_computations;
        self.hops += other.hops;
        self.filtered_out += other.filtered_out;
        self.reranked += other.reranked;
        self.brute_force |= other.brute_force;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn merge_accumulates() {
        let mut a = SearchStats {
            distance_computations: 10,
            hops: 5,
            filtered_out: 1,
            reranked: 3,
            brute_force: false,
        };
        let b = SearchStats {
            distance_computations: 7,
            hops: 2,
            filtered_out: 0,
            reranked: 4,
            brute_force: true,
        };
        a.merge(&b);
        assert_eq!(a.distance_computations, 17);
        assert_eq!(a.hops, 7);
        assert_eq!(a.filtered_out, 1);
        assert_eq!(a.reranked, 7);
        assert!(a.brute_force);
    }
}
