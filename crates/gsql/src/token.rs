//! Lexer for the GSQL vector-search subset.

use tv_common::{TvError, TvResult};

/// One lexical token with its byte offset (for error messages).
#[derive(Debug, Clone, PartialEq)]
pub struct Token {
    /// Token kind/payload.
    pub kind: TokenKind,
    /// Byte offset in the source.
    pub offset: usize,
}

/// Token kinds.
#[derive(Debug, Clone, PartialEq)]
pub enum TokenKind {
    // Keywords (case-insensitive in source).
    Select,
    From,
    Where,
    Order,
    By,
    Limit,
    And,
    Or,
    Not,
    VectorDist,
    // Punctuation.
    LParen,
    RParen,
    LBracket,
    RBracket,
    Comma,
    Dot,
    Colon,
    Semicolon,
    ArrowRight, // ->
    ArrowLeft,  // <-
    Dash,       // -
    Lt,
    Gt,
    Le,
    Ge,
    Eq,  // =
    Neq, // != or <>
    // Literals and names.
    Ident(String),
    Param(String),
    Int(i64),
    Float(f64),
    Str(String),
}

/// Tokenize a query string.
pub fn tokenize(src: &str) -> TvResult<Vec<Token>> {
    let bytes = src.as_bytes();
    let mut out = Vec::new();
    let mut i = 0;
    while i < bytes.len() {
        let c = bytes[i] as char;
        let start = i;
        match c {
            ' ' | '\t' | '\r' | '\n' => {
                i += 1;
            }
            '-' if bytes.get(i + 1) == Some(&b'-') => {
                // Line comment.
                while i < bytes.len() && bytes[i] != b'\n' {
                    i += 1;
                }
            }
            '(' => {
                out.push(Token {
                    kind: TokenKind::LParen,
                    offset: start,
                });
                i += 1;
            }
            ')' => {
                out.push(Token {
                    kind: TokenKind::RParen,
                    offset: start,
                });
                i += 1;
            }
            '[' => {
                out.push(Token {
                    kind: TokenKind::LBracket,
                    offset: start,
                });
                i += 1;
            }
            ']' => {
                out.push(Token {
                    kind: TokenKind::RBracket,
                    offset: start,
                });
                i += 1;
            }
            ',' => {
                out.push(Token {
                    kind: TokenKind::Comma,
                    offset: start,
                });
                i += 1;
            }
            '.' => {
                out.push(Token {
                    kind: TokenKind::Dot,
                    offset: start,
                });
                i += 1;
            }
            ':' => {
                out.push(Token {
                    kind: TokenKind::Colon,
                    offset: start,
                });
                i += 1;
            }
            ';' => {
                out.push(Token {
                    kind: TokenKind::Semicolon,
                    offset: start,
                });
                i += 1;
            }
            '-' if bytes.get(i + 1) == Some(&b'>') => {
                out.push(Token {
                    kind: TokenKind::ArrowRight,
                    offset: start,
                });
                i += 2;
            }
            '-' => {
                out.push(Token {
                    kind: TokenKind::Dash,
                    offset: start,
                });
                i += 1;
            }
            '<' => {
                if bytes.get(i + 1) == Some(&b'-') {
                    out.push(Token {
                        kind: TokenKind::ArrowLeft,
                        offset: start,
                    });
                    i += 2;
                } else if bytes.get(i + 1) == Some(&b'=') {
                    out.push(Token {
                        kind: TokenKind::Le,
                        offset: start,
                    });
                    i += 2;
                } else if bytes.get(i + 1) == Some(&b'>') {
                    out.push(Token {
                        kind: TokenKind::Neq,
                        offset: start,
                    });
                    i += 2;
                } else {
                    out.push(Token {
                        kind: TokenKind::Lt,
                        offset: start,
                    });
                    i += 1;
                }
            }
            '>' => {
                if bytes.get(i + 1) == Some(&b'=') {
                    out.push(Token {
                        kind: TokenKind::Ge,
                        offset: start,
                    });
                    i += 2;
                } else {
                    out.push(Token {
                        kind: TokenKind::Gt,
                        offset: start,
                    });
                    i += 1;
                }
            }
            '=' => {
                out.push(Token {
                    kind: TokenKind::Eq,
                    offset: start,
                });
                i += 1;
            }
            '!' if bytes.get(i + 1) == Some(&b'=') => {
                out.push(Token {
                    kind: TokenKind::Neq,
                    offset: start,
                });
                i += 2;
            }
            '"' | '\'' => {
                let quote = bytes[i];
                i += 1;
                let s0 = i;
                while i < bytes.len() && bytes[i] != quote {
                    i += 1;
                }
                if i >= bytes.len() {
                    return Err(TvError::Parse {
                        message: "unterminated string".into(),
                        offset: start,
                    });
                }
                let text = std::str::from_utf8(&bytes[s0..i])
                    .map_err(|_| TvError::Parse {
                        message: "invalid utf-8 in string".into(),
                        offset: start,
                    })?
                    .to_string();
                out.push(Token {
                    kind: TokenKind::Str(text),
                    offset: start,
                });
                i += 1;
            }
            '$' => {
                i += 1;
                let s0 = i;
                while i < bytes.len() && (bytes[i].is_ascii_alphanumeric() || bytes[i] == b'_') {
                    i += 1;
                }
                if i == s0 {
                    return Err(TvError::Parse {
                        message: "empty parameter name".into(),
                        offset: start,
                    });
                }
                out.push(Token {
                    kind: TokenKind::Param(src[s0..i].to_string()),
                    offset: start,
                });
            }
            c if c.is_ascii_digit() => {
                let s0 = i;
                let mut is_float = false;
                while i < bytes.len()
                    && (bytes[i].is_ascii_digit()
                        || bytes[i] == b'.'
                        || bytes[i] == b'e'
                        || bytes[i] == b'E'
                        || ((bytes[i] == b'+' || bytes[i] == b'-')
                            && matches!(bytes[i - 1], b'e' | b'E')))
                {
                    if bytes[i] == b'.' || bytes[i] == b'e' || bytes[i] == b'E' {
                        is_float = true;
                    }
                    i += 1;
                }
                let text = &src[s0..i];
                let kind = if is_float {
                    TokenKind::Float(text.parse().map_err(|_| TvError::Parse {
                        message: format!("bad number '{text}'"),
                        offset: start,
                    })?)
                } else {
                    TokenKind::Int(text.parse().map_err(|_| TvError::Parse {
                        message: format!("bad number '{text}'"),
                        offset: start,
                    })?)
                };
                out.push(Token {
                    kind,
                    offset: start,
                });
            }
            c if c.is_ascii_alphabetic() || c == '_' => {
                let s0 = i;
                while i < bytes.len() && (bytes[i].is_ascii_alphanumeric() || bytes[i] == b'_') {
                    i += 1;
                }
                let word = &src[s0..i];
                let kind = match word.to_ascii_uppercase().as_str() {
                    "SELECT" => TokenKind::Select,
                    "FROM" => TokenKind::From,
                    "WHERE" => TokenKind::Where,
                    "ORDER" => TokenKind::Order,
                    "BY" => TokenKind::By,
                    "LIMIT" => TokenKind::Limit,
                    "AND" => TokenKind::And,
                    "OR" => TokenKind::Or,
                    "NOT" => TokenKind::Not,
                    "VECTOR_DIST" => TokenKind::VectorDist,
                    _ => TokenKind::Ident(word.to_string()),
                };
                out.push(Token { kind, offset: s0 });
            }
            other => {
                return Err(TvError::Parse {
                    message: format!("unexpected character '{other}'"),
                    offset: start,
                });
            }
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<TokenKind> {
        tokenize(src).unwrap().into_iter().map(|t| t.kind).collect()
    }

    #[test]
    fn keywords_case_insensitive() {
        assert_eq!(
            kinds("select FROM Order by LIMIT"),
            vec![
                TokenKind::Select,
                TokenKind::From,
                TokenKind::Order,
                TokenKind::By,
                TokenKind::Limit
            ]
        );
    }

    #[test]
    fn pattern_arrows() {
        assert_eq!(
            kinds("-[:knows]-> <-[:hasCreator]-"),
            vec![
                TokenKind::Dash,
                TokenKind::LBracket,
                TokenKind::Colon,
                TokenKind::Ident("knows".into()),
                TokenKind::RBracket,
                TokenKind::ArrowRight,
                TokenKind::ArrowLeft,
                TokenKind::LBracket,
                TokenKind::Colon,
                TokenKind::Ident("hasCreator".into()),
                TokenKind::RBracket,
                TokenKind::Dash,
            ]
        );
    }

    #[test]
    fn literals() {
        assert_eq!(
            kinds("42 3.5 1e3 \"hi\" 'there' $qv"),
            vec![
                TokenKind::Int(42),
                TokenKind::Float(3.5),
                TokenKind::Float(1000.0),
                TokenKind::Str("hi".into()),
                TokenKind::Str("there".into()),
                TokenKind::Param("qv".into()),
            ]
        );
    }

    #[test]
    fn comparison_operators() {
        assert_eq!(
            kinds("< <= > >= = != <>"),
            vec![
                TokenKind::Lt,
                TokenKind::Le,
                TokenKind::Gt,
                TokenKind::Ge,
                TokenKind::Eq,
                TokenKind::Neq,
                TokenKind::Neq,
            ]
        );
    }

    #[test]
    fn comments_skipped() {
        assert_eq!(
            kinds("SELECT -- a comment\n s"),
            vec![TokenKind::Select, TokenKind::Ident("s".into())]
        );
    }

    #[test]
    fn errors_carry_offsets() {
        let err = tokenize("SELECT \"unterminated").unwrap_err();
        match err {
            TvError::Parse { offset, .. } => assert_eq!(offset, 7),
            other => panic!("unexpected {other:?}"),
        }
        assert!(tokenize("a # b").is_err());
        assert!(tokenize("$ ").is_err());
    }

    #[test]
    fn vector_dist_keyword() {
        assert_eq!(
            kinds("VECTOR_DIST vector_dist"),
            vec![TokenKind::VectorDist; 2]
        );
    }
}
