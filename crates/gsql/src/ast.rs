//! Abstract syntax tree for the GSQL vector-search subset.

/// A parsed single-block query (`SELECT ... FROM <pattern> [WHERE ...]
/// [ORDER BY VECTOR_DIST(...) LIMIT k]`).
#[derive(Debug, Clone, PartialEq)]
pub struct Query {
    /// Selected aliases (one = vertex result; two = similarity-join pairs).
    pub select: Vec<String>,
    /// The path pattern: nodes interleaved with edges.
    pub pattern: Pattern,
    /// Optional boolean predicate.
    pub where_clause: Option<Expr>,
    /// Optional `ORDER BY VECTOR_DIST(a, b)`.
    pub order_by: Option<VectorDist>,
    /// Optional `LIMIT k`.
    pub limit: Option<Expr>,
}

/// A linear path pattern.
#[derive(Debug, Clone, PartialEq)]
pub struct Pattern {
    /// Node patterns, length = edges.len() + 1.
    pub nodes: Vec<NodePattern>,
    /// Edge patterns between consecutive nodes.
    pub edges: Vec<EdgePattern>,
}

/// `(alias:Label)` — either part may be omitted (`(:Label)` / `(alias)`).
#[derive(Debug, Clone, PartialEq)]
pub struct NodePattern {
    /// Binding alias, if named.
    pub alias: Option<String>,
    /// Vertex type label, if constrained.
    pub label: Option<String>,
}

/// `-[:etype]->` (Out) or `<-[:etype]-` (In).
#[derive(Debug, Clone, PartialEq)]
pub struct EdgePattern {
    /// Edge type name.
    pub etype: String,
    /// Traversal direction relative to the left node.
    pub direction: Direction,
}

/// Edge traversal direction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Direction {
    /// Left node is the source: `-[:t]->`.
    Out,
    /// Left node is the target: `<-[:t]-`.
    In,
}

/// `VECTOR_DIST(lhs, rhs)` — at least one side must be a vertex embedding
/// attribute; the other is either a parameter/literal vector (search) or a
/// second embedding attribute (similarity join).
#[derive(Debug, Clone, PartialEq)]
pub struct VectorDist {
    /// Left operand.
    pub lhs: VecRef,
    /// Right operand.
    pub rhs: VecRef,
}

/// A vector operand.
#[derive(Debug, Clone, PartialEq)]
pub enum VecRef {
    /// `alias.attr` — an embedding attribute on a pattern alias.
    Attr(String, String),
    /// `$param` — bound at execution time.
    Param(String),
}

/// Scalar/boolean expressions for `WHERE`.
#[derive(Debug, Clone, PartialEq)]
pub enum Expr {
    /// `alias.attr`.
    Attr(String, String),
    /// Literal value.
    Literal(Value),
    /// `$param`.
    Param(String),
    /// Binary comparison.
    Cmp(Box<Expr>, CmpOp, Box<Expr>),
    /// `VECTOR_DIST(a, b) < t` appears as a comparison whose LHS is this.
    VectorDist(VectorDist),
    /// Conjunction.
    And(Box<Expr>, Box<Expr>),
    /// Disjunction.
    Or(Box<Expr>, Box<Expr>),
    /// Negation.
    Not(Box<Expr>),
}

/// Comparison operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CmpOp {
    /// `=`.
    Eq,
    /// `!=` / `<>`.
    Neq,
    /// `<`.
    Lt,
    /// `<=`.
    Le,
    /// `>`.
    Gt,
    /// `>=`.
    Ge,
}

impl CmpOp {
    /// Source form.
    #[must_use]
    pub fn symbol(self) -> &'static str {
        match self {
            CmpOp::Eq => "=",
            CmpOp::Neq => "!=",
            CmpOp::Lt => "<",
            CmpOp::Le => "<=",
            CmpOp::Gt => ">",
            CmpOp::Ge => ">=",
        }
    }
}

/// Runtime values: literals and bound parameters.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// 64-bit integer.
    Int(i64),
    /// 64-bit float.
    Double(f64),
    /// String.
    Str(String),
    /// Boolean.
    Bool(bool),
    /// Vector (query vectors bound as parameters).
    Vector(Vec<f32>),
}

impl Value {
    /// Numeric view (ints widen).
    #[must_use]
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Int(i) => Some(*i as f64),
            Value::Double(d) => Some(*d),
            _ => None,
        }
    }

    /// Vector view.
    #[must_use]
    pub fn as_vector(&self) -> Option<&[f32]> {
        match self {
            Value::Vector(v) => Some(v),
            _ => None,
        }
    }
}

impl Expr {
    /// Collect the aliases this expression references.
    pub fn aliases(&self, out: &mut Vec<String>) {
        match self {
            Expr::Attr(a, _) => {
                if !out.contains(a) {
                    out.push(a.clone());
                }
            }
            Expr::Cmp(l, _, r) | Expr::And(l, r) | Expr::Or(l, r) => {
                l.aliases(out);
                r.aliases(out);
            }
            Expr::Not(e) => e.aliases(out),
            Expr::VectorDist(vd) => {
                for side in [&vd.lhs, &vd.rhs] {
                    if let VecRef::Attr(a, _) = side {
                        if !out.contains(a) {
                            out.push(a.clone());
                        }
                    }
                }
            }
            Expr::Literal(_) | Expr::Param(_) => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn value_accessors() {
        assert_eq!(Value::Int(3).as_f64(), Some(3.0));
        assert_eq!(Value::Double(2.5).as_f64(), Some(2.5));
        assert_eq!(Value::Str("x".into()).as_f64(), None);
        assert_eq!(Value::Vector(vec![1.0]).as_vector(), Some(&[1.0f32][..]));
        assert_eq!(Value::Int(1).as_vector(), None);
    }

    #[test]
    fn expr_alias_collection() {
        let e = Expr::And(
            Box::new(Expr::Cmp(
                Box::new(Expr::Attr("s".into(), "name".into())),
                CmpOp::Eq,
                Box::new(Expr::Literal(Value::Str("Alice".into()))),
            )),
            Box::new(Expr::Cmp(
                Box::new(Expr::Attr("t".into(), "length".into())),
                CmpOp::Gt,
                Box::new(Expr::Literal(Value::Int(1000))),
            )),
        );
        let mut aliases = Vec::new();
        e.aliases(&mut aliases);
        assert_eq!(aliases, vec!["s".to_string(), "t".to_string()]);
    }

    #[test]
    fn cmp_symbols() {
        assert_eq!(CmpOp::Le.symbol(), "<=");
        assert_eq!(CmpOp::Neq.symbol(), "!=");
    }
}
