//! # tv-gsql
//!
//! The GSQL-integrated declarative vector search layer (§5 of the paper):
//! a lexer, parser, semantic analyzer, planner, and executor for the query
//! forms TigerVector adds to GSQL, plus the composable `VectorSearch()`
//! function.
//!
//! Supported query shapes (all from the paper):
//!
//! ```text
//! -- §5.1 top-k vector search
//! SELECT s FROM (s:Post)
//! ORDER BY VECTOR_DIST(s.content_emb, $query_vector) LIMIT 10;
//!
//! -- §5.1 range search
//! SELECT s FROM (s:Post)
//! WHERE VECTOR_DIST(s.content_emb, $query_vector) < 0.5;
//!
//! -- §5.2 filtered vector search
//! SELECT s FROM (s:Post) WHERE s.language = "English"
//! ORDER BY VECTOR_DIST(s.content_emb, $query_vector) LIMIT 10;
//!
//! -- §5.3 vector search on graph patterns
//! SELECT t FROM (s:Person) -[:knows]-> (:Person) <-[:hasCreator]- (t:Post)
//! WHERE s.firstName = "Alice" AND t.length > 1000
//! ORDER BY VECTOR_DIST(t.content_emb, $query_vector) LIMIT 10;
//!
//! -- §5.4 vector similarity join on graph patterns
//! SELECT s, t FROM (s:Comment) -[:hasCreator]-> (u:Person)
//!   -[:knows]-> (v:Person) <-[:hasCreator]- (t:Comment)
//! WHERE u.firstName = "Alice"
//! ORDER BY VECTOR_DIST(s.content_emb, t.content_emb) LIMIT 10;
//! ```
//!
//! Execution follows the paper's plans: graph predicates and patterns
//! evaluate first (`VertexAction`), producing candidate bitmaps handed to
//! the per-segment vector indexes (`EmbeddingAction`) — the pre-filter
//! design of §5.2/§5.3. Similarity joins enumerate matched paths and push
//! pair distances through a global heap accumulator (§5.4).

pub mod ast;
pub mod exec;
pub mod func;
pub mod parser;
pub mod plan;
pub mod sema;
pub mod token;

pub use ast::{Query, Value};
pub use exec::{
    execute, execute_as, execute_at, execute_at_as, execute_at_as_stats, Params, QueryOutput,
    ResultRow,
};
pub use func::{community_topk, vector_search, vector_search_with_stats, VectorSearchOptions};
pub use parser::parse;
pub use plan::{explain, Plan};
