//! Recursive-descent parser for the GSQL vector-search subset.

use crate::ast::*;
use crate::token::{tokenize, Token, TokenKind};
use tv_common::{TvError, TvResult};

/// Parse one query (a trailing `;` is optional).
pub fn parse(src: &str) -> TvResult<Query> {
    let tokens = tokenize(src)?;
    let mut p = Parser { tokens, pos: 0 };
    let q = p.query()?;
    p.eat_if(&TokenKind::Semicolon);
    if !p.at_end() {
        return Err(p.error("trailing tokens after query"));
    }
    Ok(q)
}

struct Parser {
    tokens: Vec<Token>,
    pos: usize,
}

impl Parser {
    fn at_end(&self) -> bool {
        self.pos >= self.tokens.len()
    }

    fn peek(&self) -> Option<&TokenKind> {
        self.tokens.get(self.pos).map(|t| &t.kind)
    }

    fn offset(&self) -> usize {
        self.tokens
            .get(self.pos)
            .or_else(|| self.tokens.last())
            .map_or(0, |t| t.offset)
    }

    fn error(&self, msg: &str) -> TvError {
        TvError::Parse {
            message: msg.to_string(),
            offset: self.offset(),
        }
    }

    fn next(&mut self) -> Option<TokenKind> {
        let t = self.tokens.get(self.pos).map(|t| t.kind.clone());
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn expect(&mut self, kind: &TokenKind, what: &str) -> TvResult<()> {
        if self.peek() == Some(kind) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.error(&format!("expected {what}")))
        }
    }

    fn eat_if(&mut self, kind: &TokenKind) -> bool {
        if self.peek() == Some(kind) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn ident(&mut self, what: &str) -> TvResult<String> {
        match self.next() {
            Some(TokenKind::Ident(s)) => Ok(s),
            _ => {
                self.pos = self.pos.saturating_sub(1);
                Err(self.error(&format!("expected {what}")))
            }
        }
    }

    fn query(&mut self) -> TvResult<Query> {
        self.expect(&TokenKind::Select, "SELECT")?;
        let mut select = vec![self.ident("result alias")?];
        while self.eat_if(&TokenKind::Comma) {
            select.push(self.ident("result alias")?);
        }
        self.expect(&TokenKind::From, "FROM")?;
        let pattern = self.pattern()?;

        let where_clause = if self.eat_if(&TokenKind::Where) {
            Some(self.or_expr()?)
        } else {
            None
        };

        let mut order_by = None;
        if self.eat_if(&TokenKind::Order) {
            self.expect(&TokenKind::By, "BY after ORDER")?;
            self.expect(&TokenKind::VectorDist, "VECTOR_DIST in ORDER BY")?;
            order_by = Some(self.vector_dist_args()?);
        }

        let limit = if self.eat_if(&TokenKind::Limit) {
            Some(match self.next() {
                Some(TokenKind::Int(n)) => Expr::Literal(Value::Int(n)),
                Some(TokenKind::Param(p)) => Expr::Param(p),
                _ => return Err(self.error("expected LIMIT count")),
            })
        } else {
            None
        };

        if order_by.is_some() && limit.is_none() {
            return Err(self.error("ORDER BY VECTOR_DIST requires LIMIT"));
        }

        Ok(Query {
            select,
            pattern,
            where_clause,
            order_by,
            limit,
        })
    }

    fn pattern(&mut self) -> TvResult<Pattern> {
        let mut nodes = vec![self.node_pattern()?];
        let mut edges = Vec::new();
        loop {
            match self.peek() {
                // `-[:t]->`  or  `-[:t]-` (treated as Out)
                Some(TokenKind::Dash) => {
                    self.pos += 1;
                    let etype = self.edge_body()?;
                    if self.eat_if(&TokenKind::ArrowRight) || self.eat_if(&TokenKind::Dash) {
                        edges.push(EdgePattern {
                            etype,
                            direction: Direction::Out,
                        });
                    } else {
                        return Err(self.error("expected -> or - after edge"));
                    }
                    nodes.push(self.node_pattern()?);
                }
                // `<-[:t]-`
                Some(TokenKind::ArrowLeft) => {
                    self.pos += 1;
                    let etype = self.edge_body()?;
                    self.expect(&TokenKind::Dash, "- closing <-[:t]-")?;
                    edges.push(EdgePattern {
                        etype,
                        direction: Direction::In,
                    });
                    nodes.push(self.node_pattern()?);
                }
                _ => break,
            }
        }
        Ok(Pattern { nodes, edges })
    }

    fn edge_body(&mut self) -> TvResult<String> {
        self.expect(&TokenKind::LBracket, "[ in edge pattern")?;
        self.expect(&TokenKind::Colon, ": in edge pattern")?;
        let etype = self.ident("edge type")?;
        self.expect(&TokenKind::RBracket, "] in edge pattern")?;
        Ok(etype)
    }

    fn node_pattern(&mut self) -> TvResult<NodePattern> {
        self.expect(&TokenKind::LParen, "( in node pattern")?;
        let mut alias = None;
        let mut label = None;
        match self.peek() {
            Some(TokenKind::Ident(_)) => {
                let name = self.ident("alias")?;
                if self.eat_if(&TokenKind::Colon) {
                    alias = Some(name);
                    label = Some(self.ident("vertex label")?);
                } else {
                    alias = Some(name);
                }
            }
            Some(TokenKind::Colon) => {
                self.pos += 1;
                label = Some(self.ident("vertex label")?);
            }
            _ => {}
        }
        self.expect(&TokenKind::RParen, ") in node pattern")?;
        Ok(NodePattern { alias, label })
    }

    fn vector_dist_args(&mut self) -> TvResult<VectorDist> {
        self.expect(&TokenKind::LParen, "( after VECTOR_DIST")?;
        let lhs = self.vec_ref()?;
        self.expect(&TokenKind::Comma, ", between VECTOR_DIST args")?;
        let rhs = self.vec_ref()?;
        self.expect(&TokenKind::RParen, ") after VECTOR_DIST args")?;
        Ok(VectorDist { lhs, rhs })
    }

    fn vec_ref(&mut self) -> TvResult<VecRef> {
        match self.next() {
            Some(TokenKind::Ident(alias)) => {
                self.expect(&TokenKind::Dot, ". in embedding reference")?;
                let attr = self.ident("embedding attribute")?;
                Ok(VecRef::Attr(alias, attr))
            }
            Some(TokenKind::Param(p)) => Ok(VecRef::Param(p)),
            _ => {
                self.pos = self.pos.saturating_sub(1);
                Err(self.error("expected alias.attr or $param in VECTOR_DIST"))
            }
        }
    }

    // Precedence: OR < AND < NOT < comparison.
    fn or_expr(&mut self) -> TvResult<Expr> {
        let mut lhs = self.and_expr()?;
        while self.eat_if(&TokenKind::Or) {
            let rhs = self.and_expr()?;
            lhs = Expr::Or(Box::new(lhs), Box::new(rhs));
        }
        Ok(lhs)
    }

    fn and_expr(&mut self) -> TvResult<Expr> {
        let mut lhs = self.not_expr()?;
        while self.eat_if(&TokenKind::And) {
            let rhs = self.not_expr()?;
            lhs = Expr::And(Box::new(lhs), Box::new(rhs));
        }
        Ok(lhs)
    }

    fn not_expr(&mut self) -> TvResult<Expr> {
        if self.eat_if(&TokenKind::Not) {
            Ok(Expr::Not(Box::new(self.not_expr()?)))
        } else {
            self.comparison()
        }
    }

    fn comparison(&mut self) -> TvResult<Expr> {
        if self.eat_if(&TokenKind::LParen) {
            let inner = self.or_expr()?;
            self.expect(&TokenKind::RParen, ") closing group")?;
            return Ok(inner);
        }
        let lhs = self.operand()?;
        let op = match self.peek() {
            Some(TokenKind::Eq) => CmpOp::Eq,
            Some(TokenKind::Neq) => CmpOp::Neq,
            Some(TokenKind::Lt) => CmpOp::Lt,
            Some(TokenKind::Le) => CmpOp::Le,
            Some(TokenKind::Gt) => CmpOp::Gt,
            Some(TokenKind::Ge) => CmpOp::Ge,
            _ => return Ok(lhs), // bare operand (e.g. boolean attribute)
        };
        self.pos += 1;
        let rhs = self.operand()?;
        Ok(Expr::Cmp(Box::new(lhs), op, Box::new(rhs)))
    }

    fn operand(&mut self) -> TvResult<Expr> {
        match self.next() {
            Some(TokenKind::Ident(alias)) => {
                self.expect(&TokenKind::Dot, ". after alias")?;
                let attr = self.ident("attribute name")?;
                Ok(Expr::Attr(alias, attr))
            }
            Some(TokenKind::VectorDist) => Ok(Expr::VectorDist(self.vector_dist_args()?)),
            Some(TokenKind::Int(n)) => Ok(Expr::Literal(Value::Int(n))),
            Some(TokenKind::Float(f)) => Ok(Expr::Literal(Value::Double(f))),
            Some(TokenKind::Str(s)) => Ok(Expr::Literal(Value::Str(s))),
            Some(TokenKind::Param(p)) => Ok(Expr::Param(p)),
            Some(TokenKind::Dash) => match self.next() {
                Some(TokenKind::Int(n)) => Ok(Expr::Literal(Value::Int(-n))),
                Some(TokenKind::Float(f)) => Ok(Expr::Literal(Value::Double(-f))),
                _ => Err(self.error("expected number after unary -")),
            },
            _ => {
                self.pos = self.pos.saturating_sub(1);
                Err(self.error("expected operand"))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_pure_topk() {
        let q = parse("SELECT s FROM (s:Post) ORDER BY VECTOR_DIST(s.content_emb, $qv) LIMIT 10;")
            .unwrap();
        assert_eq!(q.select, vec!["s"]);
        assert_eq!(q.pattern.nodes.len(), 1);
        assert_eq!(q.pattern.nodes[0].label.as_deref(), Some("Post"));
        let ob = q.order_by.unwrap();
        assert_eq!(ob.lhs, VecRef::Attr("s".into(), "content_emb".into()));
        assert_eq!(ob.rhs, VecRef::Param("qv".into()));
        assert_eq!(q.limit, Some(Expr::Literal(Value::Int(10))));
    }

    #[test]
    fn parses_range_search() {
        let q =
            parse("SELECT s FROM (s:Post) WHERE VECTOR_DIST(s.content_emb, $qv) < 0.5").unwrap();
        assert!(q.order_by.is_none());
        match q.where_clause.unwrap() {
            Expr::Cmp(lhs, CmpOp::Lt, rhs) => {
                assert!(matches!(*lhs, Expr::VectorDist(_)));
                assert_eq!(*rhs, Expr::Literal(Value::Double(0.5)));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn parses_filtered_search() {
        let q = parse(
            "SELECT s FROM (s:Post) WHERE s.language = \"English\" \
             ORDER BY VECTOR_DIST(s.content_emb, $qv) LIMIT 5",
        )
        .unwrap();
        assert!(matches!(q.where_clause, Some(Expr::Cmp(_, CmpOp::Eq, _))));
        assert!(q.order_by.is_some());
    }

    #[test]
    fn parses_multi_hop_pattern() {
        let q = parse(
            "SELECT t FROM (s:Person) -[:knows]-> (:Person) <-[:hasCreator]- (t:Post) \
             WHERE s.firstName = \"Alice\" AND t.length > 1000 \
             ORDER BY VECTOR_DIST(t.content_emb, $qv) LIMIT 3",
        )
        .unwrap();
        assert_eq!(q.pattern.nodes.len(), 3);
        assert_eq!(q.pattern.edges.len(), 2);
        assert_eq!(q.pattern.edges[0].direction, Direction::Out);
        assert_eq!(q.pattern.edges[1].direction, Direction::In);
        assert_eq!(q.pattern.nodes[1].alias, None);
        assert!(matches!(q.where_clause, Some(Expr::And(_, _))));
    }

    #[test]
    fn parses_similarity_join() {
        let q = parse(
            "SELECT s, t FROM (s:Comment) -[:hasCreator]-> (u:Person) \
             -[:knows]-> (v:Person) <-[:hasCreator]- (t:Comment) \
             WHERE u.firstName = \"Alice\" \
             ORDER BY VECTOR_DIST(s.content_emb, t.content_emb) LIMIT 10",
        )
        .unwrap();
        assert_eq!(q.select, vec!["s", "t"]);
        assert_eq!(q.pattern.nodes.len(), 4);
        let ob = q.order_by.unwrap();
        assert!(matches!(ob.lhs, VecRef::Attr(_, _)));
        assert!(matches!(ob.rhs, VecRef::Attr(_, _)));
    }

    #[test]
    fn rejects_order_by_without_limit() {
        assert!(parse("SELECT s FROM (s:Post) ORDER BY VECTOR_DIST(s.e, $q)").is_err());
    }

    #[test]
    fn rejects_malformed_patterns() {
        assert!(parse("SELECT s FROM s:Post").is_err());
        assert!(parse("SELECT s FROM (s:Post) -[knows]-> (t:Post)").is_err());
        assert!(parse("SELECT s FROM (s:Post) extra").is_err());
        assert!(parse("FROM (s:Post)").is_err());
    }

    #[test]
    fn parse_errors_have_offsets() {
        match parse("SELECT s FROM (s:Post) WHERE s.x <") {
            Err(TvError::Parse { offset, .. }) => assert!(offset > 0),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn boolean_precedence() {
        let q = parse("SELECT s FROM (s:P) WHERE s.a = 1 OR s.b = 2 AND NOT s.c = 3").unwrap();
        // OR is outermost.
        assert!(matches!(q.where_clause, Some(Expr::Or(_, _))));
    }

    #[test]
    fn parenthesized_groups() {
        let q = parse("SELECT s FROM (s:P) WHERE (s.a = 1 OR s.b = 2) AND s.c = 3").unwrap();
        assert!(matches!(q.where_clause, Some(Expr::And(_, _))));
    }

    #[test]
    fn negative_literals() {
        let q = parse("SELECT s FROM (s:P) WHERE s.a > -5").unwrap();
        match q.where_clause.unwrap() {
            Expr::Cmp(_, _, rhs) => assert_eq!(*rhs, Expr::Literal(Value::Int(-5))),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn param_limit() {
        let q = parse("SELECT s FROM (s:P) ORDER BY VECTOR_DIST(s.e, $q) LIMIT $k").unwrap();
        assert_eq!(q.limit, Some(Expr::Param("k".into())));
    }

    #[test]
    fn undirected_edge_defaults_out() {
        let q = parse("SELECT s FROM (s:P) -[:likes]- (t:Q)").unwrap();
        assert_eq!(q.pattern.edges[0].direction, Direction::Out);
    }
}
