//! The flexible `VectorSearch()` function (§5.5).
//!
//! GSQL procedures compose query blocks through vertex set variables;
//! `VectorSearch()` plugs into that composition: it takes a list of
//! compatible embedding attributes (possibly across vertex types), a query
//! vector, `k`, and optional parameters — a candidate vertex set filter, an
//! output distance map, and the index search parameter `ef` — and returns a
//! vertex set ready for the next query block, exactly like queries Q2–Q4 in
//! the paper.

use std::collections::HashMap;
use tg_graph::accum::MapAccum;
use tg_graph::{Graph, VertexSet};
use tv_common::{Tid, TvResult};
use tv_hnsw::SearchStats;

/// Optional parameters of [`vector_search`] (the paper's `{filter: ...,
/// ef: ..., distanceMap: ...}` map).
#[derive(Default)]
pub struct VectorSearchOptions<'a> {
    /// Candidate vertex set from a prior query block (pre-filter).
    pub filter: Option<&'a VertexSet>,
    /// Index search parameter controlling accuracy (HNSW `ef`).
    pub ef: Option<usize>,
    /// Output map accumulator receiving `(vertex, distance)` for the top-k.
    pub distance_map: Option<&'a mut MapAccum>,
    /// Read snapshot; defaults to the latest committed TID.
    pub tid: Option<Tid>,
}

/// `VectorSearch(VectorAttributes, QueryVector, K, {...})` — returns the
/// top-k vertices as a [`VertexSet`] for query composition. Attributes are
/// named as `(vertex type, attribute)` pairs and must pass the §4.1
/// compatibility check (enforced by the embedding service).
pub fn vector_search(
    graph: &Graph,
    vector_attributes: &[(&str, &str)],
    query_vector: &[f32],
    k: usize,
    mut options: VectorSearchOptions<'_>,
) -> TvResult<VertexSet> {
    let (set, _stats) =
        vector_search_with_stats(graph, vector_attributes, query_vector, k, &mut options)?;
    Ok(set)
}

/// [`vector_search`] variant also returning the merged search statistics
/// (used by the benchmark harness).
pub fn vector_search_with_stats(
    graph: &Graph,
    vector_attributes: &[(&str, &str)],
    query_vector: &[f32],
    k: usize,
    options: &mut VectorSearchOptions<'_>,
) -> TvResult<(VertexSet, SearchStats)> {
    // Resolve attribute names through the catalog.
    let attr_ids: Vec<u32> = {
        let catalog = graph.catalog();
        vector_attributes
            .iter()
            .map(|(vt, attr)| {
                let def = catalog.vertex_type(vt)?;
                def.embedding(attr).map(|(id, _)| id).ok_or_else(|| {
                    tv_common::TvError::NotFound(format!(
                        "embedding '{attr}' on vertex type '{vt}'"
                    ))
                })
            })
            .collect::<TvResult<_>>()?
    };
    let tid = options.tid.unwrap_or_else(|| graph.read_tid());
    let ef = options
        .ef
        .unwrap_or(graph.embeddings().config().default_ef)
        .max(k);
    let (hits, stats) = graph.vector_search(&attr_ids, query_vector, k, ef, options.filter, tid)?;

    let mut out = VertexSet::new();
    for tn in &hits {
        out.insert(tn.vertex_type, tn.neighbor.id);
        if let Some(map) = options.distance_map.as_deref_mut() {
            map.put(tn.vertex_type, tn.neighbor.id, f64::from(tn.neighbor.dist));
        }
    }
    Ok((out, stats))
}

/// Helper mirroring Q4's shape: Louvain over `(vertex type, edge type)`,
/// then a per-community top-k `VectorSearch` filtered to each community's
/// posts. Returns `community id → top-k vertex set`.
#[allow(clippy::too_many_arguments)]
pub fn community_topk(
    graph: &Graph,
    person_type: &str,
    knows_edge: &str,
    target_type: &str,
    creator_edge: &str,
    attr: &str,
    query_vector: &[f32],
    k: usize,
) -> TvResult<HashMap<usize, VertexSet>> {
    let (person_id, knows_id, target_id, creator_id) = {
        let catalog = graph.catalog();
        (
            catalog.vertex_type(person_type)?.type_id,
            catalog.edge_type(knows_edge)?.etype_id,
            catalog.vertex_type(target_type)?.type_id,
            catalog.edge_type(creator_edge)?.etype_id,
        )
    };
    let tid = graph.read_tid();
    // Louvain tags each person with a community id (tg_louvain in Q4).
    let (communities, count) = graph.louvain(person_id, knows_id, tid)?;

    // Invert hasCreator: target (e.g. Post) -> creator.
    let creator_of: HashMap<_, _> = graph
        .edge_action(target_id, creator_id, tid, |post, person| (post, person))?
        .into_iter()
        .collect();

    let mut out = HashMap::new();
    for community in 0..count {
        // Posts whose creator belongs to this community.
        let mut candidates = VertexSet::new();
        for (&post, person) in &creator_of {
            if communities.get(person) == Some(&community) {
                candidates.insert(target_id, post);
            }
        }
        if candidates.is_empty() {
            continue;
        }
        let topk = vector_search(
            graph,
            &[(target_type, attr)],
            query_vector,
            k,
            VectorSearchOptions {
                filter: Some(&candidates),
                ..VectorSearchOptions::default()
            },
        )?;
        out.insert(community, topk);
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use tg_storage::{AttrType, AttrValue};
    use tv_common::ids::SegmentLayout;
    use tv_common::DistanceMetric;
    use tv_embedding::{EmbeddingTypeDef, ServiceConfig};

    fn graph() -> (Graph, Vec<tv_common::VertexId>, Vec<Vec<f32>>) {
        let g = Graph::with_config(
            SegmentLayout::with_capacity(8),
            ServiceConfig {
                planner: tv_common::PlannerConfig::default().with_brute_threshold(2),
                query_threads: 1,
                default_ef: 64,
                build_threads: 1,
            },
        );
        g.create_vertex_type("Post", &[("length", AttrType::Int)])
            .unwrap();
        g.create_vertex_type("Comment", &[("length", AttrType::Int)])
            .unwrap();
        g.add_embedding_attribute(
            "Post",
            EmbeddingTypeDef::new("content_emb", 4, "GPT4", DistanceMetric::L2),
        )
        .unwrap();
        g.add_embedding_attribute(
            "Comment",
            EmbeddingTypeDef::new("content_emb", 4, "GPT4", DistanceMetric::L2),
        )
        .unwrap();
        let posts = g.allocate_many(0, 6).unwrap();
        let comments = g.allocate_many(1, 6).unwrap();
        let mut vecs = Vec::new();
        let mut txn = g.txn();
        for (i, &p) in posts.iter().enumerate() {
            let v = vec![i as f32; 4];
            txn = txn
                .upsert_vertex(0, p, vec![AttrValue::Int(i as i64)])
                .set_vector(0, p, v.clone());
            vecs.push(v);
        }
        for (i, &c) in comments.iter().enumerate() {
            let v = vec![(i as f32) + 0.4; 4];
            txn = txn
                .upsert_vertex(1, c, vec![AttrValue::Int(i as i64)])
                .set_vector(1, c, v.clone());
            vecs.push(v);
        }
        txn.commit().unwrap();
        let mut ids = posts;
        ids.extend(comments);
        (g, ids, vecs)
    }

    #[test]
    fn multi_type_search_q1() {
        // Q1 from the paper: top-k across Comment and Post embeddings.
        let (g, ids, _) = graph();
        let set = vector_search(
            &g,
            &[("Comment", "content_emb"), ("Post", "content_emb")],
            &[0.1; 4],
            3,
            VectorSearchOptions::default(),
        )
        .unwrap();
        assert_eq!(set.len(), 3);
        // Nearest three to 0.1: post0 (0.0), comment0 (0.4), post1 (1.0).
        assert!(set.contains(0, ids[0]));
        assert!(set.contains(1, ids[6]));
        assert!(set.contains(0, ids[1]));
    }

    #[test]
    fn distance_map_output_q3() {
        let (g, _ids, _) = graph();
        let mut dis_map = MapAccum::default();
        let set = vector_search(
            &g,
            &[("Post", "content_emb")],
            &[0.0; 4],
            2,
            VectorSearchOptions {
                distance_map: Some(&mut dis_map),
                ..VectorSearchOptions::default()
            },
        )
        .unwrap();
        assert_eq!(set.len(), 2);
        assert_eq!(dis_map.len(), 2);
        let sorted = dis_map.sorted_by_value();
        assert!(sorted[0].1 <= sorted[1].1);
    }

    #[test]
    fn filter_composition_q3() {
        let (g, ids, _) = graph();
        // First query block: posts with length >= 4.
        let tid = g.read_tid();
        let candidates = g
            .select_vertices(0, tid, |_, get| {
                get("length")
                    .and_then(|v| v.as_int())
                    .is_some_and(|l| l >= 4)
            })
            .unwrap();
        // Second block: VectorSearch with the candidate filter.
        let set = vector_search(
            &g,
            &[("Post", "content_emb")],
            &[0.0; 4],
            2,
            VectorSearchOptions {
                filter: Some(&candidates),
                ..VectorSearchOptions::default()
            },
        )
        .unwrap();
        // Nearest qualifying posts are 4 and 5.
        assert!(set.contains(0, ids[4]));
        assert!(set.contains(0, ids[5]));
    }

    #[test]
    fn unknown_attr_rejected() {
        let (g, _, _) = graph();
        assert!(vector_search(
            &g,
            &[("Post", "missing_emb")],
            &[0.0; 4],
            1,
            VectorSearchOptions::default()
        )
        .is_err());
        assert!(vector_search(
            &g,
            &[("Nope", "content_emb")],
            &[0.0; 4],
            1,
            VectorSearchOptions::default()
        )
        .is_err());
    }

    #[test]
    fn ef_parameter_accepted() {
        let (g, ids, _) = graph();
        let set = vector_search(
            &g,
            &[("Post", "content_emb")],
            &[0.0; 4],
            1,
            VectorSearchOptions {
                ef: Some(200),
                ..VectorSearchOptions::default()
            },
        )
        .unwrap();
        assert!(set.contains(0, ids[0]));
    }

    #[test]
    fn community_topk_q4() {
        let (g, ids, _) = graph();
        // Add Person + knows + hasCreator so Q4's shape works.
        g.create_vertex_type("Person", &[("name", AttrType::Str)])
            .unwrap();
        g.create_edge_type("knows", "Person", "Person").unwrap();
        g.create_edge_type("hasCreator", "Post", "Person").unwrap();
        let people = g.allocate_many(2, 4).unwrap();
        let mut txn = g.txn();
        for (i, &p) in people.iter().enumerate() {
            txn = txn.upsert_vertex(2, p, vec![AttrValue::Str(format!("p{i}"))]);
        }
        // Two communities: {0,1} and {2,3}.
        txn = txn
            .add_edge(0, 2, people[0], people[1])
            .add_edge(0, 2, people[1], people[0])
            .add_edge(0, 2, people[2], people[3])
            .add_edge(0, 2, people[3], people[2]);
        // Posts 0..3 by community A, posts 4..5 by community B.
        for (i, &id) in ids.iter().enumerate().take(6) {
            let creator = if i < 4 { people[0] } else { people[2] };
            txn = txn.add_edge(1, 0, id, creator);
        }
        txn.commit().unwrap();

        let result = community_topk(
            &g,
            "Person",
            "knows",
            "Post",
            "hasCreator",
            "content_emb",
            &[0.0; 4],
            2,
        )
        .unwrap();
        assert_eq!(result.len(), 2);
        // Community containing posts 0..3 must return posts 0 and 1.
        let com_a = result
            .values()
            .find(|s| s.contains(0, ids[0]))
            .expect("community A present");
        assert!(com_a.contains(0, ids[1]));
        // Community B returns posts 4 and 5.
        let com_b = result
            .values()
            .find(|s| s.contains(0, ids[4]))
            .expect("community B present");
        assert!(com_b.contains(0, ids[5]));
    }
}
